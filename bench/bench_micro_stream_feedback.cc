// Micro-benchmark for the θlb→producer stream-feedback loop (ISSUE 3):
// how many token-stream tuples does the feedback-terminated search
// materialize versus the drain-to-α path, where does the stream stop, and
// what does that buy end to end?
//
// The workload is a skewed 10k-vocab corpus seeded with near-duplicate
// clusters — the paper's data-lake scenario (§I: repositories full of
// near-copies of the same table). Zipf element draws concentrate the
// posting lists, so the α-tail of the stream is long; querying a
// duplicated set drives θlb to ≈0.9·|Q| within the first few hundred
// tuples, after which that whole tail is provably useless — exactly the
// work the feedback loop exists to cut. Both modes are exact; the
// benchmark asserts identical score sequences and verifies every reported
// set against the direct semantic-overlap oracle (tied sets at θ*k may
// swap identities between runs, as in the exactness test suite).
//
// Sections: unpartitioned serial (inline pipelining) and 4 partitions
// (serial replay + overlapped production with 4 threads).
//
// Emits a table and, with `--json <path>`, a JSON blob for CI. Exit 2 =
// top-k mismatch between the modes OR tuple reduction below the 30%
// acceptance bar (both deterministic); exit 3 = no end-to-end speedup
// (timing noise, tolerated on shared runners).
// Usage: bench_micro_stream_feedback [--json out.json] [--vocab N]
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "koios/core/searcher.h"
#include "koios/data/corpus.h"
#include "koios/data/query_benchmark.h"
#include "koios/matching/semantic_overlap.h"
#include "koios/embedding/synthetic_model.h"
#include "koios/sim/cosine_similarity.h"
#include "koios/sim/exact_knn_index.h"
#include "koios/util/rng.h"
#include "koios/util/timer.h"

namespace koios {
namespace {

constexpr size_t kReps = 3;
constexpr double kRequiredReduction = 0.30;  // acceptance bar

struct ModeOutcome {
  double best_sec = 1e100;       // best-of-reps total wall over all queries
  size_t tuples_produced = 0;    // summed over queries (deterministic)
  size_t tuples_consumed = 0;
  double mean_stop_sim = 0.0;
  std::vector<std::vector<core::ResultEntry>> topk;  // per query
};

struct Section {
  const char* name;
  size_t partitions;
  size_t threads;
  ModeOutcome feedback;
  ModeOutcome drain;
};

ModeOutcome RunMode(core::KoiosSearcher* searcher,
                    const std::vector<data::BenchmarkQuery>& queries,
                    const core::SearchParams& params) {
  ModeOutcome out;
  for (size_t rep = 0; rep < kReps; ++rep) {
    util::WallTimer timer;
    size_t produced = 0, consumed = 0;
    double stop_sum = 0.0;
    std::vector<std::vector<core::ResultEntry>> topk;
    for (const auto& query : queries) {
      core::SearchResult r = searcher->Search(query.tokens, params);
      produced += r.stats.stream_tuples_produced;
      consumed += r.stats.stream_tuples;
      stop_sum += r.stats.stream_stop_sim;
      topk.push_back(std::move(r.topk));
    }
    const double sec = timer.ElapsedSeconds();
    if (sec < out.best_sec) {
      out.best_sec = sec;
      out.tuples_produced = produced;
      out.tuples_consumed = consumed;
      out.mean_stop_sim = stop_sum / static_cast<double>(queries.size());
      out.topk = std::move(topk);
    }
  }
  return out;
}

// Exactness check between the modes: identical score sequences (bitwise),
// and every reported set's score equal to its true semantic overlap. Tied
// sets at θ*k may swap identities between runs (same contract as the
// exactness test suite), so set ids are only compared where scores are
// strictly distinct from their neighbours'.
bool SameTopK(const ModeOutcome& a, const ModeOutcome& b,
              const std::vector<data::BenchmarkQuery>& queries,
              const index::SetCollection& sets,
              const sim::SimilarityFunction& sim, Score alpha) {
  if (a.topk.size() != b.topk.size()) return false;
  for (size_t qi = 0; qi < a.topk.size(); ++qi) {
    const auto& ta = a.topk[qi];
    const auto& tb = b.topk[qi];
    if (ta.size() != tb.size()) return false;
    for (size_t i = 0; i < ta.size(); ++i) {
      if (ta[i].score != tb[i].score) return false;
      const bool tied = (i > 0 && ta[i - 1].score == ta[i].score) ||
                        (i + 1 < ta.size() && ta[i + 1].score == ta[i].score);
      if (!tied && ta[i].set != tb[i].set) return false;
    }
    for (const auto& entry : ta) {
      const Score truth = matching::SemanticOverlap(
          queries[qi].tokens, sets.Tokens(entry.set), sim, alpha);
      if (std::abs(entry.score - truth) > 1e-9) return false;
    }
    for (const auto& entry : tb) {
      const Score truth = matching::SemanticOverlap(
          queries[qi].tokens, sets.Tokens(entry.set), sim, alpha);
      if (std::abs(entry.score - truth) > 1e-9) return false;
    }
  }
  return true;
}

int Run(size_t vocab, const std::string& json_path) {
  // The skewed base corpus: Zipf 1.0 element draws over a 10k vocabulary.
  data::CorpusSpec spec;
  spec.name = "skewed-10k-neardup";
  spec.num_sets = 4000;
  spec.vocab_size = vocab;
  spec.element_skew = 0.6;
  spec.size_distribution = data::SizeDistribution::kNormal;
  spec.min_set_size = 8;
  spec.max_set_size = 80;
  spec.avg_set_size = 30.0;
  spec.size_stddev = 12.0;
  spec.seed = 20260730;
  util::WallTimer setup_timer;
  data::Corpus base = data::GenerateCorpus(spec);

  // Near-duplicate clusters: kHubs query sets each get kCopies mutated
  // copies (kMutation of the tokens swapped for random vocabulary draws),
  // modeling the near-copies a data lake holds of popular tables.
  constexpr size_t kHubs = 10;
  constexpr size_t kCopies = 32;
  constexpr double kMutation = 0.05;
  data::Corpus corpus;
  corpus.spec = spec;
  corpus.vocabulary = base.vocabulary;
  for (SetId id = 0; id < base.sets.size(); ++id) {
    corpus.sets.AddSet(base.sets.Tokens(id));
  }
  util::Rng dup_rng(spec.seed * 13 + 7);
  std::vector<SetId> hubs;
  std::vector<TokenId> copy;
  for (size_t h = 0; h < kHubs; ++h) {
    const SetId hub =
        static_cast<SetId>(dup_rng.NextBounded(base.sets.size()));
    hubs.push_back(hub);
    const auto tokens = base.sets.Tokens(hub);
    for (size_t c = 0; c < kCopies; ++c) {
      copy.assign(tokens.begin(), tokens.end());
      for (TokenId& t : copy) {
        if (dup_rng.NextDouble() < kMutation) {
          t = corpus.vocabulary[dup_rng.NextBounded(corpus.vocabulary.size())];
        }
      }
      corpus.sets.AddSet(copy);
    }
  }

  embedding::SyntheticModelSpec model_spec;
  model_spec.vocab_size = spec.vocab_size;
  model_spec.dim = 64;
  model_spec.avg_cluster_size = 48.0;
  model_spec.noise_sigma = 0.55;
  model_spec.coverage = 0.95;
  model_spec.seed = spec.seed + 1;
  embedding::SyntheticEmbeddingModel model(model_spec);
  sim::CosineEmbeddingSimilarity cosine(&model.store());
  sim::ExactKnnIndex index(corpus.vocabulary, &cosine);
  std::fprintf(stderr, "[setup] %zu sets, %zu vocab, built in %.1fs\n",
               corpus.NumSets(), corpus.vocabulary.size(),
               setup_timer.ElapsedSeconds());

  // Queries: the duplicated hub sets themselves.
  std::vector<data::BenchmarkQuery> queries;
  for (const SetId hub : hubs) {
    data::BenchmarkQuery q;
    q.source_set = hub;
    const auto tokens = corpus.sets.Tokens(hub);
    q.tokens.assign(tokens.begin(), tokens.end());
    queries.push_back(std::move(q));
  }

  core::SearchParams params_base;
  params_base.k = 5;
  params_base.alpha = 0.45;  // deep α-tail: the drain pays for it, feedback doesn't

  Section sections[] = {
      {"p=1 serial", 1, 1, {}, {}},
      {"p=4 serial", 4, 1, {}, {}},
      {"p=4 threads=4", 4, 4, {}, {}},
  };

  std::printf("\n=== stream feedback: tuples produced & latency vs drain-to-α ===\n");
  std::printf("%-14s | %12s %12s %8s | %9s %9s %8s | %8s\n", "section",
              "fb.tuples", "drain.tup", "reduct", "fb.sec", "drain.sec",
              "speedup", "stop_sim");
  std::printf("%s\n", std::string(100, '-').c_str());

  bool mismatch = false;
  bool below_bar = false;
  bool no_speedup = false;
  for (Section& s : sections) {
    core::SearcherOptions options;
    options.num_partitions = s.partitions;
    core::KoiosSearcher searcher(&corpus.sets, &index, options);
    core::SearchParams params = params_base;
    params.num_threads = s.threads;
    params.use_stream_feedback = true;
    s.feedback = RunMode(&searcher, queries, params);
    params.use_stream_feedback = false;
    s.drain = RunMode(&searcher, queries, params);

    if (!SameTopK(s.feedback, s.drain, queries, corpus.sets, cosine,
                  params_base.alpha)) {
      std::fprintf(stderr, "ERROR: top-k mismatch in section %s\n", s.name);
      mismatch = true;
    }
    const double reduction =
        s.drain.tuples_produced == 0
            ? 0.0
            : 1.0 - static_cast<double>(s.feedback.tuples_produced) /
                        static_cast<double>(s.drain.tuples_produced);
    const double speedup =
        s.feedback.best_sec > 0 ? s.drain.best_sec / s.feedback.best_sec : 0.0;
    // The acceptance bar applies to the deterministic serial sections (the
    // overlapped producer races its consumers, so its stop point varies).
    if (s.threads == 1 && reduction < kRequiredReduction) below_bar = true;
    if (s.threads == 1 && speedup <= 1.0) no_speedup = true;
    std::printf("%-14s | %12zu %12zu %7.1f%% | %9.4f %9.4f %7.2fx | %8.3f\n",
                s.name, s.feedback.tuples_produced, s.drain.tuples_produced,
                reduction * 100.0, s.feedback.best_sec, s.drain.best_sec,
                speedup, s.feedback.mean_stop_sim);
  }
  std::printf(
      "\nk=%zu alpha=%.2f, %zu queries (stored sets), best of %zu reps.\n"
      "reduct = tuples the feedback loop never materialized; stop_sim =\n"
      "mean similarity at which the producer stopped (0 = drained to α).\n",
      params_base.k, params_base.alpha, queries.size(), kReps);

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
    } else {
      std::fprintf(f, "{\n  \"bench\": \"micro_stream_feedback\",\n");
      std::fprintf(f, "  \"corpus\": {\"sets\": %zu, \"vocab\": %zu, \"skew\": %.2f},\n",
                   corpus.NumSets(), corpus.vocabulary.size(),
                   spec.element_skew);
      std::fprintf(f, "  \"k\": %zu, \"alpha\": %.2f,\n", params_base.k, params_base.alpha);
      std::fprintf(f, "  \"sections\": [\n");
      for (size_t i = 0; i < 3; ++i) {
        const Section& s = sections[i];
        const double reduction =
            s.drain.tuples_produced == 0
                ? 0.0
                : 1.0 - static_cast<double>(s.feedback.tuples_produced) /
                            static_cast<double>(s.drain.tuples_produced);
        std::fprintf(
            f,
            "    {\"name\": \"%s\", \"partitions\": %zu, \"threads\": %zu,\n"
            "     \"feedback\": {\"tuples_produced\": %zu, \"tuples_consumed\": %zu,"
            " \"sec\": %.6f, \"mean_stop_sim\": %.4f},\n"
            "     \"drain\": {\"tuples_produced\": %zu, \"tuples_consumed\": %zu,"
            " \"sec\": %.6f},\n"
            "     \"tuple_reduction\": %.4f}%s\n",
            s.name, s.partitions, s.threads, s.feedback.tuples_produced,
            s.feedback.tuples_consumed, s.feedback.best_sec,
            s.feedback.mean_stop_sim, s.drain.tuples_produced,
            s.drain.tuples_consumed, s.drain.best_sec, reduction,
            i + 1 < 3 ? "," : "");
      }
      std::fprintf(f, "  ]\n}\n");
      std::fclose(f);
      std::printf("json written to %s\n", json_path.c_str());
    }
  }

  if (mismatch || below_bar) {
    if (below_bar) {
      std::fprintf(stderr,
                   "ERROR: tuple reduction below the %.0f%% acceptance bar\n",
                   kRequiredReduction * 100.0);
    }
    return 2;
  }
  if (no_speedup) {
    std::fprintf(stderr, "WARNING: no end-to-end speedup measured\n");
    return 3;
  }
  return 0;
}

}  // namespace
}  // namespace koios

int main(int argc, char** argv) {
  std::string json_path;
  size_t vocab = 10000;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--vocab") == 0 && i + 1 < argc) {
      vocab = static_cast<size_t>(std::atol(argv[++i]));
    }
  }
  return koios::Run(vocab, json_path);
}
