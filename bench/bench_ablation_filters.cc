// Ablation bench (DESIGN.md): contribution of each Koios filter and of the
// bucketized iUB updates, on the OpenData replica. Not a paper table —
// this isolates the design choices §V and §VI motivate:
//   * full Koios vs no-iUB vs naive (bucket-less) iUB updates,
//   * with/without No-EM, with/without EM early termination,
//   * the verification count and response time each configuration pays.
#include <cstdio>

#include "bench_util.h"

namespace koios::bench {
namespace {

struct Config {
  const char* name;
  bool iub, bucket, no_em, em_et;
};

void Run() {
  PrintHeader("Ablation: filter contributions on OpenData (k=10, alpha=0.8)");
  BenchWorkload w = MakeBenchWorkload(Dataset::kOpenData);
  core::KoiosSearcher searcher(&w.corpus.sets, w.index.get());
  util::Rng rng(4242);
  const auto queries = data::SampleQueriesUniform(w.corpus, 12, &rng);

  const Config configs[] = {
      {"full Koios", true, true, true, true},
      {"no bucket (naive iUB)", true, false, true, true},
      {"no iUB filter", false, false, true, true},
      {"no No-EM", true, true, false, true},
      {"no EM-early-term", true, true, true, false},
      {"no postproc filters", true, true, false, false},
      {"no filters at all", false, false, false, false},
  };

  std::printf("%-22s | %12s | %10s %8s %8s %8s\n", "configuration",
              "response(s)", "iUB-pruned", "No-EM", "EM-ET", "EM");
  PrintRule();
  double theta_reference = -1.0;
  for (const Config& config : configs) {
    core::SearchParams params;
    params.k = 10;
    params.alpha = 0.8;
    params.use_iub_filter = config.iub;
    params.use_bucket_index = config.bucket;
    params.use_no_em_filter = config.no_em;
    params.use_em_early_termination = config.em_et;
    params.verify_result_scores = true;
    Aggregate t, iub, no_em, em_et, em;
    double theta_sum = 0.0;
    for (const auto& query : queries) {
      const RunOutcome out = RunKoios(&searcher, query.tokens, params);
      t.Add(out.response_sec);
      iub.Add(static_cast<double>(out.stats.iub_filtered));
      no_em.Add(static_cast<double>(out.stats.no_em_skipped));
      em_et.Add(static_cast<double>(out.stats.em_early_terminated));
      em.Add(static_cast<double>(out.stats.em_computed));
      theta_sum += out.kth_score;
    }
    // Exactness guard: every configuration must return the same θ*k mass.
    if (theta_reference < 0) {
      theta_reference = theta_sum;
    } else if (std::abs(theta_sum - theta_reference) > 1e-5) {
      std::printf("!! exactness violation: Σθk %.6f vs %.6f\n", theta_sum,
                  theta_reference);
    }
    std::printf("%-22s | %12.4f | %10.0f %8.0f %8.0f %8.0f\n", config.name,
                t.Mean(), iub.Mean(), no_em.Mean(), em_et.Mean(), em.Mean());
  }
  std::printf("\nAll configurations are exact (identical Σ θ*k asserted);"
              " they differ only in\nhow much verification work survives the"
              " filters.\n");
}

}  // namespace
}  // namespace koios::bench

int main() {
  koios::bench::Run();
  return 0;
}
