// Table II — Average percentage of sets pruned using filters.
//
// Paper reference (k=10, alpha=0.8, 10 partitions):
//   dataset   iUB-Filter   EM-Early-Terminated   No-EM
//   DBLP      91%          5%                    9.2%
//   OpenData  85.5%        2.1%                  54.8%
//   Twitter   53.5%        0%                    1.4%
//   WDC       89.2%        0.9%                  9.8%
//
// iUB percentage is over the candidates of the refinement phase; the two
// post-processing percentages are over the sets reaching that phase.
#include <cstdio>

#include "bench_util.h"

namespace koios::bench {
namespace {

void Run() {
  PrintHeader("Table II: Average % of sets pruned using filters");
  std::printf("%-10s | %12s | %22s | %8s || %s\n", "Dataset", "iUB-Filter",
              "EM-Early-Terminated", "No-EM", "paper: iUB / EM-ET / No-EM");
  PrintRule();

  struct PaperRow {
    double iub, em_et, no_em;
  };
  const PaperRow paper[] = {{91.0, 5.0, 9.2},
                            {85.5, 2.1, 54.8},
                            {53.5, 0.0, 1.4},
                            {89.2, 0.9, 9.8}};
  const Dataset datasets[] = {Dataset::kDblp, Dataset::kOpenData,
                              Dataset::kTwitter, Dataset::kWdc};

  for (size_t d = 0; d < 4; ++d) {
    BenchWorkload w = MakeBenchWorkload(datasets[d]);
    core::SearcherOptions options;
    options.num_partitions = 10;
    core::KoiosSearcher searcher(&w.corpus.sets, w.index.get(), options);
    core::SearchParams params;
    params.k = 10;
    params.alpha = 0.8;
    params.verify_result_scores = false;

    const BenchQueries bq = MakeBenchQueries(w, /*per_interval=*/3,
                                             /*uniform_count=*/10);
    Aggregate iub_pct, em_et_pct, no_em_pct;
    for (const auto& query : bq.queries) {
      const RunOutcome out = RunKoios(&searcher, query.tokens, params);
      if (out.stats.candidates > 0) {
        iub_pct.Add(100.0 * static_cast<double>(out.stats.iub_filtered) /
                    static_cast<double>(out.stats.candidates));
      }
      if (out.stats.postprocess_sets > 0) {
        const double denom = static_cast<double>(out.stats.postprocess_sets);
        em_et_pct.Add(100.0 * static_cast<double>(out.stats.em_early_terminated) /
                      denom);
        no_em_pct.Add(100.0 * static_cast<double>(out.stats.no_em_skipped) /
                      denom);
      }
    }
    std::printf("%-10s | %11.1f%% | %21.1f%% | %7.1f%% || %10.1f / %4.1f / %4.1f\n",
                DatasetName(datasets[d]), iub_pct.Mean(), em_et_pct.Mean(),
                no_em_pct.Mean(), paper[d].iub, paper[d].em_et, paper[d].no_em);
  }
  std::printf("\nk=10, alpha=0.8, partitions=10, as in the paper.\n");
}

}  // namespace
}  // namespace koios::bench

int main() {
  koios::bench::Run();
  return 0;
}
