// §VIII-B — comparison against SilkMoth with Jaccard-on-3-grams element
// similarity (the fuzzy-search SOTA the paper measures against).
//
// Protocol (exactly as in the paper): run Koios first to obtain the true
// θ*k of every query, hand that threshold to SilkMoth, and measure both
// variants' response times over the same queries.
//
// Paper reference (54 OpenData queries): Koios 72 s, SilkMoth-syntactic
// 141 s, SilkMoth-semantic 400 s — Koios wins because it consumes an
// ordered pair stream and needs no similarity-specific filters; the shape
// to reproduce is Koios < syntactic < semantic.
#include <cstdio>

#include "koios/baselines/silkmoth.h"
#include "koios/data/string_corpus.h"
#include "koios/sim/jaccard_qgram_similarity.h"
#include "bench_util.h"

namespace koios::bench {
namespace {

void Run() {
  PrintHeader("SilkMoth comparison (Jaccard on 3-grams, OpenData-like strings)");
  data::StringCorpusSpec spec;
  spec.num_sets = 800;
  spec.num_base_words = 1500;
  spec.typos_per_word = 2;
  spec.min_set_size = 5;
  spec.max_set_size = 60;
  spec.seed = 31337;
  util::WallTimer setup;
  data::StringCorpus corpus = data::GenerateStringCorpus(spec);
  sim::JaccardQGramSimilarity jaccard(&corpus.dict, 3);
  sim::ExactKnnIndex index(corpus.vocabulary, &jaccard);
  core::KoiosSearcher koios(&corpus.sets, &index);
  baselines::SilkMothSearch silkmoth(&corpus.sets, &jaccard);
  std::fprintf(stderr, "[setup] %zu sets, %zu vocab, %.1fs\n",
               corpus.sets.size(), corpus.vocabulary.size(),
               setup.ElapsedSeconds());

  util::Rng rng(99);
  std::vector<SetId> query_sets;
  for (int i = 0; i < 12; ++i) {
    query_sets.push_back(static_cast<SetId>(rng.NextBounded(corpus.sets.size())));
  }

  core::SearchParams params;
  params.k = 10;
  params.alpha = 0.8;  // paper: Jaccard threshold 0.8 for the token stream
  Aggregate koios_t, syn_t, sem_t;
  size_t mismatches = 0;
  for (SetId qid : query_sets) {
    std::vector<TokenId> query(corpus.sets.Tokens(qid).begin(),
                               corpus.sets.Tokens(qid).end());
    util::WallTimer timer;
    const auto rk = koios.Search(query, params);
    koios_t.Add(timer.ElapsedSeconds());

    baselines::SilkMothOptions options;
    options.k = params.k;
    options.alpha = params.alpha;
    options.theta = rk.KthScore();  // SilkMoth gets the true θ*k for free

    options.variant = baselines::SilkMothVariant::kSyntactic;
    timer.Restart();
    const auto rs = silkmoth.Search(query, options);
    syn_t.Add(timer.ElapsedSeconds());

    options.variant = baselines::SilkMothVariant::kSemantic;
    timer.Restart();
    const auto rg = silkmoth.Search(query, options);
    sem_t.Add(timer.ElapsedSeconds());

    if (std::abs(rs.KthScore() - rk.KthScore()) > 1e-6 ||
        std::abs(rg.KthScore() - rk.KthScore()) > 1e-6) {
      ++mismatches;
    }
  }

  std::printf("%-22s | %14s | %8s\n", "engine", "avg resp (s)", "vs Koios");
  PrintRule();
  std::printf("%-22s | %14.4f | %8s\n", "Koios", koios_t.Mean(), "1.0x");
  std::printf("%-22s | %14.4f | %7.1fx\n", "SilkMoth-syntactic", syn_t.Mean(),
              syn_t.Mean() / koios_t.Mean());
  std::printf("%-22s | %14.4f | %7.1fx\n", "SilkMoth-semantic", sem_t.Mean(),
              sem_t.Mean() / koios_t.Mean());
  std::printf("\nθ*k agreement mismatches: %zu / %zu queries (must be 0)."
              "\nPaper: 72 s / 141 s / 400 s — expected shape Koios <"
              " syntactic < semantic.\n", mismatches, query_sets.size());
}

}  // namespace
}  // namespace koios::bench

int main() {
  koios::bench::Run();
  return 0;
}
