// Scale suite for the repository formats (v3 stream vs v4 mmap): build,
// save, load, and serve a WDC-shaped corpus at increasing set counts and
// record per-size build time, container sizes, load times, RSS deltas,
// and serving QPS / tail latency into one JSON report. A 4-shard pass
// over the v4 snapshot adds per-shard phase timings (cursor_build /
// stream / refinement / postprocess) to each tier — ROADMAP item 2's
// cursor-build cliff tracking, attributable per shard.
//
// Two HARD gates:
//  * exactness (exit 2) — for every probe query, the top-k served from
//    the v4 mmap snapshot must be bit-identical (set, score, exact flag)
//    to the v3 stream-loaded snapshot's. The v4 writer canonicalizes row
//    order and the loaders never renormalize, so zero drift is the
//    contract, not a tolerance.
//  * zero requantization (exit 2) — the v4 snapshot's store must come
//    back quantized with finalize_runs() == 0: the int8 tier is read
//    from the file, never rebuilt. (v3 pays a full re-quantization pass
//    on every load — the latent cost this format removes.)
//
// One TIMING gate (exit 3, the suite's acceptance bar): at the LARGEST
// size in the sweep, the v4 mmap load must be >= 50x faster than the v3
// stream deserialize. Lazy v4 validation is O(header + metadata
// sections); v3 parses (and CRCs) every byte, so the gap widens with
// corpus size — 50x is the floor at a million-set shape, not the typical
// ratio. Exit-3 convention matches the other benches' timing bars
// (tolerated on starved CI runners, fatal nowhere else).
//
// Usage: bench_scale_suite [--sets N[,N...]] [--queries N] [--json out.json]
//   default sweep: 10000,100000,1000000 (the last tier is the paper-scale
//   WDC point; CI runs --sets 100000 to stay inside its time budget).

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "koios/core/searcher.h"
#include "koios/data/corpus.h"
#include "koios/data/query_benchmark.h"
#include "koios/embedding/synthetic_model.h"
#include "koios/io/repository_v4.h"
#include "koios/io/serialization.h"
#include "koios/serve/query_engine.h"
#include "koios/serve/snapshot.h"
#include "koios/text/dictionary.h"
#include "koios/util/rng.h"
#include "koios/util/timer.h"
#include "koios/util/trace_recorder.h"

namespace koios {
namespace {

constexpr double kRequiredLoadSpeedup = 50.0;

/// VmRSS of this process in kilobytes (0 if /proc is unavailable).
size_t RssKb() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  size_t kb = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, "VmRSS:", 6) == 0) {
      std::sscanf(line + 6, "%zu", &kb);
      break;
    }
  }
  std::fclose(f);
  return kb;
}

size_t FileSizeBytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return 0;
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  return size < 0 ? 0 : static_cast<size_t>(size);
}

double Percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const double idx = p * static_cast<double>(v.size() - 1);
  const size_t lo = static_cast<size_t>(idx);
  const size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

bool SameTopK(const core::SearchResult& got, const core::SearchResult& want) {
  if (got.topk.size() != want.topk.size()) return false;
  for (size_t i = 0; i < got.topk.size(); ++i) {
    if (got.topk[i].set != want.topk[i].set ||
        got.topk[i].score != want.topk[i].score ||
        got.topk[i].exact != want.topk[i].exact) {
      return false;
    }
  }
  return true;
}

struct PhaseDelta {
  std::string name;
  uint64_t count = 0;
  double sum_sec = 0.0;
};

// One shard's phase-time attribution from its SearchStats timers — the
// per-shard analogue of the trace-span phases below, so the item-2
// cursor-build cliff at the 1M tier is measurable per shard instead of
// blended across the fan-out.
struct ShardPhaseReport {
  size_t shard = 0;
  std::map<std::string, double> phase_sec;
};

struct SizeReport {
  size_t num_sets = 0;
  size_t total_tokens = 0;
  size_t vocab = 0;
  double build_sec = 0.0;
  size_t v3_bytes = 0, v4_bytes = 0;
  double v3_save_sec = 0.0, v4_save_sec = 0.0;
  double v3_load_sec = 0.0, v4_load_sec = 0.0;
  double load_speedup = 0.0;
  size_t v3_load_rss_kb = 0, v4_load_rss_kb = 0;
  double qps = 0.0, p50_ms = 0.0, p99_ms = 0.0;
  std::vector<PhaseDelta> phases;    // span-time attribution, v4 queries only
  double span_coverage = 0.0;        // direct search children / search total
  std::vector<ShardPhaseReport> shard_phases;  // N=4 pass over the v4 snap
  bool exact = true;
  bool zero_requant = true;
};

/// Cumulative (count, sum-seconds) per phase name from the trace recorder.
std::map<std::string, std::pair<uint64_t, double>> PhaseTotals() {
  std::map<std::string, std::pair<uint64_t, double>> totals;
  for (const auto& phase : util::TraceRecorder::Instance().PhaseHistograms()) {
    totals[phase.name] = {phase.count, phase.sum};
  }
  return totals;
}

int Run(const std::vector<size_t>& sizes, size_t num_queries,
        const std::string& json_path) {
  std::vector<SizeReport> reports;
  bool all_exact = true;
  bool all_zero_requant = true;

  // Trace every probe query so the report can attribute serving time to
  // pipeline phases at each tier (the span recorder's overhead is a few
  // ns per span — noise against ms-scale queries).
  {
    util::TraceRecorder::Options trace_options;
    trace_options.sample_every = 1;
    util::TraceRecorder::Instance().Configure(trace_options);
  }

  for (const size_t num_sets : sizes) {
    SizeReport r;
    r.num_sets = num_sets;

    // ---- build: WDC-shaped corpus + synthetic embeddings + dictionary --
    util::WallTimer build_timer;
    data::CorpusSpec spec = data::WdcSpec(1.0);
    spec.num_sets = num_sets;
    // Vocabulary grows sublinearly with the corpus (WDC: 1M sets over
    // 328k distinct elements); cap set sizes so one core stays tractable.
    spec.vocab_size = std::max<size_t>(2000, num_sets / 4);
    spec.max_set_size = 200;
    spec.seed = 20260808;
    data::Corpus corpus = data::GenerateCorpus(spec);

    embedding::SyntheticModelSpec model_spec;
    model_spec.vocab_size = spec.vocab_size;
    model_spec.dim = 32;
    model_spec.avg_cluster_size = 16.0;
    model_spec.noise_sigma = 0.38;
    model_spec.coverage = 0.9;
    model_spec.seed = spec.seed + 1;
    embedding::SyntheticEmbeddingModel model(model_spec);
    model.mutable_store().Finalize();  // v4 stores the tier; v3 re-builds it

    text::Dictionary dict;
    for (size_t t = 0; t < spec.vocab_size; ++t) {
      dict.Intern("token_" + std::to_string(t));
    }
    r.build_sec = build_timer.ElapsedSeconds();
    r.total_tokens = corpus.sets.TotalTokens();
    r.vocab = spec.vocab_size;

    const std::string v3_path = "/tmp/koios_scale_v3.repo";
    const std::string v4_path = "/tmp/koios_scale_v4.repo";

    // ---- save ----------------------------------------------------------
    {
      util::WallTimer t;
      auto status =
          io::SaveRepository(dict, corpus.sets, &model.store(), v3_path);
      if (!status.ok()) {
        std::fprintf(stderr, "v3 save failed: %s\n",
                     status.ToString().c_str());
        return 2;
      }
      r.v3_save_sec = t.ElapsedSeconds();
    }
    {
      util::WallTimer t;
      auto status =
          io::SaveRepositoryV4(dict, corpus.sets, &model.store(), v4_path);
      if (!status.ok()) {
        std::fprintf(stderr, "v4 save failed: %s\n",
                     status.ToString().c_str());
        return 2;
      }
      r.v4_save_sec = t.ElapsedSeconds();
    }
    r.v3_bytes = FileSizeBytes(v3_path);
    r.v4_bytes = FileSizeBytes(v4_path);

    // ---- load (the headline comparison) --------------------------------
    // v3: full stream deserialize, CRC + parse of every byte, plus the
    // re-quantization pass. Measured through the same Snapshot::Load
    // entry point the serving layer uses.
    std::shared_ptr<const serve::Snapshot> v3_snap;
    {
      const size_t rss_before = RssKb();
      util::WallTimer t;
      auto loaded = serve::Snapshot::Load(v3_path);
      r.v3_load_sec = t.ElapsedSeconds();
      if (!loaded.ok()) {
        std::fprintf(stderr, "v3 load failed: %s\n",
                     loaded.status().ToString().c_str());
        return 2;
      }
      v3_snap = std::move(loaded).value();
      r.v3_load_rss_kb = RssKb() - std::min(RssKb(), rss_before);
    }
    // v4: mmap + structural validation + metadata CRCs; the arenas stay
    // file-backed and page in on demand.
    std::shared_ptr<const serve::Snapshot> v4_snap;
    {
      const size_t rss_before = RssKb();
      util::WallTimer t;
      auto loaded = serve::Snapshot::Load(v4_path);
      r.v4_load_sec = t.ElapsedSeconds();
      if (!loaded.ok()) {
        std::fprintf(stderr, "v4 load failed: %s\n",
                     loaded.status().ToString().c_str());
        return 2;
      }
      v4_snap = std::move(loaded).value();
      r.v4_load_rss_kb = RssKb() - std::min(RssKb(), rss_before);
    }
    r.load_speedup = r.v4_load_sec > 0 ? r.v3_load_sec / r.v4_load_sec : 0.0;

    // ---- zero-requantization gate --------------------------------------
    r.zero_requant = v4_snap->store().quantized() &&
                     v4_snap->store().finalize_runs() == 0 &&
                     v4_snap->mmap_backed();
    all_zero_requant = all_zero_requant && r.zero_requant;

    // ---- probe queries: exactness gate + serving measurement -----------
    util::Rng rng(424244);
    const auto sampled = data::SampleQueriesUniform(corpus, num_queries, &rng);
    core::SearchParams params;
    params.k = 10;
    params.alpha = 0.8;

    core::KoiosSearcher v3_searcher(&v3_snap->sets(), v3_snap->index());
    core::KoiosSearcher v4_searcher(&v4_snap->sets(), v4_snap->index());
    std::vector<double> latencies_ms;
    std::vector<core::SearchResult> v4_results;
    util::WallTimer serve_timer;
    // The v4 pass runs alone (phase totals snapshotted around it) so the
    // per-tier span attribution covers only the measured queries; the v3
    // exactness pass follows.
    const auto phases_before = PhaseTotals();
    for (const auto& q : sampled) {
      // Bench drives the searcher directly (no QueryEngine front door), so
      // each query adopts its own forced trace to make its spans record.
      util::TraceAdopt trace(
          util::TraceRecorder::Instance().StartTraceForced(), 0);
      util::WallTimer qt;
      v4_results.push_back(v4_searcher.Search(q.tokens, params));
      latencies_ms.push_back(qt.ElapsedSeconds() * 1e3);
    }
    const auto phases_after = PhaseTotals();
    for (size_t i = 0; i < sampled.size(); ++i) {
      core::SearchResult v3_result =
          v3_searcher.Search(sampled[i].tokens, params);
      if (!SameTopK(v4_results[i], v3_result)) {
        std::fprintf(stderr,
                     "EXACTNESS VIOLATION at %zu sets: v4 top-k diverges "
                     "from v3\n",
                     num_sets);
        r.exact = false;
      }
    }
    const double serve_sec = serve_timer.ElapsedSeconds();

    // ---- per-phase attribution (v4 pass only) --------------------------
    double search_total = 0.0, children_total = 0.0;
    for (const auto& [name, after] : phases_after) {
      const auto it = phases_before.find(name);
      PhaseDelta d;
      d.name = name;
      d.count = after.first - (it != phases_before.end() ? it->second.first : 0);
      d.sum_sec =
          after.second - (it != phases_before.end() ? it->second.second : 0.0);
      if (d.count == 0) continue;
      if (d.name == "search") search_total = d.sum_sec;
      // Direct children of "search" partition its wall time in the serial
      // pipeline; search.em_batch is nested inside search.postprocess.
      if (d.name.rfind("search.", 0) == 0 && d.name != "search.em_batch") {
        children_total += d.sum_sec;
      }
      r.phases.push_back(std::move(d));
    }
    r.span_coverage = search_total > 0 ? children_total / search_total : 0.0;
    all_exact = all_exact && r.exact;
    r.qps = serve_sec > 0 ? static_cast<double>(2 * sampled.size()) / serve_sec
                          : 0.0;
    r.p50_ms = Percentile(latencies_ms, 0.50);
    r.p99_ms = Percentile(latencies_ms, 0.99);

    // ---- per-shard phase breakdown (sharded pass over the v4 snapshot) --
    // The same probe queries through a 4-shard engine; each shard's
    // SearchStats timers (cursor_build / stream / refinement /
    // postprocess) land in the JSON so a 1M-tier p50 regression can be
    // attributed to a single shard's cursor-build cliff rather than a
    // blended number. Results feed the exactness gate too: the sharded
    // engine must serve the identical top-k.
    {
      serve::EngineOptions options;
      options.num_threads = 1;
      options.num_shards = 4;
      options.max_queue = sampled.size();
      serve::QueryEngine engine(v4_snap, options);
      for (size_t i = 0; i < sampled.size(); ++i) {
        serve::QueryEngine::Result res =
            engine.Submit(sampled[i].tokens, params).get();
        if (!res.ok() || !SameTopK(res.value(), v4_results[i])) {
          std::fprintf(stderr,
                       "EXACTNESS VIOLATION at %zu sets: 4-shard top-k "
                       "diverges from the serial v4 pass\n",
                       num_sets);
          r.exact = false;
        }
      }
      for (size_t s = 0; s < engine.num_shards(); ++s) {
        ShardPhaseReport sp;
        sp.shard = s;
        sp.phase_sec = engine.shard_search_stats(s).timers.phases();
        r.shard_phases.push_back(std::move(sp));
      }
      all_exact = all_exact && r.exact;
    }

    std::printf(
        "[%8zu sets] build %.1fs | file v3 %.1fMB v4 %.1fMB | load v3 "
        "%.3fs v4 %.5fs (%.0fx) | rss v3 +%zuMB v4 +%zuMB | p50 %.1fms "
        "p99 %.1fms | span cover %.0f%% | %s %s\n",
        num_sets, r.build_sec, r.v3_bytes / 1e6, r.v4_bytes / 1e6,
        r.v3_load_sec, r.v4_load_sec, r.load_speedup, r.v3_load_rss_kb / 1024,
        r.v4_load_rss_kb / 1024, r.p50_ms, r.p99_ms, r.span_coverage * 100.0,
        r.exact ? "exact" : "DIVERGED",
        r.zero_requant ? "zero-requant" : "REQUANTIZED");
    if (!r.shard_phases.empty()) {
      std::printf("           per-shard (N=4) cursor_build ms:");
      for (const ShardPhaseReport& sp : r.shard_phases) {
        const auto it = sp.phase_sec.find("cursor_build");
        std::printf(" %.1f", (it != sp.phase_sec.end() ? it->second : 0.0) * 1e3);
      }
      std::printf("\n");
    }
    reports.push_back(r);

    std::remove(v3_path.c_str());
    std::remove(v4_path.c_str());
  }

  // ---- JSON report -----------------------------------------------------
  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
      return 2;
    }
    std::fprintf(f, "{\n  \"bench\": \"scale_suite\",\n  \"sizes\": [\n");
    for (size_t i = 0; i < reports.size(); ++i) {
      const SizeReport& r = reports[i];
      std::fprintf(
          f,
          "    {\"num_sets\": %zu, \"total_tokens\": %zu, \"vocab\": %zu,\n"
          "     \"build_sec\": %.3f,\n"
          "     \"v3_bytes\": %zu, \"v4_bytes\": %zu,\n"
          "     \"v3_save_sec\": %.4f, \"v4_save_sec\": %.4f,\n"
          "     \"v3_load_sec\": %.5f, \"v4_load_sec\": %.6f,\n"
          "     \"load_speedup\": %.1f,\n"
          "     \"v3_load_rss_kb\": %zu, \"v4_load_rss_kb\": %zu,\n"
          "     \"qps\": %.1f, \"p50_ms\": %.3f, \"p99_ms\": %.3f,\n"
          "     \"span_coverage\": %.4f,\n"
          "     \"phases\": {",
          r.num_sets, r.total_tokens, r.vocab, r.build_sec, r.v3_bytes,
          r.v4_bytes, r.v3_save_sec, r.v4_save_sec, r.v3_load_sec,
          r.v4_load_sec, r.load_speedup, r.v3_load_rss_kb, r.v4_load_rss_kb,
          r.qps, r.p50_ms, r.p99_ms, r.span_coverage);
      for (size_t p = 0; p < r.phases.size(); ++p) {
        const PhaseDelta& d = r.phases[p];
        std::fprintf(f, "%s\n       \"%s\": {\"count\": %llu, \"sum_ms\": %.3f}",
                     p > 0 ? "," : "", d.name.c_str(),
                     static_cast<unsigned long long>(d.count),
                     d.sum_sec * 1e3);
      }
      std::fprintf(f, "},\n     \"shard_phases\": [");
      for (size_t s = 0; s < r.shard_phases.size(); ++s) {
        const ShardPhaseReport& sp = r.shard_phases[s];
        std::fprintf(f, "%s\n       {\"shard\": %zu, \"phases\": {",
                     s > 0 ? "," : "", sp.shard);
        size_t p = 0;
        for (const auto& [name, sec] : sp.phase_sec) {
          std::fprintf(f, "%s\"%s\": %.3f", p++ > 0 ? ", " : "", name.c_str(),
                       sec * 1e3);
        }
        std::fprintf(f, "}}");
      }
      std::fprintf(f,
                   "],\n"
                   "     \"exact\": %s, \"zero_requant\": %s}%s\n",
                   r.exact ? "true" : "false",
                   r.zero_requant ? "true" : "false",
                   i + 1 < reports.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"required_load_speedup\": %.0f\n}\n",
                 kRequiredLoadSpeedup);
    std::fclose(f);
    std::printf("json written to %s\n", json_path.c_str());
  }

  if (!all_exact || !all_zero_requant) return 2;
  const SizeReport& largest = reports.back();
  if (largest.load_speedup < kRequiredLoadSpeedup) {
    std::fprintf(stderr,
                 "TIMING GATE: v4 load %.0fx faster than v3 at %zu sets "
                 "(need >= %.0fx)\n",
                 largest.load_speedup, largest.num_sets,
                 kRequiredLoadSpeedup);
    return 3;
  }
  std::printf("PASS: v4 load %.0fx faster than v3 at %zu sets (>= %.0fx)\n",
              largest.load_speedup, largest.num_sets, kRequiredLoadSpeedup);
  return 0;
}

}  // namespace
}  // namespace koios

int main(int argc, char** argv) {
  std::vector<size_t> sizes = {10000, 100000, 1000000};
  size_t num_queries = 12;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--queries") == 0 && i + 1 < argc) {
      num_queries = static_cast<size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--sets") == 0 && i + 1 < argc) {
      sizes.clear();
      for (const char* p = argv[++i]; *p != '\0';) {
        sizes.push_back(static_cast<size_t>(std::atoll(p)));
        while (*p != '\0' && *p != ',') ++p;
        if (*p == ',') ++p;
      }
    }
  }
  if (sizes.empty()) {
    std::fprintf(stderr, "no sizes given\n");
    return 1;
  }
  return koios::Run(sizes, num_queries, json_path);
}
