// Table III — Average response time and memory footprint, Koios vs the
// brute-force baseline, per dataset.
//
// Paper reference (64-core machine, full-scale data):
//   dataset   Koios refine/post/resp (s)   mem     Baseline resp   mem
//   DBLP      0.3   / 0.44 / 0.83          16MB    211 s           11MB
//   OpenData  7.19  / 6.9  / 18.6          69.6MB  101 s           102.5MB
//   Twitter   0.2   / 0.45 / 0.7           10MB    518 s           10MB
//   WDC       109   / 34.3 / 147           1775MB  1062 s          885MB
//
// Absolute values scale with the replica sizes and core count; the
// headline claim to reproduce is the *speedup*: Koios >= 5x everywhere and
// >= 200x on DBLP / Twitter. WDC uses Baseline+ (iUB on), as in the paper.
#include <cstdio>

#include "bench_util.h"
#include "koios/serve/latency_recorder.h"

namespace koios::bench {
namespace {

void Run() {
  PrintHeader("Table III: Average response time and memory footprint");
  std::printf("%-10s | %9s %9s %9s %9s | %9s %9s | %8s | %10s\n",
              "Dataset", "K.refine", "K.post", "K.resp(s)", "K.mem",
              "B.resp(s)", "B.mem", "speedup", "tuples");
  PrintRule();

  const Dataset datasets[] = {Dataset::kDblp, Dataset::kOpenData,
                              Dataset::kTwitter, Dataset::kWdc};
  for (Dataset d : datasets) {
    BenchWorkload w = MakeBenchWorkload(d);
    core::SearcherOptions options;
    options.num_partitions = 10;
    core::KoiosSearcher searcher(&w.corpus.sets, w.index.get(), options);
    baselines::BruteForceBaseline baseline(&w.corpus.sets, w.index.get());

    core::SearchParams params;
    params.k = 10;
    params.alpha = 0.8;
    params.verify_result_scores = true;
    baselines::BaselineOptions bopts;
    bopts.k = 10;
    bopts.alpha = 0.8;
    // "Given the sheer number of sets and high frequency of elements in
    // WDC, computing exact graph matchings for all candidate sets is
    // infeasible" — Baseline+ there.
    bopts.use_iub_filter = (d == Dataset::kWdc);

    const BenchQueries bq = MakeBenchQueries(w, /*per_interval=*/2,
                                             /*uniform_count=*/6);
    // Both stream modes: the θlb→producer feedback loop (default) and the
    // drain-to-α ablation, so the table shows what the feedback cuts.
    for (const bool feedback : {true, false}) {
      params.use_stream_feedback = feedback;
      Aggregate k_ref, k_post, k_resp, k_mem, b_resp, b_mem, produced;
      serve::LatencyRecorder latency;
      for (const auto& query : bq.queries) {
        const RunOutcome rk = RunKoios(&searcher, query.tokens, params);
        k_ref.Add(rk.refinement_sec);
        k_post.Add(rk.postprocess_sec);
        k_resp.Add(rk.response_sec);
        latency.Record(rk.response_sec);
        k_mem.Add(static_cast<double>(rk.memory_bytes) / (1 << 20));
        produced.Add(static_cast<double>(rk.stats.stream_tuples_produced));
        if (feedback) {
          const RunOutcome rb = RunBaseline(&baseline, query.tokens, bopts);
          b_resp.Add(rb.response_sec);
          b_mem.Add(static_cast<double>(rb.memory_bytes) / (1 << 20));
          if (std::abs(rk.kth_score - rb.kth_score) > 1e-6) {
            std::fprintf(stderr, "WARNING: theta_k mismatch on %s query %u\n",
                         DatasetName(d), query.source_set);
          }
        }
      }
      if (feedback) {
        std::printf(
            "%-10s | %9.3f %9.3f %9.3f %8.1fM | %9.3f %8.1fM | %7.1fx | %10.0f\n",
            DatasetName(d), k_ref.Mean(), k_post.Mean(), k_resp.Mean(),
            k_mem.Mean(), b_resp.Mean(), b_mem.Mean(),
            k_resp.Mean() > 0 ? b_resp.Mean() / k_resp.Mean() : 0.0,
            produced.Mean());
      } else {
        std::printf(
            "%-10s | %9.3f %9.3f %9.3f %8.1fM | %9s %9s | %8s | %10.0f\n",
            "  (drain)", k_ref.Mean(), k_post.Mean(), k_resp.Mean(),
            k_mem.Mean(), "-", "-", "-", produced.Mean());
      }
      // Serving systems are judged by their tail, not their mean: the
      // response-time distribution per mode (serve::LatencyRecorder).
      std::printf("%-10s |   latency %s\n", "", latency.Summary().c_str());
    }
  }
  std::printf(
      "\nKoios: k=10, alpha=0.8, 10 partitions; first row per dataset uses"
      " the θlb\nstream feedback (default), the (drain) row the drain-to-α"
      " ablation; tuples =\nmean stream tuples materialized per query."
      " Baseline verifies every candidate\n(Baseline+ with iUB filter on"
      " WDC, as in the paper). theta_k equality is\nasserted per query.\n");
}

}  // namespace
}  // namespace koios::bench

int main() {
  koios::bench::Run();
  return 0;
}
