// Figure 6 — WDC results by query cardinality interval: the same four
// panels as Fig. 5 (response time, phase breakdown, memory), with the
// baseline in its feasible Baseline+ configuration (iUB filter on, as the
// paper does for WDC).
//
// Shapes from the paper: WDC's refinement share is larger than OpenData's
// (sheer number of sets + frequent elements => long posting lists and many
// bound updates), and the Koios-vs-baseline gap widens with cardinality.
#include <cstdio>

#include "bench_util.h"

namespace koios::bench {
namespace {

void Run() {
  PrintHeader("Figure 6: WDC — time, phase breakdown, memory by interval");
  BenchWorkload w = MakeBenchWorkload(Dataset::kWdc);
  core::SearcherOptions options;
  options.num_partitions = 10;
  core::KoiosSearcher searcher(&w.corpus.sets, w.index.get(), options);
  baselines::BruteForceBaseline baseline(&w.corpus.sets, w.index.get());
  core::SearchParams params;
  params.k = 10;
  params.alpha = 0.8;
  params.verify_result_scores = true;
  baselines::BaselineOptions bopts;
  bopts.k = 10;
  bopts.alpha = 0.8;
  bopts.use_iub_filter = true;  // Baseline+ (plain baseline infeasible on WDC)

  const BenchQueries bq = MakeBenchQueries(w, /*per_interval=*/3,
                                           /*uniform_count=*/0);
  std::printf("%-14s | %12s %12s | %9s %9s | %10s %10s\n", "Query Card.",
              "Koios(s)", "Baseline+(s)", "refine%", "post%", "K.mem(MB)",
              "B.mem(MB)");
  PrintRule();
  for (size_t iv = 0; iv < bq.intervals.size(); ++iv) {
    Aggregate kt, bt, refine_share, post_share, km, bm;
    for (const auto& query : bq.queries) {
      if (query.interval != iv) continue;
      const RunOutcome rk = RunKoios(&searcher, query.tokens, params);
      const RunOutcome rb = RunBaseline(&baseline, query.tokens, bopts);
      kt.Add(rk.response_sec);
      bt.Add(rb.response_sec);
      const double phase_total = rk.refinement_sec + rk.postprocess_sec;
      if (phase_total > 0) {
        refine_share.Add(100.0 * rk.refinement_sec / phase_total);
        post_share.Add(100.0 * rk.postprocess_sec / phase_total);
      }
      km.Add(static_cast<double>(rk.memory_bytes) / (1 << 20));
      bm.Add(static_cast<double>(rb.memory_bytes) / (1 << 20));
    }
    if (kt.n == 0) continue;
    std::printf("%-14s | %12.4f %12.4f | %8.1f%% %8.1f%% | %10.2f %10.2f\n",
                bq.intervals[iv].Label().c_str(), kt.Mean(), bt.Mean(),
                refine_share.Mean(), post_share.Mean(), km.Mean(), bm.Mean());
  }
  std::printf("\nPanels (a)-(d) of Fig. 6 as columns; k=10, alpha=0.8, 10"
              " partitions.\n");
}

}  // namespace
}  // namespace koios::bench

int main() {
  koios::bench::Run();
  return 0;
}
