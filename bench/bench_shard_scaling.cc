// Shard scaling harness (ROADMAP item 4): per-query scatter-gather speedup
// of the sharded QueryEngine over a partitioned corpus, plus the θlb
// exchange ablation.
//
// Setup: a ~100k-set corpus (WDC-shaped skew at laptop scale), one engine
// per shard count N ∈ {1, 2, 4, 8} with ONE query worker — so closed-loop
// QPS is the inverse of single-query latency and the N-way fan-out is the
// only parallelism being measured. Three gates:
//
//  * bit-identity (HARD, exit 2): every result at every N must match the
//    serial KoiosSearcher reference bit for bit (set, score, exact flag).
//    This is the tentpole's equivalence contract: sharding is an execution
//    strategy, never a semantics change.
//  * θlb exchange (HARD, exit 2): with the cross-shard exchange ON, the
//    summed per-shard stream_tuples_produced over the query set must be
//    LOWER than with it off, at identical results. Measured through the
//    coordinator's sequential-scatter mode, where tuple counts are
//    deterministic (shard 0's bound is already published when shard 1
//    starts).
//  * scaling (soft, exit 3): QPS at N=4 must reach 2.5× N=1. Needs ≥ 4
//    real cores; smaller hosts report and exit 3 (tolerated in CI, same
//    convention as the other benches' timing bars).
//
// Usage: bench_shard_scaling [--json out.json] [--sets N] [--queries N]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "koios/core/searcher.h"
#include "koios/data/corpus.h"
#include "koios/data/query_benchmark.h"
#include "koios/embedding/synthetic_model.h"
#include "koios/serve/latency_recorder.h"
#include "koios/serve/query_engine.h"
#include "koios/serve/shard_coordinator.h"
#include "koios/sim/cosine_similarity.h"
#include "koios/sim/exact_knn_index.h"
#include "koios/util/rng.h"
#include "koios/util/timer.h"

namespace koios {
namespace {

constexpr double kRequiredSpeedupAt4 = 2.5;

struct Scenario {
  std::vector<TokenId> tokens;
  core::SearchParams params;
};

struct ShardRun {
  size_t shards = 0;
  double qps = 0.0;
  double speedup = 1.0;
  serve::LatencyRecorder latency;
  size_t sum_produced = 0;  // Σ per-shard stream_tuples_produced
  bool exact = true;
};

bool SameResult(const core::SearchResult& got, const core::SearchResult& want) {
  if (got.topk.size() != want.topk.size()) return false;
  for (size_t i = 0; i < got.topk.size(); ++i) {
    if (got.topk[i].set != want.topk[i].set ||
        got.topk[i].score != want.topk[i].score ||
        got.topk[i].exact != want.topk[i].exact) {
      return false;
    }
  }
  return true;
}

int Run(size_t num_sets, size_t num_queries, const std::string& json_path) {
  // ---- partitioned corpus ----------------------------------------------
  data::CorpusSpec spec;
  spec.name = "shard-scaling";
  spec.num_sets = num_sets;
  spec.vocab_size = 6000;  // long posting lists: per-shard refinement work
  spec.element_skew = 0.75;
  spec.size_distribution = data::SizeDistribution::kNormal;
  spec.min_set_size = 5;
  spec.max_set_size = 40;
  spec.avg_set_size = 16.0;
  spec.size_stddev = 7.0;
  spec.seed = 20260808;
  util::WallTimer setup_timer;
  data::Corpus corpus = data::GenerateCorpus(spec);

  embedding::SyntheticModelSpec model_spec;
  model_spec.vocab_size = spec.vocab_size;
  model_spec.dim = 32;
  model_spec.avg_cluster_size = 12.0;
  model_spec.noise_sigma = 0.38;
  model_spec.coverage = 0.92;
  model_spec.seed = spec.seed + 1;
  embedding::SyntheticEmbeddingModel model(model_spec);
  sim::CosineEmbeddingSimilarity cosine(&model.store());
  sim::ExactKnnIndex index(corpus.vocabulary, &cosine);
  core::KoiosSearcher serial(&corpus.sets, &index);
  std::printf("[setup] %zu sets, %zu vocab, %.1fs\n", corpus.NumSets(),
              corpus.vocabulary.size(), setup_timer.ElapsedSeconds());

  // ---- mixed scenarios --------------------------------------------------
  // Queries are stored sets (SampleQueriesUniform), so the self-match
  // drives θlb to ≈|Q|. k=1 is in the mix deliberately: it is the case
  // where the θlb exchange visibly pays — the shard owning the query's
  // source set publishes θ≈|Q|, and every shard scattered after it stops
  // its token stream at τ=θ/|Q|≈1 instead of draining to α. Larger k
  // keeps the k-th score (and thus τ) below α on a de-duplicated corpus,
  // so those queries measure the no-feedback path.
  const size_t ks[] = {1, 5, 10};
  const Score alphas[] = {0.7, 0.8};
  util::Rng rng(525253);
  const auto sampled =
      data::SampleQueriesUniform(corpus, num_queries, &rng);
  std::vector<Scenario> scenarios;
  for (size_t i = 0; i < sampled.size(); ++i) {
    Scenario s;
    s.tokens = sampled[i].tokens;
    s.params.k = ks[i % 3];
    s.params.alpha = alphas[i % 2];
    s.params.num_threads = 1;
    scenarios.push_back(std::move(s));
  }

  // ---- serial reference (also warms the shared cursor cache) -----------
  std::vector<core::SearchResult> reference;
  for (const Scenario& s : scenarios) {
    reference.push_back(serial.Search(s.tokens, s.params));
  }

  // ---- per-N closed loop -----------------------------------------------
  // One query worker: QPS is 1 / single-query latency, so the ratio to
  // N=1 is exactly the scatter-gather speedup of ONE query.
  const size_t shard_counts[] = {1, 2, 4, 8};
  std::vector<ShardRun> runs;
  for (const size_t shards : shard_counts) {
    ShardRun run;
    run.shards = shards;
    serve::EngineOptions options;
    options.num_threads = 1;
    options.num_shards = shards;
    options.max_queue = scenarios.size();
    serve::QueryEngine engine(&corpus.sets, &index, options);

    util::WallTimer timer;
    for (size_t i = 0; i < scenarios.size(); ++i) {
      util::WallTimer query_timer;
      serve::QueryEngine::Result r =
          engine.Submit(scenarios[i].tokens, scenarios[i].params).get();
      run.latency.Record(query_timer.ElapsedSeconds());
      if (!r.ok() || !SameResult(r.value(), reference[i])) run.exact = false;
    }
    const double sec = timer.ElapsedSeconds();
    run.qps = static_cast<double>(scenarios.size()) / sec;
    for (size_t i = 0; i < shards; ++i) {
      run.sum_produced += engine.shard_search_stats(i).stream_tuples_produced;
    }
    runs.push_back(std::move(run));
  }
  for (ShardRun& run : runs) run.speedup = run.qps / runs[0].qps;

  // ---- θlb exchange ablation (deterministic, sequential scatter) -------
  // The coordinator's null-pool mode runs shards one after another, so the
  // tuple counts don't depend on a thread race: this is the reproducible
  // FLOOR of the exchange saving (concurrent runs publish earlier).
  size_t produced_on = 0, produced_off = 0;
  bool ablation_exact = true;
  for (const bool exchange : {true, false}) {
    serve::ShardOptions shard_options;
    shard_options.num_shards = 4;
    shard_options.theta_exchange = exchange;
    serve::ShardCoordinator coordinator(&corpus.sets, &index, shard_options);
    size_t produced = 0;
    for (size_t i = 0; i < scenarios.size(); ++i) {
      serve::ShardCoordinator::QueryReport report;
      const core::SearchResult r = coordinator.Execute(
          scenarios[i].tokens, scenarios[i].params, {},
          /*shard_pool=*/nullptr, &report);
      for (const core::SearchStats& stats : report.shard_stats) {
        produced += stats.stream_tuples_produced;
      }
      if (!SameResult(r, reference[i])) ablation_exact = false;
    }
    (exchange ? produced_on : produced_off) = produced;
  }

  // ---- report -----------------------------------------------------------
  std::printf("\n=== shard scaling: %zu sets, %zu queries ===\n",
              corpus.NumSets(), scenarios.size());
  std::printf("%-8s | %9s | %8s | %9s | %9s | %12s | %s\n", "shards", "QPS",
              "speedup", "p50 ms", "p99 ms", "Σ produced", "exact");
  std::printf("%s\n", std::string(78, '-').c_str());
  for (const ShardRun& run : runs) {
    std::printf("%-8zu | %9.2f | %7.2fx | %9.2f | %9.2f | %12zu | %s\n",
                run.shards, run.qps, run.speedup,
                run.latency.Percentile(50) * 1e3,
                run.latency.Percentile(99) * 1e3, run.sum_produced,
                run.exact ? "yes" : "NO");
  }
  const double exchange_saving =
      produced_off > 0
          ? 1.0 - static_cast<double>(produced_on) /
                      static_cast<double>(produced_off)
          : 0.0;
  std::printf(
      "θlb exchange (N=4, sequential): %zu tuples produced with, %zu "
      "without (%.1f%% saved), results %s\n",
      produced_on, produced_off, exchange_saving * 100.0,
      ablation_exact ? "identical" : "DIVERGED");
  std::printf("hardware threads: %u\n", std::thread::hardware_concurrency());

  const double speedup4 = runs[2].speedup;
  bool exact = ablation_exact;
  for (const ShardRun& run : runs) exact &= run.exact;

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
    } else {
      std::fprintf(f, "{\n  \"bench\": \"shard_scaling\",\n");
      std::fprintf(f,
                   "  \"corpus\": {\"sets\": %zu, \"vocab\": %zu},\n"
                   "  \"queries\": %zu,\n  \"hardware_threads\": %u,\n",
                   corpus.NumSets(), corpus.vocabulary.size(),
                   scenarios.size(), std::thread::hardware_concurrency());
      std::fprintf(f, "  \"runs\": [\n");
      for (size_t i = 0; i < runs.size(); ++i) {
        const ShardRun& run = runs[i];
        std::fprintf(f,
                     "    {\"shards\": %zu, \"qps\": %.2f, \"speedup\": "
                     "%.3f, \"p50_ms\": %.3f, \"p99_ms\": %.3f, "
                     "\"sum_produced\": %zu}%s\n",
                     run.shards, run.qps, run.speedup,
                     run.latency.Percentile(50) * 1e3,
                     run.latency.Percentile(99) * 1e3, run.sum_produced,
                     i + 1 < runs.size() ? "," : "");
      }
      std::fprintf(f, "  ],\n");
      std::fprintf(f,
                   "  \"theta_exchange\": {\"produced_with\": %zu, "
                   "\"produced_without\": %zu, \"saving\": %.4f},\n",
                   produced_on, produced_off, exchange_saving);
      std::fprintf(f, "  \"exact\": %s\n}\n", exact ? "true" : "false");
      std::fclose(f);
      std::printf("json written to %s\n", json_path.c_str());
    }
  }

  if (!exact) {
    std::fprintf(stderr,
                 "ERROR: sharded results diverged from the serial reference "
                 "— the bit-identity contract is broken\n");
    return 2;
  }
  if (produced_on >= produced_off) {
    std::fprintf(stderr,
                 "ERROR: θlb exchange did not reduce producer work (%zu with "
                 ">= %zu without)\n",
                 produced_on, produced_off);
    return 2;
  }
  if (speedup4 < kRequiredSpeedupAt4) {
    std::fprintf(stderr,
                 "WARN: N=4 speedup %.2fx below the %.1fx bar (needs >= 4 "
                 "real cores; this host reports %u)\n",
                 speedup4, kRequiredSpeedupAt4,
                 std::thread::hardware_concurrency());
    return 3;
  }
  return 0;
}

}  // namespace
}  // namespace koios

int main(int argc, char** argv) {
  size_t num_sets = 100000;
  size_t num_queries = 36;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--sets") == 0 && i + 1 < argc) {
      num_sets = static_cast<size_t>(std::stoul(argv[++i]));
    } else if (std::strcmp(argv[i], "--queries") == 0 && i + 1 < argc) {
      num_queries = static_cast<size_t>(std::stoul(argv[++i]));
    }
  }
  return koios::Run(num_sets, num_queries, json_path);
}
