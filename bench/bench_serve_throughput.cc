// Throughput harness for the serve subsystem (ISSUE 4): aggregate QPS and
// tail latency of the concurrent QueryEngine versus serial one-at-a-time
// KoiosSearcher::Search over the same corpus, same mixed workload.
//
// Workload: a scenario sampler draws stored sets as queries and cycles
// k ∈ {1, 5, 10, 20} × α ∈ {0.7, 0.8, 0.9}, so the engine juggles cheap
// and expensive queries and the α-keyed cursor cache is exercised across
// thresholds. Three measurements:
//
//  * serial      — the whole query stream through KoiosSearcher::Search on
//                  one thread (the pre-serve execution model), warm cache.
//  * closed loop — C client threads, each submitting its slice of the same
//                  stream synchronously (Submit().get()); aggregate QPS.
//                  This is the acceptance measurement: ≥ 3× serial QPS at
//                  8 concurrent clients — on ≥ 4 real cores; a 1–2 core
//                  runner physically cannot exceed ~1× (exit 3, tolerated,
//                  same convention as the other benches' timing bars).
//  * open loop   — arrivals on a fixed schedule at 70% of the closed-loop
//                  rate; latency = completion − scheduled arrival (queue
//                  wait included), reported as p50/p95/p99 through
//                  serve::LatencyRecorder.
//
// Exactness is a HARD gate (exit 2): every engine result must be
// bit-identical (set, score, exact flag) to the serial reference — the
// shared cursor cache is deterministic and per-query state is isolated,
// so concurrency must not move a single bit — and the first scenarios are
// additionally spot-checked against the direct semantic-overlap oracle.
//
// Usage: bench_serve_throughput [--json out.json] [--queries N]
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "koios/core/searcher.h"
#include "koios/data/corpus.h"
#include "koios/data/query_benchmark.h"
#include "koios/embedding/synthetic_model.h"
#include "koios/matching/semantic_overlap.h"
#include "koios/serve/latency_recorder.h"
#include "koios/serve/query_engine.h"
#include "koios/sim/cosine_similarity.h"
#include "koios/sim/exact_knn_index.h"
#include "koios/util/rng.h"
#include "koios/util/timer.h"

namespace koios {
namespace {

constexpr double kRequiredSpeedup = 3.0;  // at 8 closed-loop clients

struct Scenario {
  std::vector<TokenId> tokens;
  core::SearchParams params;
};

struct LoopOutcome {
  double sec = 0.0;
  double qps = 0.0;
  bool exact = true;
};

bool SameResult(const core::SearchResult& got, const core::SearchResult& want) {
  if (got.topk.size() != want.topk.size()) return false;
  for (size_t i = 0; i < got.topk.size(); ++i) {
    if (got.topk[i].set != want.topk[i].set ||
        got.topk[i].score != want.topk[i].score ||
        got.topk[i].exact != want.topk[i].exact) {
      return false;
    }
  }
  return true;
}

int Run(size_t total_queries, const std::string& json_path) {
  // ---- corpus + snapshot-equivalent serving structures ------------------
  data::CorpusSpec spec;
  spec.name = "serve-throughput";
  spec.num_sets = 2500;
  spec.vocab_size = 3000;
  spec.element_skew = 0.7;
  spec.size_distribution = data::SizeDistribution::kNormal;
  spec.min_set_size = 6;
  spec.max_set_size = 40;
  spec.avg_set_size = 18.0;
  spec.size_stddev = 8.0;
  spec.seed = 20260731;
  util::WallTimer setup_timer;
  data::Corpus corpus = data::GenerateCorpus(spec);

  embedding::SyntheticModelSpec model_spec;
  model_spec.vocab_size = spec.vocab_size;
  model_spec.dim = 32;
  model_spec.avg_cluster_size = 12.0;
  model_spec.noise_sigma = 0.38;
  model_spec.coverage = 0.92;
  model_spec.seed = spec.seed + 1;
  embedding::SyntheticEmbeddingModel model(model_spec);
  sim::CosineEmbeddingSimilarity cosine(&model.store());
  sim::ExactKnnIndex index(corpus.vocabulary, &cosine);
  core::KoiosSearcher serial_searcher(&corpus.sets, &index);
  std::printf("[setup] %zu sets, %zu vocab, %.1fs\n", corpus.NumSets(),
              corpus.vocabulary.size(), setup_timer.ElapsedSeconds());

  // ---- mixed scenario sampler ------------------------------------------
  const size_t ks[] = {1, 5, 10, 20};
  const Score alphas[] = {0.7, 0.8, 0.9};
  util::Rng rng(424243);
  const auto sampled = data::SampleQueriesUniform(corpus, 48, &rng);
  std::vector<Scenario> scenarios;
  for (size_t i = 0; i < sampled.size(); ++i) {
    Scenario s;
    s.tokens = sampled[i].tokens;
    s.params.k = ks[i % 4];
    s.params.alpha = alphas[i % 3];
    s.params.num_threads = 1;  // engine policy; serial uses the same
    scenarios.push_back(std::move(s));
  }
  // The measured stream cycles the scenarios (cache-warm steady state, the
  // serving regime this engine targets).
  std::vector<size_t> stream(total_queries);
  for (size_t i = 0; i < stream.size(); ++i) stream[i] = i % scenarios.size();

  // ---- reference results + oracle spot-check (also warms the cache) ----
  std::vector<core::SearchResult> reference;
  for (const Scenario& s : scenarios) {
    reference.push_back(serial_searcher.Search(s.tokens, s.params));
  }
  bool oracle_ok = true;
  for (size_t i = 0; i < std::min<size_t>(8, scenarios.size()); ++i) {
    for (const core::ResultEntry& entry : reference[i].topk) {
      const Score truth = matching::SemanticOverlap(
          scenarios[i].tokens, corpus.sets.Tokens(entry.set), cosine,
          scenarios[i].params.alpha);
      if (std::abs(entry.score - truth) > 1e-9) oracle_ok = false;
    }
  }

  // ---- serial baseline --------------------------------------------------
  LoopOutcome serial;
  {
    util::WallTimer timer;
    bool exact = true;
    for (const size_t si : stream) {
      const core::SearchResult r =
          serial_searcher.Search(scenarios[si].tokens, scenarios[si].params);
      exact &= SameResult(r, reference[si]);
    }
    serial.sec = timer.ElapsedSeconds();
    serial.qps = static_cast<double>(stream.size()) / serial.sec;
    serial.exact = exact;
  }

  // ---- closed loop ------------------------------------------------------
  const size_t client_counts[] = {2, 8};
  LoopOutcome closed[2];
  for (size_t ci = 0; ci < 2; ++ci) {
    const size_t clients = client_counts[ci];
    serve::EngineOptions options;
    options.num_threads = clients;
    options.max_queue = stream.size();
    serve::QueryEngine engine(&corpus.sets, &index, options);
    std::atomic<size_t> mismatches{0};
    util::WallTimer timer;
    std::vector<std::thread> workers;
    for (size_t c = 0; c < clients; ++c) {
      workers.emplace_back([&, c] {
        for (size_t i = c; i < stream.size(); i += clients) {
          const size_t si = stream[i];
          serve::QueryEngine::Result r =
              engine.Submit(scenarios[si].tokens, scenarios[si].params).get();
          if (!r.ok() || !SameResult(r.value(), reference[si])) ++mismatches;
        }
      });
    }
    for (auto& w : workers) w.join();
    closed[ci].sec = timer.ElapsedSeconds();
    closed[ci].qps = static_cast<double>(stream.size()) / closed[ci].sec;
    closed[ci].exact = mismatches.load() == 0;
  }

  // ---- open loop --------------------------------------------------------
  // Arrivals at 70% of the measured 8-client closed-loop rate; latency is
  // completion − SCHEDULED arrival, so queue wait (and schedule slip under
  // overload) counts against the tail. Completions are harvested in submit
  // order — the engine pool is FIFO, so this adds no systematic bias.
  const double open_rate = 0.7 * closed[1].qps;
  serve::LatencyRecorder open_latency;
  double open_sec = 0.0;
  bool open_exact = true;
  {
    serve::EngineOptions options;
    options.num_threads = 8;
    options.max_queue = stream.size();
    serve::QueryEngine engine(&corpus.sets, &index, options);
    using Clock = std::chrono::steady_clock;
    const auto start = Clock::now();
    const auto interval = std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(1.0 / std::max(open_rate, 1.0)));
    std::vector<std::future<serve::QueryEngine::Result>> futures;
    std::vector<Clock::time_point> scheduled;
    futures.reserve(stream.size());
    for (size_t i = 0; i < stream.size(); ++i) {
      const auto arrival = start + interval * static_cast<long>(i);
      std::this_thread::sleep_until(arrival);
      scheduled.push_back(arrival);
      const size_t si = stream[i];
      futures.push_back(
          engine.Submit(scenarios[si].tokens, scenarios[si].params));
    }
    for (size_t i = 0; i < futures.size(); ++i) {
      serve::QueryEngine::Result r = futures[i].get();
      const auto done = Clock::now();
      open_latency.Record(
          std::chrono::duration<double>(done - scheduled[i]).count());
      if (!r.ok() || !SameResult(r.value(), reference[stream[i]])) {
        open_exact = false;
      }
    }
    open_sec = std::chrono::duration<double>(Clock::now() - start).count();
  }

  const sim::CursorCacheStats cache = index.cursor_cache_stats();

  // ---- report -----------------------------------------------------------
  const double speedup2 = closed[0].qps / serial.qps;
  const double speedup8 = closed[1].qps / serial.qps;
  std::printf("\n=== serve throughput: %zu queries, %zu scenarios ===\n",
              stream.size(), scenarios.size());
  std::printf("%-22s | %9s | %8s | %s\n", "mode", "QPS", "speedup", "exact");
  std::printf("%s\n", std::string(60, '-').c_str());
  std::printf("%-22s | %9.1f | %8s | %s\n", "serial (1 thread)", serial.qps,
              "1.0x", serial.exact ? "yes" : "NO");
  std::printf("%-22s | %9.1f | %7.1fx | %s\n", "closed loop, 2 clients",
              closed[0].qps, speedup2, closed[0].exact ? "yes" : "NO");
  std::printf("%-22s | %9.1f | %7.1fx | %s\n", "closed loop, 8 clients",
              closed[1].qps, speedup8, closed[1].exact ? "yes" : "NO");
  std::printf("%-22s | %9.1f | %8s | %s\n", "open loop (0.7x rate)",
              static_cast<double>(stream.size()) / open_sec, "-",
              open_exact ? "yes" : "NO");
  std::printf("open-loop latency: %s\n", open_latency.Summary().c_str());
  std::printf(
      "cursor cache: %llu hits, %llu misses, %llu duplicate builds, %llu "
      "cursors\n",
      static_cast<unsigned long long>(cache.hits),
      static_cast<unsigned long long>(cache.misses),
      static_cast<unsigned long long>(cache.duplicate_builds),
      static_cast<unsigned long long>(cache.cursors));
  std::printf("hardware threads: %u\n", std::thread::hardware_concurrency());

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
    } else {
      std::fprintf(f, "{\n  \"bench\": \"serve_throughput\",\n");
      std::fprintf(f,
                   "  \"corpus\": {\"sets\": %zu, \"vocab\": %zu},\n"
                   "  \"queries\": %zu, \"scenarios\": %zu,\n"
                   "  \"hardware_threads\": %u,\n",
                   corpus.NumSets(), corpus.vocabulary.size(), stream.size(),
                   scenarios.size(), std::thread::hardware_concurrency());
      std::fprintf(f, "  \"serial\": {\"qps\": %.2f, \"sec\": %.4f},\n",
                   serial.qps, serial.sec);
      std::fprintf(f,
                   "  \"closed_loop\": [\n"
                   "    {\"clients\": 2, \"qps\": %.2f, \"speedup\": %.3f},\n"
                   "    {\"clients\": 8, \"qps\": %.2f, \"speedup\": %.3f}\n"
                   "  ],\n",
                   closed[0].qps, speedup2, closed[1].qps, speedup8);
      std::fprintf(f,
                   "  \"open_loop\": {\"rate_qps\": %.2f, \"p50_ms\": %.3f, "
                   "\"p95_ms\": %.3f, \"p99_ms\": %.3f},\n",
                   open_rate, open_latency.Percentile(50) * 1e3,
                   open_latency.Percentile(95) * 1e3,
                   open_latency.Percentile(99) * 1e3);
      std::fprintf(
          f,
          "  \"cursor_cache\": {\"hits\": %llu, \"misses\": %llu, "
          "\"duplicate_builds\": %llu},\n",
          static_cast<unsigned long long>(cache.hits),
          static_cast<unsigned long long>(cache.misses),
          static_cast<unsigned long long>(cache.duplicate_builds));
      std::fprintf(f, "  \"exact\": %s\n}\n",
                   (serial.exact && closed[0].exact && closed[1].exact &&
                    open_exact && oracle_ok)
                       ? "true"
                       : "false");
      std::fclose(f);
      std::printf("json written to %s\n", json_path.c_str());
    }
  }

  if (!serial.exact || !closed[0].exact || !closed[1].exact || !open_exact ||
      !oracle_ok) {
    std::fprintf(stderr,
                 "ERROR: engine results diverged from the serial reference "
                 "(or the oracle)\n");
    return 2;
  }
  if (speedup8 < kRequiredSpeedup) {
    std::fprintf(stderr,
                 "WARN: 8-client speedup %.2fx below the %.1fx bar (needs >= 4 "
                 "real cores; this host reports %u)\n",
                 speedup8, kRequiredSpeedup,
                 std::thread::hardware_concurrency());
    return 3;
  }
  return 0;
}

}  // namespace
}  // namespace koios

int main(int argc, char** argv) {
  size_t total_queries = 160;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--queries") == 0 && i + 1 < argc) {
      total_queries = static_cast<size_t>(std::stoul(argv[++i]));
    }
  }
  return koios::Run(total_queries, json_path);
}
