// Shared infrastructure for the per-table / per-figure benchmark binaries.
//
// Every binary builds laptop-scale replicas of the paper's datasets
// (Table I shapes, see koios/data/corpus.h) — the scale factors below are
// recorded in EXPERIMENTS.md. Heavy-tailed presets additionally cap the
// maximum set cardinality so a single exact matching stays tractable on
// one core; the paper itself reports time-outs (2500 s) for its largest
// sets on a 64-core box.
#ifndef KOIOS_BENCH_BENCH_UTIL_H_
#define KOIOS_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "koios/baselines/brute_force.h"
#include "koios/core/searcher.h"
#include "koios/data/corpus.h"
#include "koios/data/query_benchmark.h"
#include "koios/embedding/synthetic_model.h"
#include "koios/sim/cosine_similarity.h"
#include "koios/sim/exact_knn_index.h"
#include "koios/util/rng.h"
#include "koios/util/timer.h"

namespace koios::bench {

enum class Dataset { kDblp, kOpenData, kTwitter, kWdc };

inline const char* DatasetName(Dataset d) {
  switch (d) {
    case Dataset::kDblp:
      return "DBLP";
    case Dataset::kOpenData:
      return "OpenData";
    case Dataset::kTwitter:
      return "Twitter";
    case Dataset::kWdc:
      return "WDC";
  }
  return "?";
}

/// Benchmark-scale corpus spec per dataset. Set counts and vocabulary
/// sizes are scaled *separately*: scaling the vocabulary less than the set
/// count keeps posting lists long and candidate graphs dense, preserving
/// the paper's cost structure (verification dominates the baseline) on a
/// one-core replica. Cardinality distributions and element skew follow
/// Table I; heavy tails are capped so a single exact matching stays
/// tractable.
inline data::CorpusSpec BenchSpec(Dataset d) {
  switch (d) {
    case Dataset::kDblp: {
      auto spec = data::DblpSpec(1.0);
      spec.num_sets = 1273;    // 0.3x
      spec.vocab_size = 2516;  // 0.1x
      return spec;
    }
    case Dataset::kOpenData: {
      auto spec = data::OpenDataSpec(1.0);
      spec.num_sets = 2345;    // 0.15x
      spec.vocab_size = 7193;  // 0.04x
      spec.max_set_size = 800;
      return spec;
    }
    case Dataset::kTwitter: {
      auto spec = data::TwitterSpec(1.0);
      spec.num_sets = 27204;   // 1.0x (sets are tiny; count drives the baseline cost)
      spec.vocab_size = 5832;  // 0.08x
      return spec;
    }
    case Dataset::kWdc: {
      auto spec = data::WdcSpec(1.0);
      spec.num_sets = 15215;   // 0.015x
      spec.vocab_size = 3940;  // 0.012x — WDC's very long posting lists
      spec.max_set_size = 600;
      return spec;
    }
  }
  return {};
}

struct BenchWorkload {
  Dataset dataset;
  data::Corpus corpus;
  std::unique_ptr<embedding::SyntheticEmbeddingModel> model;
  std::unique_ptr<sim::CosineEmbeddingSimilarity> sim;
  std::unique_ptr<sim::ExactKnnIndex> index;
};

inline BenchWorkload MakeBenchWorkload(Dataset d) {
  BenchWorkload w;
  w.dataset = d;
  const data::CorpusSpec spec = BenchSpec(d);
  util::WallTimer timer;
  w.corpus = data::GenerateCorpus(spec);

  embedding::SyntheticModelSpec model_spec;
  model_spec.vocab_size = spec.vocab_size;
  model_spec.dim = 32;
  model_spec.avg_cluster_size = 16.0;
  model_spec.noise_sigma = 0.38;
  // The paper filters OpenData/WDC at 70% embedding coverage; DBLP and
  // Twitter text is mostly covered by FastText.
  model_spec.coverage =
      (d == Dataset::kOpenData || d == Dataset::kWdc) ? 0.8 : 0.95;
  model_spec.seed = spec.seed * 31 + 1;
  w.model = std::make_unique<embedding::SyntheticEmbeddingModel>(model_spec);
  w.sim = std::make_unique<sim::CosineEmbeddingSimilarity>(&w.model->store());
  w.index = std::make_unique<sim::ExactKnnIndex>(w.corpus.vocabulary, w.sim.get());
  std::fprintf(stderr, "[setup] %s: %zu sets, %zu vocab, built in %.1fs\n",
               DatasetName(d), w.corpus.NumSets(), w.corpus.vocabulary.size(),
               timer.ElapsedSeconds());
  return w;
}

/// Benchmark queries for a workload: interval-sampled for the skewed
/// datasets (OpenData, WDC), uniform for DBLP / Twitter (paper §VIII-A2).
struct BenchQueries {
  std::vector<data::CardinalityInterval> intervals;  // empty if uniform
  std::vector<data::BenchmarkQuery> queries;
};

inline BenchQueries MakeBenchQueries(const BenchWorkload& w,
                                     size_t per_interval, size_t uniform_count,
                                     uint64_t seed = 424242) {
  BenchQueries out;
  util::Rng rng(seed);
  const size_t max_size = w.corpus.sets.MaxSetSize();
  if (w.dataset == Dataset::kOpenData) {
    out.intervals = data::OpenDataIntervals(max_size);
    out.queries =
        data::SampleQueriesByInterval(w.corpus, out.intervals, per_interval, &rng);
  } else if (w.dataset == Dataset::kWdc) {
    out.intervals = data::WdcIntervals(max_size);
    out.queries =
        data::SampleQueriesByInterval(w.corpus, out.intervals, per_interval, &rng);
  } else {
    out.queries = data::SampleQueriesUniform(w.corpus, uniform_count, &rng);
  }
  return out;
}

/// Aggregates per-query measurements (means over a benchmark).
struct Aggregate {
  double sum = 0.0;
  size_t n = 0;
  void Add(double x) {
    sum += x;
    ++n;
  }
  double Mean() const { return n == 0 ? 0.0 : sum / static_cast<double>(n); }
};

/// One Koios run over a query; wall-clock response plus the engine stats.
struct RunOutcome {
  double response_sec = 0.0;
  double refinement_sec = 0.0;
  double postprocess_sec = 0.0;
  size_t memory_bytes = 0;
  core::SearchStats stats;
  Score kth_score = 0.0;
  std::vector<core::ResultEntry> topk;
};

inline RunOutcome RunKoios(core::KoiosSearcher* searcher,
                           const std::vector<TokenId>& query,
                           const core::SearchParams& params) {
  util::WallTimer timer;
  core::SearchResult result = searcher->Search(query, params);
  RunOutcome out;
  out.response_sec = timer.ElapsedSeconds();
  out.refinement_sec = result.stats.timers.Get("refinement");
  out.postprocess_sec = result.stats.timers.Get("postprocess");
  out.memory_bytes = result.stats.memory.TotalBytes();
  out.kth_score = result.KthScore();
  out.stats = result.stats;
  out.topk = std::move(result.topk);
  return out;
}

inline RunOutcome RunBaseline(baselines::BruteForceBaseline* baseline,
                              const std::vector<TokenId>& query,
                              const baselines::BaselineOptions& options) {
  util::WallTimer timer;
  core::SearchResult result = baseline->Search(query, options);
  RunOutcome out;
  out.response_sec = timer.ElapsedSeconds();
  out.refinement_sec = result.stats.timers.Get("refinement");
  out.postprocess_sec = result.stats.timers.Get("postprocess");
  out.memory_bytes = result.stats.memory.TotalBytes();
  out.kth_score = result.KthScore();
  out.stats = result.stats;
  out.topk = std::move(result.topk);
  return out;
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void PrintRule() {
  std::printf("%s\n", std::string(78, '-').c_str());
}

}  // namespace koios::bench

#endif  // KOIOS_BENCH_BENCH_UTIL_H_
