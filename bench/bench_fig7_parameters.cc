// Figure 7 — parameter analysis on OpenData:
//   (a) response time vs number of partitions (also phase share)
//   (b) response time vs element similarity threshold α
//   (c) response time vs result size k
//   (d) memory footprint vs α
//
// Shapes from the paper: (a) time falls as partitions grow (shared θlb +
// parallelism) and the post-processing share shrinks; (b) higher α =>
// faster (fewer edges, cheaper matching); (c) larger k => *lower* average
// time (counter-intuitive: more sets reach the result quickly, less
// post-processing work); (d) memory rises slightly with α (smaller θlb =>
// more sets reach post-processing).
#include <cstdio>

#include "bench_util.h"

namespace koios::bench {
namespace {

std::vector<data::BenchmarkQuery> SampleForSweep(const BenchWorkload& w,
                                                 size_t count) {
  util::Rng rng(777);
  return data::SampleQueriesUniform(w.corpus, count, &rng);
}

void Run() {
  BenchWorkload w = MakeBenchWorkload(Dataset::kOpenData);
  const auto queries = SampleForSweep(w, 10);

  // ---- (a) partitions sweep ---------------------------------------------
  PrintHeader("Figure 7a: time vs #partitions (k=10, alpha=0.8)");
  std::printf("%-12s | %12s | %9s %9s\n", "partitions", "response(s)",
              "refine%", "post%");
  PrintRule();
  for (size_t partitions : {1, 2, 5, 10, 20}) {
    core::SearcherOptions options;
    options.num_partitions = partitions;
    core::KoiosSearcher searcher(&w.corpus.sets, w.index.get(), options);
    core::SearchParams params;
    params.k = 10;
    params.alpha = 0.8;
    params.verify_result_scores = false;
    Aggregate t, refine_share, post_share;
    for (const auto& query : queries) {
      const RunOutcome out = RunKoios(&searcher, query.tokens, params);
      t.Add(out.response_sec);
      const double total = out.refinement_sec + out.postprocess_sec;
      if (total > 0) {
        refine_share.Add(100.0 * out.refinement_sec / total);
        post_share.Add(100.0 * out.postprocess_sec / total);
      }
    }
    std::printf("%-12zu | %12.4f | %8.1f%% %8.1f%%\n", partitions, t.Mean(),
                refine_share.Mean(), post_share.Mean());
  }

  // ---- (b) + (d) alpha sweep --------------------------------------------
  PrintHeader("Figure 7b/7d: time and memory vs alpha (k=10, 10 partitions)");
  std::printf("%-8s | %12s | %11s\n", "alpha", "response(s)", "memory(MB)");
  PrintRule();
  core::SearcherOptions options;
  options.num_partitions = 10;
  core::KoiosSearcher searcher(&w.corpus.sets, w.index.get(), options);
  for (double alpha : {0.6, 0.7, 0.8, 0.9}) {
    core::SearchParams params;
    params.k = 10;
    params.alpha = alpha;
    params.verify_result_scores = false;
    Aggregate t, mem;
    for (const auto& query : queries) {
      const RunOutcome out = RunKoios(&searcher, query.tokens, params);
      t.Add(out.response_sec);
      mem.Add(static_cast<double>(out.memory_bytes) / (1 << 20));
    }
    std::printf("%-8.2f | %12.4f | %11.2f\n", alpha, t.Mean(), mem.Mean());
  }

  // ---- (c) k sweep -------------------------------------------------------
  PrintHeader("Figure 7c: time vs k (alpha=0.8, 10 partitions)");
  std::printf("%-8s | %12s | %9s %9s\n", "k", "response(s)", "refine%",
              "post%");
  PrintRule();
  for (size_t k : {10, 20, 50, 100}) {
    core::SearchParams params;
    params.k = k;
    params.alpha = 0.8;
    params.verify_result_scores = false;
    Aggregate t, refine_share, post_share;
    for (const auto& query : queries) {
      const RunOutcome out = RunKoios(&searcher, query.tokens, params);
      t.Add(out.response_sec);
      const double total = out.refinement_sec + out.postprocess_sec;
      if (total > 0) {
        refine_share.Add(100.0 * out.refinement_sec / total);
        post_share.Add(100.0 * out.postprocess_sec / total);
      }
    }
    std::printf("%-8zu | %12.4f | %8.1f%% %8.1f%%\n", k, t.Mean(),
                refine_share.Mean(), post_share.Mean());
  }
  std::printf(
      "\nNote: this machine has 1 core, so the partition sweep shows the"
      " shared-theta_lb\npruning effect but not wall-clock parallel speedup;"
      " per-partition work totals\nare the comparable quantity.\n");
}

}  // namespace
}  // namespace koios::bench

int main() {
  koios::bench::Run();
  return 0;
}
