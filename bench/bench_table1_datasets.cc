// Table I — Characteristics of datasets.
//
// Prints the generated benchmark replicas' statistics next to the paper's
// full-scale numbers so the shape preservation (ratios, not absolutes) can
// be checked at a glance.
#include <cstdio>

#include "bench_util.h"

namespace koios::bench {
namespace {

struct PaperRow {
  const char* name;
  size_t sets, max_size;
  double avg_size;
  size_t uniq;
};

constexpr PaperRow kPaper[] = {
    {"DBLP", 4246, 514, 178.7, 25159},
    {"OpenData", 15636, 31901, 86.4, 179830},
    {"Twitter", 27204, 151, 22.6, 72910},
    {"WDC", 1014369, 10240, 30.6, 328357},
};

void Run() {
  PrintHeader("Table I: Characteristics of datasets (replica vs paper)");
  std::printf("%-10s | %22s | %20s | %18s | %24s\n", "Dataset",
              "#Sets (repl/paper)", "MaxSize (repl/paper)",
              "AvgSize (repl/paper)", "#UniqElems (repl/paper)");
  PrintRule();
  const Dataset datasets[] = {Dataset::kDblp, Dataset::kOpenData,
                              Dataset::kTwitter, Dataset::kWdc};
  for (size_t i = 0; i < 4; ++i) {
    const BenchWorkload w = MakeBenchWorkload(datasets[i]);
    std::printf("%-10s | %9zu / %-10zu | %7zu / %-10zu | %7.1f / %-8.1f | %10zu / %-11zu\n",
                kPaper[i].name, w.corpus.NumSets(), kPaper[i].sets,
                w.corpus.sets.MaxSetSize(), kPaper[i].max_size,
                w.corpus.sets.AvgSetSize(), kPaper[i].avg_size,
                w.corpus.sets.DistinctTokens(), kPaper[i].uniq);
  }
  std::printf(
      "\nReplica scales (EXPERIMENTS.md): DBLP 0.15, OpenData 0.05 (max size"
      " capped 800),\nTwitter 0.10, WDC 0.01 (max size capped 600)."
      " Shapes (size distribution family,\nelement skew) follow Table I;"
      " absolutes scale with the factors.\n");
}

}  // namespace
}  // namespace koios::bench

int main() {
  koios::bench::Run();
  return 0;
}
