// Micro-benchmark for the batched approximate-probe path (ISSUE 2): how
// fast can LSH / MinHash bucket probes score their candidate batches, and
// what does the int8 quantized tier cost in accuracy?
//
// Three sections:
//  * lsh     — SimHash probes over cosine embeddings. The seed path
//              (unordered_set candidate union, one virtual Similarity()
//              call per candidate, eager full sort) is reproduced verbatim
//              as the baseline; the batched path is CosineLshIndex, which
//              scores each probe's contiguous candidate batch with one
//              SimilarityBatch kernel call (and, under Prewarm, blocks of
//              queries through SimilarityBatchMulti over the union).
//  * minhash — MinHash-banded probes over q-gram Jaccard; the seed
//              baseline scores candidates by string-gram merge, the
//              batched path through JaccardQGramSimilarity's interned-id
//              merge kernel.
//  * int8    — the fused dequant-dot CosineBatch tier vs kFloat64:
//              throughput, absolute error, and top-10 recall.
//
// Emits a table and, with `--json <path>`, a JSON blob for CI. Exit 2 =
// batched/seed parity mismatch; exit 3 = probe speedup below the 3x
// acceptance bar (tolerated on shared runners).
// Usage: bench_micro_lsh_batch [--json out.json] [--vocab N] [--dim N]
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <functional>
#include <limits>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "koios/data/string_corpus.h"
#include "koios/embedding/synthetic_model.h"
#include "koios/sim/cosine_similarity.h"
#include "koios/sim/jaccard_qgram_similarity.h"
#include "koios/sim/lsh_index.h"
#include "koios/sim/minhash_index.h"
#include "koios/text/qgram.h"
#include "koios/util/rng.h"
#include "koios/util/timer.h"

namespace koios {
namespace {

constexpr size_t kReps = 5;

double BestOf(const std::function<void()>& run) {
  double best = 1e100;
  for (size_t rep = 0; rep < kReps; ++rep) {
    util::WallTimer timer;
    run();
    best = std::min(best, timer.ElapsedSeconds());
  }
  return best;
}

// --------------------------------------------------------------- seed LSH --
// The seed's CosineLshIndex::BuildCursor pipeline, reproduced verbatim.
struct SeedLsh {
  SeedLsh(const std::vector<TokenId>& vocabulary,
          const embedding::EmbeddingStore* store,
          const sim::SimilarityFunction* sim, const sim::LshIndexSpec& spec)
      : store_(store), sim_(sim), spec_(spec) {
    util::Rng rng(spec_.seed);
    hyperplanes_.resize(spec_.num_tables * spec_.bits_per_table);
    for (auto& h : hyperplanes_) {
      h.resize(store_->dim());
      for (auto& x : h) x = static_cast<float>(rng.NextGaussian());
    }
    tables_.resize(spec_.num_tables);
    for (TokenId t : vocabulary) {
      if (!store_->Has(t)) continue;
      const auto vec = store_->VectorOf(t);
      for (size_t table = 0; table < spec_.num_tables; ++table) {
        tables_[table][SignatureOf(vec, table)].push_back(t);
      }
    }
  }

  uint64_t SignatureOf(std::span<const float> vec, size_t table) const {
    uint64_t sig = 0;
    const size_t base = table * spec_.bits_per_table;
    for (size_t bit = 0; bit < spec_.bits_per_table; ++bit) {
      const auto& h = hyperplanes_[base + bit];
      double dot = 0.0;
      for (size_t d = 0; d < vec.size(); ++d) {
        dot += static_cast<double>(h[d]) * vec[d];
      }
      sig = (sig << 1) | (dot >= 0.0 ? 1u : 0u);
    }
    return sig;
  }

  std::vector<sim::Neighbor> BuildCursor(TokenId q, Score alpha) const {
    std::vector<sim::Neighbor> neighbors;
    if (!store_->Has(q)) return neighbors;
    const auto vec = store_->VectorOf(q);
    std::unordered_set<TokenId> candidates;
    for (size_t table = 0; table < spec_.num_tables; ++table) {
      auto it = tables_[table].find(SignatureOf(vec, table));
      if (it == tables_[table].end()) continue;
      candidates.insert(it->second.begin(), it->second.end());
    }
    for (TokenId t : candidates) {
      if (t == q) continue;
      const Score s = sim_->Similarity(q, t);
      if (s >= alpha) neighbors.push_back({t, s});
    }
    std::sort(neighbors.begin(), neighbors.end(),
              [](const sim::Neighbor& a, const sim::Neighbor& b) {
                if (a.sim != b.sim) return a.sim > b.sim;
                return a.token < b.token;
              });
    return neighbors;
  }

  std::vector<TokenId> Candidates(TokenId q) const {
    std::unordered_set<TokenId> candidates;
    if (store_->Has(q)) {
      const auto vec = store_->VectorOf(q);
      for (size_t table = 0; table < spec_.num_tables; ++table) {
        auto it = tables_[table].find(SignatureOf(vec, table));
        if (it != tables_[table].end()) {
          candidates.insert(it->second.begin(), it->second.end());
        }
      }
    }
    std::vector<TokenId> out(candidates.begin(), candidates.end());
    std::sort(out.begin(), out.end());
    return out;
  }

  const embedding::EmbeddingStore* store_;
  const sim::SimilarityFunction* sim_;
  sim::LshIndexSpec spec_;
  std::vector<std::vector<float>> hyperplanes_;
  std::vector<std::unordered_map<uint64_t, std::vector<TokenId>>> tables_;
};

// ----------------------------------------------------------- seed MinHash --
// The seed's MinHashIndex::BuildCursor pipeline (string-gram scoring).
struct SeedMinHash {
  SeedMinHash(const std::vector<TokenId>& vocabulary,
              const sim::JaccardQGramSimilarity* sim,
              const sim::MinHashIndexSpec& spec)
      : sim_(sim), spec_(spec) {
    util::Rng rng(spec_.seed);
    hash_seeds_.resize(spec_.num_bands * spec_.rows_per_band);
    for (auto& s : hash_seeds_) s = rng.NextUint64();
    bands_.resize(spec_.num_bands);
    for (TokenId t : vocabulary) {
      const auto signature = SignatureOf(sim_->GramsOf(t));
      for (size_t band = 0; band < spec_.num_bands; ++band) {
        bands_[band][BandKey(signature, band)].push_back(t);
      }
    }
  }

  static uint64_t HashGram(const std::string& gram, uint64_t seed) {
    uint64_t h = 14695981039346656037ull ^ seed;
    for (unsigned char c : gram) {
      h ^= c;
      h *= 1099511628211ull;
    }
    h ^= h >> 33;
    h *= 0xFF51AFD7ED558CCDull;
    h ^= h >> 33;
    return h;
  }

  std::vector<uint64_t> SignatureOf(
      const std::vector<std::string>& grams) const {
    std::vector<uint64_t> signature(hash_seeds_.size(),
                                    std::numeric_limits<uint64_t>::max());
    for (const auto& gram : grams) {
      for (size_t row = 0; row < hash_seeds_.size(); ++row) {
        signature[row] =
            std::min(signature[row], HashGram(gram, hash_seeds_[row]));
      }
    }
    return signature;
  }

  uint64_t BandKey(const std::vector<uint64_t>& signature, size_t band) const {
    uint64_t key = 0xCBF29CE484222325ull + band;
    for (size_t r = 0; r < spec_.rows_per_band; ++r) {
      key ^= signature[band * spec_.rows_per_band + r] +
             0x9E3779B97F4A7C15ull + (key << 6) + (key >> 2);
    }
    return key;
  }

  std::vector<sim::Neighbor> BuildCursor(TokenId q, Score alpha) const {
    const auto signature = SignatureOf(sim_->GramsOf(q));
    std::unordered_set<TokenId> candidates;
    for (size_t band = 0; band < spec_.num_bands; ++band) {
      auto it = bands_[band].find(BandKey(signature, band));
      if (it == bands_[band].end()) continue;
      candidates.insert(it->second.begin(), it->second.end());
    }
    std::vector<sim::Neighbor> neighbors;
    for (TokenId t : candidates) {
      if (t == q) continue;
      const Score s =
          text::JaccardSorted(sim_->GramsOf(q), sim_->GramsOf(t));
      if (s >= alpha) neighbors.push_back({t, s});
    }
    std::sort(neighbors.begin(), neighbors.end(),
              [](const sim::Neighbor& a, const sim::Neighbor& b) {
                if (a.sim != b.sim) return a.sim > b.sim;
                return a.token < b.token;
              });
    return neighbors;
  }

  std::vector<TokenId> Candidates(TokenId q) const {
    const auto signature = SignatureOf(sim_->GramsOf(q));
    std::unordered_set<TokenId> candidates;
    for (size_t band = 0; band < spec_.num_bands; ++band) {
      auto it = bands_[band].find(BandKey(signature, band));
      if (it != bands_[band].end()) {
        candidates.insert(it->second.begin(), it->second.end());
      }
    }
    std::vector<TokenId> out(candidates.begin(), candidates.end());
    std::sort(out.begin(), out.end());
    return out;
  }

  const sim::JaccardQGramSimilarity* sim_;
  sim::MinHashIndexSpec spec_;
  std::vector<uint64_t> hash_seeds_;
  std::vector<std::unordered_map<uint64_t, std::vector<TokenId>>> bands_;
};

struct ProbeResult {
  double seed_cands_per_sec = 0.0;      // end-to-end cursor build
  double single_cands_per_sec = 0.0;
  double prewarm_cands_per_sec = 0.0;
  double probe_speedup = 0.0;           // prewarm vs seed, end-to-end
  double seed_score_per_sec = 0.0;      // scoring only (probing excluded)
  double batched_score_per_sec = 0.0;
  double scoring_speedup = 0.0;
  size_t total_candidates = 0;          // per full query sweep
  size_t mismatches = 0;
};

void PrintProbe(const char* name, const ProbeResult& r) {
  std::printf("%-8s %18s %15s %10s\n", name, "cands/sec", "config", "speedup");
  std::printf("%-8s %18.3e %15s %9.1fx\n", "", r.seed_cands_per_sec, "seed",
              1.0);
  std::printf("%-8s %18.3e %15s %9.1fx\n", "", r.single_cands_per_sec,
              "batched", r.single_cands_per_sec / r.seed_cands_per_sec);
  std::printf("%-8s %18.3e %15s %9.1fx\n", "", r.prewarm_cands_per_sec,
              "prewarm", r.probe_speedup);
  std::printf("%-8s %18.3e %15s %9.1fx\n", "", r.seed_score_per_sec,
              "seed-score", 1.0);
  std::printf("%-8s %18.3e %15s %9.1fx\n", "", r.batched_score_per_sec,
              "batch-score", r.scoring_speedup);
  std::printf("%-8s candidates/sweep=%zu mismatches=%zu\n", "",
              r.total_candidates, r.mismatches);
}

// Scoring-only comparison over precollected candidate batches: the seed
// way (one virtual Similarity() call per candidate + eager full sort of
// the survivors) against the batched way (one SimilarityBatch kernel call,
// α filter over the flat score array, lazy ordering of the first chunk —
// what a cursor build pays before the θ-bound stops the stream).
void MeasureScoring(const sim::SimilarityFunction& sim,
                    const std::function<Score(TokenId, TokenId)>& seed_scorer,
                    const std::vector<TokenId>& queries,
                    const std::vector<std::vector<TokenId>>& candidates,
                    Score alpha, size_t total_candidates, ProbeResult* r) {
  std::vector<sim::Neighbor> neighbors;  // hoisted: both loops reuse it
  const double seed_s = BestOf([&] {
    for (size_t i = 0; i < queries.size(); ++i) {
      neighbors.clear();
      for (TokenId t : candidates[i]) {
        if (t == queries[i]) continue;
        const Score s = seed_scorer(queries[i], t);
        if (s >= alpha) neighbors.push_back({t, s});
      }
      std::sort(neighbors.begin(), neighbors.end(),
                [](const sim::Neighbor& a, const sim::Neighbor& b) {
                  if (a.sim != b.sim) return a.sim > b.sim;
                  return a.token < b.token;
                });
    }
  });
  const double batched_s = BestOf([&] {
    std::vector<Score> scores;
    for (size_t i = 0; i < queries.size(); ++i) {
      scores.resize(candidates[i].size());
      sim.SimilarityBatch(queries[i], candidates[i], scores);
      neighbors.clear();
      for (size_t c = 0; c < candidates[i].size(); ++c) {
        if (candidates[i][c] == queries[i]) continue;
        if (scores[c] >= alpha) neighbors.push_back({candidates[i][c], scores[c]});
      }
      const size_t chunk = std::min<size_t>(64, neighbors.size());
      if (chunk > 0) {
        std::nth_element(neighbors.begin(), neighbors.begin() + (chunk - 1),
                         neighbors.end(),
                         [](const sim::Neighbor& a, const sim::Neighbor& b) {
                           if (a.sim != b.sim) return a.sim > b.sim;
                           return a.token < b.token;
                         });
        std::sort(neighbors.begin(), neighbors.begin() + chunk,
                  [](const sim::Neighbor& a, const sim::Neighbor& b) {
                    if (a.sim != b.sim) return a.sim > b.sim;
                    return a.token < b.token;
                  });
      }
    }
  });
  r->seed_score_per_sec = static_cast<double>(total_candidates) / seed_s;
  r->batched_score_per_sec = static_cast<double>(total_candidates) / batched_s;
  r->scoring_speedup = r->batched_score_per_sec / r->seed_score_per_sec;
}

}  // namespace

int Main(int argc, char** argv) {
  size_t vocab = 20000;
  size_t dim = 300;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--vocab") == 0 && i + 1 < argc) {
      vocab = std::strtoul(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--dim") == 0 && i + 1 < argc) {
      dim = std::strtoul(argv[++i], nullptr, 10);
    }
  }

  // ------------------------------------------------------------- LSH ------
  embedding::SyntheticModelSpec mspec;
  mspec.vocab_size = vocab;
  mspec.dim = dim;
  mspec.avg_cluster_size = 16.0;
  mspec.noise_sigma = 0.35;
  mspec.coverage = 1.0;
  mspec.seed = 20260730;
  embedding::SyntheticEmbeddingModel model(mspec);
  sim::CosineEmbeddingSimilarity cosine(&model.store());

  std::vector<TokenId> vocabulary(vocab);
  for (TokenId t = 0; t < vocab; ++t) vocabulary[t] = t;

  sim::LshIndexSpec lspec;
  lspec.num_tables = 8;
  lspec.bits_per_table = 7;  // fat buckets: candidate scoring dominates
  const Score lsh_alpha = 0.5;

  util::Rng rng(7);
  std::vector<TokenId> queries;
  while (queries.size() < 64) {
    queries.push_back(static_cast<TokenId>(rng.NextBounded(vocab)));
  }
  std::sort(queries.begin(), queries.end());
  queries.erase(std::unique(queries.begin(), queries.end()), queries.end());

  SeedLsh seed_lsh(vocabulary, &model.store(), &cosine, lspec);
  sim::CosineLshIndex lsh(vocabulary, &model.store(), &cosine, lspec);

  ProbeResult lsh_result;
  std::vector<std::vector<TokenId>> lsh_candidates;
  for (TokenId q : queries) {
    lsh_candidates.push_back(seed_lsh.Candidates(q));
    lsh_result.total_candidates += lsh_candidates.back().size();
  }
  std::printf("bench_micro_lsh_batch: vocab=%zu dim=%zu tables=%zu bits=%zu "
              "alpha=%.2f queries=%zu\n",
              vocab, dim, lspec.num_tables, lspec.bits_per_table, lsh_alpha,
              queries.size());

  const double seed_lsh_s = BestOf([&] {
    for (TokenId q : queries) (void)seed_lsh.BuildCursor(q, lsh_alpha);
  });
  const double single_lsh_s = BestOf([&] {
    lsh.ResetCursors();
    for (TokenId q : queries) (void)lsh.NextNeighbor(q, lsh_alpha);
  });
  const double prewarm_lsh_s = BestOf([&] {
    lsh.ResetCursors();
    lsh.Prewarm(queries, lsh_alpha);
  });
  const double lsh_cands = static_cast<double>(lsh_result.total_candidates);
  lsh_result.seed_cands_per_sec = lsh_cands / seed_lsh_s;
  lsh_result.single_cands_per_sec = lsh_cands / single_lsh_s;
  lsh_result.prewarm_cands_per_sec = lsh_cands / prewarm_lsh_s;
  lsh_result.probe_speedup =
      lsh_result.prewarm_cands_per_sec / lsh_result.seed_cands_per_sec;
  MeasureScoring(
      cosine, [&](TokenId a, TokenId b) { return cosine.Similarity(a, b); },
      queries, lsh_candidates, lsh_alpha, lsh_result.total_candidates,
      &lsh_result);

  // Parity: the batched stream must reproduce the seed cursor (scores to
  // ~1e-15 — the kernels accumulate in a different order).
  lsh.ResetCursors();
  for (TokenId q : queries) {
    const auto want = seed_lsh.BuildCursor(q, lsh_alpha);
    for (const auto& expect : want) {
      const auto got = lsh.NextNeighbor(q, lsh_alpha);
      if (!got.has_value() || got->token != expect.token ||
          std::abs(got->sim - expect.sim) > 1e-9) {
        ++lsh_result.mismatches;
        break;
      }
    }
    if (lsh.NextNeighbor(q, lsh_alpha).has_value()) ++lsh_result.mismatches;
  }
  PrintProbe("lsh", lsh_result);

  // --------------------------------------------------------- MinHash ------
  data::StringCorpusSpec sspec;
  sspec.num_sets = 6000;
  sspec.num_base_words = 10000;
  sspec.typos_per_word = 4;
  sspec.seed = 20260731;
  data::StringCorpus corpus = data::GenerateStringCorpus(sspec);
  sim::JaccardQGramSimilarity jaccard(&corpus.dict, 3);

  sim::MinHashIndexSpec mhspec;
  mhspec.num_bands = 16;
  mhspec.rows_per_band = 1;  // low-precision banding: fat candidate sets
  const Score mh_alpha = 0.3;

  std::vector<TokenId> mh_queries;
  for (size_t i = 0; i < corpus.vocabulary.size() && mh_queries.size() < 64;
       i += corpus.vocabulary.size() / 64) {
    mh_queries.push_back(corpus.vocabulary[i]);
  }

  SeedMinHash seed_mh(corpus.vocabulary, &jaccard, mhspec);
  sim::MinHashIndex minhash(corpus.vocabulary, &jaccard, mhspec);

  ProbeResult mh_result;
  std::vector<std::vector<TokenId>> mh_candidates;
  for (TokenId q : mh_queries) {
    mh_candidates.push_back(seed_mh.Candidates(q));
    mh_result.total_candidates += mh_candidates.back().size();
  }
  std::printf("minhash: vocab=%zu bands=%zu rows=%zu alpha=%.2f queries=%zu\n",
              corpus.vocabulary.size(), mhspec.num_bands, mhspec.rows_per_band,
              mh_alpha, mh_queries.size());

  const double seed_mh_s = BestOf([&] {
    for (TokenId q : mh_queries) (void)seed_mh.BuildCursor(q, mh_alpha);
  });
  const double single_mh_s = BestOf([&] {
    minhash.ResetCursors();
    for (TokenId q : mh_queries) (void)minhash.NextNeighbor(q, mh_alpha);
  });
  const double prewarm_mh_s = BestOf([&] {
    minhash.ResetCursors();
    minhash.Prewarm(mh_queries, mh_alpha);
  });
  const double mh_cands = static_cast<double>(mh_result.total_candidates);
  mh_result.seed_cands_per_sec = mh_cands / seed_mh_s;
  mh_result.single_cands_per_sec = mh_cands / single_mh_s;
  mh_result.prewarm_cands_per_sec = mh_cands / prewarm_mh_s;
  mh_result.probe_speedup =
      mh_result.prewarm_cands_per_sec / mh_result.seed_cands_per_sec;
  // The seed scored candidates by merging STRING gram sets; the batched
  // path runs the interned-id merge kernel — that swap is the measured win.
  MeasureScoring(
      jaccard,
      [&](TokenId a, TokenId b) {
        return text::JaccardSorted(jaccard.GramsOf(a), jaccard.GramsOf(b));
      },
      mh_queries, mh_candidates, mh_alpha, mh_result.total_candidates,
      &mh_result);

  minhash.ResetCursors();
  for (TokenId q : mh_queries) {
    const auto want = seed_mh.BuildCursor(q, mh_alpha);
    for (const auto& expect : want) {
      const auto got = minhash.NextNeighbor(q, mh_alpha);
      if (!got.has_value() || got->token != expect.token ||
          got->sim != expect.sim) {  // Jaccard: both divide identical counts
        ++mh_result.mismatches;
        break;
      }
    }
    if (minhash.NextNeighbor(q, mh_alpha).has_value()) ++mh_result.mismatches;
  }
  PrintProbe("minhash", mh_result);

  // ------------------------------------------------------------ int8 ------
  model.mutable_store().Finalize();
  const auto& store = model.store();
  std::vector<double> exact(vocab), quant(vocab);
  const size_t int8_pairs = queries.size() * vocab;

  const double float_s = BestOf([&] {
    for (TokenId q : queries) {
      store.CosineBatch(q, vocabulary, std::span<double>(exact),
                        embedding::Precision::kFloat64);
    }
  });
  const double int8_s = BestOf([&] {
    for (TokenId q : queries) {
      store.CosineBatch(q, vocabulary, std::span<double>(quant),
                        embedding::Precision::kInt8);
    }
  });

  double max_err = 0.0, sum_err = 0.0, recall_sum = 0.0;
  constexpr size_t kTop = 10;
  for (TokenId q : queries) {
    store.CosineBatch(q, vocabulary, std::span<double>(exact),
                      embedding::Precision::kFloat64);
    store.CosineBatch(q, vocabulary, std::span<double>(quant),
                      embedding::Precision::kInt8);
    std::vector<size_t> order_e(vocab), order_q(vocab);
    for (size_t i = 0; i < vocab; ++i) order_e[i] = order_q[i] = i;
    for (size_t i = 0; i < vocab; ++i) {
      const double err = std::abs(quant[i] - exact[i]);
      max_err = std::max(max_err, err);
      sum_err += err;
    }
    auto top = [&](std::vector<size_t>& order, const std::vector<double>& s) {
      std::partial_sort(order.begin(), order.begin() + kTop + 1, order.end(),
                        [&](size_t a, size_t b) { return s[a] > s[b]; });
    };
    top(order_e, exact);
    top(order_q, quant);
    // Recall@10 excluding the self-match (always rank 0 in both).
    std::unordered_set<size_t> truth(order_e.begin() + 1,
                                     order_e.begin() + 1 + kTop);
    size_t hit = 0;
    for (size_t i = 1; i <= kTop; ++i) hit += truth.count(order_q[i]);
    recall_sum += static_cast<double>(hit) / static_cast<double>(kTop);
  }
  const double mean_err =
      sum_err / static_cast<double>(queries.size() * vocab);
  const double recall = recall_sum / static_cast<double>(queries.size());
  const double float_pps = static_cast<double>(int8_pairs) / float_s;
  const double int8_pps = static_cast<double>(int8_pairs) / int8_s;
  std::printf("int8: float64=%.3e pairs/sec int8=%.3e pairs/sec (%.2fx), "
              "max_abs_err=%.2e mean_abs_err=%.2e recall@10=%.4f\n",
              float_pps, int8_pps, int8_pps / float_pps, max_err, mean_err,
              recall);

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(
        f,
        "{\n"
        "  \"vocab\": %zu,\n"
        "  \"dim\": %zu,\n"
        "  \"lsh_alpha\": %.2f,\n"
        "  \"lsh_candidates\": %zu,\n"
        "  \"lsh_seed_cands_per_sec\": %.6e,\n"
        "  \"lsh_batched_cands_per_sec\": %.6e,\n"
        "  \"lsh_prewarm_cands_per_sec\": %.6e,\n"
        "  \"lsh_probe_speedup\": %.3f,\n"
        "  \"lsh_seed_score_per_sec\": %.6e,\n"
        "  \"lsh_batched_score_per_sec\": %.6e,\n"
        "  \"lsh_scoring_speedup\": %.3f,\n"
        "  \"lsh_mismatches\": %zu,\n"
        "  \"minhash_vocab\": %zu,\n"
        "  \"minhash_alpha\": %.2f,\n"
        "  \"minhash_candidates\": %zu,\n"
        "  \"minhash_seed_cands_per_sec\": %.6e,\n"
        "  \"minhash_batched_cands_per_sec\": %.6e,\n"
        "  \"minhash_prewarm_cands_per_sec\": %.6e,\n"
        "  \"minhash_probe_speedup\": %.3f,\n"
        "  \"minhash_seed_score_per_sec\": %.6e,\n"
        "  \"minhash_batched_score_per_sec\": %.6e,\n"
        "  \"minhash_scoring_speedup\": %.3f,\n"
        "  \"minhash_mismatches\": %zu,\n"
        "  \"int8_float64_pairs_per_sec\": %.6e,\n"
        "  \"int8_pairs_per_sec\": %.6e,\n"
        "  \"int8_max_abs_err\": %.6e,\n"
        "  \"int8_mean_abs_err\": %.6e,\n"
        "  \"int8_recall_at_10\": %.4f\n"
        "}\n",
        vocab, dim, lsh_alpha, lsh_result.total_candidates,
        lsh_result.seed_cands_per_sec, lsh_result.single_cands_per_sec,
        lsh_result.prewarm_cands_per_sec, lsh_result.probe_speedup,
        lsh_result.seed_score_per_sec, lsh_result.batched_score_per_sec,
        lsh_result.scoring_speedup, lsh_result.mismatches,
        corpus.vocabulary.size(), mh_alpha, mh_result.total_candidates,
        mh_result.seed_cands_per_sec, mh_result.single_cands_per_sec,
        mh_result.prewarm_cands_per_sec, mh_result.probe_speedup,
        mh_result.seed_score_per_sec, mh_result.batched_score_per_sec,
        mh_result.scoring_speedup, mh_result.mismatches, float_pps, int8_pps,
        max_err, mean_err, recall);
    std::fclose(f);
    std::printf("json written to %s\n", json_path.c_str());
  }

  if (lsh_result.mismatches != 0 || mh_result.mismatches != 0) return 2;
  // Acceptance: >= 3x candidate-scoring throughput on both probe kinds,
  // measured end-to-end (probe) or scoring-only — for LSH the probe number
  // also folds in the cheaper candidate assembly, for MinHash the scoring
  // number isolates the kernel from the (shared) signature hashing.
  const auto passed = [](const ProbeResult& r) {
    return std::max(r.probe_speedup, r.scoring_speedup) >= 3.0;
  };
  return passed(lsh_result) && passed(mh_result) ? 0 : 3;
}

}  // namespace koios

int main(int argc, char** argv) { return koios::Main(argc, argv); }
