// Figure 8 — quality of semantic vs vanilla (syntactic) top-k search on
// OpenData: for each query-cardinality interval, compare the k-th set of
// the two top-k lists under both measures, and the overlap of the two
// result lists.
//
// Shapes from the paper: the semantic search's k-th set has *lower*
// syntactic overlap but *higher* semantic overlap than the vanilla
// search's k-th set, and the two result lists intersect on only a fraction
// of their sets (~50% missed by vanilla on the smallest interval).
#include <cstdio>

#include <set>

#include "koios/baselines/vanilla_topk.h"
#include "koios/matching/semantic_overlap.h"
#include "bench_util.h"

namespace koios::bench {
namespace {

void Run() {
  PrintHeader("Figure 8: semantic vs vanilla top-k quality (OpenData)");
  BenchWorkload w = MakeBenchWorkload(Dataset::kOpenData);
  core::KoiosSearcher searcher(&w.corpus.sets, w.index.get());
  baselines::VanillaTopK vanilla(&w.corpus.sets);
  core::SearchParams params;
  params.k = 10;
  params.alpha = 0.8;

  const BenchQueries bq = MakeBenchQueries(w, /*per_interval=*/3,
                                           /*uniform_count=*/0);
  std::printf("%-14s | %13s %13s | %13s %13s | %10s\n", "Query Card.",
              "syn(kth:van)", "syn(kth:sem)", "sem(kth:van)", "sem(kth:sem)",
              "overlap");
  PrintRule();
  for (size_t iv = 0; iv < bq.intervals.size(); ++iv) {
    Aggregate syn_of_van, syn_of_sem, sem_of_van, sem_of_sem, inter;
    for (const auto& query : bq.queries) {
      if (query.interval != iv) continue;
      std::vector<TokenId> sorted_query = query.tokens;
      std::sort(sorted_query.begin(), sorted_query.end());

      const auto semantic = searcher.Search(query.tokens, params);
      const auto syntactic = vanilla.Search(query.tokens, params.k);
      if (semantic.topk.empty() || syntactic.topk.empty()) continue;

      // Scores of the k-th (last) entry of each list under both measures.
      const SetId sem_kth = semantic.topk.back().set;
      const SetId van_kth = syntactic.topk.back().set;
      syn_of_sem.Add(static_cast<double>(
          w.corpus.sets.VanillaOverlap(sorted_query, sem_kth)));
      syn_of_van.Add(syntactic.topk.back().score);
      sem_of_sem.Add(semantic.topk.back().score);
      sem_of_van.Add(matching::SemanticOverlap(
          query.tokens, w.corpus.sets.Tokens(van_kth), *w.sim, params.alpha));

      std::set<SetId> sem_sets, both;
      for (const auto& e : semantic.topk) sem_sets.insert(e.set);
      for (const auto& e : syntactic.topk) {
        if (sem_sets.count(e.set)) both.insert(e.set);
      }
      inter.Add(100.0 * static_cast<double>(both.size()) /
                static_cast<double>(semantic.topk.size()));
    }
    if (syn_of_sem.n == 0) continue;
    std::printf("%-14s | %13.2f %13.2f | %13.2f %13.2f | %9.1f%%\n",
                bq.intervals[iv].Label().c_str(), syn_of_van.Mean(),
                syn_of_sem.Mean(), sem_of_van.Mean(), sem_of_sem.Mean(),
                inter.Mean());
  }
  std::printf(
      "\nsyn() = vanilla overlap of the k-th result set, sem() = semantic"
      " overlap;\n'kth:van' / 'kth:sem' = k-th set of the vanilla / semantic"
      " top-k list.\noverlap = |semantic list ∩ vanilla list| / k."
      " Expected shape: semantic finds\nsets with lower syn but higher sem"
      " score; overlap well below 100%%.\n");
}

}  // namespace
}  // namespace koios::bench

int main() {
  koios::bench::Run();
  return 0;
}
