// Chaos harness for the failure-hardened serving layer (ISSUE 6): measures
// goodput while the fault injector hammers the engine's seams, and gates
// HARD on graceful degradation. Three phases over one snapshot-backed
// engine:
//
//  * baseline  — closed-loop QPS with nothing armed.
//  * chaos     — the same stream while (a) a third of worker dispatches run
//                late, (b) a fifth of cursor publishes are dropped, and
//                (c) a background thread hammers TrySwapFromRepository with
//                a corrupted repository file (every attempt must fail
//                cleanly and the engine must keep serving), with ONE valid
//                swap to a byte-identical repository mid-window (results
//                must not move — cursor builds are deterministic).
//  * recovery  — disarm everything, rerun the stream: goodput must return
//                to >= 90% of baseline (exit 3 if not — timing, tolerated
//                on busy CI runners like the other benches' bars).
//
// A separate overload burst drives a tiny-queue engine into admission
// control: every rejection must be a clean ResourceExhausted or
// DeadlineExceeded CARRYING a retry-after hint, and successes must stay
// exact.
//
// Hard invariants (exit 2, never tolerated): no crash, every successful
// query bit-identical to the serial reference, every failure a clean
// Status with zero partial results, corrupted reloads never take the
// engine down or flip it to a broken snapshot.
//
// Usage: bench_serve_chaos [--json out.json] [--queries N]
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "koios/core/searcher.h"
#include "koios/data/corpus.h"
#include "koios/data/query_benchmark.h"
#include "koios/embedding/synthetic_model.h"
#include "koios/io/serialization.h"
#include "koios/serve/query_engine.h"
#include "koios/serve/snapshot.h"
#include "koios/util/fault_injector.h"
#include "koios/util/rng.h"
#include "koios/util/timer.h"

namespace koios {
namespace {

constexpr double kRecoveryBar = 0.9;  // recovery QPS >= 0.9x baseline

struct Scenario {
  std::vector<TokenId> tokens;
  core::SearchParams params;
};

bool SameResult(const core::SearchResult& got, const core::SearchResult& want) {
  if (got.topk.size() != want.topk.size()) return false;
  for (size_t i = 0; i < got.topk.size(); ++i) {
    if (got.topk[i].set != want.topk[i].set ||
        got.topk[i].score != want.topk[i].score ||
        got.topk[i].exact != want.topk[i].exact) {
      return false;
    }
  }
  return true;
}

struct LoopOutcome {
  double sec = 0.0;
  double qps = 0.0;
  size_t mismatches = 0;
  size_t unexpected_failures = 0;
};

/// Closed loop: `clients` threads each drive their slice of the stream
/// synchronously. Successes must match the reference; with the queue sized
/// to the stream and no deadline set, ANY failure is unexpected.
LoopOutcome RunClosedLoop(serve::QueryEngine* engine,
                          const std::vector<Scenario>& scenarios,
                          const std::vector<core::SearchResult>& reference,
                          const std::vector<size_t>& stream, size_t clients) {
  std::atomic<size_t> mismatches{0};
  std::atomic<size_t> failures{0};
  util::WallTimer timer;
  std::vector<std::thread> workers;
  for (size_t c = 0; c < clients; ++c) {
    workers.emplace_back([&, c] {
      for (size_t i = c; i < stream.size(); i += clients) {
        const size_t si = stream[i];
        serve::QueryEngine::Result r =
            engine->Submit(scenarios[si].tokens, scenarios[si].params).get();
        if (!r.ok()) {
          ++failures;
        } else if (!SameResult(r.value(), reference[si])) {
          ++mismatches;
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  LoopOutcome out;
  out.sec = timer.ElapsedSeconds();
  out.qps = static_cast<double>(stream.size()) / out.sec;
  out.mismatches = mismatches.load();
  out.unexpected_failures = failures.load();
  return out;
}

int Run(size_t total_queries, const std::string& json_path) {
  // ---- corpus -> repository file -> snapshot -> engine ------------------
  data::CorpusSpec spec;
  spec.name = "serve-chaos";
  spec.num_sets = 1800;
  spec.vocab_size = 2400;
  spec.element_skew = 0.7;
  spec.size_distribution = data::SizeDistribution::kNormal;
  spec.min_set_size = 6;
  spec.max_set_size = 36;
  spec.avg_set_size = 16.0;
  spec.size_stddev = 7.0;
  spec.seed = 20260806;
  util::WallTimer setup_timer;
  data::Corpus corpus = data::GenerateCorpus(spec);

  embedding::SyntheticModelSpec model_spec;
  model_spec.vocab_size = spec.vocab_size;
  model_spec.dim = 32;
  model_spec.avg_cluster_size = 12.0;
  model_spec.noise_sigma = 0.38;
  model_spec.coverage = 0.92;
  model_spec.seed = spec.seed + 1;
  embedding::SyntheticEmbeddingModel model(model_spec);

  text::Dictionary dict;
  for (size_t t = 0; t < spec.vocab_size; ++t) {
    dict.Intern("tok" + std::to_string(t));
  }
  const std::string dir = std::filesystem::temp_directory_path().string();
  const std::string repo_path = dir + "/koios_chaos_repo.bin";
  const std::string corrupt_path = dir + "/koios_chaos_corrupt.bin";
  {
    auto status =
        io::SaveRepository(dict, corpus.sets, &model.store(), repo_path);
    if (!status.ok()) {
      std::fprintf(stderr, "ERROR: save failed: %s\n",
                   status.ToString().c_str());
      return 2;
    }
    // The corrupted twin: same file with one byte flipped mid-payload —
    // individually framed sections make this a guaranteed checksum error.
    std::ifstream in(repo_path, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x10);
    std::ofstream out(corrupt_path, std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  auto loaded = serve::Snapshot::Load(repo_path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "ERROR: snapshot load failed: %s\n",
                 loaded.status().ToString().c_str());
    return 2;
  }
  std::shared_ptr<const serve::Snapshot> snapshot = loaded.value();
  std::printf("[setup] %zu sets, %zu vocab, repo %.1f KB, %.1fs\n",
              corpus.NumSets(), corpus.vocabulary.size(),
              static_cast<double>(std::filesystem::file_size(repo_path)) / 1024,
              setup_timer.ElapsedSeconds());

  // ---- scenarios + serial reference -------------------------------------
  const size_t ks[] = {1, 5, 10};
  const Score alphas[] = {0.7, 0.8};
  util::Rng rng(424244);
  const auto sampled = data::SampleQueriesUniform(corpus, 36, &rng);
  std::vector<Scenario> scenarios;
  for (size_t i = 0; i < sampled.size(); ++i) {
    Scenario s;
    s.tokens = sampled[i].tokens;
    s.params.k = ks[i % 3];
    s.params.alpha = alphas[i % 2];
    s.params.num_threads = 1;
    scenarios.push_back(std::move(s));
  }
  std::vector<size_t> stream(total_queries);
  for (size_t i = 0; i < stream.size(); ++i) stream[i] = i % scenarios.size();

  core::KoiosSearcher serial(&snapshot->sets(), snapshot->index());
  std::vector<core::SearchResult> reference;
  for (const Scenario& s : scenarios) {
    reference.push_back(serial.Search(s.tokens, s.params));
  }

  serve::EngineOptions options;
  options.num_threads = 4;
  options.max_queue = stream.size();
  serve::QueryEngine engine(snapshot, options);

  // ---- phase 1: baseline ------------------------------------------------
  const LoopOutcome baseline =
      RunClosedLoop(&engine, scenarios, reference, stream, 4);

  // ---- phase 2: chaos window --------------------------------------------
  LoopOutcome chaos;
  uint64_t dispatch_delays = 0, publish_drops = 0;
  size_t corrupt_swap_oks = 0, corrupt_swap_failures = 0;
  bool valid_swap_ok = false;
  {
    util::FaultSpec slow;
    slow.latency = std::chrono::milliseconds(2);
    slow.latency_probability = 0.33;
    slow.seed = 101;
    util::ScopedFault dispatch_fault("threadpool.dispatch", slow);
    util::FaultSpec drop;
    drop.fail_probability = 0.2;
    drop.seed = 102;
    util::ScopedFault publish_fault("cursor.publish", drop);

    // Reload attack alongside the query load: corrupted reloads must fail
    // cleanly forever; the one valid swap (byte-identical repository) must
    // succeed without moving a result.
    std::atomic<bool> stop{false};
    std::thread attacker([&] {
      size_t attempt = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        if (++attempt == 4) {
          valid_swap_ok = engine.TrySwapFromRepository(repo_path).ok();
        } else {
          auto status = engine.TrySwapFromRepository(corrupt_path);
          if (status.ok()) {
            ++corrupt_swap_oks;  // must never happen
          } else {
            ++corrupt_swap_failures;
          }
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
    });
    chaos = RunClosedLoop(&engine, scenarios, reference, stream, 4);
    stop.store(true, std::memory_order_relaxed);
    attacker.join();
    dispatch_delays =
        util::FaultInjector::Instance().Stats("threadpool.dispatch").hits;
    publish_drops =
        util::FaultInjector::Instance().Stats("cursor.publish").fires;
  }

  // ---- phase 3: recovery ------------------------------------------------
  const LoopOutcome recovery =
      RunClosedLoop(&engine, scenarios, reference, stream, 4);

  // ---- overload burst ---------------------------------------------------
  // A deliberately tiny engine + slow dispatch: admission control must
  // shed load with clean, hint-carrying statuses while successes stay
  // exact. Deadlines let the fail-fast governor path fire too.
  size_t burst_ok = 0, burst_rejected = 0;
  size_t burst_bad_status = 0, burst_missing_hint = 0, burst_mismatch = 0;
  {
    util::FaultSpec slow;
    slow.latency = std::chrono::milliseconds(20);
    util::ScopedFault dispatch_fault("threadpool.dispatch", slow);
    serve::EngineOptions small;
    small.num_threads = 2;
    small.max_queue = 2;
    serve::QueryEngine overloaded(snapshot, small);
    std::vector<std::future<serve::QueryEngine::Result>> futures;
    std::vector<size_t> submitted;
    for (size_t i = 0; i < 64; ++i) {
      const size_t si = stream[i % stream.size()];
      submitted.push_back(si);
      futures.push_back(overloaded.Submit(scenarios[si].tokens,
                                          scenarios[si].params,
                                          std::chrono::milliseconds(400)));
    }
    for (size_t i = 0; i < futures.size(); ++i) {
      serve::QueryEngine::Result r = futures[i].get();
      if (r.ok()) {
        ++burst_ok;
        if (!SameResult(r.value(), reference[submitted[i]])) ++burst_mismatch;
        continue;
      }
      ++burst_rejected;
      const util::StatusCode code = r.status().code();
      if (code != util::StatusCode::kResourceExhausted &&
          code != util::StatusCode::kDeadlineExceeded) {
        ++burst_bad_status;
      }
      if (!r.status().has_retry_after()) ++burst_missing_hint;
    }
  }

  const serve::EngineCounters counters = engine.counters();

  // ---- report -----------------------------------------------------------
  const double chaos_ratio = chaos.qps / baseline.qps;
  const double recovery_ratio = recovery.qps / baseline.qps;
  std::printf("\n=== serve chaos: %zu queries/phase, %zu scenarios ===\n",
              stream.size(), scenarios.size());
  std::printf("%-10s | %9s | %9s | %10s | %8s\n", "phase", "QPS", "vs base",
              "mismatches", "failures");
  std::printf("%s\n", std::string(60, '-').c_str());
  std::printf("%-10s | %9.1f | %9s | %10zu | %8zu\n", "baseline", baseline.qps,
              "1.00x", baseline.mismatches, baseline.unexpected_failures);
  std::printf("%-10s | %9.1f | %8.2fx | %10zu | %8zu\n", "chaos", chaos.qps,
              chaos_ratio, chaos.mismatches, chaos.unexpected_failures);
  std::printf("%-10s | %9.1f | %8.2fx | %10zu | %8zu\n", "recovery",
              recovery.qps, recovery_ratio, recovery.mismatches,
              recovery.unexpected_failures);
  std::printf(
      "chaos window: %llu delayed dispatches, %llu dropped publishes, "
      "%zu corrupt reloads (all rejected: %s), valid swap: %s\n",
      static_cast<unsigned long long>(dispatch_delays),
      static_cast<unsigned long long>(publish_drops), corrupt_swap_failures,
      corrupt_swap_oks == 0 ? "yes" : "NO", valid_swap_ok ? "ok" : "FAILED");
  std::printf(
      "overload burst: %zu ok, %zu shed (bad statuses: %zu, missing "
      "hints: %zu, mismatches: %zu)\n",
      burst_ok, burst_rejected, burst_bad_status, burst_missing_hint,
      burst_mismatch);
  std::printf("engine counters: %llu completed, %llu swap failures, %llu "
              "swaps\n",
              static_cast<unsigned long long>(counters.completed),
              static_cast<unsigned long long>(counters.swap_failures),
              static_cast<unsigned long long>(counters.swaps_completed));

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
    } else {
      std::fprintf(f, "{\n  \"bench\": \"serve_chaos\",\n");
      std::fprintf(f,
                   "  \"corpus\": {\"sets\": %zu, \"vocab\": %zu},\n"
                   "  \"queries_per_phase\": %zu,\n",
                   corpus.NumSets(), corpus.vocabulary.size(), stream.size());
      std::fprintf(f,
                   "  \"baseline\": {\"qps\": %.2f},\n"
                   "  \"chaos\": {\"qps\": %.2f, \"ratio\": %.3f},\n"
                   "  \"recovery\": {\"qps\": %.2f, \"ratio\": %.3f},\n",
                   baseline.qps, chaos.qps, chaos_ratio, recovery.qps,
                   recovery_ratio);
      std::fprintf(f,
                   "  \"faults\": {\"delayed_dispatches\": %llu, "
                   "\"dropped_publishes\": %llu, \"corrupt_reloads\": %zu},\n",
                   static_cast<unsigned long long>(dispatch_delays),
                   static_cast<unsigned long long>(publish_drops),
                   corrupt_swap_failures);
      std::fprintf(f,
                   "  \"overload\": {\"ok\": %zu, \"shed\": %zu, "
                   "\"missing_hints\": %zu},\n",
                   burst_ok, burst_rejected, burst_missing_hint);
      const bool exact = baseline.mismatches == 0 && chaos.mismatches == 0 &&
                         recovery.mismatches == 0 && burst_mismatch == 0;
      std::fprintf(f, "  \"exact\": %s,\n  \"recovered\": %s\n}\n",
                   exact ? "true" : "false",
                   recovery_ratio >= kRecoveryBar ? "true" : "false");
      std::fclose(f);
      std::printf("json written to %s\n", json_path.c_str());
    }
  }
  std::filesystem::remove(repo_path);
  std::filesystem::remove(corrupt_path);

  // ---- gates ------------------------------------------------------------
  bool hard_failure = false;
  if (baseline.mismatches + chaos.mismatches + recovery.mismatches +
          burst_mismatch >
      0) {
    std::fprintf(stderr, "ERROR: results diverged from the serial reference\n");
    hard_failure = true;
  }
  if (baseline.unexpected_failures + chaos.unexpected_failures +
          recovery.unexpected_failures >
      0) {
    std::fprintf(stderr, "ERROR: unexpected query failures (the queue was "
                         "sized to the stream and no deadline was set)\n");
    hard_failure = true;
  }
  if (corrupt_swap_oks > 0 || !valid_swap_ok || corrupt_swap_failures == 0) {
    std::fprintf(stderr, "ERROR: reload attack invariants violated\n");
    hard_failure = true;
  }
  if (burst_bad_status > 0 || burst_missing_hint > 0 || burst_rejected == 0 ||
      burst_ok == 0) {
    std::fprintf(stderr, "ERROR: overload shedding was not clean "
                         "(bad statuses or missing retry hints)\n");
    hard_failure = true;
  }
  if (hard_failure) return 2;
  if (recovery_ratio < kRecoveryBar) {
    std::fprintf(stderr,
                 "WARN: recovery goodput %.2fx of baseline, below the %.2fx "
                 "bar (timing; tolerated on busy runners)\n",
                 recovery_ratio, kRecoveryBar);
    return 3;
  }
  return 0;
}

}  // namespace
}  // namespace koios

int main(int argc, char** argv) {
  size_t total_queries = 144;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--queries") == 0 && i + 1 < argc) {
      total_queries = static_cast<size_t>(std::stoul(argv[++i]));
    }
  }
  return koios::Run(total_queries, json_path);
}
