// Table IV — OpenData: number of sets pruned by each filter, by query
// cardinality interval.
//
// Paper reference (counts per query, full-scale OpenData):
//   interval    candidates  iUB     No-EM  EM-ET  EM
//   10-750      1132        345     88     0      699
//   750-1000    2557        2422    85     2      48
//   1000-1500   2699        2571    83     4      41
//   1500-2500   3440        3328    84     2      26
//   2500-5000   3560        3451    82     4      23
//   >5000       5706        5502    79     5      120
//
// The shape to reproduce: candidates grow with query cardinality, the iUB
// share grows (nearly everything is refinement-pruned for large queries),
// and the EM count collapses.
#include <cstdio>

#include "bench_util.h"

namespace koios::bench {
namespace {

void Run(Dataset dataset, const char* title) {
  PrintHeader(title);
  BenchWorkload w = MakeBenchWorkload(dataset);
  core::SearcherOptions options;
  options.num_partitions = 10;
  core::KoiosSearcher searcher(&w.corpus.sets, w.index.get(), options);
  core::SearchParams params;
  params.k = 10;
  params.alpha = 0.8;
  params.verify_result_scores = false;

  const BenchQueries bq = MakeBenchQueries(w, /*per_interval=*/3,
                                           /*uniform_count=*/0);
  std::printf("%-14s | %10s %12s %8s %8s %8s\n", "Query Card.", "Candidates",
              "iUB-Filter", "No-EM", "EM-ET", "EM");
  PrintRule();
  for (size_t iv = 0; iv < bq.intervals.size(); ++iv) {
    Aggregate cand, iub, no_em, em_et, em;
    for (const auto& query : bq.queries) {
      if (query.interval != iv) continue;
      const RunOutcome out = RunKoios(&searcher, query.tokens, params);
      cand.Add(static_cast<double>(out.stats.candidates));
      iub.Add(static_cast<double>(out.stats.iub_filtered));
      no_em.Add(static_cast<double>(out.stats.no_em_skipped));
      em_et.Add(static_cast<double>(out.stats.em_early_terminated));
      em.Add(static_cast<double>(out.stats.em_computed));
    }
    if (cand.n == 0) continue;
    std::printf("%-14s | %10.0f %12.0f %8.0f %8.0f %8.0f\n",
                bq.intervals[iv].Label().c_str(), cand.Mean(), iub.Mean(),
                no_em.Mean(), em_et.Mean(), em.Mean());
  }
  std::printf("\nAverage counts per query; k=10, alpha=0.8, 10 partitions."
              " Intervals are the\npaper's, rescaled to the replica's maximum"
              " set size.\n");
}

}  // namespace
}  // namespace koios::bench

int main() {
  koios::bench::Run(koios::bench::Dataset::kOpenData,
                    "Table IV: OpenData — #sets pruned by filters");
  return 0;
}
