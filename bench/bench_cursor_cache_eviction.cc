// Memory-governed serving (ISSUE 5): the shared (token, α) cursor cache
// under a byte budget. An unbounded cache grows monotonically with the
// distinct-token traffic — fatal for a long-running engine — so
// BatchedNeighborIndex caps it with CLOCK eviction driven by the per-entry
// reference bits the cache hits set. This bench proves the two properties
// the tentpole demands, as HARD (deterministic) gates:
//
//  * bounded bytes — under a Zipf token workload the bounded cache NEVER
//    exceeds its capacity at any probe (single-threaded phases observe the
//    post-publish state, so the cap is exact, not amortized), while the
//    unbounded run's footprint keeps growing;
//  * hot-set retention — the bounded cache's hit rate stays within 10% of
//    the unbounded hit rate (CLOCK keeps the Zipf head resident; only the
//    cold tail recycles);
//
// plus exactness: after all the eviction churn, drained neighbor sequences
// still equal a cold private index's, and a 4-thread hammer over the
// bounded cache stays bit-identical per thread.
//
// Usage: bench_cursor_cache_eviction [--json out.json] [--ops N]
//                                    [--vocab V] [--capacity-frac F]
#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "koios/embedding/synthetic_model.h"
#include "koios/sim/cosine_similarity.h"
#include "koios/sim/exact_knn_index.h"
#include "koios/util/memory_tracker.h"
#include "koios/util/rng.h"
#include "koios/util/timer.h"
#include "koios/util/zipf.h"

namespace koios {
namespace {

// Element-frequency skew of the sampled token traffic (paper §VIII-A cites
// power-law element frequencies in real repositories; 1.2 is in the range
// observed there). The hot head must fit the capped cache for the ≥ 0.9
// hit-rate-ratio gate to be achievable at all — at s = 1.0 the tail alone
// carries more mass than a quarter-sized cache can ever serve.
constexpr double kZipfSkew = 1.2;

struct PhaseOutcome {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  size_t final_bytes = 0;
  size_t max_bytes = 0;
  double sec = 0.0;
  bool cap_respected = true;
  double HitRate() const {
    const double total = static_cast<double>(hits + misses);
    return total == 0.0 ? 0.0 : static_cast<double>(hits) / total;
  }
};

/// One pass of the Zipf workload through a fresh session: every op
/// resolves one (token, α) cursor (positions reset per op so repeats are
/// cache resolutions, as across real queries) and samples the cache's
/// byte gauge against `cap` (0 = unbounded).
PhaseOutcome RunWorkload(sim::ExactKnnIndex* index,
                         const std::vector<TokenId>& tokens,
                         const std::vector<Score>& alphas, size_t cap) {
  PhaseOutcome out;
  const sim::CursorCacheStats before = index->cursor_cache_stats();
  // MemoryUsageBytes = constant index structures + the cache gauge; the
  // cap governs the gauge, so sample relative to the empty-cache baseline.
  const size_t baseline = index->MemoryUsageBytes() - before.bytes;
  auto session = index->NewSession();
  util::WallTimer timer;
  for (size_t i = 0; i < tokens.size(); ++i) {
    (void)session->NextNeighbor(tokens[i], alphas[i % alphas.size()]);
    session->ResetCursors();
    // The gauge read is lock-free; single-threaded phases observe the
    // post-publish (post-eviction) state, so this is the HARD cap check.
    const size_t bytes = index->MemoryUsageBytes() - baseline;
    out.max_bytes = std::max(out.max_bytes, bytes);
    if (cap > 0 && bytes > cap) out.cap_respected = false;
  }
  out.sec = timer.ElapsedSeconds();
  const sim::CursorCacheStats after = index->cursor_cache_stats();
  out.hits = after.hits - before.hits;
  out.misses = after.misses - before.misses;
  out.evictions = after.evictions - before.evictions;
  out.final_bytes = after.bytes;
  return out;
}

/// Drains every neighbor of `q` at `alpha` through `index`.
std::vector<sim::Neighbor> Drain(sim::SimilarityIndex* index, TokenId q,
                                 Score alpha) {
  std::vector<sim::Neighbor> out;
  while (auto n = index->NextNeighbor(q, alpha)) out.push_back(*n);
  return out;
}

int Run(size_t total_ops, size_t vocab_size, double capacity_frac,
        const std::string& json_path) {
  // ---- embeddings + index ----------------------------------------------
  embedding::SyntheticModelSpec model_spec;
  model_spec.vocab_size = vocab_size;
  model_spec.dim = 32;
  model_spec.avg_cluster_size = 10.0;
  model_spec.noise_sigma = 0.4;
  model_spec.coverage = 1.0;
  model_spec.seed = 20260730;
  embedding::SyntheticEmbeddingModel model(model_spec);
  sim::CosineEmbeddingSimilarity cosine(&model.store());
  std::vector<TokenId> vocabulary(vocab_size);
  for (size_t t = 0; t < vocab_size; ++t) {
    vocabulary[t] = static_cast<TokenId>(t);
  }

  // ---- Zipf token workload ---------------------------------------------
  // Rank r of the Zipf law maps straight to token id r: a hot head of a
  // few hundred tokens plus a long cold tail, the shape real query
  // traffic has.
  util::Rng rng(777001);
  util::ZipfDistribution zipf(vocab_size, kZipfSkew);
  std::vector<TokenId> tokens(total_ops);
  for (size_t i = 0; i < total_ops; ++i) {
    tokens[i] = static_cast<TokenId>(zipf.Sample(&rng));
  }
  const std::vector<Score> alphas = {0.6, 0.8};

  // ---- phase 1: unbounded (the PR-4 behaviour) -------------------------
  sim::ExactKnnIndex unbounded_index(vocabulary, &cosine);
  const PhaseOutcome unbounded =
      RunWorkload(&unbounded_index, tokens, alphas, /*cap=*/0);

  // ---- phase 2: bounded, cold, same workload ---------------------------
  const size_t cap = static_cast<size_t>(
      static_cast<double>(unbounded.final_bytes) * capacity_frac);
  sim::ExactKnnIndex bounded_index(vocabulary, &cosine);
  bounded_index.SetCursorCacheCapacity(cap);
  const PhaseOutcome bounded = RunWorkload(&bounded_index, tokens, alphas, cap);

  // ---- exactness after eviction churn ----------------------------------
  bool exact = true;
  {
    sim::ExactKnnIndex reference(vocabulary, &cosine);
    auto session = bounded_index.NewSession();
    for (TokenId q : {TokenId{0}, TokenId{3}, TokenId{257},
                      static_cast<TokenId>(vocab_size - 1)}) {
      for (const Score alpha : alphas) {
        const auto got = Drain(session.get(), q, alpha);
        const auto want = Drain(&reference, q, alpha);
        if (got.size() != want.size()) exact = false;
        for (size_t i = 0; exact && i < got.size(); ++i) {
          if (got[i].token != want[i].token || got[i].sim != want[i].sim) {
            exact = false;
          }
        }
        session->ResetCursors();
        reference.ResetCursors();
      }
    }
  }

  // ---- 4-thread hammer over the bounded cache --------------------------
  // Concurrent publishers may transiently overshoot by their in-flight
  // payloads, so the hard per-op cap check is a single-thread property;
  // here the gates are exactness per thread and the settled final bytes.
  std::atomic<size_t> thread_mismatches{0};
  {
    constexpr size_t kThreads = 4;
    std::vector<std::thread> threads;
    for (size_t ti = 0; ti < kThreads; ++ti) {
      threads.emplace_back([&, ti] {
        util::Rng trng(900 + ti);
        util::ZipfDistribution tz(vocab_size, kZipfSkew);
        auto session = bounded_index.NewSession();
        sim::ExactKnnIndex reference(vocabulary, &cosine);
        for (size_t i = 0; i < 2000; ++i) {
          const TokenId q = static_cast<TokenId>(tz.Sample(&trng));
          const Score alpha = alphas[i % alphas.size()];
          if (i % 97 != 0) {
            (void)session->NextNeighbor(q, alpha);
            session->ResetCursors();
            continue;
          }
          // Every ~100th op: full-drain comparison against the private
          // cold reference.
          const auto got = Drain(session.get(), q, alpha);
          const auto want = Drain(&reference, q, alpha);
          bool same = got.size() == want.size();
          for (size_t j = 0; same && j < got.size(); ++j) {
            same = got[j].token == want[j].token && got[j].sim == want[j].sim;
          }
          if (!same) ++thread_mismatches;
          session->ResetCursors();
          reference.ResetCursors();
        }
      });
    }
    for (auto& t : threads) t.join();
  }
  bounded_index.EvictToCapacity();
  const size_t settled_bytes = bounded_index.cursor_cache_stats().bytes;

  // ---- report -----------------------------------------------------------
  const double rate_ratio =
      unbounded.HitRate() == 0.0 ? 1.0 : bounded.HitRate() / unbounded.HitRate();
  std::printf(
      "=== cursor cache eviction: %zu ops, vocab %zu, Zipf s=%.1f ===\n",
      total_ops, vocab_size, kZipfSkew);
  std::printf("%-11s | %9s | %9s | %8s | %12s | %12s\n", "cache", "hits",
              "misses", "hit rate", "max bytes", "evictions");
  std::printf("%s\n", std::string(76, '-').c_str());
  std::printf("%-11s | %9llu | %9llu | %7.2f%% | %12s | %12s\n", "unbounded",
              static_cast<unsigned long long>(unbounded.hits),
              static_cast<unsigned long long>(unbounded.misses),
              100.0 * unbounded.HitRate(),
              util::MemoryTracker::FormatBytes(unbounded.max_bytes).c_str(),
              "-");
  std::printf("%-11s | %9llu | %9llu | %7.2f%% | %12s | %12llu\n", "bounded",
              static_cast<unsigned long long>(bounded.hits),
              static_cast<unsigned long long>(bounded.misses),
              100.0 * bounded.HitRate(),
              util::MemoryTracker::FormatBytes(bounded.max_bytes).c_str(),
              static_cast<unsigned long long>(bounded.evictions));
  std::printf("capacity: %s (%.0f%% of unbounded) | cap respected: %s | "
              "hit-rate ratio: %.3f\n",
              util::MemoryTracker::FormatBytes(cap).c_str(),
              100.0 * capacity_frac, bounded.cap_respected ? "yes" : "NO",
              rate_ratio);
  std::printf("exactness after churn: %s | 4-thread hammer mismatches: %zu | "
              "settled bytes: %s\n",
              exact ? "ok" : "FAILED", thread_mismatches.load(),
              util::MemoryTracker::FormatBytes(settled_bytes).c_str());

  const bool bounded_ok = bounded.cap_respected && settled_bytes <= cap;
  const bool rate_ok = rate_ratio >= 0.9;
  const bool exact_ok = exact && thread_mismatches.load() == 0;

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
    } else {
      std::fprintf(f, "{\n  \"bench\": \"cursor_cache_eviction\",\n");
      std::fprintf(f, "  \"ops\": %zu, \"vocab\": %zu, \"zipf_s\": %.2f,\n",
                   total_ops, vocab_size, kZipfSkew);
      std::fprintf(f,
                   "  \"unbounded\": {\"hits\": %llu, \"misses\": %llu, "
                   "\"hit_rate\": %.4f, \"bytes\": %zu, \"sec\": %.4f},\n",
                   static_cast<unsigned long long>(unbounded.hits),
                   static_cast<unsigned long long>(unbounded.misses),
                   unbounded.HitRate(), unbounded.final_bytes, unbounded.sec);
      std::fprintf(f,
                   "  \"bounded\": {\"capacity\": %zu, \"max_bytes\": %zu, "
                   "\"hits\": %llu, \"misses\": %llu, \"hit_rate\": %.4f, "
                   "\"evictions\": %llu, \"sec\": %.4f},\n",
                   cap, bounded.max_bytes,
                   static_cast<unsigned long long>(bounded.hits),
                   static_cast<unsigned long long>(bounded.misses),
                   bounded.HitRate(),
                   static_cast<unsigned long long>(bounded.evictions),
                   bounded.sec);
      std::fprintf(f,
                   "  \"hit_rate_ratio\": %.4f, \"cap_respected\": %s, "
                   "\"exact\": %s\n}\n",
                   rate_ratio, bounded_ok ? "true" : "false",
                   exact_ok ? "true" : "false");
      std::fclose(f);
      std::printf("json written to %s\n", json_path.c_str());
    }
  }

  if (!exact_ok) {
    std::fprintf(stderr, "ERROR: eviction changed probe results\n");
    return 2;
  }
  if (!bounded_ok) {
    std::fprintf(stderr, "ERROR: byte budget violated (hard cap)\n");
    return 2;
  }
  if (!rate_ok) {
    std::fprintf(stderr,
                 "ERROR: bounded hit rate %.3f of unbounded, below the 0.9 "
                 "acceptance bar\n",
                 rate_ratio);
    return 2;
  }
  return 0;
}

}  // namespace
}  // namespace koios

int main(int argc, char** argv) {
  size_t total_ops = 40000;
  size_t vocab = 4000;
  double capacity_frac = 0.25;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--ops") == 0 && i + 1 < argc) {
      total_ops = static_cast<size_t>(std::stoul(argv[++i]));
    } else if (std::strcmp(argv[i], "--vocab") == 0 && i + 1 < argc) {
      vocab = static_cast<size_t>(std::stoul(argv[++i]));
    } else if (std::strcmp(argv[i], "--capacity-frac") == 0 && i + 1 < argc) {
      capacity_frac = std::stod(argv[++i]);
    }
  }
  return koios::Run(total_ops, vocab, capacity_frac, json_path);
}
