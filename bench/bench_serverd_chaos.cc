// Chaos harness for the NETWORK edge (ISSUE 8): where bench_serve_chaos
// hammers the engine in-process, this one drives REAL loopback TCP clients
// through the daemon-shaped stack — EngineSlot + RepositoryWatcher +
// Server, the exact objects koios_serverd wires together — and gates HARD
// on the wire-level robustness story:
//
//  * baseline  — closed-loop wire QPS, every answer bit-identical to an
//                in-process serial searcher over the same repository.
//  * chaos     — the same stream while (a) net.read / net.write faults
//                randomly kill connections under live traffic (clients
//                reconnect and retry), (b) a slow-loris attacker holds
//                half-written requests until the read deadline sheds it,
//                (c) an abandoning client sends big batches and hard-closes
//                after one frame (its queries must be cancelled, not
//                leaked), and (d) a reload attacker clobbers the watched
//                repository file IN PLACE with corrupt bytes (every push
//                must be rejected while the old snapshot keeps answering)
//                with one byte-identical valid push mid-window (must swap
//                without moving a result).
//  * recovery  — disarm everything, rerun the stream: bit-identical again,
//                goodput >= 90% of baseline (exit 3 if not — timing,
//                tolerated on busy CI runners like the other benches).
//
// After recovery, two more acts on the same stack:
//  * overload  — a second tiny-queue server + 20ms-late dispatches: every
//                wire-level shed must be a clean kResourceExhausted /
//                kDeadlineExceeded CARRYING retry_after_ms, successes stay
//                exact.
//  * drain     — a 48-query kSearchMany is in flight when Drain() fires
//                (the daemon's SIGTERM path minus the signal handler —
//                the process-level SIGTERM → exit-0 run lives in
//                tools/serverd_smoke.sh): every in-flight query must
//                complete bit-identically, the reader must see all frames,
//                and new connections must be refused afterwards.
//
// Hard invariants (exit 2, never tolerated): no crash, zero mismatches in
// ANY phase, zero failures in baseline/recovery, corrupt pushes all
// rejected, the valid push swapped, sheds all hint-carrying, drain
// completed every in-flight query, /metrics scrapes non-trivially.
//
// Usage: bench_serverd_chaos [--json out.json] [--queries N]
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "koios/core/searcher.h"
#include "koios/data/corpus.h"
#include "koios/data/query_benchmark.h"
#include "koios/embedding/synthetic_model.h"
#include "koios/io/repository_v4.h"
#include "koios/net/client.h"
#include "koios/net/engine_slot.h"
#include "koios/net/protocol.h"
#include "koios/net/repository_watcher.h"
#include "koios/net/server.h"
#include "koios/net/socket.h"
#include "koios/serve/engine_metrics.h"
#include "koios/serve/query_engine.h"
#include "koios/serve/snapshot.h"
#include "koios/util/fault_injector.h"
#include "koios/util/metric_registry.h"
#include "koios/util/rng.h"
#include "koios/util/timer.h"

namespace koios {
namespace {

constexpr double kRecoveryBar = 0.9;  // recovery QPS >= 0.9x baseline
constexpr char kHost[] = "127.0.0.1";

struct Scenario {
  std::vector<TokenId> tokens;
  uint32_t k = 10;
  double alpha = 0.8;
};

bool SameTopk(const std::vector<core::ResultEntry>& got,
              const std::vector<core::ResultEntry>& want) {
  if (got.size() != want.size()) return false;
  for (size_t i = 0; i < got.size(); ++i) {
    if (got[i].set != want[i].set || got[i].score != want[i].score ||
        got[i].exact != want[i].exact) {
      return false;
    }
  }
  return true;
}

struct LoopOutcome {
  double sec = 0.0;
  double qps = 0.0;
  size_t mismatches = 0;
  size_t abandoned = 0;          // gave up after max attempts
  size_t transport_reconnects = 0;  // connection died; client reconnected
  size_t backoff_retries = 0;    // server said retry_after_ms; we honored it
};

/// Closed loop over REAL sockets: `clients` threads each own a
/// BlockingClient and drive their slice of the stream synchronously. A
/// response carrying retry_after_ms is honored (sleep + retry on the same
/// connection); a transport error (connection shed by a fault or deadline)
/// reconnects and retries. A query still failing after `max_attempts` is
/// counted abandoned — tolerated only in the chaos window.
LoopOutcome RunWireLoop(uint16_t port, const std::vector<Scenario>& scenarios,
                        const std::vector<std::vector<core::ResultEntry>>& ref,
                        const std::vector<size_t>& stream, size_t clients,
                        int max_attempts) {
  std::atomic<size_t> mismatches{0}, abandoned{0}, reconnects{0}, backoffs{0};
  util::WallTimer timer;
  std::vector<std::thread> workers;
  for (size_t c = 0; c < clients; ++c) {
    workers.emplace_back([&, c] {
      net::ClientOptions copts;
      copts.io_timeout = std::chrono::milliseconds(10'000);
      auto conn = net::BlockingClient::Connect(kHost, port, copts);
      for (size_t i = c; i < stream.size(); i += clients) {
        const Scenario& s = scenarios[stream[i]];
        bool answered = false;
        for (int attempt = 0; attempt < max_attempts && !answered; ++attempt) {
          if (!conn.ok()) {
            conn = net::BlockingClient::Connect(kHost, port, copts);
            if (!conn.ok()) {
              std::this_thread::sleep_for(std::chrono::milliseconds(10));
              continue;
            }
          }
          auto r = conn.value().Search(s.tokens, s.k, s.alpha, /*deadline=*/0);
          if (r.ok()) {
            if (!SameTopk(r.value(), ref[stream[i]])) ++mismatches;
            answered = true;
          } else if (r.status().has_retry_after()) {
            ++backoffs;
            std::this_thread::sleep_for(
                std::chrono::milliseconds(r.status().retry_after_ms()));
          } else {
            // Transport-level shed (injected fault, killed connection):
            // the connection is suspect; replace it.
            ++reconnects;
            conn = util::Status::Unavailable("reconnect");
          }
        }
        if (!answered) ++abandoned;
      }
    });
  }
  for (auto& w : workers) w.join();
  LoopOutcome out;
  out.sec = timer.ElapsedSeconds();
  out.qps = static_cast<double>(stream.size()) / out.sec;
  out.mismatches = mismatches.load();
  out.abandoned = abandoned.load();
  out.transport_reconnects = reconnects.load();
  out.backoff_retries = backoffs.load();
  return out;
}

/// In-place clobber of `path` with the bytes of `src` — deliberately the
/// SLOPPY push (same inode, like `cp`), the case the watcher's spool copy
/// makes survivable. SaveRepository* is rename-atomic so it cannot
/// reproduce this.
bool ClobberInPlace(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  return static_cast<bool>(out);
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

int Run(size_t total_queries, const std::string& json_path) {
  // ---- fixture: repository file + corrupt twin bytes --------------------
  data::CorpusSpec spec;
  spec.name = "serverd-chaos";
  spec.num_sets = 1500;
  spec.vocab_size = 2200;
  spec.element_skew = 0.7;
  spec.size_distribution = data::SizeDistribution::kNormal;
  spec.min_set_size = 6;
  spec.max_set_size = 34;
  spec.avg_set_size = 15.0;
  spec.size_stddev = 6.0;
  spec.seed = 20260808;
  util::WallTimer setup_timer;
  data::Corpus corpus = data::GenerateCorpus(spec);

  embedding::SyntheticModelSpec model_spec;
  model_spec.vocab_size = spec.vocab_size;
  model_spec.dim = 32;
  model_spec.avg_cluster_size = 12.0;
  model_spec.noise_sigma = 0.38;
  model_spec.coverage = 0.92;
  model_spec.seed = spec.seed + 1;
  embedding::SyntheticEmbeddingModel model(model_spec);

  text::Dictionary dict;
  for (size_t t = 0; t < spec.vocab_size; ++t) {
    dict.Intern("tok" + std::to_string(t));
  }
  const std::string dir = std::filesystem::temp_directory_path().string();
  const std::string repo_path = dir + "/koios_serverd_chaos_repo.bin";
  if (auto s = io::SaveRepositoryV4(dict, corpus.sets, &model.store(),
                                    repo_path);
      !s.ok()) {
    std::fprintf(stderr, "ERROR: save failed: %s\n", s.ToString().c_str());
    return 2;
  }
  const std::string good_bytes = ReadFileBytes(repo_path);
  std::string corrupt_bytes = good_bytes;
  corrupt_bytes[corrupt_bytes.size() / 2] =
      static_cast<char>(corrupt_bytes[corrupt_bytes.size() / 2] ^ 0x10);

  // ---- serial reference (in-process, no network) ------------------------
  auto loaded = serve::Snapshot::Load(repo_path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "ERROR: snapshot load failed: %s\n",
                 loaded.status().ToString().c_str());
    return 2;
  }
  std::shared_ptr<const serve::Snapshot> snapshot = loaded.value();
  core::KoiosSearcher serial(&snapshot->sets(), snapshot->index());

  const uint32_t ks[] = {1, 5, 10};
  const double alphas[] = {0.7, 0.8};
  util::Rng rng(424248);
  const auto sampled = data::SampleQueriesUniform(corpus, 36, &rng);
  std::vector<Scenario> scenarios;
  std::vector<std::vector<core::ResultEntry>> reference;
  for (size_t i = 0; i < sampled.size(); ++i) {
    Scenario s;
    s.tokens = sampled[i].tokens;
    s.k = ks[i % 3];
    s.alpha = alphas[i % 2];
    core::SearchParams params;  // exactly what server.cc builds from a frame
    params.k = s.k;
    params.alpha = s.alpha;
    reference.push_back(serial.Search(s.tokens, params).topk);
    scenarios.push_back(std::move(s));
  }
  // The drain batch queries every scenario at a single (k=10, alpha=0.8).
  // ALL references are computed up front: the serial snapshot mmaps
  // repo_path DIRECTLY (no spool copy — it is not behind the watcher), so
  // once the chaos window's in-place corrupt pushes start, its pages are
  // unreliable until the window restores the original bytes. The serving
  // stack is immune to exactly this by design; the bench's reference is
  // not, which is rather the point of the feature.
  std::vector<std::vector<core::ResultEntry>> drain_reference;
  for (const Scenario& s : scenarios) {
    core::SearchParams params;
    params.k = 10;
    params.alpha = 0.8;
    drain_reference.push_back(serial.Search(s.tokens, params).topk);
  }
  std::vector<size_t> stream(total_queries);
  for (size_t i = 0; i < stream.size(); ++i) stream[i] = i % scenarios.size();

  // ---- the daemon-shaped stack ------------------------------------------
  util::MetricRegistry registry;
  net::EngineSlot slot;
  serve::RegisterEngineMetrics(
      &registry, [&slot]() -> std::shared_ptr<const serve::QueryEngine> {
        return slot.Get();
      });
  net::WatcherOptions wopts;
  wopts.engine.num_threads = 4;
  wopts.engine.max_queue = stream.size() + 64;
  net::RepositoryWatcher watcher(repo_path, &slot, &registry, wopts);
  // Polls are driven by hand (deterministic), not by the watcher thread.
  if (auto s = watcher.PollOnce(); !s.ok()) {
    std::fprintf(stderr, "ERROR: initial load failed: %s\n",
                 s.ToString().c_str());
    return 2;
  }
  net::ServerOptions sopts;
  sopts.port = 0;
  // Short enough that the slow-loris attacker is shed inside the chaos
  // window; long enough that a real client never trips it.
  sopts.read_deadline = std::chrono::milliseconds(400);
  net::Server server(&slot, &registry, sopts);
  if (auto s = server.Start(); !s.ok()) {
    std::fprintf(stderr, "ERROR: server start failed: %s\n",
                 s.ToString().c_str());
    return 2;
  }
  const uint16_t port = server.port();
  std::printf("[setup] %zu sets, %zu vocab, serving on :%u, %.1fs\n",
              corpus.NumSets(), corpus.vocabulary.size(), port,
              setup_timer.ElapsedSeconds());

  // ---- phase 1: baseline ------------------------------------------------
  const LoopOutcome baseline =
      RunWireLoop(port, scenarios, reference, stream, 4, /*max_attempts=*/3);

  // ---- phase 2: chaos ---------------------------------------------------
  LoopOutcome chaos;
  size_t corrupt_pushes = 0, corrupt_rejected = 0;
  size_t valid_pushes = 0, valid_swapped = 0;
  size_t loris_closed = 0, batches_abandoned = 0;
  {
    util::FaultSpec readf;
    readf.fail_probability = 0.05;
    readf.seed = 811;
    util::ScopedFault read_fault("net.read", readf);
    util::FaultSpec writef;
    writef.fail_probability = 0.05;
    writef.seed = 812;
    util::ScopedFault write_fault("net.write", writef);

    std::atomic<bool> stop{false};

    // (d) reload attacker: corrupt in-place pushes, one valid push.
    std::thread reloader([&] {
      size_t round = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const bool valid = (++round == 3);
        if (!ClobberInPlace(repo_path, valid ? good_bytes : corrupt_bytes)) {
          continue;
        }
        // Debounce wants the same fingerprint on two consecutive polls;
        // poll until the change either lands or is rejected (bounded).
        const net::WatcherStats before = watcher.stats();
        for (int p = 0; p < 4; ++p) {
          watcher.PollOnce();
          const net::WatcherStats now = watcher.stats();
          if (now.swaps_completed != before.swaps_completed ||
              now.swap_failures != before.swap_failures) {
            break;
          }
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
        const net::WatcherStats after = watcher.stats();
        if (valid) {
          ++valid_pushes;
          if (after.swaps_completed > before.swaps_completed) ++valid_swapped;
        } else {
          ++corrupt_pushes;
          if (after.swap_failures > before.swap_failures &&
              after.swaps_completed == before.swaps_completed) {
            ++corrupt_rejected;
          }
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
    });

    // (b) slow-loris attacker: half a header, then silence until shed.
    std::thread loris([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        auto sock = net::ConnectTcp(kHost, port,
                                    std::chrono::milliseconds(1'000));
        if (!sock.ok()) continue;
        const char half[3] = {0x01, 0x02, 0x00};
        const auto deadline =
            std::chrono::steady_clock::now() + std::chrono::seconds(2);
        net::WriteAll(sock.value().fd(), half, sizeof(half), deadline);
        std::string sink;
        // The server closes us at the read deadline; observe the hangup.
        net::ReadUntilClose(sock.value().fd(), &sink, 64, deadline);
        ++loris_closed;
      }
    });

    // (c) abandoning client: a 16-query batch, one frame read, hard close.
    std::thread abandoner([&] {
      std::string req;
      {
        net::RequestFrame f;
        f.op = net::Op::kSearchMany;
        f.k = 10;
        f.alpha = 0.8;
        for (size_t q = 0; q < 16; ++q) {
          f.queries.push_back(scenarios[q % scenarios.size()].tokens);
        }
        net::AppendRequestFrame(f, &req);
      }
      while (!stop.load(std::memory_order_relaxed)) {
        auto sock = net::ConnectTcp(kHost, port,
                                    std::chrono::milliseconds(1'000));
        if (!sock.ok()) continue;
        const auto deadline =
            std::chrono::steady_clock::now() + std::chrono::seconds(2);
        if (net::WriteAll(sock.value().fd(), req.data(), req.size(), deadline)
                .ok()) {
          char head[net::kFrameHeaderBytes];
          net::ReadExact(sock.value().fd(), head, sizeof(head), deadline);
        }
        ++batches_abandoned;  // destructor hard-closes mid-stream
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      }
    });

    chaos = RunWireLoop(port, scenarios, reference, stream, 4,
                        /*max_attempts=*/6);
    stop.store(true, std::memory_order_relaxed);
    reloader.join();
    loris.join();
    abandoner.join();
    // The window usually ends with corrupt bytes on disk (the reloader's
    // last push). Restore the original bytes so the serial snapshot's
    // aliased mmap is sane again for the acts below.
    ClobberInPlace(repo_path, good_bytes);
  }

  // ---- phase 3: recovery ------------------------------------------------
  const LoopOutcome recovery =
      RunWireLoop(port, scenarios, reference, stream, 4, /*max_attempts=*/3);

  // ---- metrics scrape (under a served stack, before drain) --------------
  int http_status = 0;
  auto metrics = net::HttpGet(kHost, port, "/metrics", &http_status);
  const bool metrics_ok =
      metrics.ok() && http_status == 200 &&
      metrics.value().find("koios_server_responses_ok_total") !=
          std::string::npos &&
      metrics.value().find("koios_queries_completed_total") !=
          std::string::npos;

  // ---- overload burst (separate tiny-queue server) ----------------------
  size_t burst_ok = 0, burst_shed = 0;
  size_t burst_bad_status = 0, burst_missing_hint = 0, burst_mismatch = 0;
  {
    util::FaultSpec slow;
    slow.latency = std::chrono::milliseconds(20);
    util::ScopedFault dispatch_fault("threadpool.dispatch", slow);
    serve::EngineOptions small;
    small.num_threads = 2;
    small.max_queue = 2;
    net::EngineSlot small_slot;
    small_slot.Set(std::make_shared<serve::QueryEngine>(snapshot, small));
    net::Server small_server(&small_slot, nullptr, net::ServerOptions{});
    if (auto s = small_server.Start(); !s.ok()) {
      std::fprintf(stderr, "ERROR: overload server start failed: %s\n",
                   s.ToString().c_str());
      return 2;
    }
    std::atomic<size_t> ok{0}, shed{0}, bad{0}, nohint{0}, mism{0};
    std::vector<std::thread> blasters;
    for (size_t c = 0; c < 8; ++c) {
      blasters.emplace_back([&, c] {
        auto conn = net::BlockingClient::Connect(kHost, small_server.port());
        if (!conn.ok()) return;
        for (size_t i = 0; i < 8; ++i) {
          const size_t si = (c * 8 + i) % scenarios.size();
          const Scenario& s = scenarios[si];
          auto r = conn.value().Search(s.tokens, s.k, s.alpha,
                                       /*deadline_ms=*/400);
          if (r.ok()) {
            ++ok;
            if (!SameTopk(r.value(), reference[si])) ++mism;
            continue;
          }
          ++shed;
          const util::StatusCode code = r.status().code();
          if (code != util::StatusCode::kResourceExhausted &&
              code != util::StatusCode::kDeadlineExceeded) {
            ++bad;
          }
          if (!r.status().has_retry_after()) ++nohint;
        }
      });
    }
    for (auto& b : blasters) b.join();
    burst_ok = ok.load();
    burst_shed = shed.load();
    burst_bad_status = bad.load();
    burst_missing_hint = nohint.load();
    burst_mismatch = mism.load();
    small_server.Stop();
  }

  // ---- drain under load -------------------------------------------------
  // A 48-query batch is mid-flight when Drain() fires; every query must
  // complete bit-identically and the listener must refuse new connections
  // afterwards. This is the daemon's SIGTERM path without the signal (the
  // process-level run is tools/serverd_smoke.sh's job).
  size_t drain_frames_ok = 0, drain_frames_bad = 0;
  bool drain_refused_after = false;
  {
    constexpr size_t kDrainBatch = 48;
    auto conn = net::BlockingClient::Connect(kHost, port);
    if (!conn.ok()) {
      std::fprintf(stderr, "ERROR: drain client connect failed\n");
      return 2;
    }
    std::vector<std::vector<TokenId>> queries;
    for (size_t q = 0; q < kDrainBatch; ++q) {
      queries.push_back(scenarios[q % scenarios.size()].tokens);
    }
    std::thread reader([&] {
      conn.value().SearchMany(
          queries, 10, 0.8, /*deadline_ms=*/0,
          [&](const net::ResponseFrame& frame) {
            if (frame.code == net::WireCode::kOk &&
                SameTopk(frame.results,
                         drain_reference[frame.query_index %
                                         scenarios.size()])) {
              ++drain_frames_ok;
            } else {
              ++drain_frames_bad;
              std::fprintf(stderr,
                           "drain frame %u bad: code=%s nresults=%zu msg=%s\n",
                           frame.query_index,
                           net::WireCodeName(frame.code).c_str(),
                           frame.results.size(), frame.message.c_str());
            }
          });
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    server.Drain();
    reader.join();
    auto probe = net::BlockingClient::Connect(
        kHost, port, {.connect_timeout = std::chrono::milliseconds(250)});
    drain_refused_after = !probe.ok() || !probe.value().Ping().ok();
  }

  // ---- report -----------------------------------------------------------
  const double chaos_ratio = chaos.qps / baseline.qps;
  const double recovery_ratio = recovery.qps / baseline.qps;
  std::printf("\n=== serverd chaos: %zu queries/phase over loopback TCP ===\n",
              stream.size());
  std::printf("%-10s | %9s | %9s | %10s | %9s | %10s | %8s\n", "phase", "QPS",
              "vs base", "mismatches", "abandoned", "reconnects", "backoffs");
  std::printf("%s\n", std::string(82, '-').c_str());
  std::printf("%-10s | %9.1f | %9s | %10zu | %9zu | %10zu | %8zu\n",
              "baseline", baseline.qps, "1.00x", baseline.mismatches,
              baseline.abandoned, baseline.transport_reconnects,
              baseline.backoff_retries);
  std::printf("%-10s | %9.1f | %8.2fx | %10zu | %9zu | %10zu | %8zu\n",
              "chaos", chaos.qps, chaos_ratio, chaos.mismatches,
              chaos.abandoned, chaos.transport_reconnects,
              chaos.backoff_retries);
  std::printf("%-10s | %9.1f | %8.2fx | %10zu | %9zu | %10zu | %8zu\n",
              "recovery", recovery.qps, recovery_ratio, recovery.mismatches,
              recovery.abandoned, recovery.transport_reconnects,
              recovery.backoff_retries);
  std::printf(
      "chaos attackers: %zu corrupt pushes (%zu rejected), %zu valid "
      "pushes (%zu swapped), %zu slow-loris sheds, %zu abandoned batches\n",
      corrupt_pushes, corrupt_rejected, valid_pushes, valid_swapped,
      loris_closed, batches_abandoned);
  std::printf(
      "overload: %zu ok, %zu shed (bad statuses %zu, missing hints %zu, "
      "mismatches %zu)\n",
      burst_ok, burst_shed, burst_bad_status, burst_missing_hint,
      burst_mismatch);
  std::printf("drain: %zu/%zu frames ok (%zu bad), new connections %s\n",
              drain_frames_ok, size_t{48}, drain_frames_bad,
              drain_refused_after ? "refused" : "ACCEPTED");
  const net::ServerStats sstats = server.stats();
  const net::WatcherStats wstats = watcher.stats();
  std::printf(
      "server: %llu accepted, %llu read errs, %llu write errs, %llu "
      "loris closes, %llu cancelled-on-disconnect; watcher: %llu swaps, "
      "%llu swap failures; /metrics scrape %s\n",
      static_cast<unsigned long long>(sstats.connections_accepted),
      static_cast<unsigned long long>(sstats.read_errors),
      static_cast<unsigned long long>(sstats.write_errors),
      static_cast<unsigned long long>(sstats.slow_loris_closes),
      static_cast<unsigned long long>(sstats.queries_cancelled_on_disconnect),
      static_cast<unsigned long long>(wstats.swaps_completed),
      static_cast<unsigned long long>(wstats.swap_failures),
      metrics_ok ? "ok" : "FAILED");

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
    } else {
      std::fprintf(f, "{\n  \"bench\": \"serverd_chaos\",\n");
      std::fprintf(f,
                   "  \"corpus\": {\"sets\": %zu, \"vocab\": %zu},\n"
                   "  \"queries_per_phase\": %zu,\n",
                   corpus.NumSets(), corpus.vocabulary.size(), stream.size());
      std::fprintf(
          f,
          "  \"baseline\": {\"qps\": %.2f},\n"
          "  \"chaos\": {\"qps\": %.2f, \"ratio\": %.3f, \"abandoned\": %zu, "
          "\"reconnects\": %zu},\n"
          "  \"recovery\": {\"qps\": %.2f, \"ratio\": %.3f},\n",
          baseline.qps, chaos.qps, chaos_ratio, chaos.abandoned,
          chaos.transport_reconnects, recovery.qps, recovery_ratio);
      std::fprintf(f,
                   "  \"attackers\": {\"corrupt_pushes\": %zu, "
                   "\"corrupt_rejected\": %zu, \"valid_swapped\": %zu, "
                   "\"loris_sheds\": %zu, \"abandoned_batches\": %zu},\n",
                   corrupt_pushes, corrupt_rejected, valid_swapped,
                   loris_closed, batches_abandoned);
      std::fprintf(f,
                   "  \"overload\": {\"ok\": %zu, \"shed\": %zu, "
                   "\"missing_hints\": %zu},\n",
                   burst_ok, burst_shed, burst_missing_hint);
      std::fprintf(f, "  \"drain\": {\"frames_ok\": %zu, \"refused_after\": "
                      "%s},\n",
                   drain_frames_ok, drain_refused_after ? "true" : "false");
      const bool exact = baseline.mismatches == 0 && chaos.mismatches == 0 &&
                         recovery.mismatches == 0 && burst_mismatch == 0 &&
                         drain_frames_bad == 0;
      std::fprintf(f, "  \"exact\": %s,\n  \"recovered\": %s\n}\n",
                   exact ? "true" : "false",
                   recovery_ratio >= kRecoveryBar ? "true" : "false");
      std::fclose(f);
      std::printf("json written to %s\n", json_path.c_str());
    }
  }
  std::filesystem::remove(repo_path);

  // ---- gates ------------------------------------------------------------
  bool hard_failure = false;
  if (baseline.mismatches + chaos.mismatches + recovery.mismatches +
          burst_mismatch >
      0) {
    std::fprintf(stderr,
                 "ERROR: wire results diverged from the serial reference\n");
    hard_failure = true;
  }
  if (baseline.abandoned + recovery.abandoned > 0) {
    std::fprintf(stderr, "ERROR: queries failed outside the chaos window\n");
    hard_failure = true;
  }
  if (corrupt_pushes == 0 || corrupt_rejected != corrupt_pushes) {
    std::fprintf(stderr,
                 "ERROR: corrupt pushes not all rejected (%zu of %zu)\n",
                 corrupt_rejected, corrupt_pushes);
    hard_failure = true;
  }
  if (valid_pushes == 0 || valid_swapped != valid_pushes) {
    std::fprintf(stderr, "ERROR: the valid mid-chaos push did not swap\n");
    hard_failure = true;
  }
  if (burst_shed == 0 || burst_ok == 0 || burst_bad_status > 0 ||
      burst_missing_hint > 0) {
    std::fprintf(stderr, "ERROR: overload shedding was not clean "
                         "(bad statuses or missing retry hints)\n");
    hard_failure = true;
  }
  if (drain_frames_ok != 48 || drain_frames_bad > 0 || !drain_refused_after) {
    std::fprintf(stderr, "ERROR: drain did not complete in-flight work "
                         "cleanly (or kept accepting)\n");
    hard_failure = true;
  }
  if (!metrics_ok) {
    std::fprintf(stderr, "ERROR: /metrics scrape missing expected series\n");
    hard_failure = true;
  }
  if (hard_failure) return 2;
  if (recovery_ratio < kRecoveryBar) {
    std::fprintf(stderr,
                 "WARN: recovery goodput %.2fx of baseline, below the %.2fx "
                 "bar (timing; tolerated on busy runners)\n",
                 recovery_ratio, kRecoveryBar);
    return 3;
  }
  return 0;
}

}  // namespace
}  // namespace koios

int main(int argc, char** argv) {
  size_t total_queries = 144;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--queries") == 0 && i + 1 < argc) {
      total_queries = static_cast<size_t>(std::stoul(argv[++i]));
    }
  }
  return koios::Run(total_queries, json_path);
}
