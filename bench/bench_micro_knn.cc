// Micro-benchmark for the batched neighbor-generation path (ISSUE 1): how
// fast can cursors over the vocabulary be built?
//
// Three configurations over the same 10k-token, dim-300 vocabulary:
//  * scalar   — the seed code path: one virtual Similarity() call per
//               (query token, vocab token) pair, then an eager full sort of
//               everything >= alpha.
//  * batched  — ExactKnnIndex's current path: one SimilarityBatch dense
//               kernel scan per query token, alpha filter on the flat score
//               array, lazy chunked ordering (first chunk only).
//  * parallel — Prewarm() fanning the batched builds across the ThreadPool.
//
// Also reports the CosineAllRows dense matrix-vector ceiling. Emits a
// human-readable table and, with `--json <path>`, a JSON blob for the CI
// trajectory. Usage: bench_micro_knn [--json out.json] [--vocab N] [--dim N]
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "koios/embedding/synthetic_model.h"
#include "koios/sim/cosine_similarity.h"
#include "koios/sim/exact_knn_index.h"
#include "koios/sim/similarity.h"
#include "koios/util/rng.h"
#include "koios/util/thread_pool.h"
#include "koios/util/timer.h"

namespace koios {
namespace {

constexpr Score kAlpha = 0.6;
constexpr size_t kQueries = 32;
constexpr size_t kReps = 3;

// The seed's BuildCursor, reproduced verbatim as the baseline: pairwise
// virtual dispatch per vocabulary token + eager full sort.
std::vector<sim::Neighbor> SeedScalarBuildCursor(
    const sim::SimilarityFunction& sim, const std::vector<TokenId>& vocabulary,
    TokenId q, Score alpha) {
  std::vector<sim::Neighbor> neighbors;
  for (TokenId t : vocabulary) {
    if (t == q) continue;
    const Score s = sim.Similarity(q, t);
    if (s >= alpha) neighbors.push_back({t, s});
  }
  std::sort(neighbors.begin(), neighbors.end(),
            [](const sim::Neighbor& a, const sim::Neighbor& b) {
              if (a.sim != b.sim) return a.sim > b.sim;
              return a.token < b.token;
            });
  return neighbors;
}

struct Measurement {
  double seconds = 0.0;     // best-of-reps wall time for all kQueries builds
  double pairs_per_sec = 0.0;
  double build_latency_us = 0.0;  // mean per-cursor build latency
};

Measurement Measure(size_t pairs_total, size_t num_queries,
                    const std::function<void()>& run) {
  Measurement m;
  m.seconds = 1e100;
  for (size_t rep = 0; rep < kReps; ++rep) {
    util::WallTimer timer;
    run();
    m.seconds = std::min(m.seconds, timer.ElapsedSeconds());
  }
  m.pairs_per_sec = static_cast<double>(pairs_total) / m.seconds;
  m.build_latency_us = m.seconds / static_cast<double>(num_queries) * 1e6;
  return m;
}

}  // namespace

int Main(int argc, char** argv) {
  size_t vocab = 10000;
  size_t dim = 300;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--vocab") == 0 && i + 1 < argc) {
      vocab = std::strtoul(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--dim") == 0 && i + 1 < argc) {
      dim = std::strtoul(argv[++i], nullptr, 10);
    }
  }

  embedding::SyntheticModelSpec spec;
  spec.vocab_size = vocab;
  spec.dim = dim;
  spec.avg_cluster_size = 16.0;
  spec.noise_sigma = 0.35;
  spec.coverage = 1.0;
  spec.seed = 20260730;
  embedding::SyntheticEmbeddingModel model(spec);
  sim::CosineEmbeddingSimilarity cosine(&model.store());

  std::vector<TokenId> vocabulary(vocab);
  for (TokenId t = 0; t < vocab; ++t) vocabulary[t] = t;

  util::Rng rng(7);
  std::vector<TokenId> queries;
  for (size_t i = 0; i < kQueries; ++i) {
    queries.push_back(static_cast<TokenId>(rng.NextBounded(vocab)));
  }
  std::sort(queries.begin(), queries.end());
  queries.erase(std::unique(queries.begin(), queries.end()), queries.end());
  const size_t pairs_total = queries.size() * vocabulary.size();

  std::printf("bench_micro_knn: vocab=%zu dim=%zu alpha=%.2f queries=%zu\n",
              vocab, dim, kAlpha, queries.size());

  // --- scalar (seed path) --------------------------------------------------
  size_t scalar_neighbors = 0;
  const Measurement scalar = Measure(pairs_total, queries.size(), [&] {
    scalar_neighbors = 0;
    for (TokenId q : queries) {
      scalar_neighbors +=
          SeedScalarBuildCursor(cosine, vocabulary, q, kAlpha).size();
    }
  });

  // --- single (per-cursor dense scan + lazy first chunk) -------------------
  sim::ExactKnnIndex index(vocabulary, &cosine);
  const Measurement single = Measure(pairs_total, queries.size(), [&] {
    index.ResetCursors();
    for (TokenId q : queries) {
      // First probe builds the cursor and orders only the first chunk.
      (void)index.NextNeighbor(q, kAlpha);
    }
  });

  // --- batched (serial Prewarm: multi-query blocked kernel) ----------------
  // This is the production path: TokenStream prewarms every query token's
  // cursor at construction.
  const Measurement batched = Measure(pairs_total, queries.size(), [&] {
    index.ResetCursors();
    index.Prewarm(queries, kAlpha);
  });

  // --- parallel prewarm ----------------------------------------------------
  const size_t workers = std::max(1u, std::thread::hardware_concurrency());
  util::ThreadPool pool(workers);
  sim::ExactKnnIndex parallel_index(vocabulary, &cosine, &pool);
  const Measurement parallel = Measure(pairs_total, queries.size(), [&] {
    parallel_index.ResetCursors();
    parallel_index.Prewarm(queries, kAlpha);
  });

  // --- dense matrix-vector ceiling ----------------------------------------
  std::vector<float> dense_out(model.store().covered());
  const size_t dense_pairs = queries.size() * model.store().covered();
  const Measurement dense = Measure(dense_pairs, queries.size(), [&] {
    for (TokenId q : queries) {
      model.store().CosineAllRows(q, std::span<float>(dense_out));
    }
  });

  // --- sanity: batched path returns the same first neighbor ---------------
  size_t mismatches = 0;
  index.ResetCursors();
  for (TokenId q : queries) {
    const auto seed_list = SeedScalarBuildCursor(cosine, vocabulary, q, kAlpha);
    const auto got = index.NextNeighbor(q, kAlpha);
    if (seed_list.empty() != !got.has_value()) ++mismatches;
    // The kernel accumulates in a different (vectorized) order than the
    // seed's serial loop, so scores agree to ~1e-15, not bit-for-bit; a
    // top-1 swap is only legitimate between neighbors tied at that scale.
    if (got.has_value() && !seed_list.empty() &&
        std::abs(got->sim - seed_list[0].sim) > 1e-12) {
      ++mismatches;
    }
  }

  const double speedup = batched.pairs_per_sec / scalar.pairs_per_sec;
  const double par_speedup = parallel.pairs_per_sec / scalar.pairs_per_sec;

  std::printf("%-10s %15s %18s %12s\n", "config", "pairs/sec", "cursor-build us",
              "speedup");
  std::printf("%-10s %15.3e %18.1f %12s\n", "scalar", scalar.pairs_per_sec,
              scalar.build_latency_us, "1.0x");
  std::printf("%-10s %15.3e %18.1f %11.1fx\n", "single", single.pairs_per_sec,
              single.build_latency_us, single.pairs_per_sec / scalar.pairs_per_sec);
  std::printf("%-10s %15.3e %18.1f %11.1fx\n", "batched", batched.pairs_per_sec,
              batched.build_latency_us, speedup);
  std::printf("%-10s %15.3e %18.1f %11.1fx\n", "parallel",
              parallel.pairs_per_sec, parallel.build_latency_us, par_speedup);
  std::printf("%-10s %15.3e %18.1f %11.1fx\n", "dense-mv", dense.pairs_per_sec,
              dense.build_latency_us, dense.pairs_per_sec / scalar.pairs_per_sec);
  std::printf("scalar neighbors=%zu, first-neighbor mismatches=%zu\n",
              scalar_neighbors, mismatches);

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"vocab\": %zu,\n"
                 "  \"dim\": %zu,\n"
                 "  \"alpha\": %.2f,\n"
                 "  \"queries\": %zu,\n"
                 "  \"threads\": %zu,\n"
                 "  \"scalar_pairs_per_sec\": %.6e,\n"
                 "  \"single_cursor_pairs_per_sec\": %.6e,\n"
                 "  \"batched_pairs_per_sec\": %.6e,\n"
                 "  \"parallel_pairs_per_sec\": %.6e,\n"
                 "  \"dense_mv_pairs_per_sec\": %.6e,\n"
                 "  \"scalar_build_latency_us\": %.3f,\n"
                 "  \"batched_build_latency_us\": %.3f,\n"
                 "  \"parallel_build_latency_us\": %.3f,\n"
                 "  \"batched_speedup\": %.3f,\n"
                 "  \"parallel_speedup\": %.3f,\n"
                 "  \"first_neighbor_mismatches\": %zu\n"
                 "}\n",
                 vocab, dim, kAlpha, queries.size(), workers,
                 scalar.pairs_per_sec, single.pairs_per_sec,
                 batched.pairs_per_sec,
                 parallel.pairs_per_sec, dense.pairs_per_sec,
                 scalar.build_latency_us, batched.build_latency_us,
                 parallel.build_latency_us, speedup, par_speedup, mismatches);
    std::fclose(f);
    std::printf("json written to %s\n", json_path.c_str());
  }

  if (mismatches != 0) return 2;
  return speedup >= 4.0 ? 0 : 3;  // acceptance: >= 4x batched throughput
}

}  // namespace koios

int main(int argc, char** argv) { return koios::Main(argc, argv); }
