// Micro benchmarks (google-benchmark): the kernels whose costs drive the
// paper's complexity discussion — Hungarian matching (O(n³)), the greedy
// matcher (O(E log E)), the early-terminated Hungarian, the token stream,
// and the bucket index maintenance.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "koios/core/bucket_index.h"
#include "koios/matching/greedy.h"
#include "koios/matching/hungarian.h"
#include "koios/data/corpus.h"
#include "koios/embedding/synthetic_model.h"
#include "koios/sim/cosine_similarity.h"
#include "koios/sim/exact_knn_index.h"
#include "koios/sim/token_stream.h"
#include "koios/util/rng.h"

namespace koios {
namespace {

struct MicroWorkload {
  data::Corpus corpus;
  std::unique_ptr<embedding::SyntheticEmbeddingModel> model;
  std::unique_ptr<sim::CosineEmbeddingSimilarity> sim;
  std::unique_ptr<sim::ExactKnnIndex> index;
};

MicroWorkload MakeWorkload(size_t vocab) {
  MicroWorkload w;
  data::CorpusSpec spec;
  spec.num_sets = 50;
  spec.vocab_size = vocab;
  spec.size_distribution = data::SizeDistribution::kUniform;
  spec.min_set_size = 20;
  spec.max_set_size = 40;
  spec.seed = 5;
  w.corpus = data::GenerateCorpus(spec);
  embedding::SyntheticModelSpec ms;
  ms.vocab_size = vocab;
  ms.dim = 32;
  ms.seed = 6;
  w.model = std::make_unique<embedding::SyntheticEmbeddingModel>(ms);
  w.sim = std::make_unique<sim::CosineEmbeddingSimilarity>(&w.model->store());
  w.index = std::make_unique<sim::ExactKnnIndex>(w.corpus.vocabulary, w.sim.get());
  return w;
}

matching::WeightMatrix RandomMatrix(size_t n, double density, uint64_t seed) {
  util::Rng rng(seed);
  matching::WeightMatrix m(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      if (rng.NextBool(density)) m.At(i, j) = 0.5 + 0.5 * rng.NextDouble();
    }
  }
  return m;
}

void BM_Hungarian(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto m = RandomMatrix(n, 0.2, 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(matching::HungarianMatcher::Solve(m));
  }
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_Hungarian)->RangeMultiplier(2)->Range(16, 256)->Complexity();

void BM_HungarianEarlyTerminated(benchmark::State& state) {
  // A threshold far above the optimum: termination fires on the first dual
  // check, modeling the filter's best case.
  const size_t n = static_cast<size_t>(state.range(0));
  const auto m = RandomMatrix(n, 0.2, 43);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        matching::HungarianMatcher::Solve(m, /*prune_threshold=*/1e9));
  }
}
BENCHMARK(BM_HungarianEarlyTerminated)->RangeMultiplier(2)->Range(16, 256);

void BM_GreedyMatch(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto m = RandomMatrix(n, 0.2, 44);
  for (auto _ : state) {
    benchmark::DoNotOptimize(matching::GreedyMatch(m));
  }
}
BENCHMARK(BM_GreedyMatch)->RangeMultiplier(2)->Range(16, 256);

void BM_TokenStream(benchmark::State& state) {
  auto w = MakeWorkload(static_cast<size_t>(state.range(0)));
  const auto query_span = w.corpus.sets.Tokens(0);
  std::vector<TokenId> query(query_span.begin(), query_span.end());
  for (auto _ : state) {
    sim::TokenStream stream(query, w.index.get(), 0.7,
                            [](TokenId) { return true; });
    size_t tuples = 0;
    while (stream.Next()) ++tuples;
    benchmark::DoNotOptimize(tuples);
  }
}
BENCHMARK(BM_TokenStream)->Arg(1000)->Arg(4000);

void BM_BucketIndexChurn(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  util::Rng rng(7);
  for (auto _ : state) {
    core::BucketIndex buckets;
    for (SetId id = 0; id < n; ++id) {
      buckets.Insert(id, 10 + static_cast<uint32_t>(id % 5), 0.0);
    }
    // Simulate stream-driven moves + periodic prunes.
    double theta = 0.0;
    for (size_t step = 0; step < n; ++step) {
      const SetId id = static_cast<SetId>(rng.NextBounded(n));
      (void)id;
      theta += 0.001;
      buckets.Prune(0.8, theta, [](SetId) {});
      if (buckets.size() == 0) break;
    }
    benchmark::DoNotOptimize(buckets.size());
  }
}
BENCHMARK(BM_BucketIndexChurn)->Arg(1000)->Arg(10000);

}  // namespace
}  // namespace koios

BENCHMARK_MAIN();
