// Table V — WDC: number of sets pruned by each filter, by query cardinality
// interval.
//
// Paper reference (counts per query, full-scale WDC):
//   interval   candidates  iUB      No-EM  EM-ET  EM
//   20-250     124217      60196    74     80     63867
//   250-500    189665      186512   90     3      3060
//   500-750    262947      261901   85     6      953
//   750-1000   274695      273743   83     26     843
//   >1000      402622      402332   84     3      203
//
// Shape: candidate counts an order of magnitude above OpenData (frequent
// elements => long posting lists), iUB pruning > 97% for medium/large
// queries, EM counts collapsing with cardinality.
#include <cstdio>

#include "bench_util.h"

namespace koios::bench {
namespace {

void Run() {
  PrintHeader("Table V: WDC — #sets pruned by filters");
  BenchWorkload w = MakeBenchWorkload(Dataset::kWdc);
  core::SearcherOptions options;
  options.num_partitions = 10;
  core::KoiosSearcher searcher(&w.corpus.sets, w.index.get(), options);
  core::SearchParams params;
  params.k = 10;
  params.alpha = 0.8;
  params.verify_result_scores = false;

  const BenchQueries bq = MakeBenchQueries(w, /*per_interval=*/3,
                                           /*uniform_count=*/0);
  std::printf("%-14s | %10s %12s %8s %8s %8s\n", "Query Card.", "Candidates",
              "iUB-Filter", "No-EM", "EM-ET", "EM");
  PrintRule();
  for (size_t iv = 0; iv < bq.intervals.size(); ++iv) {
    Aggregate cand, iub, no_em, em_et, em;
    for (const auto& query : bq.queries) {
      if (query.interval != iv) continue;
      const RunOutcome out = RunKoios(&searcher, query.tokens, params);
      cand.Add(static_cast<double>(out.stats.candidates));
      iub.Add(static_cast<double>(out.stats.iub_filtered));
      no_em.Add(static_cast<double>(out.stats.no_em_skipped));
      em_et.Add(static_cast<double>(out.stats.em_early_terminated));
      em.Add(static_cast<double>(out.stats.em_computed));
    }
    if (cand.n == 0) continue;
    std::printf("%-14s | %10.0f %12.0f %8.0f %8.0f %8.0f\n",
                bq.intervals[iv].Label().c_str(), cand.Mean(), iub.Mean(),
                no_em.Mean(), em_et.Mean(), em.Mean());
  }
  std::printf("\nAverage counts per query; k=10, alpha=0.8, 10 partitions.\n");
}

}  // namespace
}  // namespace koios::bench

int main() {
  koios::bench::Run();
  return 0;
}
