// POSIX socket primitives for the network edge, wrapped so the rest of
// net/ never touches a raw syscall: RAII fd ownership, Status-based
// listener/connect setup, and partial-write/EINTR-correct IO helpers.
//
// Failure hardening baked in at this layer:
//  * Every send uses MSG_NOSIGNAL, so a peer that died mid-stream yields
//    EPIPE (an IoEvent::kError the caller sheds one connection over)
//    instead of a process-wide SIGPIPE. The daemon ALSO ignores SIGPIPE
//    process-wide (belt and suspenders; see koios_serverd).
//  * Every syscall loops on EINTR; short reads/writes are first-class
//    results, never errors.
//  * The fault injector owns three seams here — "net.accept", "net.read",
//    "net.write" — so the chaos harness can kill connections at any IO
//    boundary and assert the edge degrades to clean per-connection closes.
#ifndef KOIOS_NET_SOCKET_H_
#define KOIOS_NET_SOCKET_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>

#include "koios/util/status.h"

namespace koios::net {

/// Owning file-descriptor wrapper (movable, closes on destruction).
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(Socket&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}
  Socket& operator=(Socket&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = std::exchange(other.fd_, -1);
    }
    return *this;
  }
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  void Close();
  /// Releases ownership without closing (for handing the fd elsewhere).
  int Release() { return std::exchange(fd_, -1); }

 private:
  int fd_ = -1;
};

/// Binds + listens on `address:port` (IPv4 dotted quad; empty = loopback).
/// port 0 picks an ephemeral port; `bound_port` (optional) receives the
/// actual one. SO_REUSEADDR is set so restarts don't trip TIME_WAIT.
util::StatusOr<Socket> ListenTcp(const std::string& address, uint16_t port,
                                 int backlog, uint16_t* bound_port);

/// Blocking connect with a timeout (nonblocking connect + poll). The
/// returned socket is in BLOCKING mode — the client-side helpers below
/// drive it with per-call deadlines.
util::StatusOr<Socket> ConnectTcp(const std::string& address, uint16_t port,
                                  std::chrono::milliseconds timeout);

util::Status SetNonBlocking(int fd);

/// Outcome of one nonblocking IO attempt.
enum class IoEvent {
  kProgress,    // >= 1 byte moved
  kWouldBlock,  // EAGAIN/EWOULDBLOCK: retry after poll
  kPeerClosed,  // orderly shutdown from the peer (reads only)
  kError,       // errno-level failure (or an injected net.read/net.write
                // fault); the connection is dead
};

struct IoResult {
  IoEvent event = IoEvent::kError;
  size_t bytes = 0;  // meaningful for kProgress
  int error = 0;     // errno for kError
};

/// One nonblocking read into `buf` (EINTR retried). Faultpoint "net.read".
IoResult ReadSome(int fd, void* buf, size_t len);

/// One nonblocking write of up to `len` bytes (EINTR retried, MSG_NOSIGNAL;
/// partial writes report kProgress with the byte count — callers keep
/// their own cursor). Faultpoint "net.write".
IoResult WriteSome(int fd, const void* data, size_t len);

/// Accept outcome (listener side). Faultpoint "net.accept" fires AFTER the
/// kernel accept so the injected failure closes a real connection — the
/// client observes exactly what a transient accept-path failure looks like.
struct AcceptResult {
  IoEvent event = IoEvent::kError;
  Socket socket;  // valid for kProgress
  int error = 0;
};
AcceptResult AcceptNonBlocking(int listener_fd);

// --------------------------------------------------------- blocking side --
// Client helpers over a BLOCKING socket with an absolute deadline: every
// syscall computes the remaining budget, waits for readiness with poll
// (EINTR-aware), and loops over short reads/writes. DeadlineExceeded when
// the budget runs out mid-transfer.

util::Status WriteAll(int fd, const void* data, size_t len,
                      std::chrono::steady_clock::time_point deadline);
util::Status ReadExact(int fd, void* buf, size_t len,
                       std::chrono::steady_clock::time_point deadline);
/// Reads until the peer closes (text/HTTP responses), appending to `out`,
/// capped at `max_bytes`.
util::Status ReadUntilClose(int fd, std::string* out, size_t max_bytes,
                            std::chrono::steady_clock::time_point deadline);

}  // namespace koios::net

#endif  // KOIOS_NET_SOCKET_H_
