// Wire protocol of koios_serverd. One listener speaks three dialects,
// discriminated by the FIRST byte of a connection's first request:
//
//  * 0x01 — the binary framing below (length-prefixed, streamable).
//  * '{'  — line-delimited JSON: one request object per line, one response
//           object per line, connection stays open for more lines.
//  * 'G'/'H' — a minimal HTTP/1.0 GET/HEAD subset for /healthz, /readyz
//           and /metrics (curl-able; Connection: close).
//
// Binary framing (all integers little-endian-as-host — the repository
// format makes the same x86-64/aarch64 assumption):
//
//   request  := [u8 0x01][u8 op][u32 body_len][body]
//   response := [u8 0x01][u8 wire_code][u32 body_len][body]
//
//   op kPing       body: empty                    -> one kOk response, empty
//   op kSearch     body: u32 k, f64 alpha, u32 deadline_ms,
//                        u32 ntokens, ntokens x u32
//   op kSearchMany body: u32 k, f64 alpha, u32 deadline_ms, u32 nqueries,
//                        nqueries x (u32 ntokens, ntokens x u32)
//
// A search request yields EXACTLY ONE response frame PER QUERY (so a
// kSearchMany with n queries yields n frames), in COMPLETION order — the
// server streams each result as the engine finalizes it, it does not
// buffer the batch. Every response body begins with the query's 0-based
// index within its request so the client can reassemble order.
//
//   kOk body     := u32 query_index, u32 nresults,
//                   nresults x (u32 set, f64 score, u8 exact)
//   error body   := u32 query_index, u32 retry_after_ms, u32 msg_len, msg
//
// retry_after_ms is nonzero exactly when the engine attached a backoff
// hint (queue-full / fail-fast shed / drain) — the protocol-level shape of
// engine backpressure the issue calls for.
#ifndef KOIOS_NET_PROTOCOL_H_
#define KOIOS_NET_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "koios/core/search_types.h"
#include "koios/util/status.h"
#include "koios/util/types.h"

namespace koios::net {

inline constexpr uint8_t kFrameMagic = 0x01;
inline constexpr size_t kFrameHeaderBytes = 6;  // magic + op/code + u32 len

enum class Op : uint8_t {
  kPing = 1,
  kSearch = 2,
  kSearchMany = 3,
};

/// Status codes as they cross the wire. Kept separate from
/// util::StatusCode so the enum values are a frozen protocol contract
/// (reordering the C++ enum must not change the wire).
enum class WireCode : uint8_t {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kResourceExhausted = 3,
  kDeadlineExceeded = 4,
  kUnavailable = 5,
  kCancelled = 6,
  kInternal = 7,
};

WireCode ToWireCode(util::StatusCode code);
util::StatusCode FromWireCode(WireCode code);

/// A parsed binary request.
struct RequestFrame {
  Op op = Op::kPing;
  uint32_t k = 10;
  double alpha = 0.8;
  uint32_t deadline_ms = 0;  // 0 = server default
  std::vector<std::vector<TokenId>> queries;  // kSearch: exactly one
};

enum class ParseStatus {
  kNeedMore,  // buffer holds a prefix of a valid frame; read more bytes
  kOk,        // one frame decoded; *consumed bytes were used
  kError,     // protocol violation; connection must be closed (after
              // flushing *error, when the caller can still write)
};

/// Incremental binary-frame parser over the connection's read buffer.
/// `max_frame_bytes` bounds body_len (the max-request-size defense): an
/// oversized header is rejected WITHOUT waiting for (or buffering) the
/// body. On kOk, `*consumed` is the total frame size to drop from the
/// buffer. On kError, `*error` explains the violation.
ParseStatus ParseRequestFrame(const char* data, size_t size,
                              size_t max_frame_bytes, size_t* consumed,
                              RequestFrame* out, std::string* error);

/// Encoders (appending to `out`, which is the connection's write buffer).
void AppendRequestFrame(const RequestFrame& frame, std::string* out);
void AppendOkResponse(uint32_t query_index,
                      const std::vector<core::ResultEntry>& topk,
                      std::string* out);
void AppendErrorResponse(uint32_t query_index, const util::Status& status,
                         std::string* out);
void AppendPingResponse(std::string* out);

/// A decoded response frame (client side).
struct ResponseFrame {
  WireCode code = WireCode::kInternal;
  uint32_t query_index = 0;
  // kOk:
  std::vector<core::ResultEntry> results;
  // errors:
  uint32_t retry_after_ms = 0;
  std::string message;
};

/// Incremental response parser, mirror of ParseRequestFrame.
ParseStatus ParseResponseFrame(const char* data, size_t size,
                               size_t max_frame_bytes, size_t* consumed,
                               ResponseFrame* out, std::string* error);

/// Turns an error ResponseFrame back into the Status the engine produced
/// (retry hint reattached). kOk frames map to OK.
util::Status ResponseToStatus(const ResponseFrame& frame);

// ------------------------------------------------------------ JSON mode --
// One request per line: {"tokens":[1,2,3],"k":10,"alpha":0.8,
// "deadline_ms":500} — only "tokens" is required. Strictly parsed (no
// trailing garbage); unknown keys rejected, so a typo'd "aplha" fails loud
// instead of silently using the default.

struct JsonRequest {
  std::vector<TokenId> tokens;
  uint32_t k = 10;
  double alpha = 0.8;
  uint32_t deadline_ms = 0;
};

util::Status ParseJsonRequestLine(const std::string& line, JsonRequest* out);

/// One response per line (no trailing newline; the caller appends it):
///   {"status":"ok","results":[{"set":4,"score":0.91,"exact":true},...]}
///   {"status":"resource_exhausted","retry_after_ms":12,"message":"..."}
std::string JsonOkResponse(const std::vector<core::ResultEntry>& topk);
std::string JsonErrorResponse(const util::Status& status);

/// Wire name of a status code ("ok", "resource_exhausted", ...).
std::string WireCodeName(WireCode code);

}  // namespace koios::net

#endif  // KOIOS_NET_PROTOCOL_H_
