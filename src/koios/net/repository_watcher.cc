#include "koios/net/repository_watcher.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "koios/util/fault_injector.h"
#include "koios/util/trace_recorder.h"

namespace koios::net {

RepositoryWatcher::RepositoryWatcher(std::string repository_path,
                                     EngineSlot* slot,
                                     util::MetricRegistry* registry,
                                     const WatcherOptions& options)
    : path_(std::move(repository_path)), slot_(slot), options_(options) {
  if (registry != nullptr) {
    struct Mirror {
      util::Counter* polls;
      util::Counter* poll_failures;
      util::Counter* changes;
      util::Counter* initial_loads;
      util::Counter* swaps;
      util::Counter* swap_failures;
    };
    Mirror m;
    m.polls = registry->RegisterCounter("koios_watch_polls_total",
                                        "Repository poll attempts");
    m.poll_failures = registry->RegisterCounter(
        "koios_watch_poll_failures_total",
        "Polls that failed to observe the file (stat error or injected "
        "watch.poll fault); never trigger a swap");
    m.changes = registry->RegisterCounter(
        "koios_watch_changes_detected_total",
        "Settled repository changes (debounced across two polls)");
    m.initial_loads = registry->RegisterCounter(
        "koios_watch_initial_loads_total",
        "First successful loads (the readiness flip)");
    m.swaps = registry->RegisterCounter("koios_watch_swaps_completed_total",
                                        "Hot swaps that landed");
    m.swap_failures = registry->RegisterCounter(
        "koios_watch_swap_failures_total",
        "Rejected loads/swaps (corrupt push; old snapshot kept serving)");
    registry->AddCollectionCallback([this, m] {
      const WatcherStats s = stats();
      m.polls->Set(s.polls);
      m.poll_failures->Set(s.poll_failures);
      m.changes->Set(s.changes_detected);
      m.initial_loads->Set(s.initial_loads);
      m.swaps->Set(s.swaps_completed);
      m.swap_failures->Set(s.swap_failures);
    });
  }
}

RepositoryWatcher::~RepositoryWatcher() { Stop(); }

void RepositoryWatcher::Start() {
  if (thread_.joinable()) return;
  stop_.store(false, std::memory_order_release);
  thread_ = std::thread([this] {
    while (!stop_.load(std::memory_order_acquire)) {
      PollOnce();  // errors are counted and retried next interval
      std::unique_lock<std::mutex> lock(wake_mutex_);
      wake_.wait_for(lock, options_.poll_interval, [this] {
        return stop_.load(std::memory_order_acquire);
      });
    }
  });
}

void RepositoryWatcher::Stop() {
  {
    // Store under wake_mutex_ so the notify cannot slip between the
    // waiter's predicate check and its block — a lost wakeup would delay
    // shutdown by a full poll interval.
    std::lock_guard<std::mutex> lock(wake_mutex_);
    stop_.store(true, std::memory_order_release);
  }
  wake_.notify_all();
  if (thread_.joinable()) thread_.join();
}

WatcherStats RepositoryWatcher::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

util::Status RepositoryWatcher::Stat(Fingerprint* out) const {
  struct stat st;
  if (::stat(path_.c_str(), &st) != 0) {
    return util::Status::NotFound("stat " + path_ + ": " +
                                  std::strerror(errno));
  }
  out->size = static_cast<int64_t>(st.st_size);
  out->mtime_sec = static_cast<int64_t>(st.st_mtim.tv_sec);
  out->mtime_nsec = static_cast<int64_t>(st.st_mtim.tv_nsec);
  out->inode = static_cast<uint64_t>(st.st_ino);
  out->valid = true;
  return util::Status::OK();
}

util::Status RepositoryWatcher::PollOnce() {
  std::lock_guard<std::mutex> poll_lock(poll_mutex_);
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.polls;
  }
  // The fail-closed rule the fault sweep pins down: a failed poll counts
  // a failure and returns — it must never reach the load/swap path below.
  if (KOIOS_FAULTPOINT("watch.poll")) {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.poll_failures;
    return util::Status::Internal("injected watch.poll fault");
  }
  Fingerprint fp;
  if (util::Status s = Stat(&fp); !s.ok()) {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.poll_failures;
    return s;
  }

  if (fp == served_) {
    candidate_ = fp;
    return util::Status::OK();
  }
  if (fp == rejected_) {
    // Known-bad bytes: don't reload the same corrupt push every poll.
    // A NEW change (different fingerprint) clears this naturally.
    return util::Status::OK();
  }
  // Debounce: act only when the fingerprint held still across two
  // consecutive polls, so a push caught mid-copy settles before loading.
  // The INITIAL load (no engine yet) skips the wait — the file the daemon
  // was pointed at is overwhelmingly already complete, and a truncated one
  // fails closed and retries when the fingerprint next changes.
  const bool settled = (fp == candidate_) || slot_->Get() == nullptr;
  candidate_ = fp;
  if (!settled) return util::Status::OK();

  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.changes_detected;
  }
  util::Status status = LoadOrSwap();
  if (status.ok()) {
    served_ = fp;
  } else {
    rejected_ = fp;
  }
  return status;
}

util::StatusOr<std::string> RepositoryWatcher::SpoolToPrivateCopy() const {
  // The v4 load path serves straight out of an mmap of the file it was
  // given. Mapping the WATCHED path would hand the operator a foot-gun: a
  // push done with `cp` (or any in-place rewrite) truncates and rewrites
  // the same inode, and every resident page of the live mapping changes
  // under the serving snapshot — queries then walk poisoned offsets and
  // the process dies with SIGSEGV/SIGBUS. Atomic-rename pushes are still
  // the documented procedure, but the daemon must survive the other kind.
  //
  // So the watcher never maps the watched file: it spools the bytes to a
  // private same-directory copy, loads/maps THAT, and unlinks it at once.
  // The mapping keeps the unlinked inode alive, and nothing external can
  // reach it again. A push caught mid-write yields a torn copy, which the
  // eager CRC verify rejects — same fail-closed outcome as a corrupt push.
  const std::string spool_path =
      path_ + ".spool." + std::to_string(static_cast<long>(::getpid()));
  int in = ::open(path_.c_str(), O_RDONLY | O_CLOEXEC);
  if (in < 0) {
    return util::Status::NotFound("open " + path_ + ": " +
                                  std::strerror(errno));
  }
  int out = ::open(spool_path.c_str(),
                   O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0600);
  if (out < 0) {
    const int err = errno;
    ::close(in);
    return util::Status::Internal("create spool " + spool_path + ": " +
                                  std::strerror(err));
  }
  util::Status status = util::Status::OK();
  char buf[1 << 16];
  for (;;) {
    ssize_t n = ::read(in, buf, sizeof buf);
    if (n == 0) break;
    if (n < 0) {
      if (errno == EINTR) continue;
      status = util::Status::Internal("read " + path_ + ": " +
                                      std::strerror(errno));
      break;
    }
    ssize_t off = 0;
    while (off < n) {
      ssize_t w = ::write(out, buf + off, static_cast<size_t>(n - off));
      if (w < 0) {
        if (errno == EINTR) continue;
        status = util::Status::Internal("write " + spool_path + ": " +
                                        std::strerror(errno));
        break;
      }
      off += w;
    }
    if (!status.ok()) break;
  }
  ::close(in);
  ::close(out);
  if (!status.ok()) {
    ::unlink(spool_path.c_str());
    return status;
  }
  return spool_path;
}

util::Status RepositoryWatcher::LoadOrSwap() {
  // Swap builds get their own (always-sampled) trace: they are rare,
  // expensive, and exactly what an operator looks for in /debug/tracez
  // when a push stalls serving.
  const uint64_t trace =
      util::TraceRecorder::Enabled()
          ? util::TraceRecorder::Instance().StartTraceForced()
          : 0;
  util::TraceAdopt adopt(trace, 0);
  KOIOS_TRACE_SPAN("watch.swap");
  util::StatusOr<std::string> spool = [&] {
    KOIOS_TRACE_SPAN("watch.spool_copy");
    return SpoolToPrivateCopy();
  }();
  if (!spool.ok()) {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.swap_failures;
    return spool.status();
  }
  const std::string& spool_path = spool.value();
  util::Status status = LoadOrSwapFrom(spool_path);
  // The snapshot's mmap (if the load succeeded) pins the unlinked inode;
  // the PATH disappears so no later push can scribble on serving memory.
  ::unlink(spool_path.c_str());
  return status;
}

util::Status RepositoryWatcher::LoadOrSwapFrom(const std::string& load_path) {
  std::shared_ptr<serve::QueryEngine> engine = slot_->Get();
  if (engine == nullptr) {
    // First load: same fail-closed bar as a swap — a v4 snapshot is
    // verified eagerly before it can become the readiness flip.
    serve::SnapshotOptions load_options = options_.snapshot;
    load_options.mmap_verify = true;
    util::StatusOr<std::shared_ptr<const serve::Snapshot>> snapshot = [&] {
      KOIOS_TRACE_SPAN("watch.initial_load");
      return serve::Snapshot::Load(load_path, load_options);
    }();
    if (!snapshot.ok()) {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.swap_failures;
      return snapshot.status();
    }
    KOIOS_TRACE_SPAN("watch.engine_build");
    auto built = std::make_shared<serve::QueryEngine>(
        std::move(snapshot).value(), options_.engine);
    slot_->Set(std::move(built));
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.initial_loads;
    return util::Status::OK();
  }
  util::Status status =
      engine->TrySwapFromRepository(load_path, options_.snapshot);
  std::lock_guard<std::mutex> lock(stats_mutex_);
  if (status.ok()) {
    ++stats_.swaps_completed;
  } else {
    ++stats_.swap_failures;
  }
  return status;
}

}  // namespace koios::net
