// RepositoryWatcher — the daemon's zero-touch reload path. A background
// thread stats the repository file on an interval; when the file changes
// (and the change has SETTLED — same fingerprint on two consecutive polls,
// so a half-written push is not loaded mid-copy), it reloads:
//
//  * First successful load BUILDS the engine and installs it in the
//    EngineSlot — the moment the daemon's /readyz flips to 200.
//  * Subsequent changes go through QueryEngine::TrySwapFromRepository,
//    which is fail-closed end to end: a corrupt, truncated or
//    half-written file FAILS THE SWAP and the engine keeps answering
//    from the old snapshot (eager v4 verify included).
//
// Fail-closed rules the tests pin down:
//  * A failed poll (stat error, injected "watch.poll" fault) NEVER
//    triggers a swap — it only increments poll_failures.
//  * A fingerprint that failed to load is remembered: the watcher does
//    not re-attempt the same corrupt bytes every poll, only a NEW change
//    (and a daemon that starts against a corrupt repository stays unready
//    rather than crash-looping, retrying when the file is replaced).
//  * Serving memory NEVER aliases the watched inode: every load goes
//    through a private spool copy (unlinked once mapped), so a push done
//    with `cp` — an in-place rewrite of the same inode — cannot mutate
//    the bytes under the live snapshot's mmap. Atomic rename is still the
//    recommended push procedure; this makes the sloppy one survivable.
#ifndef KOIOS_NET_REPOSITORY_WATCHER_H_
#define KOIOS_NET_REPOSITORY_WATCHER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "koios/net/engine_slot.h"
#include "koios/serve/query_engine.h"
#include "koios/serve/snapshot.h"
#include "koios/util/metric_registry.h"
#include "koios/util/status.h"

namespace koios::net {

struct WatcherOptions {
  std::chrono::milliseconds poll_interval{500};
  /// Engine configuration applied when the FIRST load builds the engine.
  serve::EngineOptions engine;
  /// Snapshot load options (TrySwapFromRepository forces mmap_verify on
  /// for swaps regardless; this applies to the initial load, where the
  /// watcher forces it too — same fail-closed bar for the first snapshot).
  serve::SnapshotOptions snapshot;
};

/// Monotone watcher counters (snapshot; safe from any thread).
struct WatcherStats {
  uint64_t polls = 0;
  uint64_t poll_failures = 0;
  uint64_t changes_detected = 0;
  uint64_t initial_loads = 0;
  uint64_t swaps_completed = 0;
  uint64_t swap_failures = 0;
};

class RepositoryWatcher {
 public:
  /// `slot` receives the engine on first load (must outlive the watcher).
  /// `registry` (optional) gets the koios_watch_* metric family.
  RepositoryWatcher(std::string repository_path, EngineSlot* slot,
                    util::MetricRegistry* registry,
                    const WatcherOptions& options = {});
  ~RepositoryWatcher();

  RepositoryWatcher(const RepositoryWatcher&) = delete;
  RepositoryWatcher& operator=(const RepositoryWatcher&) = delete;

  /// Starts the polling thread. An initial load failure does NOT fail
  /// Start — the daemon comes up unready and keeps retrying on change.
  void Start();
  /// Stops and joins the thread. Idempotent.
  void Stop();

  /// One synchronous poll step — the unit the deterministic tests drive
  /// (no thread, no timing). Returns what the step did/saw:
  ///  * OK            — no settled change, or a settled change swapped in
  ///  * anything else — poll failed (faultpoint/stat) or the load/swap was
  ///                    rejected; in EVERY error case the served snapshot
  ///                    is untouched.
  util::Status PollOnce();

  WatcherStats stats() const;

 private:
  struct Fingerprint {
    int64_t size = -1;
    int64_t mtime_sec = 0;
    int64_t mtime_nsec = 0;
    uint64_t inode = 0;
    bool valid = false;
    bool operator==(const Fingerprint& other) const {
      return valid == other.valid && size == other.size &&
             mtime_sec == other.mtime_sec && mtime_nsec == other.mtime_nsec &&
             inode == other.inode;
    }
    bool operator!=(const Fingerprint& other) const {
      return !(*this == other);
    }
  };

  util::Status Stat(Fingerprint* out) const;
  /// Copies the watched file to an adjacent private spool file. The load
  /// path mmaps whatever file it is handed, and serving memory must never
  /// alias the watched inode: an in-place rewrite (`cp` over the path)
  /// would otherwise mutate the live mapping and crash the process. The
  /// spool copy is unlinked as soon as the load is done — the mapping
  /// keeps the inode alive, unreachable by any future push.
  util::StatusOr<std::string> SpoolToPrivateCopy() const;
  util::Status LoadOrSwap();
  util::Status LoadOrSwapFrom(const std::string& load_path);

  const std::string path_;
  EngineSlot* slot_;
  WatcherOptions options_;

  // Poll-step state (only PollOnce touches these; the thread serializes
  // through poll_mutex_ with direct test calls).
  std::mutex poll_mutex_;
  Fingerprint served_;     // fingerprint of the snapshot being served
  Fingerprint candidate_;  // last observed fingerprint (debounce step 1)
  Fingerprint rejected_;   // fingerprint that failed to load (don't retry)

  mutable std::mutex stats_mutex_;
  WatcherStats stats_;

  std::atomic<bool> stop_{false};
  std::mutex wake_mutex_;
  std::condition_variable wake_;
  std::thread thread_;
};

}  // namespace koios::net

#endif  // KOIOS_NET_REPOSITORY_WATCHER_H_
