#include "koios/net/protocol.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstring>

namespace koios::net {

namespace {

void AppendU8(uint8_t v, std::string* out) {
  out->push_back(static_cast<char>(v));
}
void AppendU32(uint32_t v, std::string* out) {
  char buf[sizeof(v)];
  std::memcpy(buf, &v, sizeof(v));
  out->append(buf, sizeof(v));
}
void AppendF64(double v, std::string* out) {
  char buf[sizeof(v)];
  std::memcpy(buf, &v, sizeof(v));
  out->append(buf, sizeof(v));
}

/// Bounds-checked sequential reader over a frame body.
class BodyReader {
 public:
  BodyReader(const char* data, size_t size) : data_(data), size_(size) {}

  bool ReadU8(uint8_t* v) { return ReadRaw(v, sizeof(*v)); }
  bool ReadU32(uint32_t* v) { return ReadRaw(v, sizeof(*v)); }
  bool ReadF64(double* v) { return ReadRaw(v, sizeof(*v)); }
  bool ReadBytes(std::string* out, size_t n) {
    if (size_ - pos_ < n) return false;
    out->assign(data_ + pos_, n);
    pos_ += n;
    return true;
  }
  bool AtEnd() const { return pos_ == size_; }
  size_t remaining() const { return size_ - pos_; }

 private:
  bool ReadRaw(void* v, size_t n) {
    if (size_ - pos_ < n) return false;
    std::memcpy(v, data_ + pos_, n);
    pos_ += n;
    return true;
  }
  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

bool ReadTokenList(BodyReader* r, std::vector<TokenId>* tokens,
                   std::string* error) {
  uint32_t ntokens = 0;
  if (!r->ReadU32(&ntokens)) {
    *error = "truncated token list header";
    return false;
  }
  if (ntokens > r->remaining() / sizeof(TokenId)) {
    *error = "token count exceeds frame body";
    return false;
  }
  tokens->resize(ntokens);
  for (uint32_t i = 0; i < ntokens; ++i) {
    if (!r->ReadU32(&(*tokens)[i])) {
      *error = "truncated token list";
      return false;
    }
  }
  return true;
}

// Frame header decode shared by request/response parsing. Returns
// kNeedMore / kError / kOk (kOk = header valid AND the full body is
// buffered; *body_len and *tag are set).
ParseStatus DecodeHeader(const char* data, size_t size, size_t max_frame_bytes,
                         uint8_t* tag, uint32_t* body_len,
                         std::string* error) {
  if (size < kFrameHeaderBytes) return ParseStatus::kNeedMore;
  if (static_cast<uint8_t>(data[0]) != kFrameMagic) {
    *error = "bad frame magic";
    return ParseStatus::kError;
  }
  *tag = static_cast<uint8_t>(data[1]);
  std::memcpy(body_len, data + 2, sizeof(*body_len));
  // The oversize check fires from the HEADER alone: a hostile client
  // cannot make the server buffer a huge body before being rejected.
  if (*body_len > max_frame_bytes) {
    *error = "frame body of " + std::to_string(*body_len) +
             " bytes exceeds the " + std::to_string(max_frame_bytes) +
             "-byte request limit";
    return ParseStatus::kError;
  }
  if (size < kFrameHeaderBytes + *body_len) return ParseStatus::kNeedMore;
  return ParseStatus::kOk;
}

std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

WireCode ToWireCode(util::StatusCode code) {
  switch (code) {
    case util::StatusCode::kOk: return WireCode::kOk;
    case util::StatusCode::kInvalidArgument: return WireCode::kInvalidArgument;
    case util::StatusCode::kNotFound: return WireCode::kNotFound;
    case util::StatusCode::kResourceExhausted:
      return WireCode::kResourceExhausted;
    case util::StatusCode::kDeadlineExceeded:
      return WireCode::kDeadlineExceeded;
    case util::StatusCode::kUnavailable: return WireCode::kUnavailable;
    case util::StatusCode::kCancelled: return WireCode::kCancelled;
    // kOutOfRange / kFailedPrecondition / kInternal all collapse to an
    // opaque server-side failure on the wire.
    default: return WireCode::kInternal;
  }
}

util::StatusCode FromWireCode(WireCode code) {
  switch (code) {
    case WireCode::kOk: return util::StatusCode::kOk;
    case WireCode::kInvalidArgument: return util::StatusCode::kInvalidArgument;
    case WireCode::kNotFound: return util::StatusCode::kNotFound;
    case WireCode::kResourceExhausted:
      return util::StatusCode::kResourceExhausted;
    case WireCode::kDeadlineExceeded:
      return util::StatusCode::kDeadlineExceeded;
    case WireCode::kUnavailable: return util::StatusCode::kUnavailable;
    case WireCode::kCancelled: return util::StatusCode::kCancelled;
    default: return util::StatusCode::kInternal;
  }
}

std::string WireCodeName(WireCode code) {
  switch (code) {
    case WireCode::kOk: return "ok";
    case WireCode::kInvalidArgument: return "invalid_argument";
    case WireCode::kNotFound: return "not_found";
    case WireCode::kResourceExhausted: return "resource_exhausted";
    case WireCode::kDeadlineExceeded: return "deadline_exceeded";
    case WireCode::kUnavailable: return "unavailable";
    case WireCode::kCancelled: return "cancelled";
    case WireCode::kInternal: return "internal";
  }
  return "internal";
}

ParseStatus ParseRequestFrame(const char* data, size_t size,
                              size_t max_frame_bytes, size_t* consumed,
                              RequestFrame* out, std::string* error) {
  uint8_t tag = 0;
  uint32_t body_len = 0;
  const ParseStatus hs =
      DecodeHeader(data, size, max_frame_bytes, &tag, &body_len, error);
  if (hs != ParseStatus::kOk) return hs;

  *out = RequestFrame{};
  BodyReader r(data + kFrameHeaderBytes, body_len);
  switch (tag) {
    case static_cast<uint8_t>(Op::kPing):
      out->op = Op::kPing;
      break;
    case static_cast<uint8_t>(Op::kSearch):
    case static_cast<uint8_t>(Op::kSearchMany): {
      out->op = static_cast<Op>(tag);
      if (!r.ReadU32(&out->k) || !r.ReadF64(&out->alpha) ||
          !r.ReadU32(&out->deadline_ms)) {
        *error = "truncated search header";
        return ParseStatus::kError;
      }
      if (!std::isfinite(out->alpha) || out->alpha <= 0.0 ||
          out->alpha > 1.0) {
        *error = "alpha must be in (0, 1]";
        return ParseStatus::kError;
      }
      if (out->k == 0) {
        *error = "k must be positive";
        return ParseStatus::kError;
      }
      uint32_t nqueries = 1;
      if (out->op == Op::kSearchMany) {
        if (!r.ReadU32(&nqueries)) {
          *error = "truncated query count";
          return ParseStatus::kError;
        }
        if (nqueries == 0) {
          *error = "empty batch";
          return ParseStatus::kError;
        }
        // 4 bytes of ntokens each, minimum.
        if (nqueries > r.remaining() / sizeof(uint32_t)) {
          *error = "query count exceeds frame body";
          return ParseStatus::kError;
        }
      }
      out->queries.resize(nqueries);
      for (uint32_t q = 0; q < nqueries; ++q) {
        if (!ReadTokenList(&r, &out->queries[q], error)) {
          return ParseStatus::kError;
        }
        if (out->queries[q].empty()) {
          *error = "empty query token list";
          return ParseStatus::kError;
        }
      }
      break;
    }
    default:
      *error = "unknown op " + std::to_string(tag);
      return ParseStatus::kError;
  }
  if (!r.AtEnd()) {
    *error = "trailing bytes in frame body";
    return ParseStatus::kError;
  }
  *consumed = kFrameHeaderBytes + body_len;
  return ParseStatus::kOk;
}

void AppendRequestFrame(const RequestFrame& frame, std::string* out) {
  std::string body;
  if (frame.op != Op::kPing) {
    AppendU32(frame.k, &body);
    AppendF64(frame.alpha, &body);
    AppendU32(frame.deadline_ms, &body);
    if (frame.op == Op::kSearchMany) {
      AppendU32(static_cast<uint32_t>(frame.queries.size()), &body);
    }
    for (const std::vector<TokenId>& q : frame.queries) {
      AppendU32(static_cast<uint32_t>(q.size()), &body);
      for (TokenId t : q) AppendU32(t, &body);
    }
  }
  AppendU8(kFrameMagic, out);
  AppendU8(static_cast<uint8_t>(frame.op), out);
  AppendU32(static_cast<uint32_t>(body.size()), out);
  out->append(body);
}

void AppendOkResponse(uint32_t query_index,
                      const std::vector<core::ResultEntry>& topk,
                      std::string* out) {
  std::string body;
  AppendU32(query_index, &body);
  AppendU32(static_cast<uint32_t>(topk.size()), &body);
  for (const core::ResultEntry& e : topk) {
    AppendU32(e.set, &body);
    AppendF64(e.score, &body);
    AppendU8(e.exact ? 1 : 0, &body);
  }
  AppendU8(kFrameMagic, out);
  AppendU8(static_cast<uint8_t>(WireCode::kOk), out);
  AppendU32(static_cast<uint32_t>(body.size()), out);
  out->append(body);
}

void AppendErrorResponse(uint32_t query_index, const util::Status& status,
                         std::string* out) {
  std::string body;
  AppendU32(query_index, &body);
  AppendU32(static_cast<uint32_t>(status.retry_after_ms()), &body);
  AppendU32(static_cast<uint32_t>(status.message().size()), &body);
  body.append(status.message());
  AppendU8(kFrameMagic, out);
  AppendU8(static_cast<uint8_t>(ToWireCode(status.code())), out);
  AppendU32(static_cast<uint32_t>(body.size()), out);
  out->append(body);
}

void AppendPingResponse(std::string* out) {
  std::string body;
  AppendU32(0, &body);  // query_index
  AppendU32(0, &body);  // nresults
  AppendU8(kFrameMagic, out);
  AppendU8(static_cast<uint8_t>(WireCode::kOk), out);
  AppendU32(static_cast<uint32_t>(body.size()), out);
  out->append(body);
}

ParseStatus ParseResponseFrame(const char* data, size_t size,
                               size_t max_frame_bytes, size_t* consumed,
                               ResponseFrame* out, std::string* error) {
  uint8_t tag = 0;
  uint32_t body_len = 0;
  const ParseStatus hs =
      DecodeHeader(data, size, max_frame_bytes, &tag, &body_len, error);
  if (hs != ParseStatus::kOk) return hs;
  if (tag > static_cast<uint8_t>(WireCode::kInternal)) {
    *error = "unknown wire code " + std::to_string(tag);
    return ParseStatus::kError;
  }

  *out = ResponseFrame{};
  out->code = static_cast<WireCode>(tag);
  BodyReader r(data + kFrameHeaderBytes, body_len);
  if (!r.ReadU32(&out->query_index)) {
    *error = "truncated response body";
    return ParseStatus::kError;
  }
  if (out->code == WireCode::kOk) {
    uint32_t nresults = 0;
    if (!r.ReadU32(&nresults)) {
      *error = "truncated result count";
      return ParseStatus::kError;
    }
    constexpr size_t kEntryBytes = sizeof(uint32_t) + sizeof(double) + 1;
    if (nresults > r.remaining() / kEntryBytes) {
      *error = "result count exceeds frame body";
      return ParseStatus::kError;
    }
    out->results.resize(nresults);
    for (uint32_t i = 0; i < nresults; ++i) {
      uint8_t exact = 0;
      if (!r.ReadU32(&out->results[i].set) ||
          !r.ReadF64(&out->results[i].score) || !r.ReadU8(&exact)) {
        *error = "truncated result entry";
        return ParseStatus::kError;
      }
      out->results[i].exact = exact != 0;
    }
  } else {
    uint32_t msg_len = 0;
    if (!r.ReadU32(&out->retry_after_ms) || !r.ReadU32(&msg_len) ||
        !r.ReadBytes(&out->message, msg_len)) {
      *error = "truncated error body";
      return ParseStatus::kError;
    }
  }
  if (!r.AtEnd()) {
    *error = "trailing bytes in frame body";
    return ParseStatus::kError;
  }
  *consumed = kFrameHeaderBytes + body_len;
  return ParseStatus::kOk;
}

util::Status ResponseToStatus(const ResponseFrame& frame) {
  if (frame.code == WireCode::kOk) return util::Status::OK();
  util::Status status(FromWireCode(frame.code), frame.message);
  if (frame.retry_after_ms > 0) {
    return std::move(status).WithRetryAfterMs(frame.retry_after_ms);
  }
  return status;
}

// ------------------------------------------------------------ JSON mode --

namespace {

/// Minimal strict parser for the one flat object shape the server accepts.
/// Not a general JSON library on purpose: the input grammar is tiny, and
/// rejecting anything outside it IS the robustness feature.
class JsonCursor {
 public:
  explicit JsonCursor(const std::string& s) : s_(s) {}

  void SkipSpace() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }
  bool Eat(char c) {
    SkipSpace();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool Peek(char c) {
    SkipSpace();
    return pos_ < s_.size() && s_[pos_] == c;
  }
  bool AtEnd() {
    SkipSpace();
    return pos_ == s_.size();
  }

  bool ReadString(std::string* out) {
    if (!Eat('"')) return false;
    out->clear();
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= s_.size()) return false;
        const char esc = s_[pos_++];
        switch (esc) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'n': out->push_back('\n'); break;
          case 't': out->push_back('\t'); break;
          case 'r': out->push_back('\r'); break;
          default: return false;  // \uXXXX etc. not needed for keys
        }
      } else {
        out->push_back(c);
      }
    }
    return false;
  }

  bool ReadNumber(double* out) {
    SkipSpace();
    const size_t start = pos_;
    if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
    bool digits = false;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '-' || s_[pos_] == '+')) {
      digits = true;
      ++pos_;
    }
    if (!digits) return false;
    try {
      *out = std::stod(s_.substr(start, pos_ - start));
    } catch (...) {
      return false;
    }
    return std::isfinite(*out);
  }

 private:
  const std::string& s_;
  size_t pos_ = 0;
};

}  // namespace

util::Status ParseJsonRequestLine(const std::string& line, JsonRequest* out) {
  *out = JsonRequest{};
  bool have_tokens = false;
  JsonCursor c(line);
  if (!c.Eat('{')) {
    return util::Status::InvalidArgument("request must be a JSON object");
  }
  if (!c.Peek('}')) {
    do {
      std::string key;
      if (!c.ReadString(&key) || !c.Eat(':')) {
        return util::Status::InvalidArgument("malformed JSON key");
      }
      if (key == "tokens") {
        if (!c.Eat('[')) {
          return util::Status::InvalidArgument("\"tokens\" must be an array");
        }
        have_tokens = true;
        if (!c.Peek(']')) {
          do {
            double v = 0;
            if (!c.ReadNumber(&v) || v < 0 || v != std::floor(v) ||
                v > 4294967295.0) {
              return util::Status::InvalidArgument(
                  "\"tokens\" entries must be u32 token ids");
            }
            out->tokens.push_back(static_cast<TokenId>(v));
          } while (c.Eat(','));
        }
        if (!c.Eat(']')) {
          return util::Status::InvalidArgument("unterminated token array");
        }
      } else if (key == "k" || key == "deadline_ms") {
        double v = 0;
        if (!c.ReadNumber(&v) || v < 0 || v != std::floor(v) ||
            v > 4294967295.0) {
          return util::Status::InvalidArgument("\"" + key +
                                               "\" must be a u32");
        }
        if (key == "k") {
          out->k = static_cast<uint32_t>(v);
        } else {
          out->deadline_ms = static_cast<uint32_t>(v);
        }
      } else if (key == "alpha") {
        double v = 0;
        if (!c.ReadNumber(&v)) {
          return util::Status::InvalidArgument("\"alpha\" must be a number");
        }
        out->alpha = v;
      } else {
        return util::Status::InvalidArgument("unknown key \"" + key + "\"");
      }
    } while (c.Eat(','));
  }
  if (!c.Eat('}') || !c.AtEnd()) {
    return util::Status::InvalidArgument("trailing characters after object");
  }
  if (!have_tokens || out->tokens.empty()) {
    return util::Status::InvalidArgument(
        "request must carry a non-empty \"tokens\" array");
  }
  if (out->k == 0) return util::Status::InvalidArgument("k must be positive");
  if (out->alpha <= 0.0 || out->alpha > 1.0) {
    return util::Status::InvalidArgument("alpha must be in (0, 1]");
  }
  return util::Status::OK();
}

std::string JsonOkResponse(const std::vector<core::ResultEntry>& topk) {
  std::string out = "{\"status\":\"ok\",\"results\":[";
  for (size_t i = 0; i < topk.size(); ++i) {
    if (i > 0) out += ',';
    out += "{\"set\":" + std::to_string(topk[i].set) +
           ",\"score\":" + FormatDouble(topk[i].score) +
           ",\"exact\":" + (topk[i].exact ? "true" : "false") + "}";
  }
  out += "]}";
  return out;
}

std::string JsonErrorResponse(const util::Status& status) {
  std::string out =
      "{\"status\":\"" + WireCodeName(ToWireCode(status.code())) + "\"";
  if (status.has_retry_after()) {
    out += ",\"retry_after_ms\":" + std::to_string(status.retry_after_ms());
  }
  out += ",\"message\":\"" + EscapeJson(status.message()) + "\"}";
  return out;
}

}  // namespace koios::net
