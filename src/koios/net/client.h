// BlockingClient — the small client library the issue's satellite calls
// for: a deadline-bounded blocking client over the binary protocol, with a
// retry-after-honoring backoff helper. Reused by examples/koios_client,
// the serverd smoke script and bench_serverd_chaos, so every harness
// exercises the same partial-write/EINTR-correct IO paths (socket.cc's
// WriteAll/ReadExact) instead of hand-rolling sockets three times.
#ifndef KOIOS_NET_CLIENT_H_
#define KOIOS_NET_CLIENT_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "koios/net/protocol.h"
#include "koios/net/socket.h"
#include "koios/util/status.h"

namespace koios::net {

struct ClientOptions {
  std::chrono::milliseconds connect_timeout{2'000};
  /// Per-operation IO budget (whole request + all its response frames).
  std::chrono::milliseconds io_timeout{30'000};
  size_t max_response_bytes = 16 << 20;
};

class BlockingClient {
 public:
  static util::StatusOr<BlockingClient> Connect(
      const std::string& host, uint16_t port, const ClientOptions& options = {});

  BlockingClient(BlockingClient&&) = default;
  BlockingClient& operator=(BlockingClient&&) = default;

  /// Round-trips a kPing (liveness of the binary path).
  util::Status Ping();

  /// One query; blocks for its single response frame. An error frame comes
  /// back as the engine's Status, retry hint reattached — so callers can
  /// branch on has_retry_after() exactly like in-process Submit callers.
  util::StatusOr<std::vector<core::ResultEntry>> Search(
      const std::vector<TokenId>& tokens, uint32_t k, double alpha,
      uint32_t deadline_ms);

  /// Search + bounded retry loop that HONORS the server's backpressure: on
  /// a response carrying retry_after_ms, sleeps that long and retries (up
  /// to max_retries). Statuses without a hint are returned immediately —
  /// only explicit shed/backoff answers are retried.
  util::StatusOr<std::vector<core::ResultEntry>> SearchWithBackoff(
      const std::vector<TokenId>& tokens, uint32_t k, double alpha,
      uint32_t deadline_ms, int max_retries);

  /// Batch: sends one kSearchMany and invokes `on_frame` for each of the
  /// batch's response frames AS THEY ARRIVE (completion order — this is
  /// how a client observes the server streaming results as the engine
  /// finalizes them). Returns after all queries.size() frames.
  util::Status SearchMany(
      const std::vector<std::vector<TokenId>>& queries, uint32_t k,
      double alpha, uint32_t deadline_ms,
      const std::function<void(const ResponseFrame&)>& on_frame);

  int fd() const { return sock_.fd(); }

 private:
  explicit BlockingClient(Socket sock, const ClientOptions& options)
      : sock_(std::move(sock)), options_(options) {}

  /// Reads exactly one response frame before `deadline`.
  util::Status ReadFrame(ResponseFrame* out,
                         std::chrono::steady_clock::time_point deadline);

  Socket sock_;
  ClientOptions options_;
  std::string readbuf_;  // bytes past the last parsed frame
};

/// One-shot HTTP GET against the daemon's text endpoints (/healthz,
/// /readyz, /metrics). Returns the response BODY; `status_code` (optional)
/// receives the HTTP status.
util::StatusOr<std::string> HttpGet(const std::string& host, uint16_t port,
                                    const std::string& path,
                                    int* status_code = nullptr,
                                    std::chrono::milliseconds timeout =
                                        std::chrono::milliseconds(5'000));

}  // namespace koios::net

#endif  // KOIOS_NET_CLIENT_H_
