#include "koios/net/server.h"

#include <poll.h>

#include <algorithm>
#include <cstring>
#include <future>
#include <list>
#include <vector>

#include "koios/net/protocol.h"
#include "koios/util/trace_recorder.h"

namespace koios::net {

namespace {

constexpr size_t kReadChunk = 16 * 1024;

std::string HttpResponse(int code, const std::string& reason,
                         const std::string& body, bool head_only,
                         const char* content_type =
                             "text/plain; charset=utf-8") {
  std::string out = "HTTP/1.0 " + std::to_string(code) + " " + reason +
                    "\r\nContent-Type: " + content_type +
                    "\r\nContent-Length: " +
                    std::to_string(body.size()) + "\r\nConnection: close\r\n\r\n";
  if (!head_only) out += body;
  return out;
}

}  // namespace

struct PendingQuery {
  uint32_t query_index = 0;
  std::shared_ptr<serve::CancelToken> cancel;
  std::future<serve::QueryEngine::Result> future;
  std::chrono::steady_clock::time_point submitted;
  // Sampled-query trace: the request root span opens at parse/submit and
  // is recorded when the response is emitted (net.request).
  uint64_t trace_id = 0;
  uint64_t root_span = 0;
  int64_t trace_t0_ns = 0;

  bool Ready() const {
    return future.wait_for(std::chrono::seconds(0)) ==
           std::future_status::ready;
  }
};

struct Connection {
  Socket sock;
  enum class Mode { kUnknown, kBinary, kJson, kHttp } mode = Mode::kUnknown;
  std::string inbuf;
  std::string outbuf;
  size_t out_off = 0;
  bool close_after_flush = false;
  bool dead = false;
  std::vector<PendingQuery> pending;
  std::chrono::steady_clock::time_point last_activity;
  // Slow-loris tracking: set while inbuf holds a PARTIAL request.
  bool has_incomplete = false;
  std::chrono::steady_clock::time_point incomplete_since;
  std::chrono::steady_clock::time_point last_write_progress;

  bool HasUnflushedOutput() const { return out_off < outbuf.size(); }
};

struct Server::Impl {
  Socket listener;
  std::list<Connection> connections;

  // Authoritative counters (atomics: the loop thread writes, stats() and
  // the metrics callback read from other threads).
  std::atomic<uint64_t> connections_accepted{0};
  std::atomic<uint64_t> connections_rejected_at_cap{0};
  std::atomic<uint64_t> connections_closed{0};
  std::atomic<uint64_t> accept_errors{0};
  std::atomic<uint64_t> read_errors{0};
  std::atomic<uint64_t> write_errors{0};
  std::atomic<uint64_t> requests{0};
  std::atomic<uint64_t> responses_ok{0};
  std::atomic<uint64_t> responses_error{0};
  std::atomic<uint64_t> oversized_rejected{0};
  std::atomic<uint64_t> protocol_errors{0};
  std::atomic<uint64_t> slow_loris_closes{0};
  std::atomic<uint64_t> stalled_reader_sheds{0};
  std::atomic<uint64_t> idle_closes{0};
  std::atomic<uint64_t> queries_cancelled_on_disconnect{0};
  std::atomic<uint64_t> unavailable_rejections{0};
  std::atomic<uint64_t> http_requests{0};

  // Request latency split by wire dialect (may stay null): wire-layer
  // overhead is attributable separately from engine time per protocol.
  util::Histogram* request_seconds_binary = nullptr;
  util::Histogram* request_seconds_json = nullptr;
  util::Histogram* request_seconds_http = nullptr;
  util::Gauge* open_connections = nullptr;      // may stay null

  // Server-lifecycle trace (accept bursts record under it); 0 when the
  // trace recorder was disabled at Start().
  uint64_t server_trace = 0;

  void Close(Connection& c) {
    if (c.dead) return;
    c.dead = true;
    // Disconnect propagation: nobody will read these answers, so stop the
    // workers computing them. The engine resolves them as kCancelled; the
    // dropped futures are safe (packaged_task state is refcounted).
    for (PendingQuery& p : c.pending) {
      // Resolved entries (JSON parse errors) have no engine-side work to
      // cancel and don't count as cancelled queries.
      if (p.cancel == nullptr) continue;
      p.cancel->Cancel();
      queries_cancelled_on_disconnect.fetch_add(1, std::memory_order_relaxed);
    }
    c.pending.clear();
    c.sock.Close();
    connections_closed.fetch_add(1, std::memory_order_relaxed);
  }
};

Server::Server(EngineSlot* slot, util::MetricRegistry* registry,
               const ServerOptions& options)
    : impl_(std::make_unique<Impl>()),
      slot_(slot),
      registry_(registry),
      options_(options) {}

Server::~Server() { Stop(); }

bool Server::ready() const {
  return started_ && !draining_.load(std::memory_order_acquire) &&
         slot_->Get() != nullptr;
}

ServerStats Server::stats() const {
  const Impl& im = *impl_;
  ServerStats s;
  s.connections_accepted = im.connections_accepted.load();
  s.connections_rejected_at_cap = im.connections_rejected_at_cap.load();
  s.connections_closed = im.connections_closed.load();
  s.accept_errors = im.accept_errors.load();
  s.read_errors = im.read_errors.load();
  s.write_errors = im.write_errors.load();
  s.requests = im.requests.load();
  s.responses_ok = im.responses_ok.load();
  s.responses_error = im.responses_error.load();
  s.oversized_rejected = im.oversized_rejected.load();
  s.protocol_errors = im.protocol_errors.load();
  s.slow_loris_closes = im.slow_loris_closes.load();
  s.stalled_reader_sheds = im.stalled_reader_sheds.load();
  s.idle_closes = im.idle_closes.load();
  s.queries_cancelled_on_disconnect = im.queries_cancelled_on_disconnect.load();
  s.unavailable_rejections = im.unavailable_rejections.load();
  s.http_requests = im.http_requests.load();
  return s;
}

util::Status Server::Start() {
  if (started_) return util::Status::FailedPrecondition("already started");
  util::StatusOr<Socket> listener =
      ListenTcp(options_.bind_address, options_.port, options_.listen_backlog,
                &port_);
  if (!listener.ok()) return listener.status();
  impl_->listener = std::move(listener).value();

  if (registry_ != nullptr) {
    const char* request_help =
        "Wall time from request dispatch to response encode, by wire dialect";
    impl_->request_seconds_binary = registry_->RegisterHistogram(
        util::LabeledMetricName("koios_server_request_seconds", "dialect",
                                "binary"),
        request_help, util::ExponentialLatencyBuckets());
    impl_->request_seconds_json = registry_->RegisterHistogram(
        util::LabeledMetricName("koios_server_request_seconds", "dialect",
                                "json"),
        request_help, util::ExponentialLatencyBuckets());
    impl_->request_seconds_http = registry_->RegisterHistogram(
        util::LabeledMetricName("koios_server_request_seconds", "dialect",
                                "http"),
        request_help, util::ExponentialLatencyBuckets());
    impl_->open_connections = registry_->RegisterGauge(
        "koios_server_open_connections", "Currently open client connections");
    util::Gauge* ready_gauge = registry_->RegisterGauge(
        "koios_server_ready", "1 when serving traffic (snapshot live, not "
        "draining), else 0 — the /readyz signal");
    util::Gauge* draining_gauge = registry_->RegisterGauge(
        "koios_server_draining", "1 while a graceful drain is in progress");
    struct Mirror {
      util::Counter* counter;
      std::atomic<uint64_t>* source;
    };
    Impl* im = impl_.get();
    auto mirrors = std::make_shared<std::vector<Mirror>>();
    auto add = [&](const char* name, const char* help,
                   std::atomic<uint64_t>* source) {
      mirrors->push_back({registry_->RegisterCounter(name, help), source});
    };
    add("koios_server_connections_accepted_total", "Accepted connections",
        &im->connections_accepted);
    add("koios_server_connections_rejected_cap_total",
        "Connections closed at the hard connection cap",
        &im->connections_rejected_at_cap);
    add("koios_server_connections_closed_total", "Closed connections",
        &im->connections_closed);
    add("koios_server_accept_errors_total",
        "accept() failures (incl. injected net.accept faults)",
        &im->accept_errors);
    add("koios_server_read_errors_total",
        "Connections dropped on a read error (incl. injected net.read)",
        &im->read_errors);
    add("koios_server_write_errors_total",
        "Connections dropped on a write error (incl. injected net.write)",
        &im->write_errors);
    add("koios_server_requests_total", "Requests dispatched", &im->requests);
    add("koios_server_responses_ok_total", "Successful query responses",
        &im->responses_ok);
    add("koios_server_responses_error_total", "Error query responses",
        &im->responses_error);
    add("koios_server_oversized_requests_total",
        "Requests rejected from the frame header for exceeding the size cap",
        &im->oversized_rejected);
    add("koios_server_protocol_errors_total",
        "Connections closed for malformed requests", &im->protocol_errors);
    add("koios_server_slow_loris_closes_total",
        "Connections closed holding an incomplete request past the read "
        "deadline",
        &im->slow_loris_closes);
    add("koios_server_stalled_reader_sheds_total",
        "Connections shed for not reading their responses (output bound or "
        "write deadline)",
        &im->stalled_reader_sheds);
    add("koios_server_idle_closes_total", "Idle-timeout closes",
        &im->idle_closes);
    add("koios_server_queries_cancelled_on_disconnect_total",
        "In-flight queries cancelled because their connection closed",
        &im->queries_cancelled_on_disconnect);
    add("koios_server_unavailable_rejections_total",
        "Queries rejected kUnavailable (no snapshot yet, or draining)",
        &im->unavailable_rejections);
    add("koios_server_http_requests_total",
        "HTTP requests (/healthz, /readyz, /metrics, /debug/tracez)",
        &im->http_requests);
    registry_->AddCollectionCallback([this, mirrors, ready_gauge,
                                      draining_gauge] {
      for (const Mirror& m : *mirrors) {
        m.counter->Set(m.source->load(std::memory_order_relaxed));
      }
      ready_gauge->Set(ready() ? 1.0 : 0.0);
      draining_gauge->Set(draining() ? 1.0 : 0.0);
    });
  }

  // One always-sampled trace spans the server's lifetime: accept bursts
  // record under it so tracez shows when the loop was busy admitting
  // connections versus serving them.
  if (util::TraceRecorder::Enabled()) {
    impl_->server_trace = util::TraceRecorder::Instance().StartTraceForced();
  }

  started_ = true;
  stop_.store(false, std::memory_order_release);
  loop_thread_ = std::thread([this] { Loop(); });
  return util::Status::OK();
}

void Server::Drain() {
  if (!started_) return;
  draining_.store(true, std::memory_order_release);
  if (loop_thread_.joinable()) loop_thread_.join();
}

void Server::Stop() {
  if (!started_) return;
  stop_.store(true, std::memory_order_release);
  if (loop_thread_.joinable()) loop_thread_.join();
}

// ----------------------------------------------------------- event loop --

namespace {

/// Everything the per-connection handlers need from the server, bundled so
/// they can live as free functions below instead of a god-object method.
struct LoopContext {
  Server::Impl* im;
  EngineSlot* slot;
  util::MetricRegistry* registry;
  const ServerOptions* opts;
  const Server* server;
  bool draining = false;
};

/// Appends `payload` to the connection's output, enforcing the bounded
/// output buffer: a peer that is not reading gets shed, never buffered
/// into an OOM.
void QueueOutput(LoopContext& ctx, Connection& c, const std::string& payload) {
  if (c.dead) return;
  if (!c.HasUnflushedOutput()) {
    c.last_write_progress = std::chrono::steady_clock::now();
  }
  c.outbuf += payload;
  if (c.outbuf.size() - c.out_off > ctx.opts->max_output_buffer_bytes) {
    ctx.im->stalled_reader_sheds.fetch_add(1, std::memory_order_relaxed);
    ctx.im->Close(c);
  }
}

void EmitResult(LoopContext& ctx, Connection& c, PendingQuery& p) {
  const serve::QueryEngine::Result result = p.future.get();
  util::Histogram* request_seconds = c.mode == Connection::Mode::kJson
                                         ? ctx.im->request_seconds_json
                                         : ctx.im->request_seconds_binary;
  if (request_seconds != nullptr) {
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      p.submitted)
            .count();
    request_seconds->Observe(seconds);
  }
  if (p.trace_id != 0) {
    // Close the request root: parse/submit time through response encode.
    auto& rec = util::TraceRecorder::Instance();
    rec.RecordManualSpan("net.request", p.trace_id, p.root_span,
                         /*parent_id=*/0, p.trace_t0_ns, rec.NowNs(),
                         "query_index", p.query_index);
  }
  std::string payload;
  if (c.mode == Connection::Mode::kJson) {
    payload = result.ok() ? JsonOkResponse(result.value().topk)
                          : JsonErrorResponse(result.status());
    payload += '\n';
  } else {
    if (result.ok()) {
      AppendOkResponse(p.query_index, result.value().topk, &payload);
    } else {
      AppendErrorResponse(p.query_index, result.status(), &payload);
    }
  }
  if (result.ok()) {
    ctx.im->responses_ok.fetch_add(1, std::memory_order_relaxed);
  } else {
    ctx.im->responses_error.fetch_add(1, std::memory_order_relaxed);
  }
  QueueOutput(ctx, c, payload);
}

util::Status UnavailableStatus(LoopContext& ctx) {
  const bool draining = ctx.draining;
  return util::Status::Unavailable(draining
                                       ? "server is draining; retry against "
                                         "another replica"
                                       : "no snapshot live yet")
      .WithRetryAfterMs(ctx.opts->unavailable_retry_after_ms);
}

/// Submits one query (shared by binary and JSON dispatch). An unready or
/// draining server answers kUnavailable instead of touching the engine;
/// engine-side rejections (queue full, fail-fast) resolve through the
/// future like any other result — the retry hint crosses the wire intact.
void SubmitQuery(LoopContext& ctx, Connection& c, uint32_t query_index,
                 std::vector<TokenId> tokens, uint32_t k, double alpha,
                 uint32_t deadline_ms, int64_t parse_t0_ns = 0,
                 int64_t parse_t1_ns = 0) {
  std::shared_ptr<serve::QueryEngine> engine = ctx.slot->Get();
  if (engine == nullptr || ctx.draining) {
    ctx.im->unavailable_rejections.fetch_add(1, std::memory_order_relaxed);
    if (c.mode == Connection::Mode::kJson) {
      // JSON responses are correlated strictly by line order, so the
      // rejection must wait its turn behind earlier pipelined queries:
      // enqueue it as an already-resolved entry (same head-of-line
      // mechanism as the parse-error path). EmitResult counts the error.
      std::promise<serve::QueryEngine::Result> resolved;
      resolved.set_value(UnavailableStatus(ctx));
      PendingQuery p;
      p.future = resolved.get_future();
      p.submitted = std::chrono::steady_clock::now();
      c.pending.push_back(std::move(p));
    } else {
      std::string payload;
      AppendErrorResponse(query_index, UnavailableStatus(ctx), &payload);
      ctx.im->responses_error.fetch_add(1, std::memory_order_relaxed);
      QueueOutput(ctx, c, payload);
    }
    return;
  }
  core::SearchParams params;
  params.k = k;
  params.alpha = alpha;
  std::chrono::milliseconds deadline(deadline_ms);
  if (deadline.count() == 0) deadline = ctx.opts->default_query_deadline;

  // The sampling decision is made here at the wire, so a sampled trace
  // covers the whole request: wire parse, engine queue wait, and search.
  auto& rec = util::TraceRecorder::Instance();
  const uint64_t trace = rec.StartTrace();
  uint64_t root = 0;
  int64_t request_t0 = 0;
  if (trace != 0) {
    root = rec.NewSpanId();
    request_t0 = parse_t0_ns != 0 ? parse_t0_ns : rec.NowNs();
    if (parse_t0_ns != 0) {
      rec.RecordManualSpan("net.parse", trace, /*span_id=*/0, root,
                           parse_t0_ns, parse_t1_ns);
    }
  }
  // The engine's Enqueue captures the ambient trace; its queue_wait and
  // search spans nest under this request's root span.
  util::TraceAdopt adopt(trace, root);
  serve::QueryEngine::Submission submission =
      engine->SubmitCancellable(std::move(tokens), params, deadline);
  PendingQuery p;
  p.query_index = query_index;
  p.cancel = std::move(submission.cancel);
  p.future = std::move(submission.future);
  p.submitted = std::chrono::steady_clock::now();
  p.trace_id = trace;
  p.root_span = root;
  p.trace_t0_ns = request_t0;
  c.pending.push_back(std::move(p));
}

void DispatchBinary(LoopContext& ctx, Connection& c, RequestFrame&& req,
                    int64_t parse_t0_ns, int64_t parse_t1_ns) {
  ctx.im->requests.fetch_add(1, std::memory_order_relaxed);
  if (req.op == Op::kPing) {
    std::string payload;
    AppendPingResponse(&payload);
    QueueOutput(ctx, c, payload);
    return;
  }
  for (uint32_t i = 0; i < req.queries.size() && !c.dead; ++i) {
    SubmitQuery(ctx, c, i, std::move(req.queries[i]), req.k, req.alpha,
                req.deadline_ms, parse_t0_ns, parse_t1_ns);
  }
}

void DispatchJsonLine(LoopContext& ctx, Connection& c,
                      const std::string& line) {
  ctx.im->requests.fetch_add(1, std::memory_order_relaxed);
  const bool tracing = util::TraceRecorder::Enabled();
  const int64_t parse_t0 =
      tracing ? util::TraceRecorder::Instance().NowNs() : 0;
  JsonRequest req;
  if (util::Status s = ParseJsonRequestLine(line, &req); !s.ok()) {
    ctx.im->protocol_errors.fetch_add(1, std::memory_order_relaxed);
    // JSON responses carry no query index — the client correlates them to
    // requests strictly by order. The parse error therefore takes its
    // place in the head-of-line queue as an already-resolved entry; an
    // immediate write would jump ahead of earlier queries still in
    // flight and misattribute every response after it.
    std::promise<serve::QueryEngine::Result> resolved;
    resolved.set_value(std::move(s));
    PendingQuery p;
    p.future = resolved.get_future();
    p.submitted = std::chrono::steady_clock::now();
    c.pending.push_back(std::move(p));
    return;
  }
  const int64_t parse_t1 =
      tracing ? util::TraceRecorder::Instance().NowNs() : 0;
  SubmitQuery(ctx, c, 0, std::move(req.tokens), req.k, req.alpha,
              req.deadline_ms, parse_t0, parse_t1);
}

void DispatchHttp(LoopContext& ctx, Connection& c, const std::string& head) {
  ctx.im->http_requests.fetch_add(1, std::memory_order_relaxed);
  const auto handle_t0 = std::chrono::steady_clock::now();
  const size_t line_end = head.find("\r\n");
  const std::string request_line =
      head.substr(0, line_end == std::string::npos ? head.find('\n')
                                                   : line_end);
  const size_t sp1 = request_line.find(' ');
  const size_t sp2 =
      sp1 == std::string::npos ? std::string::npos
                               : request_line.find(' ', sp1 + 1);
  const std::string method =
      sp1 == std::string::npos ? request_line : request_line.substr(0, sp1);
  const std::string path = sp2 == std::string::npos
                               ? std::string()
                               : request_line.substr(sp1 + 1, sp2 - sp1 - 1);
  const bool head_only = method == "HEAD";

  std::string response;
  if (method != "GET" && method != "HEAD") {
    response = HttpResponse(405, "Method Not Allowed", "GET or HEAD only\n",
                            false);
  } else if (path == "/healthz") {
    // Liveness: the process is up and its loop is turning — draining or
    // not-yet-ready both still answer 200 here.
    response = HttpResponse(200, "OK", "ok\n", head_only);
  } else if (path == "/readyz") {
    if (ctx.server->ready()) {
      response = HttpResponse(200, "OK", "ready\n", head_only);
    } else {
      response = HttpResponse(
          503, "Service Unavailable",
          ctx.draining ? "draining\n" : "no snapshot loaded\n", head_only);
    }
  } else if (path == "/metrics") {
    if (ctx.registry != nullptr) {
      response =
          HttpResponse(200, "OK", ctx.registry->RenderText(), head_only);
    } else {
      response = HttpResponse(404, "Not Found", "no metric registry\n",
                              head_only);
    }
  } else if (path == "/debug/tracez") {
    // Chrome trace-event JSON of the recently sampled queries; load the
    // body in Perfetto (ui.perfetto.dev) or chrome://tracing. Valid (with
    // an empty traceEvents array) even when tracing is disabled.
    response = HttpResponse(
        200, "OK", util::TraceRecorder::Instance().RenderChromeTraceJson(),
        head_only, "application/json");
  } else {
    response = HttpResponse(
        404, "Not Found",
        "try /healthz, /readyz, /metrics or /debug/tracez\n", head_only);
  }
  if (ctx.im->request_seconds_http != nullptr) {
    ctx.im->request_seconds_http->Observe(
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      handle_t0)
            .count());
  }
  QueueOutput(ctx, c, response);
  c.close_after_flush = true;
}

/// Drains as many complete requests out of c.inbuf as are buffered.
/// Leaves a partial request in place (tracked for the slow-loris sweep).
void ProcessInput(LoopContext& ctx, Connection& c) {
  while (!c.dead && !c.close_after_flush && !c.inbuf.empty() &&
         c.pending.size() < ctx.opts->max_pipelined_requests) {
    if (c.mode == Connection::Mode::kUnknown) {
      const uint8_t first = static_cast<uint8_t>(c.inbuf[0]);
      if (first == kFrameMagic) {
        c.mode = Connection::Mode::kBinary;
      } else if (first == '{') {
        c.mode = Connection::Mode::kJson;
      } else if (first == 'G' || first == 'H') {
        c.mode = Connection::Mode::kHttp;
      } else {
        ctx.im->protocol_errors.fetch_add(1, std::memory_order_relaxed);
        ctx.im->Close(c);
        return;
      }
    }
    switch (c.mode) {
      case Connection::Mode::kBinary: {
        const bool tracing = util::TraceRecorder::Enabled();
        const int64_t parse_t0 =
            tracing ? util::TraceRecorder::Instance().NowNs() : 0;
        size_t consumed = 0;
        RequestFrame req;
        std::string error;
        const ParseStatus ps = ParseRequestFrame(
            c.inbuf.data(), c.inbuf.size(), ctx.opts->max_request_bytes,
            &consumed, &req, &error);
        const int64_t parse_t1 =
            tracing ? util::TraceRecorder::Instance().NowNs() : 0;
        if (ps == ParseStatus::kNeedMore) return;
        if (ps == ParseStatus::kError) {
          // Oversize is recognizable from the header alone; everything in
          // this branch answers once, flushes, then closes.
          if (c.inbuf.size() >= kFrameHeaderBytes) {
            uint32_t body_len = 0;
            std::memcpy(&body_len, c.inbuf.data() + 2, sizeof(body_len));
            if (body_len > ctx.opts->max_request_bytes) {
              ctx.im->oversized_rejected.fetch_add(1,
                                                   std::memory_order_relaxed);
            }
          }
          ctx.im->protocol_errors.fetch_add(1, std::memory_order_relaxed);
          ctx.im->responses_error.fetch_add(1, std::memory_order_relaxed);
          std::string payload;
          AppendErrorResponse(0, util::Status::InvalidArgument(error),
                              &payload);
          QueueOutput(ctx, c, payload);
          c.close_after_flush = true;
          c.inbuf.clear();
          return;
        }
        c.inbuf.erase(0, consumed);
        DispatchBinary(ctx, c, std::move(req), parse_t0, parse_t1);
        break;
      }
      case Connection::Mode::kJson: {
        const size_t nl = c.inbuf.find('\n');
        if (nl == std::string::npos) {
          if (c.inbuf.size() > ctx.opts->max_request_bytes) {
            ctx.im->oversized_rejected.fetch_add(1, std::memory_order_relaxed);
            ctx.im->responses_error.fetch_add(1, std::memory_order_relaxed);
            QueueOutput(ctx, c,
                        JsonErrorResponse(util::Status::InvalidArgument(
                            "request line exceeds " +
                            std::to_string(ctx.opts->max_request_bytes) +
                            " bytes")) +
                            "\n");
            c.close_after_flush = true;
            c.inbuf.clear();
          }
          return;
        }
        std::string line = c.inbuf.substr(0, nl);
        c.inbuf.erase(0, nl + 1);
        if (!line.empty() && line.back() == '\r') line.pop_back();
        if (line.empty()) break;  // tolerate blank keep-alive lines
        DispatchJsonLine(ctx, c, line);
        break;
      }
      case Connection::Mode::kHttp: {
        size_t end = c.inbuf.find("\r\n\r\n");
        size_t skip = 4;
        if (end == std::string::npos) {
          end = c.inbuf.find("\n\n");
          skip = 2;
        }
        if (end == std::string::npos) {
          if (c.inbuf.size() > 8192) {
            ctx.im->protocol_errors.fetch_add(1, std::memory_order_relaxed);
            ctx.im->Close(c);
          }
          return;
        }
        const std::string head = c.inbuf.substr(0, end);
        c.inbuf.erase(0, end + skip);
        DispatchHttp(ctx, c, head);
        break;
      }
      case Connection::Mode::kUnknown:
        return;  // unreachable
    }
  }
}

void PollPendingQueries(LoopContext& ctx, Connection& c) {
  if (c.dead || c.pending.empty()) return;
  if (c.mode == Connection::Mode::kJson) {
    // JSON has no query index on the wire: responses go back in SUBMISSION
    // order, head-of-line.
    while (!c.dead && !c.pending.empty() && c.pending.front().Ready()) {
      EmitResult(ctx, c, c.pending.front());
      // EmitResult can shed the connection (bounded output buffer), and
      // Close clears c.pending — erasing after that is UB.
      if (c.dead) break;
      c.pending.erase(c.pending.begin());
    }
  } else {
    // Binary responses carry their index: stream each result the moment
    // the engine finalizes it, in COMPLETION order.
    for (auto it = c.pending.begin(); !c.dead && it != c.pending.end();) {
      if (it->Ready()) {
        EmitResult(ctx, c, *it);
        // A shed inside EmitResult clears c.pending and invalidates `it`.
        if (c.dead) break;
        it = c.pending.erase(it);
      } else {
        ++it;
      }
    }
  }
}

void FlushOutput(LoopContext& ctx, Connection& c) {
  while (!c.dead && c.HasUnflushedOutput()) {
    const IoResult r = WriteSome(c.sock.fd(), c.outbuf.data() + c.out_off,
                                 c.outbuf.size() - c.out_off);
    if (r.event == IoEvent::kProgress) {
      c.out_off += r.bytes;
      c.last_write_progress = std::chrono::steady_clock::now();
      continue;
    }
    if (r.event == IoEvent::kWouldBlock) return;
    ctx.im->write_errors.fetch_add(1, std::memory_order_relaxed);
    ctx.im->Close(c);
    return;
  }
  if (c.dead) return;
  c.outbuf.clear();
  c.out_off = 0;
  if (c.close_after_flush) ctx.im->Close(c);
}

}  // namespace

void Server::Loop() {
  Impl& im = *impl_;
  LoopContext ctx{&im, slot_, registry_, &options_, this, false};
  std::chrono::steady_clock::time_point drain_started{};
  bool drain_entered = false;

  std::vector<struct pollfd> fds;
  std::vector<Connection*> fd_conns;

  while (!stop_.load(std::memory_order_acquire)) {
    ctx.draining = draining_.load(std::memory_order_acquire);
    if (ctx.draining && !drain_entered) {
      drain_entered = true;
      drain_started = std::chrono::steady_clock::now();
      im.listener.Close();  // stop accepting; pending SYNs get RST
    }

    // ---- build the poll set -------------------------------------------
    fds.clear();
    fd_conns.clear();
    bool have_pending = false;
    if (im.listener.valid()) {
      fds.push_back({im.listener.fd(), POLLIN, 0});
      fd_conns.push_back(nullptr);
    }
    for (Connection& c : im.connections) {
      short events = 0;
      // Backpressure: stop reading from a connection that already has a
      // full pipeline or an unconsumed oversized inbuf — TCP pushes back
      // on the sender instead of us buffering without bound.
      const bool paused =
          c.pending.size() >= options_.max_pipelined_requests ||
          c.inbuf.size() > options_.max_request_bytes + kReadChunk ||
          c.close_after_flush;
      if (!paused) events |= POLLIN;
      if (c.HasUnflushedOutput()) events |= POLLOUT;
      fds.push_back({c.sock.fd(), events, 0});
      fd_conns.push_back(&c);
      if (!c.pending.empty()) have_pending = true;
    }
    // Short tick while queries are in flight (their futures resolve
    // between polls); relaxed tick otherwise.
    const int timeout_ms = have_pending ? 2 : 50;
    ::poll(fds.data(), fds.size(), timeout_ms);
    const auto now = std::chrono::steady_clock::now();

    // ---- accept --------------------------------------------------------
    if (im.listener.valid() && !fds.empty() &&
        fd_conns[0] == nullptr && (fds[0].revents & POLLIN) != 0) {
      const int64_t accept_t0 =
          im.server_trace != 0 ? util::TraceRecorder::Instance().NowNs() : 0;
      size_t accepted_count = 0;
      for (;;) {
        AcceptResult accepted = AcceptNonBlocking(im.listener.fd());
        if (accepted.event == IoEvent::kWouldBlock) break;
        if (accepted.event != IoEvent::kProgress) {
          im.accept_errors.fetch_add(1, std::memory_order_relaxed);
          // A persistent failure (EMFILE/ENFILE) does not dequeue the
          // pending connection; looping here would spin the event-loop
          // thread. Yield to the next poll round instead.
          break;
        }
        if (im.connections.size() >= options_.max_connections) {
          // Hard cap: close immediately (never queued, never half-served).
          im.connections_rejected_at_cap.fetch_add(1,
                                                   std::memory_order_relaxed);
          continue;  // Socket destructor closes it
        }
        im.connections_accepted.fetch_add(1, std::memory_order_relaxed);
        ++accepted_count;
        Connection c;
        c.sock = std::move(accepted.socket);
        c.last_activity = now;
        c.last_write_progress = now;
        im.connections.push_back(std::move(c));
      }
      if (im.server_trace != 0 && accepted_count > 0) {
        auto& rec = util::TraceRecorder::Instance();
        rec.RecordManualSpan("net.accept", im.server_trace, /*span_id=*/0,
                             /*parent_id=*/0, accept_t0, rec.NowNs(),
                             "connections", accepted_count);
      }
    }

    // ---- read / dispatch / respond / flush ------------------------------
    for (size_t i = 0; i < fds.size(); ++i) {
      Connection* cp = fd_conns[i];
      if (cp == nullptr || cp->dead) continue;
      Connection& c = *cp;
      if ((fds[i].revents & (POLLERR | POLLNVAL)) != 0) {
        im.read_errors.fetch_add(1, std::memory_order_relaxed);
        im.Close(c);
        continue;
      }
      if ((fds[i].revents & POLLIN) != 0 ||
          ((fds[i].revents & POLLHUP) != 0 && (fds[i].events & POLLIN) != 0)) {
        char buf[kReadChunk];
        for (;;) {
          const IoResult r = ReadSome(c.sock.fd(), buf, sizeof(buf));
          if (r.event == IoEvent::kProgress) {
            c.inbuf.append(buf, r.bytes);
            c.last_activity = now;
            if (c.inbuf.size() > options_.max_request_bytes + kReadChunk) {
              break;  // paused next round; let the parser reject it
            }
            continue;
          }
          if (r.event == IoEvent::kWouldBlock) break;
          if (r.event == IoEvent::kPeerClosed) {
            im.Close(c);  // cancels in-flight queries
          } else {
            im.read_errors.fetch_add(1, std::memory_order_relaxed);
            im.Close(c);
          }
          break;
        }
      } else if ((fds[i].revents & POLLHUP) != 0 && !c.HasUnflushedOutput()) {
        im.Close(c);
      }
    }

    for (Connection& c : im.connections) {
      if (c.dead) continue;
      ProcessInput(ctx, c);
      // Slow-loris tracking: a nonempty inbuf after processing is a
      // partial request (or unread pipelined overflow).
      if (!c.inbuf.empty() && !c.close_after_flush &&
          c.pending.size() < options_.max_pipelined_requests) {
        if (!c.has_incomplete) {
          c.has_incomplete = true;
          c.incomplete_since = now;
        }
      } else {
        c.has_incomplete = false;
      }
      PollPendingQueries(ctx, c);
      if (!c.dead && c.HasUnflushedOutput()) FlushOutput(ctx, c);
      if (!c.dead && c.outbuf.empty() && c.close_after_flush) im.Close(c);
    }

    // ---- deadline sweep --------------------------------------------------
    for (Connection& c : im.connections) {
      if (c.dead) continue;
      if (c.has_incomplete && now - c.incomplete_since >
                                  options_.read_deadline) {
        im.slow_loris_closes.fetch_add(1, std::memory_order_relaxed);
        im.Close(c);
        continue;
      }
      if (c.HasUnflushedOutput() &&
          now - c.last_write_progress > options_.write_deadline) {
        im.stalled_reader_sheds.fetch_add(1, std::memory_order_relaxed);
        im.Close(c);
        continue;
      }
      const bool quiescent = c.pending.empty() && !c.HasUnflushedOutput() &&
                             c.inbuf.empty();
      if (quiescent && ctx.draining) {
        // Nothing owed to this peer; a draining server closes it now.
        im.Close(c);
        continue;
      }
      if (quiescent && options_.idle_timeout.count() > 0 &&
          now - c.last_activity > options_.idle_timeout) {
        im.idle_closes.fetch_add(1, std::memory_order_relaxed);
        im.Close(c);
      }
    }

    im.connections.remove_if([](const Connection& c) { return c.dead; });
    if (im.open_connections != nullptr) {
      im.open_connections->Set(static_cast<double>(im.connections.size()));
    }

    if (ctx.draining) {
      bool busy = false;
      for (const Connection& c : im.connections) {
        if (!c.pending.empty() || c.HasUnflushedOutput()) {
          busy = true;
          break;
        }
      }
      if (!busy || now - drain_started >= options_.drain_deadline) break;
    }
  }

  // Teardown (hard stop, or drain finished / expired): cancel whatever is
  // still in flight and close everything.
  for (Connection& c : im.connections) im.Close(c);
  im.connections.clear();
  im.listener.Close();
  if (im.open_connections != nullptr) im.open_connections->Set(0.0);
}

}  // namespace koios::net
