#include "koios/net/socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "koios/util/fault_injector.h"

namespace koios::net {

namespace {

util::Status ErrnoStatus(const std::string& what, int err) {
  return util::Status::Internal(what + ": " + std::strerror(err));
}

// Remaining budget until `deadline` as a poll() timeout; <= 0 means expired.
int PollBudgetMs(std::chrono::steady_clock::time_point deadline) {
  const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - std::chrono::steady_clock::now());
  if (remaining.count() <= 0) return 0;
  // Cap to keep the wait interruptible and avoid int overflow on far-future
  // deadlines.
  return static_cast<int>(std::min<int64_t>(remaining.count(), 60'000));
}

// poll() for one event with EINTR retry, honoring the absolute deadline.
// Returns +1 ready, 0 deadline expired, -1 errno failure.
int PollOne(int fd, short events, std::chrono::steady_clock::time_point deadline) {
  for (;;) {
    const int budget = PollBudgetMs(deadline);
    if (budget <= 0) return 0;
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = events;
    pfd.revents = 0;
    const int rc = ::poll(&pfd, 1, budget);
    if (rc > 0) return 1;
    if (rc == 0) continue;  // timed out this slice; recheck the deadline
    if (errno == EINTR) continue;
    return -1;
  }
}

}  // namespace

void Socket::Close() {
  if (fd_ >= 0) {
    // EINTR on close is not retried: POSIX leaves the fd state unspecified
    // and retrying can close a recycled descriptor.
    ::close(fd_);
    fd_ = -1;
  }
}

util::Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return ErrnoStatus("fcntl(F_GETFL)", errno);
  if (::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return ErrnoStatus("fcntl(F_SETFL, O_NONBLOCK)", errno);
  }
  return util::Status::OK();
}

util::StatusOr<Socket> ListenTcp(const std::string& address, uint16_t port,
                                 int backlog, uint16_t* bound_port) {
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) return ErrnoStatus("socket", errno);

  const int one = 1;
  ::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string bind_to = address.empty() ? "127.0.0.1" : address;
  if (::inet_pton(AF_INET, bind_to.c_str(), &addr.sin_addr) != 1) {
    return util::Status::InvalidArgument("not an IPv4 address: " + bind_to);
  }
  if (::bind(sock.fd(), reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) < 0) {
    return ErrnoStatus("bind " + bind_to + ":" + std::to_string(port), errno);
  }
  if (::listen(sock.fd(), backlog) < 0) return ErrnoStatus("listen", errno);

  if (bound_port != nullptr) {
    struct sockaddr_in actual;
    socklen_t len = sizeof(actual);
    if (::getsockname(sock.fd(), reinterpret_cast<struct sockaddr*>(&actual),
                      &len) < 0) {
      return ErrnoStatus("getsockname", errno);
    }
    *bound_port = ntohs(actual.sin_port);
  }
  if (util::Status s = SetNonBlocking(sock.fd()); !s.ok()) return s;
  return sock;
}

util::StatusOr<Socket> ConnectTcp(const std::string& address, uint16_t port,
                                  std::chrono::milliseconds timeout) {
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) return ErrnoStatus("socket", errno);

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string host = address.empty() ? "127.0.0.1" : address;
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return util::Status::InvalidArgument("not an IPv4 address: " + host);
  }

  // Nonblocking connect so we can bound it, then flip back to blocking for
  // the deadline-driven client helpers.
  if (util::Status s = SetNonBlocking(sock.fd()); !s.ok()) return s;
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  int rc;
  do {
    rc = ::connect(sock.fd(), reinterpret_cast<struct sockaddr*>(&addr),
                   sizeof(addr));
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) {
    if (errno != EINPROGRESS) return ErrnoStatus("connect", errno);
    const int ready = PollOne(sock.fd(), POLLOUT, deadline);
    if (ready == 0) {
      return util::Status::DeadlineExceeded(
          "connect to " + host + ":" + std::to_string(port) + " timed out");
    }
    if (ready < 0) return ErrnoStatus("poll(connect)", errno);
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(sock.fd(), SOL_SOCKET, SO_ERROR, &err, &len) < 0) {
      return ErrnoStatus("getsockopt(SO_ERROR)", errno);
    }
    if (err != 0) return ErrnoStatus("connect", err);
  }

  const int flags = ::fcntl(sock.fd(), F_GETFL, 0);
  if (flags >= 0) ::fcntl(sock.fd(), F_SETFL, flags & ~O_NONBLOCK);
  const int one = 1;
  ::setsockopt(sock.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return sock;
}

IoResult ReadSome(int fd, void* buf, size_t len) {
  if (KOIOS_FAULTPOINT("net.read")) {
    return IoResult{IoEvent::kError, 0, ECONNRESET};
  }
  for (;;) {
    const ssize_t n = ::recv(fd, buf, len, 0);
    if (n > 0) return IoResult{IoEvent::kProgress, static_cast<size_t>(n), 0};
    if (n == 0) return IoResult{IoEvent::kPeerClosed, 0, 0};
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return IoResult{IoEvent::kWouldBlock, 0, 0};
    }
    return IoResult{IoEvent::kError, 0, errno};
  }
}

IoResult WriteSome(int fd, const void* data, size_t len) {
  if (KOIOS_FAULTPOINT("net.write")) {
    return IoResult{IoEvent::kError, 0, EPIPE};
  }
  for (;;) {
    const ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
    if (n >= 0) {
      // n == 0 with len > 0 shouldn't happen for TCP but would spin the
      // caller; surface it as would-block so the poll loop re-arms.
      if (n == 0 && len > 0) return IoResult{IoEvent::kWouldBlock, 0, 0};
      return IoResult{IoEvent::kProgress, static_cast<size_t>(n), 0};
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return IoResult{IoEvent::kWouldBlock, 0, 0};
    }
    return IoResult{IoEvent::kError, 0, errno};
  }
}

AcceptResult AcceptNonBlocking(int listener_fd) {
  AcceptResult result;
  for (;;) {
    const int fd = ::accept(listener_fd, nullptr, nullptr);
    if (fd >= 0) {
      Socket sock(fd);
      // Injected accept failure: the connection is real but we drop it, the
      // exact shape of a transient accept-path failure under pressure.
      if (KOIOS_FAULTPOINT("net.accept")) {
        result.event = IoEvent::kError;
        result.error = ECONNABORTED;
        return result;
      }
      if (util::Status s = SetNonBlocking(sock.fd()); !s.ok()) {
        result.event = IoEvent::kError;
        result.error = EBADF;
        return result;
      }
      const int one = 1;
      ::setsockopt(sock.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      result.event = IoEvent::kProgress;
      result.socket = std::move(sock);
      return result;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      result.event = IoEvent::kWouldBlock;
      return result;
    }
    // ECONNABORTED & friends: the connection died between SYN and accept.
    // Not fatal for the listener.
    result.event = IoEvent::kError;
    result.error = errno;
    return result;
  }
}

util::Status WriteAll(int fd, const void* data, size_t len,
                      std::chrono::steady_clock::time_point deadline) {
  const char* p = static_cast<const char*>(data);
  size_t remaining = len;
  while (remaining > 0) {
    ssize_t n;
    do {
      n = ::send(fd, p, remaining, MSG_NOSIGNAL | MSG_DONTWAIT);
    } while (n < 0 && errno == EINTR);
    if (n > 0) {
      p += n;
      remaining -= static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      const int ready = PollOne(fd, POLLOUT, deadline);
      if (ready == 0) {
        return util::Status::DeadlineExceeded("write deadline exceeded");
      }
      if (ready < 0) return ErrnoStatus("poll(write)", errno);
      continue;
    }
    return ErrnoStatus("send", n < 0 ? errno : EPIPE);
  }
  return util::Status::OK();
}

util::Status ReadExact(int fd, void* buf, size_t len,
                       std::chrono::steady_clock::time_point deadline) {
  char* p = static_cast<char*>(buf);
  size_t remaining = len;
  while (remaining > 0) {
    ssize_t n;
    do {
      n = ::recv(fd, p, remaining, MSG_DONTWAIT);
    } while (n < 0 && errno == EINTR);
    if (n > 0) {
      p += n;
      remaining -= static_cast<size_t>(n);
      continue;
    }
    if (n == 0) {
      return util::Status::Internal("peer closed mid-frame (" +
                                    std::to_string(len - remaining) + "/" +
                                    std::to_string(len) + " bytes)");
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      const int ready = PollOne(fd, POLLIN, deadline);
      if (ready == 0) {
        return util::Status::DeadlineExceeded("read deadline exceeded");
      }
      if (ready < 0) return ErrnoStatus("poll(read)", errno);
      continue;
    }
    return ErrnoStatus("recv", errno);
  }
  return util::Status::OK();
}

util::Status ReadUntilClose(int fd, std::string* out, size_t max_bytes,
                            std::chrono::steady_clock::time_point deadline) {
  char buf[4096];
  for (;;) {
    ssize_t n;
    do {
      n = ::recv(fd, buf, sizeof(buf), MSG_DONTWAIT);
    } while (n < 0 && errno == EINTR);
    if (n > 0) {
      if (out->size() + static_cast<size_t>(n) > max_bytes) {
        return util::Status::ResourceExhausted("response exceeds " +
                                               std::to_string(max_bytes) +
                                               " bytes");
      }
      out->append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) return util::Status::OK();
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      const int ready = PollOne(fd, POLLIN, deadline);
      if (ready == 0) {
        return util::Status::DeadlineExceeded("read deadline exceeded");
      }
      if (ready < 0) return ErrnoStatus("poll(read)", errno);
      continue;
    }
    return ErrnoStatus("recv", errno);
  }
}

}  // namespace koios::net
