// Shared mutable cell holding "the engine currently being served", the
// handoff point between the repository watcher (writer: installs the
// engine after the first successful snapshot load) and the server (reader:
// resolves it per request). A null slot is exactly the daemon's NOT-READY
// state — /readyz stays false and queries get kUnavailable until the
// watcher's first load lands, which is the fail-closed startup the issue
// specifies (a daemon pointed at a corrupt repository comes up, reports
// unready, and serves health checks; it does not crash-loop).
#ifndef KOIOS_NET_ENGINE_SLOT_H_
#define KOIOS_NET_ENGINE_SLOT_H_

#include <memory>
#include <mutex>

#include "koios/serve/query_engine.h"

namespace koios::net {

class EngineSlot {
 public:
  std::shared_ptr<serve::QueryEngine> Get() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return engine_;
  }
  void Set(std::shared_ptr<serve::QueryEngine> engine) {
    std::lock_guard<std::mutex> lock(mutex_);
    engine_ = std::move(engine);
  }

 private:
  mutable std::mutex mutex_;
  std::shared_ptr<serve::QueryEngine> engine_;
};

}  // namespace koios::net

#endif  // KOIOS_NET_ENGINE_SLOT_H_
