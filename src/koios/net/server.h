// koios_serverd's front-end: a single poll-driven event loop that maps TCP
// connections onto QueryEngine::SubmitCancellable and streams results back
// as the engine finalizes them. The loop never blocks on the engine (it
// polls ready futures between IO rounds), so one slow query cannot stall
// accepts, reads, health checks or other connections' responses.
//
// Robustness contract (the issue's checklist, in code):
//  * Hard connection cap — accepts past ServerOptions::max_connections are
//    closed immediately (counted, never queued).
//  * Max request size — enforced from the frame HEADER, before the body is
//    buffered; oversized requests get kInvalidArgument, then the
//    connection closes.
//  * Slow-loris defense — a connection holding an INCOMPLETE request
//    longer than read_deadline is closed; an idle one longer than
//    idle_timeout likewise.
//  * Stalled-reader defense — per-connection output is bounded by
//    max_output_buffer_bytes; a peer that stops reading while results
//    stream is SHED (connection closed, in-flight queries cancelled)
//    instead of growing the buffer without bound. No write progress for
//    write_deadline with data pending closes it too.
//  * Disconnect propagation — closing a connection fires the CancelToken
//    of every query it still has in flight, so abandoned work stops
//    burning workers (engine counts it as kCancelled).
//  * Backpressure translation — engine rejections (queue full, fail-fast,
//    deadline) flow to the wire verbatim, retry_after_ms included. A
//    request arriving before the first snapshot is live, or while
//    draining, gets kUnavailable with a retry hint.
//  * Graceful drain — Drain() stops accepting, flips /readyz to 503,
//    answers new queries kUnavailable, lets in-flight queries finish and
//    their responses flush, then closes everything; bounded by
//    drain_deadline. The daemon calls this on SIGTERM and exits 0.
//
// Liveness vs readiness: /healthz is process-alive (200 from the moment
// Start() returns, draining or not); /readyz is traffic-ready (200 only
// with a live snapshot and not draining) — the load-balancer signal.
#ifndef KOIOS_NET_SERVER_H_
#define KOIOS_NET_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>

#include "koios/net/engine_slot.h"
#include "koios/net/socket.h"
#include "koios/util/metric_registry.h"
#include "koios/util/status.h"

namespace koios::net {

struct ServerOptions {
  std::string bind_address = "127.0.0.1";
  /// 0 = ephemeral; read the actual port from port() after Start().
  uint16_t port = 0;
  int listen_backlog = 64;
  /// Hard cap on concurrently open connections.
  size_t max_connections = 256;
  /// Largest accepted request frame body (binary) or line (JSON/HTTP).
  size_t max_request_bytes = 1 << 20;
  /// In-flight queries per connection before reads pause (backpressure).
  size_t max_pipelined_requests = 128;
  /// An incomplete request older than this closes the connection.
  std::chrono::milliseconds read_deadline{10'000};
  /// Pending output with no write progress for this long closes it.
  std::chrono::milliseconds write_deadline{10'000};
  /// A connection with nothing in flight and no traffic for this long is
  /// closed (0 = never).
  std::chrono::milliseconds idle_timeout{60'000};
  /// Per-connection output buffer bound; exceeding it sheds the peer.
  size_t max_output_buffer_bytes = 4 << 20;
  /// Drain() gives in-flight work this long before force-closing.
  std::chrono::milliseconds drain_deadline{5'000};
  /// Applied to queries that arrive with deadline_ms == 0 (0 = engine
  /// default, which may itself be "none").
  std::chrono::milliseconds default_query_deadline{0};
  /// retry_after_ms attached to kUnavailable (not ready / draining).
  int64_t unavailable_retry_after_ms = 500;
};

/// Monotone server counters (snapshot; all fields count since Start()).
struct ServerStats {
  uint64_t connections_accepted = 0;
  uint64_t connections_rejected_at_cap = 0;
  uint64_t connections_closed = 0;
  uint64_t accept_errors = 0;
  uint64_t read_errors = 0;
  uint64_t write_errors = 0;
  uint64_t requests = 0;
  uint64_t responses_ok = 0;
  uint64_t responses_error = 0;
  uint64_t oversized_rejected = 0;
  uint64_t protocol_errors = 0;
  uint64_t slow_loris_closes = 0;
  uint64_t stalled_reader_sheds = 0;
  uint64_t idle_closes = 0;
  uint64_t queries_cancelled_on_disconnect = 0;
  uint64_t unavailable_rejections = 0;
  uint64_t http_requests = 0;
};

class Server {
 public:
  /// `slot` (required) is where the repository watcher installs the engine;
  /// a null slot CONTENT means not-ready, never a crash. `registry`
  /// (optional) receives the koios_server_* metric family and serves
  /// /metrics; with nullptr the endpoint returns 404.
  Server(EngineSlot* slot, util::MetricRegistry* registry,
         const ServerOptions& options = {});
  /// Stops hard (in-flight queries cancelled); call Drain() first for the
  /// graceful path.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens and starts the event-loop thread.
  util::Status Start();

  /// Graceful shutdown: stop accepting, go unready, finish + flush
  /// in-flight work, then close. BLOCKS until drained or drain_deadline
  /// (whichever first), then joins the loop. Idempotent.
  void Drain();

  /// Immediate shutdown (pending queries cancelled). Idempotent.
  void Stop();

  uint16_t port() const { return port_; }
  bool started() const { return started_; }
  bool draining() const {
    return draining_.load(std::memory_order_acquire);
  }
  /// Traffic-ready: started, not draining, and a snapshot is live.
  bool ready() const;

  ServerStats stats() const;

  /// Pimpl'd loop state; public only as a NAME so the event-loop helper
  /// functions in server.cc can take it — the definition never leaves the
  /// .cc file.
  struct Impl;

 private:
  void Loop();

  std::unique_ptr<Impl> impl_;
  EngineSlot* slot_;
  util::MetricRegistry* registry_;
  ServerOptions options_;
  uint16_t port_ = 0;
  bool started_ = false;
  std::atomic<bool> draining_{false};
  std::atomic<bool> stop_{false};
  std::thread loop_thread_;
};

}  // namespace koios::net

#endif  // KOIOS_NET_SERVER_H_
