#include "koios/net/client.h"

#include <cstdlib>
#include <cstring>
#include <thread>

namespace koios::net {

util::StatusOr<BlockingClient> BlockingClient::Connect(
    const std::string& host, uint16_t port, const ClientOptions& options) {
  util::StatusOr<Socket> sock = ConnectTcp(host, port, options.connect_timeout);
  if (!sock.ok()) return sock.status();
  return BlockingClient(std::move(sock).value(), options);
}

util::Status BlockingClient::ReadFrame(
    ResponseFrame* out, std::chrono::steady_clock::time_point deadline) {
  for (;;) {
    size_t consumed = 0;
    std::string error;
    const ParseStatus ps =
        ParseResponseFrame(readbuf_.data(), readbuf_.size(),
                           options_.max_response_bytes, &consumed, out, &error);
    if (ps == ParseStatus::kOk) {
      readbuf_.erase(0, consumed);
      return util::Status::OK();
    }
    if (ps == ParseStatus::kError) {
      return util::Status::Internal("malformed response: " + error);
    }
    // Need more bytes: read the header if we don't have it, then exactly
    // the advertised body (ReadExact handles partial reads + EINTR under
    // the deadline).
    if (readbuf_.size() < kFrameHeaderBytes) {
      const size_t old = readbuf_.size();
      readbuf_.resize(kFrameHeaderBytes);
      if (util::Status s = ReadExact(sock_.fd(), readbuf_.data() + old,
                                     kFrameHeaderBytes - old, deadline);
          !s.ok()) {
        readbuf_.resize(old);
        return s;
      }
    }
    uint32_t body_len = 0;
    std::memcpy(&body_len, readbuf_.data() + 2, sizeof(body_len));
    if (body_len > options_.max_response_bytes) {
      return util::Status::Internal("response frame of " +
                                    std::to_string(body_len) +
                                    " bytes exceeds the client limit");
    }
    const size_t want = kFrameHeaderBytes + body_len;
    if (readbuf_.size() < want) {
      const size_t old = readbuf_.size();
      readbuf_.resize(want);
      if (util::Status s = ReadExact(sock_.fd(), readbuf_.data() + old,
                                     want - old, deadline);
          !s.ok()) {
        readbuf_.resize(old);
        return s;
      }
    }
  }
}

util::Status BlockingClient::Ping() {
  const auto deadline = std::chrono::steady_clock::now() + options_.io_timeout;
  std::string wire;
  AppendRequestFrame(RequestFrame{}, &wire);  // default op is kPing
  if (util::Status s = WriteAll(sock_.fd(), wire.data(), wire.size(), deadline);
      !s.ok()) {
    return s;
  }
  ResponseFrame frame;
  if (util::Status s = ReadFrame(&frame, deadline); !s.ok()) return s;
  return ResponseToStatus(frame);
}

util::StatusOr<std::vector<core::ResultEntry>> BlockingClient::Search(
    const std::vector<TokenId>& tokens, uint32_t k, double alpha,
    uint32_t deadline_ms) {
  const auto deadline = std::chrono::steady_clock::now() + options_.io_timeout;
  RequestFrame req;
  req.op = Op::kSearch;
  req.k = k;
  req.alpha = alpha;
  req.deadline_ms = deadline_ms;
  req.queries.push_back(tokens);
  std::string wire;
  AppendRequestFrame(req, &wire);
  if (util::Status s = WriteAll(sock_.fd(), wire.data(), wire.size(), deadline);
      !s.ok()) {
    return s;
  }
  ResponseFrame frame;
  if (util::Status s = ReadFrame(&frame, deadline); !s.ok()) return s;
  if (frame.code != WireCode::kOk) return ResponseToStatus(frame);
  return std::move(frame.results);
}

util::StatusOr<std::vector<core::ResultEntry>>
BlockingClient::SearchWithBackoff(const std::vector<TokenId>& tokens,
                                  uint32_t k, double alpha,
                                  uint32_t deadline_ms, int max_retries) {
  util::Status last = util::Status::Internal("never attempted");
  for (int attempt = 0; attempt <= max_retries; ++attempt) {
    util::StatusOr<std::vector<core::ResultEntry>> result =
        Search(tokens, k, alpha, deadline_ms);
    if (result.ok()) return result;
    last = result.status();
    // Backpressure contract: only answers that CARRY a hint are retried,
    // and the client sleeps exactly what the server asked — this is what
    // keeps a retrying fleet from hammering an overloaded daemon.
    if (!last.has_retry_after()) return last;
    std::this_thread::sleep_for(
        std::chrono::milliseconds(last.retry_after_ms()));
  }
  return last;
}

util::Status BlockingClient::SearchMany(
    const std::vector<std::vector<TokenId>>& queries, uint32_t k, double alpha,
    uint32_t deadline_ms,
    const std::function<void(const ResponseFrame&)>& on_frame) {
  const auto deadline = std::chrono::steady_clock::now() + options_.io_timeout;
  RequestFrame req;
  req.op = Op::kSearchMany;
  req.k = k;
  req.alpha = alpha;
  req.deadline_ms = deadline_ms;
  req.queries = queries;
  std::string wire;
  AppendRequestFrame(req, &wire);
  if (util::Status s = WriteAll(sock_.fd(), wire.data(), wire.size(), deadline);
      !s.ok()) {
    return s;
  }
  for (size_t received = 0; received < queries.size(); ++received) {
    ResponseFrame frame;
    if (util::Status s = ReadFrame(&frame, deadline); !s.ok()) return s;
    if (frame.query_index >= queries.size()) {
      return util::Status::Internal("response for out-of-range query index " +
                                    std::to_string(frame.query_index));
    }
    on_frame(frame);
  }
  return util::Status::OK();
}

util::StatusOr<std::string> HttpGet(const std::string& host, uint16_t port,
                                    const std::string& path, int* status_code,
                                    std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  util::StatusOr<Socket> sock =
      ConnectTcp(host, port, std::chrono::duration_cast<std::chrono::milliseconds>(timeout));
  if (!sock.ok()) return sock.status();
  const std::string request =
      "GET " + path + " HTTP/1.0\r\nHost: " + host + "\r\n\r\n";
  if (util::Status s = WriteAll(sock.value().fd(), request.data(),
                                request.size(), deadline);
      !s.ok()) {
    return s;
  }
  std::string response;
  if (util::Status s = ReadUntilClose(sock.value().fd(), &response, 32 << 20,
                                      deadline);
      !s.ok()) {
    return s;
  }
  // "HTTP/1.0 200 OK\r\n..." — the status is field 2 of line 1.
  const size_t sp = response.find(' ');
  if (sp == std::string::npos) {
    return util::Status::Internal("malformed HTTP response");
  }
  if (status_code != nullptr) {
    *status_code = std::atoi(response.c_str() + sp + 1);
  }
  const size_t body = response.find("\r\n\r\n");
  if (body == std::string::npos) {
    return util::Status::Internal("HTTP response without header terminator");
  }
  return response.substr(body + 4);
}

}  // namespace koios::net
