#include "koios/embedding/vec_loader.h"

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace koios::embedding {

util::StatusOr<EmbeddingStore> LoadVecStream(std::istream& in,
                                             const text::Dictionary& dict,
                                             VecLoadStats* stats) {
  VecLoadStats local_stats;
  if (stats == nullptr) stats = &local_stats;

  std::string header;
  if (!std::getline(in, header)) {
    return util::Status::InvalidArgument("empty .vec stream");
  }
  std::istringstream header_in(header);
  size_t words = 0, dim = 0;
  if (!(header_in >> words >> dim) || dim == 0) {
    return util::Status::InvalidArgument(".vec header must be '<words> <dim>'");
  }
  stats->file_words = words;
  stats->dim = dim;

  EmbeddingStore store(dim);
  std::vector<float> row(dim);
  std::string line;
  size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::istringstream row_in(line);
    std::string word;
    if (!(row_in >> word)) {
      return util::Status::InvalidArgument(".vec row " + std::to_string(line_no) +
                                           ": missing word");
    }
    ++stats->parsed_words;
    const TokenId token = dict.Lookup(word);
    if (token == kInvalidToken) continue;  // word not in the corpus
    for (size_t d = 0; d < dim; ++d) {
      if (!(row_in >> row[d])) {
        return util::Status::InvalidArgument(
            ".vec row " + std::to_string(line_no) + " ('" + word + "'): expected " +
            std::to_string(dim) + " floats");
      }
    }
    if (store.Has(token)) continue;  // duplicate rows: keep the first
    store.Add(token, row);
    ++stats->matched_words;
  }
  return store;
}

util::StatusOr<EmbeddingStore> LoadVecFile(const std::string& path,
                                           const text::Dictionary& dict,
                                           VecLoadStats* stats) {
  std::ifstream in(path);
  if (!in) {
    return util::Status::NotFound("cannot open .vec file: " + path);
  }
  return LoadVecStream(in, dict, stats);
}

}  // namespace koios::embedding
