// Loader for the FastText / word2vec textual ".vec" format — the format of
// the pre-trained vectors the paper uses (wiki-news-300d-1M.vec etc.):
//
//   <num_words> <dim>\n
//   <word> <v1> <v2> ... <vdim>\n
//   ...
//
// Only words present in the supplied dictionary are materialized (the
// paper's repositories cover a fraction of the 1M-word vocabulary), so
// memory stays proportional to the corpus, not the embedding file.
#ifndef KOIOS_EMBEDDING_VEC_LOADER_H_
#define KOIOS_EMBEDDING_VEC_LOADER_H_

#include <iosfwd>
#include <string>

#include "koios/embedding/embedding_store.h"
#include "koios/text/dictionary.h"
#include "koios/util/status.h"

namespace koios::embedding {

struct VecLoadStats {
  size_t file_words = 0;     // words listed in the file header
  size_t parsed_words = 0;   // rows actually parsed
  size_t matched_words = 0;  // rows matching a dictionary token
  size_t dim = 0;
};

/// Parses a .vec stream and loads vectors for dictionary tokens into a new
/// EmbeddingStore. Unknown words are skipped; malformed rows produce an
/// error status. Tokens without a row are simply OOV in the store.
util::StatusOr<EmbeddingStore> LoadVecStream(std::istream& in,
                                             const text::Dictionary& dict,
                                             VecLoadStats* stats = nullptr);

/// File-path convenience wrapper.
util::StatusOr<EmbeddingStore> LoadVecFile(const std::string& path,
                                           const text::Dictionary& dict,
                                           VecLoadStats* stats = nullptr);

}  // namespace koios::embedding

#endif  // KOIOS_EMBEDDING_VEC_LOADER_H_
