// Dense embedding storage. Stands in for the pre-trained FastText vectors
// the paper uses (§VIII): Koios only ever consumes embeddings through
// cosine similarity, so any L2-normalized vector table with a realistic
// similarity distribution exercises the same code paths.
#ifndef KOIOS_EMBEDDING_EMBEDDING_STORE_H_
#define KOIOS_EMBEDDING_EMBEDDING_STORE_H_

#include <cstddef>
#include <span>
#include <vector>

#include "koios/util/types.h"

namespace koios::embedding {

/// Row-major matrix of token embeddings, indexed by TokenId. Tokens without
/// a vector (out-of-vocabulary, "OOV") have no row; cosine similarity
/// against them is 0 except for the identical-token case, which the token
/// stream handles separately (paper §V: "we deal with out-of-vocabulary
/// elements" by always emitting the query token's self-match).
class EmbeddingStore {
 public:
  explicit EmbeddingStore(size_t dim) : dim_(dim) {}

  /// Registers `vector` (size dim) for `token`; the vector is L2-normalized
  /// on insertion. Tokens must be added at most once.
  void Add(TokenId token, std::span<const float> vector);

  bool Has(TokenId token) const {
    return token < row_of_.size() && row_of_[token] != kNoRow;
  }

  /// Normalized vector of `token`; asserts coverage.
  std::span<const float> VectorOf(TokenId token) const;

  /// Cosine similarity in [-1, 1] (dot product of normalized rows).
  /// Returns 0 if either token is OOV.
  double Cosine(TokenId a, TokenId b) const;

  size_t dim() const { return dim_; }
  /// Number of covered (non-OOV) tokens.
  size_t covered() const { return rows_; }

  size_t MemoryUsageBytes() const {
    return data_.capacity() * sizeof(float) + row_of_.capacity() * sizeof(uint32_t);
  }

 private:
  static constexpr uint32_t kNoRow = 0xFFFFFFFFu;

  size_t dim_;
  size_t rows_ = 0;
  std::vector<float> data_;       // rows_ x dim_
  std::vector<uint32_t> row_of_;  // TokenId -> row index or kNoRow
};

}  // namespace koios::embedding

#endif  // KOIOS_EMBEDDING_EMBEDDING_STORE_H_
