// Dense embedding storage. Stands in for the pre-trained FastText vectors
// the paper uses (§VIII): Koios only ever consumes embeddings through
// cosine similarity, so any L2-normalized vector table with a realistic
// similarity distribution exercises the same code paths.
//
// Two storage tiers: the float rows every exact path reads, and an
// optional int8 affine-quantized tier (built by Finalize()) whose fused
// dequant-dot kernels trade a small bounded score error for 4× smaller
// row reads — selected per call through the Precision enum.
//
// Two storage MODES behind one interface (the borrowed/owned contract the
// v4 mmap repository format relies on, see docs/ARCHITECTURE.md):
//  * owned (default) — Add()/Finalize() build heap arrays.
//  * borrowed — FromBorrowed() wraps external arenas (typically inside an
//    io::MmapRepositoryView mapping) without copying a row: the float
//    matrix, the token→row table, and optionally the FINALIZED int8 tier
//    (codes/scales/offsets/sums stored in the file, so a borrowed load
//    performs ZERO quantization work — finalize_runs() stays 0). Borrowed
//    stores are immutable through Add() (asserted); Finalize() on a
//    borrowed store without a stored tier builds an owned tier over the
//    borrowed rows. The arenas must outlive the store — serve::Snapshot
//    pins the mapping.
#ifndef KOIOS_EMBEDDING_EMBEDDING_STORE_H_
#define KOIOS_EMBEDDING_EMBEDDING_STORE_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "koios/util/status.h"
#include "koios/util/types.h"

namespace koios::embedding {

/// Storage tier a cosine kernel reads from.
///  * kFloat64 — float rows, double accumulation: the exact tier every
///    result-bearing path uses (scores agree with the scalar Cosine()
///    reference to ~1e-15, which the exactness machinery relies on).
///  * kInt8 — per-row affine-quantized int8 rows built by Finalize():
///    4× smaller row reads and an integer dot kernel, at a small, bounded
///    score error (see docs/BENCHMARKS.md). For approximate backends and
///    throughput-bound scans.
enum class Precision : uint8_t { kFloat64 = 0, kInt8 = 1 };

/// Row-major matrix of token embeddings, indexed by TokenId. Tokens without
/// a vector (out-of-vocabulary, "OOV") have no row; cosine similarity
/// against them is 0 except for the identical-token case, which the token
/// stream handles separately (paper §V: "we deal with out-of-vocabulary
/// elements" by always emitting the query token's self-match).
class EmbeddingStore {
 public:
  explicit EmbeddingStore(size_t dim) : dim_(dim) {}

  /// Wraps external arenas without copying. `row_of` maps TokenId → row
  /// index (kNoRow for OOV) and must reference each row in [0, rows)
  /// exactly once; `data` is the rows×dim float matrix (rows already
  /// L2-normalized by the writer). The quantized spans either are all
  /// empty (no stored tier) or carry the finalized tier verbatim
  /// (rows×dim codes, per-row scale/offset/code-sum) — the store comes
  /// back quantized() WITHOUT re-running Finalize(). All spans must
  /// outlive the store (and any copy of it).
  static util::StatusOr<EmbeddingStore> FromBorrowed(
      size_t dim, size_t rows, std::span<const uint32_t> row_of,
      std::span<const float> data, std::span<const int8_t> qcodes,
      std::span<const float> qscales, std::span<const float> qoffsets,
      std::span<const int32_t> qsums);

  /// Registers `vector` (size dim) for `token`; the vector is L2-normalized
  /// on insertion. Tokens must be added at most once. Owned mode only.
  void Add(TokenId token, std::span<const float> vector);

  /// Add() without the normalization: the caller vouches that `vector` is
  /// already L2-normalized. The loaders use this so a stored row survives
  /// a round trip bit-for-bit (renormalizing an already-normalized row
  /// can flip last-bit mantissas, which would break the bit-identity the
  /// v3/v4 load paths guarantee each other).
  void AddNormalized(TokenId token, std::span<const float> vector);

  bool Has(TokenId token) const {
    return token < RowOfSize() && RowOfPtr()[token] != kNoRow;
  }

  /// Normalized vector of `token`; asserts coverage.
  std::span<const float> VectorOf(TokenId token) const;

  /// Vectorized dot product of two equal-length float spans with double
  /// accumulation — the same kernel the batched cosine paths run, exposed
  /// for callers that dot against non-row vectors (e.g. LSH hyperplanes).
  static double Dot(std::span<const float> a, std::span<const float> b);

  /// Builds the quantized tier: every stored row is affine-quantized to
  /// int8 codes with a per-row scale/offset (code = round((v - offset) /
  /// scale), codes in [-127, 127]) plus a precomputed per-row code sum, so
  /// the fused dequant-dot kernel needs only one integer dot product per
  /// pair. Idempotent; call after the last Add(). A later Add() drops the
  /// tier (quantized() turns false) until Finalize() runs again.
  void Finalize();

  /// True once Finalize() has quantized every current row (or a borrowed
  /// store carries the finalized tier from its file).
  bool quantized() const { return quantized_; }

  /// True when the float rows are a borrowed arena (immutable mode).
  bool borrowed() const { return borrowed_; }

  /// Number of times Finalize() actually quantized the rows (idempotent
  /// calls don't count). A v4 borrowed load must keep this at ZERO — the
  /// tier ships finalized in the file; the regression test pins it.
  size_t finalize_runs() const { return finalize_runs_; }

  /// Cosine similarity in [-1, 1] (dot product of normalized rows).
  /// Returns 0 if either token is OOV.
  double Cosine(TokenId a, TokenId b) const;

  /// Cosine from the int8 tier via the fused dequant-dot formula — the
  /// scalar reference the batched kInt8 kernel matches exactly. Requires
  /// quantized(); returns 0 if either token is OOV.
  double CosineQuantized(TokenId a, TokenId b) const;

  /// Batched cosine: out[i] = Cosine(q, targets[i]) for every i. One row
  /// lookup for `q`, then a dense unrolled dot-product kernel per target —
  /// no per-pair dispatch. `out.size()` must equal `targets.size()`.
  /// If `q` is OOV the output is all zeros; OOV targets score 0.
  ///
  /// The double overload accumulates in double like Cosine() and agrees
  /// with it to ~1e-15, which the exactness machinery (kScoreEps = 1e-9
  /// comparisons) relies on; the float overload is for throughput-only
  /// consumers (benchmarks, future quantized backends).
  void CosineBatch(TokenId q, std::span<const TokenId> targets,
                   std::span<double> out) const;
  void CosineBatch(TokenId q, std::span<const TokenId> targets,
                   std::span<float> out) const;

  /// Precision-selected batched cosine. kFloat64 is the overload above,
  /// bit-identical to it. kInt8 reads the quantized tier through a fused
  /// dequant-dot kernel: out[i] = sa*sb*dot_i8(a, b) + sa*ob*sum(a) +
  /// sb*oa*sum(b) + dim*oa*ob, with the integer dot exact in int32 and the
  /// per-row sums precomputed at Finalize() — no row is ever dequantized
  /// to floats. Falls back to kFloat64 when quantized() is false.
  void CosineBatch(TokenId q, std::span<const TokenId> targets,
                   std::span<double> out, Precision precision) const;

  /// Multi-query batched cosine: out[qi * targets.size() + ti] =
  /// Cosine(queries[qi], targets[ti]), row-major by query (`out.size()`
  /// must be `queries.size() * targets.size()`). Each target row is loaded
  /// and converted once per 4-query block instead of once per query, so
  /// memory and conversion traffic drop ~4× versus repeated CosineBatch
  /// calls; scores are bit-identical to CosineBatch / the same-shape
  /// accumulation of Cosine().
  void CosineMultiBatch(std::span<const TokenId> queries,
                        std::span<const TokenId> targets,
                        std::span<double> out) const;

  /// Precision-selected multi-query batch. kInt8 loops the fused
  /// dequant-dot CosineBatch per query (int8 rows are 4× smaller, so the
  /// float path's row-reuse blocking buys little there); kFloat64 is the
  /// overload above, bit-identical to it.
  void CosineMultiBatch(std::span<const TokenId> queries,
                        std::span<const TokenId> targets,
                        std::span<double> out, Precision precision) const;

  /// Dense matrix-vector kernel: out[r] = dot(row(q), row(r)) for every
  /// stored row r in row order (`out.size()` must equal `covered()`).
  /// Zeros the output if `q` is OOV. This is the throughput ceiling the
  /// batched paths aim for: one contiguous scan of the whole matrix.
  void CosineAllRows(TokenId q, std::span<double> out) const;
  void CosineAllRows(TokenId q, std::span<float> out) const;

  /// Row index of `token` in the dense matrix, or kNoRow if OOV. Lets
  /// batch callers translate CosineAllRows output back to tokens.
  uint32_t RowIndexOf(TokenId token) const {
    return token < RowOfSize() ? RowOfPtr()[token] : kNoRow;
  }

  static constexpr uint32_t kNoRow = 0xFFFFFFFFu;

  size_t dim() const { return dim_; }
  /// Number of covered (non-OOV) tokens.
  size_t covered() const { return rows_; }

  // ---- raw storage views (repository writers, regression tests) --------
  /// The rows×dim normalized float matrix in row order.
  std::span<const float> RowData() const { return {DataPtr(), rows_ * dim_}; }
  /// The TokenId → row-index table (size = highest added token + 1 in
  /// owned mode; the file's token bound in borrowed mode).
  std::span<const uint32_t> RowTable() const {
    return {RowOfPtr(), RowOfSize()};
  }
  /// The int8 tier arrays (empty spans until quantized()).
  std::span<const int8_t> QuantizedCodes() const {
    return {QDataPtr(), quantized_ ? rows_ * dim_ : 0};
  }
  std::span<const float> QuantizedScales() const {
    return {QScalePtr(), quantized_ ? rows_ : 0};
  }
  std::span<const float> QuantizedOffsets() const {
    return {QOffsetPtr(), quantized_ ? rows_ : 0};
  }
  std::span<const int32_t> QuantizedSums() const {
    return {QSumPtr(), quantized_ ? rows_ : 0};
  }

  /// Heap footprint (owned arrays only — borrowed arenas are file-backed
  /// pages accounted by the mapping that owns them).
  size_t MemoryUsageBytes() const {
    return data_.capacity() * sizeof(float) +
           row_of_.capacity() * sizeof(uint32_t) + QuantizedMemoryUsageBytes();
  }

  /// Footprint of the int8 tier alone (0 until Finalize(); 0 when the
  /// tier is borrowed from a mapping).
  size_t QuantizedMemoryUsageBytes() const {
    return qdata_.capacity() * sizeof(int8_t) +
           qscale_.capacity() * sizeof(float) +
           qoffset_.capacity() * sizeof(float) +
           qsum_.capacity() * sizeof(int32_t);
  }

 private:
  template <typename Out>
  void CosineBatchImpl(TokenId q, std::span<const TokenId> targets,
                       std::span<Out> out) const;
  template <typename Out>
  void CosineAllRowsImpl(TokenId q, std::span<Out> out) const;
  void CosineBatchInt8(TokenId q, std::span<const TokenId> targets,
                       std::span<double> out) const;
  void AddImpl(TokenId token, std::span<const float> vector, double inv);

  // Mode-dispatching storage accessors: every read path goes through
  // these, so the kernels are identical over owned heap arrays and
  // borrowed mmap arenas.
  const float* DataPtr() const {
    return borrowed_ ? b_data_.data() : data_.data();
  }
  const uint32_t* RowOfPtr() const {
    return borrowed_ ? b_row_of_.data() : row_of_.data();
  }
  size_t RowOfSize() const {
    return borrowed_ ? b_row_of_.size() : row_of_.size();
  }
  const int8_t* QDataPtr() const {
    return quantized_borrowed_ ? b_qdata_.data() : qdata_.data();
  }
  const float* QScalePtr() const {
    return quantized_borrowed_ ? b_qscale_.data() : qscale_.data();
  }
  const float* QOffsetPtr() const {
    return quantized_borrowed_ ? b_qoffset_.data() : qoffset_.data();
  }
  const int32_t* QSumPtr() const {
    return quantized_borrowed_ ? b_qsum_.data() : qsum_.data();
  }

  size_t dim_;
  size_t rows_ = 0;
  // Owned mode.
  std::vector<float> data_;       // rows_ x dim_
  std::vector<uint32_t> row_of_;  // TokenId -> row index or kNoRow
  // Borrowed mode: views into external arenas.
  std::span<const float> b_data_;
  std::span<const uint32_t> b_row_of_;
  bool borrowed_ = false;

  // int8 tier (valid only while quantized_): per-row affine codes + the
  // constants the fused dequant-dot formula needs. Either owned (built by
  // Finalize()) or borrowed verbatim from a v4 file.
  bool quantized_ = false;
  bool quantized_borrowed_ = false;
  size_t finalize_runs_ = 0;
  std::vector<int8_t> qdata_;    // rows_ x dim_ codes
  std::vector<float> qscale_;    // per-row scale
  std::vector<float> qoffset_;   // per-row offset
  std::vector<int32_t> qsum_;    // per-row sum of codes
  std::span<const int8_t> b_qdata_;
  std::span<const float> b_qscale_;
  std::span<const float> b_qoffset_;
  std::span<const int32_t> b_qsum_;
};

}  // namespace koios::embedding

#endif  // KOIOS_EMBEDDING_EMBEDDING_STORE_H_
