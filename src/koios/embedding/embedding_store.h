// Dense embedding storage. Stands in for the pre-trained FastText vectors
// the paper uses (§VIII): Koios only ever consumes embeddings through
// cosine similarity, so any L2-normalized vector table with a realistic
// similarity distribution exercises the same code paths.
#ifndef KOIOS_EMBEDDING_EMBEDDING_STORE_H_
#define KOIOS_EMBEDDING_EMBEDDING_STORE_H_

#include <cstddef>
#include <span>
#include <vector>

#include "koios/util/types.h"

namespace koios::embedding {

/// Row-major matrix of token embeddings, indexed by TokenId. Tokens without
/// a vector (out-of-vocabulary, "OOV") have no row; cosine similarity
/// against them is 0 except for the identical-token case, which the token
/// stream handles separately (paper §V: "we deal with out-of-vocabulary
/// elements" by always emitting the query token's self-match).
class EmbeddingStore {
 public:
  explicit EmbeddingStore(size_t dim) : dim_(dim) {}

  /// Registers `vector` (size dim) for `token`; the vector is L2-normalized
  /// on insertion. Tokens must be added at most once.
  void Add(TokenId token, std::span<const float> vector);

  bool Has(TokenId token) const {
    return token < row_of_.size() && row_of_[token] != kNoRow;
  }

  /// Normalized vector of `token`; asserts coverage.
  std::span<const float> VectorOf(TokenId token) const;

  /// Cosine similarity in [-1, 1] (dot product of normalized rows).
  /// Returns 0 if either token is OOV.
  double Cosine(TokenId a, TokenId b) const;

  /// Batched cosine: out[i] = Cosine(q, targets[i]) for every i. One row
  /// lookup for `q`, then a dense unrolled dot-product kernel per target —
  /// no per-pair dispatch. `out.size()` must equal `targets.size()`.
  /// If `q` is OOV the output is all zeros; OOV targets score 0.
  ///
  /// The double overload accumulates in double like Cosine() and agrees
  /// with it to ~1e-15, which the exactness machinery (kScoreEps = 1e-9
  /// comparisons) relies on; the float overload is for throughput-only
  /// consumers (benchmarks, future quantized backends).
  void CosineBatch(TokenId q, std::span<const TokenId> targets,
                   std::span<double> out) const;
  void CosineBatch(TokenId q, std::span<const TokenId> targets,
                   std::span<float> out) const;

  /// Multi-query batched cosine: out[qi * targets.size() + ti] =
  /// Cosine(queries[qi], targets[ti]), row-major by query (`out.size()`
  /// must be `queries.size() * targets.size()`). Each target row is loaded
  /// and converted once per 4-query block instead of once per query, so
  /// memory and conversion traffic drop ~4× versus repeated CosineBatch
  /// calls; scores are bit-identical to CosineBatch / the same-shape
  /// accumulation of Cosine().
  void CosineMultiBatch(std::span<const TokenId> queries,
                        std::span<const TokenId> targets,
                        std::span<double> out) const;

  /// Dense matrix-vector kernel: out[r] = dot(row(q), row(r)) for every
  /// stored row r in row order (`out.size()` must equal `covered()`).
  /// Zeros the output if `q` is OOV. This is the throughput ceiling the
  /// batched paths aim for: one contiguous scan of the whole matrix.
  void CosineAllRows(TokenId q, std::span<double> out) const;
  void CosineAllRows(TokenId q, std::span<float> out) const;

  /// Row index of `token` in the dense matrix, or kNoRow if OOV. Lets
  /// batch callers translate CosineAllRows output back to tokens.
  uint32_t RowIndexOf(TokenId token) const {
    return token < row_of_.size() ? row_of_[token] : kNoRow;
  }

  static constexpr uint32_t kNoRow = 0xFFFFFFFFu;

  size_t dim() const { return dim_; }
  /// Number of covered (non-OOV) tokens.
  size_t covered() const { return rows_; }

  size_t MemoryUsageBytes() const {
    return data_.capacity() * sizeof(float) + row_of_.capacity() * sizeof(uint32_t);
  }

 private:
  template <typename Out>
  void CosineBatchImpl(TokenId q, std::span<const TokenId> targets,
                       std::span<Out> out) const;
  template <typename Out>
  void CosineAllRowsImpl(TokenId q, std::span<Out> out) const;

  size_t dim_;
  size_t rows_ = 0;
  std::vector<float> data_;       // rows_ x dim_
  std::vector<uint32_t> row_of_;  // TokenId -> row index or kNoRow
};

}  // namespace koios::embedding

#endif  // KOIOS_EMBEDDING_EMBEDDING_STORE_H_
