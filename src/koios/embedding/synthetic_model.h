// Synthetic embedding model replacing the paper's pre-trained FastText
// vectors (DESIGN.md §2). The vocabulary is partitioned into *concept
// clusters*: each cluster has a random unit centroid, and member tokens are
// centroid + Gaussian noise, re-normalized. Within a cluster, cosine
// similarities concentrate around a controllable level (tighter noise =>
// higher similarity); across clusters, similarities concentrate near 0 in
// high dimension. This reproduces the similarity landscape Koios' filters
// face with real embeddings: sparse high-similarity neighborhoods on top of
// an overwhelming low-similarity mass.
#ifndef KOIOS_EMBEDDING_SYNTHETIC_MODEL_H_
#define KOIOS_EMBEDDING_SYNTHETIC_MODEL_H_

#include <cstddef>
#include <vector>

#include "koios/embedding/embedding_store.h"
#include "koios/util/rng.h"
#include "koios/util/types.h"

namespace koios::embedding {

struct SyntheticModelSpec {
  size_t vocab_size = 10000;
  size_t dim = 64;
  /// Average tokens per concept cluster (cluster sizes are geometric-ish,
  /// at least 1). Larger clusters => more semantic neighbors per token.
  double avg_cluster_size = 8.0;
  /// Noise scale relative to the centroid. 0.0 makes all cluster members
  /// identical (sim 1.0); ~0.35 yields intra-cluster cosines mostly in
  /// [0.75, 0.95], a good match for FastText neighborhoods above α = 0.7.
  double noise_sigma = 0.35;
  /// Fraction of the vocabulary covered by the embedding store; remaining
  /// tokens are out-of-vocabulary (the paper filters OpenData/WDC sets at
  /// 70% coverage, so some OOV mass is realistic).
  double coverage = 0.95;
  uint64_t seed = 42;
};

/// Generates an EmbeddingStore for TokenIds [0, vocab_size) and remembers
/// the cluster of each token so tests can assert on the similarity
/// structure.
class SyntheticEmbeddingModel {
 public:
  explicit SyntheticEmbeddingModel(const SyntheticModelSpec& spec);

  const EmbeddingStore& store() const { return store_; }
  EmbeddingStore& mutable_store() { return store_; }

  /// Cluster id of a token (tokens are clustered whether or not covered).
  uint32_t ClusterOf(TokenId token) const { return cluster_of_[token]; }
  size_t num_clusters() const { return num_clusters_; }

  const SyntheticModelSpec& spec() const { return spec_; }

 private:
  SyntheticModelSpec spec_;
  EmbeddingStore store_;
  std::vector<uint32_t> cluster_of_;
  size_t num_clusters_ = 0;
};

}  // namespace koios::embedding

#endif  // KOIOS_EMBEDDING_SYNTHETIC_MODEL_H_
