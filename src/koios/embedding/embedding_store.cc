#include "koios/embedding/embedding_store.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>

namespace koios::embedding {

namespace {

// Vectorized dot product over two normalized float rows, accumulating in
// double. Accumulating in double keeps the batched path within ~1e-15 of
// the scalar Cosine() reference, which the exactness machinery
// (kScoreEps = 1e-9 comparisons) relies on — but GCC/Clang refuse to
// auto-vectorize FP reductions without -ffast-math (vectorization reorders
// the sum), so the wide accumulators are spelled out explicitly with
// vector extensions: two 8-lane double accumulators (FMA-friendly — the
// independent chains hide the add latency), summed in a fixed lane order
// so results are deterministic. Portable compilers get the 4-wide unrolled
// scalar fallback with identical-shape accumulation.
#if defined(__GNUC__) || defined(__clang__)

typedef float Vf8 __attribute__((vector_size(32), aligned(4)));
typedef double Vd8 __attribute__((vector_size(64), aligned(8)));

inline double DotKernel(const float* __restrict a, const float* __restrict b,
                        size_t n) {
  Vd8 acc0 = {}, acc1 = {};
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    Vf8 fa0, fb0, fa1, fb1;
    __builtin_memcpy(&fa0, a + i, sizeof(Vf8));
    __builtin_memcpy(&fb0, b + i, sizeof(Vf8));
    __builtin_memcpy(&fa1, a + i + 8, sizeof(Vf8));
    __builtin_memcpy(&fb1, b + i + 8, sizeof(Vf8));
    acc0 += __builtin_convertvector(fa0, Vd8) *
            __builtin_convertvector(fb0, Vd8);
    acc1 += __builtin_convertvector(fa1, Vd8) *
            __builtin_convertvector(fb1, Vd8);
  }
  const Vd8 acc = acc0 + acc1;
  double dot = ((acc[0] + acc[1]) + (acc[2] + acc[3])) +
               ((acc[4] + acc[5]) + (acc[6] + acc[7]));
  for (; i < n; ++i) dot += static_cast<double>(a[i]) * b[i];
  return dot;
}

// Multi-query block kernel: NQ (<= 4) dot products of pre-converted double
// query rows against one float target row. The target chunk is loaded and
// converted ONCE per NQ queries — conversion and load traffic per
// (query, target) pair drops ~NQ×, which is where the multi-query batched
// path pulls ahead of repeated single-query scans. The accumulation shape
// (16-element chunks, two 8-lane accumulators, fixed lane-sum order,
// scalar tail) matches DotKernel exactly, so both paths produce
// bit-identical scores (float→double conversion is exact).
template <size_t NQ>
inline void DotKernelMulti(const float* __restrict t,
                           const double* const* __restrict q, size_t n,
                           double* __restrict out) {
  static_assert(NQ >= 1 && NQ <= 4);
  Vd8 acc0[NQ] = {}, acc1[NQ] = {};
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    Vf8 f0, f1;
    __builtin_memcpy(&f0, t + i, sizeof(Vf8));
    __builtin_memcpy(&f1, t + i + 8, sizeof(Vf8));
    const Vd8 t0 = __builtin_convertvector(f0, Vd8);
    const Vd8 t1 = __builtin_convertvector(f1, Vd8);
    for (size_t j = 0; j < NQ; ++j) {
      Vd8 qa, qb;
      __builtin_memcpy(&qa, q[j] + i, sizeof(Vd8));
      __builtin_memcpy(&qb, q[j] + i + 8, sizeof(Vd8));
      acc0[j] += t0 * qa;
      acc1[j] += t1 * qb;
    }
  }
  for (size_t j = 0; j < NQ; ++j) {
    const Vd8 acc = acc0[j] + acc1[j];
    double dot = ((acc[0] + acc[1]) + (acc[2] + acc[3])) +
                 ((acc[4] + acc[5]) + (acc[6] + acc[7]));
    for (size_t k = i; k < n; ++k) dot += static_cast<double>(t[k]) * q[j][k];
    out[j] = dot;
  }
}

#else  // portable fallback: 4-wide unrolled, same double accumulation

inline double DotKernel(const float* a, const float* b, size_t n) {
  double acc0 = 0.0, acc1 = 0.0, acc2 = 0.0, acc3 = 0.0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc0 += static_cast<double>(a[i]) * b[i];
    acc1 += static_cast<double>(a[i + 1]) * b[i + 1];
    acc2 += static_cast<double>(a[i + 2]) * b[i + 2];
    acc3 += static_cast<double>(a[i + 3]) * b[i + 3];
  }
  for (; i < n; ++i) acc0 += static_cast<double>(a[i]) * b[i];
  return (acc0 + acc1) + (acc2 + acc3);
}

// Fallback multi-query kernel: same 4-wide accumulation shape as the
// fallback DotKernel per query (double(q) == original float exactly).
template <size_t NQ>
inline void DotKernelMulti(const float* t, const double* const* q, size_t n,
                           double* out) {
  static_assert(NQ >= 1 && NQ <= 4);
  for (size_t j = 0; j < NQ; ++j) {
    double acc0 = 0.0, acc1 = 0.0, acc2 = 0.0, acc3 = 0.0;
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
      acc0 += static_cast<double>(t[i]) * q[j][i];
      acc1 += static_cast<double>(t[i + 1]) * q[j][i + 1];
      acc2 += static_cast<double>(t[i + 2]) * q[j][i + 2];
      acc3 += static_cast<double>(t[i + 3]) * q[j][i + 3];
    }
    for (; i < n; ++i) acc0 += static_cast<double>(t[i]) * q[j][i];
    out[j] = (acc0 + acc1) + (acc2 + acc3);
  }
}

#endif

// Integer dot product of two int8 code rows, exact in int32 (dim * 127^2
// fits comfortably). Unlike the float kernels above, no explicit vector
// extensions are needed: integer addition is associative, so the compiler
// is free to vectorize this reduction (GCC/Clang emit pmaddwd-class code
// at -O3) without any -ffast-math concession, and every evaluation order
// yields the same exact sum.
inline int32_t DotKernelI8(const int8_t* __restrict a,
                           const int8_t* __restrict b, size_t n) {
  int32_t acc = 0;
  for (size_t i = 0; i < n; ++i) {
    acc += static_cast<int32_t>(a[i]) * static_cast<int32_t>(b[i]);
  }
  return acc;
}

// Fused dequant-dot: with per-row affine codes v ≈ scale * code + offset,
//   dot(a, b) ≈ sa*sb*Σ ai*bi + sa*ob*Σ ai + sb*oa*Σ bi + dim*oa*ob,
// where the code sums are precomputed at Finalize() — so the only per-pair
// work is the integer dot product. Evaluated in double in this fixed shape
// by both the scalar reference and the batched kernel, making the two
// bit-identical.
inline double FusedDequantDot(int32_t dot, double sa, double oa, int32_t sum_a,
                              double sb, double ob, int32_t sum_b, size_t dim) {
  return sa * sb * static_cast<double>(dot) +
         sa * ob * static_cast<double>(sum_a) +
         sb * oa * static_cast<double>(sum_b) +
         static_cast<double>(dim) * oa * ob;
}

// Pull a row's cache lines toward the core before the kernel needs them.
// Batch callers (LSH probes especially) visit rows in token order, which
// is scattered in the matrix — without prefetch every row transition
// stalls on L3/DRAM latency that the dot product cannot hide.
inline void PrefetchRow(const float* row, size_t dim) {
#if defined(__GNUC__) || defined(__clang__)
  for (size_t off = 0; off < dim; off += 16) {  // 16 floats per cache line
    __builtin_prefetch(row + off, /*rw=*/0, /*locality=*/1);
  }
#else
  (void)row;
  (void)dim;
#endif
}

}  // namespace

util::StatusOr<EmbeddingStore> EmbeddingStore::FromBorrowed(
    size_t dim, size_t rows, std::span<const uint32_t> row_of,
    std::span<const float> data, std::span<const int8_t> qcodes,
    std::span<const float> qscales, std::span<const float> qoffsets,
    std::span<const int32_t> qsums) {
  if (dim == 0) {
    return util::Status::InvalidArgument("embedding dimension is zero");
  }
  if (data.size() != rows * dim) {
    return util::Status::InvalidArgument(
        "embedding data arena does not match rows x dim");
  }
  // The token→row table must reference every row exactly once: a corrupt
  // (but checksum-valid) table would otherwise alias rows or read past
  // the matrix.
  std::vector<bool> seen(rows, false);
  size_t covered = 0;
  for (const uint32_t r : row_of) {
    if (r == kNoRow) continue;
    if (r >= rows || seen[r]) {
      return util::Status::InvalidArgument(
          "embedding row table is not a bijection onto the rows");
    }
    seen[r] = true;
    ++covered;
  }
  if (covered != rows) {
    return util::Status::InvalidArgument(
        "embedding row table leaves rows unreferenced");
  }
  const bool has_quantized = !qcodes.empty();
  if (has_quantized &&
      (qcodes.size() != rows * dim || qscales.size() != rows ||
       qoffsets.size() != rows || qsums.size() != rows)) {
    return util::Status::InvalidArgument(
        "quantized tier arenas do not match rows x dim");
  }
  EmbeddingStore store(dim);
  store.borrowed_ = true;
  store.rows_ = rows;
  store.b_row_of_ = row_of;
  store.b_data_ = data;
  if (has_quantized) {
    store.quantized_ = true;
    store.quantized_borrowed_ = true;
    store.b_qdata_ = qcodes;
    store.b_qscale_ = qscales;
    store.b_qoffset_ = qoffsets;
    store.b_qsum_ = qsums;
  }
  return store;
}

void EmbeddingStore::Add(TokenId token, std::span<const float> vector) {
  double norm_sq = 0.0;
  for (float v : vector) norm_sq += static_cast<double>(v) * v;
  const double inv = norm_sq > 0.0 ? 1.0 / std::sqrt(norm_sq) : 0.0;
  AddImpl(token, vector, inv);
}

void EmbeddingStore::AddNormalized(TokenId token,
                                   std::span<const float> vector) {
  // inv == 1.0 exactly: fl(v * 1.0) == v, so the stored bytes are kept.
  AddImpl(token, vector, 1.0);
}

void EmbeddingStore::AddImpl(TokenId token, std::span<const float> vector,
                             double inv) {
  assert(!borrowed_ && "Add on a borrowed (immutable) embedding store");
  assert(vector.size() == dim_);
  if (token >= row_of_.size()) row_of_.resize(token + 1, kNoRow);
  assert(row_of_[token] == kNoRow && "token added twice");

  row_of_[token] = static_cast<uint32_t>(rows_);
  // Grow geometrically: an exact-size reserve on every insertion forces a
  // reallocation + full copy per row, i.e. quadratic total work.
  if (data_.size() + dim_ > data_.capacity()) {
    data_.reserve(std::max(data_.size() + dim_, data_.capacity() * 2));
  }
  for (float v : vector) data_.push_back(static_cast<float>(v * inv));
  ++rows_;
  // The int8 tier no longer covers every row; drop it until the next
  // Finalize() rather than serving a partially quantized matrix.
  if (quantized_) {
    quantized_ = false;
    quantized_borrowed_ = false;
    qdata_.clear();
    qscale_.clear();
    qoffset_.clear();
    qsum_.clear();
    b_qdata_ = {};
    b_qscale_ = {};
    b_qoffset_ = {};
    b_qsum_ = {};
  }
}

void EmbeddingStore::Finalize() {
  if (quantized_) return;
  // On a borrowed store without a stored tier, the codes are built as
  // OWNED arrays over the borrowed rows (the mapping is read-only).
  quantized_borrowed_ = false;
  ++finalize_runs_;
  const float* data = DataPtr();
  qdata_.resize(rows_ * dim_);
  qscale_.resize(rows_);
  qoffset_.resize(rows_);
  qsum_.resize(rows_);
  for (size_t r = 0; r < rows_; ++r) {
    const float* row = data + r * dim_;
    float lo = row[0], hi = row[0];
    for (size_t d = 1; d < dim_; ++d) {
      lo = std::min(lo, row[d]);
      hi = std::max(hi, row[d]);
    }
    // Affine map centered on the row's range: codes span [-127, 127]. A
    // constant row (hi == lo) quantizes to all-zero codes with the value
    // carried entirely by the offset.
    const float offset = 0.5f * (lo + hi);
    const float scale = (hi - lo) / 254.0f;
    const float inv = scale > 0.0f ? 1.0f / scale : 0.0f;
    int8_t* codes = &qdata_[r * dim_];
    int32_t sum = 0;
    for (size_t d = 0; d < dim_; ++d) {
      const float c = std::round((row[d] - offset) * inv);
      const int8_t code =
          static_cast<int8_t>(std::clamp(c, -127.0f, 127.0f));
      codes[d] = code;
      sum += code;
    }
    qscale_[r] = scale;
    qoffset_[r] = offset;
    qsum_[r] = sum;
  }
  quantized_ = true;
}

std::span<const float> EmbeddingStore::VectorOf(TokenId token) const {
  assert(Has(token));
  return {DataPtr() + static_cast<size_t>(RowOfPtr()[token]) * dim_, dim_};
}

double EmbeddingStore::Dot(std::span<const float> a, std::span<const float> b) {
  assert(a.size() == b.size());
  return DotKernel(a.data(), b.data(), a.size());
}

double EmbeddingStore::Cosine(TokenId a, TokenId b) const {
  if (!Has(a) || !Has(b)) return 0.0;
  const float* data = DataPtr();
  const uint32_t* row_of = RowOfPtr();
  const float* pa = data + static_cast<size_t>(row_of[a]) * dim_;
  const float* pb = data + static_cast<size_t>(row_of[b]) * dim_;
  double dot = 0.0;
  for (size_t i = 0; i < dim_; ++i) dot += static_cast<double>(pa[i]) * pb[i];
  return dot;
}

template <typename Out>
void EmbeddingStore::CosineBatchImpl(TokenId q,
                                     std::span<const TokenId> targets,
                                     std::span<Out> out) const {
  assert(out.size() == targets.size());
  if (!Has(q)) {
    std::fill(out.begin(), out.end(), Out{0});
    return;
  }
  const float* __restrict data = DataPtr();
  const float* __restrict pq =
      data + static_cast<size_t>(RowOfPtr()[q]) * dim_;
  const size_t n = targets.size();
  // Several rows of prefetch distance: one dot product (~a few hundred ns
  // at embedding dims) is not always enough to cover an L3 miss, so rows
  // further ahead are requested too.
  constexpr size_t kPrefetchAhead = 4;
  for (size_t i = 0; i < std::min<size_t>(kPrefetchAhead, n); ++i) {
    const uint32_t ahead = RowIndexOf(targets[i]);
    if (ahead != kNoRow) {
      PrefetchRow(data + static_cast<size_t>(ahead) * dim_, dim_);
    }
  }
  for (size_t i = 0; i < n; ++i) {
    if (i + kPrefetchAhead < n) {
      const uint32_t ahead = RowIndexOf(targets[i + kPrefetchAhead]);
      if (ahead != kNoRow) {
        PrefetchRow(data + static_cast<size_t>(ahead) * dim_, dim_);
      }
    }
    const uint32_t row = RowIndexOf(targets[i]);
    out[i] = row == kNoRow
                 ? Out{0}
                 : static_cast<Out>(DotKernel(
                       pq, data + static_cast<size_t>(row) * dim_, dim_));
  }
}

void EmbeddingStore::CosineBatch(TokenId q, std::span<const TokenId> targets,
                                 std::span<double> out) const {
  CosineBatchImpl(q, targets, out);
}

void EmbeddingStore::CosineBatch(TokenId q, std::span<const TokenId> targets,
                                 std::span<float> out) const {
  CosineBatchImpl(q, targets, out);
}

double EmbeddingStore::CosineQuantized(TokenId a, TokenId b) const {
  assert(quantized_);
  if (!Has(a) || !Has(b)) return 0.0;
  const uint32_t* row_of = RowOfPtr();
  const int8_t* qdata = QDataPtr();
  const float* qscale = QScalePtr();
  const float* qoffset = QOffsetPtr();
  const int32_t* qsum = QSumPtr();
  const size_t ra = row_of[a], rb = row_of[b];
  const int32_t dot = DotKernelI8(qdata + ra * dim_, qdata + rb * dim_, dim_);
  return FusedDequantDot(dot, qscale[ra], qoffset[ra], qsum[ra], qscale[rb],
                         qoffset[rb], qsum[rb], dim_);
}

void EmbeddingStore::CosineBatchInt8(TokenId q,
                                     std::span<const TokenId> targets,
                                     std::span<double> out) const {
  assert(out.size() == targets.size());
  if (!Has(q)) {
    std::fill(out.begin(), out.end(), 0.0);
    return;
  }
  const int8_t* __restrict qdata = QDataPtr();
  const float* qscale = QScalePtr();
  const float* qoffset = QOffsetPtr();
  const int32_t* qsum = QSumPtr();
  const size_t rq = RowOfPtr()[q];
  const int8_t* __restrict pq = qdata + rq * dim_;
  const double sq = qscale[rq], oq = qoffset[rq];
  const int32_t sumq = qsum[rq];
  const size_t n = targets.size();
  uint32_t row = n > 0 ? RowIndexOf(targets[0]) : kNoRow;
  for (size_t i = 0; i < n; ++i) {
    const uint32_t next = i + 1 < n ? RowIndexOf(targets[i + 1]) : kNoRow;
#if defined(__GNUC__) || defined(__clang__)
    if (next != kNoRow) {
      // int8 rows span dim_/64 cache lines; pull them all.
      const int8_t* p = qdata + static_cast<size_t>(next) * dim_;
      for (size_t off = 0; off < dim_; off += 64) {
        __builtin_prefetch(p + off, /*rw=*/0, /*locality=*/1);
      }
    }
#endif
    if (row == kNoRow) {
      out[i] = 0.0;
    } else {
      const int32_t dot =
          DotKernelI8(pq, qdata + static_cast<size_t>(row) * dim_, dim_);
      out[i] = FusedDequantDot(dot, sq, oq, sumq, qscale[row], qoffset[row],
                               qsum[row], dim_);
    }
    row = next;
  }
}

void EmbeddingStore::CosineBatch(TokenId q, std::span<const TokenId> targets,
                                 std::span<double> out,
                                 Precision precision) const {
  if (precision == Precision::kInt8 && quantized_) {
    CosineBatchInt8(q, targets, out);
  } else {
    CosineBatchImpl(q, targets, out);
  }
}

void EmbeddingStore::CosineMultiBatch(std::span<const TokenId> queries,
                                      std::span<const TokenId> targets,
                                      std::span<double> out) const {
  const size_t nq = queries.size();
  const size_t nt = targets.size();
  assert(out.size() == nq * nt);
  // Pre-convert covered query rows to double once; OOV query rows are all
  // zeros. thread_local scratch: prewarm may run blocks on pool workers.
  thread_local std::vector<double> qbuf;
  qbuf.resize(nq * dim_);
  struct QRef {
    const double* row;
    double* out_row;
  };
  std::vector<QRef> covered_q;
  covered_q.reserve(nq);
  const float* __restrict data = DataPtr();
  for (size_t qi = 0; qi < nq; ++qi) {
    const uint32_t row = RowIndexOf(queries[qi]);
    double* dst = out.data() + qi * nt;
    if (row == kNoRow) {
      std::fill(dst, dst + nt, 0.0);
      continue;
    }
    const float* src = data + static_cast<size_t>(row) * dim_;
    double* q = qbuf.data() + covered_q.size() * dim_;
    for (size_t d = 0; d < dim_; ++d) q[d] = static_cast<double>(src[d]);
    covered_q.push_back({q, dst});
  }
  if (covered_q.empty()) return;

  // One pass over the target rows; every row feeds all query blocks.
  for (size_t ti = 0; ti < nt; ++ti) {
    const uint32_t row = RowIndexOf(targets[ti]);
    if (row == kNoRow) {
      for (const QRef& qr : covered_q) qr.out_row[ti] = 0.0;
      continue;
    }
    const float* t = data + static_cast<size_t>(row) * dim_;
    size_t b = 0;
    double dots[4];
    for (; b + 4 <= covered_q.size(); b += 4) {
      const double* qrows[4] = {covered_q[b].row, covered_q[b + 1].row,
                                covered_q[b + 2].row, covered_q[b + 3].row};
      DotKernelMulti<4>(t, qrows, dim_, dots);
      for (size_t j = 0; j < 4; ++j) covered_q[b + j].out_row[ti] = dots[j];
    }
    const size_t rem = covered_q.size() - b;
    if (rem != 0) {
      const double* qrows[4] = {nullptr, nullptr, nullptr, nullptr};
      for (size_t j = 0; j < rem; ++j) qrows[j] = covered_q[b + j].row;
      switch (rem) {
        case 1:
          DotKernelMulti<1>(t, qrows, dim_, dots);
          break;
        case 2:
          DotKernelMulti<2>(t, qrows, dim_, dots);
          break;
        default:
          DotKernelMulti<3>(t, qrows, dim_, dots);
          break;
      }
      for (size_t j = 0; j < rem; ++j) covered_q[b + j].out_row[ti] = dots[j];
    }
  }
}

void EmbeddingStore::CosineMultiBatch(std::span<const TokenId> queries,
                                      std::span<const TokenId> targets,
                                      std::span<double> out,
                                      Precision precision) const {
  if (precision == Precision::kInt8 && quantized_) {
    const size_t nt = targets.size();
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      CosineBatchInt8(queries[qi], targets, out.subspan(qi * nt, nt));
    }
  } else {
    CosineMultiBatch(queries, targets, out);
  }
}

template <typename Out>
void EmbeddingStore::CosineAllRowsImpl(TokenId q, std::span<Out> out) const {
  assert(out.size() == rows_);
  if (!Has(q)) {
    std::fill(out.begin(), out.end(), Out{0});
    return;
  }
  const float* __restrict rows = DataPtr();
  const float* __restrict pq =
      rows + static_cast<size_t>(RowOfPtr()[q]) * dim_;
  for (size_t r = 0; r < rows_; ++r) {
    out[r] = static_cast<Out>(DotKernel(pq, rows + r * dim_, dim_));
  }
}

void EmbeddingStore::CosineAllRows(TokenId q, std::span<double> out) const {
  CosineAllRowsImpl(q, out);
}

void EmbeddingStore::CosineAllRows(TokenId q, std::span<float> out) const {
  CosineAllRowsImpl(q, out);
}

}  // namespace koios::embedding
