#include "koios/embedding/embedding_store.h"

#include <cassert>
#include <cmath>

namespace koios::embedding {

void EmbeddingStore::Add(TokenId token, std::span<const float> vector) {
  assert(vector.size() == dim_);
  if (token >= row_of_.size()) row_of_.resize(token + 1, kNoRow);
  assert(row_of_[token] == kNoRow && "token added twice");

  double norm_sq = 0.0;
  for (float v : vector) norm_sq += static_cast<double>(v) * v;
  const double inv = norm_sq > 0.0 ? 1.0 / std::sqrt(norm_sq) : 0.0;

  row_of_[token] = static_cast<uint32_t>(rows_);
  data_.reserve(data_.size() + dim_);
  for (float v : vector) data_.push_back(static_cast<float>(v * inv));
  ++rows_;
}

std::span<const float> EmbeddingStore::VectorOf(TokenId token) const {
  assert(Has(token));
  return {&data_[static_cast<size_t>(row_of_[token]) * dim_], dim_};
}

double EmbeddingStore::Cosine(TokenId a, TokenId b) const {
  if (!Has(a) || !Has(b)) return 0.0;
  const float* pa = &data_[static_cast<size_t>(row_of_[a]) * dim_];
  const float* pb = &data_[static_cast<size_t>(row_of_[b]) * dim_];
  double dot = 0.0;
  for (size_t i = 0; i < dim_; ++i) dot += static_cast<double>(pa[i]) * pb[i];
  return dot;
}

}  // namespace koios::embedding
