#include "koios/embedding/synthetic_model.h"

#include <cassert>
#include <cmath>

namespace koios::embedding {

namespace {

std::vector<float> RandomUnitVector(size_t dim, koios::util::Rng* rng) {
  std::vector<float> v(dim);
  double norm_sq = 0.0;
  for (auto& x : v) {
    x = static_cast<float>(rng->NextGaussian());
    norm_sq += static_cast<double>(x) * x;
  }
  const double inv = norm_sq > 0.0 ? 1.0 / std::sqrt(norm_sq) : 0.0;
  for (auto& x : v) x = static_cast<float>(x * inv);
  return v;
}

}  // namespace

SyntheticEmbeddingModel::SyntheticEmbeddingModel(const SyntheticModelSpec& spec)
    : spec_(spec), store_(spec.dim) {
  assert(spec.vocab_size > 0);
  assert(spec.dim >= 4);
  assert(spec.avg_cluster_size >= 1.0);

  util::Rng rng(spec.seed);
  cluster_of_.resize(spec.vocab_size);

  // Assign tokens to clusters with geometric-ish sizes averaging
  // avg_cluster_size, sequentially over the id space. Corpus generators
  // draw token ids Zipfian-style, so low-id clusters become frequent
  // concepts — mirroring how frequent words share neighborhoods.
  const double p_new_cluster = 1.0 / spec.avg_cluster_size;
  uint32_t cluster = 0;
  std::vector<float> centroid = RandomUnitVector(spec.dim, &rng);
  std::vector<float> member(spec.dim);
  for (TokenId t = 0; t < spec.vocab_size; ++t) {
    if (t > 0 && rng.NextBool(p_new_cluster)) {
      ++cluster;
      centroid = RandomUnitVector(spec.dim, &rng);
    }
    cluster_of_[t] = cluster;
    if (rng.NextDouble() < spec.coverage) {
      const double sigma = spec.noise_sigma / std::sqrt(static_cast<double>(spec.dim));
      for (size_t d = 0; d < spec.dim; ++d) {
        member[d] = centroid[d] + static_cast<float>(sigma * rng.NextGaussian());
      }
      store_.Add(t, member);
    }
  }
  num_clusters_ = cluster + 1;
}

}  // namespace koios::embedding
