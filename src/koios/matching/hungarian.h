// Maximum-weight bipartite matching via the Hungarian (Kuhn–Munkres)
// algorithm with slack arrays — O(n³) — plus the early-termination filter
// of paper Lemma 8: the algorithm maintains a feasible node labeling l with
// Σ_v l(v) ≥ w(M*) at all times, and label updates only ever decrease the
// sum, so matching can abort as soon as the sum drops below the current
// pruning threshold θlb.
//
// The paper's semantic overlap is an *optional* one-to-one matching with
// non-negative weights; padding the weight matrix to a square with zeros
// makes the optimal perfect matching equal the optimal optional matching.
#ifndef KOIOS_MATCHING_HUNGARIAN_H_
#define KOIOS_MATCHING_HUNGARIAN_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "koios/util/types.h"

namespace koios::matching {

/// Dense rows x cols weight matrix, row-major. Weights must be >= 0.
class WeightMatrix {
 public:
  WeightMatrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), w_(rows * cols, 0.0) {}

  /// Re-shape to rows x cols, all zeros, reusing the existing allocation
  /// when it is large enough (the post-processing EM loop builds one matrix
  /// per candidate into a per-thread instance).
  void Reset(size_t rows, size_t cols) {
    rows_ = rows;
    cols_ = cols;
    w_.assign(rows * cols, 0.0);
  }

  double& At(size_t r, size_t c) { return w_[r * cols_ + c]; }
  double At(size_t r, size_t c) const { return w_[r * cols_ + c]; }

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  /// Largest entry (0 for an empty matrix).
  double MaxWeight() const;

 private:
  size_t rows_;
  size_t cols_;
  std::vector<double> w_;
};

/// Reusable solve arena: every array the Hungarian algorithm needs, sized
/// lazily by Solve and reused across calls so the post-processing loop
/// (one Solve per surviving candidate) stops paying an allocation storm
/// per matching. One workspace per thread — Solve never shares one across
/// concurrent calls; the pooled EM batches keep a thread_local instance.
class HungarianWorkspace {
 public:
  /// Number of Solve calls that used this workspace (0 = fresh). The
  /// em_workspace_reuses stat counts calls beyond each workspace's first.
  size_t solve_count() const { return solve_count_; }

 private:
  friend class HungarianMatcher;
  std::vector<double> lx_, ly_, slack_;
  std::vector<int32_t> match_x_, match_y_, slack_x_, parent_y_;
  std::vector<char> in_s_, in_t_;
  size_t solve_count_ = 0;
};

struct MatchResult {
  /// Sum of matched edge weights (the semantic overlap when the matrix is
  /// the α-clamped similarity matrix of Q x C).
  Score score = 0.0;
  /// True if matching was aborted by the early-termination filter; `score`
  /// is then meaningless (the set's SO is certified < prune_threshold).
  bool early_terminated = false;
  /// match_of_row[r] = matched column, or -1 if row r is unmatched or its
  /// matched edge has zero weight (optional matching semantics).
  std::vector<int32_t> match_of_row;
  /// Number of augmenting rounds executed (for the micro benchmarks).
  size_t rounds = 0;
  /// Final Σ l(v), the Kuhn–Munkres dual bound on the matching weight.
  double label_sum = 0.0;
};

class HungarianMatcher {
 public:
  /// Computes a maximum-weight optional matching of `weights`.
  ///
  /// If `prune_threshold` >= 0, the run aborts once the dual label sum
  /// certifies that the optimum is below the threshold (Lemma 8); the
  /// result then has early_terminated = true.
  ///
  /// `workspace` (nullable) supplies the solve arrays; passing one across
  /// calls eliminates the per-candidate allocations of the dense arena.
  static MatchResult Solve(const WeightMatrix& weights,
                           double prune_threshold = -1.0,
                           HungarianWorkspace* workspace = nullptr);
};

}  // namespace koios::matching

#endif  // KOIOS_MATCHING_HUNGARIAN_H_
