#include "koios/matching/semantic_overlap.h"

#include <vector>

namespace koios::matching {

BipartiteGraph BuildGraph(std::span<const TokenId> query,
                          std::span<const TokenId> candidate,
                          const sim::SimilarityFunction& sim, Score alpha) {
  // First pass: collect surviving edges in coordinate form.
  struct Edge {
    uint32_t q, c;
    Score w;
  };
  std::vector<Edge> edges;
  std::vector<char> q_used(query.size(), 0), c_used(candidate.size(), 0);
  for (uint32_t qi = 0; qi < query.size(); ++qi) {
    for (uint32_t cj = 0; cj < candidate.size(); ++cj) {
      const Score w = sim.SimilarityAlpha(query[qi], candidate[cj], alpha);
      if (w > 0.0) {
        edges.push_back({qi, cj, w});
        q_used[qi] = 1;
        c_used[cj] = 1;
      }
    }
  }

  BipartiteGraph graph;
  std::vector<uint32_t> q_row(query.size(), 0), c_col(candidate.size(), 0);
  for (uint32_t qi = 0; qi < query.size(); ++qi) {
    if (q_used[qi]) {
      q_row[qi] = static_cast<uint32_t>(graph.query_rows.size());
      graph.query_rows.push_back(qi);
    }
  }
  for (uint32_t cj = 0; cj < candidate.size(); ++cj) {
    if (c_used[cj]) {
      c_col[cj] = static_cast<uint32_t>(graph.set_cols.size());
      graph.set_cols.push_back(cj);
    }
  }
  graph.weights = WeightMatrix(graph.query_rows.size(), graph.set_cols.size());
  for (const auto& e : edges) {
    graph.weights.At(q_row[e.q], c_col[e.c]) = e.w;
  }
  graph.edges = edges.size();
  return graph;
}

Score SemanticOverlap(std::span<const TokenId> query,
                      std::span<const TokenId> candidate,
                      const sim::SimilarityFunction& sim, Score alpha,
                      double prune_threshold, bool* early_terminated) {
  const BipartiteGraph graph = BuildGraph(query, candidate, sim, alpha);
  const MatchResult match = HungarianMatcher::Solve(graph.weights, prune_threshold);
  if (early_terminated != nullptr) *early_terminated = match.early_terminated;
  return match.early_terminated ? 0.0 : match.score;
}

Score GreedySemanticOverlap(std::span<const TokenId> query,
                            std::span<const TokenId> candidate,
                            const sim::SimilarityFunction& sim, Score alpha) {
  const BipartiteGraph graph = BuildGraph(query, candidate, sim, alpha);
  return GreedyMatch(graph.weights).score;
}

}  // namespace koios::matching
