// Greedy bipartite matching: repeatedly take the heaviest edge between two
// unmatched nodes. Runs in O(E log E); its score is within a factor 2 of
// the optimum (paper Lemma 3, citing Vazirani), which makes it the LB-
// Filter's workhorse. Example 2 of the paper shows it is *not* optimal.
#ifndef KOIOS_MATCHING_GREEDY_H_
#define KOIOS_MATCHING_GREEDY_H_

#include <cstdint>
#include <vector>

#include "koios/matching/hungarian.h"
#include "koios/util/types.h"

namespace koios::matching {

struct GreedyResult {
  Score score = 0.0;
  /// (row, col) pairs actually matched, in pick order (descending weight).
  std::vector<std::pair<uint32_t, uint32_t>> pairs;
};

/// Greedy matching over a dense weight matrix; zero-weight edges are never
/// picked (optional matching).
GreedyResult GreedyMatch(const WeightMatrix& weights);

/// Greedy matching over a sparse edge list (row, col, weight). Edges with
/// non-positive weight are ignored.
struct WeightedEdge {
  uint32_t row = 0;
  uint32_t col = 0;
  Score weight = 0.0;
};
GreedyResult GreedyMatchEdges(std::vector<WeightedEdge> edges);

}  // namespace koios::matching

#endif  // KOIOS_MATCHING_GREEDY_H_
