// Semantic overlap (paper Def. 1) computed end-to-end from a similarity
// function: builds the α-clamped bipartite weight matrix of Q x C and runs
// exact (Hungarian) or greedy matching. These are the oracle paths used by
// the brute-force baseline and by the test suite to cross-check Koios.
#ifndef KOIOS_MATCHING_SEMANTIC_OVERLAP_H_
#define KOIOS_MATCHING_SEMANTIC_OVERLAP_H_

#include <span>
#include <vector>

#include "koios/matching/greedy.h"
#include "koios/matching/hungarian.h"
#include "koios/sim/similarity.h"
#include "koios/util/types.h"

namespace koios::matching {

/// The bipartite graph of Q x C restricted to nodes incident to at least
/// one α-surviving edge. Shrinking the matrix this way is exact (isolated
/// nodes are never matched) and usually reduces the Hungarian input from
/// |Q| x |C| to a small core.
struct BipartiteGraph {
  WeightMatrix weights{0, 0};
  /// Row r of `weights` is query element query_rows[r] (index into Q).
  std::vector<uint32_t> query_rows;
  /// Column c of `weights` is set element set_cols[c] (index into C).
  std::vector<uint32_t> set_cols;
  size_t edges = 0;
};

/// Builds the α-clamped graph: weight(q, c) = simα(q, c).
BipartiteGraph BuildGraph(std::span<const TokenId> query,
                          std::span<const TokenId> candidate,
                          const sim::SimilarityFunction& sim, Score alpha);

/// Exact semantic overlap SO(Q, C).
///
/// If `prune_threshold` >= 0, the Hungarian early-termination filter is
/// armed; `early_terminated` (optional out) reports whether it fired, in
/// which case the returned score is 0 and SO(Q, C) < prune_threshold holds.
Score SemanticOverlap(std::span<const TokenId> query,
                      std::span<const TokenId> candidate,
                      const sim::SimilarityFunction& sim, Score alpha,
                      double prune_threshold = -1.0,
                      bool* early_terminated = nullptr);

/// Greedy matching score — a lower bound on SO within factor 2 (Lemma 3).
Score GreedySemanticOverlap(std::span<const TokenId> query,
                            std::span<const TokenId> candidate,
                            const sim::SimilarityFunction& sim, Score alpha);

}  // namespace koios::matching

#endif  // KOIOS_MATCHING_SEMANTIC_OVERLAP_H_
