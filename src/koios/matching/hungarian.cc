#include "koios/matching/hungarian.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace koios::matching {

namespace {
constexpr double kSlackEps = 1e-12;
constexpr double kInf = std::numeric_limits<double>::infinity();
// Early termination must never fire on an exact tie: when SO(C) == θlb the
// dual sum converges to θlb and rounding could dip below it. Requiring the
// sum to fall a margin *below* the threshold keeps ties alive (Lemma 2/8
// both use strict inequality) at the cost of not pruning sets within the
// margin of θlb.
constexpr double kTerminationMargin = 1e-7;
}  // namespace

double WeightMatrix::MaxWeight() const {
  double max_w = 0.0;
  for (double x : w_) max_w = std::max(max_w, x);
  return max_w;
}

MatchResult HungarianMatcher::Solve(const WeightMatrix& weights,
                                    double prune_threshold,
                                    HungarianWorkspace* workspace) {
  const size_t rows = weights.rows();
  const size_t cols = weights.cols();
  MatchResult result;
  result.match_of_row.assign(rows, -1);
  if (rows == 0 || cols == 0) return result;

  // Arena: caller-provided (reused across the EM loop) or call-local.
  HungarianWorkspace local;
  HungarianWorkspace& ws = workspace != nullptr ? *workspace : local;
  ++ws.solve_count_;

  // Square-ify: n x n with zero padding.
  const size_t n = std::max(rows, cols);
  auto w = [&](size_t x, size_t y) -> double {
    return (x < rows && y < cols) ? weights.At(x, y) : 0.0;
  };

  // Feasible labels: lx = row max, ly = 0. assign() reuses the arena's
  // capacity when it is already >= n.
  std::vector<double>& lx = ws.lx_;
  std::vector<double>& ly = ws.ly_;
  lx.assign(n, 0.0);
  ly.assign(n, 0.0);
  double label_sum = 0.0;
  for (size_t x = 0; x < n; ++x) {
    double mx = 0.0;
    for (size_t y = 0; y < n; ++y) mx = std::max(mx, w(x, y));
    lx[x] = mx;
    label_sum += mx;
  }

  std::vector<int32_t>& match_x = ws.match_x_;
  std::vector<int32_t>& match_y = ws.match_y_;
  match_x.assign(n, -1);
  match_y.assign(n, -1);
  std::vector<double>& slack = ws.slack_;
  std::vector<int32_t>& slack_x = ws.slack_x_;    // argmin row for slack[y]
  std::vector<int32_t>& parent_y = ws.parent_y_;  // alternating-tree parent
  std::vector<char>& in_s = ws.in_s_;
  std::vector<char>& in_t = ws.in_t_;
  slack.resize(n);
  slack_x.resize(n);
  parent_y.resize(n);
  in_s.resize(n);
  in_t.resize(n);

  for (size_t root = 0; root < n; ++root) {
    // Early termination (Lemma 8): Σ l(v) only decreases; if it is already
    // below the threshold, the optimum (≤ label_sum) cannot reach it.
    if (prune_threshold >= 0.0 && label_sum < prune_threshold - kTerminationMargin) {
      result.early_terminated = true;
      result.label_sum = label_sum;
      return result;
    }

    std::fill(in_s.begin(), in_s.end(), 0);
    std::fill(in_t.begin(), in_t.end(), 0);
    std::fill(parent_y.begin(), parent_y.end(), -1);
    in_s[root] = 1;
    for (size_t y = 0; y < n; ++y) {
      slack[y] = lx[root] + ly[y] - w(root, y);
      slack_x[y] = static_cast<int32_t>(root);
    }

    int32_t augment_y = -1;
    while (augment_y == -1) {
      // Find a tight, unexplored column.
      int32_t y0 = -1;
      for (size_t y = 0; y < n; ++y) {
        if (!in_t[y] && slack[y] <= kSlackEps) {
          y0 = static_cast<int32_t>(y);
          break;
        }
      }
      if (y0 == -1) {
        // Improve labels by δ = min slack over unexplored columns.
        double delta = kInf;
        for (size_t y = 0; y < n; ++y) {
          if (!in_t[y]) delta = std::min(delta, slack[y]);
        }
        assert(delta < kInf);
        size_t s_count = 0, t_count = 0;
        for (size_t v = 0; v < n; ++v) {
          if (in_s[v]) {
            lx[v] -= delta;
            ++s_count;
          }
          if (in_t[v]) {
            ly[v] += delta;
            ++t_count;
          }
        }
        // |S| = |T| + 1 in the alternating tree, so the sum decreases.
        label_sum -= delta * static_cast<double>(s_count - t_count);
        for (size_t y = 0; y < n; ++y) {
          if (!in_t[y]) slack[y] -= delta;
        }
        if (prune_threshold >= 0.0 &&
            label_sum < prune_threshold - kTerminationMargin) {
          result.early_terminated = true;
          result.label_sum = label_sum;
          return result;
        }
        continue;
      }

      in_t[y0] = 1;
      parent_y[y0] = slack_x[y0];
      if (match_y[y0] == -1) {
        augment_y = y0;
      } else {
        // Extend the tree through y0's current partner.
        const int32_t x_next = match_y[y0];
        in_s[x_next] = 1;
        for (size_t y = 0; y < n; ++y) {
          if (in_t[y]) continue;
          const double new_slack = lx[x_next] + ly[y] - w(x_next, y);
          if (new_slack < slack[y]) {
            slack[y] = new_slack;
            slack_x[y] = x_next;
          }
        }
      }
    }

    // Augment along the alternating path ending at augment_y.
    int32_t y = augment_y;
    while (y != -1) {
      const int32_t x = parent_y[y];
      const int32_t prev_y = match_x[x];
      match_x[x] = y;
      match_y[y] = x;
      y = prev_y;
    }
    ++result.rounds;
  }

  // Harvest: optional matching drops pad assignments and zero-weight edges.
  double score = 0.0;
  for (size_t x = 0; x < rows; ++x) {
    const int32_t y = match_x[x];
    if (y >= 0 && static_cast<size_t>(y) < cols) {
      const double wxy = weights.At(x, static_cast<size_t>(y));
      if (wxy > 0.0) {
        score += wxy;
        result.match_of_row[x] = y;
      }
    }
  }
  result.score = score;
  result.label_sum = label_sum;
  return result;
}

}  // namespace koios::matching
