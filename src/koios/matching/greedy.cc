#include "koios/matching/greedy.h"

#include <algorithm>

namespace koios::matching {

GreedyResult GreedyMatchEdges(std::vector<WeightedEdge> edges) {
  std::sort(edges.begin(), edges.end(),
            [](const WeightedEdge& a, const WeightedEdge& b) {
              if (a.weight != b.weight) return a.weight > b.weight;
              if (a.row != b.row) return a.row < b.row;
              return a.col < b.col;  // deterministic tie-break
            });
  GreedyResult result;
  uint32_t max_row = 0, max_col = 0;
  for (const auto& e : edges) {
    max_row = std::max(max_row, e.row);
    max_col = std::max(max_col, e.col);
  }
  std::vector<char> row_used(edges.empty() ? 0 : max_row + 1, 0);
  std::vector<char> col_used(edges.empty() ? 0 : max_col + 1, 0);
  for (const auto& e : edges) {
    if (e.weight <= 0.0) break;  // sorted: all remaining are <= 0
    if (row_used[e.row] || col_used[e.col]) continue;
    row_used[e.row] = 1;
    col_used[e.col] = 1;
    result.score += e.weight;
    result.pairs.emplace_back(e.row, e.col);
  }
  return result;
}

GreedyResult GreedyMatch(const WeightMatrix& weights) {
  std::vector<WeightedEdge> edges;
  for (size_t r = 0; r < weights.rows(); ++r) {
    for (size_t c = 0; c < weights.cols(); ++c) {
      const double w = weights.At(r, c);
      if (w > 0.0) {
        edges.push_back({static_cast<uint32_t>(r), static_cast<uint32_t>(c), w});
      }
    }
  }
  return GreedyMatchEdges(std::move(edges));
}

}  // namespace koios::matching
