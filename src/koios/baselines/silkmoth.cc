#include "koios/baselines/silkmoth.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "koios/matching/semantic_overlap.h"
#include "koios/util/timer.h"
#include "koios/util/top_k_list.h"

namespace koios::baselines {

SilkMothSearch::SilkMothSearch(const index::SetCollection* sets,
                               const sim::JaccardQGramSimilarity* sim)
    : sets_(sets), sim_(sim), inverted_(*sets) {
  vocabulary_ = inverted_.Vocabulary();
  // Prefix-filter index: for Jaccard threshold α, two gram sets G(q), G(t)
  // with |G(q) ∩ G(t)| > 0 required; indexing the (|G| - ceil(α·|G|) + 1)
  // smallest grams of every token guarantees no candidate with
  // Jaccard >= α is missed (standard prefix filtering).
  for (TokenId t : vocabulary_) {
    const auto& grams = sim_->GramsOf(t);
    const size_t prefix =
        grams.size() -
        static_cast<size_t>(std::ceil(0.5 * static_cast<double>(grams.size()))) +
        1;
    // Index a conservative half prefix (valid for any α >= 0.5; Search
    // asserts this). Grams are sorted, so the prefix is the first entries.
    for (size_t i = 0; i < std::min(prefix, grams.size()); ++i) {
      gram_index_[grams[i]].push_back(t);
    }
  }
}

std::vector<sim::Neighbor> SilkMothSearch::SimilarTokens(
    TokenId q, Score alpha, SilkMothVariant variant) const {
  std::vector<sim::Neighbor> out;
  if (variant == SilkMothVariant::kSemantic) {
    // Generic framework: no token-level filter; scan the vocabulary.
    for (TokenId t : vocabulary_) {
      const Score s = q == t ? 1.0 : sim_->Similarity(q, t);
      if (s >= alpha) out.push_back({t, s});
    }
    return out;
  }
  // Syntactic: prefix-filtered candidates only.
  const auto& grams = sim_->GramsOf(q);
  const size_t prefix =
      grams.size() -
      static_cast<size_t>(std::ceil(alpha * static_cast<double>(grams.size()))) +
      1;
  std::unordered_set<TokenId> candidates;
  for (size_t i = 0; i < std::min(prefix, grams.size()); ++i) {
    auto it = gram_index_.find(grams[i]);
    if (it == gram_index_.end()) continue;
    candidates.insert(it->second.begin(), it->second.end());
  }
  for (TokenId t : candidates) {
    const Score s = q == t ? 1.0 : sim_->Similarity(q, t);
    if (s >= alpha) out.push_back({t, s});
  }
  // The query token itself (vanilla matches) even if prefix-filtered out.
  if (inverted_.InVocabulary(q) && candidates.count(q) == 0) {
    out.push_back({q, 1.0});
  }
  return out;
}

core::SearchResult SilkMothSearch::Search(std::span<const TokenId> query,
                                          const SilkMothOptions& options) {
  core::SearchResult result;
  util::WallTimer timer;

  // --- candidate generation (signature/token filter stage) ---------------
  // edges[t] = list of (query position, sim) with sim >= alpha.
  std::unordered_map<TokenId, std::vector<std::pair<uint32_t, Score>>> edges;
  for (uint32_t qi = 0; qi < query.size(); ++qi) {
    for (const auto& n : SimilarTokens(query[qi], options.alpha,
                                       options.variant)) {
      edges[n.token].emplace_back(qi, n.sim);
    }
  }
  std::unordered_set<SetId> candidates;
  for (const auto& [token, _] : edges) {
    const auto postings = inverted_.Postings(token);
    candidates.insert(postings.begin(), postings.end());
  }
  result.stats.candidates = candidates.size();
  result.stats.timers.Accumulate("refinement", timer.ElapsedSeconds());

  // --- check filter + verification ---------------------------------------
  timer.Restart();
  util::TopKList<SetId> topk(options.k);
  for (SetId id : candidates) {
    // Check filter: UB(C) = Σ_q max_{c ∈ C} sim(q, c) >= SO(Q, C).
    std::unordered_map<uint32_t, Score> row_max;
    for (TokenId t : sets_->Tokens(id)) {
      auto it = edges.find(t);
      if (it == edges.end()) continue;
      for (const auto& [qi, s] : it->second) {
        auto& slot = row_max[qi];
        slot = std::max(slot, s);
      }
    }
    Score ub = 0.0;
    for (const auto& [_, s] : row_max) ub += s;
    if (ub < options.theta - kScoreEps) {
      ++result.stats.iub_filtered;  // reported as "filtered" in the bench
      continue;
    }
    // Verification: exact maximum matching.
    const Score so = matching::SemanticOverlap(query, sets_->Tokens(id), *sim_,
                                               options.alpha);
    ++result.stats.em_computed;
    if (so >= options.theta - kScoreEps && so > 0.0) topk.Offer(id, so);
  }
  result.stats.timers.Accumulate("postprocess", timer.ElapsedSeconds());

  for (const auto& [id, score] : topk.Descending()) {
    result.topk.push_back({id, score, /*exact=*/true});
  }
  return result;
}

}  // namespace koios::baselines
