// The paper's baseline (§VIII-A4): collect candidate sets from the token
// stream, then compute the exact bipartite matching for all of them (thread
// pool), keeping a top-k list. "Baseline+" additionally activates the
// iUB-Filter during candidate collection, which the paper needs to make
// WDC feasible.
#ifndef KOIOS_BASELINES_BRUTE_FORCE_H_
#define KOIOS_BASELINES_BRUTE_FORCE_H_

#include <span>

#include "koios/core/search_types.h"
#include "koios/index/inverted_index.h"
#include "koios/index/set_collection.h"
#include "koios/sim/similarity.h"

namespace koios::baselines {

struct BaselineOptions {
  size_t k = 10;
  Score alpha = 0.8;
  size_t num_threads = 1;
  /// false: plain Baseline (verify every candidate).
  /// true:  Baseline+ (refinement-style iUB pruning first).
  bool use_iub_filter = false;
  /// Verify on the dense |Q| x |C| similarity matrix, as the paper's
  /// baseline does (it feeds full matrices to a dense Hungarian solver).
  /// false switches to Koios' graph-restricted matrices, isolating the
  /// filter framework from the verification-kernel difference.
  bool dense_verification = true;
};

class BruteForceBaseline {
 public:
  /// `index` supplies the token stream (same as Koios, so the comparison
  /// isolates the filter framework, not the index).
  BruteForceBaseline(const index::SetCollection* sets,
                     sim::SimilarityIndex* index);

  core::SearchResult Search(std::span<const TokenId> query,
                            const BaselineOptions& options);

 private:
  const index::SetCollection* sets_;
  sim::SimilarityIndex* index_;
  index::InvertedIndex inverted_;
};

}  // namespace koios::baselines

#endif  // KOIOS_BASELINES_BRUTE_FORCE_H_
