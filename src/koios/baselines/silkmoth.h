// SilkMoth re-implementation (Deng et al., PVLDB'17) for the fuzzy-search
// comparison of paper §VIII-B. SilkMoth solves *threshold-based* related-set
// search under maximum-matching semantics with syntactic element
// similarities; the Koios paper extends it to top-k by handing it the true
// θ*k and keeping a top-k priority queue over the threshold results — the
// same protocol is implemented here.
//
// Two variants, as in the paper:
//  * kSyntactic — full machinery: candidate *tokens* are found with a
//    q-gram prefix-filter index (valid for Jaccard; this is the
//    similarity-function-specific part), then candidate sets are ranked by
//    SilkMoth's check-filter upper bound Σ_q max_c sim(q, c) and verified
//    with exact matching.
//  * kSemantic — the generic framework the original authors suggested for
//    arbitrary similarities: no similarity-specific token filter, so every
//    vocabulary token is compared against every query token (the cost the
//    paper measures), followed by the same check filter + verification.
#ifndef KOIOS_BASELINES_SILKMOTH_H_
#define KOIOS_BASELINES_SILKMOTH_H_

#include <span>
#include <unordered_map>
#include <vector>

#include "koios/core/search_types.h"
#include "koios/index/inverted_index.h"
#include "koios/index/set_collection.h"
#include "koios/sim/jaccard_qgram_similarity.h"
#include "koios/text/dictionary.h"

namespace koios::baselines {

enum class SilkMothVariant { kSyntactic, kSemantic };

struct SilkMothOptions {
  SilkMothVariant variant = SilkMothVariant::kSyntactic;
  size_t k = 10;
  /// Element similarity threshold (α in Koios terms).
  Score alpha = 0.8;
  /// The matching-score threshold θ. The top-k protocol of §VIII-B passes
  /// the true θ*k (computed by an exact engine) — "note this gives
  /// SILKMOTH an advantage".
  Score theta = 0.0;
};

class SilkMothSearch {
 public:
  /// `sim` must be the q-gram Jaccard similarity (the prefix filter of the
  /// syntactic variant is only valid for Jaccard).
  SilkMothSearch(const index::SetCollection* sets,
                 const sim::JaccardQGramSimilarity* sim);

  core::SearchResult Search(std::span<const TokenId> query,
                            const SilkMothOptions& options);

 private:
  /// Tokens of D with Jaccard(q, t) >= alpha, via prefix-filtered q-gram
  /// index (syntactic) or exhaustive scan (semantic).
  std::vector<sim::Neighbor> SimilarTokens(TokenId q, Score alpha,
                                           SilkMothVariant variant) const;

  const index::SetCollection* sets_;
  const sim::JaccardQGramSimilarity* sim_;
  index::InvertedIndex inverted_;
  std::vector<TokenId> vocabulary_;
  /// q-gram -> vocabulary tokens containing it (prefix-filter index).
  std::unordered_map<std::string, std::vector<TokenId>> gram_index_;
};

}  // namespace koios::baselines

#endif  // KOIOS_BASELINES_SILKMOTH_H_
