#include "koios/baselines/brute_force.h"

#include <algorithm>
#include <future>
#include <unordered_set>
#include <vector>

#include "koios/core/edge_cache.h"
#include "koios/core/refinement.h"
#include "koios/matching/hungarian.h"
#include "koios/sim/token_stream.h"
#include "koios/util/thread_pool.h"
#include "koios/util/timer.h"
#include "koios/util/top_k_list.h"

namespace koios::baselines {

BruteForceBaseline::BruteForceBaseline(const index::SetCollection* sets,
                                       sim::SimilarityIndex* index)
    : sets_(sets), index_(index), inverted_(*sets) {}

core::SearchResult BruteForceBaseline::Search(std::span<const TokenId> query,
                                              const BaselineOptions& options) {
  core::SearchResult result;
  if (query.empty() || sets_->size() == 0) return result;

  // Refinement (candidate collection).
  util::WallTimer timer;
  sim::TokenStream stream(
      std::vector<TokenId>(query.begin(), query.end()), index_, options.alpha,
      [this](TokenId t) { return inverted_.InVocabulary(t); });
  core::EdgeCache cache(&stream);

  std::vector<SetId> to_verify;
  if (options.use_iub_filter) {
    // Baseline+: run the Koios refinement (iUB on, buckets on) and verify
    // the survivors without any post-processing filter.
    core::SearchParams params;
    params.k = options.k;
    params.alpha = options.alpha;
    params.use_iub_filter = true;
    core::RefinementPhase refinement(sets_, &inverted_, query.size(), params);
    core::RefinementOutput refined = refinement.Run(&cache, &result.stats);
    to_verify.reserve(refined.survivors.size());
    for (const auto& state : refined.survivors) to_verify.push_back(state.set());
  } else {
    // Plain baseline: every set that shares one α-similar element.
    std::unordered_set<SetId> candidates;
    for (const sim::StreamTuple& tuple : cache.tuples()) {
      const auto postings = inverted_.Postings(tuple.token);
      candidates.insert(postings.begin(), postings.end());
      ++result.stats.stream_tuples;
    }
    result.stats.candidates = candidates.size();
    to_verify.assign(candidates.begin(), candidates.end());
    std::sort(to_verify.begin(), to_verify.end());
  }
  result.stats.timers.Accumulate("refinement", timer.ElapsedSeconds());
  result.stats.memory.AddPeak("stream.edge_cache", cache.MemoryUsageBytes());
  result.stats.memory.AddPeak("index.inverted", inverted_.MemoryUsageBytes());
  result.stats.memory.AddPeak("baseline.candidates",
                              to_verify.capacity() * sizeof(SetId));

  // Verification: exact matching for every candidate. The paper's baseline
  // initializes a dense |Q| x |C| similarity matrix (from the cached
  // stream similarities) and solves it with a dense Hungarian kernel.
  timer.Restart();
  auto verify = [&](SetId id) -> Score {
    if (options.dense_verification) {
      const auto tokens = sets_->Tokens(id);
      matching::WeightMatrix m(query.size(), tokens.size());
      for (uint32_t cj = 0; cj < tokens.size(); ++cj) {
        for (const core::CachedEdge& e : cache.EdgesOf(tokens[cj])) {
          double& slot = m.At(e.query_pos, cj);
          slot = std::max(slot, e.sim);
        }
      }
      return matching::HungarianMatcher::Solve(m).score;
    }
    std::vector<uint32_t> rows, cols;
    const matching::WeightMatrix m =
        cache.BuildMatrix(sets_->Tokens(id), &rows, &cols);
    return matching::HungarianMatcher::Solve(m).score;
  };

  util::TopKList<SetId> topk(options.k);
  if (options.num_threads > 1) {
    util::ThreadPool pool(options.num_threads);
    std::vector<std::future<Score>> futures;
    futures.reserve(to_verify.size());
    for (SetId id : to_verify) {
      futures.push_back(pool.Submit([&verify, id] { return verify(id); }));
    }
    for (size_t i = 0; i < to_verify.size(); ++i) {
      const Score so = futures[i].get();
      ++result.stats.em_computed;
      if (so > 0.0) topk.Offer(to_verify[i], so);
    }
  } else {
    for (SetId id : to_verify) {
      const Score so = verify(id);
      ++result.stats.em_computed;
      if (so > 0.0) topk.Offer(id, so);
    }
  }
  result.stats.timers.Accumulate("postprocess", timer.ElapsedSeconds());

  for (const auto& [id, score] : topk.Descending()) {
    result.topk.push_back({id, score, /*exact=*/true});
  }
  return result;
}

}  // namespace koios::baselines
