// Top-k vanilla overlap search (|Q ∩ C|), the syntactic comparison point of
// the paper's quality study (Fig. 8). Implemented with the classic
// ScanCount approach over the inverted index.
#ifndef KOIOS_BASELINES_VANILLA_TOPK_H_
#define KOIOS_BASELINES_VANILLA_TOPK_H_

#include <span>

#include "koios/core/search_types.h"
#include "koios/index/inverted_index.h"
#include "koios/index/set_collection.h"

namespace koios::baselines {

class VanillaTopK {
 public:
  explicit VanillaTopK(const index::SetCollection* sets);

  /// Top-k sets by exact-match overlap with `query`; scores are integral
  /// overlaps. Sets with zero overlap never enter the result.
  core::SearchResult Search(std::span<const TokenId> query, size_t k) const;

 private:
  const index::SetCollection* sets_;
  index::InvertedIndex inverted_;
};

}  // namespace koios::baselines

#endif  // KOIOS_BASELINES_VANILLA_TOPK_H_
