#include "koios/baselines/vanilla_topk.h"

#include <unordered_map>

#include "koios/util/timer.h"
#include "koios/util/top_k_list.h"

namespace koios::baselines {

VanillaTopK::VanillaTopK(const index::SetCollection* sets)
    : sets_(sets), inverted_(*sets) {}

core::SearchResult VanillaTopK::Search(std::span<const TokenId> query,
                                       size_t k) const {
  core::SearchResult result;
  util::WallTimer timer;
  std::unordered_map<SetId, uint32_t> overlap;
  for (TokenId t : query) {
    for (SetId id : inverted_.Postings(t)) ++overlap[id];
  }
  result.stats.candidates = overlap.size();
  util::TopKList<SetId> topk(k);
  for (const auto& [id, count] : overlap) {
    topk.Offer(id, static_cast<Score>(count));
  }
  for (const auto& [id, score] : topk.Descending()) {
    result.topk.push_back({id, score, /*exact=*/true});
  }
  result.stats.timers.Accumulate("search", timer.ElapsedSeconds());
  return result;
}

}  // namespace koios::baselines
