// Latency sample sink with percentile readout — the measurement vocabulary
// of the serve subsystem and the throughput benches (QPS alone hides tail
// behavior; a serving system is judged by its p99).
//
// Exact by construction: every sample is kept (8 bytes each — a million
// queries cost 8 MB), sorted lazily on the first percentile read after new
// samples. That beats sketch estimators at this scale and keeps Merge
// trivial and lossless, which the per-thread-recorder → global-summary
// pattern of the benches relies on.
//
// Thread-safety: none. Each thread records into its own recorder (or the
// owner locks); Merge the recorders afterwards. The serve::QueryEngine
// wraps one recorder in its stats mutex.
#ifndef KOIOS_SERVE_LATENCY_RECORDER_H_
#define KOIOS_SERVE_LATENCY_RECORDER_H_

#include <cstddef>
#include <string>
#include <vector>

namespace koios::serve {

class LatencyRecorder {
 public:
  /// Records one latency sample (seconds; any non-negative double).
  void Record(double seconds);

  /// Appends every sample of `other` (lossless).
  void Merge(const LatencyRecorder& other);

  size_t count() const { return samples_.size(); }

  /// Exponentially weighted moving average of the service time (seconds;
  /// alpha = 0.2, first sample seeds it directly). This is the overload
  /// governor's estimate of "how long does one query take right now" — it
  /// tracks load shifts (a slow regime moves it within a handful of
  /// samples) where Mean() would average the whole history. 0 when empty.
  double EwmaSeconds() const { return ewma_seconds_; }

  /// Nearest-rank percentile, `p` in [0, 100]; 0 when empty. p=0 is the
  /// minimum, p=100 the maximum.
  double Percentile(double p) const;

  double Mean() const;
  double Max() const { return Percentile(100.0); }

  /// One-line human-readable summary in milliseconds, e.g.
  /// "n=128 mean=1.2ms p50=1.1ms p95=2.0ms p99=3.4ms max=5.0ms".
  std::string Summary() const;

 private:
  void EnsureSorted() const;

  // Sorted lazily; mutable so read-only percentile queries stay const.
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
  double ewma_seconds_ = 0.0;
};

}  // namespace koios::serve

#endif  // KOIOS_SERVE_LATENCY_RECORDER_H_
