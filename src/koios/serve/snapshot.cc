#include "koios/serve/snapshot.h"

#include <utility>
#include <vector>

#include "koios/io/serialization.h"
#include "koios/sim/exact_knn_index.h"

namespace koios::serve {

namespace {

/// Distinct tokens across all sets (ascending). One dense presence pass —
/// cheaper than building an InvertedIndex just to ask for its vocabulary.
/// The v4 load path skips this O(corpus) scan entirely: the file carries
/// the vocabulary as its own section.
std::vector<TokenId> DistinctTokens(const index::SetCollection& sets) {
  std::vector<bool> present(sets.TokenIdBound(), false);
  for (SetId id = 0; id < sets.size(); ++id) {
    for (const TokenId t : sets.Tokens(id)) present[t] = true;
  }
  std::vector<TokenId> vocabulary;
  for (TokenId t = 0; t < present.size(); ++t) {
    if (present[t]) vocabulary.push_back(t);
  }
  return vocabulary;
}

}  // namespace

void Snapshot::BuildServingStructures(const SnapshotOptions& options,
                                      std::vector<TokenId> vocabulary) {
  if (options.quantize_embeddings) store_.Finalize();
  similarity_ = std::make_unique<sim::CosineEmbeddingSimilarity>(
      &store_, options.precision);
  index_ = std::make_unique<sim::ExactKnnIndex>(std::move(vocabulary),
                                                similarity_.get());
}

util::StatusOr<std::shared_ptr<const Snapshot>> Snapshot::Load(
    const std::string& path, const SnapshotOptions& options) {
  const auto version = io::PeekRepositoryVersion(path);
  if (version.ok() && version.value() == 4) {
    // Zero-copy path: the snapshot serves straight out of the mapping;
    // dict/sets/store are borrowed views and the view_ member keeps the
    // mapping alive for as long as any query can touch them.
    auto view_or = io::MmapRepositoryView::Open(
        path, io::MmapOptions{.verify = options.mmap_verify});
    if (!view_or.ok()) return view_or.status();
    auto view = std::move(view_or).value();
    if (!view->has_embeddings()) {
      return util::Status::FailedPrecondition(
          "snapshot requires a repository with an embedding store: " + path);
    }
    auto dict = view->BorrowDictionary();
    if (!dict.ok()) return dict.status();
    auto sets = view->BorrowSets();
    if (!sets.ok()) return sets.status();
    auto store = view->BorrowEmbeddings();
    if (!store.ok()) return store.status();
    auto vocab = view->Vocabulary();
    if (!vocab.ok()) return vocab.status();
    std::shared_ptr<Snapshot> snapshot(new Snapshot());
    snapshot->view_ = std::move(view);
    snapshot->dict_ = std::move(dict).value();
    snapshot->sets_ = std::move(sets).value();
    snapshot->store_ = std::move(store).value();
    snapshot->BuildServingStructures(
        options,
        std::vector<TokenId>(vocab.value().begin(), vocab.value().end()));
    return std::shared_ptr<const Snapshot>(std::move(snapshot));
  }

  auto repo = io::LoadRepository(path);
  if (!repo.ok()) return repo.status();
  if (!repo.value().has_embeddings) {
    return util::Status::FailedPrecondition(
        "snapshot requires a repository with an embedding store: " + path);
  }
  // make_shared needs a public constructor; the snapshot type is move-built
  // here instead.
  std::shared_ptr<Snapshot> snapshot(new Snapshot());
  snapshot->dict_ = std::move(repo.value().dict);
  snapshot->sets_ = std::move(repo.value().sets);
  snapshot->store_ = std::move(repo.value().store);
  snapshot->BuildServingStructures(options, DistinctTokens(snapshot->sets_));
  return std::shared_ptr<const Snapshot>(std::move(snapshot));
}

std::shared_ptr<const Snapshot> Snapshot::Build(text::Dictionary dict,
                                                index::SetCollection sets,
                                                embedding::EmbeddingStore store,
                                                const SnapshotOptions& options) {
  std::shared_ptr<Snapshot> snapshot(new Snapshot());
  snapshot->dict_ = std::move(dict);
  snapshot->sets_ = std::move(sets);
  snapshot->store_ = std::move(store);
  snapshot->BuildServingStructures(options, DistinctTokens(snapshot->sets_));
  return snapshot;
}

size_t Snapshot::MemoryUsageBytes() const {
  return sets_.MemoryUsageBytes() + store_.MemoryUsageBytes() +
         index_->MemoryUsageBytes();
}

}  // namespace koios::serve
