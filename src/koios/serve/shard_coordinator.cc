#include "koios/serve/shard_coordinator.h"

#include <algorithm>
#include <exception>
#include <future>
#include <optional>
#include <utility>

#include "koios/io/shard_slice.h"
#include "koios/util/timer.h"
#include "koios/util/trace_recorder.h"

namespace koios::serve {

ShardCoordinator::ShardCoordinator(const index::SetCollection* sets,
                                   sim::SimilarityIndex* index,
                                   const ShardOptions& options)
    : options_(options),
      index_(index),
      sessions_supported_(index->NewSession() != nullptr) {
  // One shard serves the FULL collection directly (no slice, no rebased
  // offsets) — the N=1 fast path the equivalence contract depends on.
  if (options.num_shards <= 1 || sets->size() <= 1) {
    shards_.push_back(
        std::make_unique<ShardEngine>(sets, index, options.searcher));
    return;
  }
  std::vector<io::ShardSlice> slices =
      io::SliceCollection(*sets, options.num_shards);
  shards_.reserve(slices.size());
  for (io::ShardSlice& slice : slices) {
    shards_.push_back(std::make_unique<ShardEngine>(std::move(slice), index,
                                                    options.searcher));
  }
}

core::SearchResult ShardCoordinator::Execute(std::span<const TokenId> query,
                                             core::SearchParams params,
                                             const QueryOptions& qopts,
                                             util::ThreadPool* shard_pool,
                                             QueryReport* report) const {
  if (!sessions_supported_) {
    // No probe sessions: shards would fight over the shared index's
    // cursor positions, so the whole query — all shards, sequentially —
    // runs under one lock, exactly as whole queries serialized before.
    std::lock_guard<std::mutex> lock(no_session_mutex_);
    return ExecuteSharded(query, params, qopts, /*shard_pool=*/nullptr,
                          report);
  }
  return ExecuteSharded(query, params, qopts, shard_pool, report);
}

core::SearchResult ShardCoordinator::ExecuteSharded(
    std::span<const TokenId> query, const core::SearchParams& params,
    const QueryOptions& qopts, util::ThreadPool* shard_pool,
    QueryReport* report) const {
  const size_t n = shards_.size();

  // One query-global θlb; every shard's refinement publishes into it and
  // every shard's producer derives its stop similarity from it (with the
  // exchange off each context keeps its private threshold — same results,
  // more work). Fresh per query, so no reset ordering to get wrong.
  core::GlobalThreshold shared_theta;
  const bool exchange = options_.theta_exchange && n > 1;

  // SearchContext holds atomics (non-movable) — heap-pin each one.
  std::vector<std::unique_ptr<core::SearchContext>> contexts;
  contexts.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    auto ctx = std::make_unique<core::SearchContext>();
    if (qopts.has_deadline) ctx->set_deadline(qopts.deadline);
    if (qopts.cancel_flag != nullptr) ctx->set_cancel_flag(qopts.cancel_flag);
    if (exchange) ctx->AttachSharedTheta(&shared_theta);
    contexts.push_back(std::move(ctx));
  }

  // Exact scores are what make the cross-shard (score desc, id asc) order
  // well defined; certified lower bounds from the No-EM filter are not
  // comparable across shards. N=1 keeps the caller's setting untouched.
  core::SearchParams shard_params = params;
  if (n > 1) shard_params.verify_result_scores = true;

  std::vector<core::SearchResult> partial(n);
  std::vector<double> seconds(n, 0.0);

  auto run_shard = [&](size_t i) {
    std::optional<util::TraceSpan> span;
    if (n > 1) span.emplace("shard.execute", "shard", i);
    util::WallTimer timer;
    if (sessions_supported_) {
      std::unique_ptr<sim::SimilarityIndex> session = index_->NewSession();
      partial[i] =
          shards_[i]->Execute(query, shard_params, session.get(),
                              contexts[i].get());
    } else {
      partial[i] =
          shards_[i]->Execute(query, shard_params, index_, contexts[i].get());
    }
    seconds[i] = timer.ElapsedSeconds();
  };

  if (shard_pool != nullptr && n > 1) {
    // Scatter: shards 1..N-1 on the dedicated shard pool, shard 0 INLINE
    // on this (query-worker) thread — the worker always makes forward
    // progress itself and shard tasks are leaves (single-threaded
    // searches that never wait on a pool), so the fan-out cannot
    // deadlock. An exception anywhere still joins EVERY shard before
    // rethrowing: the contexts and partials live on this frame.
    std::vector<std::future<void>> futures;
    futures.reserve(n - 1);
    for (size_t i = 1; i < n; ++i) {
      futures.push_back(shard_pool->Submit([&run_shard, &qopts, i] {
        util::TraceAdopt adopt(qopts.trace_id, qopts.trace_parent);
        run_shard(i);
      }));
    }
    std::exception_ptr first_error;
    try {
      run_shard(0);
    } catch (...) {
      first_error = std::current_exception();
    }
    for (std::future<void>& future : futures) {
      try {
        future.get();
      } catch (...) {
        if (first_error == nullptr) first_error = std::current_exception();
      }
    }
    if (first_error != nullptr) std::rethrow_exception(first_error);
  } else {
    // Sequential scatter: the no-session fallback, and the deterministic
    // mode tests use (θlb flows from earlier shards to later ones with
    // reproducible tuple counts).
    for (size_t i = 0; i < n; ++i) run_shard(i);
  }

  if (report != nullptr) {
    report->shard_seconds = std::move(seconds);
    report->shard_stats.clear();
    report->shard_stats.reserve(n);
    for (const core::SearchResult& p : partial) {
      report->shard_stats.push_back(p.stats);
    }
  }

  if (n == 1) return std::move(partial[0]);

  // Gather: every global top-k entry ranks within the top-k of its own
  // shard, so concatenating the shard lists and re-sorting under the
  // global total order loses nothing; the (score desc, id asc) tie-break
  // is exactly the searcher's own partition merge, which is what makes
  // the result bit-identical to N=1.
  KOIOS_TRACE_SPAN("shard.merge");
  core::SearchResult result;
  std::vector<core::ResultEntry> merged;
  for (core::SearchResult& p : partial) {
    merged.insert(merged.end(), p.topk.begin(), p.topk.end());
    result.stats.Merge(p.stats);
  }
  std::sort(merged.begin(), merged.end(),
            [](const core::ResultEntry& a, const core::ResultEntry& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.set < b.set;
            });
  if (merged.size() > params.k) merged.resize(params.k);
  result.topk = std::move(merged);
  return result;
}

}  // namespace koios::serve
