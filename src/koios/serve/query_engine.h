// QueryEngine — the concurrent serving layer over one immutable repository
// snapshot. KoiosSearcher::Search answers ONE query; this engine
// multiplexes many over a shared util::ThreadPool:
//
//  * Shared immutable state, per-query sessions. The engine owns the
//    partition inverted indexes (inside a const KoiosSearcher) and borrows
//    the snapshot's neighbor index; every admitted query probes through
//    its own SimilarityIndex::NewSession(), so concurrent queries share
//    built cursors (the sharded cache pays each (token, α) build once
//    across the whole workload) while consuming them independently.
//    Results are bit-identical to serial one-at-a-time Search.
//  * Admission control. At most `num_threads` queries run at once; beyond
//    that, up to `max_queue` wait. Overflow is rejected IMMEDIATELY with
//    ResourceExhausted (an overloaded serving system must shed load, not
//    grow an unbounded queue). Each query carries a deadline (explicit or
//    options default); one that expires before or while running is
//    rejected cleanly with DeadlineExceeded and NO partial results — the
//    search phases poll the deadline and unwind through the exception-safe
//    shutdown machinery.
//  * Batched admission. SearchMany deduplicates the tokens shared across a
//    batch and prewarms their cursors ONCE (in parallel, on the engine
//    pool) before the queries run, so overlapping queries never build the
//    same cursor twice — the cross-query analogue of TokenStream's
//    per-query Prewarm.
//
// Intra-query threading is intentionally OFF in engine execution
// (params.num_threads is forced to 1): at serving concurrency the cores
// are already saturated by distinct queries, and single-threaded inline
// execution keeps per-query latency deterministic and avoids nested-pool
// deadlocks (a pool task waiting on sub-tasks of the same pool).
#ifndef KOIOS_SERVE_QUERY_ENGINE_H_
#define KOIOS_SERVE_QUERY_ENGINE_H_

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <mutex>
#include <vector>

#include "koios/core/search_types.h"
#include "koios/core/searcher.h"
#include "koios/serve/latency_recorder.h"
#include "koios/serve/snapshot.h"
#include "koios/util/status.h"
#include "koios/util/thread_pool.h"

namespace koios::serve {

struct EngineOptions {
  /// Worker threads = maximum concurrently RUNNING queries.
  size_t num_threads = 4;
  /// Admitted-but-waiting bound; a Submit arriving with the queue full is
  /// rejected with ResourceExhausted.
  size_t max_queue = 256;
  /// Deadline applied to queries submitted without an explicit one;
  /// zero = no deadline.
  std::chrono::milliseconds default_deadline{0};
  /// Repository partitioning (paper §VI) used by the engine's searcher.
  core::SearcherOptions searcher;
};

/// Monotone engine counters (snapshot; taken under the stats mutex).
struct EngineCounters {
  uint64_t submitted = 0;
  uint64_t completed = 0;
  uint64_t rejected_queue_full = 0;
  uint64_t deadline_exceeded = 0;
};

class QueryEngine {
 public:
  using Result = util::StatusOr<core::SearchResult>;

  /// Serves over caller-owned parts (both must outlive the engine). The
  /// index must support NewSession() for true concurrency; without it the
  /// engine still works but serializes query execution behind a mutex.
  QueryEngine(const index::SetCollection* sets, sim::SimilarityIndex* index,
              const EngineOptions& options = {});

  /// Serves over (and keeps alive) a shared snapshot.
  explicit QueryEngine(std::shared_ptr<const Snapshot> snapshot,
                       const EngineOptions& options = {});

  /// Drains: blocks until every admitted query finished.
  ~QueryEngine();

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  /// Admits one query. The future resolves to the SearchResult, or to
  /// ResourceExhausted (rejected at the door, never ran) /
  /// DeadlineExceeded (expired waiting or mid-execution; any partial work
  /// was discarded). Thread-safe.
  std::future<Result> Submit(std::vector<TokenId> query,
                             const core::SearchParams& params);
  std::future<Result> Submit(std::vector<TokenId> query,
                             const core::SearchParams& params,
                             std::chrono::milliseconds deadline);

  /// Batched execution: prewarms the union of the batch's query tokens
  /// once (deduplicated, parallel on the engine pool), then runs every
  /// query concurrently and waits for all of them. Results are positional.
  /// The batch itself is never rejected (the caller blocks, so the work is
  /// bounded by them), but its queries DO occupy in-flight slots while
  /// they run — concurrent Submit() callers can see the queue as full
  /// until the batch drains. Per-query deadlines still apply.
  std::vector<Result> SearchMany(
      const std::vector<std::vector<TokenId>>& queries,
      const core::SearchParams& params);

  const core::KoiosSearcher& searcher() const { return searcher_; }
  size_t num_threads() const { return pool_.num_threads(); }

  EngineCounters counters() const;
  /// Copy of the per-query wall-latency samples (successful queries only).
  LatencyRecorder latency() const;

 private:
  struct Ticket {
    std::chrono::steady_clock::time_point deadline{};
    bool has_deadline = false;
  };

  Ticket MakeTicket(std::chrono::milliseconds deadline) const;
  /// Worker-side execution. Deadline aborts become DeadlineExceeded
  /// statuses; anything else a search throws (bad_alloc, a faulty
  /// similarity backend) propagates through the future — the wrapper in
  /// Enqueue still releases the admission slot.
  Result Execute(const std::vector<TokenId>& query, core::SearchParams params,
                 const Ticket& ticket);
  std::future<Result> Enqueue(std::vector<TokenId> query,
                              const core::SearchParams& params, Ticket ticket,
                              bool enforce_queue_bound);

  std::shared_ptr<const Snapshot> snapshot_;  // null for the borrowed ctor
  const index::SetCollection* sets_;
  sim::SimilarityIndex* index_;
  EngineOptions options_;
  core::KoiosSearcher searcher_;
  bool sessions_supported_;
  // Serializes whole searches when the index cannot hand out sessions.
  std::mutex no_session_fallback_mutex_;

  // Admitted (queued or running) queries, for the queue bound.
  std::atomic<size_t> in_flight_{0};

  mutable std::mutex stats_mutex_;
  EngineCounters counters_;
  LatencyRecorder latency_;

  // LAST member: its destructor joins workers that still touch the stats
  // mutex and counters above, so they must outlive it.
  util::ThreadPool pool_;
};

}  // namespace koios::serve

#endif  // KOIOS_SERVE_QUERY_ENGINE_H_
