// QueryEngine — the concurrent serving layer over one immutable repository
// snapshot. KoiosSearcher::Search answers ONE query; this engine
// multiplexes many over a shared util::ThreadPool:
//
//  * Shared immutable state, per-query sessions. The engine owns the
//    partition inverted indexes (inside a const KoiosSearcher) and borrows
//    the snapshot's neighbor index; every admitted query probes through
//    its own SimilarityIndex::NewSession(), so concurrent queries share
//    built cursors (the sharded cache pays each (token, α) build once
//    across the whole workload) while consuming them independently.
//    Results are bit-identical to serial one-at-a-time Search.
//  * Admission control. At most `num_threads` queries run at once; beyond
//    that, up to `max_queue` wait. Overflow is rejected IMMEDIATELY with
//    ResourceExhausted (an overloaded serving system must shed load, not
//    grow an unbounded queue). Each query carries a deadline (explicit or
//    options default); one that expires before or while running is
//    rejected cleanly with DeadlineExceeded and NO partial results — the
//    search phases poll the deadline and unwind through the exception-safe
//    shutdown machinery.
//  * Batched admission. SearchMany deduplicates the tokens shared across a
//    batch and prewarms their cursors ONCE (in parallel, on the engine
//    pool) before the queries run, so overlapping queries never build the
//    same cursor twice — the cross-query analogue of TokenStream's
//    per-query Prewarm. The batch deadline ticket is created BEFORE the
//    prewarm and polled between prewarm chunks, so a stalled prewarm
//    counts against (and is cut short by) the queries' deadline instead
//    of silently delaying every query with the clock not yet running.
//  * Live snapshot hot-swap. Everything a query dereferences — snapshot,
//    searcher (partition indexes), neighbor index — is bundled in one
//    immutable ServingState resolved at ADMISSION time and pinned by the
//    query until it completes. SwapSnapshot builds a replacement state
//    off the serving path and flips the shared pointer between queries:
//    already-admitted queries finish bit-identically against the state
//    they were admitted under, later submissions see the new snapshot,
//    and the old snapshot is destroyed when its last in-flight query
//    drops the reference — no drain, no lock held across a search.
//  * Sharded scatter-gather (num_shards > 1). The set collection is
//    partitioned into N contiguous slices (dict/embeddings/neighbor index
//    replicated — shared pages under the v4 mmap format), each with its
//    own ShardEngine; every query fans out across all shards (shard 0 on
//    the query's worker, the rest on a dedicated shard pool), exchanges
//    θlb mid-flight so any shard's proven bound prunes the others, and
//    merges the per-shard top-k streams deterministically. Results are
//    bit-identical to the N=1 engine; admission, deadlines, cancellation
//    and swaps keep their exact semantics (the coordinator lives inside
//    the ServingState, so a swap flips all shards atomically).
//
// Intra-query threading is intentionally OFF in engine execution
// (params.num_threads is forced to 1): at serving concurrency the cores
// are already saturated by distinct queries, and single-threaded inline
// execution keeps per-query latency deterministic and avoids nested-pool
// deadlocks (a pool task waiting on sub-tasks of the same pool).
#ifndef KOIOS_SERVE_QUERY_ENGINE_H_
#define KOIOS_SERVE_QUERY_ENGINE_H_

#include <atomic>
#include <chrono>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "koios/core/search_types.h"
#include "koios/core/searcher.h"
#include "koios/serve/latency_recorder.h"
#include "koios/serve/shard_coordinator.h"
#include "koios/serve/snapshot.h"
#include "koios/util/status.h"
#include "koios/util/thread_pool.h"

namespace koios::serve {

struct EngineOptions {
  /// Worker threads = maximum concurrently RUNNING queries.
  size_t num_threads = 4;
  /// Admitted-but-waiting bound; a Submit arriving with the queue full is
  /// rejected with ResourceExhausted.
  size_t max_queue = 256;
  /// Deadline applied to queries submitted without an explicit one;
  /// zero = no deadline.
  std::chrono::milliseconds default_deadline{0};
  /// Byte budget for the neighbor index's shared cursor cache (applied via
  /// BatchedNeighborIndex::SetCursorCacheCapacity to the served index and
  /// to every index swapped in later; 0 = unbounded, and non-batched
  /// backends ignore it). A long-running engine should set this: the
  /// (token, α) cache otherwise grows with lifetime traffic.
  size_t cursor_cache_bytes = 0;
  /// Repository partitioning (paper §VI) used by the engine's searcher.
  core::SearcherOptions searcher;

  /// Corpus shards (ROADMAP item 4): the set collection is partitioned
  /// into this many contiguous slices, each searched by its own
  /// ShardEngine, with one query fanned across all of them (shard 0 on
  /// the query's worker, the rest on a dedicated shard pool) and the
  /// per-shard top-k streams merged deterministically. Dict, embeddings
  /// and the neighbor index stay shared (replicated) across shards.
  /// 1 = today's single-shard engine, bit-for-bit; results are
  /// bit-identical at every N (hard gate in bench_shard_scaling). Clamped
  /// to the set count. Fixed for the engine's lifetime — hot swaps re-
  /// slice the NEW snapshot at the same N, flipping all shards atomically
  /// (they live inside the one ServingState pointer).
  size_t num_shards = 1;
  /// Cross-shard θlb exchange (paper §VI partition pruning, lifted to
  /// shards): every shard's refinement publishes into one query-global
  /// threshold that all shards' producers read, so a bound proven by any
  /// shard stops the others' streams early. Results are identical either
  /// way — off is the independent-shard baseline the scaling bench
  /// measures the exchange against. Ignored at num_shards = 1.
  bool shard_theta_exchange = true;

  /// Completed queries slower than this get a report — the query's full
  /// span tree (when it was sampled by the trace recorder) plus
  /// SearchStats::ToString() — written to `slow_query_sink`. Zero
  /// disables. Reports are rate-limited to one per
  /// `slow_query_log_interval` so an overloaded engine logs a steady
  /// trickle, not a flood (the koios_slow_queries_total counter still
  /// ticks for every over-threshold query).
  std::chrono::milliseconds slow_query_threshold{0};
  std::chrono::milliseconds slow_query_log_interval{1000};
  /// Destination for slow-query reports; null = stderr.
  std::function<void(const std::string&)> slow_query_sink;
};

/// Monotone engine counters (snapshot; taken under the stats mutex).
struct EngineCounters {
  uint64_t submitted = 0;
  uint64_t completed = 0;
  uint64_t rejected_queue_full = 0;
  uint64_t deadline_exceeded = 0;
  /// Fail-fast admissions: the estimated queue wait already exceeded the
  /// query's deadline budget, so it was rejected at the door instead of
  /// burning a queue slot to time out later.
  uint64_t rejected_wait_exceeds_deadline = 0;
  /// Queries aborted because their CancelToken fired (disconnected client)
  /// before they finished; partial work was discarded.
  uint64_t cancelled = 0;
  /// TrySwapFromRepository outcomes (SwapSnapshot counts as a success).
  uint64_t swaps_completed = 0;
  uint64_t swap_failures = 0;
  /// Completed queries over the slow-query threshold (counted even when
  /// the rate limiter suppressed the report itself).
  uint64_t slow_queries = 0;
};

/// Cooperative cancellation for a submitted query: the network edge holds
/// the token and fires it when its client disconnects, so a query whose
/// answer nobody will read stops burning a worker at the next deadline
/// poll (the same coarse-cadence polls the deadline uses) and unwinds
/// through the poison-safe machinery — no partial state, clean kCancelled.
class CancelToken {
 public:
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }
  const std::atomic<bool>* flag() const { return &cancelled_; }

 private:
  std::atomic<bool> cancelled_{false};
};

class QueryEngine {
 public:
  using Result = util::StatusOr<core::SearchResult>;

  /// Serves over caller-owned parts (both must outlive the engine). The
  /// index must support NewSession() for true concurrency; without it the
  /// engine still works but serializes query execution behind a mutex.
  QueryEngine(const index::SetCollection* sets, sim::SimilarityIndex* index,
              const EngineOptions& options = {});

  /// Serves over (and keeps alive) a shared snapshot.
  explicit QueryEngine(std::shared_ptr<const Snapshot> snapshot,
                       const EngineOptions& options = {});

  /// Drains: blocks until every admitted query finished.
  ~QueryEngine();

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  /// Admits one query. The future resolves to the SearchResult, or to
  /// ResourceExhausted (rejected at the door, never ran) /
  /// DeadlineExceeded (expired waiting or mid-execution; any partial work
  /// was discarded). Rejections carry a retry_after_ms() hint derived from
  /// the queue depth and the EWMA service time, so callers back off for
  /// roughly the time the engine needs to drain rather than retrying
  /// blind. A query whose ESTIMATED queue wait already exceeds its
  /// deadline budget is failed fast with DeadlineExceeded at admission —
  /// it would only have occupied a queue slot to time out later.
  /// Thread-safe.
  std::future<Result> Submit(std::vector<TokenId> query,
                             const core::SearchParams& params);
  std::future<Result> Submit(std::vector<TokenId> query,
                             const core::SearchParams& params,
                             std::chrono::milliseconds deadline);

  /// Submit with cooperative cancellation: same admission semantics, plus
  /// a token the caller may fire at any time (before or while the query
  /// runs). A cancelled query resolves to kCancelled with zero partial
  /// results; a token fired after completion is a harmless no-op. The
  /// token is also usable from other threads than the submitter.
  struct Submission {
    std::future<Result> future;
    std::shared_ptr<CancelToken> cancel;
  };
  Submission SubmitCancellable(std::vector<TokenId> query,
                               const core::SearchParams& params,
                               std::chrono::milliseconds deadline);

  /// Batched execution: prewarms the union of the batch's query tokens
  /// once (deduplicated, parallel on the engine pool), then runs every
  /// query concurrently and waits for all of them. Results are positional.
  /// The batch itself is never rejected (the caller blocks, so the work is
  /// bounded by them), but its queries DO occupy in-flight slots while
  /// they run — concurrent Submit() callers can see the queue as full
  /// until the batch drains. The options deadline covers the whole batch
  /// INCLUDING the prewarm (the ticket is made first and polled between
  /// prewarm chunks); an expired batch yields DeadlineExceeded per query.
  std::vector<Result> SearchMany(
      const std::vector<std::vector<TokenId>>& queries,
      const core::SearchParams& params);

  /// Atomically points the engine at a rebuilt repository between queries
  /// (reindex, corpus update) WITHOUT draining: the replacement serving
  /// state — searcher with partition indexes, cursor-cache budget — is
  /// built here off the serving path, then flipped. Queries admitted
  /// before the flip complete against the snapshot they were admitted
  /// under (bit-identical to an un-swapped engine); queries submitted
  /// after it run against `snapshot`. The old snapshot is released when
  /// its last in-flight query finishes. Thread-safe; concurrent swappers
  /// serialize on the flip (last one wins).
  void SwapSnapshot(std::shared_ptr<const Snapshot> snapshot);

  /// Failure-hardened reload: loads `path` (io::LoadRepository under
  /// Snapshot::Load — every corruption class comes back as a clean error
  /// Status) and hot-swaps to it ONLY if the whole load + state build
  /// succeeded. On ANY failure the engine keeps serving its current
  /// snapshot untouched — a corrupt or half-written repository file can
  /// never take down a serving process, only fail its reload. v4 mmap
  /// files are always verified EAGERLY here (options.mmap_verify is
  /// forced on), so a corrupt bulk arena fails the swap instead of
  /// surfacing mid-query later. Thread-safe, same flip semantics as
  /// SwapSnapshot.
  util::Status TrySwapFromRepository(const std::string& path,
                                     const SnapshotOptions& options = {});

  /// The snapshot currently being served (null when the engine was
  /// constructed over borrowed parts and never swapped).
  std::shared_ptr<const Snapshot> snapshot() const;

  /// The CURRENT serving state's FIRST shard searcher (the only shard —
  /// the full collection — at num_shards = 1). The returned pointer PINS
  /// the state it belongs to (aliasing shared_ptr), so it stays valid
  /// across hot swaps — but a caller holding it across a swap keeps
  /// reading the OLD snapshot's searcher, exactly like an in-flight query
  /// would.
  std::shared_ptr<const core::KoiosSearcher> searcher() const;
  size_t num_threads() const { return pool_.num_threads(); }
  /// ACTUAL shard count of the current serving state (options.num_shards
  /// clamped to the snapshot's set count; 1 for an unsharded engine).
  size_t num_shards() const;

  EngineCounters counters() const;
  /// Aggregate of every completed query's SearchStats (tuples, candidates,
  /// filter hits, exact matchings) — the engine-lifetime totals the metric
  /// registry exposes, replacing per-call ad-hoc stat plumbing.
  core::SearchStats search_stats() const;
  /// Copy of the per-query wall-latency samples (successful queries only).
  LatencyRecorder latency() const;
  /// Per-shard execution latency samples of completed queries (one sample
  /// per shard per query — shard i's own wall time inside the fan-out).
  /// Empty recorder for out-of-range shards. At num_shards = 1, shard 0
  /// mirrors latency() minus the merge/session overhead.
  LatencyRecorder shard_latency(size_t shard) const;
  /// Aggregate SearchStats of shard `shard` across completed queries —
  /// per-shard tuples/candidates/phase timers ("cursor_build",
  /// "refinement", "postprocess") for the metrics layer and the scale
  /// suite's per-shard breakdowns.
  core::SearchStats shard_search_stats(size_t shard) const;
  /// EWMA service time in seconds (0 until the first query completes) —
  /// the overload governor's "how long does one query take right now",
  /// exposed for metrics without copying the whole sample vector.
  double LatencyEwmaSeconds() const;
  /// The overload governor's CURRENT estimate of how long a query
  /// submitted right now would wait before a worker picks it up. 0 while
  /// a worker is free — and, by design, 0 on a COLD engine (no completed
  /// query yet means no EWMA): the governor never fail-fast rejects
  /// without evidence, so a cold daemon cannot shed its first burst on a
  /// bogus estimate. Exposed for metrics and admission introspection.
  double EstimatedQueueWaitSeconds() const;

 private:
  struct Ticket {
    std::chrono::steady_clock::time_point deadline{};
    bool has_deadline = false;
  };

  /// Everything a query dereferences while it runs, bundled immutably so
  /// a hot swap is one shared_ptr flip — INCLUDING every shard: the
  /// coordinator (and the slices + per-shard searchers inside it) lives
  /// here, so a swap replaces all N shards atomically; a query can never
  /// see shard 0 of one snapshot and shard 1 of another. A query pins the
  /// state it was ADMITTED under (captured into its task), which is what
  /// makes the swap safe with queries in flight: nothing a running search
  /// touches is ever mutated or freed underneath it.
  struct ServingState {
    ServingState(std::shared_ptr<const Snapshot> snap,
                 const index::SetCollection* sets,
                 sim::SimilarityIndex* index_in,
                 const ShardOptions& shard_options)
        : snapshot(std::move(snap)),
          index(index_in),
          coordinator(sets, index_in, shard_options) {}

    std::shared_ptr<const Snapshot> snapshot;  // null for borrowed parts
    sim::SimilarityIndex* index;
    ShardCoordinator coordinator;  // holds the shard slices + searchers
  };
  using StatePtr = std::shared_ptr<const ServingState>;

  /// Builds a serving state (partition indexes, sessions probe, cursor
  /// cache budget). Runs off the serving path — existing queries keep
  /// executing against the current state meanwhile.
  StatePtr MakeState(std::shared_ptr<const Snapshot> snapshot,
                     const index::SetCollection* sets,
                     sim::SimilarityIndex* index) const;
  StatePtr CurrentState() const;

  /// Per-query trace context, captured at admission (the submitter's
  /// ambient trace — the net edge's request trace — or a fresh sampling
  /// decision for direct callers) and carried into the worker so the
  /// queue wait and execution record under the right parent.
  struct TraceTask {
    uint64_t trace_id = 0;
    uint64_t parent_span = 0;
    int64_t enqueue_ns = 0;
  };
  TraceTask CaptureTrace() const;

  Ticket MakeTicket(std::chrono::milliseconds deadline) const;
  static bool TicketExpired(const Ticket& ticket);
  /// The shard options every serving state is built with.
  ShardOptions MakeShardOptions() const;
  /// The overload governor's per-query service-time estimate (seconds).
  /// Unsharded: the query EWMA. Sharded: the SLOWEST shard's EWMA — a
  /// query is only done when its slowest shard is, so a blended average
  /// would understate the drain rate whenever shards are imbalanced.
  /// Falls back to the query EWMA before any shard has reported.
  /// Requires stats_mutex_ held.
  double GovernorEwmaSecondsLocked() const;
  /// Overload-governor estimate of how long a query admitted as number
  /// `admitted` (pre-increment in_flight_ value) will wait before a worker
  /// picks it up: (queued ahead of it + 1) × EWMA service time / workers.
  /// 0 while a worker is free or before any query completed (no EWMA yet).
  double EstimatedQueueWaitSeconds(size_t admitted) const;
  /// Worker-side execution against the query's admission-time state.
  /// Deadline aborts become DeadlineExceeded statuses; anything else a
  /// search throws (bad_alloc, a faulty similarity backend) propagates
  /// through the future — the wrapper in Enqueue still releases the
  /// admission slot.
  Result Execute(const ServingState& state, const std::vector<TokenId>& query,
                 core::SearchParams params, const Ticket& ticket,
                 const CancelToken* cancel, const TraceTask& trace);
  /// Emits the rate-limited slow-query report (span tree + stats).
  void MaybeLogSlowQuery(const std::vector<TokenId>& query,
                         const core::SearchParams& params,
                         const core::SearchStats& stats,
                         double elapsed_seconds, uint64_t trace_id);
  std::future<Result> Enqueue(StatePtr state, std::vector<TokenId> query,
                              const core::SearchParams& params, Ticket ticket,
                              bool enforce_queue_bound,
                              std::shared_ptr<CancelToken> cancel = nullptr);

  EngineOptions options_;
  // The hot-swappable serving state; reads and the swap flip are brief
  // critical sections (never held across a search). (The no-session
  // serialization fallback lives inside each state's coordinator now.)
  mutable std::mutex state_mutex_;
  StatePtr state_;

  // Admitted (queued or running) queries, for the queue bound.
  std::atomic<size_t> in_flight_{0};

  // Steady-clock ns of the last emitted slow-query report (rate limiter).
  std::atomic<int64_t> last_slow_log_ns_{0};

  mutable std::mutex stats_mutex_;
  EngineCounters counters_;
  core::SearchStats search_stats_;  // merged per completed query
  LatencyRecorder latency_;
  // Per-shard accumulation, indexed by shard — sized to the REQUESTED
  // shard count (a snapshot with fewer sets than shards reports into the
  // low indexes only).
  std::vector<LatencyRecorder> shard_latency_;
  std::vector<core::SearchStats> shard_stats_;

  // The shard fan-out pool (created only at num_shards > 1): shards
  // 1..N-1 of every in-flight query run here while shard 0 runs on the
  // query's own worker, so it is sized (N-1) × num_threads to keep every
  // shard of every concurrently running query on a core. Declared BEFORE
  // pool_ (and destroyed after it): query workers block on shard futures,
  // so the shard pool must outlive them.
  std::unique_ptr<util::ThreadPool> shard_pool_;

  // LAST member: its destructor joins workers that still touch the stats
  // mutex and counters above, so they must outlive it.
  util::ThreadPool pool_;
};

}  // namespace koios::serve

#endif  // KOIOS_SERVE_QUERY_ENGINE_H_
