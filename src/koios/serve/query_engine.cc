#include "koios/serve/query_engine.h"

#include <algorithm>
#include <utility>

#include "koios/util/timer.h"

namespace koios::serve {

namespace {

/// A future already carrying a rejection status (Submit must never block
/// the caller, least of all to say "no").
std::future<QueryEngine::Result> RejectedFuture(util::Status status) {
  std::promise<QueryEngine::Result> promise;
  promise.set_value(QueryEngine::Result(std::move(status)));
  return promise.get_future();
}

}  // namespace

QueryEngine::QueryEngine(const index::SetCollection* sets,
                         sim::SimilarityIndex* index,
                         const EngineOptions& options)
    : sets_(sets),
      index_(index),
      options_(options),
      searcher_(sets, index, options.searcher),
      sessions_supported_(index->NewSession() != nullptr),
      pool_(std::max<size_t>(1, options.num_threads)) {}

QueryEngine::QueryEngine(std::shared_ptr<const Snapshot> snapshot,
                         const EngineOptions& options)
    : QueryEngine(&snapshot->sets(), snapshot->index(), options) {
  snapshot_ = std::move(snapshot);
}

QueryEngine::~QueryEngine() = default;  // pool_ drains admitted queries

QueryEngine::Ticket QueryEngine::MakeTicket(
    std::chrono::milliseconds deadline) const {
  Ticket ticket;
  if (deadline.count() > 0) {
    ticket.deadline = std::chrono::steady_clock::now() + deadline;
    ticket.has_deadline = true;
  }
  return ticket;
}

std::future<QueryEngine::Result> QueryEngine::Submit(
    std::vector<TokenId> query, const core::SearchParams& params) {
  return Enqueue(std::move(query), params, MakeTicket(options_.default_deadline),
                 /*enforce_queue_bound=*/true);
}

std::future<QueryEngine::Result> QueryEngine::Submit(
    std::vector<TokenId> query, const core::SearchParams& params,
    std::chrono::milliseconds deadline) {
  return Enqueue(std::move(query), params, MakeTicket(deadline),
                 /*enforce_queue_bound=*/true);
}

std::future<QueryEngine::Result> QueryEngine::Enqueue(
    std::vector<TokenId> query, const core::SearchParams& params,
    Ticket ticket, bool enforce_queue_bound) {
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++counters_.submitted;
  }
  // fetch_add-then-check keeps the bound exact under concurrent submitters
  // (a plain load+add would let two of them both slip past the last slot).
  const size_t admitted = in_flight_.fetch_add(1, std::memory_order_acq_rel);
  if (enforce_queue_bound &&
      admitted >= pool_.num_threads() + options_.max_queue) {
    in_flight_.fetch_sub(1, std::memory_order_acq_rel);
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++counters_.rejected_queue_full;
    }
    return RejectedFuture(util::Status::ResourceExhausted(
        "query queue full (" + std::to_string(options_.max_queue) +
        " waiting + " + std::to_string(pool_.num_threads()) + " running)"));
  }
  return pool_.Submit(
      [this, query = std::move(query), params, ticket]() -> Result {
        // The slot must be released on EVERY exit — Execute absorbs
        // deadline aborts, but an unexpected exception (bad_alloc, a
        // faulty similarity backend) propagates into the future, and a
        // leaked slot would erode admission capacity permanently.
        struct SlotRelease {
          std::atomic<size_t>* in_flight;
          ~SlotRelease() { in_flight->fetch_sub(1, std::memory_order_acq_rel); }
        } release{&in_flight_};
        return Execute(query, params, ticket);
      });
}

QueryEngine::Result QueryEngine::Execute(const std::vector<TokenId>& query,
                                         core::SearchParams params,
                                         const Ticket& ticket) {
  // Engine policy: intra-query parallelism off (see the header comment) —
  // the query runs single-threaded in inline-pipelined mode; concurrency
  // comes from the other workers.
  params.num_threads = 1;

  core::SearchContext ctx;
  if (ticket.has_deadline) ctx.set_deadline(ticket.deadline);
  try {
    ctx.CheckCancelled();  // expired while queued: reject without running
    util::WallTimer timer;
    core::SearchResult result;
    if (sessions_supported_) {
      // Fresh per-query probe session over the shared cursor cache: the
      // only per-query state is a position table, so creation is cheap and
      // any number of Executes run concurrently.
      std::unique_ptr<sim::SimilarityIndex> session = index_->NewSession();
      result = searcher_.Search(query, params, session.get(), &ctx);
    } else {
      // No session support: correctness first — one query at a time.
      std::lock_guard<std::mutex> lock(no_session_fallback_mutex_);
      result = searcher_.Search(query, params, index_, &ctx);
    }
    const double elapsed = timer.ElapsedSeconds();
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++counters_.completed;
      latency_.Record(elapsed);
    }
    return result;
  } catch (const core::SearchAborted&) {
    // Clean rejection: the phases unwound through the poison-safe shutdown
    // machinery; nothing partial escapes.
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++counters_.deadline_exceeded;
    return Result(util::Status::DeadlineExceeded(
        "query deadline elapsed; partial results discarded"));
  }
}

std::vector<QueryEngine::Result> QueryEngine::SearchMany(
    const std::vector<std::vector<TokenId>>& queries,
    const core::SearchParams& params) {
  // Deduplicate the batch's tokens and pay each (token, α) cursor build
  // once, fanned across the engine pool, BEFORE any query runs. Queries
  // then find their cursors hot in the shared cache (counted as hits).
  std::vector<TokenId> tokens;
  for (const auto& query : queries) {
    tokens.insert(tokens.end(), query.begin(), query.end());
  }
  std::sort(tokens.begin(), tokens.end());
  tokens.erase(std::unique(tokens.begin(), tokens.end()), tokens.end());
  if (sessions_supported_ && !tokens.empty()) {
    std::unique_ptr<sim::SimilarityIndex> session = index_->NewSession();
    session->set_thread_pool(&pool_);
    session->Prewarm(tokens, params.alpha);
  }

  // The batch bypasses the rejection bound (the caller is synchronous, so
  // the work is bounded by them) but still occupies in-flight slots — see
  // the header contract.
  const Ticket ticket = MakeTicket(options_.default_deadline);
  std::vector<std::future<Result>> futures;
  futures.reserve(queries.size());
  for (const auto& query : queries) {
    futures.push_back(
        Enqueue(query, params, ticket, /*enforce_queue_bound=*/false));
  }
  std::vector<Result> results;
  results.reserve(queries.size());
  for (auto& future : futures) results.push_back(future.get());
  return results;
}

EngineCounters QueryEngine::counters() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return counters_;
}

LatencyRecorder QueryEngine::latency() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return latency_;
}

}  // namespace koios::serve
