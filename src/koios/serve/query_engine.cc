#include "koios/serve/query_engine.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <span>
#include <utility>

#include <cstdio>

#include "koios/sim/batched_neighbor_index.h"
#include "koios/util/fault_injector.h"
#include "koios/util/timer.h"
#include "koios/util/trace_recorder.h"

namespace koios::serve {

namespace {

/// A future already carrying a rejection status (Submit must never block
/// the caller, least of all to say "no").
std::future<QueryEngine::Result> RejectedFuture(util::Status status) {
  std::promise<QueryEngine::Result> promise;
  promise.set_value(QueryEngine::Result(std::move(status)));
  return promise.get_future();
}

/// Retry hint in whole milliseconds; never 0 for a positive wait (a 0 hint
/// reads as "no hint" on the Status).
int64_t HintMs(double wait_seconds) {
  return std::max<int64_t>(1, std::llround(wait_seconds * 1e3));
}

}  // namespace

ShardOptions QueryEngine::MakeShardOptions() const {
  ShardOptions shard_options;
  shard_options.num_shards = std::max<size_t>(1, options_.num_shards);
  shard_options.theta_exchange = options_.shard_theta_exchange;
  shard_options.searcher = options_.searcher;
  return shard_options;
}

QueryEngine::StatePtr QueryEngine::MakeState(
    std::shared_ptr<const Snapshot> snapshot, const index::SetCollection* sets,
    sim::SimilarityIndex* index) const {
  auto state = std::make_shared<ServingState>(std::move(snapshot), sets, index,
                                              MakeShardOptions());
  if (options_.cursor_cache_bytes > 0) {
    if (auto* cache = dynamic_cast<sim::BatchedNeighborIndex*>(index)) {
      cache->SetCursorCacheCapacity(options_.cursor_cache_bytes);
    }
  }
  return state;
}

QueryEngine::StatePtr QueryEngine::CurrentState() const {
  std::lock_guard<std::mutex> lock(state_mutex_);
  return state_;
}

namespace {

/// Shard fan-out pool: shards 1..N-1 of up to num_threads concurrent
/// queries, each a single-threaded leaf task. Null at N = 1 — the fast
/// path never pays for threads it cannot use.
std::unique_ptr<util::ThreadPool> MakeShardPool(const EngineOptions& options) {
  if (options.num_shards <= 1) return nullptr;
  return std::make_unique<util::ThreadPool>(
      (options.num_shards - 1) * std::max<size_t>(1, options.num_threads));
}

}  // namespace

QueryEngine::QueryEngine(const index::SetCollection* sets,
                         sim::SimilarityIndex* index,
                         const EngineOptions& options)
    : options_(options),
      state_(MakeState(nullptr, sets, index)),
      shard_latency_(std::max<size_t>(1, options.num_shards)),
      shard_stats_(std::max<size_t>(1, options.num_shards)),
      shard_pool_(MakeShardPool(options)),
      pool_(std::max<size_t>(1, options.num_threads)) {}

QueryEngine::QueryEngine(std::shared_ptr<const Snapshot> snapshot,
                         const EngineOptions& options)
    : options_(options),
      shard_latency_(std::max<size_t>(1, options.num_shards)),
      shard_stats_(std::max<size_t>(1, options.num_shards)),
      shard_pool_(MakeShardPool(options)),
      pool_(std::max<size_t>(1, options.num_threads)) {
  const Snapshot* raw = snapshot.get();
  state_ = MakeState(std::move(snapshot), &raw->sets(), raw->index());
}

QueryEngine::~QueryEngine() = default;  // pool_ drains admitted queries

void QueryEngine::SwapSnapshot(std::shared_ptr<const Snapshot> snapshot) {
  // An engine always serves SOMETHING; swapping to "no snapshot" is a
  // caller bug, not a supported transition (snapshot() being null is only
  // the borrowed-parts construction mode).
  assert(snapshot != nullptr);
  if (snapshot == nullptr) return;
  // Build the replacement state (partition inverted indexes, session
  // probe, cache budget) BEFORE taking the lock: in-flight and newly
  // admitted queries keep serving against the current state while the
  // expensive part runs; only the pointer flip itself is serialized.
  const Snapshot* raw = snapshot.get();
  StatePtr next = MakeState(std::move(snapshot), &raw->sets(), raw->index());
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    state_ = std::move(next);
  }
  std::lock_guard<std::mutex> lock(stats_mutex_);
  ++counters_.swaps_completed;
}

util::Status QueryEngine::TrySwapFromRepository(const std::string& path,
                                                const SnapshotOptions& options) {
  auto record_failure = [this](util::Status status) {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++counters_.swap_failures;
    return status;
  };
  // Load first, flip last: until the very end of this function the engine
  // is still serving the old state, so every failure below degrades to
  // "the reload did not happen" rather than "serving stopped".
  //
  // Eager mmap verification regardless of what the caller passed: a lazy
  // v4 load defers bulk-arena checksums to first touch, which for a LIVE
  // swap would mean corruption surfacing mid-query on the new snapshot.
  // A swap must adopt only a fully verified file or keep the old one.
  SnapshotOptions verified_options = options;
  verified_options.mmap_verify = true;
  util::StatusOr<std::shared_ptr<const Snapshot>> loaded = [&] {
    // Spans only under an ambient trace — the watcher starts one per swap.
    KOIOS_TRACE_SPAN("swap.load");
    return Snapshot::Load(path, verified_options);
  }();
  if (!loaded.ok()) return record_failure(loaded.status());
  // Chaos seam: a fault between the (successful) load and the flip models
  // a state build blowing up — the swap must fail closed.
  if (KOIOS_FAULTPOINT("engine.swap.build")) {
    return record_failure(util::Status::Internal(
        "injected snapshot state build fault (engine.swap.build)"));
  }
  std::shared_ptr<const Snapshot> snapshot = std::move(loaded).value();
  const Snapshot* raw = snapshot.get();
  StatePtr next;
  try {
    KOIOS_TRACE_SPAN("swap.state_build");
    next = MakeState(std::move(snapshot), &raw->sets(), raw->index());
  } catch (const std::exception& e) {
    return record_failure(util::Status::Internal(
        std::string("snapshot state build failed: ") + e.what()));
  }
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    state_ = std::move(next);
  }
  std::lock_guard<std::mutex> lock(stats_mutex_);
  ++counters_.swaps_completed;
  return util::Status::OK();
}

std::shared_ptr<const Snapshot> QueryEngine::snapshot() const {
  return CurrentState()->snapshot;
}

std::shared_ptr<const core::KoiosSearcher> QueryEngine::searcher() const {
  StatePtr state = CurrentState();
  const core::KoiosSearcher* ptr = &state->coordinator.shard(0).searcher();
  return std::shared_ptr<const core::KoiosSearcher>(std::move(state), ptr);
}

size_t QueryEngine::num_shards() const {
  return CurrentState()->coordinator.num_shards();
}

QueryEngine::TraceTask QueryEngine::CaptureTrace() const {
  TraceTask trace;
  if (!util::TraceRecorder::Enabled()) return trace;
  util::TraceRecorder& rec = util::TraceRecorder::Instance();
  const util::TraceRecorder::ThreadContext ambient =
      util::TraceRecorder::Current();
  // A submitter with an ambient trace (the net edge's request trace, or a
  // batch) is joined; a direct caller gets its own sampling decision.
  trace.trace_id =
      ambient.trace_id != 0 ? ambient.trace_id : rec.StartTrace();
  trace.parent_span = ambient.parent_span;
  if (trace.trace_id != 0) trace.enqueue_ns = rec.NowNs();
  return trace;
}

QueryEngine::Ticket QueryEngine::MakeTicket(
    std::chrono::milliseconds deadline) const {
  Ticket ticket;
  if (deadline.count() > 0) {
    ticket.deadline = std::chrono::steady_clock::now() + deadline;
    ticket.has_deadline = true;
  }
  return ticket;
}

bool QueryEngine::TicketExpired(const Ticket& ticket) {
  return ticket.has_deadline &&
         std::chrono::steady_clock::now() >= ticket.deadline;
}

double QueryEngine::GovernorEwmaSecondsLocked() const {
  if (options_.num_shards <= 1) return latency_.EwmaSeconds();
  double slowest = 0.0;
  for (const LatencyRecorder& recorder : shard_latency_) {
    slowest = std::max(slowest, recorder.EwmaSeconds());
  }
  return slowest > 0.0 ? slowest : latency_.EwmaSeconds();
}

double QueryEngine::EstimatedQueueWaitSeconds(size_t admitted) const {
  const size_t workers = pool_.num_threads();
  if (admitted < workers) return 0.0;  // a worker is (about to be) free
  double ewma = 0.0;
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ewma = GovernorEwmaSecondsLocked();
  }
  if (ewma <= 0.0) return 0.0;  // nothing completed yet: no estimate
  // `admitted - workers` queries are queued ahead of this one; the pool
  // drains `workers` of them per EWMA period, and the query itself is the
  // +1 (its own wait ends when it STARTS, but the caller's retry hint
  // should cover a full drain-and-run).
  return static_cast<double>(admitted - workers + 1) * ewma /
         static_cast<double>(workers);
}

std::future<QueryEngine::Result> QueryEngine::Submit(
    std::vector<TokenId> query, const core::SearchParams& params) {
  return Enqueue(CurrentState(), std::move(query), params,
                 MakeTicket(options_.default_deadline),
                 /*enforce_queue_bound=*/true);
}

std::future<QueryEngine::Result> QueryEngine::Submit(
    std::vector<TokenId> query, const core::SearchParams& params,
    std::chrono::milliseconds deadline) {
  return Enqueue(CurrentState(), std::move(query), params, MakeTicket(deadline),
                 /*enforce_queue_bound=*/true);
}

QueryEngine::Submission QueryEngine::SubmitCancellable(
    std::vector<TokenId> query, const core::SearchParams& params,
    std::chrono::milliseconds deadline) {
  Submission submission;
  submission.cancel = std::make_shared<CancelToken>();
  submission.future =
      Enqueue(CurrentState(), std::move(query), params, MakeTicket(deadline),
              /*enforce_queue_bound=*/true, submission.cancel);
  return submission;
}

std::future<QueryEngine::Result> QueryEngine::Enqueue(
    StatePtr state, std::vector<TokenId> query,
    const core::SearchParams& params, Ticket ticket, bool enforce_queue_bound,
    std::shared_ptr<CancelToken> cancel) {
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++counters_.submitted;
  }
  // fetch_add-then-check keeps the bound exact under concurrent submitters
  // (a plain load+add would let two of them both slip past the last slot).
  const size_t admitted = in_flight_.fetch_add(1, std::memory_order_acq_rel);
  if (enforce_queue_bound &&
      admitted >= pool_.num_threads() + options_.max_queue) {
    in_flight_.fetch_sub(1, std::memory_order_acq_rel);
    // How long until the engine has drained enough to admit a retry: the
    // wait a query at the BACK of the full queue would see.
    const double wait = EstimatedQueueWaitSeconds(admitted);
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++counters_.rejected_queue_full;
    }
    return RejectedFuture(
        util::Status::ResourceExhausted(
            "query queue full (" + std::to_string(options_.max_queue) +
            " waiting + " + std::to_string(pool_.num_threads()) + " running)")
            .WithRetryAfterMs(HintMs(wait)));
  }
  if (enforce_queue_bound && ticket.has_deadline) {
    // Fail fast: if the estimated queue wait alone already eats the whole
    // deadline budget, admitting the query only spends a slot to time out
    // later — reject now, with the wait as the backoff hint. Conservative
    // by construction: with no EWMA yet (cold engine) or free workers the
    // estimate is 0 and nothing is ever rejected here.
    const double wait = EstimatedQueueWaitSeconds(admitted);
    if (wait > 0.0) {
      const double budget =
          std::chrono::duration<double>(ticket.deadline -
                                        std::chrono::steady_clock::now())
              .count();
      if (wait > budget) {
        in_flight_.fetch_sub(1, std::memory_order_acq_rel);
        {
          std::lock_guard<std::mutex> lock(stats_mutex_);
          ++counters_.rejected_wait_exceeds_deadline;
        }
        return RejectedFuture(
            util::Status::DeadlineExceeded(
                "estimated queue wait exceeds the query deadline")
                .WithRetryAfterMs(HintMs(wait)));
      }
    }
  }
  const TraceTask trace = CaptureTrace();
  // The task pins `state`: its snapshot/searcher/index stay alive and
  // untouched until this query completes, no matter how many hot swaps
  // happen while it waits in the queue.
  return pool_.Submit(
      [this, state = std::move(state), query = std::move(query), params,
       ticket, cancel = std::move(cancel), trace]() -> Result {
        // The slot must be released on EVERY exit — Execute absorbs
        // deadline aborts, but an unexpected exception (bad_alloc, a
        // faulty similarity backend) propagates into the future, and a
        // leaked slot would erode admission capacity permanently.
        struct SlotRelease {
          std::atomic<size_t>* in_flight;
          ~SlotRelease() { in_flight->fetch_sub(1, std::memory_order_acq_rel); }
        } release{&in_flight_};
        return Execute(*state, query, params, ticket, cancel.get(), trace);
      });
}

QueryEngine::Result QueryEngine::Execute(const ServingState& state,
                                         const std::vector<TokenId>& query,
                                         core::SearchParams params,
                                         const Ticket& ticket,
                                         const CancelToken* cancel,
                                         const TraceTask& trace) {
  // Engine policy: intra-query parallelism off (see the header comment) —
  // the query runs single-threaded in inline-pipelined mode; concurrency
  // comes from the other workers.
  params.num_threads = 1;

  // Hop the submitter's trace onto this worker; the admission wait (from
  // Enqueue to pickup) is a span only measurable after the fact.
  util::TraceAdopt adopt(trace.trace_id, trace.parent_span);
  if (trace.trace_id != 0) {
    util::TraceRecorder& rec = util::TraceRecorder::Instance();
    rec.RecordManualSpan("serve.queue_wait", trace.trace_id, 0,
                         trace.parent_span, trace.enqueue_ns, rec.NowNs());
  }

  ShardCoordinator::QueryOptions qopts;
  qopts.has_deadline = ticket.has_deadline;
  qopts.deadline = ticket.deadline;
  qopts.cancel_flag = cancel != nullptr ? cancel->flag() : nullptr;
  try {
    // Expired or cancelled while queued: reject without running.
    if ((cancel != nullptr && cancel->cancelled()) || TicketExpired(ticket)) {
      throw core::SearchAborted{};
    }
    util::WallTimer timer;
    core::SearchResult result;
    ShardCoordinator::QueryReport report;
    {
      util::TraceSpan execute_span("serve.execute");
      if (execute_span.active() && ticket.has_deadline) {
        const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
            ticket.deadline - std::chrono::steady_clock::now());
        execute_span.set_arg("deadline_ms_left",
                             left.count() > 0 ? left.count() : 0);
      }
      // Shard tasks hop threads: hand them this thread's ambient trace so
      // their shard.execute spans parent under serve.execute.
      const util::TraceRecorder::ThreadContext ambient =
          util::TraceRecorder::Current();
      qopts.trace_id = ambient.trace_id;
      qopts.trace_parent = ambient.parent_span;
      // The coordinator owns session creation (one per shard) and the
      // no-session serialization fallback; at num_shards = 1 this is
      // exactly the pre-shard execution path.
      result = state.coordinator.Execute(query, params, qopts,
                                         shard_pool_.get(), &report);
    }
    const double elapsed = timer.ElapsedSeconds();
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++counters_.completed;
      search_stats_.Merge(result.stats);
      latency_.Record(elapsed);
      const size_t shards =
          std::min(report.shard_seconds.size(), shard_latency_.size());
      for (size_t i = 0; i < shards; ++i) {
        shard_latency_[i].Record(report.shard_seconds[i]);
        shard_stats_[i].Merge(report.shard_stats[i]);
      }
    }
    MaybeLogSlowQuery(query, params, result.stats, elapsed, trace.trace_id);
    return result;
  } catch (const core::SearchAborted&) {
    // Clean rejection: the phases unwound through the poison-safe shutdown
    // machinery; nothing partial escapes. A fired token means the CALLER
    // walked away (client disconnect) — kCancelled, no retry hint, there
    // is nobody to retry. Otherwise the deadline elapsed; the retry hint
    // is one EWMA service period — "come back when a typical query would
    // have fit".
    if (cancel != nullptr && cancel->cancelled()) {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++counters_.cancelled;
      return Result(util::Status::Cancelled(
          "query cancelled by the caller; partial results discarded"));
    }
    double ewma = 0.0;
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++counters_.deadline_exceeded;
      ewma = latency_.EwmaSeconds();
    }
    auto status = util::Status::DeadlineExceeded(
        "query deadline elapsed; partial results discarded");
    if (ewma > 0.0) return Result(std::move(status).WithRetryAfterMs(HintMs(ewma)));
    return Result(std::move(status));
  }
}

void QueryEngine::MaybeLogSlowQuery(const std::vector<TokenId>& query,
                                    const core::SearchParams& params,
                                    const core::SearchStats& stats,
                                    double elapsed_seconds,
                                    uint64_t trace_id) {
  if (options_.slow_query_threshold.count() <= 0) return;
  const double threshold_seconds =
      std::chrono::duration<double>(options_.slow_query_threshold).count();
  if (elapsed_seconds < threshold_seconds) return;
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++counters_.slow_queries;
  }
  // Rate limit: one report per interval, claimed with a CAS so concurrent
  // slow finishers elect exactly one reporter.
  const int64_t interval_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          options_.slow_query_log_interval)
          .count();
  const int64_t now_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count();
  int64_t last = last_slow_log_ns_.load(std::memory_order_relaxed);
  if (last != 0 && now_ns - last < interval_ns) return;
  if (!last_slow_log_ns_.compare_exchange_strong(last, now_ns,
                                                 std::memory_order_relaxed)) {
    return;
  }

  char header[160];
  std::snprintf(header, sizeof(header),
                "slow query: %.1f ms (threshold %lld ms), %zu tokens, k=%zu, "
                "alpha=%.3f\n",
                elapsed_seconds * 1e3,
                static_cast<long long>(options_.slow_query_threshold.count()),
                query.size(), params.k, static_cast<double>(params.alpha));
  std::string report = header;
  if (trace_id != 0) {
    report += util::TraceRecorder::Instance().RenderSpanTree(trace_id);
  } else {
    report +=
        "(no span tree: query was not sampled by the trace recorder)\n";
  }
  report += stats.ToString();
  if (options_.slow_query_sink) {
    options_.slow_query_sink(report);
  } else {
    std::fprintf(stderr, "%s", report.c_str());
  }
}

std::vector<QueryEngine::Result> QueryEngine::SearchMany(
    const std::vector<std::vector<TokenId>>& queries,
    const core::SearchParams& params) {
  // The deadline ticket exists BEFORE any batch work: the prewarm below
  // runs on the queries' clock. (It used to be made after the prewarm, so
  // a stalled prewarm delayed every query unboundedly while their
  // deadlines had not even started — the worst of both.)
  const Ticket ticket = MakeTicket(options_.default_deadline);
  // One state for the whole batch: the prewarmed cache and the executed
  // queries must be the same index even if a swap lands mid-batch.
  const StatePtr state = CurrentState();

  // One sampling decision per batch: when it hits, the shared prewarm and
  // every member query record into the same trace (the queries join the
  // ambient batch trace at Enqueue).
  const uint64_t batch_trace = util::TraceRecorder::Enabled()
                                   ? util::TraceRecorder::Instance().StartTrace()
                                   : 0;
  util::TraceAdopt batch_adopt(batch_trace, 0);

  // Deduplicate the batch's tokens and pay each (token, α) cursor build
  // once, fanned across the engine pool, BEFORE any query runs. Queries
  // then find their cursors hot in the shared cache (counted as hits).
  std::vector<TokenId> tokens;
  for (const auto& query : queries) {
    tokens.insert(tokens.end(), query.begin(), query.end());
  }
  std::sort(tokens.begin(), tokens.end());
  tokens.erase(std::unique(tokens.begin(), tokens.end()), tokens.end());
  if (state->coordinator.sessions_supported() && !tokens.empty()) {
    KOIOS_TRACE_SPAN_ARG("serve.prewarm", "tokens", tokens.size());
    std::unique_ptr<sim::SimilarityIndex> session = state->index->NewSession();
    session->set_thread_pool(&pool_);
    // Chunked fan-out with a deadline poll between chunks: a stalled or
    // oversized prewarm stops warming the moment the batch deadline
    // expires, and the queries then surface clean DeadlineExceeded
    // rejections instead of silently blowing their budget warming cursors
    // nobody will get to use. Each chunk still fans across the pool.
    constexpr size_t kPrewarmPollChunk = 64;
    const std::span<const TokenId> all(tokens);
    for (size_t i = 0; i < tokens.size() && !TicketExpired(ticket);
         i += kPrewarmPollChunk) {
      session->Prewarm(
          all.subspan(i, std::min(kPrewarmPollChunk, tokens.size() - i)),
          params.alpha);
    }
  }

  // The batch bypasses the rejection bound (the caller is synchronous, so
  // the work is bounded by them) but still occupies in-flight slots — see
  // the header contract.
  std::vector<std::future<Result>> futures;
  futures.reserve(queries.size());
  for (const auto& query : queries) {
    futures.push_back(
        Enqueue(state, query, params, ticket, /*enforce_queue_bound=*/false));
  }
  std::vector<Result> results;
  results.reserve(queries.size());
  for (auto& future : futures) results.push_back(future.get());
  return results;
}

EngineCounters QueryEngine::counters() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return counters_;
}

core::SearchStats QueryEngine::search_stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return search_stats_;
}

LatencyRecorder QueryEngine::latency() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return latency_;
}

LatencyRecorder QueryEngine::shard_latency(size_t shard) const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  if (shard >= shard_latency_.size()) return LatencyRecorder{};
  return shard_latency_[shard];
}

core::SearchStats QueryEngine::shard_search_stats(size_t shard) const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  if (shard >= shard_stats_.size()) return core::SearchStats{};
  return shard_stats_[shard];
}

double QueryEngine::LatencyEwmaSeconds() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return latency_.EwmaSeconds();
}

double QueryEngine::EstimatedQueueWaitSeconds() const {
  return EstimatedQueueWaitSeconds(in_flight_.load(std::memory_order_acquire));
}

}  // namespace koios::serve
