// ShardEngine — one shard of a sharded serving engine: an immutable
// KoiosSearcher pinned over a contiguous slice of the set collection,
// probing the REPLICATED neighbor index (dict/embeddings/index are shared
// across shards; only the sets and the postings derived from them are
// partitioned — see io/shard_slice.h for the split rationale).
//
// A shard executes a query exactly like the single-shard engine does —
// same phases, same exactness machinery — over 1/N of the corpus, and
// rebases its shard-local result ids into global SetIds (global = base +
// local; contiguous slicing makes this one addition). Cross-shard work
// sharing happens through the SearchContext the caller passes in: the
// ShardCoordinator attaches one query-global θlb to every shard's
// context, so each shard's refinement prunes against the best bound ANY
// shard has proven so far (paper §VI partition pruning, lifted one
// level).
//
// Immutability/pinning: the engine holds raw pointers into its slice and
// into the shared index, and its searcher holds a pointer back into the
// engine's own slice storage — a constructed ShardEngine must never move.
// The coordinator stores them behind unique_ptr for exactly this reason.
#ifndef KOIOS_SERVE_SHARD_ENGINE_H_
#define KOIOS_SERVE_SHARD_ENGINE_H_

#include <span>

#include "koios/core/search_types.h"
#include "koios/core/searcher.h"
#include "koios/index/set_collection.h"
#include "koios/io/shard_slice.h"
#include "koios/sim/similarity.h"

namespace koios::serve {

class ShardEngine {
 public:
  /// Full-collection shard (the N=1 fast path): no slice is materialized,
  /// the searcher runs over `sets` directly and result ids are already
  /// global. `sets` and `index` must outlive the engine.
  ShardEngine(const index::SetCollection* sets, sim::SimilarityIndex* index,
              const core::SearcherOptions& options)
      : base_(0), sets_(sets), searcher_(sets, index, options) {}

  /// Slice shard: takes ownership of the slice (the searcher is built
  /// over slice.sets, which borrows the PARENT collection's token arena —
  /// the caller must keep whatever owns the parent alive).
  ShardEngine(io::ShardSlice slice, sim::SimilarityIndex* index,
              const core::SearcherOptions& options)
      : slice_(std::move(slice)),
        base_(slice_.base),
        sets_(&slice_.sets),
        searcher_(&slice_.sets, index, options) {}

  ShardEngine(const ShardEngine&) = delete;
  ShardEngine& operator=(const ShardEngine&) = delete;

  /// Global SetId of this shard's local id 0.
  SetId base() const { return base_; }
  size_t set_count() const { return sets_->size(); }
  const core::KoiosSearcher& searcher() const { return searcher_; }

  /// Runs the query on this shard through `index` (the caller's per-query
  /// probe session, or the shared index under external serialization) and
  /// `ctx` (deadline / cancellation / the coordinator-attached shared
  /// θlb), returning results with GLOBAL set ids. Reentrant with distinct
  /// sessions and contexts, like KoiosSearcher::Search. Throws
  /// SearchAborted when ctx expires.
  core::SearchResult Execute(std::span<const TokenId> query,
                             const core::SearchParams& params,
                             sim::SimilarityIndex* index,
                             core::SearchContext* ctx) const {
    core::SearchResult result = searcher_.Search(query, params, index, ctx);
    if (base_ != 0) {
      for (core::ResultEntry& entry : result.topk) entry.set += base_;
    }
    return result;
  }

 private:
  io::ShardSlice slice_;  // empty in full-collection mode
  SetId base_;
  const index::SetCollection* sets_;  // &slice_.sets or the full collection
  core::KoiosSearcher searcher_;
};

}  // namespace koios::serve

#endif  // KOIOS_SERVE_SHARD_ENGINE_H_
