#include "koios/serve/engine_metrics.h"

#include "koios/sim/batched_neighbor_index.h"
#include "koios/util/trace_recorder.h"

namespace koios::serve {

namespace {

struct EngineMetrics {
  // EngineCounters mirrors (monotone sources -> counters).
  util::Counter* submitted;
  util::Counter* completed;
  util::Counter* rejected_queue_full;
  util::Counter* deadline_exceeded;
  util::Counter* rejected_wait_exceeds_deadline;
  util::Counter* cancelled;
  util::Counter* slow_queries;
  util::Counter* swaps_completed;
  util::Counter* swap_failures;
  // Overload governor.
  util::Gauge* latency_ewma_seconds;
  util::Gauge* estimated_queue_wait_seconds;
  // LatencyRecorder percentiles.
  util::Gauge* latency_p50;
  util::Gauge* latency_p95;
  util::Gauge* latency_p99;
  util::Gauge* latency_max;
  // Aggregated SearchStats (monotone totals over completed queries).
  util::Counter* stream_tuples;
  util::Counter* stream_tuples_produced;
  util::Counter* candidates;
  util::Counter* iub_filtered;
  util::Counter* no_em_skipped;
  util::Counter* em_computed;
  util::Counter* em_early_terminated;
  // Cursor cache (of the CURRENT serving state's index).
  util::Counter* cache_hits;
  util::Counter* cache_misses;
  util::Counter* cache_duplicate_builds;
  util::Counter* cache_evictions;
  util::Gauge* cache_cursors;
  util::Gauge* cache_bytes;
  util::Gauge* cache_capacity_bytes;
};

}  // namespace

void RegisterEngineMetrics(util::MetricRegistry* registry,
                           const QueryEngine* engine) {
  RegisterEngineMetrics(registry,
                        [engine]() -> std::shared_ptr<const QueryEngine> {
                          // Non-owning alias: the caller guarantees the
                          // engine outlives the registry's renders.
                          return std::shared_ptr<const QueryEngine>(
                              std::shared_ptr<const QueryEngine>(), engine);
                        });
}

void RegisterEngineMetrics(
    util::MetricRegistry* registry,
    std::function<std::shared_ptr<const QueryEngine>()> resolve) {
  EngineMetrics m;
  m.submitted = registry->RegisterCounter(
      "koios_queries_submitted_total", "Queries that reached admission");
  m.completed = registry->RegisterCounter(
      "koios_queries_completed_total", "Queries answered successfully");
  m.rejected_queue_full =
      registry->RegisterCounter("koios_queries_rejected_queue_full_total",
                                "Admission rejections: bounded queue full");
  m.deadline_exceeded = registry->RegisterCounter(
      "koios_queries_deadline_exceeded_total",
      "Queries that expired waiting or mid-execution");
  m.rejected_wait_exceeds_deadline = registry->RegisterCounter(
      "koios_queries_rejected_wait_exceeds_deadline_total",
      "Fail-fast admissions: estimated queue wait exceeded the deadline "
      "budget (never fires on a cold engine)");
  m.cancelled = registry->RegisterCounter(
      "koios_queries_cancelled_total",
      "Queries aborted by a fired CancelToken (client disconnect)");
  m.slow_queries = registry->RegisterCounter(
      "koios_slow_queries_total",
      "Queries over the slow-query threshold (counted even when the log "
      "line itself was rate-limited away)");
  m.swaps_completed = registry->RegisterCounter(
      "koios_snapshot_swaps_completed_total", "Snapshot hot-swaps that landed");
  m.swap_failures = registry->RegisterCounter(
      "koios_snapshot_swap_failures_total",
      "Rejected reloads (corrupt or unloadable repository; engine kept "
      "serving the old snapshot)");
  m.latency_ewma_seconds = registry->RegisterGauge(
      "koios_query_latency_ewma_seconds",
      "EWMA service time; the overload governor's wait estimator");
  m.estimated_queue_wait_seconds = registry->RegisterGauge(
      "koios_estimated_queue_wait_seconds",
      "Governor estimate of a new query's queue wait (0 on a cold engine)");
  m.latency_p50 = registry->RegisterGauge(
      "koios_query_latency_p50_seconds",
      "Median end-to-end query latency over the recorder window");
  m.latency_p95 = registry->RegisterGauge(
      "koios_query_latency_p95_seconds",
      "95th-percentile query latency over the recorder window");
  m.latency_p99 = registry->RegisterGauge(
      "koios_query_latency_p99_seconds",
      "99th-percentile query latency over the recorder window");
  m.latency_max = registry->RegisterGauge(
      "koios_query_latency_max_seconds",
      "Worst query latency over the recorder window (0 while empty)");
  m.stream_tuples = registry->RegisterCounter(
      "koios_stream_tuples_consumed_total",
      "Token-stream tuples consumed by refinement across queries");
  m.stream_tuples_produced =
      registry->RegisterCounter("koios_stream_tuples_produced_total",
                                "Token-stream tuples materialized");
  m.candidates = registry->RegisterCounter("koios_candidates_total",
                                           "Distinct candidate sets seen");
  m.iub_filtered = registry->RegisterCounter(
      "koios_iub_filtered_total", "Candidates pruned by the (i)UB filter");
  m.no_em_skipped = registry->RegisterCounter(
      "koios_no_em_skipped_total",
      "Results admitted by the No-EM filter without matching");
  m.em_computed = registry->RegisterCounter("koios_em_computed_total",
                                            "Full exact matchings computed");
  m.em_early_terminated =
      registry->RegisterCounter("koios_em_early_terminated_total",
                                "Hungarian runs cut by early termination");
  m.cache_hits = registry->RegisterCounter("koios_cursor_cache_hits_total",
                                           "Shared cursor cache hits");
  m.cache_misses = registry->RegisterCounter(
      "koios_cursor_cache_misses_total", "Shared cursor cache misses");
  m.cache_duplicate_builds =
      registry->RegisterCounter("koios_cursor_cache_duplicate_builds_total",
                                "Concurrent builders that raced and lost");
  m.cache_evictions = registry->RegisterCounter(
      "koios_cursor_cache_evictions_total",
      "Payloads dropped by the byte budget's CLOCK policy");
  m.cache_cursors = registry->RegisterGauge("koios_cursor_cache_cursors",
                                            "Currently cached cursors");
  m.cache_bytes = registry->RegisterGauge("koios_cursor_cache_bytes",
                                          "Bytes of cached cursor payloads");
  m.cache_capacity_bytes = registry->RegisterGauge(
      "koios_cursor_cache_capacity_bytes", "Configured budget (0 = unbounded)");

  registry->AddCollectionCallback([m, resolve = std::move(resolve)] {
    const std::shared_ptr<const QueryEngine> engine = resolve();
    if (engine == nullptr) return;  // not built yet: metrics stay at 0
    const EngineCounters counters = engine->counters();
    m.submitted->Set(counters.submitted);
    m.completed->Set(counters.completed);
    m.rejected_queue_full->Set(counters.rejected_queue_full);
    m.deadline_exceeded->Set(counters.deadline_exceeded);
    m.rejected_wait_exceeds_deadline->Set(
        counters.rejected_wait_exceeds_deadline);
    m.cancelled->Set(counters.cancelled);
    m.slow_queries->Set(counters.slow_queries);
    m.swaps_completed->Set(counters.swaps_completed);
    m.swap_failures->Set(counters.swap_failures);

    m.latency_ewma_seconds->Set(engine->LatencyEwmaSeconds());
    m.estimated_queue_wait_seconds->Set(engine->EstimatedQueueWaitSeconds());
    const LatencyRecorder latency = engine->latency();
    m.latency_p50->Set(latency.Percentile(50.0));
    m.latency_p95->Set(latency.Percentile(95.0));
    m.latency_p99->Set(latency.Percentile(99.0));
    m.latency_max->Set(latency.count() > 0 ? latency.Max() : 0.0);

    const core::SearchStats stats = engine->search_stats();
    m.stream_tuples->Set(stats.stream_tuples);
    m.stream_tuples_produced->Set(stats.stream_tuples_produced);
    m.candidates->Set(stats.candidates);
    m.iub_filtered->Set(stats.iub_filtered);
    m.no_em_skipped->Set(stats.no_em_skipped);
    m.em_computed->Set(stats.em_computed);
    m.em_early_terminated->Set(stats.em_early_terminated);

    // The CURRENT serving state's cursor cache: after a hot swap this is
    // the new index's cache (the old one dies with its last query). The
    // searcher() accessor pins the state while we read, exactly like an
    // in-flight query would.
    if (std::shared_ptr<const Snapshot> snapshot = engine->snapshot()) {
      if (const auto* cache = dynamic_cast<const sim::BatchedNeighborIndex*>(
              snapshot->index())) {
        const sim::CursorCacheStats stats = cache->cursor_cache_stats();
        m.cache_hits->Set(stats.hits);
        m.cache_misses->Set(stats.misses);
        m.cache_duplicate_builds->Set(stats.duplicate_builds);
        m.cache_evictions->Set(stats.evictions);
        m.cache_cursors->Set(static_cast<double>(stats.cursors));
        m.cache_bytes->Set(static_cast<double>(stats.bytes));
        m.cache_capacity_bytes->Set(static_cast<double>(stats.capacity_bytes));
      }
    }
  });

  // Per-shard series (sharded engines only; an unsharded engine emits
  // none — series count is the ACTUAL shard count, so dashboards see the
  // real topology). Registered lazily from the callback, same pattern as
  // the phase histograms below: a duplicate registration returns the
  // existing series, and each render overwrites with the authoritative
  // snapshot. The EWMA gauges are the overload governor's per-shard view
  // — the governor itself reads the SLOWEST of them, not a blend.
  registry->AddCollectionCallback([registry, resolve] {
    const std::shared_ptr<const QueryEngine> engine = resolve();
    if (engine == nullptr) return;
    const size_t shards = engine->num_shards();
    if (shards <= 1) return;
    for (size_t i = 0; i < shards; ++i) {
      const std::string label = std::to_string(i);
      util::Gauge* ewma = registry->RegisterGauge(
          util::LabeledMetricName("koios_shard_latency_ewma_seconds", "shard",
                                  label),
          "Per-shard EWMA execution time (governor reads the slowest)");
      util::Gauge* p99 = registry->RegisterGauge(
          util::LabeledMetricName("koios_shard_latency_p99_seconds", "shard",
                                  label),
          "Per-shard 99th-percentile execution time");
      util::Counter* queries = registry->RegisterCounter(
          util::LabeledMetricName("koios_shard_queries_total", "shard", label),
          "Shard executions completed (one per shard per query)");
      util::Counter* produced = registry->RegisterCounter(
          util::LabeledMetricName("koios_shard_stream_tuples_produced_total",
                                  "shard", label),
          "Token-stream tuples this shard's producer materialized (the "
          "θlb-exchange savings show up here)");
      const LatencyRecorder latency = engine->shard_latency(i);
      const core::SearchStats stats = engine->shard_search_stats(i);
      if (ewma != nullptr) ewma->Set(latency.EwmaSeconds());
      if (p99 != nullptr) p99->Set(latency.Percentile(99.0));
      if (queries != nullptr) queries->Set(latency.count());
      if (produced != nullptr) produced->Set(stats.stream_tuples_produced);
    }
  });

  // Per-phase span-time histograms. Phases appear dynamically as spans are
  // first recorded, so the labeled series are registered lazily from the
  // collection callback (callbacks run outside the registry lock, and a
  // duplicate registration returns the existing series). Each render
  // overwrites the series with the recorder's authoritative snapshot.
  registry->AddCollectionCallback([registry] {
    auto& rec = util::TraceRecorder::Instance();
    for (const util::TraceRecorder::PhaseSnapshot& phase :
         rec.PhaseHistograms()) {
      util::Histogram* hist = registry->RegisterHistogram(
          util::LabeledMetricName("koios_phase_seconds", "phase", phase.name),
          "Span wall time per pipeline phase (sampled queries only)",
          util::TraceRecorder::PhaseBucketBounds());
      if (hist != nullptr) hist->SetSnapshot(phase.buckets, phase.sum);
    }
  });
}

}  // namespace koios::serve
