#include "koios/serve/latency_recorder.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace koios::serve {

namespace {
constexpr double kEwmaAlpha = 0.2;
}  // namespace

void LatencyRecorder::Record(double seconds) {
  ewma_seconds_ = samples_.empty()
                      ? seconds
                      : kEwmaAlpha * seconds + (1.0 - kEwmaAlpha) * ewma_seconds_;
  samples_.push_back(seconds);
  sorted_ = false;
}

void LatencyRecorder::Merge(const LatencyRecorder& other) {
  if (other.samples_.empty()) return;
  // Count-weighted blend: a lossless sample-ordered replay is impossible
  // (the EWMA is order-sensitive and the merged orders interleave), so the
  // merged estimate weighs each side by how many samples shaped it.
  if (samples_.empty()) {
    ewma_seconds_ = other.ewma_seconds_;
  } else {
    const double n = static_cast<double>(samples_.size());
    const double m = static_cast<double>(other.samples_.size());
    ewma_seconds_ = (n * ewma_seconds_ + m * other.ewma_seconds_) / (n + m);
  }
  samples_.insert(samples_.end(), other.samples_.begin(),
                  other.samples_.end());
  sorted_ = false;
}

void LatencyRecorder::EnsureSorted() const {
  if (sorted_) return;
  std::sort(samples_.begin(), samples_.end());
  sorted_ = true;
}

double LatencyRecorder::Percentile(double p) const {
  if (samples_.empty()) return 0.0;
  EnsureSorted();
  if (p <= 0.0) return samples_.front();
  // Nearest-rank: the smallest sample with at least p% of the mass at or
  // below it. ceil(p/100 · n) as a 1-based rank, clamped.
  const double n = static_cast<double>(samples_.size());
  const size_t rank = static_cast<size_t>(std::ceil(p / 100.0 * n));
  return samples_[std::min(samples_.size(), std::max<size_t>(rank, 1)) - 1];
}

double LatencyRecorder::Mean() const {
  if (samples_.empty()) return 0.0;
  double sum = 0.0;
  for (const double s : samples_) sum += s;
  return sum / static_cast<double>(samples_.size());
}

std::string LatencyRecorder::Summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "n=%zu mean=%.2fms p50=%.2fms p95=%.2fms p99=%.2fms max=%.2fms",
                count(), Mean() * 1e3, Percentile(50) * 1e3,
                Percentile(95) * 1e3, Percentile(99) * 1e3, Max() * 1e3);
  return buf;
}

}  // namespace koios::serve
