// A repository snapshot: everything a serving process needs to answer
// queries — dictionary, set collection, embeddings, similarity function,
// neighbor index — bundled as ONE immutable, shareable unit.
//
// Ownership model: a snapshot is built (or loaded from the binary
// repository format of io::SaveRepository) once, then handed around as
// shared_ptr<const Snapshot>. Every QueryEngine (and any number of
// concurrent queries inside each) reads the same instance; "const" is the
// reentrancy contract — the only mutation behind it is the neighbor
// index's internally synchronized shared cursor cache, which is not
// observable through probe results (cursor builds are deterministic).
// Snapshot swap (reindex, corpus update) is therefore just: load the new
// one, point new engines at it, drop the old shared_ptr when its last
// in-flight query finishes.
#ifndef KOIOS_SERVE_SNAPSHOT_H_
#define KOIOS_SERVE_SNAPSHOT_H_

#include <memory>
#include <string>
#include <vector>

#include "koios/embedding/embedding_store.h"
#include "koios/index/set_collection.h"
#include "koios/io/repository_v4.h"
#include "koios/sim/cosine_similarity.h"
#include "koios/sim/similarity.h"
#include "koios/text/dictionary.h"
#include "koios/util/status.h"

namespace koios::serve {

struct SnapshotOptions {
  /// Build the embedding store's int8 quantized tier after load
  /// (EmbeddingStore::Finalize) so approximate/throughput consumers can
  /// select Precision::kInt8. A loaded repository that was saved with a
  /// finalized store re-finalizes automatically regardless (the io layer
  /// persists the flag, and a v4 file stores the tier itself); this
  /// forces the tier for older files.
  bool quantize_embeddings = false;
  /// Precision the snapshot's cosine similarity reads (kInt8 requires the
  /// quantized tier; exact search should keep the default).
  embedding::Precision precision = embedding::Precision::kFloat64;
  /// v4 files only: eagerly CRC-check every section (bulk arenas
  /// included) and content-scan the token arenas before serving from the
  /// mapping. Costs an O(file) pass at load; the lazy default validates
  /// structure + metadata sections only. TrySwapFromRepository always
  /// verifies eagerly regardless — a live swap must not adopt a snapshot
  /// whose corruption would only surface mid-query.
  bool mmap_verify = false;
};

class Snapshot {
 public:
  /// Loads a repository file written by io::SaveRepository and builds the
  /// serving structures (cosine similarity over the embeddings, exact kNN
  /// index over the sets' distinct tokens). Fails on files without an
  /// embedding store — a snapshot must be able to score similarities.
  static util::StatusOr<std::shared_ptr<const Snapshot>> Load(
      const std::string& path, const SnapshotOptions& options = {});

  /// Builds a snapshot from in-memory parts (takes ownership). Same
  /// structures as Load without the round-trip through disk.
  static std::shared_ptr<const Snapshot> Build(
      text::Dictionary dict, index::SetCollection sets,
      embedding::EmbeddingStore store, const SnapshotOptions& options = {});

  const text::Dictionary& dict() const { return dict_; }
  const index::SetCollection& sets() const { return sets_; }
  const embedding::EmbeddingStore& store() const { return store_; }
  const sim::SimilarityFunction& similarity() const { return *similarity_; }

  /// The shared neighbor index. Non-const: probing mutates its internal
  /// (synchronized) cursor cache; concurrent queries must each probe
  /// through their own index->NewSession().
  sim::SimilarityIndex* index() const { return index_.get(); }

  /// True when the snapshot serves straight out of a v4 file mapping
  /// (dict/sets/store are in borrowed mode; the mapping is pinned here).
  bool mmap_backed() const { return view_ != nullptr; }

  size_t MemoryUsageBytes() const;

 private:
  Snapshot() = default;
  void BuildServingStructures(const SnapshotOptions& options,
                              std::vector<TokenId> vocabulary);

  // Pins the v4 mapping the borrowed artifacts below point into;
  // declared first so it is destroyed last (members destruct in reverse
  // declaration order). Null for built / stream-loaded snapshots.
  std::shared_ptr<const io::MmapRepositoryView> view_;
  text::Dictionary dict_;
  index::SetCollection sets_;
  embedding::EmbeddingStore store_{0};
  std::unique_ptr<sim::CosineEmbeddingSimilarity> similarity_;
  std::unique_ptr<sim::SimilarityIndex> index_;
};

}  // namespace koios::serve

#endif  // KOIOS_SERVE_SNAPSHOT_H_
