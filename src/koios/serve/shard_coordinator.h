// ShardCoordinator — scatter-gather query execution over N ShardEngines
// (ROADMAP item 4: the paper's §VI partition pruning lifted from
// in-process partitions to corpus shards, behind the unchanged Submit
// interface).
//
// Per query the coordinator:
//  1. creates ONE query-global θlb and N per-shard SearchContexts (each
//     carrying the query's deadline/cancel/trace); with θlb exchange on,
//     every context is attached to the shared threshold, so a bound any
//     shard's refinement proves immediately tightens every other shard's
//     pruning and stream-stop similarity — the cross-shard feedback that
//     makes N shards cheaper than N independent searches;
//  2. fans out: shards 1..N-1 run on the dedicated shard pool, shard 0
//     runs INLINE on the calling (query-worker) thread. Shard tasks are
//     single-threaded searches that never wait on any pool, so a query
//     worker blocking on shard futures can never deadlock — the shard
//     pool only ever executes leaf work;
//  3. gathers: joins every shard (even after a failure — the per-shard
//     contexts live on this frame), then merges the per-shard top-k lists
//     under the global total order (score desc, SetId asc) and truncates
//     to k.
//
// Exactness of the merge: shard results carry exact scores
// (verify_result_scores is forced on for N>1 — certified-lower-bound
// scores would make the cross-shard order ill-defined), and any set in
// the global top-k is by definition within the top-k OF ITS OWN SHARD, so
// the union of shard top-k lists always contains the global top-k. θlb
// exchange is sound for the same reason the in-process version is: a
// shard's k-th lower bound never exceeds the global θk, and pruning
// comparisons keep their ε slack, so ties survive. Results are therefore
// bit-identical to the N=1 engine — the property bench_shard_scaling
// gates hard.
//
// N=1 compiles down to today's behavior: no slicing (the one shard IS the
// full collection), no shared θlb, no shard spans, no pool hop — the
// query runs inline exactly as QueryEngine::Execute always has.
#ifndef KOIOS_SERVE_SHARD_COORDINATOR_H_
#define KOIOS_SERVE_SHARD_COORDINATOR_H_

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "koios/core/search_types.h"
#include "koios/core/searcher.h"
#include "koios/index/set_collection.h"
#include "koios/serve/shard_engine.h"
#include "koios/sim/similarity.h"
#include "koios/util/thread_pool.h"

namespace koios::serve {

struct ShardOptions {
  /// Corpus shards. 1 = single-shard (today's engine, bit-for-bit).
  size_t num_shards = 1;
  /// Cross-shard θlb exchange (N>1 only). Off = every shard prunes
  /// against only its own bounds — the independent-execution baseline the
  /// scaling bench compares against; results are identical either way,
  /// only the work differs.
  bool theta_exchange = true;
  /// Per-shard in-process partitioning (paper §VI), applied within each
  /// shard's searcher.
  core::SearcherOptions searcher;
};

class ShardCoordinator {
 public:
  /// Builds N shard engines over contiguous slices of `sets`, all probing
  /// the shared `index` (replicated across shards). Both must outlive the
  /// coordinator; slices borrow `sets`' token arena. num_shards is
  /// clamped to [1, max(1, sets->size())].
  ShardCoordinator(const index::SetCollection* sets,
                   sim::SimilarityIndex* index, const ShardOptions& options);

  ShardCoordinator(const ShardCoordinator&) = delete;
  ShardCoordinator& operator=(const ShardCoordinator&) = delete;

  size_t num_shards() const { return shards_.size(); }
  const ShardEngine& shard(size_t i) const { return *shards_[i]; }
  /// True when the shared index hands out per-query probe sessions;
  /// without them shard execution (and whole queries) serialize behind an
  /// internal mutex, exactly like the pre-shard engine did.
  bool sessions_supported() const { return sessions_supported_; }

  /// Per-query inputs threaded from the engine's admission machinery into
  /// every shard's SearchContext.
  struct QueryOptions {
    bool has_deadline = false;
    std::chrono::steady_clock::time_point deadline{};
    const std::atomic<bool>* cancel_flag = nullptr;
    /// Ambient trace at the execute site; shard tasks adopt it so their
    /// shard.execute spans parent under serve.execute.
    uint64_t trace_id = 0;
    uint64_t trace_parent = 0;
  };

  /// Per-shard observations of one executed query, for the engine's
  /// per-shard latency/stats accumulation (indexed by shard).
  struct QueryReport {
    std::vector<double> shard_seconds;
    std::vector<core::SearchStats> shard_stats;
  };

  /// Executes one query across all shards and merges (see file comment).
  /// `shard_pool` carries shards 1..N-1 and is required when
  /// num_shards() > 1 and sessions are supported; shard 0 always runs on
  /// the calling thread. `report` (optional) receives per-shard timings
  /// and stats. Throws SearchAborted on deadline/cancel — after every
  /// in-flight shard has been joined.
  core::SearchResult Execute(std::span<const TokenId> query,
                             core::SearchParams params,
                             const QueryOptions& qopts,
                             util::ThreadPool* shard_pool,
                             QueryReport* report) const;

 private:
  core::SearchResult ExecuteSharded(std::span<const TokenId> query,
                                    const core::SearchParams& params,
                                    const QueryOptions& qopts,
                                    util::ThreadPool* shard_pool,
                                    QueryReport* report) const;

  ShardOptions options_;
  sim::SimilarityIndex* index_;
  bool sessions_supported_;
  // unique_ptr for pointer stability: each engine's searcher points into
  // the engine's own slice storage (see ShardEngine).
  std::vector<std::unique_ptr<ShardEngine>> shards_;
  // Serializes execution when the index cannot hand out sessions (shards
  // would otherwise fight over the shared cursor positions). Mutable: the
  // coordinator lives inside an immutable ServingState.
  mutable std::mutex no_session_mutex_;
};

}  // namespace koios::serve

#endif  // KOIOS_SERVE_SHARD_COORDINATOR_H_
