// Bridges the serve subsystem's pre-existing instrumentation — the
// EngineCounters, the LatencyRecorder percentiles/EWMA, the aggregated
// per-query SearchStats, and the shared cursor cache's CursorCacheStats —
// into a util::MetricRegistry, replacing the ad-hoc printf plumbing the
// examples and benches used. The bridge is a collection CALLBACK: nothing
// is double-counted on the hot path; at scrape time the callback reads the
// authoritative sources and refreshes the registered metrics, so the
// /metrics endpoint always reflects the engine the daemon is serving with
// RIGHT NOW (hot swaps flip the cursor cache underneath it transparently).
#ifndef KOIOS_SERVE_ENGINE_METRICS_H_
#define KOIOS_SERVE_ENGINE_METRICS_H_

#include <functional>
#include <memory>

#include "koios/serve/query_engine.h"
#include "koios/util/metric_registry.h"

namespace koios::serve {

/// Registers the engine's metric family under the `koios_` prefix and a
/// collection callback that refreshes it on every RenderText. `resolve` is
/// called per render and may return null (engine not built yet — e.g. a
/// daemon whose first snapshot has not loaded); the metrics then stay at
/// their last values (initially 0). The resolved engine must stay alive
/// for the duration of the render (returning a shared_ptr guarantees it).
/// Idempotent metric names: register ONE engine family per registry.
void RegisterEngineMetrics(
    util::MetricRegistry* registry,
    std::function<std::shared_ptr<const QueryEngine>()> resolve);

/// Convenience overload for a fixed engine that outlives the registry's
/// last RenderText call (tests, single-engine servers).
void RegisterEngineMetrics(util::MetricRegistry* registry,
                           const QueryEngine* engine);

}  // namespace koios::serve

#endif  // KOIOS_SERVE_ENGINE_METRICS_H_
