// String-token corpus generation for the syntactic (q-gram Jaccard)
// experiments and examples: a vocabulary of synthetic words plus
// character-level *typo variants* (dropped / doubled / substituted
// letters), so fuzzy matching has realistic near-duplicates to find — the
// (squirrel, squirrell) and (konstantine, konstantin) pairs the paper
// reports in its OpenData quality study (§VIII-E).
#ifndef KOIOS_DATA_STRING_CORPUS_H_
#define KOIOS_DATA_STRING_CORPUS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "koios/index/set_collection.h"
#include "koios/text/dictionary.h"
#include "koios/util/rng.h"
#include "koios/util/types.h"

namespace koios::data {

struct StringCorpusSpec {
  size_t num_sets = 200;
  /// Base (clean) words in the vocabulary.
  size_t num_base_words = 300;
  /// Typo variants generated per base word.
  size_t typos_per_word = 2;
  size_t min_word_length = 5;
  size_t max_word_length = 12;
  size_t min_set_size = 4;
  size_t max_set_size = 20;
  /// Zipf skew of word draws (frequent words appear in many sets).
  double word_skew = 0.6;
  uint64_t seed = 2024;
};

struct StringCorpus {
  StringCorpusSpec spec;
  text::Dictionary dict;
  index::SetCollection sets;
  std::vector<TokenId> vocabulary;  // distinct tokens used, ascending
  /// Base word of each token (its own id for clean words), for tests.
  std::vector<TokenId> base_of;
};

/// Deterministically generates a corpus from spec.seed.
StringCorpus GenerateStringCorpus(const StringCorpusSpec& spec);

/// One random typo: drop, double, or substitute a character.
std::string MakeTypo(const std::string& word, util::Rng* rng);

}  // namespace koios::data

#endif  // KOIOS_DATA_STRING_CORPUS_H_
