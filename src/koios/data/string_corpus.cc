#include "koios/data/string_corpus.h"

#include <algorithm>
#include <cassert>
#include <unordered_set>

#include "koios/util/zipf.h"

namespace koios::data {

std::string MakeTypo(const std::string& word, util::Rng* rng) {
  assert(!word.empty());
  std::string out = word;
  const size_t pos = rng->NextBounded(out.size());
  switch (rng->NextBounded(3)) {
    case 0:  // drop (keep at least 2 chars)
      if (out.size() > 2) out.erase(pos, 1);
      break;
    case 1:  // double
      out.insert(out.begin() + static_cast<ptrdiff_t>(pos), out[pos]);
      break;
    default:  // substitute with a nearby letter
      out[pos] = static_cast<char>('a' + (out[pos] - 'a' + 1 + rng->NextBounded(3)) % 26);
      break;
  }
  return out;
}

StringCorpus GenerateStringCorpus(const StringCorpusSpec& spec) {
  StringCorpus corpus;
  corpus.spec = spec;
  util::Rng rng(spec.seed);

  // Base words: random lowercase strings with a vowel every other letter so
  // they look word-like and q-grams collide realistically.
  std::vector<TokenId> word_ids;
  const char vowels[] = "aeiou";
  const char consonants[] = "bcdfghjklmnpqrstvwz";
  for (size_t i = 0; i < spec.num_base_words; ++i) {
    const size_t len = spec.min_word_length +
                       rng.NextBounded(spec.max_word_length -
                                       spec.min_word_length + 1);
    std::string word;
    for (size_t j = 0; j < len; ++j) {
      word += (j % 2 == 0) ? consonants[rng.NextBounded(19)]
                           : vowels[rng.NextBounded(5)];
    }
    const TokenId base = corpus.dict.Intern(word);
    if (base >= corpus.base_of.size()) corpus.base_of.resize(base + 1);
    corpus.base_of[base] = base;
    word_ids.push_back(base);
    for (size_t t = 0; t < spec.typos_per_word; ++t) {
      const TokenId typo = corpus.dict.Intern(MakeTypo(word, &rng));
      if (typo >= corpus.base_of.size()) corpus.base_of.resize(typo + 1);
      corpus.base_of[typo] = base;
      word_ids.push_back(typo);
    }
  }

  util::ZipfDistribution word_dist(word_ids.size(), spec.word_skew);
  std::unordered_set<TokenId> dedup;
  std::vector<TokenId> members;
  for (size_t s = 0; s < spec.num_sets; ++s) {
    const size_t target =
        spec.min_set_size +
        rng.NextBounded(spec.max_set_size - spec.min_set_size + 1);
    members.clear();
    dedup.clear();
    size_t attempts = 0;
    while (members.size() < target && attempts < target * 30 + 50) {
      ++attempts;
      const TokenId t = word_ids[word_dist.Sample(&rng)];
      if (dedup.insert(t).second) members.push_back(t);
    }
    corpus.sets.AddSet(members);
  }

  std::unordered_set<TokenId> seen;
  for (SetId id = 0; id < corpus.sets.size(); ++id) {
    for (TokenId t : corpus.sets.Tokens(id)) seen.insert(t);
  }
  corpus.vocabulary.assign(seen.begin(), seen.end());
  std::sort(corpus.vocabulary.begin(), corpus.vocabulary.end());
  return corpus;
}

}  // namespace koios::data
