#include "koios/data/query_benchmark.h"

#include <algorithm>

namespace koios::data {

std::string CardinalityInterval::Label() const {
  return std::to_string(lo) + "-" + std::to_string(hi);
}

namespace {

std::vector<CardinalityInterval> ScaleIntervals(
    std::vector<CardinalityInterval> intervals, size_t paper_max,
    size_t actual_max) {
  // Presets are expressed in the paper's coordinates; when the corpus is a
  // scaled-down replica, rescale interval bounds proportionally so each
  // interval keeps roughly its share of the cardinality range.
  if (actual_max >= paper_max || actual_max == 0) return intervals;
  const double f = static_cast<double>(actual_max) / static_cast<double>(paper_max);
  for (auto& iv : intervals) {
    iv.lo = static_cast<size_t>(iv.lo * f);
    iv.hi = std::max(iv.lo + 1, static_cast<size_t>(iv.hi * f));
  }
  intervals.front().lo = std::min<size_t>(intervals.front().lo, 10);
  intervals.back().hi = actual_max + 1;
  return intervals;
}

}  // namespace

std::vector<CardinalityInterval> OpenDataIntervals(size_t max_size) {
  std::vector<CardinalityInterval> iv = {{10, 750},    {750, 1000},
                                         {1000, 1500}, {1500, 2500},
                                         {2500, 5000}, {5000, 32000}};
  return ScaleIntervals(std::move(iv), 32000, max_size);
}

std::vector<CardinalityInterval> WdcIntervals(size_t max_size) {
  std::vector<CardinalityInterval> iv = {
      {10, 250}, {250, 500}, {500, 750}, {750, 1000}, {1000, 11000}};
  return ScaleIntervals(std::move(iv), 11000, max_size);
}

std::vector<BenchmarkQuery> SampleQueriesByInterval(
    const Corpus& corpus, const std::vector<CardinalityInterval>& intervals,
    size_t per_interval, util::Rng* rng) {
  std::vector<BenchmarkQuery> queries;
  for (size_t i = 0; i < intervals.size(); ++i) {
    std::vector<SetId> pool;
    for (SetId id = 0; id < corpus.sets.size(); ++id) {
      const size_t size = corpus.sets.SetSize(id);
      if (size >= intervals[i].lo && size < intervals[i].hi) pool.push_back(id);
    }
    // Partial Fisher-Yates: uniform sample without replacement.
    const size_t take = std::min(per_interval, pool.size());
    for (size_t j = 0; j < take; ++j) {
      const size_t pick = j + rng->NextBounded(pool.size() - j);
      std::swap(pool[j], pool[pick]);
      BenchmarkQuery query;
      query.source_set = pool[j];
      const auto tokens = corpus.sets.Tokens(pool[j]);
      query.tokens.assign(tokens.begin(), tokens.end());
      query.interval = i;
      queries.push_back(std::move(query));
    }
  }
  return queries;
}

std::vector<BenchmarkQuery> SampleQueriesUniform(const Corpus& corpus,
                                                 size_t count,
                                                 util::Rng* rng) {
  std::vector<SetId> pool(corpus.sets.size());
  for (SetId id = 0; id < corpus.sets.size(); ++id) pool[id] = id;
  std::vector<BenchmarkQuery> queries;
  const size_t take = std::min(count, pool.size());
  for (size_t j = 0; j < take; ++j) {
    const size_t pick = j + rng->NextBounded(pool.size() - j);
    std::swap(pool[j], pool[pick]);
    BenchmarkQuery query;
    query.source_set = pool[j];
    const auto tokens = corpus.sets.Tokens(pool[j]);
    query.tokens.assign(tokens.begin(), tokens.end());
    queries.push_back(std::move(query));
  }
  return queries;
}

}  // namespace koios::data
