// Synthetic corpus generation standing in for the paper's four datasets
// (DBLP, OpenData, Twitter, WDC — Table I). A corpus is a SetCollection of
// TokenId sets drawn from a Zipfian element distribution, with per-dataset
// cardinality distributions:
//
//   dataset   #sets      max size  avg size  #uniq   shape
//   DBLP      4,246      514       178.7     25,159  ~normal sizes, mild skew
//   OpenData  15,636     31,901    86.4      179,830 heavy-tailed sizes
//   Twitter   27,204     151       22.6      72,910  small normal sizes
//   WDC       1,014,369  10,240    30.6      328,357 heavy tail + very
//                                                    frequent elements
//
// Element ids are drawn Zipfian over the vocabulary, so low ids are
// frequent; combined with the synthetic embedding model (sequential
// concept clusters) this reproduces the posting-list skew that drives the
// paper's WDC observations (§VIII-A1). `Scaled(f)` shrinks a preset for
// laptop-scale runs; EXPERIMENTS.md records the scale used per experiment.
#ifndef KOIOS_DATA_CORPUS_H_
#define KOIOS_DATA_CORPUS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "koios/index/set_collection.h"
#include "koios/util/rng.h"
#include "koios/util/types.h"

namespace koios::data {

enum class SizeDistribution {
  kUniform,  // uniform in [min_set_size, max_set_size]
  kNormal,   // normal(avg_set_size, size_stddev), clipped
  kPareto,   // bounded Pareto with shape `pareto_shape`, min at min_set_size
};

struct CorpusSpec {
  std::string name = "synthetic";
  size_t num_sets = 1000;
  size_t vocab_size = 10000;
  /// Zipf exponent for element draws (0 = uniform; ~0.7 open-data-like;
  /// >= 1.0 produces the very frequent elements seen in WDC).
  double element_skew = 0.7;

  SizeDistribution size_distribution = SizeDistribution::kNormal;
  size_t min_set_size = 5;
  size_t max_set_size = 200;
  double avg_set_size = 40.0;
  double size_stddev = 20.0;   // kNormal only
  double pareto_shape = 1.35;  // kPareto only; smaller = heavier tail

  uint64_t seed = 1234;

  /// Returns a copy with num_sets and vocab_size multiplied by `f`
  /// (cardinality distributions and max sizes also shrink by sqrt(f) for
  /// the heavy-tailed presets so posting/graph shapes stay proportional).
  CorpusSpec Scaled(double f) const;
};

/// Presets mirroring Table I. Pass `scale` < 1 for laptop-size runs.
CorpusSpec DblpSpec(double scale = 1.0);
CorpusSpec OpenDataSpec(double scale = 1.0);
CorpusSpec TwitterSpec(double scale = 1.0);
CorpusSpec WdcSpec(double scale = 1.0);

/// A generated corpus: the repository L plus its distinct-token vocabulary.
struct Corpus {
  CorpusSpec spec;
  index::SetCollection sets;
  std::vector<TokenId> vocabulary;  // distinct tokens, ascending

  size_t NumSets() const { return sets.size(); }
};

/// Generates a corpus deterministically from spec.seed.
Corpus GenerateCorpus(const CorpusSpec& spec);

}  // namespace koios::data

#endif  // KOIOS_DATA_CORPUS_H_
