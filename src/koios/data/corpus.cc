#include "koios/data/corpus.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <unordered_set>

#include "koios/util/zipf.h"

namespace koios::data {

CorpusSpec CorpusSpec::Scaled(double f) const {
  assert(f > 0.0);
  CorpusSpec scaled = *this;
  scaled.num_sets = std::max<size_t>(10, static_cast<size_t>(num_sets * f));
  scaled.vocab_size = std::max<size_t>(100, static_cast<size_t>(vocab_size * f));
  if (size_distribution == SizeDistribution::kPareto && f < 1.0) {
    const double root = std::sqrt(f);
    scaled.max_set_size =
        std::max(min_set_size * 4, static_cast<size_t>(max_set_size * root));
  }
  return scaled;
}

CorpusSpec DblpSpec(double scale) {
  CorpusSpec spec;
  spec.name = "DBLP";
  spec.num_sets = 4246;
  spec.vocab_size = 25159;
  spec.element_skew = 0.6;
  spec.size_distribution = SizeDistribution::kNormal;
  spec.min_set_size = 20;
  spec.max_set_size = 514;
  spec.avg_set_size = 178.7;
  spec.size_stddev = 70.0;
  spec.seed = 101;
  return spec.Scaled(scale);
}

CorpusSpec OpenDataSpec(double scale) {
  CorpusSpec spec;
  spec.name = "OpenData";
  spec.num_sets = 15636;
  spec.vocab_size = 179830;
  spec.element_skew = 0.75;
  spec.size_distribution = SizeDistribution::kPareto;
  spec.min_set_size = 10;
  spec.max_set_size = 31901;
  spec.avg_set_size = 86.4;  // informational; the Pareto shape drives this
  spec.pareto_shape = 1.13;
  spec.seed = 102;
  return spec.Scaled(scale);
}

CorpusSpec TwitterSpec(double scale) {
  CorpusSpec spec;
  spec.name = "Twitter";
  spec.num_sets = 27204;
  spec.vocab_size = 72910;
  spec.element_skew = 0.8;
  spec.size_distribution = SizeDistribution::kNormal;
  spec.min_set_size = 3;
  spec.max_set_size = 151;
  spec.avg_set_size = 22.6;
  spec.size_stddev = 9.0;
  spec.seed = 103;
  return spec.Scaled(scale);
}

CorpusSpec WdcSpec(double scale) {
  CorpusSpec spec;
  spec.name = "WDC";
  spec.num_sets = 1014369;
  spec.vocab_size = 328357;
  // "there are some very frequent elements in WDC, which results in
  // excessively large posting lists" (§VIII-A1).
  spec.element_skew = 1.05;
  spec.size_distribution = SizeDistribution::kPareto;
  spec.min_set_size = 5;
  spec.max_set_size = 10240;
  spec.avg_set_size = 30.6;
  spec.pareto_shape = 1.2;
  spec.seed = 104;
  return spec.Scaled(scale);
}

namespace {

size_t DrawSetSize(const CorpusSpec& spec, util::Rng* rng) {
  const double lo = static_cast<double>(spec.min_set_size);
  const double hi = static_cast<double>(spec.max_set_size);
  double size = lo;
  switch (spec.size_distribution) {
    case SizeDistribution::kUniform:
      size = lo + rng->NextDouble() * (hi - lo);
      break;
    case SizeDistribution::kNormal:
      size = spec.avg_set_size + spec.size_stddev * rng->NextGaussian();
      break;
    case SizeDistribution::kPareto: {
      // Bounded Pareto via inverse CDF.
      const double a = spec.pareto_shape;
      const double u = rng->NextDouble();
      const double l_a = std::pow(lo, a), h_a = std::pow(hi, a);
      size = std::pow(-(u * h_a - u * l_a - h_a) / (h_a * l_a), -1.0 / a);
      break;
    }
  }
  size = std::clamp(size, lo, hi);
  return static_cast<size_t>(size);
}

}  // namespace

Corpus GenerateCorpus(const CorpusSpec& spec) {
  assert(spec.min_set_size >= 1);
  assert(spec.max_set_size >= spec.min_set_size);
  assert(spec.max_set_size <= spec.vocab_size);

  Corpus corpus;
  corpus.spec = spec;
  util::Rng rng(spec.seed);
  util::ZipfDistribution element_dist(spec.vocab_size, spec.element_skew);

  std::vector<TokenId> members;
  std::unordered_set<TokenId> dedup;
  for (size_t s = 0; s < spec.num_sets; ++s) {
    const size_t target = DrawSetSize(spec, &rng);
    members.clear();
    dedup.clear();
    // Rejection sampling of distinct tokens; cap attempts so pathological
    // skew cannot loop forever (the set just ends up slightly smaller).
    size_t attempts = 0;
    const size_t max_attempts = target * 30 + 100;
    while (members.size() < target && attempts < max_attempts) {
      ++attempts;
      const TokenId t = static_cast<TokenId>(element_dist.Sample(&rng));
      if (dedup.insert(t).second) members.push_back(t);
    }
    corpus.sets.AddSet(members);
  }

  // Vocabulary = distinct tokens actually used.
  std::unordered_set<TokenId> seen;
  for (SetId id = 0; id < corpus.sets.size(); ++id) {
    for (TokenId t : corpus.sets.Tokens(id)) seen.insert(t);
  }
  corpus.vocabulary.assign(seen.begin(), seen.end());
  std::sort(corpus.vocabulary.begin(), corpus.vocabulary.end());
  return corpus;
}

}  // namespace koios::data
