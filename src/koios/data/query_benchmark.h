// Query benchmark generation (paper §VIII-A2): query sets are sampled from
// the corpus itself, uniformly within cardinality intervals so skewed
// repositories do not bias the benchmark toward small queries.
#ifndef KOIOS_DATA_QUERY_BENCHMARK_H_
#define KOIOS_DATA_QUERY_BENCHMARK_H_

#include <cstddef>
#include <string>
#include <vector>

#include "koios/data/corpus.h"
#include "koios/util/rng.h"
#include "koios/util/types.h"

namespace koios::data {

struct CardinalityInterval {
  size_t lo = 0;  // inclusive
  size_t hi = 0;  // exclusive

  std::string Label() const;
};

/// One benchmark query: a set drawn from the corpus.
struct BenchmarkQuery {
  SetId source_set = kInvalidSet;
  std::vector<TokenId> tokens;
  size_t interval = 0;  // index into the interval list (0 if none)
};

/// The paper's interval tables, scaled to a corpus' actual max size:
/// OpenData: 10-750, 750-1k, 1k-1.5k, 1.5k-2.5k, 2.5k-5k, 5k-32k;
/// WDC: 10-250, 250-500, 500-750, 750-1k, 1k-11k.
std::vector<CardinalityInterval> OpenDataIntervals(size_t max_size);
std::vector<CardinalityInterval> WdcIntervals(size_t max_size);

/// Uniformly samples up to `per_interval` query sets per interval (without
/// replacement). Intervals with no matching sets are skipped.
std::vector<BenchmarkQuery> SampleQueriesByInterval(
    const Corpus& corpus, const std::vector<CardinalityInterval>& intervals,
    size_t per_interval, util::Rng* rng);

/// Uniform sampling of `count` query sets regardless of cardinality
/// (DBLP / Twitter style).
std::vector<BenchmarkQuery> SampleQueriesUniform(const Corpus& corpus,
                                                 size_t count, util::Rng* rng);

}  // namespace koios::data

#endif  // KOIOS_DATA_QUERY_BENCHMARK_H_
