#include "koios/core/bucket_index.h"

#include <cassert>

namespace koios::core {

void BucketIndex::Insert(SetId set, uint32_t m, Score s_i) {
  const bool inserted = buckets_[m].emplace(s_i, set).second;
  assert(inserted);
  (void)inserted;
  ++count_;
}

void BucketIndex::Move(SetId set, uint32_t m_old, Score s_old, uint32_t m_new,
                       Score s_new) {
  Remove(set, m_old, s_old);
  Insert(set, m_new, s_new);
}

void BucketIndex::Remove(SetId set, uint32_t m, Score s_i) {
  auto it = buckets_.find(m);
  assert(it != buckets_.end());
  const size_t erased = it->second.erase({s_i, set});
  assert(erased == 1);
  (void)erased;
  if (it->second.empty()) buckets_.erase(it);
  --count_;
}

size_t BucketIndex::Prune(Score sim, Score theta,
                          const std::function<void(SetId)>& on_prune) {
  size_t pruned = 0;
  for (auto bucket_it = buckets_.begin(); bucket_it != buckets_.end();) {
    const Score m = static_cast<Score>(bucket_it->first);
    // Prune while S_i + m*sim is strictly below theta (eps-guarded so ties
    // are never pruned — Lemma 2 requires strict inequality).
    const Score cutoff = theta - m * sim - kScoreEps;
    Bucket& bucket = bucket_it->second;
    auto it = bucket.begin();
    while (it != bucket.end() && it->first < cutoff) {
      on_prune(it->second);
      it = bucket.erase(it);
      ++pruned;
      --count_;
    }
    if (bucket.empty()) {
      bucket_it = buckets_.erase(bucket_it);
    } else {
      ++bucket_it;
    }
  }
  return pruned;
}

size_t BucketIndex::CountSurvivors(Score sim, Score theta,
                                   size_t limit) const {
  size_t survivors = 0;
  for (const auto& [m_key, bucket] : buckets_) {
    const Score m = static_cast<Score>(m_key);
    const Score cutoff = theta - m * sim - kScoreEps;
    // Ascending S_i: walk the below-cutoff prefix, the rest survives.
    size_t below = 0;
    for (auto it = bucket.begin(); it != bucket.end() && it->first < cutoff;
         ++it) {
      ++below;
    }
    survivors += bucket.size() - below;
    if (survivors > limit) return survivors;  // enough to answer the check
  }
  return survivors;
}

size_t BucketIndex::MemoryUsageBytes() const {
  size_t bytes = 0;
  for (const auto& [_, bucket] : buckets_) {
    bytes += sizeof(uint32_t) +
             bucket.size() * (sizeof(std::pair<Score, SetId>) + 4 * sizeof(void*));
  }
  return bytes;
}

}  // namespace koios::core
