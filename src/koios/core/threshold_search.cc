#include "koios/core/threshold_search.h"

#include <algorithm>
#include <unordered_map>

#include "koios/core/bucket_index.h"
#include "koios/core/candidate_state.h"
#include "koios/core/edge_cache.h"
#include "koios/matching/hungarian.h"
#include "koios/sim/token_stream.h"
#include "koios/util/timer.h"

namespace koios::core {

ThresholdSearcher::ThresholdSearcher(const index::SetCollection* sets,
                                     sim::SimilarityIndex* index)
    : sets_(sets), index_(index), inverted_(*sets) {}

std::vector<ResultEntry> ThresholdSearcher::Search(
    std::span<const TokenId> query, const ThresholdParams& params,
    SearchStats* stats) {
  SearchStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  std::vector<ResultEntry> result;
  if (query.empty() || sets_->size() == 0) return result;

  util::WallTimer timer;
  sim::TokenStream stream(
      std::vector<TokenId>(query.begin(), query.end()), index_, params.alpha,
      [this](TokenId t) { return inverted_.InVocabulary(t); });
  EdgeCache cache(&stream);

  // ---- refinement with the fixed threshold θ -----------------------------
  const Score theta = params.theta;
  std::unordered_map<SetId, CandidateState> candidates;
  std::vector<uint8_t> pruned(sets_->size(), 0);
  BucketIndex buckets;

  auto prune = [&](SetId id) {
    pruned[id] = 1;
    candidates.erase(id);
    ++stats->iub_filtered;
  };

  for (const sim::StreamTuple& tuple : cache.tuples()) {
    const Score s = tuple.sim;
    buckets.Prune(s, theta, prune);
    for (SetId id : inverted_.Postings(tuple.token)) {
      if (pruned[id]) continue;
      auto it = candidates.find(id);
      if (it == candidates.end()) {
        ++stats->candidates;
        CandidateState state(id, static_cast<uint32_t>(sets_->SetSize(id)),
                             static_cast<uint32_t>(query.size()));
        if (state.UpperBound(s) < theta - kScoreEps) {
          pruned[id] = 1;
          ++stats->iub_filtered;
          continue;
        }
        it = candidates.emplace(id, state).first;
        buckets.Insert(id, state.remaining(), state.row_sum());
      }
      CandidateState& state = it->second;
      const uint32_t m_old = state.remaining();
      const Score r_old = state.row_sum();
      if (state.AddRow(tuple.query_pos, s)) {
        buckets.Move(id, m_old, r_old, state.remaining(), state.row_sum());
        ++stats->bucket_moves;
      }
      if (state.EdgeValid(tuple.query_pos, tuple.token)) {
        state.AddMatch(tuple.query_pos, tuple.token, s);
      }
    }
    ++stats->stream_tuples;
  }
  buckets.Prune(0.0, theta, prune);  // FinalUpperBound sweep
  stats->timers.Accumulate("refinement", timer.ElapsedSeconds());

  // ---- verification -------------------------------------------------------
  timer.Restart();
  stats->postprocess_sets += candidates.size();
  for (const auto& [id, state] : candidates) {
    ResultEntry entry;
    entry.set = id;
    if (params.use_lb_admission &&
        state.partial_score() >= theta - kScoreEps && !params.verify_scores) {
      // Greedy lower bound certifies membership; skip the matching.
      entry.score = state.partial_score();
      entry.exact = false;
      ++stats->no_em_skipped;
      result.push_back(entry);
      continue;
    }
    std::vector<uint32_t> rows, cols;
    const matching::WeightMatrix m =
        cache.BuildMatrix(sets_->Tokens(id), &rows, &cols);
    const double prune_threshold =
        params.use_em_early_termination ? theta : -1.0;
    const matching::MatchResult match =
        matching::HungarianMatcher::Solve(m, prune_threshold);
    if (match.early_terminated) {
      ++stats->em_early_terminated;
      continue;  // certified SO < theta
    }
    ++stats->em_computed;
    if (match.score >= theta - kScoreEps) {
      entry.score = match.score;
      entry.exact = true;
      result.push_back(entry);
    }
  }
  stats->timers.Accumulate("postprocess", timer.ElapsedSeconds());

  std::sort(result.begin(), result.end(),
            [](const ResultEntry& a, const ResultEntry& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.set < b.set;
            });
  return result;
}

}  // namespace koios::core
