// Per-candidate refinement state: the partial greedy matching (iLB, §V),
// the matched-element bookkeeping needed to validate stream edges, and the
// incremental bounds.
#ifndef KOIOS_CORE_CANDIDATE_STATE_H_
#define KOIOS_CORE_CANDIDATE_STATE_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "koios/util/types.h"

namespace koios::core {

/// State of one candidate set during refinement.
///
/// Lower bound (iLB): the partial greedy matching built from the token
/// stream. Because tuples arrive in non-increasing similarity order,
/// accepting every *valid* edge (both endpoints unmatched) reproduces
/// exactly the greedy matching restricted to the edges seen so far, which
/// is the largest possible iLB (Lemma 5). Self-match tuples (sim 1.0)
/// arrive first, so the score is automatically initialized to the vanilla
/// overlap |Q ∩ C| as the paper prescribes (§V).
///
/// Upper bound (iUB): NOTE — this deviates from the paper's Lemma 6, which
/// claims SO(C) <= S_i + m_i * s with S_i the greedy partial score. That
/// bound is unsound: the optimal matching may *re-match* greedily matched
/// elements and exceed it (take w(q1,t1)=1.0, w(q1,t2)=w(q2,t1)=0.99,
/// w(q2,t2)=0.85: after the stream passes 0.85, S_i=1.85, m_i=0, yet
/// SO=1.98). We use a provably sound bound with identical update mechanics
/// and cost: let R be the first min(|Q|,|C|) distinct query elements seen
/// with an edge to C (stream order makes the first edge of a row its row
/// maximum, and makes these rows the globally largest row maxima). Then
///
///   SO(C) <= Σ_{q ∈ R} rowmax(q) + (min(|Q|,|C|) − |R|) * s
///
/// because an optimal matching matches at most min(|Q|,|C|) query
/// elements, each contributing at most its row maximum, and every row
/// outside R has maximum <= s (unseen) and <= every retained row maximum.
/// The bucket filter of §V carries over unchanged with key m = capacity −
/// |R| and value rowsum. See DESIGN.md §"Deviations".
class CandidateState {
 public:
  CandidateState() = default;
  CandidateState(SetId set, uint32_t set_size, uint32_t query_size)
      : set_(set),
        set_size_(set_size),
        capacity_(std::min(set_size, query_size)) {}

  SetId set() const { return set_; }
  uint32_t set_size() const { return set_size_; }

  /// l — number of greedily matched element pairs.
  uint32_t matched() const { return matched_; }

  /// S_i — score of the partial greedy matching; also the current iLB
  /// (it dominates the single-heaviest-edge bound of Lemma 3a because the
  /// first accepted edge *is* the heaviest incident edge).
  Score partial_score() const { return partial_score_; }

  /// Number of retained row maxima |R| (capped at min(|Q|, |C|)).
  uint32_t rows_seen() const { return static_cast<uint32_t>(seen_rows_.size()); }

  /// m = min(|Q|, |C|) − |R| — the bucket key of §V: how many matchable
  /// elements have no retained row maximum yet.
  uint32_t remaining() const {
    return capacity_ - rows_seen();
  }

  /// Σ of retained row maxima (the bucket value).
  Score row_sum() const { return row_sum_; }

  /// Sound iUB given the current stream similarity `s` (see class comment).
  Score UpperBound(Score s) const {
    return row_sum_ + static_cast<Score>(remaining()) * s;
  }

  /// Sound upper bound once the stream is exhausted: a query row without a
  /// retained maximum either has no α-edge to this set at all (when |R| <
  /// capacity every incident row was retained) or is dominated by the
  /// retained top-capacity row maxima — so the slack term vanishes and
  /// SO(C) <= Σ retained row maxima.
  Score FinalUpperBound() const { return row_sum_; }

  /// Registers a stream edge (query_pos → this set, similarity s) for the
  /// upper bound. Returns true if the bound state changed (a new row max
  /// was retained), i.e. the set must move buckets.
  bool AddRow(uint32_t query_pos, Score s) {
    if (seen_rows_.size() >= capacity_) return false;
    auto it = std::lower_bound(seen_rows_.begin(), seen_rows_.end(), query_pos);
    if (it != seen_rows_.end() && *it == query_pos) return false;
    seen_rows_.insert(it, query_pos);
    row_sum_ += s;
    return true;
  }

  bool QueryMatched(uint32_t query_pos) const {
    return std::binary_search(matched_query_.begin(), matched_query_.end(),
                              query_pos);
  }
  bool TokenMatched(TokenId token) const {
    return std::binary_search(matched_tokens_.begin(), matched_tokens_.end(),
                              token);
  }

  /// True if the stream edge (query_pos, token) is *valid*, i.e. both
  /// endpoints are currently unmatched and capacity remains.
  bool EdgeValid(uint32_t query_pos, TokenId token) const {
    return matched_ < capacity_ && !QueryMatched(query_pos) &&
           !TokenMatched(token);
  }

  /// Accepts a valid edge into the partial greedy matching.
  void AddMatch(uint32_t query_pos, TokenId token, Score sim) {
    matched_query_.insert(
        std::upper_bound(matched_query_.begin(), matched_query_.end(), query_pos),
        query_pos);
    matched_tokens_.insert(
        std::upper_bound(matched_tokens_.begin(), matched_tokens_.end(), token),
        token);
    ++matched_;
    partial_score_ += sim;
  }

  size_t MemoryUsageBytes() const {
    return sizeof(*this) + matched_query_.capacity() * sizeof(uint32_t) +
           matched_tokens_.capacity() * sizeof(TokenId) +
           seen_rows_.capacity() * sizeof(uint32_t);
  }

 private:
  SetId set_ = kInvalidSet;
  uint32_t set_size_ = 0;
  uint32_t capacity_ = 0;  // min(|Q|, |C|)
  uint32_t matched_ = 0;
  Score partial_score_ = 0.0;
  Score row_sum_ = 0.0;
  std::vector<uint32_t> matched_query_;   // sorted query positions (greedy LB)
  std::vector<TokenId> matched_tokens_;   // sorted matched set tokens (greedy LB)
  std::vector<uint32_t> seen_rows_;       // sorted retained rows (iUB)
};

}  // namespace koios::core

#endif  // KOIOS_CORE_CANDIDATE_STATE_H_
