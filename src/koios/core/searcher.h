// KoiosSearcher — the public entry point: top-k semantic overlap search
// over a set repository, with optional random partitioning searched under a
// shared global θlb (paper §VI).
#ifndef KOIOS_CORE_SEARCHER_H_
#define KOIOS_CORE_SEARCHER_H_

#include <memory>
#include <span>
#include <vector>

#include "koios/core/postprocess.h"
#include "koios/core/search_types.h"
#include "koios/index/inverted_index.h"
#include "koios/index/set_collection.h"
#include "koios/sim/similarity.h"

namespace koios::core {

struct SearcherOptions {
  /// Random partitions of the repository; each is searched independently
  /// (in parallel when SearchParams::num_threads > 1) and the per-partition
  /// top-k lists are merged. 1 = unpartitioned.
  size_t num_partitions = 1;
  uint64_t partition_seed = 7;
};

class KoiosSearcher {
 public:
  /// `sets`: the repository L. `index`: a neighbor index over L's
  /// vocabulary (exact for exact search). Both must outlive the searcher.
  KoiosSearcher(const index::SetCollection* sets, sim::SimilarityIndex* index,
                const SearcherOptions& options = {});

  /// Top-k semantic overlap search for `query` (distinct tokens).
  /// Single-consumer convenience: probes the constructor's index directly
  /// (its cursor positions are mutated), so calls must not overlap.
  SearchResult Search(std::span<const TokenId> query,
                      const SearchParams& params);

  /// Reentrant search: identical semantics, but every piece of mutable
  /// state lives in the arguments — `index` is the per-query probe view
  /// (a SimilarityIndex::NewSession() of the shared index; sessions share
  /// built cursors behind internal synchronization), `ctx` the per-query
  /// SearchContext (deadline/cancellation; rearmed on entry; nullable).
  /// The searcher itself is immutable after construction, so any number
  /// of threads may run this concurrently with DISTINCT sessions —
  /// results are bit-identical to the single-consumer overload (cursor
  /// payloads are deterministic in (token, α), and the feedback loop's
  /// withheld bounds never depend on other sessions' progress). Throws
  /// SearchAborted when `ctx` expires mid-query.
  SearchResult Search(std::span<const TokenId> query,
                      const SearchParams& params, sim::SimilarityIndex* index,
                      SearchContext* ctx) const;

  size_t num_partitions() const { return partition_inverted_.size(); }

  /// True if `token` occurs in the repository vocabulary D.
  bool InVocabulary(TokenId token) const;

  /// Aggregate index footprint (inverted indexes across partitions).
  size_t IndexMemoryUsageBytes() const;

 private:
  const index::SetCollection* sets_;
  sim::SimilarityIndex* index_;
  SearcherOptions options_;
  std::vector<index::InvertedIndex> partition_inverted_;
};

}  // namespace koios::core

#endif  // KOIOS_CORE_SEARCHER_H_
