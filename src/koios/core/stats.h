// Counters and timings reported by a Koios search. These back the paper's
// pruning-power tables (II, IV, V), phase breakdowns (Fig. 5b/c, 6b/c) and
// memory plots (5d, 6d, 7d).
#ifndef KOIOS_CORE_STATS_H_
#define KOIOS_CORE_STATS_H_

#include <algorithm>
#include <cstddef>
#include <string>

#include "koios/util/memory_tracker.h"
#include "koios/util/timer.h"
#include "koios/util/types.h"

namespace koios::core {

struct SearchStats {
  // --- refinement --------------------------------------------------------
  /// Tuples consumed from the token stream Ie.
  size_t stream_tuples = 0;
  /// Tuples the producer materialized (once per query, not per partition).
  /// With θlb→producer feedback this is the pruned count; the drain-to-α
  /// path produces every pair >= α.
  size_t stream_tuples_produced = 0;
  /// Similarity at which the feedback loop stopped the stream (0 = drained
  /// to α). Strictly above α whenever feedback saved work.
  Score stream_stop_sim = 0.0;
  /// Survivor budget in force when a refinement consumer stopped early
  /// (0 = never stopped). Fixed max(32, 4k) by default; varies with the
  /// measured stream cost under SearchParams::use_adaptive_survivor_budget.
  size_t stream_survivor_budget = 0;
  /// Distinct sets that ever became candidates (appeared in a probed
  /// posting list).
  size_t candidates = 0;
  /// Sets pruned during refinement by the (i)UB filter — on arrival or by a
  /// bucket scan ("iUB-Filtered" in Tables IV/V).
  size_t iub_filtered = 0;
  /// Individual bucket relocations (for the bucket-overhead ablation).
  size_t bucket_moves = 0;

  // --- post-processing ---------------------------------------------------
  /// Sets entering post-processing (candidates - iub_filtered).
  size_t postprocess_sets = 0;
  /// Sets admitted to the result by the No-EM filter without matching.
  size_t no_em_skipped = 0;
  /// Sets whose Hungarian run was aborted by early termination.
  size_t em_early_terminated = 0;
  /// Full exact matchings computed ("EM" column in Tables IV/V).
  size_t em_computed = 0;
  /// Sets discarded from Qub because their UB fell below θlb.
  size_t postprocess_ub_pruned = 0;
  /// Extra exact matchings run only to report exact scores for No-EM sets
  /// (not part of the algorithm; see SearchParams::verify_result_scores).
  size_t result_verification_ems = 0;
  /// Hungarian solves that reused a warm thread-local workspace arena
  /// (everything beyond each worker thread's first solve).
  size_t em_workspace_reuses = 0;

  // --- meta ---------------------------------------------------------------
  util::PhaseTimer timers;           // "refinement", "postprocess"
  util::MemoryTracker memory;        // per-structure peak footprints

  void Merge(const SearchStats& other) {
    stream_tuples += other.stream_tuples;
    stream_tuples_produced += other.stream_tuples_produced;
    stream_stop_sim = std::max(stream_stop_sim, other.stream_stop_sim);
    stream_survivor_budget =
        std::max(stream_survivor_budget, other.stream_survivor_budget);
    candidates += other.candidates;
    iub_filtered += other.iub_filtered;
    bucket_moves += other.bucket_moves;
    postprocess_sets += other.postprocess_sets;
    no_em_skipped += other.no_em_skipped;
    em_early_terminated += other.em_early_terminated;
    em_computed += other.em_computed;
    postprocess_ub_pruned += other.postprocess_ub_pruned;
    result_verification_ems += other.result_verification_ems;
    em_workspace_reuses += other.em_workspace_reuses;
    timers.Merge(other.timers);
    memory.Merge(other.memory);
  }

  /// Multi-line human-readable rendering (used by examples and benches).
  std::string ToString() const;
};

}  // namespace koios::core

#endif  // KOIOS_CORE_STATS_H_
