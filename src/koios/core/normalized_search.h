// Top-k search under *normalized* semantic overlap,
//
//   NSO(Q, C) = SO(Q, C) / min(|Q|, |C|)  ∈ [0, 1],
//
// the semantic analogue of the containment-style normalizations used by
// the vanilla-overlap join-search systems the paper builds on (JOSIE, LSH
// Ensemble). Normalization changes the *ranking*: small sets that match
// the query almost completely can outrank large sets with more absolute
// overlap — exactly what joinability scoring wants.
//
// All Koios bounds divide through per candidate: LB/cap and UB/cap bracket
// NSO for cap = min(|Q|, |C|). The bucketized filter of §V does not apply
// (its per-bucket cutoff is only uniform for an *absolute* threshold), so
// refinement uses per-candidate bound checks — the trade-off the paper's
// §V motivates, made concrete.
#ifndef KOIOS_CORE_NORMALIZED_SEARCH_H_
#define KOIOS_CORE_NORMALIZED_SEARCH_H_

#include <span>

#include "koios/core/search_types.h"
#include "koios/index/inverted_index.h"
#include "koios/index/set_collection.h"
#include "koios/sim/similarity.h"

namespace koios::core {

/// Exact normalized semantic overlap (oracle path).
Score NormalizedOverlap(std::span<const TokenId> query,
                        std::span<const TokenId> candidate,
                        const sim::SimilarityFunction& sim, Score alpha);

class NormalizedSearcher {
 public:
  NormalizedSearcher(const index::SetCollection* sets,
                     sim::SimilarityIndex* index);

  /// Top-k sets by NSO; scores in the result are normalized overlaps.
  SearchResult Search(std::span<const TokenId> query,
                      const SearchParams& params);

 private:
  const index::SetCollection* sets_;
  sim::SimilarityIndex* index_;
  index::InvertedIndex inverted_;
};

}  // namespace koios::core

#endif  // KOIOS_CORE_NORMALIZED_SEARCH_H_
