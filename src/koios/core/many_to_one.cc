#include "koios/core/many_to_one.h"

#include <algorithm>
#include <unordered_map>

#include "koios/core/bucket_index.h"
#include "koios/core/edge_cache.h"
#include "koios/sim/token_stream.h"
#include "koios/util/timer.h"
#include "koios/util/top_k_list.h"

namespace koios::core {

Score ManyToOneOverlap(std::span<const TokenId> query,
                       std::span<const TokenId> candidate,
                       const sim::SimilarityFunction& sim, Score alpha) {
  Score total = 0.0;
  for (TokenId q : query) {
    Score best = 0.0;
    for (TokenId c : candidate) {
      best = std::max(best, sim.SimilarityAlpha(q, c, alpha));
    }
    total += best;
  }
  return total;
}

ManyToOneSearcher::ManyToOneSearcher(const index::SetCollection* sets,
                                     sim::SimilarityIndex* index)
    : sets_(sets), index_(index), inverted_(*sets) {}

SearchResult ManyToOneSearcher::Search(std::span<const TokenId> query,
                                       const SearchParams& params) {
  SearchResult result;
  if (query.empty() || sets_->size() == 0) return result;
  util::WallTimer timer;

  sim::TokenStream stream(
      std::vector<TokenId>(query.begin(), query.end()), index_, params.alpha,
      [this](TokenId t) { return inverted_.InVocabulary(t); });

  // Per-candidate state: the set of query rows whose maximum has been
  // retained (first edge per row = row max, by stream order) and the
  // accumulated score. Unlike the 1:1 engine there is no capacity cap —
  // every query row contributes.
  struct State {
    Score score = 0.0;
    std::vector<uint32_t> rows;  // sorted retained rows
    bool AddRow(uint32_t row, Score s) {
      auto it = std::lower_bound(rows.begin(), rows.end(), row);
      if (it != rows.end() && *it == row) return false;
      rows.insert(it, row);
      score += s;
      return true;
    }
  };
  std::unordered_map<SetId, State> states;
  std::vector<uint8_t> pruned(sets_->size(), 0);
  util::TopKList<SetId> topk(params.k);
  BucketIndex buckets;  // key: |Q| - rows seen; value: score
  const uint32_t rows_total = static_cast<uint32_t>(query.size());

  size_t tuples = 0;
  while (auto tuple = stream.Next()) {
    ++tuples;
    const Score s = tuple->sim;
    // The bound score + remaining_rows * s is *exact* at convergence: it is
    // the same retained-row-maxima bound as the 1:1 engine, which for the
    // many-to-one measure equals the final score.
    if (params.use_iub_filter) {
      buckets.Prune(s, topk.Bottom(), [&](SetId id) {
        pruned[id] = 1;
        states.erase(id);
        ++result.stats.iub_filtered;
      });
    }
    for (SetId id : inverted_.Postings(tuple->token)) {
      if (pruned[id]) continue;
      auto it = states.find(id);
      if (it == states.end()) {
        ++result.stats.candidates;
        const Score ub0 = static_cast<Score>(rows_total) * s;
        if (params.use_iub_filter && ub0 < topk.Bottom() - kScoreEps) {
          pruned[id] = 1;
          ++result.stats.iub_filtered;
          continue;
        }
        it = states.emplace(id, State{}).first;
        if (params.use_iub_filter) buckets.Insert(id, rows_total, 0.0);
      }
      State& state = it->second;
      const uint32_t m_old = rows_total - static_cast<uint32_t>(state.rows.size());
      const Score score_old = state.score;
      if (state.AddRow(tuple->query_pos, s)) {
        if (params.use_iub_filter) {
          buckets.Move(id, m_old, score_old,
                       rows_total - static_cast<uint32_t>(state.rows.size()),
                       state.score);
          ++result.stats.bucket_moves;
        }
        // The accumulated score is itself a lower bound on the final score,
        // so the running top-k threshold may rise immediately.
        topk.Offer(id, state.score);
      }
    }
  }
  result.stats.stream_tuples = tuples;

  // Stream exhausted: every candidate's accumulated score is exact. The
  // top-k list already holds the answer (scores were offered monotonically).
  for (const auto& [id, score] : topk.Descending()) {
    result.topk.push_back({id, score, /*exact=*/true});
  }
  result.stats.timers.Accumulate("refinement", timer.ElapsedSeconds());
  result.stats.memory.AddPeak("many_to_one.states",
                              states.size() * sizeof(State));
  return result;
}

}  // namespace koios::core
