#include "koios/core/searcher.h"

#include <algorithm>
#include <cassert>
#include <future>

#include "koios/core/edge_cache.h"
#include "koios/core/refinement.h"
#include "koios/sim/token_stream.h"
#include "koios/util/rng.h"
#include "koios/util/thread_pool.h"
#include "koios/util/timer.h"

namespace koios::core {

KoiosSearcher::KoiosSearcher(const index::SetCollection* sets,
                             sim::SimilarityIndex* index,
                             const SearcherOptions& options)
    : sets_(sets), index_(index), options_(options) {
  const size_t p = std::max<size_t>(1, options_.num_partitions);
  // Random partition assignment (paper §VI: "we randomly partition the
  // repository"); expected equal sizes.
  std::vector<std::vector<SetId>> members(p);
  util::Rng rng(options_.partition_seed);
  for (SetId id = 0; id < sets_->size(); ++id) {
    members[p == 1 ? 0 : rng.NextBounded(p)].push_back(id);
  }
  partition_inverted_.reserve(p);
  for (const auto& subset : members) {
    partition_inverted_.emplace_back(*sets_, subset);
  }
}

bool KoiosSearcher::InVocabulary(TokenId token) const {
  for (const auto& inverted : partition_inverted_) {
    if (inverted.InVocabulary(token)) return true;
  }
  return false;
}

size_t KoiosSearcher::IndexMemoryUsageBytes() const {
  size_t bytes = 0;
  for (const auto& inverted : partition_inverted_) {
    bytes += inverted.MemoryUsageBytes();
  }
  return bytes;
}

SearchResult KoiosSearcher::Search(std::span<const TokenId> query,
                                   const SearchParams& params) {
  assert(params.k >= 1);
  assert(params.alpha > 0.0);
  SearchResult result;
  if (query.empty() || sets_->size() == 0) return result;

  // ---- shared refinement input: materialize the token stream once -------
  util::WallTimer stream_timer;
  sim::TokenStream stream(
      std::vector<TokenId>(query.begin(), query.end()), index_, params.alpha,
      [this](TokenId t) { return InVocabulary(t); });
  EdgeCache cache(&stream);
  result.stats.timers.Accumulate("refinement", stream_timer.ElapsedSeconds());
  result.stats.memory.AddPeak("stream.edge_cache", cache.MemoryUsageBytes());
  result.stats.memory.AddPeak("index.inverted", IndexMemoryUsageBytes());

  // ---- per-partition search under a shared global θlb -------------------
  GlobalThreshold global_theta;
  const size_t p = partition_inverted_.size();
  std::vector<std::vector<ResultEntry>> partial(p);
  std::vector<SearchStats> partial_stats(p);

  auto search_partition = [&](size_t part, util::ThreadPool* em_pool) {
    SearchStats& stats = partial_stats[part];
    RefinementPhase refinement(sets_, &partition_inverted_[part], query.size(),
                               params);
    util::WallTimer timer;
    RefinementOutput refined =
        refinement.Run(cache, &stats, p > 1 ? &global_theta : nullptr);
    stats.timers.Accumulate("refinement", timer.ElapsedSeconds());

    timer.Restart();
    PostProcessor post(sets_, &cache, params, p > 1 ? &global_theta : nullptr,
                       em_pool);
    partial[part] = post.Run(std::move(refined), &stats);
    stats.timers.Accumulate("postprocess", timer.ElapsedSeconds());
  };

  if (p == 1) {
    // Unpartitioned: parallelism goes to the exact-matching batches.
    if (params.num_threads > 1) {
      util::ThreadPool pool(params.num_threads);
      search_partition(0, &pool);
    } else {
      search_partition(0, nullptr);
    }
  } else if (params.num_threads > 1) {
    // Partitions in parallel, exact matching inline within each.
    util::ThreadPool pool(params.num_threads);
    std::vector<std::future<void>> futures;
    futures.reserve(p);
    for (size_t part = 0; part < p; ++part) {
      futures.push_back(
          pool.Submit([&search_partition, part] { search_partition(part, nullptr); }));
    }
    for (auto& f : futures) f.get();
  } else {
    for (size_t part = 0; part < p; ++part) search_partition(part, nullptr);
  }

  // ---- merge-sort the per-partition top-k lists --------------------------
  std::vector<ResultEntry> merged;
  for (size_t part = 0; part < p; ++part) {
    merged.insert(merged.end(), partial[part].begin(), partial[part].end());
    result.stats.Merge(partial_stats[part]);
  }
  std::sort(merged.begin(), merged.end(),
            [](const ResultEntry& a, const ResultEntry& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.set < b.set;
            });
  if (merged.size() > params.k) merged.resize(params.k);
  result.topk = std::move(merged);
  return result;
}

}  // namespace koios::core
