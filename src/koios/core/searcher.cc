#include "koios/core/searcher.h"

#include <algorithm>
#include <cassert>
#include <future>
#include <memory>

#include "koios/core/edge_cache.h"
#include "koios/core/refinement.h"
#include "koios/sim/token_stream.h"
#include "koios/util/rng.h"
#include "koios/util/thread_pool.h"
#include "koios/util/timer.h"

namespace koios::core {

KoiosSearcher::KoiosSearcher(const index::SetCollection* sets,
                             sim::SimilarityIndex* index,
                             const SearcherOptions& options)
    : sets_(sets), index_(index), options_(options) {
  const size_t p = std::max<size_t>(1, options_.num_partitions);
  // Random partition assignment (paper §VI: "we randomly partition the
  // repository"); expected equal sizes.
  std::vector<std::vector<SetId>> members(p);
  util::Rng rng(options_.partition_seed);
  for (SetId id = 0; id < sets_->size(); ++id) {
    members[p == 1 ? 0 : rng.NextBounded(p)].push_back(id);
  }
  partition_inverted_.reserve(p);
  for (const auto& subset : members) {
    partition_inverted_.emplace_back(*sets_, subset);
  }
}

bool KoiosSearcher::InVocabulary(TokenId token) const {
  for (const auto& inverted : partition_inverted_) {
    if (inverted.InVocabulary(token)) return true;
  }
  return false;
}

size_t KoiosSearcher::IndexMemoryUsageBytes() const {
  size_t bytes = 0;
  for (const auto& inverted : partition_inverted_) {
    bytes += inverted.MemoryUsageBytes();
  }
  return bytes;
}

SearchResult KoiosSearcher::Search(std::span<const TokenId> query,
                                   const SearchParams& params) {
  assert(params.k >= 1);
  assert(params.alpha > 0.0);
  SearchResult result;
  if (query.empty() || sets_->size() == 0) return result;

  // One pool serves the whole query: cursor-construction fan-out during
  // the token stream's Prewarm, concurrent partition refinement, and the
  // exact-matching batches. It is attached to the index up front so the
  // stream constructor's Prewarm parallelizes even in partitioned runs
  // (the seed created the pool only after the stream was materialized).
  const size_t p = partition_inverted_.size();
  std::unique_ptr<util::ThreadPool> pool;
  // Restores the index's previous pool on every exit path: the per-query
  // pool dies with this frame (a stale pointer would be dereferenced by
  // the next Search), and an owner-attached long-lived pool must survive
  // the query.
  struct PoolAttachment {
    sim::SimilarityIndex* index = nullptr;
    util::ThreadPool* previous = nullptr;
    ~PoolAttachment() {
      if (index != nullptr) index->set_thread_pool(previous);
    }
  } attachment;
  if (params.num_threads > 1) {
    pool = std::make_unique<util::ThreadPool>(params.num_threads);
    attachment.previous = index_->thread_pool();
    index_->set_thread_pool(pool.get());
    attachment.index = index_;
  }

  // ---- shared refinement input: the token stream, materialized once ----
  util::WallTimer stream_timer;
  sim::TokenStream stream(
      std::vector<TokenId>(query.begin(), query.end()), index_, params.alpha,
      [this](TokenId t) { return InVocabulary(t); });
  EdgeCache cache(&stream, EdgeCache::Deferred{});

  // ---- per-partition search under a shared global θlb -------------------
  GlobalThreshold global_theta;
  std::vector<std::vector<ResultEntry>> partial(p);
  std::vector<SearchStats> partial_stats(p);

  auto search_partition = [&](size_t part, util::ThreadPool* em_pool) {
    SearchStats& stats = partial_stats[part];
    RefinementPhase refinement(sets_, &partition_inverted_[part], query.size(),
                               params);
    util::WallTimer timer;
    RefinementOutput refined =
        refinement.Run(cache, &stats, p > 1 ? &global_theta : nullptr);
    stats.timers.Accumulate("refinement", timer.ElapsedSeconds());

    timer.Restart();
    PostProcessor post(sets_, &cache, params, p > 1 ? &global_theta : nullptr,
                       em_pool);
    partial[part] = post.Run(std::move(refined), &stats);
    stats.timers.Accumulate("postprocess", timer.ElapsedSeconds());
  };

  // Declared AFTER everything the partition tasks touch, with a joining
  // guard: if anything below throws while tasks are in flight, the guard
  // drains them before the unwind destroys cache/partial/stats (the
  // poisoned cache unblocks any consumer stuck in NextTuples). On the
  // happy path every future is already consumed and the guard no-ops.
  std::vector<std::future<void>> futures;
  struct FutureJoiner {
    std::vector<std::future<void>>* futures;
    EdgeCache* cache;
    ~FutureJoiner() {
      bool pending = false;
      for (const auto& f : *futures) pending |= f.valid();
      if (!pending) return;
      // The producer is gone; release consumers blocked on it, then join.
      cache->Abort();
      for (auto& f : *futures) {
        if (!f.valid()) continue;
        try {
          f.get();
        } catch (...) {
          // Unwinding already; the primary exception wins.
        }
      }
    }
  } joiner{&futures, &cache};

  if (p > 1 && pool != nullptr) {
    // Overlapped partitioned search: the partition tasks start refining
    // immediately, pulling tuples through the cache's incremental
    // interface, while this thread materializes the stream — cursor
    // construction and refinement proceed concurrently instead of
    // back-to-back. Exact matching stays inline within each partition.
    // The producer runs here, NOT on the pool, so starved consumers can
    // never deadlock it out of a worker slot.
    futures.reserve(p);
    for (size_t part = 0; part < p; ++part) {
      futures.push_back(
          pool->Submit([&search_partition, part] { search_partition(part, nullptr); }));
    }
    cache.Materialize();
    // Diagnostic label. The "refinement" phase benches read still covers
    // the stream cost: every partition's refinement timer spans this whole
    // materialization (consumers block on the producer through NextTuples
    // until the stream is drained), exactly as the seed's serialized
    // stream+replay did. Folding this span into "refinement" as well
    // would double-count concurrent wall-clock; "stream" exists to show
    // how much of it the overlap hides.
    result.stats.timers.Accumulate("stream", stream_timer.ElapsedSeconds());
    for (auto& f : futures) f.get();
  } else {
    cache.Materialize();
    result.stats.timers.Accumulate("refinement", stream_timer.ElapsedSeconds());
    if (p == 1) {
      // Unpartitioned: parallelism goes to the exact-matching batches.
      search_partition(0, pool.get());
    } else {
      for (size_t part = 0; part < p; ++part) search_partition(part, nullptr);
    }
  }
  result.stats.memory.AddPeak("stream.edge_cache", cache.MemoryUsageBytes());
  result.stats.memory.AddPeak("index.inverted", IndexMemoryUsageBytes());

  // ---- merge-sort the per-partition top-k lists --------------------------
  std::vector<ResultEntry> merged;
  for (size_t part = 0; part < p; ++part) {
    merged.insert(merged.end(), partial[part].begin(), partial[part].end());
    result.stats.Merge(partial_stats[part]);
  }
  std::sort(merged.begin(), merged.end(),
            [](const ResultEntry& a, const ResultEntry& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.set < b.set;
            });
  if (merged.size() > params.k) merged.resize(params.k);
  result.topk = std::move(merged);
  return result;
}

}  // namespace koios::core
