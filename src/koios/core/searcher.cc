#include "koios/core/searcher.h"

#include <algorithm>
#include <cassert>
#include <future>
#include <memory>
#include <optional>

#include "koios/core/edge_cache.h"
#include "koios/core/refinement.h"
#include "koios/sim/token_stream.h"
#include "koios/util/rng.h"
#include "koios/util/thread_pool.h"
#include "koios/util/timer.h"
#include "koios/util/trace_recorder.h"

namespace koios::core {

KoiosSearcher::KoiosSearcher(const index::SetCollection* sets,
                             sim::SimilarityIndex* index,
                             const SearcherOptions& options)
    : sets_(sets), index_(index), options_(options) {
  const size_t p = std::max<size_t>(1, options_.num_partitions);
  // Random partition assignment (paper §VI: "we randomly partition the
  // repository"); expected equal sizes.
  std::vector<std::vector<SetId>> members(p);
  util::Rng rng(options_.partition_seed);
  for (SetId id = 0; id < sets_->size(); ++id) {
    members[p == 1 ? 0 : rng.NextBounded(p)].push_back(id);
  }
  partition_inverted_.reserve(p);
  for (const auto& subset : members) {
    partition_inverted_.emplace_back(*sets_, subset);
  }
}

bool KoiosSearcher::InVocabulary(TokenId token) const {
  for (const auto& inverted : partition_inverted_) {
    if (inverted.InVocabulary(token)) return true;
  }
  return false;
}

size_t KoiosSearcher::IndexMemoryUsageBytes() const {
  size_t bytes = 0;
  for (const auto& inverted : partition_inverted_) {
    bytes += inverted.MemoryUsageBytes();
  }
  return bytes;
}

SearchResult KoiosSearcher::Search(std::span<const TokenId> query,
                                   const SearchParams& params) {
  return Search(query, params, index_, nullptr);
}

SearchResult KoiosSearcher::Search(std::span<const TokenId> query,
                                   const SearchParams& params,
                                   sim::SimilarityIndex* index,
                                   SearchContext* ctx) const {
  assert(params.k >= 1);
  assert(params.alpha > 0.0);
  SearchResult result;
  if (query.empty() || sets_->size() == 0) return result;

  // One pool serves the whole query: cursor-construction fan-out during
  // the token stream's Prewarm, concurrent partition refinement, and the
  // exact-matching batches. It is attached to the index up front so the
  // stream constructor's Prewarm parallelizes even in partitioned runs
  // (the seed created the pool only after the stream was materialized).
  const size_t p = partition_inverted_.size();
  std::unique_ptr<util::ThreadPool> pool;
  // Restores the index's previous pool on every exit path: the per-query
  // pool dies with this frame (a stale pointer would be dereferenced by
  // the next Search), and an owner-attached long-lived pool must survive
  // the query.
  struct PoolAttachment {
    sim::SimilarityIndex* index = nullptr;
    util::ThreadPool* previous = nullptr;
    ~PoolAttachment() {
      if (index != nullptr) index->set_thread_pool(previous);
    }
  } attachment;
  if (params.num_threads > 1) {
    pool = std::make_unique<util::ThreadPool>(params.num_threads);
    attachment.previous = index->thread_pool();
    index->set_thread_pool(pool.get());
    attachment.index = index;
  }

  // Per-query machinery: callers that care (the serve engine) pass their
  // own context (deadline, cancel flag, observable θlb); the legacy path
  // gets a stack-local one.
  SearchContext local_ctx;
  if (ctx == nullptr) ctx = &local_ctx;
  ctx->BeginSearch(p);
  ctx->CheckCancelled();  // an already-expired deadline never starts work

  // Root span of the search core (children: cursor build, per-partition
  // refinement/postprocess, the stream producer). The context carries the
  // trace so phase work fanned onto pool threads parents correctly.
  util::TraceSpan search_span("search", "query_tokens", query.size());
  ctx->set_trace(search_span.trace_id(), search_span.span_id());

  // ---- shared refinement input: the token stream, produced once --------
  util::WallTimer stream_timer;
  std::optional<sim::TokenStream> stream_storage;
  {
    // Cursor construction: TokenStream's constructor prewarms every query
    // token's (token, α) cursor — the up-front index cost of a query.
    // Timed into the stats (not only the sampled trace) so per-shard
    // breakdowns can read the cost of every query, sampled or not.
    KOIOS_TRACE_SPAN("search.cursor_build");
    util::WallTimer cursor_timer;
    stream_storage.emplace(
        std::vector<TokenId>(query.begin(), query.end()), index, params.alpha,
        [this](TokenId t) { return InVocabulary(t); });
    result.stats.timers.Accumulate("cursor_build",
                                   cursor_timer.ElapsedSeconds());
  }
  sim::TokenStream& stream = *stream_storage;

  // ---- θlb→producer feedback (§IV–VI) ----------------------------------
  // Refinement consumers publish their running θlb into the shared
  // GlobalThreshold (one partition's k-th lower bound is a valid bound on
  // the merged θ*k, so the maximum serves every partition) and derive from
  // it the stop similarity τ(θlb, |Q|, partial scores) at which they stop
  // consuming; each declares its τ to the controller, and the producer
  // stops materializing below the minimum once every partition has
  // declared — tuples under τ are never ordered, scored or cached.
  // Exactness requires the index's SimilarityFunction so exact matching
  // can complete below-τ edges on demand, AND an exact-neighbor index:
  // completing from the raw similarity would score pairs an approximate
  // probe (LSH/MinHash) never surfaced, silently changing results between
  // the modes. Without either (or with the ablation toggle off) the
  // stream drains to α as the seed did.
  const sim::SimilarityFunction* completer = index->similarity();
  const bool feedback = params.use_stream_feedback && completer != nullptr &&
                        index->exact_neighbors();
  EdgeCache::StopSimFn stop_fn;
  if (feedback) {
    stop_fn = [ctx]() -> Score {
      return ctx->stop_controller().ProducerStop();
    };
  }

  // Overlapped (a pool exists): partitions refine on workers while this
  // thread produces. Serial: the consumer itself pulls production along
  // inside NextTuples (inline mode), pipelining on one thread.
  const bool overlapped = pool != nullptr;
  std::optional<EdgeCache> cache_storage;
  if (overlapped) {
    // Paced deferred production (feedback only): the producer thread stays
    // within stream_producer_lead tuples of the slowest partition consumer
    // so slow consumers still declare their stop before the drain — the
    // overlapped-mode production race. Inline mode needs no pacing: the
    // consumer drives production itself.
    cache_storage.emplace(&stream, EdgeCache::Deferred{}, completer, stop_fn,
                          ctx, /*expected_consumers=*/feedback ? p : 0,
                          /*producer_lead=*/params.stream_producer_lead);
  } else {
    cache_storage.emplace(&stream, EdgeCache::InlineProducer{}, completer,
                          stop_fn, ctx);
  }
  EdgeCache& cache = *cache_storage;

  // ---- per-partition search under the shared global θlb ------------------
  std::vector<std::vector<ResultEntry>> partial(p);
  std::vector<SearchStats> partial_stats(p);

  auto refine_partition = [&](size_t part) -> RefinementOutput {
    SearchStats& stats = partial_stats[part];
    // Partition tasks may run on pool threads: adopt the query's trace so
    // their spans parent under the "search" root.
    util::TraceAdopt trace_adopt(ctx->trace_id(), ctx->trace_parent());
    util::TraceSpan refine_span("search.refinement");
    // Pacing registration first thing in the task (before refinement's own
    // allocations), released on every exit — a partition that unwinds must
    // not pace the producer forever. No-op when pacing is off.
    EdgeCache::ConsumerGuard consumer(&cache);
    RefinementPhase refinement(sets_, &partition_inverted_[part], query.size(),
                               params);
    util::WallTimer timer;
    RefinementOutput refined = refinement.Run(&cache, &stats, ctx, &consumer);
    stats.timers.Accumulate("refinement", timer.ElapsedSeconds());
    refine_span.set_arg("tuples", stats.stream_tuples);
    return refined;
  };
  auto postprocess_partition = [&](size_t part, RefinementOutput refined,
                                   util::ThreadPool* em_pool) {
    SearchStats& stats = partial_stats[part];
    util::TraceAdopt trace_adopt(ctx->trace_id(), ctx->trace_parent());
    util::TraceSpan post_span("search.postprocess");
    util::WallTimer timer;
    PostProcessor post(sets_, &cache, params, ctx, em_pool);
    partial[part] = post.Run(std::move(refined), &stats);
    stats.timers.Accumulate("postprocess", timer.ElapsedSeconds());
    post_span.set_arg("em_computed", stats.em_computed);
  };
  auto search_partition = [&](size_t part, util::ThreadPool* em_pool) {
    postprocess_partition(part, refine_partition(part), em_pool);
  };

  // Declared AFTER everything the partition tasks touch, with a joining
  // guard: if anything below throws while tasks are in flight, the guard
  // drains them before the unwind destroys cache/partial/stats (the
  // poisoned cache unblocks any consumer stuck in NextTuples). On the
  // happy path every future is already consumed and the guard no-ops.
  std::optional<RefinementOutput> p1_refined;
  std::vector<std::future<void>> futures;
  struct FutureJoiner {
    std::vector<std::future<void>>* futures;
    EdgeCache* cache;
    ~FutureJoiner() {
      bool pending = false;
      for (const auto& f : *futures) pending |= f.valid();
      if (!pending) return;
      // The producer is gone; release consumers blocked on it, then join.
      cache->Abort();
      for (auto& f : *futures) {
        if (!f.valid()) continue;
        try {
          f.get();
        } catch (...) {
          // Unwinding already; the primary exception wins.
        }
      }
    }
  } joiner{&futures, &cache};

  if (overlapped) {
    // Pipelined search: the partition tasks start refining immediately,
    // pulling tuples through the cache's incremental interface, while this
    // thread produces the stream — cursor construction and refinement
    // proceed concurrently instead of back-to-back, and the consumers'
    // θlb publications feed straight back into this producer's stop
    // similarity. The producer runs here, NOT on the pool, so starved
    // consumers can never deadlock it out of a worker slot. Unpartitioned
    // searches only put REFINEMENT on the pool; post-processing runs back
    // on this thread once production is over, so its exact-matching
    // batches keep the pool's full width (a partition task blocked in the
    // EM futures would strand one worker).
    futures.reserve(p);
    if (p == 1) {
      futures.push_back(
          pool->Submit([&] { p1_refined = refine_partition(0); }));
    } else {
      for (size_t part = 0; part < p; ++part) {
        futures.push_back(pool->Submit(
            [&search_partition, part] { search_partition(part, nullptr); }));
      }
    }
    {
      // The EdgeCache producer: cursor pulls, ordering, caching — the
      // stream side of the pipelined overlap (hidden behind refinement
      // wall-clock when consumers keep up).
      KOIOS_TRACE_SPAN("search.stream_produce");
      cache.Materialize();
    }
    // Diagnostic label. The "refinement" phase benches read still covers
    // the stream cost: every partition's refinement timer spans this whole
    // materialization (consumers block on the producer through NextTuples
    // until the stream ends), exactly as the seed's serialized
    // stream+replay did. Folding this span into "refinement" as well
    // would double-count concurrent wall-clock; "stream" exists to show
    // how much of it the overlap hides.
    result.stats.timers.Accumulate("stream", stream_timer.ElapsedSeconds());
    for (auto& f : futures) f.get();
    if (p == 1) {
      postprocess_partition(0, std::move(*p1_refined), pool.get());
    }
  } else {
    // Serial: production is pipelined inside the consumers' pull loops
    // (inline mode), so its cost lands in the partitions' "refinement"
    // timers as the seed's materialize-then-replay did. The cache stays
    // unsealed across partitions — a later partition may need tuples below
    // an earlier one's stop — and is sealed once all of them finished.
    for (size_t part = 0; part < p; ++part) search_partition(part, nullptr);
    cache.FinishProduction();
  }
  result.stats.stream_tuples_produced = cache.produced();
  result.stats.stream_stop_sim = cache.stop_sim();
  result.stats.memory.AddPeak("stream.edge_cache", cache.MemoryUsageBytes());
  result.stats.memory.AddPeak("index.inverted", IndexMemoryUsageBytes());

  // ---- merge-sort the per-partition top-k lists --------------------------
  std::vector<ResultEntry> merged;
  for (size_t part = 0; part < p; ++part) {
    merged.insert(merged.end(), partial[part].begin(), partial[part].end());
    result.stats.Merge(partial_stats[part]);
  }
  std::sort(merged.begin(), merged.end(),
            [](const ResultEntry& a, const ResultEntry& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.set < b.set;
            });
  if (merged.size() > params.k) merged.resize(params.k);
  result.topk = std::move(merged);
  return result;
}

}  // namespace koios::core
