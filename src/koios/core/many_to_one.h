// Many-to-one semantic overlap — the extension the paper sketches as
// future work (§X): allow several query elements to map to the same
// candidate element ("United States of America" and "United States" both
// mapping to "USA"), covering noise and spelling variation *within* the
// query.
//
// Dropping the injectivity constraint makes the measure separable:
//
//   SO₁ₙ(Q, C) = Σ_{q ∈ Q} max_{c ∈ C} simα(q, c)
//
// because each query element independently takes its best α-surviving
// partner. Consequences exploited here:
//   * no bipartite matching — the exact score is computable in O(E) from
//     the α-surviving edges;
//   * the Koios refinement machinery computes it *incrementally*: the
//     retained-row-maxima bound of the 1:1 engine (CandidateState::AddRow
//     with capacity |Q|) is exactly this measure once the stream is
//     exhausted, so the "upper bound" converges to the true score and no
//     post-processing phase is needed at all;
//   * SO(Q, C) ≤ SO₁ₙ(Q, C) always (any 1:1 matching is a many-to-one
//     mapping), so the 1:1 measure's results are a subset re-scoring.
#ifndef KOIOS_CORE_MANY_TO_ONE_H_
#define KOIOS_CORE_MANY_TO_ONE_H_

#include <span>
#include <vector>

#include "koios/core/search_types.h"
#include "koios/index/inverted_index.h"
#include "koios/index/set_collection.h"
#include "koios/sim/similarity.h"

namespace koios::core {

/// Exact many-to-one semantic overlap of two sets (oracle path, used by
/// tests and small workloads).
Score ManyToOneOverlap(std::span<const TokenId> query,
                       std::span<const TokenId> candidate,
                       const sim::SimilarityFunction& sim, Score alpha);

/// Top-k search under the many-to-one measure. Streams pairs once and
/// accumulates per-candidate row maxima; prunes with the same bucketized
/// upper bound as the 1:1 engine (which is *tight* here).
class ManyToOneSearcher {
 public:
  /// Both referents must outlive the searcher.
  ManyToOneSearcher(const index::SetCollection* sets,
                    sim::SimilarityIndex* index);

  SearchResult Search(std::span<const TokenId> query,
                      const SearchParams& params);

 private:
  const index::SetCollection* sets_;
  sim::SimilarityIndex* index_;
  index::InvertedIndex inverted_;
};

}  // namespace koios::core

#endif  // KOIOS_CORE_MANY_TO_ONE_H_
