#include "koios/core/candidate_state.h"

// Header-only implementation; translation unit kept for the build graph.
