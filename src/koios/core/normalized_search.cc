#include "koios/core/normalized_search.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "koios/core/candidate_state.h"
#include "koios/core/edge_cache.h"
#include "koios/matching/hungarian.h"
#include "koios/matching/semantic_overlap.h"
#include "koios/sim/token_stream.h"
#include "koios/util/timer.h"
#include "koios/util/top_k_list.h"

namespace koios::core {

Score NormalizedOverlap(std::span<const TokenId> query,
                        std::span<const TokenId> candidate,
                        const sim::SimilarityFunction& sim, Score alpha) {
  if (query.empty() || candidate.empty()) return 0.0;
  const Score so = matching::SemanticOverlap(query, candidate, sim, alpha);
  return so / static_cast<Score>(std::min(query.size(), candidate.size()));
}

NormalizedSearcher::NormalizedSearcher(const index::SetCollection* sets,
                                       sim::SimilarityIndex* index)
    : sets_(sets), index_(index), inverted_(*sets) {}

SearchResult NormalizedSearcher::Search(std::span<const TokenId> query,
                                        const SearchParams& params) {
  SearchResult result;
  if (query.empty() || sets_->size() == 0) return result;
  util::WallTimer timer;

  sim::TokenStream stream(
      std::vector<TokenId>(query.begin(), query.end()), index_, params.alpha,
      [this](TokenId t) { return inverted_.InVocabulary(t); });
  EdgeCache cache(&stream);

  // ---- refinement with per-candidate normalized bounds --------------------
  std::unordered_map<SetId, CandidateState> candidates;
  std::vector<uint8_t> pruned(sets_->size(), 0);
  util::TopKList<SetId> llb(params.k);  // normalized lower bounds

  auto cap_of = [&](const CandidateState& state) {
    return static_cast<Score>(
        std::min<size_t>(query.size(), state.set_size()));
  };

  for (const sim::StreamTuple& tuple : cache.tuples()) {
    const Score s = tuple.sim;
    const Score theta = llb.Bottom();
    for (SetId id : inverted_.Postings(tuple.token)) {
      if (pruned[id]) continue;
      auto it = candidates.find(id);
      if (it == candidates.end()) {
        ++result.stats.candidates;
        CandidateState state(id, static_cast<uint32_t>(sets_->SetSize(id)),
                             static_cast<uint32_t>(query.size()));
        // Arrival bound: UB = cap * s, so NSO <= s regardless of cap.
        if (params.use_iub_filter && s < theta - kScoreEps) {
          pruned[id] = 1;
          ++result.stats.iub_filtered;
          continue;
        }
        it = candidates.emplace(id, state).first;
      }
      CandidateState& state = it->second;
      state.AddRow(tuple.query_pos, s);
      if (state.EdgeValid(tuple.query_pos, tuple.token)) {
        state.AddMatch(tuple.query_pos, tuple.token, s);
        llb.Offer(id, state.partial_score() / cap_of(state));
      }
      // Per-candidate normalized upper bound (no shared bucket cutoff).
      if (params.use_iub_filter &&
          state.UpperBound(s) / cap_of(state) < llb.Bottom() - kScoreEps) {
        pruned[id] = 1;
        candidates.erase(it);
        ++result.stats.iub_filtered;
      }
    }
    ++result.stats.stream_tuples;
  }
  // Final sweep: slack term vanishes after exhaustion.
  for (auto it = candidates.begin(); it != candidates.end();) {
    if (params.use_iub_filter &&
        it->second.FinalUpperBound() / cap_of(it->second) <
            llb.Bottom() - kScoreEps) {
      pruned[it->second.set()] = 1;
      ++result.stats.iub_filtered;
      it = candidates.erase(it);
    } else {
      ++it;
    }
  }
  result.stats.postprocess_sets += candidates.size();
  result.stats.timers.Accumulate("refinement", timer.ElapsedSeconds());

  // ---- verification: window over normalized upper bounds ------------------
  timer.Restart();
  struct Item {
    Score nub;     // normalized upper bound (exact after verification)
    Score cap;
    bool exact = false;
  };
  std::vector<std::pair<Score, SetId>> order;  // (nub, id) descending
  std::unordered_map<SetId, Item> items;
  for (const auto& [id, state] : candidates) {
    const Score cap = cap_of(state);
    Item item{state.FinalUpperBound() / cap, cap, false};
    items.emplace(id, item);
    order.emplace_back(item.nub, id);
  }
  std::sort(order.begin(), order.end(), std::greater<>());

  // Verify in descending bound order until the k-th best verified score
  // dominates every remaining bound.
  util::TopKList<SetId> topk(params.k);
  size_t verified = 0;
  for (const auto& [nub, id] : order) {
    if (topk.Full() && nub < topk.Bottom() - kScoreEps) break;  // dominated
    Item& item = items[id];
    std::vector<uint32_t> rows, cols;
    const matching::WeightMatrix m =
        cache.BuildMatrix(sets_->Tokens(id), &rows, &cols);
    const Score prune_threshold =
        params.use_em_early_termination && topk.Full()
            ? topk.Bottom() * item.cap
            : -1.0;
    const matching::MatchResult match =
        matching::HungarianMatcher::Solve(m, prune_threshold);
    ++verified;
    if (match.early_terminated) {
      ++result.stats.em_early_terminated;
      continue;
    }
    ++result.stats.em_computed;
    const Score nso = match.score / item.cap;
    item.exact = true;
    if (nso > 0.0) topk.Offer(id, nso);
  }
  (void)verified;
  result.stats.timers.Accumulate("postprocess", timer.ElapsedSeconds());

  for (const auto& [id, score] : topk.Descending()) {
    result.topk.push_back({id, score, /*exact=*/true});
  }
  return result;
}

}  // namespace koios::core
