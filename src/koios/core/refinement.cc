#include "koios/core/refinement.h"

#include <algorithm>

#include "koios/core/postprocess.h"

namespace koios::core {

RefinementPhase::RefinementPhase(const index::SetCollection* sets,
                                 const index::InvertedIndex* inverted,
                                 size_t query_size, const SearchParams& params)
    : sets_(sets),
      inverted_(inverted),
      query_size_(query_size),
      params_(params) {}

RefinementOutput RefinementPhase::Run(EdgeCache* cache, SearchStats* stats,
                                      SearchContext* ctx,
                                      EdgeCache::ConsumerGuard* consumer) {
  GlobalThreshold* global_theta = ctx != nullptr ? &ctx->global_theta() : nullptr;
  RefinementOutput out;
  out.llb = util::TopKList<SetId>(params_.k);

  std::vector<SetStatus> status(sets_->size(), SetStatus::kUnseen);
  std::unordered_map<SetId, CandidateState> candidates;
  BucketIndex buckets;

  auto current_theta = [&]() -> Score {
    const Score local = out.llb.Bottom();
    if (global_theta == nullptr) return local;
    return std::max(local, global_theta->Get());
  };
  Score theta_lb = current_theta();
  Score last_sim = 1.0;

  auto prune_candidate = [&](SetId id) {
    status[id] = SetStatus::kPruned;
    candidates.erase(id);
    ++stats->iub_filtered;
  };

  // Consumer-side stop (feedback only, so the drain-to-α ablation replays
  // the stream bit for bit). Condition 1 — exactness: |Q|·s < θlb − ε
  // rules every unseen set out (Lemma 2) and pruning is monotone in θlb.
  // Condition 2 — work balance: stopping freezes every survivor's upper
  // bound at UpperBound(s), so it must not strand more candidates above
  // θlb than post-processing can cheaply dismiss; the bucket index counts
  // the would-be survivors from the partial scores (§V's structure reused
  // verbatim). The count runs at a coarse cadence — it costs O(candidates)
  // worst case, versus an inverted-index probe per tuple.
  const bool may_stop_early = cache->FeedbackEnabled();
  const Score query_size_score = static_cast<Score>(query_size_);
  constexpr size_t kMinSurvivorBudget = 32;
  const size_t fixed_budget =
      std::max<size_t>(kMinSurvivorBudget, 4 * params_.k);
  // Adaptive budget (rent-to-buy, SearchParams::use_adaptive_survivor_budget):
  // strand at most as much estimated EM work as the streaming work already
  // spent, with one EM costed at adaptive_em_cost_tuples stream tuples.
  // Both sides of that balance scale with the per-tuple cost, so it
  // cancels and the rule reduces to tuples_consumed / ratio — which is
  // precisely what makes it robust (no clock, no machine constant): on
  // hardware where tuples are slow, the same tuple count represents
  // proportionally more sunk cost AND proportionally costlier EMs. The
  // budget only ever DELAYS the stop, so exactness is untouched; stats
  // record the value in force at the stop.
  auto survivor_budget = [&]() -> size_t {
    if (!params_.use_adaptive_survivor_budget) return fixed_budget;
    const double affordable = static_cast<double>(stats->stream_tuples) /
                              std::max(params_.adaptive_em_cost_tuples, 1.0);
    return std::max(kMinSurvivorBudget, static_cast<size_t>(affordable));
  };
  constexpr size_t kStopCheckCadence = 64;
  size_t next_stop_check = 0;
  size_t next_cancel_check = 0;
  bool stopped_early = false;
  auto should_stop = [&](Score s) {
    if (ctx != nullptr && stats->stream_tuples >= next_cancel_check) {
      // Deadline/cancellation poll at the stop-check cadence: cheap, and
      // frequent enough that an expired query unwinds within a few dozen
      // tuples.
      next_cancel_check = stats->stream_tuples + kStopCheckCadence;
      ctx->CheckCancelled();
    }
    if (!may_stop_early || s * query_size_score >= theta_lb - kScoreEps) {
      return false;
    }
    if (stats->stream_tuples < next_stop_check) return false;
    next_stop_check = stats->stream_tuples + kStopCheckCadence;
    const size_t budget = survivor_budget();
    size_t survivors;
    if (params_.use_iub_filter && params_.use_bucket_index) {
      survivors = buckets.CountSurvivors(s, theta_lb, budget);
    } else {
      survivors = 0;
      for (const auto& [id, state] : candidates) {
        if (state.UpperBound(s) >= theta_lb - kScoreEps) ++survivors;
        if (survivors > budget) break;
      }
    }
    if (survivors <= budget) {
      stats->stream_survivor_budget =
          std::max(stats->stream_survivor_budget, budget);
      return true;
    }
    return false;
  };

  auto process_tuple = [&](const sim::StreamTuple& tuple) {
    const Score s = tuple.sim;
    last_sim = s;

    // Bucketized iUB filter: the arrival of similarity s tightens every
    // candidate's upper bound to S_i + m_i * s; scan each bucket's
    // ascending-S_i prefix (§V). Without the bucket index (ablation), each
    // candidate is checked individually.
    if (params_.use_iub_filter) {
      if (params_.use_bucket_index) {
        buckets.Prune(s, theta_lb, prune_candidate);
      } else {
        for (auto it = candidates.begin(); it != candidates.end();) {
          if (it->second.UpperBound(s) < theta_lb - kScoreEps) {
            status[it->first] = SetStatus::kPruned;
            ++stats->iub_filtered;
            it = candidates.erase(it);
          } else {
            ++it;
          }
        }
      }
    }

    // Probe the inverted index and update the sets containing this token.
    for (SetId id : inverted_->Postings(tuple.token)) {
      if (status[id] == SetStatus::kPruned) continue;

      auto it = candidates.find(id);
      if (it == candidates.end()) {
        // First sighting: s is this set's maximum element similarity to
        // any query element, so UB(C) = min(|Q|, |C|) * s (Lemma 2).
        ++stats->candidates;
        CandidateState state(id, static_cast<uint32_t>(sets_->SetSize(id)),
                             static_cast<uint32_t>(query_size_));
        if (params_.use_iub_filter &&
            state.UpperBound(s) < theta_lb - kScoreEps) {
          status[id] = SetStatus::kPruned;
          ++stats->iub_filtered;
          continue;
        }
        status[id] = SetStatus::kCandidate;
        it = candidates.emplace(id, state).first;
        if (params_.use_iub_filter && params_.use_bucket_index) {
          buckets.Insert(id, state.remaining(), state.row_sum());
        }
      }

      CandidateState& state = it->second;

      // iUB row update: retain this row's maximum if the row is new and
      // capacity remains (see CandidateState's class comment for the sound
      // bound replacing the paper's Lemma 6).
      if (params_.use_iub_filter && params_.use_bucket_index) {
        const uint32_t m_old = state.remaining();
        const Score r_old = state.row_sum();
        if (state.AddRow(tuple.query_pos, s)) {
          buckets.Move(id, m_old, r_old, state.remaining(), state.row_sum());
          ++stats->bucket_moves;
        }
      } else {
        state.AddRow(tuple.query_pos, s);
      }

      // Partial greedy matching update (iLB, Lemma 5): accept the edge iff
      // both endpoints are unmatched. Stream order makes this the true
      // greedy matching over the edges seen so far.
      if (state.EdgeValid(tuple.query_pos, tuple.token)) {
        state.AddMatch(tuple.query_pos, tuple.token, s);
        // LB grew; the running top-k list and θlb may improve (Lemma 4).
        out.llb.Offer(id, state.partial_score());
        if (global_theta != nullptr && out.llb.Full()) {
          global_theta->Publish(out.llb.Bottom());
        }
        theta_lb = current_theta();
      }
    }
    ++stats->stream_tuples;
  };

  if (cache->Materialized()) {
    // Fully materialized (synchronous caches and later partitions of a
    // serial partitioned search): replay in place.
    for (const sim::StreamTuple& tuple : cache->tuples()) {
      if (should_stop(tuple.sim)) {
        out.ub_slack = tuple.sim;
        stopped_early = true;
        break;
      }
      process_tuple(tuple);
    }
  } else {
    // Pipelined search: the producer is still materializing (or, inline,
    // production happens inside NextTuples on this very thread); pull
    // copies in chunks through the cache's incremental interface, blocking
    // only when refinement outruns cursor construction.
    std::vector<sim::StreamTuple> chunk(cache->PreferredConsumeChunk());
    size_t consumed = 0;
    while (!stopped_early) {
      const size_t n =
          cache->NextTuples(consumed, std::span<sim::StreamTuple>(chunk));
      if (n == 0) break;
      // Report the hand-off before processing: a paced producer measures
      // its lead from tuples DELIVERED here, so the lead budget absorbs
      // the chunk being worked on.
      if (consumer != nullptr) consumer->Advance(consumed + n);
      for (size_t i = 0; i < n; ++i) {
        if (should_stop(chunk[i].sim)) {
          out.ub_slack = chunk[i].sim;
          stopped_early = true;
          break;
        }
        process_tuple(chunk[i]);
      }
      consumed += n;
    }
  }
  if (stopped_early) {
    // Declare the stop so the producer may cease materializing below it
    // once every partition's consumer has declared one. stopped_early
    // implies feedback was enabled, which implies a context exists (the
    // searcher only wires a stop source when it has one).
    if (ctx != nullptr) {
      ctx->stop_controller().PublishConsumerStop(out.ub_slack);
    }
  } else {
    // Consumed everything produced; unprocessed pairs are exactly the ones
    // the producer's feedback stop withheld (0 when drained to α).
    out.ub_slack = cache->stop_sim();
  }

  // Final sweep after the stream ends: the slack term drops to ub_slack —
  // 0 at exhaustion (a row without a retained maximum has no α-edge left,
  // FinalUpperBound), the stop similarity when the feedback loop ended the
  // stream early. For the bucket filter this is exactly a prune pass with
  // sim = ub_slack.
  if (params_.use_iub_filter) {
    if (params_.use_bucket_index) {
      buckets.Prune(out.ub_slack, theta_lb, prune_candidate);
    } else {
      for (auto it = candidates.begin(); it != candidates.end();) {
        if (it->second.UpperBound(out.ub_slack) < theta_lb - kScoreEps) {
          status[it->first] = SetStatus::kPruned;
          ++stats->iub_filtered;
          it = candidates.erase(it);
        } else {
          ++it;
        }
      }
    }
  }

  out.survivors.reserve(candidates.size());
  size_t candidate_bytes = 0;
  for (auto& [id, state] : candidates) {
    candidate_bytes += state.MemoryUsageBytes();
    out.survivors.push_back(std::move(state));
  }
  out.last_sim = last_sim;
  stats->postprocess_sets += out.survivors.size();
  stats->memory.AddPeak("refinement.candidates", candidate_bytes);
  stats->memory.AddPeak("refinement.buckets", buckets.MemoryUsageBytes());
  stats->memory.AddPeak("refinement.status", status.capacity());
  stats->memory.AddPeak("refinement.llb", out.llb.MemoryUsageBytes());
  return out;
}

}  // namespace koios::core
