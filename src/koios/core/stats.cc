#include "koios/core/stats.h"

#include <sstream>

namespace koios::core {

std::string SearchStats::ToString() const {
  std::ostringstream out;
  out << "refinement:  tuples=" << stream_tuples
      << " produced=" << stream_tuples_produced
      << " stop_sim=" << stream_stop_sim
      << " survivor_budget=" << stream_survivor_budget
      << " candidates=" << candidates
      << " iub_filtered=" << iub_filtered << " bucket_moves=" << bucket_moves
      << "\n";
  out << "postprocess: sets=" << postprocess_sets << " no_em=" << no_em_skipped
      << " em_early_term=" << em_early_terminated << " em=" << em_computed
      << " ub_pruned=" << postprocess_ub_pruned
      << " verify_ems=" << result_verification_ems
      << " ws_reuses=" << em_workspace_reuses << "\n";
  out << "time:        ";
  for (const auto& [name, secs] : timers.phases()) {
    out << name << "=" << secs << "s ";
  }
  out << "\nmemory:      " << util::MemoryTracker::FormatBytes(memory.TotalBytes());
  return out.str();
}

}  // namespace koios::core
