// Materialized token stream + similarity cache.
//
// Refinement consumes the stream Ie to exhaustion (every pair (qi, t) with
// sim >= α, in non-increasing similarity order). We materialize that
// sequence once per query: (1) partitioned search can replay the same
// global order in every partition, and (2) the α-surviving edges double as
// the similarity cache the paper reuses when initializing the matching
// matrices during post-processing (§VIII-A3), so no similarity is ever
// computed twice.
//
// Materialization can be DEFERRED: the searcher constructs the cache with
// the Deferred tag, submits per-partition refinement tasks, and then runs
// Materialize() on its own thread. Consumers pull tuples through
// NextTuples(), which blocks only when they outrun the producer — so
// partitioned searches overlap cursor construction (the index work behind
// each produced tuple) with refinement instead of serializing them.
// Producer-side publishing is batched; the consumer fast path after
// completion is lock-free.
#ifndef KOIOS_CORE_EDGE_CACHE_H_
#define KOIOS_CORE_EDGE_CACHE_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "koios/matching/hungarian.h"
#include "koios/sim/token_stream.h"
#include "koios/util/types.h"

namespace koios::core {

/// One α-surviving edge incident to vocabulary token `t`: the query
/// position and the similarity.
struct CachedEdge {
  uint32_t query_pos = 0;
  double sim = 0.0;  // double: cached weights must match the oracle exactly
};

class EdgeCache {
 public:
  /// Drains `stream` synchronously in the constructor (order preserved in
  /// `tuples()`, per-token edge lists in `EdgesOf`).
  explicit EdgeCache(sim::TokenStream* stream);

  /// Deferred mode: records the stream but produces nothing until
  /// Materialize() runs. Until then, consumers may only call NextTuples().
  struct Deferred {};
  EdgeCache(sim::TokenStream* stream, Deferred);

  /// Drains the stream, publishing tuples incrementally to NextTuples()
  /// consumers. Call exactly once (the synchronous constructor calls it);
  /// single producer, typically the searcher's main thread.
  void Materialize();

  /// Copies up to `buf.size()` tuples starting at stream position `from`
  /// into `buf` and returns how many were copied; 0 means the stream is
  /// exhausted at `from`. Blocks while position `from` is not yet
  /// materialized. Each consumer owns its own cursor (`from`), so any
  /// number of consumers can replay the stream concurrently.
  size_t NextTuples(size_t from, std::span<sim::StreamTuple> buf) const;

  /// True once Materialize() has completed; tuples() is then immutable
  /// and can be iterated by reference, skipping NextTuples' copies.
  bool Materialized() const {
    return done_.load(std::memory_order_acquire);
  }

  /// Marks the stream complete as-is and wakes every blocked consumer.
  /// Idempotent. Failure-path only: when the producer can no longer run
  /// (an exception thrown before or outside Materialize), consumers must
  /// drain what was published and finish instead of waiting forever.
  void Abort();

  /// The full stream in emission order. Blocks until materialization is
  /// complete (immediate for synchronously constructed caches).
  const std::vector<sim::StreamTuple>& tuples() const;

  /// α-surviving edges of token `t` (empty if none). Blocks until
  /// materialization is complete.
  std::span<const CachedEdge> EdgesOf(TokenId t) const;

  /// Builds the bipartite weight matrix of the query vs the tokens of a
  /// candidate set, restricted to nodes with at least one edge. Returns
  /// the number of query rows/set columns used via the out vectors (row r
  /// corresponds to query position query_rows[r], column c to
  /// candidate_tokens[set_cols[c]]).
  matching::WeightMatrix BuildMatrix(std::span<const TokenId> candidate_tokens,
                                     std::vector<uint32_t>* query_rows,
                                     std::vector<uint32_t>* set_cols) const;

  size_t MemoryUsageBytes() const;

 private:
  void WaitDone() const;

  sim::TokenStream* stream_;  // null once drained
  std::vector<sim::StreamTuple> tuples_;
  std::unordered_map<TokenId, std::vector<CachedEdge>> edges_;

  // Incremental publication: the producer appends under mutex_ and
  // publishes the new size with release semantics; consumers that observe
  // done_ (acquire) read tuples_ without locking — the vector is stable by
  // then. edges_ is producer-private until done_.
  mutable std::mutex mutex_;
  mutable std::condition_variable grown_;
  std::atomic<size_t> published_{0};
  std::atomic<bool> done_{false};
};

}  // namespace koios::core

#endif  // KOIOS_CORE_EDGE_CACHE_H_
