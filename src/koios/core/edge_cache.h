// Materialized token stream + similarity cache.
//
// Refinement consumes the stream Ie in non-increasing similarity order. We
// materialize the consumed prefix once per query: (1) partitioned search
// can replay the same global order in every partition, and (2) the
// α-surviving edges double as the similarity cache the paper reuses when
// initializing the matching matrices during post-processing (§VIII-A3).
//
// Materialization is BOUNDED by the θlb feedback loop (§IV–VI): the
// producer polls a stop-similarity source (derived from the partitions'
// shared GlobalThreshold) before every tuple and stops the stream once no
// unseen set can reach the top-k — tuples below τ are never ordered,
// scored or materialized. The cache then records the stop similarity so
// consumers can (a) keep it as upper-bound slack and (b) have BuildMatrix
// complete the missing below-τ edges on demand through the similarity's
// batch kernels, preserving exactness end to end. Without a stop source
// the stream drains to α exactly as the seed did.
//
// Production runs in one of three modes:
//  * synchronous  — the one-arg constructor drains the stream inline.
//  * deferred     — the searcher constructs with the Deferred tag, submits
//                   per-partition refinement tasks, and runs Materialize()
//                   on its own thread; consumers pull through NextTuples(),
//                   blocking only when they outrun the producer.
//  * inline       — single-threaded searches construct with the
//                   InlineProducer tag; the consumer itself drives
//                   production from inside NextTuples() (pipelined, no
//                   second thread), and FinishProduction() seals the cache
//                   before post-processing.
//
// PRODUCER PACING (deferred + feedback only): a free-running producer
// races the consumers — it can drain the stream to α before a slow
// consumer has processed enough tuples to declare its stop similarity,
// silently forfeiting the feedback loop's whole savings (the serial modes
// never had this race: production is interleaved with consumption). The
// deferred constructor therefore takes a producer lead L: the producer
// stays within L tuples of the slowest REGISTERED consumer's hand-off
// position (consumers register through ConsumerGuard and advance as they
// pull) and within L of the start while no consumer has registered yet.
// Consumers that register late (partition tasks queued behind a full
// pool) do not hold production — they replay the already-cached prefix at
// full speed and only pace the producer once they reach the frontier,
// which is what makes pacing deadlock-free when partitions outnumber pool
// workers. Pacing never changes WHAT is produced (order and stop
// conditions are untouched), only how far production runs ahead, so
// results are unchanged; the pace wait polls the query deadline.
// Producer-side publishing is batched; the consumer fast path after
// completion is lock-free. Shutdown is poison-safe: if the producer dies
// (exception) or the searcher unwinds, the cache is sealed with a slack of
// 1.0 so any consumer that drains it still computes sound (if useless)
// bounds instead of hanging.
#ifndef KOIOS_CORE_EDGE_CACHE_H_
#define KOIOS_CORE_EDGE_CACHE_H_

#include <atomic>
#include <cassert>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "koios/matching/hungarian.h"
#include "koios/sim/similarity.h"
#include "koios/sim/token_stream.h"
#include "koios/util/types.h"

namespace koios::core {

class SearchContext;

/// One α-surviving edge incident to vocabulary token `t`: the query
/// position and the similarity.
struct CachedEdge {
  uint32_t query_pos = 0;
  double sim = 0.0;  // double: cached weights must match the oracle exactly
};

class EdgeCache {
 public:
  /// Current stop similarity for the producer (0 = no stop, drain to α).
  /// Values returned across calls must be non-decreasing; the searcher
  /// derives them from the monotone GlobalThreshold.
  using StopSimFn = std::function<Score()>;

  /// Drains `stream` synchronously in the constructor (order preserved in
  /// `tuples()`, per-token edge lists in `EdgesOf`).
  explicit EdgeCache(sim::TokenStream* stream);

  /// Deferred mode: records the stream but produces nothing until
  /// Materialize() runs (on the producer's thread). Until then, consumers
  /// may only call NextTuples(). `completer` (the index's
  /// SimilarityFunction) enables BuildMatrix to fill in edges the stream
  /// never produced; `stop_sim` (requires `completer`) enables bounded
  /// materialization — both nullable, yielding the seed drain-to-α cache.
  /// `ctx` (nullable) lets production honor a per-query deadline: the
  /// producer polls it per publish batch and throws SearchAborted, which
  /// poison-seals the cache so blocked consumers unwind instead of hang.
  /// `expected_consumers`/`producer_lead` enable producer pacing (see the
  /// class comment); pacing requires feedback (`stop_sim`), and either
  /// value at 0 disables it (the producer then free-runs as before).
  struct Deferred {};
  EdgeCache(sim::TokenStream* stream, Deferred,
            const sim::SimilarityFunction* completer = nullptr,
            StopSimFn stop_sim = nullptr, const SearchContext* ctx = nullptr,
            size_t expected_consumers = 0, size_t producer_lead = 0);

  /// Inline mode: no producer thread — the single consumer drives
  /// production on demand from NextTuples(). Call FinishProduction() once
  /// consumption is over (before any blocking accessor).
  struct InlineProducer {};
  EdgeCache(sim::TokenStream* stream, InlineProducer,
            const sim::SimilarityFunction* completer = nullptr,
            StopSimFn stop_sim = nullptr, const SearchContext* ctx = nullptr);

  /// Drains the stream (to α, or to the feedback stop similarity),
  /// publishing tuples incrementally to NextTuples() consumers. Call
  /// exactly once (the synchronous constructor calls it); single producer,
  /// typically the searcher's main thread. Not for inline mode.
  void Materialize();

  /// Seals an inline-mode cache at the stream's current position (stop
  /// state is taken from the stream). No-op in the other modes and when
  /// already sealed. Single-consumer context only.
  void FinishProduction();

  /// Copies up to `buf.size()` tuples starting at stream position `from`
  /// into `buf` and returns how many were copied; 0 means the stream is
  /// exhausted (or stopped) at `from`. Blocks while position `from` is not
  /// yet materialized (inline mode produces it on the spot instead). Each
  /// consumer owns its own cursor (`from`), so any number of consumers can
  /// replay the stream concurrently.
  size_t NextTuples(size_t from, std::span<sim::StreamTuple> buf);

  /// True once production has completed; tuples() is then immutable and
  /// can be iterated by reference, skipping NextTuples' copies.
  bool Materialized() const {
    return done_.load(std::memory_order_acquire);
  }

  /// True when the feedback loop is wired (a stop-similarity source was
  /// supplied). Refinement consumers use this to decide whether they may
  /// stop consuming early themselves.
  bool FeedbackEnabled() const { return stop_sim_fn_ != nullptr; }

  /// Chunk size a pulling consumer should request. Inline production
  /// happens inside the consumer's NextTuples call and overshoots it by up
  /// to one chunk — a fine grain keeps the θlb feedback tight (the
  /// producer's stop poll only sees lower bounds published from tuples the
  /// consumer already processed). Deferred consumers copy under a mutex,
  /// so they amortize with a coarse chunk instead.
  size_t PreferredConsumeChunk() const { return inline_mode_ ? 16 : 256; }

  /// RAII handle of one pacing consumer (see the class comment). The
  /// searcher opens one at the top of every partition task; Advance
  /// reports the consumer's hand-off position after each NextTuples pull;
  /// destruction (normal return OR unwind — a consumer that dies must not
  /// pace the producer forever) marks the slot finished. A no-op on caches
  /// without pacing, so callers construct it unconditionally.
  class ConsumerGuard {
   public:
    ConsumerGuard() = default;
    explicit ConsumerGuard(EdgeCache* cache) {
      if (cache != nullptr && cache->PacingEnabled()) {
        slot_ = cache->RegisterConsumer();
        if (slot_ != kUnpaced) cache_ = cache;
      }
    }
    ~ConsumerGuard() {
      if (cache_ != nullptr) cache_->FinishConsumer(slot_);
    }
    ConsumerGuard(const ConsumerGuard&) = delete;
    ConsumerGuard& operator=(const ConsumerGuard&) = delete;

    /// Tuples [0, consumed) were handed to this consumer.
    void Advance(size_t consumed) {
      if (cache_ != nullptr) cache_->AdvanceConsumer(slot_, consumed);
    }

   private:
    static constexpr size_t kUnpaced = std::numeric_limits<size_t>::max();
    EdgeCache* cache_ = nullptr;
    size_t slot_ = kUnpaced;
  };

  /// True when the deferred producer paces itself against consumers.
  bool PacingEnabled() const { return producer_lead_ > 0; }

  /// Marks the stream complete as-is and wakes every blocked consumer.
  /// Idempotent. Failure-path only: when the producer can no longer run
  /// (an exception thrown before or outside Materialize), consumers must
  /// drain what was published and finish instead of waiting forever. The
  /// cache is poisoned with slack 1.0 (every unseen pair may be arbitrarily
  /// similar), keeping any surviving consumer's bounds sound.
  void Abort();

  // --- post-completion accessors ------------------------------------------
  // Valid once Materialized(). The blocking ones wait for a deferred
  // producer; an inline cache never blocks — it must be SEALED
  // (FinishProduction, or production hitting the stream's end) before
  // tuples()/ExhaustedToAlpha()/stop_sim() are meaningful, which the
  // asserts below enforce (an unsealed inline cache would hand out a
  // reference into a still-growing vector and default stop state).

  /// Number of tuples produced (stats: stream_tuples_produced).
  size_t produced() const { return published_.load(std::memory_order_acquire); }

  /// True if the stream drained to α; false if the feedback loop (or an
  /// abort) stopped it early, in which case stop_sim() is the slack.
  bool ExhaustedToAlpha() const {
    assert(done_.load(std::memory_order_acquire));
    return exhausted_;
  }

  /// Sound upper bound on the similarity of every pair the stream did not
  /// produce: 0 when drained to α, the stop similarity otherwise.
  Score stop_sim() const {
    assert(done_.load(std::memory_order_acquire));
    return stop_sim_;
  }

  /// The produced stream prefix in emission order. Blocks until production
  /// is complete (immediate for synchronously constructed caches; asserts
  /// sealed for inline ones — the vector may still grow before that).
  const std::vector<sim::StreamTuple>& tuples() const;

  /// Produced α-surviving edges of token `t` (empty if none). Blocks until
  /// a deferred producer finishes. May be used on an unsealed inline cache
  /// (single-threaded by construction): BuildMatrix's completion overlay
  /// reads the current prefix, which is exact because completion computes
  /// every missing pair anyway. The returned span is invalidated by any
  /// further inline production.
  std::span<const CachedEdge> EdgesOf(TokenId t) const;

  /// Builds the bipartite weight matrix of the query vs the tokens of a
  /// candidate set, restricted to nodes with at least one α-edge. Returns
  /// the number of query rows/set columns used via the out vectors (row r
  /// corresponds to query position query_rows[r], column c to
  /// candidate_tokens[set_cols[c]]). When the stream stopped early, the
  /// below-stop edges missing from the cache are completed with ONE
  /// SimilarityBatchMulti kernel call (cached edges stay authoritative), so
  /// exact matching always sees the full simα matrix of the paper.
  matching::WeightMatrix BuildMatrix(std::span<const TokenId> candidate_tokens,
                                     std::vector<uint32_t>* query_rows,
                                     std::vector<uint32_t>* set_cols) const;

  /// BuildMatrix into a caller-owned matrix (capacity reuse across the
  /// post-processing EM batches; see matching::HungarianWorkspace).
  void BuildMatrixInto(std::span<const TokenId> candidate_tokens,
                       std::vector<uint32_t>* query_rows,
                       std::vector<uint32_t>* set_cols,
                       matching::WeightMatrix* m) const;

  size_t MemoryUsageBytes() const;

 private:
  /// A consumer slot holding this position is finished (or was never
  /// handed out) and must not pace the producer.
  static constexpr size_t kConsumerDone = std::numeric_limits<size_t>::max();

  void WaitDone() const;
  /// Produces and publishes tuples until `until` tuples exist or the
  /// stream ends; inline mode only (runs on the consumer's thread).
  void ProduceInline(size_t until);
  /// Records the stream's stop state and publishes done_ (idempotent).
  void Seal(bool exhausted, Score stop_sim);

  // --- producer pacing (ConsumerGuard's backend) --------------------------
  size_t RegisterConsumer();
  void AdvanceConsumer(size_t slot, size_t consumed);
  void FinishConsumer(size_t slot);
  /// True when the producer is within its lead of the slowest registered
  /// consumer (callers hold mutex_ so tuples_.size() is stable).
  bool ProducerMayRun() const;
  /// Blocks the producer until ProducerMayRun(), polling the deadline.
  void PaceProducer();

  sim::TokenStream* stream_;  // null once production completed
  const sim::SimilarityFunction* completer_ = nullptr;
  const SearchContext* ctx_ = nullptr;  // deadline source (nullable)
  StopSimFn stop_sim_fn_;
  bool inline_mode_ = false;
  std::vector<TokenId> query_;  // the stream's query (matrix completion)
  Score alpha_ = 0.0;
  std::vector<sim::StreamTuple> tuples_;
  std::unordered_map<TokenId, std::vector<CachedEdge>> edges_;
  bool exhausted_ = true;   // valid once done_
  Score stop_sim_ = 0.0;    // valid once done_

  // Incremental publication: the producer appends under mutex_ and
  // publishes the new size with release semantics; consumers that observe
  // done_ (acquire) read tuples_ without locking — the vector is stable by
  // then. edges_ is producer-private until done_.
  mutable std::mutex mutex_;
  mutable std::condition_variable grown_;
  std::atomic<size_t> published_{0};
  std::atomic<bool> done_{false};

  // Producer pacing state. consumer_pos_[slot] is the consumer's hand-off
  // position (kConsumerDone once finished); slots are handed out by
  // RegisterConsumer in arrival order and advanced under mutex_, which
  // the paced producer holds across its predicate check and wait — so
  // wakeups cannot be missed.
  size_t producer_lead_ = 0;       // 0 = pacing off
  size_t expected_consumers_ = 0;  // pacing slots allocated
  std::unique_ptr<std::atomic<size_t>[]> consumer_pos_;
  std::atomic<size_t> consumers_registered_{0};
  std::condition_variable pace_cv_;  // waited on by the producer, mutex_
};

}  // namespace koios::core

#endif  // KOIOS_CORE_EDGE_CACHE_H_
