// Materialized token stream + similarity cache.
//
// Refinement consumes the stream Ie to exhaustion (every pair (qi, t) with
// sim >= α, in non-increasing similarity order). We materialize that
// sequence once per query: (1) partitioned search can replay the same
// global order in every partition, and (2) the α-surviving edges double as
// the similarity cache the paper reuses when initializing the matching
// matrices during post-processing (§VIII-A3), so no similarity is ever
// computed twice.
#ifndef KOIOS_CORE_EDGE_CACHE_H_
#define KOIOS_CORE_EDGE_CACHE_H_

#include <cstddef>
#include <span>
#include <unordered_map>
#include <vector>

#include "koios/matching/hungarian.h"
#include "koios/sim/token_stream.h"
#include "koios/util/types.h"

namespace koios::core {

/// One α-surviving edge incident to vocabulary token `t`: the query
/// position and the similarity.
struct CachedEdge {
  uint32_t query_pos = 0;
  double sim = 0.0;  // double: cached weights must match the oracle exactly
};

class EdgeCache {
 public:
  /// Drains `stream` and records every tuple (order preserved in
  /// `tuples()`, per-token edge lists in `EdgesOf`).
  explicit EdgeCache(sim::TokenStream* stream);

  /// The full stream in emission order.
  const std::vector<sim::StreamTuple>& tuples() const { return tuples_; }

  /// α-surviving edges of token `t` (empty if none).
  std::span<const CachedEdge> EdgesOf(TokenId t) const {
    auto it = edges_.find(t);
    if (it == edges_.end()) return {};
    return it->second;
  }

  /// Builds the bipartite weight matrix of the query vs the tokens of a
  /// candidate set, restricted to nodes with at least one edge. Returns
  /// the number of query rows/set columns used via the out vectors (row r
  /// corresponds to query position query_rows[r], column c to
  /// candidate_tokens[set_cols[c]]).
  matching::WeightMatrix BuildMatrix(std::span<const TokenId> candidate_tokens,
                                     std::vector<uint32_t>* query_rows,
                                     std::vector<uint32_t>* set_cols) const;

  size_t MemoryUsageBytes() const;

 private:
  std::vector<sim::StreamTuple> tuples_;
  std::unordered_map<TokenId, std::vector<CachedEdge>> edges_;
};

}  // namespace koios::core

#endif  // KOIOS_CORE_EDGE_CACHE_H_
