// The refinement phase of Koios (paper §IV–V, Algorithm 1): stream element
// pairs in non-increasing similarity order, surface candidate sets through
// the inverted index, maintain incremental bounds, and prune aggressively
// with the UB / iUB filters before any exact matching is attempted.
#ifndef KOIOS_CORE_REFINEMENT_H_
#define KOIOS_CORE_REFINEMENT_H_

#include <unordered_map>
#include <vector>

#include "koios/core/bucket_index.h"
#include "koios/core/candidate_state.h"
#include "koios/core/edge_cache.h"
#include "koios/core/search_types.h"
#include "koios/index/inverted_index.h"
#include "koios/index/set_collection.h"
#include "koios/util/top_k_list.h"

namespace koios::core {

struct RefinementOutput {
  /// Candidates that survived all refinement filters (order unspecified).
  std::vector<CandidateState> survivors;
  /// Running top-k lower-bound list; its Bottom() is θlb.
  util::TopKList<SetId> llb{1};
  /// Last (smallest) similarity this consumer processed (diagnostic).
  Score last_sim = 0.0;
  /// Sound upper bound on the similarity of every α-edge this consumer did
  /// NOT process: 0 when the stream drained to α (the seed behaviour —
  /// survivors' slack term vanishes, CandidateState::FinalUpperBound), the
  /// stop similarity when the θlb feedback loop ended the stream early.
  /// Post-processing must use CandidateState::UpperBound(ub_slack) as the
  /// survivors' final upper bound.
  Score ub_slack = 0.0;
};

class RefinementPhase {
 public:
  /// `sets` is the full collection; `inverted` indexes the sets of this
  /// partition only (or all sets when unpartitioned).
  RefinementPhase(const index::SetCollection* sets,
                  const index::InvertedIndex* inverted, size_t query_size,
                  const SearchParams& params);

  /// Consumes the stream incrementally through `cache` (pulling production
  /// along in inline mode, replaying it when already materialized) and
  /// applies Algorithm 1 + the bucketized iUB filter. Counters are
  /// accumulated into `stats`.
  ///
  /// `ctx` (nullable) is the per-query SearchContext. Its GlobalThreshold
  /// is the cross-partition θlb of §VI: any partition's k-th best lower
  /// bound is a valid lower bound on the *merged* θ*k, so partitions can
  /// prune with the maximum across all of them without affecting the
  /// merged result's exactness. It also powers the feedback loop: every
  /// θlb improvement is published immediately (greedy lower bounds,
  /// Lemma 4/5). The context's deadline/cancellation is polled every
  /// stop-check cadence; an elapsed deadline throws SearchAborted.
  ///
  /// When the cache has feedback enabled, this consumer stops consuming at
  /// the stop similarity τ(θlb, |Q|, partial scores) — the largest stream
  /// similarity s satisfying BOTH:
  ///  1. |Q|·s < θlb − ε  (exactness): an unseen set's upper bound is
  ///     min(|Q|, |C|)·s ≤ |Q|·s < θlb ≤ θ*k (Lemma 2), and pruning is
  ///     monotone in θlb, so nothing absent can re-enter the top-k;
  ///  2. few enough candidates survive the slack-s final sweep — the
  ///     candidates' partial scores must already separate the contenders,
  ///     since stopping freezes every survivor's upper bound at
  ///     S_i + m_i·s (condition 1 alone would freeze EVERY seen set above
  ///     θlb and push an exact matching per candidate into
  ///     post-processing; this work-balance condition only delays the
  ///     stop, so exactness is untouched).
  /// The declined similarity becomes the survivors' upper-bound slack
  /// (ub_slack) and is declared to the context's StreamStopController so
  /// the producer can stop materializing once every partition has
  /// declared (no declarations happen without a context).
  ///
  /// `consumer` (nullable) is this partition's producer-pacing handle
  /// (EdgeCache::ConsumerGuard): the pull loop reports its hand-off
  /// position through it so a deferred producer can pace itself against
  /// the slowest partition. The caller owns the guard (it must outlive
  /// this call); legacy callers pass nothing and are never paced against.
  RefinementOutput Run(EdgeCache* cache, SearchStats* stats,
                       SearchContext* ctx = nullptr,
                       EdgeCache::ConsumerGuard* consumer = nullptr);

 private:
  enum class SetStatus : uint8_t { kUnseen = 0, kCandidate = 1, kPruned = 2 };

  const index::SetCollection* sets_;
  const index::InvertedIndex* inverted_;
  size_t query_size_;
  SearchParams params_;
};

}  // namespace koios::core

#endif  // KOIOS_CORE_REFINEMENT_H_
