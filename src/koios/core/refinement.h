// The refinement phase of Koios (paper §IV–V, Algorithm 1): stream element
// pairs in non-increasing similarity order, surface candidate sets through
// the inverted index, maintain incremental bounds, and prune aggressively
// with the UB / iUB filters before any exact matching is attempted.
#ifndef KOIOS_CORE_REFINEMENT_H_
#define KOIOS_CORE_REFINEMENT_H_

#include <unordered_map>
#include <vector>

#include "koios/core/bucket_index.h"
#include "koios/core/candidate_state.h"
#include "koios/core/edge_cache.h"
#include "koios/core/search_types.h"
#include "koios/index/inverted_index.h"
#include "koios/index/set_collection.h"
#include "koios/util/top_k_list.h"

namespace koios::core {

class GlobalThreshold;  // postprocess.h

struct RefinementOutput {
  /// Candidates that survived all refinement filters (order unspecified).
  std::vector<CandidateState> survivors;
  /// Running top-k lower-bound list; its Bottom() is θlb.
  util::TopKList<SetId> llb{1};
  /// Last (smallest) similarity emitted by the stream (diagnostic; the
  /// survivors' final upper bound is CandidateState::FinalUpperBound(),
  /// whose slack term vanishes at exhaustion).
  Score last_sim = 0.0;
};

class RefinementPhase {
 public:
  /// `sets` is the full collection; `inverted` indexes the sets of this
  /// partition only (or all sets when unpartitioned).
  RefinementPhase(const index::SetCollection* sets,
                  const index::InvertedIndex* inverted, size_t query_size,
                  const SearchParams& params);

  /// Replays the materialized stream and applies Algorithm 1 + the
  /// bucketized iUB filter. Counters are accumulated into `stats`.
  ///
  /// `global_theta` (nullable) is the cross-partition θlb of §VI: any
  /// partition's k-th best lower bound is a valid lower bound on the
  /// *merged* θ*k, so partitions can prune with the maximum across all of
  /// them without affecting the merged result's exactness.
  RefinementOutput Run(const EdgeCache& cache, SearchStats* stats,
                       GlobalThreshold* global_theta = nullptr);

 private:
  enum class SetStatus : uint8_t { kUnseen = 0, kCandidate = 1, kPruned = 2 };

  const index::SetCollection* sets_;
  const index::InvertedIndex* inverted_;
  size_t query_size_;
  SearchParams params_;
};

}  // namespace koios::core

#endif  // KOIOS_CORE_REFINEMENT_H_
