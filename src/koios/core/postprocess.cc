#include "koios/core/postprocess.h"

#include <algorithm>
#include <cassert>
#include <future>
#include <set>
#include <unordered_map>

#include "koios/matching/hungarian.h"
#include "koios/util/top_k_list.h"
#include "koios/util/trace_recorder.h"

namespace koios::core {

namespace {

struct Item {
  SetId set = kInvalidSet;
  Score lb = 0.0;
  Score ub = 0.0;
  bool checked = false;  // SO known exactly or membership certified (No-EM)
  bool exact = false;    // lb == ub == SO
};

struct EmOutcome {
  SetId set = kInvalidSet;
  bool early_terminated = false;
  Score so = 0.0;
};

// Descending (ub, set) ordering for the alive window.
struct ByUbDesc {
  bool operator()(const std::pair<Score, SetId>& a,
                  const std::pair<Score, SetId>& b) const {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  }
};

// Per-thread exact-matching scratch: the matrix allocation and the
// Hungarian solve arena survive across every candidate a worker verifies
// (EM batch, early-termination attempts, and result verification alike).
struct EmScratch {
  matching::WeightMatrix matrix{0, 0};
  matching::HungarianWorkspace workspace;
  std::vector<uint32_t> rows, cols;
};

EmScratch& ThreadEmScratch() {
  thread_local EmScratch scratch;
  return scratch;
}

}  // namespace

PostProcessor::PostProcessor(const index::SetCollection* sets,
                             const EdgeCache* cache,
                             const SearchParams& params, SearchContext* ctx,
                             util::ThreadPool* pool)
    : sets_(sets),
      cache_(cache),
      params_(params),
      ctx_(ctx),
      global_theta_(ctx != nullptr ? &ctx->global_theta() : nullptr),
      pool_(pool) {}

Score PostProcessor::ThetaLb(Score local) const {
  if (global_theta_ == nullptr) return local;
  return std::max(local, global_theta_->Get());
}

matching::MatchResult PostProcessor::SolveWithScratch(SetId id,
                                                      Score prune_threshold) {
  EmScratch& scratch = ThreadEmScratch();
  if (scratch.workspace.solve_count() > 0) {
    workspace_reuses_.fetch_add(1, std::memory_order_relaxed);
  }
  cache_->BuildMatrixInto(sets_->Tokens(id), &scratch.rows, &scratch.cols,
                          &scratch.matrix);
  return matching::HungarianMatcher::Solve(scratch.matrix, prune_threshold,
                                           &scratch.workspace);
}

// Invariant-based formulation of Algorithm 2. All alive candidates live in
// one set ordered by descending upper bound. θub is the k-th largest alive
// upper bound. The top-k-by-UB *window* is the result candidate list (the
// paper's Lub); everything below is the paper's Qub. The loop ends when
// every window entry is checked:
//  * an EM'd entry C in the window has SO(C) = ub(C) >= ub(X) >= SO(X) for
//    any alive X outside the window, and
//  * a No-EM entry C has LB(C) >= θub >= ub(X) >= SO(X)  (Lemma 7),
// so the window provably dominates everything else; pruned sets were
// certified SO < θlb <= θ*k earlier.
std::vector<ResultEntry> PostProcessor::Run(RefinementOutput refinement,
                                            SearchStats* stats) {
  auto llb = std::move(refinement.llb);

  std::unordered_map<SetId, Item> items;
  std::set<std::pair<Score, SetId>, ByUbDesc> alive;  // (ub, set), desc
  items.reserve(refinement.survivors.size());
  for (const CandidateState& state : refinement.survivors) {
    Item item;
    item.set = state.set();
    item.lb = state.partial_score();
    // Slack ends where the stream did: 0 after a drain to α (no α-edge
    // left, FinalUpperBound), the stop similarity when the θlb feedback
    // loop ended the stream early.
    item.ub = state.UpperBound(refinement.ub_slack);
    items.emplace(item.set, item);
    alive.insert({item.ub, item.set});
  }
  stats->memory.AddPeak(
      "postprocess.alive",
      alive.size() * (sizeof(std::pair<Score, SetId>) + 4 * sizeof(void*)));
  stats->memory.AddPeak("postprocess.items", items.size() * sizeof(Item));

  const size_t batch_size =
      (pool_ != nullptr && params_.num_threads > 1) ? params_.num_threads : 1;

  auto prune_below_theta = [&] {
    const Score theta_lb = ThetaLb(llb.Bottom());
    while (!alive.empty()) {
      const auto lowest = std::prev(alive.end());  // smallest ub
      if (lowest->first >= theta_lb - kScoreEps) break;
      items.erase(lowest->second);
      alive.erase(lowest);
      ++stats->postprocess_ub_pruned;
    }
  };

  while (!alive.empty()) {
    // Deadline/cancellation poll once per window round (i.e. at least once
    // per exact-matching batch — the expensive unit of this phase).
    if (ctx_ != nullptr) ctx_->CheckCancelled();
    prune_below_theta();

    // The window: first min(k, |alive|) entries by descending ub. θub is
    // the window's smallest ub (0 while fewer than k alive, which makes
    // No-EM admit everything — correct, since then every alive set is in
    // the top-k).
    Score theta_ub = 0.0;
    {
      auto it = alive.begin();
      for (size_t i = 0; i + 1 < params_.k && it != alive.end(); ++i) ++it;
      if (it != alive.end() && alive.size() >= params_.k) theta_ub = it->first;
    }

    // Collect unchecked window entries (descending ub), applying No-EM.
    std::vector<SetId> to_process;
    bool admitted_any = false;
    {
      auto it = alive.begin();
      for (size_t i = 0; i < params_.k && it != alive.end(); ++i, ++it) {
        Item& item = items[it->second];
        if (item.checked) continue;
        if (params_.use_no_em_filter && item.lb >= theta_ub - kScoreEps) {
          item.checked = true;
          ++stats->no_em_skipped;
          admitted_any = true;
          continue;
        }
        to_process.push_back(item.set);
        if (to_process.size() >= batch_size) break;
      }
    }
    if (to_process.empty()) {
      if (admitted_any) continue;  // window changed; re-evaluate
      break;                       // window fully checked — done
    }

    // Exact matching (parallel batch; θlb snapshot shared by the batch).
    // Matrix and solve arrays live in thread-local arenas: each pool
    // worker (or the caller, serially) reuses its matrix allocation and
    // HungarianWorkspace across every candidate it verifies instead of
    // reallocating the dense arena per Solve.
    const Score prune_threshold =
        params_.use_em_early_termination ? ThetaLb(llb.Bottom()) : -1.0;
    auto run_em = [&](SetId id) -> EmOutcome {
      const matching::MatchResult r = SolveWithScratch(id, prune_threshold);
      return {id, r.early_terminated, r.score};
    };

    std::vector<EmOutcome> outcomes;
    // One span per exact-matching batch (the expensive unit of this
    // phase); `candidates` is the batch width.
    KOIOS_TRACE_SPAN_ARG("search.em_batch", "candidates", to_process.size());
    if (batch_size > 1 && to_process.size() > 1) {
      std::vector<std::future<EmOutcome>> futures;
      futures.reserve(to_process.size());
      for (SetId id : to_process) {
        futures.push_back(pool_->Submit([&run_em, id] { return run_em(id); }));
      }
      for (auto& f : futures) outcomes.push_back(f.get());
    } else {
      for (SetId id : to_process) outcomes.push_back(run_em(id));
    }

    for (const EmOutcome& outcome : outcomes) {
      Item& item = items[outcome.set];
      if (outcome.early_terminated) {
        // SO < θlb certified mid-matching: cannot be in the top-k.
        ++stats->em_early_terminated;
        alive.erase({item.ub, item.set});
        items.erase(outcome.set);
        continue;
      }
      ++stats->em_computed;
      alive.erase({item.ub, item.set});
      item.lb = item.ub = outcome.so;
      item.exact = true;
      item.checked = true;
      alive.insert({item.ub, item.set});  // repositions by the exact score
      llb.Offer(outcome.set, outcome.so);
      if (global_theta_ != nullptr) global_theta_->Publish(llb.Bottom());
    }
  }

  // Harvest the window; optionally verify No-EM admissions so every
  // reported score is the exact SO (needed for cross-partition merging).
  std::vector<ResultEntry> result;
  auto harvest = [&](const Item& item) {
    ResultEntry entry;
    entry.set = item.set;
    entry.exact = item.exact;
    entry.score = item.exact ? item.ub : item.lb;
    if (!item.exact && params_.verify_result_scores) {
      entry.score = SolveWithScratch(item.set, /*prune_threshold=*/-1.0).score;
      entry.exact = true;
      ++stats->result_verification_ems;
    }
    result.push_back(entry);
  };
  auto it = alive.begin();
  for (size_t i = 0; i < params_.k && it != alive.end(); ++i, ++it) {
    harvest(items[it->second]);
  }

  // Canonical tie resolution (verify mode only — without exact scores a
  // cross-run tie is not even well defined). The window above was chosen
  // by UPPER BOUNDS: a No-EM admission keeps its inflated refinement
  // bound while an EM'd set is repositioned to its exact score, so WHICH
  // of several sets tied at the k-th exact score made the window depends
  // on processing history — and serial, partitioned and sharded runs have
  // different histories. The bit-identity contract (ROADMAP item 4) needs
  // one canonical answer: smallest ids win. Sweep the remaining alive
  // sets that could still reach the k-th exact score (SO <= ub bounds the
  // sweep; early termination against θk keeps the non-tied ones cheap)
  // and let the final (score desc, id asc) sort pick canonically.
  if (params_.verify_result_scores && result.size() >= params_.k &&
      !result.empty()) {
    Score theta_k = result.front().score;
    for (const ResultEntry& e : result) theta_k = std::min(theta_k, e.score);
    for (; it != alive.end() && it->first >= theta_k - kScoreEps; ++it) {
      const Item& item = items[it->second];
      if (item.exact) {
        harvest(item);
        continue;
      }
      const matching::MatchResult r =
          SolveWithScratch(item.set, theta_k - kScoreEps);
      ++stats->result_verification_ems;
      if (r.early_terminated) continue;  // certified below every tie
      ResultEntry entry;
      entry.set = item.set;
      entry.score = r.score;
      entry.exact = true;
      result.push_back(entry);
    }
  }

  stats->em_workspace_reuses +=
      workspace_reuses_.exchange(0, std::memory_order_relaxed);
  std::sort(result.begin(), result.end(),
            [](const ResultEntry& a, const ResultEntry& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.set < b.set;
            });
  if (result.size() > params_.k) result.resize(params_.k);
  return result;
}

}  // namespace koios::core
