#include "koios/core/postprocess.h"

#include <algorithm>
#include <cassert>
#include <future>
#include <set>
#include <unordered_map>

#include "koios/matching/hungarian.h"
#include "koios/util/top_k_list.h"

namespace koios::core {

namespace {

struct Item {
  SetId set = kInvalidSet;
  Score lb = 0.0;
  Score ub = 0.0;
  bool checked = false;  // SO known exactly or membership certified (No-EM)
  bool exact = false;    // lb == ub == SO
};

struct EmOutcome {
  SetId set = kInvalidSet;
  bool early_terminated = false;
  Score so = 0.0;
};

// Descending (ub, set) ordering for the alive window.
struct ByUbDesc {
  bool operator()(const std::pair<Score, SetId>& a,
                  const std::pair<Score, SetId>& b) const {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  }
};

}  // namespace

PostProcessor::PostProcessor(const index::SetCollection* sets,
                             const EdgeCache* cache,
                             const SearchParams& params,
                             GlobalThreshold* global_theta,
                             util::ThreadPool* pool)
    : sets_(sets),
      cache_(cache),
      params_(params),
      global_theta_(global_theta),
      pool_(pool) {}

Score PostProcessor::ThetaLb(Score local) const {
  if (global_theta_ == nullptr) return local;
  return std::max(local, global_theta_->Get());
}

// Invariant-based formulation of Algorithm 2. All alive candidates live in
// one set ordered by descending upper bound. θub is the k-th largest alive
// upper bound. The top-k-by-UB *window* is the result candidate list (the
// paper's Lub); everything below is the paper's Qub. The loop ends when
// every window entry is checked:
//  * an EM'd entry C in the window has SO(C) = ub(C) >= ub(X) >= SO(X) for
//    any alive X outside the window, and
//  * a No-EM entry C has LB(C) >= θub >= ub(X) >= SO(X)  (Lemma 7),
// so the window provably dominates everything else; pruned sets were
// certified SO < θlb <= θ*k earlier.
std::vector<ResultEntry> PostProcessor::Run(RefinementOutput refinement,
                                            SearchStats* stats) {
  auto llb = std::move(refinement.llb);

  std::unordered_map<SetId, Item> items;
  std::set<std::pair<Score, SetId>, ByUbDesc> alive;  // (ub, set), desc
  items.reserve(refinement.survivors.size());
  for (const CandidateState& state : refinement.survivors) {
    Item item;
    item.set = state.set();
    item.lb = state.partial_score();
    item.ub = state.FinalUpperBound();  // stream exhausted: no slack term
    items.emplace(item.set, item);
    alive.insert({item.ub, item.set});
  }
  stats->memory.AddPeak(
      "postprocess.alive",
      alive.size() * (sizeof(std::pair<Score, SetId>) + 4 * sizeof(void*)));
  stats->memory.AddPeak("postprocess.items", items.size() * sizeof(Item));

  const size_t batch_size =
      (pool_ != nullptr && params_.num_threads > 1) ? params_.num_threads : 1;

  auto prune_below_theta = [&] {
    const Score theta_lb = ThetaLb(llb.Bottom());
    while (!alive.empty()) {
      const auto lowest = std::prev(alive.end());  // smallest ub
      if (lowest->first >= theta_lb - kScoreEps) break;
      items.erase(lowest->second);
      alive.erase(lowest);
      ++stats->postprocess_ub_pruned;
    }
  };

  while (!alive.empty()) {
    prune_below_theta();

    // The window: first min(k, |alive|) entries by descending ub. θub is
    // the window's smallest ub (0 while fewer than k alive, which makes
    // No-EM admit everything — correct, since then every alive set is in
    // the top-k).
    Score theta_ub = 0.0;
    {
      auto it = alive.begin();
      for (size_t i = 0; i + 1 < params_.k && it != alive.end(); ++i) ++it;
      if (it != alive.end() && alive.size() >= params_.k) theta_ub = it->first;
    }

    // Collect unchecked window entries (descending ub), applying No-EM.
    std::vector<SetId> to_process;
    bool admitted_any = false;
    {
      auto it = alive.begin();
      for (size_t i = 0; i < params_.k && it != alive.end(); ++i, ++it) {
        Item& item = items[it->second];
        if (item.checked) continue;
        if (params_.use_no_em_filter && item.lb >= theta_ub - kScoreEps) {
          item.checked = true;
          ++stats->no_em_skipped;
          admitted_any = true;
          continue;
        }
        to_process.push_back(item.set);
        if (to_process.size() >= batch_size) break;
      }
    }
    if (to_process.empty()) {
      if (admitted_any) continue;  // window changed; re-evaluate
      break;                       // window fully checked — done
    }

    // Exact matching (parallel batch; θlb snapshot shared by the batch).
    const Score prune_threshold =
        params_.use_em_early_termination ? ThetaLb(llb.Bottom()) : -1.0;
    auto run_em = [&](SetId id) -> EmOutcome {
      std::vector<uint32_t> rows, cols;
      const matching::WeightMatrix m =
          cache_->BuildMatrix(sets_->Tokens(id), &rows, &cols);
      const matching::MatchResult r =
          matching::HungarianMatcher::Solve(m, prune_threshold);
      return {id, r.early_terminated, r.score};
    };

    std::vector<EmOutcome> outcomes;
    if (batch_size > 1 && to_process.size() > 1) {
      std::vector<std::future<EmOutcome>> futures;
      futures.reserve(to_process.size());
      for (SetId id : to_process) {
        futures.push_back(pool_->Submit([&run_em, id] { return run_em(id); }));
      }
      for (auto& f : futures) outcomes.push_back(f.get());
    } else {
      for (SetId id : to_process) outcomes.push_back(run_em(id));
    }

    for (const EmOutcome& outcome : outcomes) {
      Item& item = items[outcome.set];
      if (outcome.early_terminated) {
        // SO < θlb certified mid-matching: cannot be in the top-k.
        ++stats->em_early_terminated;
        alive.erase({item.ub, item.set});
        items.erase(outcome.set);
        continue;
      }
      ++stats->em_computed;
      alive.erase({item.ub, item.set});
      item.lb = item.ub = outcome.so;
      item.exact = true;
      item.checked = true;
      alive.insert({item.ub, item.set});  // repositions by the exact score
      llb.Offer(outcome.set, outcome.so);
      if (global_theta_ != nullptr) global_theta_->Publish(llb.Bottom());
    }
  }

  // Harvest the window; optionally verify No-EM admissions so every
  // reported score is the exact SO (needed for cross-partition merging).
  std::vector<ResultEntry> result;
  auto it = alive.begin();
  for (size_t i = 0; i < params_.k && it != alive.end(); ++i, ++it) {
    Item& item = items[it->second];
    ResultEntry entry;
    entry.set = item.set;
    entry.exact = item.exact;
    entry.score = item.exact ? item.ub : item.lb;
    if (!item.exact && params_.verify_result_scores) {
      std::vector<uint32_t> rows, cols;
      const matching::WeightMatrix m =
          cache_->BuildMatrix(sets_->Tokens(item.set), &rows, &cols);
      entry.score = matching::HungarianMatcher::Solve(m).score;
      entry.exact = true;
      ++stats->result_verification_ems;
    }
    result.push_back(entry);
  }
  std::sort(result.begin(), result.end(),
            [](const ResultEntry& a, const ResultEntry& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.set < b.set;
            });
  return result;
}

}  // namespace koios::core
