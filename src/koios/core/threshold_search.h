// Threshold-based semantic overlap search: return *every* set C with
// SO(Q, C) >= theta.
//
// The paper frames threshold search as what existing fuzzy engines
// (SilkMoth, Fast-Join) solve, and top-k as the harder problem because θ*k
// is unknown upfront (§VIII-B). The converse direction is easy inside the
// Koios framework — with a *fixed* threshold every filter applies
// unchanged, just without a running top-k list:
//   * refinement prunes candidates whose retained-row-maxima bound falls
//     below θ (bucketized, as in §V);
//   * post-processing skips verification when the greedy lower bound
//     already clears θ, and early-terminates the Hungarian run at θ.
// This module exists both as a user-facing feature (joinability predicates
// want thresholds, not ranks) and as the bridge used to hand SilkMoth its
// θ*k in the comparison bench.
#ifndef KOIOS_CORE_THRESHOLD_SEARCH_H_
#define KOIOS_CORE_THRESHOLD_SEARCH_H_

#include <span>
#include <vector>

#include "koios/core/search_types.h"
#include "koios/index/inverted_index.h"
#include "koios/index/set_collection.h"
#include "koios/sim/similarity.h"

namespace koios::core {

struct ThresholdParams {
  /// Matching-score threshold θ (> 0).
  Score theta = 1.0;
  /// Element similarity threshold α (> 0).
  Score alpha = 0.8;
  /// Skip exact matching when the greedy lower bound clears θ. The
  /// reported score is then the lower bound unless `verify_scores`.
  bool use_lb_admission = true;
  /// Hungarian early termination at θ.
  bool use_em_early_termination = true;
  /// Replace lower-bound scores of admitted sets with their exact SO.
  bool verify_scores = true;
};

class ThresholdSearcher {
 public:
  ThresholdSearcher(const index::SetCollection* sets,
                    sim::SimilarityIndex* index);

  /// All sets with SO(Q, C) >= theta, in non-increasing score order.
  std::vector<ResultEntry> Search(std::span<const TokenId> query,
                                  const ThresholdParams& params,
                                  SearchStats* stats = nullptr);

 private:
  const index::SetCollection* sets_;
  sim::SimilarityIndex* index_;
  index::InvertedIndex inverted_;
};

}  // namespace koios::core

#endif  // KOIOS_CORE_THRESHOLD_SEARCH_H_
