#include "koios/core/edge_cache.h"

#include <algorithm>
#include <cassert>
#include <chrono>

#include "koios/core/search_types.h"

namespace koios::core {

namespace {

// Tuples appended between publications. Big enough that lock/notify costs
// vanish against per-tuple production cost (a heap pop + an index probe),
// small enough that consumers start refining almost immediately.
constexpr size_t kPublishBatch = 32;

}  // namespace

EdgeCache::EdgeCache(sim::TokenStream* stream) : stream_(stream) {
  query_ = stream->query();
  alpha_ = stream->alpha();
  Materialize();
}

EdgeCache::EdgeCache(sim::TokenStream* stream, Deferred,
                     const sim::SimilarityFunction* completer,
                     StopSimFn stop_sim, const SearchContext* ctx,
                     size_t expected_consumers, size_t producer_lead)
    : stream_(stream),
      completer_(completer),
      ctx_(ctx),
      stop_sim_fn_(std::move(stop_sim)),
      query_(stream->query()),
      alpha_(stream->alpha()) {
  // Bounded materialization truncates the edge lists; exactness then needs
  // the completer to reconstruct the missing simα entries in BuildMatrix.
  assert(stop_sim_fn_ == nullptr || completer_ != nullptr);
  // Pacing exists to protect the feedback loop's savings; without a stop
  // source the consumers want the full α-drain anyway, so the producer
  // free-runs.
  if (stop_sim_fn_ != nullptr && expected_consumers > 0 && producer_lead > 0) {
    producer_lead_ = producer_lead;
    expected_consumers_ = expected_consumers;
    consumer_pos_ =
        std::make_unique<std::atomic<size_t>[]>(expected_consumers);
    for (size_t i = 0; i < expected_consumers; ++i) {
      consumer_pos_[i].store(0, std::memory_order_relaxed);
    }
  }
}

EdgeCache::EdgeCache(sim::TokenStream* stream, InlineProducer,
                     const sim::SimilarityFunction* completer,
                     StopSimFn stop_sim, const SearchContext* ctx)
    : stream_(stream),
      completer_(completer),
      ctx_(ctx),
      stop_sim_fn_(std::move(stop_sim)),
      inline_mode_(true),
      query_(stream->query()),
      alpha_(stream->alpha()) {
  assert(stop_sim_fn_ == nullptr || completer_ != nullptr);
}

// ---- producer pacing --------------------------------------------------------

size_t EdgeCache::RegisterConsumer() {
  const size_t slot =
      consumers_registered_.fetch_add(1, std::memory_order_acq_rel);
  // Over-subscription (more guards than expected consumers) leaves the
  // extras unpaced; the searcher sizes the slots to its partition count,
  // so this is belt-and-braces only.
  if (slot >= expected_consumers_) return kConsumerDone;
  // Registration itself may unblock the producer (the "nobody registered
  // yet" hold) — wake it like an advance would.
  { std::lock_guard<std::mutex> lock(mutex_); }
  pace_cv_.notify_one();
  return slot;
}

void EdgeCache::AdvanceConsumer(size_t slot, size_t consumed) {
  // The store happens under mutex_, which the producer holds across its
  // predicate check and wait — so an advance either lands before the
  // check (the producer sees it) or after the wait began (the notify
  // wakes it). A lock-free fast path here (flag + relaxed stores) is the
  // store-buffer litmus and CAN miss wakeups; one uncontended lock per
  // pull chunk is the same cadence NextTuples already pays.
  {
    std::lock_guard<std::mutex> lock(mutex_);
    consumer_pos_[slot].store(consumed, std::memory_order_relaxed);
  }
  pace_cv_.notify_one();
}

void EdgeCache::FinishConsumer(size_t slot) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    consumer_pos_[slot].store(kConsumerDone, std::memory_order_relaxed);
  }
  pace_cv_.notify_one();
}

bool EdgeCache::ProducerMayRun() const {
  const size_t registered = std::min(
      consumers_registered_.load(std::memory_order_acquire),
      expected_consumers_);
  // Nobody consuming yet: produce one lead window so the first consumer
  // starts against a warm prefix, then hold until someone registers. The
  // consumer tasks were submitted before Materialize() runs, so a worker
  // will pick one up — this hold cannot deadlock.
  if (registered == 0) return tuples_.size() < producer_lead_;
  size_t min_pos = kConsumerDone;
  for (size_t i = 0; i < registered; ++i) {
    min_pos =
        std::min(min_pos, consumer_pos_[i].load(std::memory_order_relaxed));
  }
  // Every registered consumer finished (declared its stop or unwound).
  // Late-registering consumers replay the cached prefix and pace from the
  // frontier once they arrive; holding for them here would deadlock when
  // partitions outnumber pool workers (a queued partition can only start
  // after a running one finishes, which may require production to go on).
  if (min_pos == kConsumerDone) return true;
  return tuples_.size() < min_pos + producer_lead_;
}

void EdgeCache::PaceProducer() {
  if (!PacingEnabled()) return;
  std::unique_lock<std::mutex> lock(mutex_);
  while (!ProducerMayRun()) {
    // Consumers advance their positions under mutex_ (held here across
    // check and wait), so wakeups cannot be missed; the bounded wait is a
    // backstop, and the deadline poll keeps a consumer that died without
    // unwinding its guard from holding production hostage past the query
    // budget.
    pace_cv_.wait_for(lock, std::chrono::milliseconds(50));
    if (ctx_ != nullptr) {
      lock.unlock();
      ctx_->CheckCancelled();
      lock.lock();
    }
  }
}

void EdgeCache::Seal(bool exhausted, Score stop_sim) {
  if (done_.load(std::memory_order_relaxed)) return;
  {
    // Pair the done_ store with the mutex so a consumer can't check done_
    // between the last publish and the wait — then sleep forever. The stop
    // state (and the final tuple count — inline production may end mid
    // batch) is published before done_ so any consumer that observes done_
    // (acquire) also sees it.
    std::lock_guard<std::mutex> lock(mutex_);
    exhausted_ = exhausted;
    stop_sim_ = stop_sim;
    stream_ = nullptr;
    published_.store(tuples_.size(), std::memory_order_release);
    done_.store(true, std::memory_order_release);
  }
  grown_.notify_all();
}

void EdgeCache::Materialize() {
  assert(!inline_mode_ && !done_.load(std::memory_order_relaxed) &&
         stream_ != nullptr);
  // Whatever happens, done_ must be published — a producer that throws
  // (bad_alloc, a faulty similarity) without it would leave blocked
  // consumers waiting on grown_ forever, turning the error into a hang.
  // The poison defaults (stopped, slack 1.0) keep any consumer that
  // finishes normally sound; Seal overwrites them on the happy path.
  struct Finisher {
    EdgeCache* cache;
    bool exhausted = false;
    Score stop_sim = 1.0;
    ~Finisher() { cache->Seal(exhausted, stop_sim); }
  } finisher{this};
  sim::TokenStream* stream = stream_;
  std::vector<sim::StreamTuple> batch;
  batch.reserve(kPublishBatch);
  auto publish = [this, &batch] {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      tuples_.insert(tuples_.end(), batch.begin(), batch.end());
      published_.store(tuples_.size(), std::memory_order_release);
    }
    grown_.notify_all();
    batch.clear();
  };
  // The feedback poll is per tuple: a relaxed atomic read + one division,
  // noise against the heap pop + cursor probe behind each tuple, and it
  // stops production at the earliest possible point.
  while (auto tuple = stream->Next(stop_sim_fn_ ? stop_sim_fn_() : 0.0)) {
    batch.push_back(*tuple);
    // edges_ is producer-private until done_ — post-processing only reads
    // it after refinement consumed the whole stream.
    edges_[tuple->token].push_back({tuple->query_pos, tuple->sim});
    if (batch.size() >= kPublishBatch) {
      publish();
      // Deadline poll per publish batch: an expired query stops producing
      // here; the Finisher's poison seal releases blocked consumers, and
      // the abort unwinds through the searcher's joining guard.
      if (ctx_ != nullptr) ctx_->CheckCancelled();
      // Pacing (per publish batch, so the producer overshoots the lead by
      // at most kPublishBatch): wait for the slowest registered consumer
      // instead of racing everyone to α — see the class comment.
      PaceProducer();
    }
  }
  publish();
  finisher.exhausted = !stream->stopped();
  finisher.stop_sim = stream->stop_sim();
}

void EdgeCache::ProduceInline(size_t until) {
  // One poll per pull chunk; the chunk is small (PreferredConsumeChunk) so
  // an inline single-thread query still honors its deadline promptly.
  if (ctx_ != nullptr) ctx_->CheckCancelled();
  sim::TokenStream* stream = stream_;
  while (tuples_.size() < until) {
    auto tuple = stream->Next(stop_sim_fn_ ? stop_sim_fn_() : 0.0);
    if (!tuple.has_value()) {
      Seal(!stream->stopped(), stream->stop_sim());
      return;
    }
    tuples_.push_back(*tuple);
    edges_[tuple->token].push_back({tuple->query_pos, tuple->sim});
  }
  // No other thread ever blocks on an inline cache, so a plain release
  // publish (no mutex / notify) is enough for the replay consumers that
  // run after this one on the same thread.
  published_.store(tuples_.size(), std::memory_order_release);
}

void EdgeCache::FinishProduction() {
  if (!inline_mode_ || done_.load(std::memory_order_relaxed)) return;
  published_.store(tuples_.size(), std::memory_order_release);
  // The consumer stopped pulling: unproduced pairs are bounded by whatever
  // the stream would emit next (heap top), by any tuple it withheld, or —
  // when the heap is empty with nothing withheld — the stream drained.
  sim::TokenStream* stream = stream_;
  const auto peek = stream->PeekSim();
  const bool exhausted = !stream->stopped() && !peek.has_value();
  const Score slack = std::max(stream->stop_sim(), peek.value_or(0.0));
  Seal(exhausted, exhausted ? 0.0 : slack);
}

void EdgeCache::Abort() {
  // Poison: unseen pairs may be arbitrarily similar, so slack 1.0 is the
  // only sound bound a surviving consumer can use.
  Seal(/*exhausted=*/false, /*stop_sim=*/1.0);
}

size_t EdgeCache::NextTuples(size_t from, std::span<sim::StreamTuple> buf) {
  if (!done_.load(std::memory_order_acquire)) {
    if (inline_mode_) {
      // Pipelined single-thread search: the consumer produces on demand,
      // so refinement and cursor ordering interleave without a second
      // thread; tuples_ is then stable for the copy below.
      ProduceInline(from + buf.size());
    } else {
      // A producer thread may still be appending: wait and copy under the
      // mutex (tuples_ can reallocate on growth).
      std::unique_lock<std::mutex> lock(mutex_);
      grown_.wait(lock, [this, from] {
        return published_.load(std::memory_order_relaxed) > from ||
               done_.load(std::memory_order_relaxed);
      });
      const size_t available = published_.load(std::memory_order_relaxed);
      if (from >= available) return 0;  // done and exhausted
      const size_t n = std::min(buf.size(), available - from);
      std::copy_n(tuples_.begin() + static_cast<ptrdiff_t>(from), n,
                  buf.begin());
      return n;
    }
  }
  // Production finished (tuples_ immutable), or inline on this thread.
  if (from >= tuples_.size()) return 0;
  const size_t n = std::min(buf.size(), tuples_.size() - from);
  std::copy_n(tuples_.begin() + static_cast<ptrdiff_t>(from), n, buf.begin());
  return n;
}

void EdgeCache::WaitDone() const {
  if (done_.load(std::memory_order_acquire)) return;
  // An inline cache has no producer thread to wait for — and nothing to
  // wait on: everything lives on the consumer's own thread, and a later
  // partition may still pull more production, so the accessors simply see
  // the current prefix (BuildMatrix completes anything missing).
  if (inline_mode_) return;
  std::unique_lock<std::mutex> lock(mutex_);
  grown_.wait(lock,
              [this] { return done_.load(std::memory_order_relaxed); });
}

const std::vector<sim::StreamTuple>& EdgeCache::tuples() const {
  WaitDone();
  // An unsealed inline cache may still grow tuples_ (a later partition
  // pulling production would invalidate the reference handed out here).
  assert(done_.load(std::memory_order_relaxed));
  return tuples_;
}

std::span<const CachedEdge> EdgeCache::EdgesOf(TokenId t) const {
  WaitDone();
  auto it = edges_.find(t);
  if (it == edges_.end()) return {};
  return it->second;
}

matching::WeightMatrix EdgeCache::BuildMatrix(
    std::span<const TokenId> candidate_tokens,
    std::vector<uint32_t>* query_rows, std::vector<uint32_t>* set_cols) const {
  matching::WeightMatrix m(0, 0);
  BuildMatrixInto(candidate_tokens, query_rows, set_cols, &m);
  return m;
}

void EdgeCache::BuildMatrixInto(std::span<const TokenId> candidate_tokens,
                                std::vector<uint32_t>* query_rows,
                                std::vector<uint32_t>* set_cols,
                                matching::WeightMatrix* m) const {
  WaitDone();
  query_rows->clear();
  set_cols->clear();

  // Sealed caches answer from their recorded stop state; an unsealed
  // inline cache (a serial partition's post-processing while later
  // partitions may still extend production) asks the stream directly.
  const bool exhausted =
      done_.load(std::memory_order_acquire)
          ? exhausted_
          : !stream_->stopped() && !stream_->PeekSim().has_value();
  if (!exhausted) {
    // The stream stopped above α: edges in [α, stop) may be missing from
    // the cache, and the exact matchings must see the full simα matrix.
    // One multi-query kernel call scores every (query element, candidate
    // token) pair; produced edges overwrite their slots afterwards so the
    // weights refinement pruned with stay authoritative bit for bit.
    assert(completer_ != nullptr &&
           "bounded materialization requires a completer");
    const size_t nq = query_.size();
    const size_t nc = candidate_tokens.size();
    thread_local std::vector<Score> scores;
    scores.resize(nq * nc);
    completer_->SimilarityBatchMulti(query_, candidate_tokens, scores);
    thread_local std::vector<double> dense;
    dense.assign(nq * nc, 0.0);
    for (size_t qi = 0; qi < nq; ++qi) {
      for (size_t cj = 0; cj < nc; ++cj) {
        // Self-matches are 1.0 by Def. 1 (the stream injects them rather
        // than trusting the kernel's sim(x, x)).
        const Score s = candidate_tokens[cj] == query_[qi]
                            ? 1.0
                            : scores[qi * nc + cj];
        if (s >= alpha_) dense[qi * nc + cj] = s;
      }
    }
    for (size_t cj = 0; cj < nc; ++cj) {
      for (const CachedEdge& e : EdgesOf(candidate_tokens[cj])) {
        dense[e.query_pos * nc + cj] = e.sim;
      }
    }
    // Compact to rows/cols with at least one α-edge (zero rows/columns
    // never change the optimal matching).
    std::vector<uint32_t>& rows = *query_rows;
    std::vector<uint32_t>& cols = *set_cols;
    std::vector<uint32_t> col_of(nc, 0);
    for (size_t cj = 0; cj < nc; ++cj) {
      bool any = false;
      for (size_t qi = 0; qi < nq && !any; ++qi) any = dense[qi * nc + cj] > 0.0;
      if (any) {
        col_of[cj] = static_cast<uint32_t>(cols.size());
        cols.push_back(static_cast<uint32_t>(cj));
      }
    }
    for (size_t qi = 0; qi < nq; ++qi) {
      bool any = false;
      for (size_t cj = 0; cj < nc && !any; ++cj) any = dense[qi * nc + cj] > 0.0;
      if (any) rows.push_back(static_cast<uint32_t>(qi));
    }
    m->Reset(rows.size(), cols.size());
    for (size_t r = 0; r < rows.size(); ++r) {
      const double* src = dense.data() + static_cast<size_t>(rows[r]) * nc;
      for (const uint32_t cj : cols) {
        if (src[cj] > 0.0) m->At(r, col_of[cj]) = src[cj];
      }
    }
    return;
  }

  // Drained to α: the cache holds every α-edge; no similarity is computed.
  // Collect incident edges per candidate column.
  struct Coord {
    uint32_t q, c;
    double w;
  };
  std::vector<Coord> coords;
  for (uint32_t cj = 0; cj < candidate_tokens.size(); ++cj) {
    for (const CachedEdge& e : EdgesOf(candidate_tokens[cj])) {
      coords.push_back({e.query_pos, cj, e.sim});
    }
  }
  if (coords.empty()) {
    m->Reset(0, 0);
    return;
  }

  // Compact row/col id spaces.
  std::vector<uint32_t> rows, cols;
  for (const auto& co : coords) {
    rows.push_back(co.q);
    cols.push_back(co.c);
  }
  std::sort(rows.begin(), rows.end());
  rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
  std::sort(cols.begin(), cols.end());
  cols.erase(std::unique(cols.begin(), cols.end()), cols.end());
  *query_rows = rows;
  *set_cols = cols;

  m->Reset(rows.size(), cols.size());
  auto row_of = [&rows](uint32_t q) {
    return static_cast<size_t>(std::lower_bound(rows.begin(), rows.end(), q) -
                               rows.begin());
  };
  auto col_of = [&cols](uint32_t c) {
    return static_cast<size_t>(std::lower_bound(cols.begin(), cols.end(), c) -
                               cols.begin());
  };
  for (const auto& co : coords) {
    double& slot = m->At(row_of(co.q), col_of(co.c));
    slot = std::max(slot, co.w);
  }
}

size_t EdgeCache::MemoryUsageBytes() const {
  WaitDone();
  size_t bytes = tuples_.capacity() * sizeof(sim::StreamTuple);
  for (const auto& [_, list] : edges_) {
    bytes += sizeof(TokenId) + list.capacity() * sizeof(CachedEdge) +
             2 * sizeof(void*);
  }
  return bytes;
}

}  // namespace koios::core
