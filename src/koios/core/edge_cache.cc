#include "koios/core/edge_cache.h"

#include <algorithm>
#include <cassert>

namespace koios::core {

namespace {

// Tuples appended between publications. Big enough that lock/notify costs
// vanish against per-tuple production cost (a heap pop + an index probe),
// small enough that consumers start refining almost immediately.
constexpr size_t kPublishBatch = 32;

}  // namespace

EdgeCache::EdgeCache(sim::TokenStream* stream) : stream_(stream) {
  Materialize();
}

EdgeCache::EdgeCache(sim::TokenStream* stream, Deferred) : stream_(stream) {}

void EdgeCache::Materialize() {
  assert(!done_.load(std::memory_order_relaxed) && stream_ != nullptr);
  // Whatever happens, done_ must be published — a producer that throws
  // (bad_alloc, a faulty similarity) without it would leave blocked
  // consumers waiting on grown_ forever, turning the error into a hang.
  struct Finisher {
    EdgeCache* cache;
    ~Finisher() {
      {
        // Pair the done_ store with the mutex so a consumer can't check
        // done_ between the last publish and the wait — then sleep forever.
        std::lock_guard<std::mutex> lock(cache->mutex_);
        cache->done_.store(true, std::memory_order_release);
      }
      cache->grown_.notify_all();
    }
  } finisher{this};
  std::vector<sim::StreamTuple> batch;
  batch.reserve(kPublishBatch);
  auto publish = [this, &batch] {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      tuples_.insert(tuples_.end(), batch.begin(), batch.end());
      published_.store(tuples_.size(), std::memory_order_release);
    }
    grown_.notify_all();
    batch.clear();
  };
  while (auto tuple = stream_->Next()) {
    batch.push_back(*tuple);
    // edges_ is producer-private until done_ — post-processing only reads
    // it after refinement consumed the whole stream.
    edges_[tuple->token].push_back({tuple->query_pos, tuple->sim});
    if (batch.size() >= kPublishBatch) publish();
  }
  publish();
  stream_ = nullptr;
}

void EdgeCache::Abort() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    done_.store(true, std::memory_order_release);
  }
  grown_.notify_all();
}

size_t EdgeCache::NextTuples(size_t from,
                             std::span<sim::StreamTuple> buf) const {
  // Fast path: materialization finished, tuples_ is immutable.
  if (done_.load(std::memory_order_acquire)) {
    if (from >= tuples_.size()) return 0;
    const size_t n = std::min(buf.size(), tuples_.size() - from);
    std::copy_n(tuples_.begin() + static_cast<ptrdiff_t>(from), n,
                buf.begin());
    return n;
  }
  std::unique_lock<std::mutex> lock(mutex_);
  grown_.wait(lock, [this, from] {
    return published_.load(std::memory_order_relaxed) > from ||
           done_.load(std::memory_order_relaxed);
  });
  const size_t available = published_.load(std::memory_order_relaxed);
  if (from >= available) return 0;  // done and exhausted
  const size_t n = std::min(buf.size(), available - from);
  std::copy_n(tuples_.begin() + static_cast<ptrdiff_t>(from), n, buf.begin());
  return n;
}

void EdgeCache::WaitDone() const {
  if (done_.load(std::memory_order_acquire)) return;
  std::unique_lock<std::mutex> lock(mutex_);
  grown_.wait(lock,
              [this] { return done_.load(std::memory_order_relaxed); });
}

const std::vector<sim::StreamTuple>& EdgeCache::tuples() const {
  WaitDone();
  return tuples_;
}

std::span<const CachedEdge> EdgeCache::EdgesOf(TokenId t) const {
  WaitDone();
  auto it = edges_.find(t);
  if (it == edges_.end()) return {};
  return it->second;
}

matching::WeightMatrix EdgeCache::BuildMatrix(
    std::span<const TokenId> candidate_tokens,
    std::vector<uint32_t>* query_rows, std::vector<uint32_t>* set_cols) const {
  WaitDone();
  query_rows->clear();
  set_cols->clear();

  // Collect incident edges per candidate column.
  struct Coord {
    uint32_t q, c;
    double w;
  };
  std::vector<Coord> coords;
  for (uint32_t cj = 0; cj < candidate_tokens.size(); ++cj) {
    for (const CachedEdge& e : EdgesOf(candidate_tokens[cj])) {
      coords.push_back({e.query_pos, cj, e.sim});
    }
  }
  if (coords.empty()) return matching::WeightMatrix(0, 0);

  // Compact row/col id spaces.
  std::vector<uint32_t> rows, cols;
  for (const auto& co : coords) {
    rows.push_back(co.q);
    cols.push_back(co.c);
  }
  std::sort(rows.begin(), rows.end());
  rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
  std::sort(cols.begin(), cols.end());
  cols.erase(std::unique(cols.begin(), cols.end()), cols.end());
  *query_rows = rows;
  *set_cols = cols;

  matching::WeightMatrix m(rows.size(), cols.size());
  auto row_of = [&rows](uint32_t q) {
    return static_cast<size_t>(std::lower_bound(rows.begin(), rows.end(), q) -
                               rows.begin());
  };
  auto col_of = [&cols](uint32_t c) {
    return static_cast<size_t>(std::lower_bound(cols.begin(), cols.end(), c) -
                               cols.begin());
  };
  for (const auto& co : coords) {
    double& slot = m.At(row_of(co.q), col_of(co.c));
    slot = std::max(slot, co.w);
  }
  return m;
}

size_t EdgeCache::MemoryUsageBytes() const {
  WaitDone();
  size_t bytes = tuples_.capacity() * sizeof(sim::StreamTuple);
  for (const auto& [_, list] : edges_) {
    bytes += sizeof(TokenId) + list.capacity() * sizeof(CachedEdge) +
             2 * sizeof(void*);
  }
  return bytes;
}

}  // namespace koios::core
