#include "koios/core/edge_cache.h"

#include <algorithm>

namespace koios::core {

EdgeCache::EdgeCache(sim::TokenStream* stream) {
  while (auto tuple = stream->Next()) {
    tuples_.push_back(*tuple);
    edges_[tuple->token].push_back(
        {tuple->query_pos, tuple->sim});
  }
}

matching::WeightMatrix EdgeCache::BuildMatrix(
    std::span<const TokenId> candidate_tokens,
    std::vector<uint32_t>* query_rows, std::vector<uint32_t>* set_cols) const {
  query_rows->clear();
  set_cols->clear();

  // Collect incident edges per candidate column.
  struct Coord {
    uint32_t q, c;
    double w;
  };
  std::vector<Coord> coords;
  for (uint32_t cj = 0; cj < candidate_tokens.size(); ++cj) {
    for (const CachedEdge& e : EdgesOf(candidate_tokens[cj])) {
      coords.push_back({e.query_pos, cj, e.sim});
    }
  }
  if (coords.empty()) return matching::WeightMatrix(0, 0);

  // Compact row/col id spaces.
  std::vector<uint32_t> rows, cols;
  for (const auto& co : coords) {
    rows.push_back(co.q);
    cols.push_back(co.c);
  }
  std::sort(rows.begin(), rows.end());
  rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
  std::sort(cols.begin(), cols.end());
  cols.erase(std::unique(cols.begin(), cols.end()), cols.end());
  *query_rows = rows;
  *set_cols = cols;

  matching::WeightMatrix m(rows.size(), cols.size());
  auto row_of = [&rows](uint32_t q) {
    return static_cast<size_t>(std::lower_bound(rows.begin(), rows.end(), q) -
                               rows.begin());
  };
  auto col_of = [&cols](uint32_t c) {
    return static_cast<size_t>(std::lower_bound(cols.begin(), cols.end(), c) -
                               cols.begin());
  };
  for (const auto& co : coords) {
    double& slot = m.At(row_of(co.q), col_of(co.c));
    slot = std::max(slot, co.w);
  }
  return m;
}

size_t EdgeCache::MemoryUsageBytes() const {
  size_t bytes = tuples_.capacity() * sizeof(sim::StreamTuple);
  for (const auto& [_, list] : edges_) {
    bytes += sizeof(TokenId) + list.capacity() * sizeof(CachedEdge) +
             2 * sizeof(void*);
  }
  return bytes;
}

}  // namespace koios::core
