// The post-processing phase of Koios (paper §VI, Algorithm 2): verify the
// surviving candidates with exact bipartite matching, skipping it whenever
// the No-EM filter (Lemma 7) certifies membership and aborting it whenever
// the Hungarian dual bound drops below θlb (EM early termination, Lemma 8).
#ifndef KOIOS_CORE_POSTPROCESS_H_
#define KOIOS_CORE_POSTPROCESS_H_

#include <atomic>
#include <vector>

#include "koios/core/edge_cache.h"
#include "koios/core/refinement.h"
#include "koios/core/search_types.h"
#include "koios/index/set_collection.h"
#include "koios/util/thread_pool.h"

namespace koios::core {

class PostProcessor {
 public:
  /// `ctx` may be null (phase-level tests): its GlobalThreshold is the
  /// cross-partition θlb, its deadline/cancellation is polled between
  /// exact-matching batches (throwing SearchAborted). `pool` may be null;
  /// with a pool, exact matchings run in parallel batches of
  /// params.num_threads as in the paper ("all sets in Lub are queued and
  /// evaluated in parallel in the background").
  PostProcessor(const index::SetCollection* sets, const EdgeCache* cache,
                const SearchParams& params, SearchContext* ctx,
                util::ThreadPool* pool);

  /// Consumes the refinement output and returns the top-k result entries in
  /// non-increasing score order.
  std::vector<ResultEntry> Run(RefinementOutput refinement, SearchStats* stats);

 private:
  Score ThetaLb(Score local) const;

  /// One exact matching of candidate `id` through the calling thread's
  /// scratch arena (matrix + HungarianWorkspace reused across solves;
  /// counts warm hits into workspace_reuses_).
  matching::MatchResult SolveWithScratch(SetId id, Score prune_threshold);

  const index::SetCollection* sets_;
  const EdgeCache* cache_;
  SearchParams params_;
  SearchContext* ctx_;
  GlobalThreshold* global_theta_;  // &ctx_->global_theta(), null without ctx
  util::ThreadPool* pool_;
  // Solves that hit a warm thread-local HungarianWorkspace (stats:
  // em_workspace_reuses); atomic because the EM batches run on the pool.
  std::atomic<size_t> workspace_reuses_{0};
};

}  // namespace koios::core

#endif  // KOIOS_CORE_POSTPROCESS_H_
