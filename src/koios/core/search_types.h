// Parameter and result types of the Koios top-k semantic overlap search.
#ifndef KOIOS_CORE_SEARCH_TYPES_H_
#define KOIOS_CORE_SEARCH_TYPES_H_

#include <atomic>
#include <cstddef>
#include <vector>

#include "koios/core/stats.h"
#include "koios/util/types.h"

namespace koios::core {

/// θlb shared across concurrently searched partitions (paper §VI: "all
/// partitions share a global θlb that is the maximum of the θlb").
/// Monotone non-decreasing maximum of published values. Besides pruning, it
/// drives the stream-feedback loop: the searcher derives the producer's
/// stop similarity τ = (θlb − ε) / |Q| from it, so it is published from
/// refinement (greedy lower bounds) as early as possible, not only from
/// post-processing.
class GlobalThreshold {
 public:
  void Publish(Score theta) {
    Score current = value_.load(std::memory_order_relaxed);
    while (theta > current &&
           !value_.compare_exchange_weak(current, theta,
                                         std::memory_order_relaxed)) {
    }
  }
  Score Get() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<Score> value_{0.0};
};

/// Aggregates the per-consumer stream-stop declarations of the feedback
/// loop. Each refinement consumer, on deciding it needs no tuple below a
/// similarity s (θlb rules out unseen sets AND its surviving candidates'
/// bounds are tight enough — see RefinementPhase::Run), publishes s here
/// exactly once. The producer may withhold tuples below a similarity only
/// once EVERY consumer has declared one, and then only below the minimum —
/// a consumer that never declares (it needs the full α-drain) keeps the
/// producer running, which is what makes the stop exact for all consumers.
class StreamStopController {
 public:
  explicit StreamStopController(size_t num_consumers)
      : remaining_(num_consumers) {}

  /// Consumer declaration: "I will never need a tuple with sim < s".
  /// Call at most once per consumer.
  void PublishConsumerStop(Score s) {
    Score current = min_stop_.load(std::memory_order_relaxed);
    while (s < current &&
           !min_stop_.compare_exchange_weak(current, s,
                                            std::memory_order_relaxed)) {
    }
    remaining_.fetch_sub(1, std::memory_order_release);
  }

  /// Producer poll: the minimum declared stop once every consumer has
  /// declared one, 0 (= keep producing) before that.
  Score ProducerStop() const {
    if (remaining_.load(std::memory_order_acquire) > 0) return 0.0;
    return min_stop_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<size_t> remaining_;
  std::atomic<Score> min_stop_{1.0};
};

/// Per-query search parameters. Filter toggles exist for the ablation
/// benchmarks; all default to the paper's configuration (everything on).
struct SearchParams {
  size_t k = 10;
  Score alpha = 0.8;
  /// Worker threads for parallel exact matching during post-processing and
  /// for parallel partition search.
  size_t num_threads = 1;

  // --- ablation toggles -------------------------------------------------
  /// iUB-Filter with bucketized updates (refinement, §V).
  bool use_iub_filter = true;
  /// Use the bucket partitioning for iUB updates; when false, every
  /// candidate's upper bound is re-checked on every stream tuple (the
  /// "naive" update strategy §V argues against).
  bool use_bucket_index = true;
  /// No-EM filter (post-processing, Lemma 7).
  bool use_no_em_filter = true;
  /// Hungarian early termination (post-processing, Lemma 8).
  bool use_em_early_termination = true;
  /// θlb→producer stream feedback (§IV–VI): refinement publishes its
  /// running θlb back to the token-stream producer, which stops
  /// materializing once no unseen set can reach the top-k
  /// (τ = (θlb − ε) / |Q|) instead of draining to α. Exact — survivors
  /// keep the stop similarity as upper-bound slack and exact matching
  /// completes any missing below-τ edges on demand — but only engages when
  /// the index exposes its SimilarityFunction (SimilarityIndex::similarity);
  /// off = the drain-to-α path, kept for the ablation benchmarks.
  bool use_stream_feedback = true;

  /// Compute the exact SO of every reported result set even when the
  /// No-EM filter certified membership without verification. Needed for
  /// exact cross-partition merging; counted separately in the stats.
  bool verify_result_scores = true;
};

/// One result entry: a set and its semantic overlap.
struct ResultEntry {
  SetId set = kInvalidSet;
  Score score = 0.0;
  /// True if `score` is the exact SO; false if it is the certified lower
  /// bound of a set admitted by the No-EM filter without verification.
  bool exact = true;
};

struct SearchResult {
  /// Top-k sets in non-increasing score order (may hold fewer than k
  /// entries when fewer candidates exist).
  std::vector<ResultEntry> topk;
  SearchStats stats;

  /// θk of the result: smallest score in the list (0 if empty).
  Score KthScore() const {
    return topk.empty() ? 0.0 : topk.back().score;
  }
};

}  // namespace koios::core

#endif  // KOIOS_CORE_SEARCH_TYPES_H_
