// Parameter and result types of the Koios top-k semantic overlap search.
#ifndef KOIOS_CORE_SEARCH_TYPES_H_
#define KOIOS_CORE_SEARCH_TYPES_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <exception>
#include <vector>

#include "koios/core/stats.h"
#include "koios/util/types.h"

namespace koios::core {

/// θlb shared across concurrently searched partitions (paper §VI: "all
/// partitions share a global θlb that is the maximum of the θlb").
/// Monotone non-decreasing maximum of published values. Besides pruning, it
/// drives the stream-feedback loop: the searcher derives the producer's
/// stop similarity τ = (θlb − ε) / |Q| from it, so it is published from
/// refinement (greedy lower bounds) as early as possible, not only from
/// post-processing.
class GlobalThreshold {
 public:
  void Publish(Score theta) {
    Score current = value_.load(std::memory_order_relaxed);
    while (theta > current &&
           !value_.compare_exchange_weak(current, theta,
                                         std::memory_order_relaxed)) {
    }
  }
  Score Get() const { return value_.load(std::memory_order_relaxed); }

  /// Back to 0 so a caller-owned SearchContext can host another search.
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<Score> value_{0.0};
};

/// Aggregates the per-consumer stream-stop declarations of the feedback
/// loop. Each refinement consumer, on deciding it needs no tuple below a
/// similarity s (θlb rules out unseen sets AND its surviving candidates'
/// bounds are tight enough — see RefinementPhase::Run), publishes s here
/// exactly once. The producer may withhold tuples below a similarity only
/// once EVERY consumer has declared one, and then only below the minimum —
/// a consumer that never declares (it needs the full α-drain) keeps the
/// producer running, which is what makes the stop exact for all consumers.
class StreamStopController {
 public:
  explicit StreamStopController(size_t num_consumers)
      : remaining_(num_consumers) {}

  /// Consumer declaration: "I will never need a tuple with sim < s".
  /// Call at most once per consumer.
  void PublishConsumerStop(Score s) {
    Score current = min_stop_.load(std::memory_order_relaxed);
    while (s < current &&
           !min_stop_.compare_exchange_weak(current, s,
                                            std::memory_order_relaxed)) {
    }
    remaining_.fetch_sub(1, std::memory_order_release);
  }

  /// Producer poll: the minimum declared stop once every consumer has
  /// declared one, 0 (= keep producing) before that.
  Score ProducerStop() const {
    if (remaining_.load(std::memory_order_acquire) > 0) return 0.0;
    return min_stop_.load(std::memory_order_relaxed);
  }

  /// Rearms for a new search with `num_consumers` declarers.
  void Reset(size_t num_consumers) {
    min_stop_.store(1.0, std::memory_order_relaxed);
    remaining_.store(num_consumers, std::memory_order_release);
  }

 private:
  std::atomic<size_t> remaining_;
  std::atomic<Score> min_stop_{1.0};
};

/// Thrown by the search phases when a per-query deadline elapses or the
/// caller cancels (see SearchContext). The search path is exception-safe
/// (the EdgeCache is poison-sealed and in-flight partition tasks joined on
/// unwind), so an aborted query leaves no shared state behind — the
/// serve::QueryEngine catches this and turns it into a clean
/// DeadlineExceeded rejection with no partial results.
struct SearchAborted : public std::exception {
  const char* what() const noexcept override {
    return "koios: search aborted (deadline exceeded or cancelled)";
  }
};

/// Per-query execution context, threaded through every search phase
/// (searcher → token-stream producer → refinement → post-processing).
/// It bundles exactly the state that must be PER QUERY for concurrent
/// searches over one shared repository snapshot to be correct:
///
///  * the cross-partition θlb (GlobalThreshold) and the θlb→producer
///    stream-feedback aggregation (StreamStopController) — previously
///    locals of KoiosSearcher::Search, hoisted here so the whole query
///    path is reentrant and a caller (the serve engine) can observe them;
///  * deadline / cancellation: phases poll Cancelled() at coarse cadences
///    (every few dozen stream tuples, every exact-matching batch) and
///    throw SearchAborted, unwinding through the search's existing
///    poison-safe shutdown machinery.
///
/// A SearchContext is single-use per Search call (the searcher rearms the
/// members on entry); reuse across sequential searches is fine.
class SearchContext {
 public:
  SearchContext() = default;

  GlobalThreshold& global_theta() {
    return shared_theta_ != nullptr ? *shared_theta_ : global_theta_;
  }
  StreamStopController& stop_controller() { return stop_controller_; }

  /// Points this context's θlb at an EXTERNAL threshold shared by several
  /// concurrently running searches — the cross-shard generalization of the
  /// paper's §VI partition rule (every shard's refinement publishes into
  /// one query-global maximum, and every shard's producer derives its stop
  /// similarity from it). The attached threshold is NOT reset by
  /// BeginSearch: its owner (the shard coordinator) resets it exactly once
  /// per query, before any shard starts, so a late-starting shard cannot
  /// wipe the publications of an earlier one. Null detaches (back to the
  /// private per-context threshold). The pointee must outlive every search
  /// using this context.
  void AttachSharedTheta(GlobalThreshold* shared) { shared_theta_ = shared; }
  bool has_shared_theta() const { return shared_theta_ != nullptr; }

  void set_deadline(std::chrono::steady_clock::time_point deadline) {
    deadline_ = deadline;
    has_deadline_ = true;
  }
  void set_cancel_flag(const std::atomic<bool>* cancel) { cancel_ = cancel; }

  bool Cancelled() const {
    if (cancel_ != nullptr && cancel_->load(std::memory_order_relaxed)) {
      return true;
    }
    return has_deadline_ && std::chrono::steady_clock::now() >= deadline_;
  }

  /// Throws SearchAborted when Cancelled(). The poll is a relaxed atomic
  /// load plus (with a deadline) one clock read — cheap enough for the
  /// per-batch cadences the phases use.
  void CheckCancelled() const {
    if (Cancelled()) throw SearchAborted{};
  }

  /// Called by KoiosSearcher::Search on entry: rearms the per-query
  /// machinery for `num_consumers` refinement partitions. A shared
  /// (attached) θlb is deliberately left alone — see AttachSharedTheta.
  void BeginSearch(size_t num_consumers) {
    if (shared_theta_ == nullptr) global_theta_.Reset();
    stop_controller_.Reset(num_consumers);
  }

  /// Trace handle for the sampled-query profiler (util::TraceRecorder):
  /// KoiosSearcher::Search stashes the caller's ambient trace here so
  /// phase work fanned onto pool threads (partition tasks, EM batches)
  /// can adopt it and parent their spans correctly. Zero = not sampled.
  void set_trace(uint64_t trace_id, uint64_t parent_span) {
    trace_id_ = trace_id;
    trace_parent_ = parent_span;
  }
  uint64_t trace_id() const { return trace_id_; }
  uint64_t trace_parent() const { return trace_parent_; }

 private:
  GlobalThreshold global_theta_;
  GlobalThreshold* shared_theta_ = nullptr;
  StreamStopController stop_controller_{0};
  std::chrono::steady_clock::time_point deadline_{};
  bool has_deadline_ = false;
  const std::atomic<bool>* cancel_ = nullptr;
  uint64_t trace_id_ = 0;
  uint64_t trace_parent_ = 0;
};

/// Per-query search parameters. Filter toggles exist for the ablation
/// benchmarks; all default to the paper's configuration (everything on).
struct SearchParams {
  size_t k = 10;
  Score alpha = 0.8;
  /// Worker threads for parallel exact matching during post-processing and
  /// for parallel partition search.
  size_t num_threads = 1;

  // --- ablation toggles -------------------------------------------------
  /// iUB-Filter with bucketized updates (refinement, §V).
  bool use_iub_filter = true;
  /// Use the bucket partitioning for iUB updates; when false, every
  /// candidate's upper bound is re-checked on every stream tuple (the
  /// "naive" update strategy §V argues against).
  bool use_bucket_index = true;
  /// No-EM filter (post-processing, Lemma 7).
  bool use_no_em_filter = true;
  /// Hungarian early termination (post-processing, Lemma 8).
  bool use_em_early_termination = true;
  /// θlb→producer stream feedback (§IV–VI): refinement publishes its
  /// running θlb back to the token-stream producer, which stops
  /// materializing once no unseen set can reach the top-k
  /// (τ = (θlb − ε) / |Q|) instead of draining to α. Exact — survivors
  /// keep the stop similarity as upper-bound slack and exact matching
  /// completes any missing below-τ edges on demand — but only engages when
  /// the index exposes its SimilarityFunction (SimilarityIndex::similarity);
  /// off = the drain-to-α path, kept for the ablation benchmarks.
  bool use_stream_feedback = true;
  /// Producer lead (in stream tuples) for OVERLAPPED feedback searches:
  /// the producer thread stays within this many tuples of the slowest
  /// consuming partition instead of free-running, so a slow consumer
  /// still gets its stop similarity declared before the stream drains to
  /// α (the production-race fix; serial/inline modes are naturally paced
  /// and ignore this). 0 restores the free-running producer. Results are
  /// identical either way — pacing changes only how far ahead production
  /// runs, never what is produced.
  size_t stream_producer_lead = 1024;
  /// Adaptive survivor budget for the feedback stop (ROADMAP follow-up).
  /// The stop's work-balance condition tolerates at most B survivors whose
  /// upper bounds the stop would freeze above θlb (each may cost one exact
  /// matching in post-processing). Fixed policy (default): B = max(32, 4k).
  /// Adaptive policy (this knob): a rent-to-buy rule — strand at most as
  /// much estimated EM work as the streaming work already spent, with one
  /// EM costed at `adaptive_em_cost_tuples` stream tuples. Because both
  /// sides scale with the per-tuple cost, the rule needs no clock or
  /// machine constant: B = max(32, tuples_consumed / ratio). Early in the
  /// stream the budget is tight (stopping is cheap to regret); the longer
  /// the drain runs, the more EMs stopping is allowed to strand.
  /// Exactness is untouched either way — the budget only delays the stop.
  bool use_adaptive_survivor_budget = false;
  /// Estimated cost of one stranded exact matching, expressed in stream
  /// tuples (see use_adaptive_survivor_budget). Lower = EMs believed
  /// cheap = looser budget = earlier stops.
  double adaptive_em_cost_tuples = 64.0;

  /// Compute the exact SO of every reported result set even when the
  /// No-EM filter certified membership without verification. Needed for
  /// exact cross-partition merging; counted separately in the stats.
  bool verify_result_scores = true;
};

/// One result entry: a set and its semantic overlap.
struct ResultEntry {
  SetId set = kInvalidSet;
  Score score = 0.0;
  /// True if `score` is the exact SO; false if it is the certified lower
  /// bound of a set admitted by the No-EM filter without verification.
  bool exact = true;
};

struct SearchResult {
  /// Top-k sets in non-increasing score order (may hold fewer than k
  /// entries when fewer candidates exist).
  std::vector<ResultEntry> topk;
  SearchStats stats;

  /// θk of the result: smallest score in the list (0 if empty).
  Score KthScore() const {
    return topk.empty() ? 0.0 : topk.back().score;
  }
};

}  // namespace koios::core

#endif  // KOIOS_CORE_SEARCH_TYPES_H_
