// Parameter and result types of the Koios top-k semantic overlap search.
#ifndef KOIOS_CORE_SEARCH_TYPES_H_
#define KOIOS_CORE_SEARCH_TYPES_H_

#include <cstddef>
#include <vector>

#include "koios/core/stats.h"
#include "koios/util/types.h"

namespace koios::core {

/// Per-query search parameters. Filter toggles exist for the ablation
/// benchmarks; all default to the paper's configuration (everything on).
struct SearchParams {
  size_t k = 10;
  Score alpha = 0.8;
  /// Worker threads for parallel exact matching during post-processing and
  /// for parallel partition search.
  size_t num_threads = 1;

  // --- ablation toggles -------------------------------------------------
  /// iUB-Filter with bucketized updates (refinement, §V).
  bool use_iub_filter = true;
  /// Use the bucket partitioning for iUB updates; when false, every
  /// candidate's upper bound is re-checked on every stream tuple (the
  /// "naive" update strategy §V argues against).
  bool use_bucket_index = true;
  /// No-EM filter (post-processing, Lemma 7).
  bool use_no_em_filter = true;
  /// Hungarian early termination (post-processing, Lemma 8).
  bool use_em_early_termination = true;

  /// Compute the exact SO of every reported result set even when the
  /// No-EM filter certified membership without verification. Needed for
  /// exact cross-partition merging; counted separately in the stats.
  bool verify_result_scores = true;
};

/// One result entry: a set and its semantic overlap.
struct ResultEntry {
  SetId set = kInvalidSet;
  Score score = 0.0;
  /// True if `score` is the exact SO; false if it is the certified lower
  /// bound of a set admitted by the No-EM filter without verification.
  bool exact = true;
};

struct SearchResult {
  /// Top-k sets in non-increasing score order (may hold fewer than k
  /// entries when fewer candidates exist).
  std::vector<ResultEntry> topk;
  SearchStats stats;

  /// θk of the result: smallest score in the list (0 if empty).
  Score KthScore() const {
    return topk.empty() ? 0.0 : topk.back().score;
  }
};

}  // namespace koios::core

#endif  // KOIOS_CORE_SEARCH_TYPES_H_
