// The bucketized iUB filter (paper §V): candidate sets are grouped by their
// number of remaining matchable elements m; within a bucket, sets are
// ordered by ascending partial score S_i. When the stream similarity drops
// to s, every set with S_i + m·s below θlb is prunable — and because the
// pruning condition S_i ≤ θlb − m·s has an identical right-hand side for
// all sets of a bucket, a scan of each bucket's ascending prefix prunes
// everything prunable without touching surviving sets.
#ifndef KOIOS_CORE_BUCKET_INDEX_H_
#define KOIOS_CORE_BUCKET_INDEX_H_

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <utility>

#include "koios/util/types.h"

namespace koios::core {

class BucketIndex {
 public:
  /// Insert a candidate with remaining-capacity `m` and partial score `s_i`.
  void Insert(SetId set, uint32_t m, Score s_i);

  /// Relocate a candidate after it accepted a stream edge (m decreases by
  /// one, S_i grows).
  void Move(SetId set, uint32_t m_old, Score s_old, uint32_t m_new, Score s_new);

  /// Remove a candidate outright (it was pruned by another filter).
  void Remove(SetId set, uint32_t m, Score s_i);

  /// Prunes every set with S_i + m·sim < theta - eps, invoking `on_prune`
  /// for each and removing it. Returns the number pruned. Each bucket scan
  /// stops at the first survivor (ascending S_i order).
  size_t Prune(Score sim, Score theta,
               const std::function<void(SetId)>& on_prune);

  /// How many sets would survive a Prune(sim, theta) without pruning them:
  /// |{C : S_C + m_C·sim >= theta − eps}|. Each bucket contributes
  /// size − (its ascending below-cutoff prefix); when `limit` is exceeded
  /// the count returns early with a value > limit (the feedback stop check
  /// only needs "more than the budget", not the exact count).
  size_t CountSurvivors(Score sim, Score theta, size_t limit) const;

  size_t size() const { return count_; }
  size_t num_buckets() const { return buckets_.size(); }

  size_t MemoryUsageBytes() const;

 private:
  using Bucket = std::set<std::pair<Score, SetId>>;  // ascending S_i
  std::map<uint32_t, Bucket> buckets_;
  size_t count_ = 0;
};

}  // namespace koios::core

#endif  // KOIOS_CORE_BUCKET_INDEX_H_
