// Tokenization used to turn raw records (paper titles/abstracts, tweets,
// table columns) into sets of string elements, mirroring the paper's data
// preparation (§VIII-A1): whitespace splitting, lowercasing, removal of
// numeric values, URLs, and emoji-like non-ASCII tokens.
#ifndef KOIOS_TEXT_TOKENIZER_H_
#define KOIOS_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace koios::text {

struct TokenizerOptions {
  bool lowercase = true;
  /// Drop tokens that parse entirely as numbers ("remove numerical values
  /// to avoid casual matches", §VIII-A1).
  bool drop_numeric = true;
  /// Drop http(s)://... tokens (Twitter preparation).
  bool drop_urls = true;
  /// Drop tokens containing bytes outside printable ASCII (emoji etc.).
  bool drop_non_ascii = true;
  /// Minimum token length in characters after cleaning.
  size_t min_length = 1;
};

/// Splits `record` on whitespace and applies the cleaning rules. The result
/// preserves first-occurrence order and removes duplicates (sets!).
std::vector<std::string> TokenizeToSet(std::string_view record,
                                       const TokenizerOptions& options = {});

/// True if `token` consists only of digits, signs, dots, and commas.
bool IsNumericToken(std::string_view token);

}  // namespace koios::text

#endif  // KOIOS_TEXT_TOKENIZER_H_
