#include "koios/text/qgram.h"

#include <algorithm>

namespace koios::text {

std::vector<std::string> QGrams(std::string_view token, size_t q) {
  std::vector<std::string> grams;
  if (token.empty()) return grams;
  if (token.size() < q) {
    grams.emplace_back(token);
    return grams;
  }
  grams.reserve(token.size() - q + 1);
  for (size_t i = 0; i + q <= token.size(); ++i) {
    grams.emplace_back(token.substr(i, q));
  }
  std::sort(grams.begin(), grams.end());
  grams.erase(std::unique(grams.begin(), grams.end()), grams.end());
  return grams;
}

double JaccardSorted(const std::vector<std::string>& a,
                     const std::vector<std::string>& b) {
  if (a.empty() && b.empty()) return 0.0;
  size_t i = 0, j = 0, inter = 0;
  while (i < a.size() && j < b.size()) {
    const int cmp = a[i].compare(b[j]);
    if (cmp == 0) {
      ++inter;
      ++i;
      ++j;
    } else if (cmp < 0) {
      ++i;
    } else {
      ++j;
    }
  }
  const size_t uni = a.size() + b.size() - inter;
  return uni == 0 ? 0.0 : static_cast<double>(inter) / static_cast<double>(uni);
}

double QGramJaccard(std::string_view a, std::string_view b, size_t q) {
  return JaccardSorted(QGrams(a, q), QGrams(b, q));
}

}  // namespace koios::text
