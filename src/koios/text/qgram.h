// Character q-gram extraction and q-gram Jaccard similarity, the element
// similarity used in the fuzzy-overlap comparison (paper Fig. 1 and §VIII-B:
// "Jaccard on 3-grams representation of each element").
#ifndef KOIOS_TEXT_QGRAM_H_
#define KOIOS_TEXT_QGRAM_H_

#include <string>
#include <string_view>
#include <vector>

namespace koios::text {

/// The distinct q-grams of `token`, in sorted order (suitable for linear
/// merge intersection). Tokens shorter than q yield the token itself as a
/// single gram, matching common practice (and making sim(x, x) = 1 hold).
std::vector<std::string> QGrams(std::string_view token, size_t q = 3);

/// Jaccard similarity of two *sorted, deduplicated* gram vectors.
double JaccardSorted(const std::vector<std::string>& a,
                     const std::vector<std::string>& b);

/// Convenience: Jaccard of q-gram sets of two raw tokens.
double QGramJaccard(std::string_view a, std::string_view b, size_t q = 3);

}  // namespace koios::text

#endif  // KOIOS_TEXT_QGRAM_H_
