// Token dictionary: bidirectional mapping between set-element strings and
// dense TokenIds. The vocabulary `D` of a repository (paper §IV) is exactly
// the id space of one Dictionary instance.
#ifndef KOIOS_TEXT_DICTIONARY_H_
#define KOIOS_TEXT_DICTIONARY_H_

#include <cstddef>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>

#include "koios/util/types.h"

namespace koios::text {

/// Append-only interning dictionary. Ids are dense [0, size).
class Dictionary {
 public:
  /// Intern `token`, returning its id (existing or freshly assigned).
  TokenId Intern(std::string_view token);

  /// Id of `token` or kInvalidToken if absent.
  TokenId Lookup(std::string_view token) const;

  /// String for `id`; asserts validity.
  const std::string& TokenOf(TokenId id) const;

  bool Contains(std::string_view token) const {
    return Lookup(token) != kInvalidToken;
  }

  size_t size() const { return tokens_.size(); }

  size_t MemoryUsageBytes() const;

 private:
  // deque: element addresses are stable under push_back, so the map may
  // key on views into the stored strings.
  std::deque<std::string> tokens_;
  std::unordered_map<std::string_view, TokenId> ids_;
};

}  // namespace koios::text

#endif  // KOIOS_TEXT_DICTIONARY_H_
