// Token dictionary: bidirectional mapping between set-element strings and
// dense TokenIds. The vocabulary `D` of a repository (paper §IV) is exactly
// the id space of one Dictionary instance.
//
// Two storage modes behind one interface (the borrowed/owned contract the
// v4 mmap repository format relies on, see docs/ARCHITECTURE.md):
//  * owned (default) — Intern() appends strings into heap storage.
//  * borrowed — FromBorrowed() wraps a flat, offset-indexed string arena
//    (typically inside an io::MmapRepositoryView mapping) without copying
//    a byte of it. Borrowed dictionaries are immutable: Intern() is a
//    contract violation (asserted). The caller must keep the arena alive
//    for the dictionary's lifetime — serve::Snapshot pins the mapping.
//    The Lookup hash index is heap-built lazily on the first string
//    lookup (O(vocab), vocabulary-scale, never corpus-scale) — opening a
//    mapped snapshot allocates nothing here.
#ifndef KOIOS_TEXT_DICTIONARY_H_
#define KOIOS_TEXT_DICTIONARY_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>

#include "koios/util/status.h"
#include "koios/util/types.h"

namespace koios::text {

/// Append-only interning dictionary. Ids are dense [0, size).
class Dictionary {
 public:
  Dictionary() = default;

  /// Wraps a flat string arena without copying: `offsets` holds size()+1
  /// monotone byte offsets into `bytes`; token `i` is
  /// bytes[offsets[i], offsets[i+1]). Validates the offsets (monotone,
  /// ending exactly at bytes.size()). The Lookup hash index is built
  /// LAZILY on the first Lookup() call (thread-safe, call_once) so that
  /// opening a mapped snapshot costs O(1) in the vocabulary — the id→
  /// string direction, the only one the serve path uses, reads the arena
  /// directly. Token uniqueness is NOT checked here (our writers cannot
  /// produce duplicates and CRCs catch corruption); the eager verify
  /// pass (io::MmapRepositoryView::VerifyAllSections) checks it, and a
  /// lazy build resolves duplicates first-id-wins. Both spans must
  /// outlive the returned dictionary (and any copy of it).
  static util::StatusOr<Dictionary> FromBorrowed(
      std::span<const uint64_t> offsets, std::span<const char> bytes);

  /// Intern `token`, returning its id (existing or freshly assigned).
  /// Owned mode only: borrowed dictionaries are immutable.
  TokenId Intern(std::string_view token);

  /// Id of `token` or kInvalidToken if absent. Borrowed mode: the first
  /// call builds the hash index (O(vocab), guarded by call_once — safe
  /// from concurrent const readers).
  TokenId Lookup(std::string_view token) const;

  /// String for `id`; asserts validity. The view is stable for the
  /// dictionary's lifetime (owned strings never move; borrowed bytes live
  /// in the caller's arena).
  std::string_view TokenOf(TokenId id) const;

  bool Contains(std::string_view token) const {
    return Lookup(token) != kInvalidToken;
  }

  size_t size() const { return size_; }

  /// True when the string storage is a borrowed arena (immutable mode).
  bool borrowed() const { return borrowed_; }

  size_t MemoryUsageBytes() const;

 private:
  // Owned mode. deque: element addresses are stable under push_back, so
  // the map may key on views into the stored strings.
  std::deque<std::string> tokens_;
  // Borrowed mode: offset-indexed views into an external arena.
  std::span<const uint64_t> b_offsets_;
  std::span<const char> b_bytes_;
  bool borrowed_ = false;
  size_t size_ = 0;
  // Lookup index, owned mode; keys view into tokens_.
  std::unordered_map<std::string_view, TokenId> ids_;
  // Lookup index, borrowed mode: built on first use. Behind a shared_ptr
  // so the dictionary stays movable/copyable (once_flag is neither), with
  // copies sharing the built index — they share the arena anyway.
  struct LazyLookup {
    std::once_flag once;
    std::unordered_map<std::string_view, TokenId> map;
  };
  std::shared_ptr<LazyLookup> lazy_;
};

}  // namespace koios::text

#endif  // KOIOS_TEXT_DICTIONARY_H_
