#include "koios/text/dictionary.h"

#include <cassert>

namespace koios::text {

TokenId Dictionary::Intern(std::string_view token) {
  auto it = ids_.find(token);
  if (it != ids_.end()) return it->second;
  const TokenId id = static_cast<TokenId>(tokens_.size());
  tokens_.emplace_back(token);
  ids_.emplace(std::string_view(tokens_.back()), id);
  return id;
}

TokenId Dictionary::Lookup(std::string_view token) const {
  auto it = ids_.find(token);
  return it == ids_.end() ? kInvalidToken : it->second;
}

const std::string& Dictionary::TokenOf(TokenId id) const {
  assert(id < tokens_.size());
  return tokens_[id];
}

size_t Dictionary::MemoryUsageBytes() const {
  size_t bytes = 0;
  for (const auto& t : tokens_) bytes += sizeof(std::string) + t.capacity();
  bytes += ids_.size() * (sizeof(std::pair<std::string_view, TokenId>) + 2 * sizeof(void*));
  return bytes;
}

}  // namespace koios::text
