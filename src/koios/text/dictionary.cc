#include "koios/text/dictionary.h"

#include <cassert>

namespace koios::text {

util::StatusOr<Dictionary> Dictionary::FromBorrowed(
    std::span<const uint64_t> offsets, std::span<const char> bytes) {
  if (offsets.empty()) {
    return util::Status::InvalidArgument("dictionary offset table is empty");
  }
  if (offsets.front() != 0 || offsets.back() != bytes.size()) {
    return util::Status::InvalidArgument(
        "dictionary offsets do not span the string arena");
  }
  for (size_t i = 0; i + 1 < offsets.size(); ++i) {
    if (offsets[i] > offsets[i + 1]) {
      return util::Status::InvalidArgument(
          "dictionary offsets are not monotone");
    }
  }
  Dictionary dict;
  dict.borrowed_ = true;
  dict.b_offsets_ = offsets;
  dict.b_bytes_ = bytes;
  dict.size_ = offsets.size() - 1;
  dict.lazy_ = std::make_shared<LazyLookup>();
  return dict;
}

TokenId Dictionary::Intern(std::string_view token) {
  assert(!borrowed_ && "Intern on a borrowed (immutable) dictionary");
  auto it = ids_.find(token);
  if (it != ids_.end()) return it->second;
  const TokenId id = static_cast<TokenId>(tokens_.size());
  tokens_.emplace_back(token);
  ids_.emplace(std::string_view(tokens_.back()), id);
  ++size_;
  return id;
}

TokenId Dictionary::Lookup(std::string_view token) const {
  if (borrowed_) {
    std::call_once(lazy_->once, [this] {
      lazy_->map.reserve(size_);
      for (size_t i = 0; i < size_; ++i) {
        // emplace = first id wins on a (never writer-produced) duplicate.
        lazy_->map.emplace(TokenOf(static_cast<TokenId>(i)),
                           static_cast<TokenId>(i));
      }
    });
    auto it = lazy_->map.find(token);
    return it == lazy_->map.end() ? kInvalidToken : it->second;
  }
  auto it = ids_.find(token);
  return it == ids_.end() ? kInvalidToken : it->second;
}

std::string_view Dictionary::TokenOf(TokenId id) const {
  assert(id < size_);
  if (borrowed_) {
    return {b_bytes_.data() + b_offsets_[id],
            static_cast<size_t>(b_offsets_[id + 1] - b_offsets_[id])};
  }
  return tokens_[id];
}

size_t Dictionary::MemoryUsageBytes() const {
  size_t bytes = 0;
  for (const auto& t : tokens_) bytes += sizeof(std::string) + t.capacity();
  const size_t index_entries =
      borrowed_ ? (lazy_ ? lazy_->map.size() : 0) : ids_.size();
  bytes += index_entries *
           (sizeof(std::pair<std::string_view, TokenId>) + 2 * sizeof(void*));
  return bytes;
}

}  // namespace koios::text
