#include "koios/text/tokenizer.h"

#include <cctype>
#include <unordered_set>

namespace koios::text {

bool IsNumericToken(std::string_view token) {
  if (token.empty()) return false;
  bool saw_digit = false;
  for (char c : token) {
    if (std::isdigit(static_cast<unsigned char>(c))) {
      saw_digit = true;
    } else if (c != '+' && c != '-' && c != '.' && c != ',' && c != '%' && c != '$') {
      return false;
    }
  }
  return saw_digit;
}

namespace {

bool IsUrl(std::string_view token) {
  return token.rfind("http://", 0) == 0 || token.rfind("https://", 0) == 0 ||
         token.rfind("www.", 0) == 0;
}

bool HasNonAscii(std::string_view token) {
  for (unsigned char c : token) {
    if (c < 0x20 || c > 0x7E) return true;
  }
  return false;
}

}  // namespace

std::vector<std::string> TokenizeToSet(std::string_view record,
                                       const TokenizerOptions& options) {
  std::vector<std::string> out;
  std::unordered_set<std::string> seen;
  size_t i = 0;
  const size_t n = record.size();
  while (i < n) {
    while (i < n && std::isspace(static_cast<unsigned char>(record[i]))) ++i;
    size_t start = i;
    while (i < n && !std::isspace(static_cast<unsigned char>(record[i]))) ++i;
    if (i == start) continue;
    std::string_view raw = record.substr(start, i - start);
    if (options.drop_urls && IsUrl(raw)) continue;
    if (options.drop_non_ascii && HasNonAscii(raw)) continue;

    // Trim surrounding punctuation.
    size_t b = 0, e = raw.size();
    while (b < e && std::ispunct(static_cast<unsigned char>(raw[b]))) ++b;
    while (e > b && std::ispunct(static_cast<unsigned char>(raw[e - 1]))) --e;
    if (e - b < options.min_length) continue;
    std::string token(raw.substr(b, e - b));
    if (options.lowercase) {
      for (char& c : token) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
    if (options.drop_numeric && IsNumericToken(token)) continue;
    if (seen.insert(token).second) out.push_back(std::move(token));
  }
  return out;
}

}  // namespace koios::text
