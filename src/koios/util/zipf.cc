#include "koios/util/zipf.h"

#include <cassert>
#include <cmath>

namespace koios::util {

// Rejection-inversion sampling after Hörmann & Derflinger (1996), as used in
// many database workload generators. We sample x in [0.5, n + 0.5) from the
// hazard-transformed distribution and accept with a bound that is exact for
// the discrete Zipf pmf.

ZipfDistribution::ZipfDistribution(uint64_t n, double s) : n_(n), s_(s) {
  assert(n >= 1);
  assert(s >= 0.0);
  h_x1_ = H(1.5) - 1.0;
  h_n_ = H(static_cast<double>(n) + 0.5);
  threshold_ = 2.0 - HInverse(H(2.5) - std::pow(2.0, -s));
}

double ZipfDistribution::H(double x) const {
  // H(x) = integral of x^-s: ((x)^(1-s) - 1) / (1 - s); log for s == 1.
  if (std::abs(s_ - 1.0) < 1e-12) return std::log(x);
  return (std::pow(x, 1.0 - s_) - 1.0) / (1.0 - s_);
}

double ZipfDistribution::HInverse(double x) const {
  if (std::abs(s_ - 1.0) < 1e-12) return std::exp(x);
  return std::pow(1.0 + x * (1.0 - s_), 1.0 / (1.0 - s_));
}

uint64_t ZipfDistribution::Sample(Rng* rng) const {
  if (s_ == 0.0) return rng->NextBounded(n_);  // uniform shortcut
  while (true) {
    const double u = h_n_ + rng->NextDouble() * (h_x1_ - h_n_);
    const double x = HInverse(u);
    uint64_t k = static_cast<uint64_t>(x + 0.5);
    if (k < 1) k = 1;
    if (k > n_) k = n_;
    if (static_cast<double>(k) - x <= threshold_ ||
        u >= H(static_cast<double>(k) + 0.5) - std::pow(static_cast<double>(k), -s_)) {
      return k - 1;  // return 0-based rank
    }
  }
}

std::vector<uint64_t> SampleZipf(uint64_t n, double s, size_t count, Rng* rng) {
  ZipfDistribution dist(n, s);
  std::vector<uint64_t> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) out.push_back(dist.Sample(rng));
  return out;
}

}  // namespace koios::util
