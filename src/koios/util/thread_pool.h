// Fixed-size worker pool used to parallelize exact graph matching during the
// post-processing phase and to search repository partitions concurrently
// (paper §VI and §VIII-A3, which uses a C++17 thread pool for the same
// purpose). Re-implemented from scratch.
#ifndef KOIOS_UTIL_THREAD_POOL_H_
#define KOIOS_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace koios::util {

/// A simple work-queue thread pool.
///
/// Tasks are `std::function<void()>`; `Submit` returns a future for the
/// task's result. `WaitIdle` blocks until the queue drains and all workers
/// are parked, which the post-processor uses as a phase barrier.
class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers (minimum 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a callable; returns a future of its result.
  template <typename F>
  auto Submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      queue_.emplace_back([task] { (*task)(); });
      ++pending_;
    }
    wake_workers_.notify_one();
    return future;
  }

  /// Block until every submitted task has finished executing.
  void WaitIdle();

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable wake_workers_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  size_t pending_ = 0;  // queued + running tasks
  bool shutting_down_ = false;
};

}  // namespace koios::util

#endif  // KOIOS_UTIL_THREAD_POOL_H_
