#include "koios/util/memory_tracker.h"

#include <algorithm>
#include <cstdio>

namespace koios::util {

void MemoryTracker::Add(const std::string& category, size_t bytes) {
  bytes_[category] += bytes;
}

void MemoryTracker::AddPeak(const std::string& category, size_t bytes) {
  auto& slot = bytes_[category];
  slot = std::max(slot, bytes);
}

size_t MemoryTracker::Get(const std::string& category) const {
  auto it = bytes_.find(category);
  return it == bytes_.end() ? 0 : it->second;
}

size_t MemoryTracker::TotalBytes() const {
  size_t total = 0;
  for (const auto& [_, b] : bytes_) total += b;
  return total;
}

void MemoryTracker::Merge(const MemoryTracker& other) {
  for (const auto& [name, b] : other.bytes_) bytes_[name] += b;
}

void MemoryTracker::Clear() { bytes_.clear(); }

std::string MemoryTracker::FormatBytes(size_t bytes) {
  char buf[64];
  const double b = static_cast<double>(bytes);
  if (bytes >= (1ull << 30)) {
    std::snprintf(buf, sizeof(buf), "%.2f GB", b / (1ull << 30));
  } else if (bytes >= (1ull << 20)) {
    std::snprintf(buf, sizeof(buf), "%.2f MB", b / (1ull << 20));
  } else if (bytes >= (1ull << 10)) {
    std::snprintf(buf, sizeof(buf), "%.2f KB", b / (1ull << 10));
  } else {
    std::snprintf(buf, sizeof(buf), "%zu B", bytes);
  }
  return buf;
}

}  // namespace koios::util
