// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the integrity
// checksum of the repository file format's section framing. Table-driven
// software implementation: fast enough to checksum multi-MB snapshot
// sections at load time (one table lookup per byte), zero dependencies,
// and byte-order independent (the checksum is defined over the byte
// stream, so files stay valid across any machine the format itself
// supports).
#ifndef KOIOS_UTIL_CRC32_H_
#define KOIOS_UTIL_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace koios::util {

/// CRC-32 of `size` bytes at `data`. Incremental use: pass the previous
/// return value as `seed` to continue a running checksum (the empty-input
/// CRC with seed 0 is 0).
uint32_t Crc32(const void* data, size_t size, uint32_t seed = 0);

}  // namespace koios::util

#endif  // KOIOS_UTIL_CRC32_H_
