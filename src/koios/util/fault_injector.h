// Failpoint registry for fault-injection testing — the in-process chaos
// vocabulary of the engine. Production code marks its fault-prone seams
// with KOIOS_FAULTPOINT("name"); tests and the chaos bench arm named
// failpoints with deterministic seeded schedules (fail on the nth hit,
// fail with probability p, inject latency) and assert that the system
// degrades cleanly: clean Status returns, no partial results, no crash.
//
// Cost model: a DISARMED failpoint is one relaxed atomic load and a
// predictable branch — the macro short-circuits on a global armed count
// before any registry lookup, so sprinkling failpoints through hot paths
// (serialization reads, thread-pool dispatch, cursor publish) costs
// nothing measurable in production. Only while at least one failpoint is
// armed does evaluation take the registry mutex.
//
// Determinism: the fail/latency decision for hit #n is a pure function of
// (spec seed, n), so a schedule replays identically for a given arrival
// order. Under concurrency the hit NUMBERING depends on thread
// interleaving, but the decision for any given hit number does not — the
// chaos harness pins total fault counts, not which thread absorbs them.
#ifndef KOIOS_UTIL_FAULT_INJECTOR_H_
#define KOIOS_UTIL_FAULT_INJECTOR_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>

namespace koios::util {

/// Schedule of one armed failpoint. Any combination of the three triggers
/// may be set; a hit FIRES (the callsite turns it into an error) when the
/// fail-nth or fail-probability trigger matches, and SLEEPS `latency`
/// when the latency trigger matches — a latency-only spec never fires, it
/// just makes the marked path slow (stuck worker, slow disk).
struct FaultSpec {
  /// Fire exactly on the nth hit (1-based) of this failpoint; 0 = off.
  uint64_t fail_on_hit = 0;
  /// Fire each hit independently with this probability (seeded, so the
  /// decision for hit #n is deterministic); 0 = off.
  double fail_probability = 0.0;
  /// Sleep injected into matching hits; zero = off.
  std::chrono::milliseconds latency{0};
  /// Fraction of hits that sleep `latency` (1 = every hit). Decided by the
  /// same seeded hash as fail_probability, salted differently.
  double latency_probability = 1.0;
  /// Seed of the per-hit decisions.
  uint64_t seed = 0;
};

/// Monotone counters of one failpoint (armed or not, counting starts at
/// arm time).
struct FaultpointStats {
  uint64_t hits = 0;   // Evaluate calls while armed
  uint64_t fires = 0;  // hits that returned "fail"
};

/// Process-global failpoint registry. Thread-safe throughout.
class FaultInjector {
 public:
  static FaultInjector& Instance();

  /// True when ANY failpoint is armed — the macro's fast-path gate.
  static bool AnyArmed() {
    return armed_count_.load(std::memory_order_relaxed) != 0;
  }

  /// Arms (or re-arms, resetting counters) the named failpoint.
  void Arm(std::string_view name, const FaultSpec& spec);
  /// Disarms one failpoint; evaluation becomes a no-op again.
  void Disarm(std::string_view name);
  /// Disarms everything (test teardown).
  void DisarmAll();

  /// Evaluates one hit: applies the latency trigger (sleeping outside the
  /// registry lock), then returns whether the fault fires. Unarmed names
  /// return false. Prefer the KOIOS_FAULTPOINT macro, which skips this
  /// call entirely while nothing is armed.
  bool Evaluate(std::string_view name);

  /// Counters of the named failpoint (zeros when never armed).
  FaultpointStats Stats(std::string_view name) const;

 private:
  FaultInjector() = default;
  struct Registry;  // hides the map + mutex from this header
  Registry& registry() const;

  static std::atomic<size_t> armed_count_;
};

/// RAII arm/disarm for tests: arms in the constructor, disarms (that one
/// failpoint) in the destructor, so an ASSERT-exit cannot leak an armed
/// fault into the next test.
class ScopedFault {
 public:
  ScopedFault(std::string name, const FaultSpec& spec) : name_(std::move(name)) {
    FaultInjector::Instance().Arm(name_, spec);
  }
  ~ScopedFault() { FaultInjector::Instance().Disarm(name_); }
  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;

 private:
  std::string name_;
};

}  // namespace koios::util

/// The failpoint marker. Evaluates to true when the armed schedule says
/// this hit FAILS (the callsite returns its error); latency-only schedules
/// sleep inside the evaluation and yield false. Disarmed (the production
/// state): one relaxed atomic load + branch, no registry access.
#define KOIOS_FAULTPOINT(name)                   \
  (::koios::util::FaultInjector::AnyArmed() &&   \
   ::koios::util::FaultInjector::Instance().Evaluate(name))

#endif  // KOIOS_UTIL_FAULT_INJECTOR_H_
