// TraceRecorder — sampled, low-overhead span tracing for the request path.
//
// The serving stack's metrics say THAT a query was slow; the tracer says
// WHERE. Every sampled query carries a trace id through net -> serve ->
// search, and each instrumented scope records one span {trace, span,
// parent, name, t0, t1, arg} into a per-thread lock-free ring buffer.
// Three consumers read the rings:
//   * /debug/tracez renders them as Chrome trace-event JSON (loadable in
//     Perfetto / chrome://tracing),
//   * the engine's slow-query log dumps one trace's span tree as text,
//   * per-phase exponential histograms (one per distinct span name) feed
//     koios_phase_seconds{phase="..."} in the metric registry.
//
// Cost contract (the reason this file exists at all):
//   * DISABLED (the default): KOIOS_TRACE_SPAN is one relaxed atomic load
//     and a predictable branch — the same bar KOIOS_FAULTPOINT holds.
//   * Enabled but NOT sampled: the same load, plus one thread-local read.
//   * Sampled: two steady_clock reads and ~8 relaxed atomic stores per
//     span, no locks, no allocation (rings are pre-sized; names must be
//     string literals).
//
// Concurrency: each ring is written only by its owning thread; slots are
// seqlocks (odd sequence = mid-write) over all-atomic fields, so snapshot
// readers on other threads are TSan-clean and never block a writer. The
// thread registry mutex is touched once per thread (first span) and by
// readers; never on the per-span path.
#ifndef KOIOS_UTIL_TRACE_RECORDER_H_
#define KOIOS_UTIL_TRACE_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace koios::util {

/// One completed span, as copied out of a ring by a snapshot reader.
struct TraceSpanRecord {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_id = 0;  // 0 = root of its trace
  const char* name = nullptr;  // string literal, never owned
  int64_t t0_ns = 0;  // steady-clock ns since recorder epoch
  int64_t t1_ns = 0;
  const char* arg_name = nullptr;  // optional integer annotation
  uint64_t arg_value = 0;
  uint32_t thread_index = 0;  // registration order of the recording thread

  double DurationSeconds() const {
    return static_cast<double>(t1_ns - t0_ns) * 1e-9;
  }
};

class TraceRecorder {
 public:
  struct Options {
    /// 1-in-N query sampling; 0 disables the recorder entirely.
    uint32_t sample_every = 0;
    /// Spans retained per thread (rounded up to a power of two). Bounds
    /// the "last N sampled queries" window tracez can show.
    size_t ring_spans = 4096;
  };

  static TraceRecorder& Instance();

  /// The global fast gate: one relaxed load + branch. Every disabled-path
  /// caller (TraceSpan ctor, StartTrace) checks this first.
  static bool Enabled() {
    return enabled_.load(std::memory_order_relaxed) != 0;
  }

  /// Enables (sample_every > 0) or disables tracing. Ring capacity applies
  /// to threads that record their first span after the call.
  void Configure(const Options& options);
  void Disable();
  uint32_t sample_every() const {
    return sample_every_.load(std::memory_order_relaxed);
  }

  /// Sampling decision at query arrival: every sample_every-th arrival
  /// gets a fresh nonzero trace id, the rest (and all arrivals while
  /// disabled) get 0. Deterministic: the 1st, N+1th, 2N+1th ... arrivals
  /// after Configure are the sampled ones.
  uint64_t StartTrace();

  /// A trace id unconditionally (0 only when disabled) — for benches, the
  /// watcher's swap builds, and tests that must not depend on sampling.
  uint64_t StartTraceForced();

  uint64_t NewSpanId() { return next_id_.fetch_add(1, std::memory_order_relaxed); }

  /// Steady-clock ns since the recorder's construction (the epoch all
  /// span timestamps share).
  int64_t NowNs() const;

  /// The calling thread's ambient trace (set by TraceAdopt / TraceSpan).
  struct ThreadContext {
    uint64_t trace_id = 0;
    uint64_t parent_span = 0;
  };
  static ThreadContext Current();

  /// Records a span with caller-supplied ids and timestamps — for spans
  /// whose window is known only after the fact (queue wait measured at
  /// worker pickup, the request root closed at emit). `name`/`arg_name`
  /// must be string literals. No-op while disabled or when trace_id == 0.
  void RecordManualSpan(const char* name, uint64_t trace_id, uint64_t span_id,
                        uint64_t parent_id, int64_t t0_ns, int64_t t1_ns,
                        const char* arg_name = nullptr, uint64_t arg_value = 0);

  /// Copies every valid slot out of every thread ring (newest ring_spans
  /// per thread survive; older spans are overwritten in place).
  std::vector<TraceSpanRecord> Snapshot() const;
  std::vector<TraceSpanRecord> SnapshotTrace(uint64_t trace_id) const;

  /// Chrome trace-event JSON ({"traceEvents":[...]}): one "X" (complete)
  /// event per span with ts/dur in microseconds, pid = trace id (one
  /// Perfetto process track per sampled query), tid = recording thread,
  /// plus process_name metadata rows. Loadable as-is in Perfetto and
  /// chrome://tracing.
  std::string RenderChromeTraceJson() const;

  /// Indented text tree of one trace's spans (the slow-query log format).
  std::string RenderSpanTree(uint64_t trace_id) const;

  // ---- per-phase histograms (seconds) ----
  // Every recorded span also lands in an exponential histogram keyed by
  // span name. The metrics layer mirrors these into
  // koios_phase_seconds{phase="<name>"}.
  struct PhaseSnapshot {
    const char* name = nullptr;
    std::vector<uint64_t> buckets;  // PhaseBucketBounds().size() + 1 (+Inf)
    uint64_t count = 0;
    double sum = 0.0;
  };
  /// 1us .. ~268s, x4 steps (phases span frame-parse ns to 1M-set EM).
  static const std::vector<double>& PhaseBucketBounds();
  std::vector<PhaseSnapshot> PhaseHistograms() const;

  /// Test hook: zeroes rings, phase histograms, the arrival counter and
  /// the id counter. Callers must quiesce writer threads first.
  void ResetForTest();

 private:
  friend class TraceSpan;
  friend class TraceAdopt;

  struct Slot;
  struct ThreadRing;
  struct PhaseHist;
  struct TlsState;

  TraceRecorder();
  ~TraceRecorder() = delete;  // lives for the process (tls-safe)

  static TlsState& Tls();
  ThreadRing* LocalRing();
  void Push(const TraceSpanRecord& record);
  void RecordPhase(const char* name, double seconds);
  void SnapshotInto(std::vector<TraceSpanRecord>* out, uint64_t trace_filter,
                    bool filter) const;

  static std::atomic<uint32_t> enabled_;
  std::atomic<uint32_t> sample_every_{0};
  std::atomic<uint64_t> arrivals_{0};
  std::atomic<uint64_t> next_id_{1};
  std::atomic<size_t> ring_spans_{4096};
  int64_t epoch_ns_ = 0;

  mutable std::mutex rings_mutex_;
  std::vector<std::shared_ptr<ThreadRing>> rings_;
  uint32_t next_thread_index_ = 0;

  static constexpr size_t kMaxPhases = 64;
  mutable std::mutex phases_mutex_;
  std::atomic<size_t> num_phases_{0};
  std::unique_ptr<PhaseHist[]> phases_;
};

/// RAII adoption of a trace onto the current thread — the cross-thread
/// hop (net loop -> engine worker -> partition task). Restores the
/// previous ambient context on destruction. No-op when trace_id == 0.
class TraceAdopt {
 public:
  TraceAdopt(uint64_t trace_id, uint64_t parent_span);
  ~TraceAdopt();

  TraceAdopt(const TraceAdopt&) = delete;
  TraceAdopt& operator=(const TraceAdopt&) = delete;

 private:
  uint64_t saved_trace_ = 0;
  uint64_t saved_parent_ = 0;
  bool active_ = false;
};

/// RAII span. Construction is the fast gate (relaxed load + branch while
/// disabled; one extra thread-local read while enabled but unsampled);
/// destruction timestamps and records the span. `name` (and any arg name)
/// must be string literals — the recorder stores the pointers.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) {
    if (!TraceRecorder::Enabled()) return;
    Begin(name);
  }
  TraceSpan(const char* name, const char* arg_name, uint64_t arg_value) {
    if (!TraceRecorder::Enabled()) return;
    Begin(name);
    arg_name_ = arg_name;
    arg_value_ = arg_value;
  }
  ~TraceSpan() {
    if (active_) End();
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Attaches/overwrites the span's single integer annotation.
  void set_arg(const char* arg_name, uint64_t value) {
    if (!active_) return;
    arg_name_ = arg_name;
    arg_value_ = value;
  }

  bool active() const { return active_; }
  /// Nonzero only while active — children recorded manually (or on other
  /// threads via TraceAdopt) parent here.
  uint64_t span_id() const { return active_ ? span_id_ : 0; }
  uint64_t trace_id() const { return active_ ? trace_id_ : 0; }

 private:
  void Begin(const char* name);
  void End();

  bool active_ = false;
  const char* name_;
  const char* arg_name_;
  uint64_t arg_value_;
  uint64_t trace_id_;
  uint64_t span_id_;
  uint64_t saved_parent_;
  int64_t t0_ns_;
};

#define KOIOS_TRACE_CONCAT_INNER_(a, b) a##b
#define KOIOS_TRACE_CONCAT_(a, b) KOIOS_TRACE_CONCAT_INNER_(a, b)

/// Traces the enclosing scope. Disabled cost: one relaxed load + branch.
#define KOIOS_TRACE_SPAN(name) \
  ::koios::util::TraceSpan KOIOS_TRACE_CONCAT_(koios_trace_span_, __LINE__)(name)

/// Same, with one integer annotation rendered into the trace's args.
#define KOIOS_TRACE_SPAN_ARG(name, arg_name, arg_value)                        \
  ::koios::util::TraceSpan KOIOS_TRACE_CONCAT_(koios_trace_span_, __LINE__)(   \
      name, arg_name, static_cast<uint64_t>(arg_value))

}  // namespace koios::util

#endif  // KOIOS_UTIL_TRACE_RECORDER_H_
