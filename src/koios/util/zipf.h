// Zipfian sampling used by the corpus generators: set cardinalities and
// element frequencies in real repositories follow power laws (paper §VIII-A,
// citing [7], [8]).
#ifndef KOIOS_UTIL_ZIPF_H_
#define KOIOS_UTIL_ZIPF_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "koios/util/rng.h"

namespace koios::util {

/// Samples ranks in [0, n) with P(rank = r) proportional to 1 / (r + 1)^s.
/// Uses the rejection-inversion method of Hörmann & Derflinger, which is
/// O(1) per sample and needs no table.
class ZipfDistribution {
 public:
  /// n: number of ranks; s: skew exponent (s >= 0; s = 0 is uniform).
  ZipfDistribution(uint64_t n, double s);

  uint64_t Sample(Rng* rng) const;

  uint64_t n() const { return n_; }
  double s() const { return s_; }

 private:
  double H(double x) const;
  double HInverse(double x) const;

  uint64_t n_;
  double s_;
  double h_x1_;
  double h_n_;
  double threshold_;  // s-dependent acceptance shortcut for rank 0
};

/// Convenience: draw `count` Zipf-distributed ranks.
std::vector<uint64_t> SampleZipf(uint64_t n, double s, size_t count, Rng* rng);

}  // namespace koios::util

#endif  // KOIOS_UTIL_ZIPF_H_
