#include "koios/util/status.h"

namespace koios::util {

namespace {
const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kCancelled:
      return "Cancelled";
  }
  return "Unknown";
}
}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  if (has_retry_after()) {
    out += " (retry after ";
    out += std::to_string(retry_after_ms_);
    out += " ms)";
  }
  return out;
}

}  // namespace koios::util
