// Wall-clock timing utilities for the phase breakdowns reported in the
// paper's figures (refinement vs post-processing share per query).
#ifndef KOIOS_UTIL_TIMER_H_
#define KOIOS_UTIL_TIMER_H_

#include <chrono>
#include <map>
#include <string>

namespace koios::util {

/// Monotonic stopwatch.
class WallTimer {
 public:
  WallTimer() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction / last Restart.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates named durations, e.g. {"refinement": 1.2s, "postprocess": ...}.
class PhaseTimer {
 public:
  /// Add `seconds` to phase `name`.
  void Accumulate(const std::string& name, double seconds) {
    seconds_[name] += seconds;
  }

  double Get(const std::string& name) const {
    auto it = seconds_.find(name);
    return it == seconds_.end() ? 0.0 : it->second;
  }

  double Total() const {
    double t = 0.0;
    for (const auto& [_, s] : seconds_) t += s;
    return t;
  }

  const std::map<std::string, double>& phases() const { return seconds_; }

  void Merge(const PhaseTimer& other) {
    for (const auto& [n, s] : other.seconds_) seconds_[n] += s;
  }

 private:
  std::map<std::string, double> seconds_;
};

/// RAII helper: adds the scope's duration to a PhaseTimer on destruction.
class ScopedPhase {
 public:
  ScopedPhase(PhaseTimer* timer, std::string name)
      : timer_(timer), name_(std::move(name)) {}
  ~ScopedPhase() { timer_->Accumulate(name_, watch_.ElapsedSeconds()); }

  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  PhaseTimer* timer_;
  std::string name_;
  WallTimer watch_;
};

}  // namespace koios::util

#endif  // KOIOS_UTIL_TIMER_H_
