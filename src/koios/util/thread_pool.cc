#include "koios/util/thread_pool.h"

#include <algorithm>

#include "koios/util/fault_injector.h"

namespace koios::util {

ThreadPool::ThreadPool(size_t num_threads) {
  const size_t n = std::max<size_t>(1, num_threads);
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  wake_workers_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_workers_.wait(lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    // Chaos seam: a latency schedule here simulates a stuck/slow worker —
    // the task still runs to completion, it just dispatches late, which is
    // exactly how a descheduled or page-faulting worker looks to the
    // admission control and deadline machinery above. Dispatch cannot
    // "fail" (there is no error channel), so the fire bit is ignored.
    (void)KOIOS_FAULTPOINT("threadpool.dispatch");
    task();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (--pending_ == 0) idle_.notify_all();
    }
  }
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return pending_ == 0; });
}

}  // namespace koios::util
