// Minimal Status / StatusOr error-handling vocabulary, in the spirit of
// Arrow's and RocksDB's status types: recoverable errors are returned, not
// thrown; hot paths stay exception-free.
#ifndef KOIOS_UTIL_STATUS_H_
#define KOIOS_UTIL_STATUS_H_

#include <cassert>
#include <cstdint>
#include <optional>
#include <string>
#include <utility>

namespace koios::util {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  /// Admission control: a bounded queue or in-flight limit is full; the
  /// caller may retry after backing off.
  kResourceExhausted,
  /// A per-query deadline elapsed before (or while) the work ran.
  kDeadlineExceeded,
  /// The serving process cannot take this request right now (no snapshot
  /// live yet, or a graceful drain is in progress); retryable, usually
  /// against another replica.
  kUnavailable,
  /// The caller (or its disconnected client) cancelled the work before it
  /// finished; any partial work was discarded.
  kCancelled,
};

/// Lightweight status object. OK carries no allocation.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Structured backpressure payload: how long the caller should back off
  /// before retrying, attached by admission control to kResourceExhausted
  /// and fail-fast kDeadlineExceeded rejections. A protocol layer
  /// translates this into its retry/shed signal (e.g. an HTTP Retry-After
  /// header) without parsing the message text. Chainable:
  ///   return Status::ResourceExhausted("queue full").WithRetryAfterMs(12);
  Status&& WithRetryAfterMs(int64_t ms) && {
    retry_after_ms_ = ms > 0 ? ms : 0;
    return std::move(*this);
  }
  bool has_retry_after() const { return retry_after_ms_ > 0; }
  /// Milliseconds to back off before retrying; 0 when no hint is attached.
  int64_t retry_after_ms() const { return retry_after_ms_; }

  /// Human-readable rendering, e.g. "InvalidArgument: k must be positive"
  /// or "ResourceExhausted: queue full (retry after 12 ms)".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
  int64_t retry_after_ms_ = 0;  // 0 = no hint
};

/// A value-or-status. Accessing the value of a non-OK result aborts in
/// debug builds; callers are expected to check `ok()` first.
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "OK StatusOr must carry a value");
  }
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace koios::util

#endif  // KOIOS_UTIL_STATUS_H_
