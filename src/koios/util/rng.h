// Deterministic random number generation. Every stochastic component in the
// library (embedding synthesis, corpus generation, partition assignment,
// query sampling) draws from an explicitly seeded Rng so experiments are
// reproducible bit-for-bit given their seed.
#ifndef KOIOS_UTIL_RNG_H_
#define KOIOS_UTIL_RNG_H_

#include <cstdint>

namespace koios::util {

/// xoshiro256** PRNG seeded via SplitMix64. Not cryptographic; fast and
/// high quality for simulation workloads.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Uniform 64-bit value.
  uint64_t NextUint64();

  /// Uniform in [0, bound). bound must be > 0. Uses Lemire's rejection-free
  /// multiply-shift reduction with a rejection step to remove modulo bias.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Standard normal via Box-Muller (cached second value).
  double NextGaussian();

  /// Uniform integer in [lo, hi] inclusive.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Bernoulli trial.
  bool NextBool(double p_true);

  /// Derive an independent child generator (e.g. one per partition or per
  /// worker thread) from this generator's stream.
  Rng Fork();

 private:
  uint64_t state_[4];
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace koios::util

#endif  // KOIOS_UTIL_RNG_H_
