// Bounded, ordered top-k list keyed by score. Used for the running top-k
// lower-bound list Llb (refinement, §IV), the top-k upper-bound list Lub
// (post-processing, §VI), and the vanilla-overlap baseline.
#ifndef KOIOS_UTIL_TOP_K_LIST_H_
#define KOIOS_UTIL_TOP_K_LIST_H_

#include <cassert>
#include <cstddef>
#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

namespace koios::util {

/// Maintains at most `capacity` (id, score) entries with the largest scores.
///
/// - `Offer` inserts or raises an entry; when full, the lowest-scoring entry
///   is evicted to make room for a strictly better one.
/// - `Bottom()` is the k-th (smallest retained) score, the θ value the Koios
///   filters compare against; it is `floor_score` until the list fills, so
///   no pruning happens before k candidates have been seen.
///
/// Ties are broken by id (larger id considered smaller) so behaviour is
/// deterministic.
template <typename Id>
class TopKList {
 public:
  explicit TopKList(size_t capacity, double floor_score = 0.0)
      : capacity_(capacity), floor_score_(floor_score) {
    assert(capacity >= 1);
  }

  /// Insert `id` with `score`, or update it if already present (the stored
  /// score is replaced, not maxed — callers decide monotonicity). Returns
  /// true if the entry is in the list after the call.
  bool Offer(Id id, double score) {
    auto it = score_of_.find(id);
    if (it != score_of_.end()) {
      ordered_.erase({it->second, id});
      it->second = score;
      ordered_.insert({score, id});
      return true;
    }
    if (ordered_.size() < capacity_) {
      ordered_.insert({score, id});
      score_of_.emplace(id, score);
      return true;
    }
    auto lowest = ordered_.begin();  // smallest (score, id)
    if (score > lowest->first || (score == lowest->first && id < lowest->second)) {
      score_of_.erase(lowest->second);
      ordered_.erase(lowest);
      ordered_.insert({score, id});
      score_of_.emplace(id, score);
      return true;
    }
    return false;
  }

  /// Remove an entry if present; returns true if removed.
  bool Remove(Id id) {
    auto it = score_of_.find(id);
    if (it == score_of_.end()) return false;
    ordered_.erase({it->second, id});
    score_of_.erase(it);
    return true;
  }

  bool Contains(Id id) const { return score_of_.count(id) > 0; }

  /// Score of `id`; asserts presence.
  double ScoreOf(Id id) const {
    auto it = score_of_.find(id);
    assert(it != score_of_.end());
    return it->second;
  }

  /// k-th best score, or `floor_score` while the list is not yet full.
  double Bottom() const {
    if (ordered_.size() < capacity_) return floor_score_;
    return ordered_.begin()->first;
  }

  /// Best score currently held (floor if empty).
  double Top() const {
    if (ordered_.empty()) return floor_score_;
    return ordered_.rbegin()->first;
  }

  bool Full() const { return ordered_.size() >= capacity_; }
  size_t size() const { return ordered_.size(); }
  size_t capacity() const { return capacity_; }

  /// Entries in descending score order.
  std::vector<std::pair<Id, double>> Descending() const {
    std::vector<std::pair<Id, double>> out;
    out.reserve(ordered_.size());
    for (auto it = ordered_.rbegin(); it != ordered_.rend(); ++it) {
      out.emplace_back(it->second, it->first);
    }
    return out;
  }

  size_t MemoryUsageBytes() const {
    return ordered_.size() * (sizeof(std::pair<double, Id>) + 4 * sizeof(void*)) +
           score_of_.size() * (sizeof(std::pair<Id, double>) + 2 * sizeof(void*));
  }

 private:
  size_t capacity_;
  double floor_score_;
  // Ascending (score, id); begin() is the eviction candidate.
  std::set<std::pair<double, Id>> ordered_;
  std::unordered_map<Id, double> score_of_;
};

}  // namespace koios::util

#endif  // KOIOS_UTIL_TOP_K_LIST_H_
