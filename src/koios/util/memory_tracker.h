// Memory accounting used to reproduce the paper's memory-footprint plots
// (Table III, Fig. 5d, 6d, 7d). Data structures report their heap usage
// through `MemoryUsageBytes()`; the tracker aggregates per logical category
// so the bench harness can print the same breakdown the paper reports (sum
// of refinement-phase and post-processing-phase structures).
#ifndef KOIOS_UTIL_MEMORY_TRACKER_H_
#define KOIOS_UTIL_MEMORY_TRACKER_H_

#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace koios::util {

/// Aggregates named byte counts; snapshot-style (not live instrumentation).
class MemoryTracker {
 public:
  /// Record `bytes` under `category`, accumulating across calls.
  void Add(const std::string& category, size_t bytes);

  /// Record the max of the existing value and `bytes` (for structures whose
  /// peak matters, e.g. the candidate map during refinement).
  void AddPeak(const std::string& category, size_t bytes);

  size_t Get(const std::string& category) const;
  size_t TotalBytes() const;

  /// Category -> bytes, sorted by name.
  const std::map<std::string, size_t>& categories() const { return bytes_; }

  /// Merge another tracker into this one (summing categories); used when
  /// aggregating per-partition footprints.
  void Merge(const MemoryTracker& other);

  void Clear();

  /// Pretty "12.3 MB" rendering.
  static std::string FormatBytes(size_t bytes);

 private:
  std::map<std::string, size_t> bytes_;
};

/// Heap footprint helpers for standard containers (approximate: payload
/// only, ignoring allocator slack).
template <typename T>
size_t VectorBytes(const std::vector<T>& v) {
  return v.capacity() * sizeof(T);
}

}  // namespace koios::util

#endif  // KOIOS_UTIL_MEMORY_TRACKER_H_
