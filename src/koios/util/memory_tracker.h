// Memory accounting used to reproduce the paper's memory-footprint plots
// (Table III, Fig. 5d, 6d, 7d). Data structures report their heap usage
// through `MemoryUsageBytes()`; the tracker aggregates per logical category
// so the bench harness can print the same breakdown the paper reports (sum
// of refinement-phase and post-processing-phase structures).
#ifndef KOIOS_UTIL_MEMORY_TRACKER_H_
#define KOIOS_UTIL_MEMORY_TRACKER_H_

#include <atomic>
#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace koios::util {

/// Aggregates named byte counts; snapshot-style (not live instrumentation).
class MemoryTracker {
 public:
  /// Record `bytes` under `category`, accumulating across calls.
  void Add(const std::string& category, size_t bytes);

  /// Record the max of the existing value and `bytes` (for structures whose
  /// peak matters, e.g. the candidate map during refinement).
  void AddPeak(const std::string& category, size_t bytes);

  size_t Get(const std::string& category) const;
  size_t TotalBytes() const;

  /// Category -> bytes, sorted by name.
  const std::map<std::string, size_t>& categories() const { return bytes_; }

  /// Merge another tracker into this one (summing categories); used when
  /// aggregating per-partition footprints.
  void Merge(const MemoryTracker& other);

  void Clear();

  /// Pretty "12.3 MB" rendering.
  static std::string FormatBytes(size_t bytes);

 private:
  std::map<std::string, size_t> bytes_;
};

/// LIVE byte accounting for long-running caches, as opposed to the
/// snapshot-style MemoryTracker above: a lock-free gauge of bytes currently
/// held plus an optional capacity. Writers Add/Sub as payloads are
/// published and dropped; an eviction loop polls OverBy() and frees until
/// it returns 0. All operations are thread-safe; the gauge is exact
/// whenever every byte added is eventually subtracted exactly once (the
/// cursor-cache contract: accounted at publish, de-accounted at evict or
/// clear).
class ByteBudget {
 public:
  /// `capacity` of 0 means unbounded (OverBy() is always 0).
  explicit ByteBudget(size_t capacity = 0) : capacity_(capacity) {}

  void set_capacity(size_t bytes) {
    capacity_.store(bytes, std::memory_order_relaxed);
  }
  size_t capacity() const { return capacity_.load(std::memory_order_relaxed); }

  void Add(size_t bytes) { used_.fetch_add(bytes, std::memory_order_relaxed); }
  void Sub(size_t bytes) { used_.fetch_sub(bytes, std::memory_order_relaxed); }
  size_t used() const { return used_.load(std::memory_order_relaxed); }

  /// Bytes above capacity (0 when within budget or unbounded).
  size_t OverBy() const {
    const size_t cap = capacity();
    if (cap == 0) return 0;
    const size_t u = used();
    return u > cap ? u - cap : 0;
  }

 private:
  std::atomic<size_t> capacity_;
  std::atomic<size_t> used_{0};
};

/// Heap footprint helpers for standard containers (approximate: payload
/// only, ignoring allocator slack).
template <typename T>
size_t VectorBytes(const std::vector<T>& v) {
  return v.capacity() * sizeof(T);
}

}  // namespace koios::util

#endif  // KOIOS_UTIL_MEMORY_TRACKER_H_
