#include "koios/util/metric_registry.h"

#include <algorithm>
#include <cassert>
#include <cinttypes>
#include <cmath>
#include <cstdio>

namespace koios::util {

namespace {

/// Shortest round-trippable rendering of a double: integers print bare
/// ("42"), everything else with enough digits ("0.0125", "1e-06").
std::string RenderDouble(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::abs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

// ---------------------------------------------------------------- Histogram

Histogram::Histogram(std::string name, std::string help,
                     std::vector<double> bounds)
    : name_(std::move(name)), help_(std::move(help)), bounds_(std::move(bounds)) {
  assert(std::is_sorted(bounds_.begin(), bounds_.end()));
  buckets_ = std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::Observe(double value) {
  const size_t idx =
      std::upper_bound(bounds_.begin(), bounds_.end(), value) - bounds_.begin();
  // upper_bound gives the first bound STRICTLY greater; Prometheus buckets
  // are upper-inclusive, so step back when the value sits exactly on one.
  const size_t bucket =
      (idx > 0 && bounds_[idx - 1] == value) ? idx - 1 : idx;
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double current = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(current, current + value,
                                     std::memory_order_relaxed)) {
  }
}

uint64_t Histogram::CumulativeCount(size_t i) const {
  uint64_t total = 0;
  for (size_t b = 0; b <= i && b <= bounds_.size(); ++b) {
    total += buckets_[b].load(std::memory_order_relaxed);
  }
  return total;
}

std::vector<double> ExponentialLatencyBuckets() {
  std::vector<double> bounds;
  for (double b = 1e-4; b < 200.0; b *= 2.0) bounds.push_back(b);
  return bounds;
}

// ----------------------------------------------------------- MetricRegistry

const MetricRegistry::Entry* MetricRegistry::Find(std::string_view name) const {
  for (const auto& [n, entry] : metrics_) {
    if (n == name) return &entry;
  }
  return nullptr;
}

Counter* MetricRegistry::RegisterCounter(std::string_view name,
                                         std::string_view help) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (const Entry* existing = Find(name)) {
    return existing->kind == Entry::kCounter ? existing->counter.get()
                                             : nullptr;
  }
  Entry entry;
  entry.kind = Entry::kCounter;
  entry.counter.reset(new Counter(std::string(name), std::string(help)));
  Counter* ptr = entry.counter.get();
  metrics_.emplace_back(std::string(name), std::move(entry));
  return ptr;
}

Gauge* MetricRegistry::RegisterGauge(std::string_view name,
                                     std::string_view help) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (const Entry* existing = Find(name)) {
    return existing->kind == Entry::kGauge ? existing->gauge.get() : nullptr;
  }
  Entry entry;
  entry.kind = Entry::kGauge;
  entry.gauge.reset(new Gauge(std::string(name), std::string(help)));
  Gauge* ptr = entry.gauge.get();
  metrics_.emplace_back(std::string(name), std::move(entry));
  return ptr;
}

Histogram* MetricRegistry::RegisterHistogram(std::string_view name,
                                             std::string_view help,
                                             std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (const Entry* existing = Find(name)) {
    return existing->kind == Entry::kHistogram ? existing->histogram.get()
                                               : nullptr;
  }
  Entry entry;
  entry.kind = Entry::kHistogram;
  entry.histogram.reset(
      new Histogram(std::string(name), std::string(help), std::move(bounds)));
  Histogram* ptr = entry.histogram.get();
  metrics_.emplace_back(std::string(name), std::move(entry));
  return ptr;
}

Counter* MetricRegistry::FindCounter(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const Entry* entry = Find(name);
  return entry != nullptr && entry->kind == Entry::kCounter
             ? entry->counter.get()
             : nullptr;
}

Gauge* MetricRegistry::FindGauge(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const Entry* entry = Find(name);
  return entry != nullptr && entry->kind == Entry::kGauge ? entry->gauge.get()
                                                          : nullptr;
}

Histogram* MetricRegistry::FindHistogram(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const Entry* entry = Find(name);
  return entry != nullptr && entry->kind == Entry::kHistogram
             ? entry->histogram.get()
             : nullptr;
}

void MetricRegistry::AddCollectionCallback(std::function<void()> callback) {
  std::lock_guard<std::mutex> lock(mutex_);
  callbacks_.push_back(std::move(callback));
}

std::string MetricRegistry::RenderText() const {
  // Callbacks refresh gauges from their authoritative sources first. They
  // run under the registry mutex (serialized against each other and
  // against concurrent registration); metric mutation itself is atomic,
  // so concurrent hot-path updates are unaffected.
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& callback : callbacks_) callback();

  std::string out;
  out.reserve(metrics_.size() * 96);
  for (const auto& [name, entry] : metrics_) {
    switch (entry.kind) {
      case Entry::kCounter: {
        const Counter& c = *entry.counter;
        if (!c.help_.empty()) out += "# HELP " + name + " " + c.help_ + "\n";
        out += "# TYPE " + name + " counter\n";
        out += name + " " + std::to_string(c.Value()) + "\n";
        break;
      }
      case Entry::kGauge: {
        const Gauge& g = *entry.gauge;
        if (!g.help_.empty()) out += "# HELP " + name + " " + g.help_ + "\n";
        out += "# TYPE " + name + " gauge\n";
        out += name + " " + RenderDouble(g.Value()) + "\n";
        break;
      }
      case Entry::kHistogram: {
        const Histogram& h = *entry.histogram;
        if (!h.help_.empty()) out += "# HELP " + name + " " + h.help_ + "\n";
        out += "# TYPE " + name + " histogram\n";
        for (size_t i = 0; i < h.bounds().size(); ++i) {
          out += name + "_bucket{le=\"" + RenderDouble(h.bounds()[i]) + "\"} " +
                 std::to_string(h.CumulativeCount(i)) + "\n";
        }
        out += name + "_bucket{le=\"+Inf\"} " + std::to_string(h.Count()) + "\n";
        out += name + "_sum " + RenderDouble(h.Sum()) + "\n";
        out += name + "_count " + std::to_string(h.Count()) + "\n";
        break;
      }
    }
  }
  return out;
}

}  // namespace koios::util
