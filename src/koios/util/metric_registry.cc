#include "koios/util/metric_registry.h"

#include <algorithm>
#include <cassert>
#include <cinttypes>
#include <cmath>
#include <cstdio>

namespace koios::util {

namespace {

/// Shortest round-trippable rendering of a double: integers print bare
/// ("42"), everything else with enough digits ("0.0125", "1e-06").
std::string RenderDouble(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::abs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

/// Prometheus help-text escaping: backslash and newline.
std::string EscapeHelp(const std::string& help) {
  std::string out;
  out.reserve(help.size());
  for (char c : help) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

/// Splits a registered series name into base and label body:
/// `base{key="v"}` -> {"base", `key="v"`}; an unlabeled name has an empty
/// label body.
struct NameParts {
  std::string_view base;
  std::string_view labels;  // without the enclosing braces
};

NameParts SplitName(std::string_view name) {
  const size_t brace = name.find('{');
  if (brace == std::string_view::npos) return {name, {}};
  std::string_view labels = name.substr(brace + 1);
  if (!labels.empty() && labels.back() == '}') {
    labels.remove_suffix(1);
  }
  return {name.substr(0, brace), labels};
}

/// `base_bucket{<labels,>le="0.1"}` — merges a histogram's own labels
/// with the `le` bucket label.
std::string BucketSeries(const NameParts& parts, const std::string& le) {
  std::string out(parts.base);
  out += "_bucket{";
  if (!parts.labels.empty()) {
    out += parts.labels;
    out += ",";
  }
  out += "le=\"" + le + "\"} ";
  return out;
}

/// `base_sum{labels}` / plain `base_sum` for unlabeled histograms.
std::string SuffixSeries(const NameParts& parts, const char* suffix) {
  std::string out(parts.base);
  out += suffix;
  if (!parts.labels.empty()) {
    out += "{";
    out += parts.labels;
    out += "}";
  }
  return out;
}

}  // namespace

std::string LabeledMetricName(std::string_view base, std::string_view key,
                              std::string_view value) {
  std::string out(base);
  out += "{";
  out += key;
  out += "=\"";
  for (char c : value) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '"') {
      out += "\\\"";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  out += "\"}";
  return out;
}

// ---------------------------------------------------------------- Histogram

Histogram::Histogram(std::string name, std::string help,
                     std::vector<double> bounds)
    : name_(std::move(name)), help_(std::move(help)), bounds_(std::move(bounds)) {
  assert(std::is_sorted(bounds_.begin(), bounds_.end()));
  buckets_ = std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::Observe(double value) {
  const size_t idx =
      std::upper_bound(bounds_.begin(), bounds_.end(), value) - bounds_.begin();
  // upper_bound gives the first bound STRICTLY greater; Prometheus buckets
  // are upper-inclusive, so step back when the value sits exactly on one.
  const size_t bucket =
      (idx > 0 && bounds_[idx - 1] == value) ? idx - 1 : idx;
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double current = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(current, current + value,
                                     std::memory_order_relaxed)) {
  }
}

uint64_t Histogram::CumulativeCount(size_t i) const {
  uint64_t total = 0;
  for (size_t b = 0; b <= i && b <= bounds_.size(); ++b) {
    total += buckets_[b].load(std::memory_order_relaxed);
  }
  return total;
}

void Histogram::SetSnapshot(const std::vector<uint64_t>& bucket_counts,
                            double sum) {
  uint64_t total = 0;
  const size_t n = std::min(bucket_counts.size(), bounds_.size() + 1);
  // The snapshot is authoritative: slots past a short vector are zeroed,
  // never left holding counts from a previous snapshot or Observe.
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    const uint64_t v = i < n ? bucket_counts[i] : 0;
    buckets_[i].store(v, std::memory_order_relaxed);
    total += v;
  }
  sum_.store(sum, std::memory_order_relaxed);
  count_.store(total, std::memory_order_relaxed);
}

std::vector<double> ExponentialLatencyBuckets() {
  std::vector<double> bounds;
  for (double b = 1e-4; b < 200.0; b *= 2.0) bounds.push_back(b);
  return bounds;
}

// ----------------------------------------------------------- MetricRegistry

const MetricRegistry::Entry* MetricRegistry::Find(std::string_view name) const {
  for (const auto& [n, entry] : metrics_) {
    if (n == name) return &entry;
  }
  return nullptr;
}

Counter* MetricRegistry::RegisterCounter(std::string_view name,
                                         std::string_view help) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (const Entry* existing = Find(name)) {
    return existing->kind == Entry::kCounter ? existing->counter.get()
                                             : nullptr;
  }
  Entry entry;
  entry.kind = Entry::kCounter;
  entry.counter.reset(new Counter(std::string(name), std::string(help)));
  Counter* ptr = entry.counter.get();
  metrics_.emplace_back(std::string(name), std::move(entry));
  return ptr;
}

Gauge* MetricRegistry::RegisterGauge(std::string_view name,
                                     std::string_view help) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (const Entry* existing = Find(name)) {
    return existing->kind == Entry::kGauge ? existing->gauge.get() : nullptr;
  }
  Entry entry;
  entry.kind = Entry::kGauge;
  entry.gauge.reset(new Gauge(std::string(name), std::string(help)));
  Gauge* ptr = entry.gauge.get();
  metrics_.emplace_back(std::string(name), std::move(entry));
  return ptr;
}

Histogram* MetricRegistry::RegisterHistogram(std::string_view name,
                                             std::string_view help,
                                             std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (const Entry* existing = Find(name)) {
    return existing->kind == Entry::kHistogram ? existing->histogram.get()
                                               : nullptr;
  }
  Entry entry;
  entry.kind = Entry::kHistogram;
  entry.histogram.reset(
      new Histogram(std::string(name), std::string(help), std::move(bounds)));
  Histogram* ptr = entry.histogram.get();
  metrics_.emplace_back(std::string(name), std::move(entry));
  return ptr;
}

Counter* MetricRegistry::FindCounter(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const Entry* entry = Find(name);
  return entry != nullptr && entry->kind == Entry::kCounter
             ? entry->counter.get()
             : nullptr;
}

Gauge* MetricRegistry::FindGauge(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const Entry* entry = Find(name);
  return entry != nullptr && entry->kind == Entry::kGauge ? entry->gauge.get()
                                                          : nullptr;
}

Histogram* MetricRegistry::FindHistogram(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const Entry* entry = Find(name);
  return entry != nullptr && entry->kind == Entry::kHistogram
             ? entry->histogram.get()
             : nullptr;
}

void MetricRegistry::AddCollectionCallback(std::function<void()> callback) {
  std::lock_guard<std::mutex> lock(callbacks_mutex_);
  callbacks_.push_back(std::move(callback));
}

std::string MetricRegistry::RenderText() const {
  // Callbacks refresh gauges from their authoritative sources first. They
  // run OUTSIDE the registry mutex (a callback may register a new labeled
  // series, e.g. a freshly observed trace phase) but hold the callbacks
  // mutex, so renders serialize against each other.
  {
    std::lock_guard<std::mutex> lock(callbacks_mutex_);
    for (const auto& callback : callbacks_) callback();
  }

  std::lock_guard<std::mutex> lock(mutex_);
  // Group every series of one base name under a single HELP/TYPE block
  // (Prometheus requires all samples of a metric to be contiguous).
  // Groups render in first-registration order, series within a group in
  // registration order — stable scrapes diff cleanly.
  std::vector<std::pair<std::string_view, std::vector<size_t>>> groups;
  for (size_t i = 0; i < metrics_.size(); ++i) {
    const std::string_view base = SplitName(metrics_[i].first).base;
    bool found = false;
    for (auto& [have, indices] : groups) {
      if (have == base) {
        indices.push_back(i);
        found = true;
        break;
      }
    }
    if (!found) groups.push_back({base, {i}});
  }

  std::string out;
  out.reserve(metrics_.size() * 96);
  for (const auto& [base, indices] : groups) {
    const std::string base_name(base);
    // HELP from the first series with help text; TYPE from the first.
    for (size_t i : indices) {
      const Entry& entry = metrics_[i].second;
      const std::string& help = entry.kind == Entry::kCounter
                                    ? entry.counter->help_
                                    : entry.kind == Entry::kGauge
                                          ? entry.gauge->help_
                                          : entry.histogram->help_;
      if (!help.empty()) {
        out += "# HELP " + base_name + " " + EscapeHelp(help) + "\n";
        break;
      }
    }
    switch (metrics_[indices.front()].second.kind) {
      case Entry::kCounter:
        out += "# TYPE " + base_name + " counter\n";
        break;
      case Entry::kGauge:
        out += "# TYPE " + base_name + " gauge\n";
        break;
      case Entry::kHistogram:
        out += "# TYPE " + base_name + " histogram\n";
        break;
    }
    for (size_t i : indices) {
      const std::string& name = metrics_[i].first;
      const Entry& entry = metrics_[i].second;
      const NameParts parts = SplitName(name);
      switch (entry.kind) {
        case Entry::kCounter:
          out += name + " " + std::to_string(entry.counter->Value()) + "\n";
          break;
        case Entry::kGauge:
          out += name + " " + RenderDouble(entry.gauge->Value()) + "\n";
          break;
        case Entry::kHistogram: {
          const Histogram& h = *entry.histogram;
          for (size_t b = 0; b < h.bounds().size(); ++b) {
            out += BucketSeries(parts, RenderDouble(h.bounds()[b])) +
                   std::to_string(h.CumulativeCount(b)) + "\n";
          }
          out += BucketSeries(parts, "+Inf") + std::to_string(h.Count()) + "\n";
          out += SuffixSeries(parts, "_sum") + " " + RenderDouble(h.Sum()) +
                 "\n";
          out += SuffixSeries(parts, "_count") + " " +
                 std::to_string(h.Count()) + "\n";
          break;
        }
      }
    }
  }
  return out;
}

}  // namespace koios::util
