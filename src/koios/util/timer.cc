#include "koios/util/timer.h"

// Header-only implementations; this translation unit exists so the target
// has a stable object for the module and to catch ODR issues early.
