#include "koios/util/rng.h"

#include <cassert>
#include <cmath>

namespace koios::util {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  assert(bound > 0);
  // Lemire's multiply-shift with rejection to remove bias.
  uint64_t x = NextUint64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t low = static_cast<uint64_t>(m);
  if (low < bound) {
    uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      x = NextUint64();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

double Rng::NextDouble() {
  // 53 high bits -> [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 0.0);
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBounded(span));
}

bool Rng::NextBool(double p_true) { return NextDouble() < p_true; }

Rng Rng::Fork() { return Rng(NextUint64()); }

}  // namespace koios::util
