// Common scalar types and constants shared across the Koios library.
#ifndef KOIOS_UTIL_TYPES_H_
#define KOIOS_UTIL_TYPES_H_

#include <cstdint>
#include <limits>

namespace koios {

/// Identifier of a token (set element) in the global dictionary `D`.
using TokenId = uint32_t;

/// Identifier of a set in the repository `L`.
using SetId = uint32_t;

/// Similarity / overlap score. All element similarities live in [0, 1];
/// semantic overlaps live in [0, min(|Q|, |C|)].
using Score = double;

/// Sentinel for "no token" / "no set".
inline constexpr TokenId kInvalidToken = std::numeric_limits<TokenId>::max();
inline constexpr SetId kInvalidSet = std::numeric_limits<SetId>::max();

/// Epsilon used when comparing scores and bounds. Filters must never prune
/// a set whose true score ties the threshold, so all pruning comparisons
/// are performed with this slack.
inline constexpr Score kScoreEps = 1e-9;

}  // namespace koios

#endif  // KOIOS_UTIL_TYPES_H_
