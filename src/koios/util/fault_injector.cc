#include "koios/util/fault_injector.h"

#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>

namespace koios::util {

std::atomic<size_t> FaultInjector::armed_count_{0};

namespace {

/// SplitMix64 finalizer: a well-mixed pure function of (seed, hit, salt),
/// which is what makes per-hit decisions deterministic and independent.
uint64_t Mix(uint64_t seed, uint64_t hit, uint64_t salt) {
  uint64_t z = seed + hit * 0x9E3779B97F4A7C15ull + salt;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// Uniform double in [0, 1) from the mixed bits.
double MixToUnit(uint64_t seed, uint64_t hit, uint64_t salt) {
  return static_cast<double>(Mix(seed, hit, salt) >> 11) * 0x1.0p-53;
}

constexpr uint64_t kFailSalt = 0x6661696C00000000ull;     // "fail"
constexpr uint64_t kLatencySalt = 0x736C6F7700000000ull;  // "slow"

struct Fault {
  FaultSpec spec;
  std::atomic<uint64_t> hits{0};
  std::atomic<uint64_t> fires{0};
};

}  // namespace

struct FaultInjector::Registry {
  mutable std::mutex mutex;
  // shared_ptr payloads so Evaluate can drop the registry lock before
  // sleeping or bumping counters — a Disarm racing a long latency
  // injection must not block (or worse, free the entry under the sleeper).
  std::unordered_map<std::string, std::shared_ptr<Fault>> map;
};

FaultInjector& FaultInjector::Instance() {
  static FaultInjector* instance = new FaultInjector();  // never destroyed
  return *instance;
}

FaultInjector::Registry& FaultInjector::registry() const {
  static Registry* registry = new Registry();  // never destroyed
  return *registry;
}

void FaultInjector::Arm(std::string_view name, const FaultSpec& spec) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  auto fault = std::make_shared<Fault>();
  fault->spec = spec;
  auto [it, inserted] = reg.map.insert_or_assign(std::string(name), fault);
  (void)it;
  if (inserted) armed_count_.fetch_add(1, std::memory_order_relaxed);
}

void FaultInjector::Disarm(std::string_view name) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  if (reg.map.erase(std::string(name)) > 0) {
    armed_count_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void FaultInjector::DisarmAll() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  armed_count_.fetch_sub(reg.map.size(), std::memory_order_relaxed);
  reg.map.clear();
}

bool FaultInjector::Evaluate(std::string_view name) {
  std::shared_ptr<Fault> fault;
  {
    Registry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    auto it = reg.map.find(std::string(name));
    if (it == reg.map.end()) return false;
    fault = it->second;
  }
  const uint64_t hit = fault->hits.fetch_add(1, std::memory_order_relaxed) + 1;
  const FaultSpec& spec = fault->spec;

  if (spec.latency.count() > 0 &&
      (spec.latency_probability >= 1.0 ||
       MixToUnit(spec.seed, hit, kLatencySalt) < spec.latency_probability)) {
    std::this_thread::sleep_for(spec.latency);
  }

  bool fires = spec.fail_on_hit != 0 && hit == spec.fail_on_hit;
  if (!fires && spec.fail_probability > 0.0) {
    fires = MixToUnit(spec.seed, hit, kFailSalt) < spec.fail_probability;
  }
  if (fires) fault->fires.fetch_add(1, std::memory_order_relaxed);
  return fires;
}

FaultpointStats FaultInjector::Stats(std::string_view name) const {
  std::shared_ptr<Fault> fault;
  {
    Registry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    auto it = reg.map.find(std::string(name));
    if (it == reg.map.end()) return {};
    fault = it->second;
  }
  FaultpointStats stats;
  stats.hits = fault->hits.load(std::memory_order_relaxed);
  stats.fires = fault->fires.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace koios::util
