#include "koios/util/trace_recorder.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>

namespace koios::util {

std::atomic<uint32_t> TraceRecorder::enabled_{0};

// ----------------------------------------------------------- ring internals

// Seqlock slot: odd seq = the owning thread is mid-write, readers discard.
// Every field is an atomic, so concurrent snapshot reads are race-free by
// construction; the seq double-check only guards cross-field consistency.
struct TraceRecorder::Slot {
  std::atomic<uint64_t> seq{0};  // 0 = never written
  std::atomic<uint64_t> trace_id{0};
  std::atomic<uint64_t> span_id{0};
  std::atomic<uint64_t> parent_id{0};
  std::atomic<const char*> name{nullptr};
  std::atomic<int64_t> t0_ns{0};
  std::atomic<int64_t> t1_ns{0};
  std::atomic<const char*> arg_name{nullptr};
  std::atomic<uint64_t> arg_value{0};
};

struct TraceRecorder::ThreadRing {
  ThreadRing(size_t capacity, uint32_t index)
      : mask(capacity - 1), thread_index(index),
        slots(std::make_unique<Slot[]>(capacity)) {}

  const size_t mask;  // capacity is a power of two
  const uint32_t thread_index;
  std::atomic<uint64_t> head{0};  // next write position (owner-only store)
  std::unique_ptr<Slot[]> slots;
};

struct TraceRecorder::PhaseHist {
  static constexpr size_t kBucketSlots = 32;  // bounds + 1, generously sized
  std::atomic<const char*> name{nullptr};
  std::atomic<uint64_t> buckets[kBucketSlots] = {};
  std::atomic<uint64_t> count{0};
  std::atomic<double> sum{0.0};
};

struct TraceRecorder::TlsState {
  uint64_t trace_id = 0;
  uint64_t parent_span = 0;
  std::shared_ptr<ThreadRing> ring;  // shared with rings_, survives thread exit
};

namespace {

size_t RoundUpPow2(size_t v) {
  size_t p = 8;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

// ------------------------------------------------------------ TraceRecorder

TraceRecorder::TraceRecorder()
    : phases_(std::make_unique<PhaseHist[]>(kMaxPhases)) {
  epoch_ns_ = std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now().time_since_epoch())
                  .count();
}

TraceRecorder& TraceRecorder::Instance() {
  // Leaked singleton: spans can record from detached threads during
  // process teardown, so the recorder must outlive every static dtor.
  static TraceRecorder* instance = new TraceRecorder();
  return *instance;
}

TraceRecorder::TlsState& TraceRecorder::Tls() {
  static thread_local TlsState tls;
  return tls;
}

void TraceRecorder::Configure(const Options& options) {
  ring_spans_.store(RoundUpPow2(options.ring_spans),
                    std::memory_order_relaxed);
  sample_every_.store(options.sample_every, std::memory_order_relaxed);
  enabled_.store(options.sample_every > 0 ? 1 : 0, std::memory_order_relaxed);
}

void TraceRecorder::Disable() {
  enabled_.store(0, std::memory_order_relaxed);
  sample_every_.store(0, std::memory_order_relaxed);
}

int64_t TraceRecorder::NowNs() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
             .count() -
         epoch_ns_;
}

uint64_t TraceRecorder::StartTrace() {
  if (!Enabled()) return 0;
  const uint32_t n = sample_every_.load(std::memory_order_relaxed);
  if (n == 0) return 0;
  if (arrivals_.fetch_add(1, std::memory_order_relaxed) % n != 0) return 0;
  return next_id_.fetch_add(1, std::memory_order_relaxed);
}

uint64_t TraceRecorder::StartTraceForced() {
  if (!Enabled()) return 0;
  return next_id_.fetch_add(1, std::memory_order_relaxed);
}

TraceRecorder::ThreadContext TraceRecorder::Current() {
  if (!Enabled()) return {};
  const TlsState& tls = Tls();
  return {tls.trace_id, tls.parent_span};
}

TraceRecorder::ThreadRing* TraceRecorder::LocalRing() {
  TlsState& tls = Tls();
  if (tls.ring == nullptr) {
    std::lock_guard<std::mutex> lock(rings_mutex_);
    tls.ring = std::make_shared<ThreadRing>(
        ring_spans_.load(std::memory_order_relaxed), next_thread_index_++);
    rings_.push_back(tls.ring);
  }
  return tls.ring.get();
}

void TraceRecorder::Push(const TraceSpanRecord& record) {
  ThreadRing* ring = LocalRing();
  const uint64_t h = ring->head.load(std::memory_order_relaxed);
  Slot& slot = ring->slots[h & ring->mask];
  const uint64_t seq = slot.seq.load(std::memory_order_relaxed);
  // Seqlock write: odd seq published before the fields (release fence),
  // even seq after them (release store) — a reader whose before/after seq
  // reads agree on an even value saw one consistent record.
  slot.seq.store(seq + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  slot.trace_id.store(record.trace_id, std::memory_order_relaxed);
  slot.span_id.store(record.span_id, std::memory_order_relaxed);
  slot.parent_id.store(record.parent_id, std::memory_order_relaxed);
  slot.name.store(record.name, std::memory_order_relaxed);
  slot.t0_ns.store(record.t0_ns, std::memory_order_relaxed);
  slot.t1_ns.store(record.t1_ns, std::memory_order_relaxed);
  slot.arg_name.store(record.arg_name, std::memory_order_relaxed);
  slot.arg_value.store(record.arg_value, std::memory_order_relaxed);
  slot.seq.store(seq + 2, std::memory_order_release);
  ring->head.store(h + 1, std::memory_order_release);
}

void TraceRecorder::RecordManualSpan(const char* name, uint64_t trace_id,
                                     uint64_t span_id, uint64_t parent_id,
                                     int64_t t0_ns, int64_t t1_ns,
                                     const char* arg_name,
                                     uint64_t arg_value) {
  if (!Enabled() || trace_id == 0) return;
  TraceSpanRecord record;
  record.trace_id = trace_id;
  record.span_id = span_id != 0 ? span_id : NewSpanId();
  record.parent_id = parent_id;
  record.name = name;
  record.t0_ns = t0_ns;
  record.t1_ns = t1_ns;
  record.arg_name = arg_name;
  record.arg_value = arg_value;
  Push(record);
  RecordPhase(name, static_cast<double>(t1_ns - t0_ns) * 1e-9);
}

void TraceRecorder::SnapshotInto(std::vector<TraceSpanRecord>* out,
                                 uint64_t trace_filter, bool filter) const {
  std::vector<std::shared_ptr<ThreadRing>> rings;
  {
    std::lock_guard<std::mutex> lock(rings_mutex_);
    rings = rings_;
  }
  for (const auto& ring : rings) {
    const size_t capacity = ring->mask + 1;
    for (size_t i = 0; i < capacity; ++i) {
      const Slot& slot = ring->slots[i];
      for (int attempt = 0; attempt < 3; ++attempt) {
        const uint64_t s1 = slot.seq.load(std::memory_order_acquire);
        if (s1 == 0) break;           // never written
        if ((s1 & 1) != 0) continue;  // mid-write, retry
        TraceSpanRecord record;
        record.trace_id = slot.trace_id.load(std::memory_order_relaxed);
        record.span_id = slot.span_id.load(std::memory_order_relaxed);
        record.parent_id = slot.parent_id.load(std::memory_order_relaxed);
        record.name = slot.name.load(std::memory_order_relaxed);
        record.t0_ns = slot.t0_ns.load(std::memory_order_relaxed);
        record.t1_ns = slot.t1_ns.load(std::memory_order_relaxed);
        record.arg_name = slot.arg_name.load(std::memory_order_relaxed);
        record.arg_value = slot.arg_value.load(std::memory_order_relaxed);
        record.thread_index = ring->thread_index;
        std::atomic_thread_fence(std::memory_order_acquire);
        if (slot.seq.load(std::memory_order_relaxed) != s1) continue;
        if (record.name == nullptr) break;  // reset mid-flight
        if (!filter || record.trace_id == trace_filter) {
          out->push_back(record);
        }
        break;
      }
    }
  }
}

std::vector<TraceSpanRecord> TraceRecorder::Snapshot() const {
  std::vector<TraceSpanRecord> out;
  SnapshotInto(&out, 0, /*filter=*/false);
  return out;
}

std::vector<TraceSpanRecord> TraceRecorder::SnapshotTrace(
    uint64_t trace_id) const {
  std::vector<TraceSpanRecord> out;
  SnapshotInto(&out, trace_id, /*filter=*/true);
  return out;
}

// -------------------------------------------------------------- phase hists

const std::vector<double>& TraceRecorder::PhaseBucketBounds() {
  static const std::vector<double>* bounds = [] {
    auto* b = new std::vector<double>();
    for (double v = 1e-6; v < 300.0; v *= 4.0) b->push_back(v);
    assert(b->size() + 1 <= PhaseHist::kBucketSlots);
    return b;
  }();
  return *bounds;
}

void TraceRecorder::RecordPhase(const char* name, double seconds) {
  const size_t n = num_phases_.load(std::memory_order_acquire);
  PhaseHist* hist = nullptr;
  for (size_t i = 0; i < n; ++i) {
    const char* have = phases_[i].name.load(std::memory_order_relaxed);
    if (have == name || (have != nullptr && std::strcmp(have, name) == 0)) {
      hist = &phases_[i];
      break;
    }
  }
  if (hist == nullptr) {
    std::lock_guard<std::mutex> lock(phases_mutex_);
    const size_t m = num_phases_.load(std::memory_order_relaxed);
    for (size_t i = 0; i < m; ++i) {
      const char* have = phases_[i].name.load(std::memory_order_relaxed);
      if (have == name || (have != nullptr && std::strcmp(have, name) == 0)) {
        hist = &phases_[i];
        break;
      }
    }
    if (hist == nullptr) {
      if (m >= kMaxPhases) return;  // table full: drop, never block
      phases_[m].name.store(name, std::memory_order_relaxed);
      num_phases_.store(m + 1, std::memory_order_release);
      hist = &phases_[m];
    }
  }
  const std::vector<double>& bounds = PhaseBucketBounds();
  const size_t idx =
      std::upper_bound(bounds.begin(), bounds.end(), seconds) - bounds.begin();
  const size_t bucket =
      (idx > 0 && bounds[idx - 1] == seconds) ? idx - 1 : idx;
  hist->buckets[bucket].fetch_add(1, std::memory_order_relaxed);
  hist->count.fetch_add(1, std::memory_order_relaxed);
  double current = hist->sum.load(std::memory_order_relaxed);
  while (!hist->sum.compare_exchange_weak(current, current + seconds,
                                          std::memory_order_relaxed)) {
  }
}

std::vector<TraceRecorder::PhaseSnapshot> TraceRecorder::PhaseHistograms()
    const {
  const size_t n = num_phases_.load(std::memory_order_acquire);
  const size_t buckets = PhaseBucketBounds().size() + 1;
  std::vector<PhaseSnapshot> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    PhaseSnapshot snap;
    snap.name = phases_[i].name.load(std::memory_order_relaxed);
    if (snap.name == nullptr) continue;
    snap.buckets.resize(buckets);
    for (size_t b = 0; b < buckets; ++b) {
      snap.buckets[b] = phases_[i].buckets[b].load(std::memory_order_relaxed);
    }
    snap.count = phases_[i].count.load(std::memory_order_relaxed);
    snap.sum = phases_[i].sum.load(std::memory_order_relaxed);
    out.push_back(std::move(snap));
  }
  return out;
}

void TraceRecorder::ResetForTest() {
  {
    std::lock_guard<std::mutex> lock(rings_mutex_);
    for (const auto& ring : rings_) {
      const size_t capacity = ring->mask + 1;
      for (size_t i = 0; i < capacity; ++i) {
        ring->slots[i].name.store(nullptr, std::memory_order_relaxed);
        ring->slots[i].seq.store(0, std::memory_order_relaxed);
      }
      ring->head.store(0, std::memory_order_relaxed);
    }
  }
  {
    std::lock_guard<std::mutex> lock(phases_mutex_);
    const size_t n = num_phases_.load(std::memory_order_relaxed);
    for (size_t i = 0; i < n; ++i) {
      phases_[i].name.store(nullptr, std::memory_order_relaxed);
      for (auto& b : phases_[i].buckets) b.store(0, std::memory_order_relaxed);
      phases_[i].count.store(0, std::memory_order_relaxed);
      phases_[i].sum.store(0.0, std::memory_order_relaxed);
    }
    num_phases_.store(0, std::memory_order_relaxed);
  }
  arrivals_.store(0, std::memory_order_relaxed);
  next_id_.store(1, std::memory_order_relaxed);
}

// ----------------------------------------------------------------- exports

namespace {

void AppendJsonEscaped(std::string* out, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      *out += buf;
    } else {
      out->push_back(c);
    }
  }
}

std::string FormatMicros(int64_t ns) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(ns) * 1e-3);
  return buf;
}

}  // namespace

std::string TraceRecorder::RenderChromeTraceJson() const {
  std::vector<TraceSpanRecord> spans = Snapshot();
  std::sort(spans.begin(), spans.end(),
            [](const TraceSpanRecord& a, const TraceSpanRecord& b) {
              if (a.trace_id != b.trace_id) return a.trace_id < b.trace_id;
              if (a.t0_ns != b.t0_ns) return a.t0_ns < b.t0_ns;
              return a.span_id < b.span_id;
            });
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  uint64_t last_trace = 0;
  for (const TraceSpanRecord& span : spans) {
    if (span.trace_id != last_trace) {
      // One Perfetto "process" track per sampled query.
      last_trace = span.trace_id;
      if (!first) out += ",";
      first = false;
      out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" +
             std::to_string(span.trace_id) +
             ",\"tid\":0,\"args\":{\"name\":\"trace " +
             std::to_string(span.trace_id) + "\"}}";
    }
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"";
    AppendJsonEscaped(&out, span.name);
    out += "\",\"cat\":\"koios\",\"ph\":\"X\",\"ts\":" +
           FormatMicros(span.t0_ns) +
           ",\"dur\":" + FormatMicros(span.t1_ns - span.t0_ns) +
           ",\"pid\":" + std::to_string(span.trace_id) +
           ",\"tid\":" + std::to_string(span.thread_index) +
           ",\"args\":{\"span_id\":" + std::to_string(span.span_id) +
           ",\"parent_id\":" + std::to_string(span.parent_id);
    if (span.arg_name != nullptr) {
      out += ",\"";
      AppendJsonEscaped(&out, span.arg_name);
      out += "\":" + std::to_string(span.arg_value);
    }
    out += "}}";
  }
  out += "]}";
  return out;
}

std::string TraceRecorder::RenderSpanTree(uint64_t trace_id) const {
  std::vector<TraceSpanRecord> spans = SnapshotTrace(trace_id);
  std::sort(spans.begin(), spans.end(),
            [](const TraceSpanRecord& a, const TraceSpanRecord& b) {
              if (a.t0_ns != b.t0_ns) return a.t0_ns < b.t0_ns;
              return a.span_id < b.span_id;
            });
  std::string out = "trace " + std::to_string(trace_id) + " (" +
                    std::to_string(spans.size()) + " spans)\n";
  if (spans.empty()) {
    out += "  (no spans recorded — query not sampled or ring overwritten)\n";
    return out;
  }
  std::vector<bool> emitted(spans.size(), false);
  // Roots: parent absent from this trace's recorded spans.
  auto has_parent = [&](const TraceSpanRecord& s) {
    if (s.parent_id == 0) return false;
    for (const TraceSpanRecord& other : spans) {
      if (other.span_id == s.parent_id) return true;
    }
    return false;
  };
  // Recursive emit, depth-first in start-time order.
  std::function<void(uint64_t, int)> emit_children = [&](uint64_t parent,
                                                         int depth) {
    for (size_t i = 0; i < spans.size(); ++i) {
      const TraceSpanRecord& s = spans[i];
      if (emitted[i]) continue;
      const bool is_child =
          parent == 0 ? !has_parent(s) : s.parent_id == parent;
      if (!is_child) continue;
      emitted[i] = true;
      char line[160];
      std::snprintf(line, sizeof(line), "  %*s%-28s %10.3f ms", depth * 2, "",
                    s.name, static_cast<double>(s.t1_ns - s.t0_ns) * 1e-6);
      out += line;
      if (s.arg_name != nullptr) {
        out += "  [";
        out += s.arg_name;
        out += "=" + std::to_string(s.arg_value) + "]";
      }
      out += "\n";
      emit_children(s.span_id, depth + 1);
    }
  };
  emit_children(0, 0);
  return out;
}

// ------------------------------------------------------- TraceSpan / Adopt

void TraceSpan::Begin(const char* name) {
  TraceRecorder::TlsState& tls = TraceRecorder::Tls();
  if (tls.trace_id == 0) return;  // enabled, but this query is unsampled
  TraceRecorder& rec = TraceRecorder::Instance();
  name_ = name;
  arg_name_ = nullptr;
  arg_value_ = 0;
  trace_id_ = tls.trace_id;
  span_id_ = rec.NewSpanId();
  saved_parent_ = tls.parent_span;
  tls.parent_span = span_id_;
  t0_ns_ = rec.NowNs();
  active_ = true;
}

void TraceSpan::End() {
  TraceRecorder& rec = TraceRecorder::Instance();
  const int64_t t1 = rec.NowNs();
  TraceRecorder::TlsState& tls = TraceRecorder::Tls();
  tls.parent_span = saved_parent_;
  TraceSpanRecord record;
  record.trace_id = trace_id_;
  record.span_id = span_id_;
  record.parent_id = saved_parent_;
  record.name = name_;
  record.t0_ns = t0_ns_;
  record.t1_ns = t1;
  record.arg_name = arg_name_;
  record.arg_value = arg_value_;
  rec.Push(record);
  rec.RecordPhase(name_, static_cast<double>(t1 - t0_ns_) * 1e-9);
  active_ = false;
}

TraceAdopt::TraceAdopt(uint64_t trace_id, uint64_t parent_span) {
  if (!TraceRecorder::Enabled() || trace_id == 0) return;
  TraceRecorder::TlsState& tls = TraceRecorder::Tls();
  saved_trace_ = tls.trace_id;
  saved_parent_ = tls.parent_span;
  tls.trace_id = trace_id;
  tls.parent_span = parent_span;
  active_ = true;
}

TraceAdopt::~TraceAdopt() {
  if (!active_) return;
  TraceRecorder::TlsState& tls = TraceRecorder::Tls();
  tls.trace_id = saved_trace_;
  tls.parent_span = saved_parent_;
}

}  // namespace koios::util
