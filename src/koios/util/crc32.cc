#include "koios/util/crc32.h"

#include <array>

namespace koios::util {

namespace {

// 256-entry lookup table for the reflected polynomial, built once.
std::array<uint32_t, 256> BuildTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) ? 0xEDB88320u : 0u);
    }
    table[i] = crc;
  }
  return table;
}

}  // namespace

uint32_t Crc32(const void* data, size_t size, uint32_t seed) {
  static const std::array<uint32_t, 256> kTable = BuildTable();
  const auto* bytes = static_cast<const unsigned char*>(data);
  uint32_t crc = ~seed;
  for (size_t i = 0; i < size; ++i) {
    crc = (crc >> 8) ^ kTable[(crc ^ bytes[i]) & 0xFFu];
  }
  return ~crc;
}

}  // namespace koios::util
