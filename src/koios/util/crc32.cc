#include "koios/util/crc32.h"

#include <array>
#include <cstring>

namespace koios::util {

namespace {

// Slicing-by-8: eight 256-entry tables so the hot loop folds 8 input
// bytes per iteration instead of one. Same polynomial, same checksum as
// the classic byte-at-a-time loop — only the throughput changes (the v4
// mmap load path checksums multi-MB metadata sections on open, and the
// eager verify mode checksums whole bulk arenas).
std::array<std::array<uint32_t, 256>, 8> BuildTables() {
  std::array<std::array<uint32_t, 256>, 8> tables{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) ? 0xEDB88320u : 0u);
    }
    tables[0][i] = crc;
  }
  for (size_t k = 1; k < 8; ++k) {
    for (uint32_t i = 0; i < 256; ++i) {
      const uint32_t prev = tables[k - 1][i];
      tables[k][i] = (prev >> 8) ^ tables[0][prev & 0xFFu];
    }
  }
  return tables;
}

}  // namespace

uint32_t Crc32(const void* data, size_t size, uint32_t seed) {
  static const std::array<std::array<uint32_t, 256>, 8> kTables =
      BuildTables();
  const auto* bytes = static_cast<const unsigned char*>(data);
  uint32_t crc = ~seed;
  // 8 bytes per step; memcpy keeps the loads alignment-agnostic and the
  // fold below is byte-order explicit, so the checksum stays identical
  // on any host.
  while (size >= 8) {
    uint32_t lo;
    uint32_t hi;
    std::memcpy(&lo, bytes, 4);
    std::memcpy(&hi, bytes + 4, 4);
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_BIG_ENDIAN__
    lo = __builtin_bswap32(lo);
    hi = __builtin_bswap32(hi);
#endif
    lo ^= crc;
    crc = kTables[7][lo & 0xFFu] ^ kTables[6][(lo >> 8) & 0xFFu] ^
          kTables[5][(lo >> 16) & 0xFFu] ^ kTables[4][lo >> 24] ^
          kTables[3][hi & 0xFFu] ^ kTables[2][(hi >> 8) & 0xFFu] ^
          kTables[1][(hi >> 16) & 0xFFu] ^ kTables[0][hi >> 24];
    bytes += 8;
    size -= 8;
  }
  for (size_t i = 0; i < size; ++i) {
    crc = (crc >> 8) ^ kTables[0][(crc ^ bytes[i]) & 0xFFu];
  }
  return ~crc;
}

}  // namespace koios::util
