// MetricRegistry — the first-class metrics vocabulary of the serving
// stack: named counters, gauges and histograms behind one registry with a
// Prometheus-style text exposition (rendered by the daemon's /metrics
// endpoint and scraped by the smoke/chaos harnesses).
//
// Design:
//  * Registration is idempotent and returns a STABLE pointer — a metric,
//    once created, lives as long as the registry, so hot paths hold the
//    raw Counter*/Gauge* and never touch the registry mutex again. All
//    mutation methods are lock-free atomics.
//  * Pull model for pre-existing instrumentation: subsystems that already
//    keep their own counters (EngineCounters, CursorCacheStats, the
//    LatencyRecorder percentiles) register a collection CALLBACK instead
//    of double-counting on the hot path; callbacks run at render time and
//    refresh gauges from the authoritative source.
//  * Histograms use fixed exponential bucket bounds chosen at registration
//    (upper-bound inclusive, +Inf implicit), each bucket a relaxed atomic —
//    cheap enough to record every request's latency on the network thread.
//  * Labeled series register under a full name of the form
//    `base{key="value"}` (build one safely with LabeledMetricName, which
//    escapes the value). The renderer groups every series of a base name
//    under one # HELP/# TYPE block and merges histogram `le` labels into
//    the series' own label set, so `koios_phase_seconds{phase="..."}` and
//    dialect-split request histograms are first-class.
//
// Thread-safety: everything is safe to call concurrently. Collection
// callbacks run OUTSIDE the registry mutex (serialized against each other
// by their own mutex), so a callback may register new labeled series —
// that is how dynamically discovered trace phases appear in /metrics.
#ifndef KOIOS_UTIL_METRIC_REGISTRY_H_
#define KOIOS_UTIL_METRIC_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace koios::util {

/// Monotone counter. Add() with a negative value is a caller bug and is
/// ignored (a counter never goes down).
class Counter {
 public:
  void Increment() { value_.fetch_add(1, std::memory_order_relaxed); }
  void Add(uint64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

  /// For collection callbacks that MIRROR an authoritative monotone source
  /// (e.g. EngineCounters) instead of counting on the hot path. The source
  /// being monotone is what keeps the exposed counter monotone; do not use
  /// this for values that can go down (that is a Gauge).
  void Set(uint64_t value) { value_.store(value, std::memory_order_relaxed); }

 private:
  friend class MetricRegistry;
  explicit Counter(std::string name, std::string help)
      : name_(std::move(name)), help_(std::move(help)) {}
  std::string name_, help_;
  std::atomic<uint64_t> value_{0};
};

/// Point-in-time value (doubles cover both integral and ratio metrics).
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  void Add(double delta) {
    double current = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(current, current + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricRegistry;
  explicit Gauge(std::string name, std::string help)
      : name_(std::move(name)), help_(std::move(help)) {}
  std::string name_, help_;
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: bounds are upper-bound inclusive and strictly
/// increasing; an implicit +Inf bucket catches the rest. Records are
/// lock-free (one relaxed fetch_add per bucket + sum/count).
class Histogram {
 public:
  void Observe(double value);
  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  double Sum() const { return sum_.load(std::memory_order_relaxed); }
  const std::vector<double>& bounds() const { return bounds_; }
  /// Cumulative count of observations <= bounds()[i].
  uint64_t CumulativeCount(size_t i) const;

  /// For collection callbacks that MIRROR an authoritative histogram
  /// source (e.g. the trace recorder's per-phase histograms): replaces the
  /// per-bucket counts (bounds().size() + 1 entries, +Inf last) and the
  /// sum; the count becomes the bucket total. The source being monotone
  /// keeps the exposed histogram monotone. Extra entries are ignored,
  /// missing ones leave old values in place.
  void SetSnapshot(const std::vector<uint64_t>& bucket_counts, double sum);

 private:
  friend class MetricRegistry;
  Histogram(std::string name, std::string help, std::vector<double> bounds);
  std::string name_, help_;
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;  // bounds_.size() + 1
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Default latency bucket bounds (seconds): 100us .. ~100s, x2 steps.
std::vector<double> ExponentialLatencyBuckets();

/// `base{key="value"}` with Prometheus label-value escaping (backslash,
/// double-quote, newline). Use this to build labeled series names instead
/// of concatenating by hand.
std::string LabeledMetricName(std::string_view base, std::string_view key,
                              std::string_view value);

class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  /// Idempotent: re-registering an existing name returns the same metric
  /// (the help string of the first registration wins). Registering the
  /// same name as a DIFFERENT metric kind returns nullptr — a programming
  /// error surfaced loudly instead of aliasing storage.
  Counter* RegisterCounter(std::string_view name, std::string_view help);
  Gauge* RegisterGauge(std::string_view name, std::string_view help);
  Histogram* RegisterHistogram(std::string_view name, std::string_view help,
                               std::vector<double> bounds);

  /// Lookup without creating; nullptr when absent or a different kind.
  Counter* FindCounter(std::string_view name) const;
  Gauge* FindGauge(std::string_view name) const;
  Histogram* FindHistogram(std::string_view name) const;

  /// Registers a callback run at the START of every RenderText — the seam
  /// that migrates pre-existing instrumentation (engine counters, cursor
  /// cache stats, latency percentiles) behind the registry without
  /// double-counting: the callback reads the authoritative source and
  /// refreshes the registered gauges/counters. Callbacks run outside the
  /// registry mutex, so they may register metrics (new labeled series).
  void AddCollectionCallback(std::function<void()> callback);

  /// Prometheus-style text exposition:
  ///   # HELP name help text
  ///   # TYPE name counter|gauge|histogram
  ///   name value
  /// Histograms render name_bucket{le="..."} lines plus _sum/_count.
  /// Series sharing a base name (labeled variants) are grouped under one
  /// HELP/TYPE block at the base's first registration; otherwise metrics
  /// render in registration order (stable scrapes diff cleanly). Help
  /// text is escaped per the Prometheus text format.
  std::string RenderText() const;

 private:
  struct Entry {
    enum Kind { kCounter, kGauge, kHistogram } kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  const Entry* Find(std::string_view name) const;

  mutable std::mutex mutex_;
  // Pointer stability: entries are appended, never removed or reallocated
  // away (unique_ptr payloads), so returned metric pointers live as long
  // as the registry.
  std::vector<std::pair<std::string, Entry>> metrics_;
  // Callbacks live under their own mutex so running them (outside mutex_)
  // can re-enter Register* without deadlocking.
  mutable std::mutex callbacks_mutex_;
  std::vector<std::function<void()>> callbacks_;
};

}  // namespace koios::util

#endif  // KOIOS_UTIL_METRIC_REGISTRY_H_
