// Binary (de)serialization of the repository artifacts a deployment wants
// to build once and reuse across queries: the dictionary, the set
// collection, and the embedding store. Inverted indexes and neighbor
// indexes are rebuilt from these on load (they are construction-cheap
// relative to corpus preparation).
//
// Format: little-endian, magic + version header per artifact. Not
// portable across endianness (like most database file formats, a machine
// family is assumed).
#ifndef KOIOS_IO_SERIALIZATION_H_
#define KOIOS_IO_SERIALIZATION_H_

#include <iosfwd>
#include <string>

#include "koios/embedding/embedding_store.h"
#include "koios/index/set_collection.h"
#include "koios/text/dictionary.h"
#include "koios/util/status.h"

namespace koios::io {

// ---- Dictionary ------------------------------------------------------------
util::Status SaveDictionary(const text::Dictionary& dict, std::ostream& out);
util::StatusOr<text::Dictionary> LoadDictionary(std::istream& in);

// ---- SetCollection ----------------------------------------------------------
util::Status SaveSetCollection(const index::SetCollection& sets,
                               std::ostream& out);
util::StatusOr<index::SetCollection> LoadSetCollection(std::istream& in);

// ---- EmbeddingStore ----------------------------------------------------------
/// `token_bound`: exclusive upper bound of token ids to scan (e.g.
/// dictionary size). A Finalize()d store's int8 tier survives the round
/// trip: the file records the flag and the loader re-finalizes (the codes
/// are deterministic in the float rows), so `quantized()` and the
/// Precision::kInt8 kernels behave identically on the loaded store.
util::Status SaveEmbeddingStore(const embedding::EmbeddingStore& store,
                                TokenId token_bound, std::ostream& out);
util::StatusOr<embedding::EmbeddingStore> LoadEmbeddingStore(std::istream& in);

// ---- file-path conveniences ---------------------------------------------------
util::Status SaveRepository(const text::Dictionary& dict,
                            const index::SetCollection& sets,
                            const embedding::EmbeddingStore* store,  // nullable
                            const std::string& path);

struct LoadedRepository {
  text::Dictionary dict;
  index::SetCollection sets;
  /// Dim 0 and empty when the file carried no embeddings.
  embedding::EmbeddingStore store{0};
  bool has_embeddings = false;
};

util::StatusOr<LoadedRepository> LoadRepository(const std::string& path);

}  // namespace koios::io

#endif  // KOIOS_IO_SERIALIZATION_H_
