// Binary (de)serialization of the repository artifacts a deployment wants
// to build once and reuse across queries: the dictionary, the set
// collection, and the embedding store. Inverted indexes and neighbor
// indexes are rebuilt from these on load (they are construction-cheap
// relative to corpus preparation).
//
// Format: little-endian, magic + version header per artifact. Not
// portable across endianness (like most database file formats, a machine
// family is assumed).
//
// Repository container format (the file SaveRepository writes):
//  * v3 (current) — [magic][version=3][has_embeddings u8] followed by one
//    FRAME per artifact section: [payload length u64][CRC-32 u32][payload]
//    where the payload is the artifact's own stream format. The loader
//    verifies the frame length against the bytes actually remaining in
//    the file BEFORE allocating, verifies the checksum BEFORE parsing,
//    requires end-of-file after the last section, and cross-checks the
//    artifacts against each other (set token ids and embedding row ids
//    must fall inside the dictionary) — so truncated, bit-flipped, or
//    mixed-generation files come back as a clean error Status, never as
//    UB or a half-built repository.
//  * v1 (legacy) — the same sections concatenated with no framing;
//    still loadable (with allocation bounded by the remaining file size,
//    but without checksum protection). The version number jumps 1 -> 3 so
//    that "3" unambiguously means CRC-framed repo-wide: the embedding
//    section's own v2 (quantized-tier flag) keeps its number inside the
//    frame, and v1/v2 embedding payloads load in either container.
//
// Durability: SaveRepository writes to "<path>.tmp" and renames into
// place, so a crash (or injected fault) mid-save never leaves a
// half-written repository where the next load expects a valid one.
#ifndef KOIOS_IO_SERIALIZATION_H_
#define KOIOS_IO_SERIALIZATION_H_

#include <cstdint>
#include <iosfwd>
#include <string>

#include "koios/embedding/embedding_store.h"
#include "koios/index/set_collection.h"
#include "koios/text/dictionary.h"
#include "koios/util/status.h"

namespace koios::io {

// ---- Dictionary ------------------------------------------------------------
util::Status SaveDictionary(const text::Dictionary& dict, std::ostream& out);
util::StatusOr<text::Dictionary> LoadDictionary(std::istream& in);

// ---- SetCollection ----------------------------------------------------------
util::Status SaveSetCollection(const index::SetCollection& sets,
                               std::ostream& out);
util::StatusOr<index::SetCollection> LoadSetCollection(std::istream& in);

// ---- EmbeddingStore ----------------------------------------------------------
/// `token_bound`: exclusive upper bound of token ids to scan (e.g.
/// dictionary size). A Finalize()d store's int8 tier survives the round
/// trip: the file records the flag and the loader re-finalizes (the codes
/// are deterministic in the float rows), so `quantized()` and the
/// Precision::kInt8 kernels behave identically on the loaded store.
util::Status SaveEmbeddingStore(const embedding::EmbeddingStore& store,
                                TokenId token_bound, std::ostream& out);
/// `token_id_bound`: exclusive upper bound a stored row's token id must
/// fall under (the repository loader passes the dictionary size, which is
/// the cross-artifact consistency check); the default accepts any id.
/// Duplicate rows and rows beyond the bound are rejected as corrupt.
util::StatusOr<embedding::EmbeddingStore> LoadEmbeddingStore(
    std::istream& in, uint64_t token_id_bound = UINT64_MAX);

// ---- file-path conveniences ---------------------------------------------------
/// Writes the v3 CRC-framed container atomically: the bytes go to
/// "<path>.tmp" and are renamed over `path` only once complete, so a
/// failure mid-save leaves any pre-existing repository at `path` intact
/// (and no .tmp debris behind).
util::Status SaveRepository(const text::Dictionary& dict,
                            const index::SetCollection& sets,
                            const embedding::EmbeddingStore* store,  // nullable
                            const std::string& path);

/// Writes the UNFRAMED v1 container (no checksums, no atomic rename).
/// Kept as the compatibility writer so tests can produce legacy files;
/// new code should always use SaveRepository.
util::Status SaveRepositoryLegacyV1(const text::Dictionary& dict,
                                    const index::SetCollection& sets,
                                    const embedding::EmbeddingStore* store,
                                    const std::string& path);

struct LoadedRepository {
  text::Dictionary dict;
  index::SetCollection sets;
  /// Dim 0 and empty when the file carried no embeddings.
  embedding::EmbeddingStore store{0};
  bool has_embeddings = false;
};

/// Loads a v1 or v3 repository container. Every corruption class the
/// format can express — truncation anywhere, bit flips (v3: caught by the
/// section CRCs), oversized counts, trailing bytes, cross-artifact
/// mismatches — returns an error Status; a successful load is a fully
/// consistent repository.
util::StatusOr<LoadedRepository> LoadRepository(const std::string& path);

}  // namespace koios::io

#endif  // KOIOS_IO_SERIALIZATION_H_
