// RAII read-only memory mapping of a repository file.
//
// The v4 zero-copy load path maps the whole file once and hands out
// borrowed spans; this wrapper owns the fd + mapping lifetime and nothing
// else. Establishment is marked with the "io.mmap" failpoint so the
// chaos tests can force map failures without a real I/O error.
//
// SIGBUS policy: a file that shrinks underneath an established mapping
// would fault on access. MmapRepositoryView defends against the common
// case — a truncated file — by validating the exact file size (as seen at
// open) against the section table before any section is touched, so a
// short file is rejected with a clean Status instead of being mapped and
// dereferenced past EOF. Concurrent in-place truncation by another
// process is outside the failure model (the repository writer publishes
// via atomic rename, never in-place).
#ifndef KOIOS_IO_MMAP_FILE_H_
#define KOIOS_IO_MMAP_FILE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>

#include "koios/util/status.h"

namespace koios::io {

/// A read-only, private, whole-file memory mapping. Movable, not copyable.
/// An empty file maps to a valid object with size() == 0 and data() ==
/// nullptr (mmap of length 0 is undefined, so it is never attempted).
class MmapFile {
 public:
  MmapFile() = default;
  ~MmapFile() { Reset(); }

  MmapFile(MmapFile&& other) noexcept
      : data_(std::exchange(other.data_, nullptr)),
        size_(std::exchange(other.size_, 0)) {}
  MmapFile& operator=(MmapFile&& other) noexcept {
    if (this != &other) {
      Reset();
      data_ = std::exchange(other.data_, nullptr);
      size_ = std::exchange(other.size_, 0);
    }
    return *this;
  }
  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  /// Maps `path` read-only. The fd is closed before returning (the
  /// mapping keeps the file alive). Fails with NotFound for a missing
  /// file and Internal for map errors; hits the "io.mmap" failpoint.
  static util::StatusOr<MmapFile> Open(const std::string& path);

  const uint8_t* data() const { return static_cast<const uint8_t*>(data_); }
  size_t size() const { return size_; }

 private:
  void Reset();

  void* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace koios::io

#endif  // KOIOS_IO_MMAP_FILE_H_
