#include "koios/io/repository_v4.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <unordered_set>

#include "koios/util/crc32.h"
#include "koios/util/fault_injector.h"

namespace koios::io {
namespace {

constexpr uint32_t kMagic = 0x4B52504Fu;  // "OPRK", shared with v1/v3

uint64_t AlignUp(uint64_t n) {
  return (n + kV4Alignment - 1) & ~static_cast<uint64_t>(kV4Alignment - 1);
}

uint32_t HeaderCrc(const V4Header& header,
                   std::span<const SectionEntry> table) {
  V4Header copy = header;
  copy.header_crc = 0;
  uint32_t crc = util::Crc32(&copy, sizeof(copy));
  if (!table.empty()) {
    crc = util::Crc32(table.data(), table.size() * sizeof(SectionEntry), crc);
  }
  return crc;
}

/// Bytes of one section to be written, plus its computed metadata.
struct PendingSection {
  uint32_t kind;
  const void* data;
  uint64_t length;
};

}  // namespace

// ---- writer -----------------------------------------------------------------

util::Status SaveRepositoryV4(const text::Dictionary& dict,
                              const index::SetCollection& sets,
                              const embedding::EmbeddingStore* store,
                              const std::string& path) {
  // Materialize the arenas that are not already stored contiguously.
  // Dictionary: offsets + byte arena.
  std::vector<uint64_t> dict_offsets;
  std::string dict_bytes;
  dict_offsets.reserve(dict.size() + 1);
  dict_offsets.push_back(0);
  for (TokenId t = 0; t < dict.size(); ++t) {
    const std::string_view token = dict.TokenOf(t);
    dict_bytes.append(token);
    dict_offsets.push_back(dict_bytes.size());
  }

  // Vocabulary: sorted distinct token ids across all sets, precomputed so
  // the mmap load path skips the O(corpus) scan.
  std::vector<TokenId> vocabulary;
  {
    const auto tokens = sets.RawTokens();
    std::unordered_set<TokenId> distinct(tokens.begin(), tokens.end());
    vocabulary.assign(distinct.begin(), distinct.end());
    std::sort(vocabulary.begin(), vocabulary.end());
  }

  // Embeddings: canonicalize rows to token-ascending order — the order a
  // v3 load produces (it re-Adds token by token) — so scores and tie
  // orderings downstream are bit-identical across the two load paths.
  std::vector<uint32_t> row_of;
  std::vector<float> rows;
  std::vector<int8_t> qcodes;
  std::vector<float> qscales, qoffsets;
  std::vector<int32_t> qsums;
  const bool has_embeddings = store != nullptr;
  const bool has_quantized = has_embeddings && store->quantized();
  if (has_embeddings) {
    const auto table = store->RowTable();
    const auto data = store->RowData();
    const size_t dim = store->dim();
    row_of.assign(table.begin(), table.end());
    rows.reserve(data.size());
    const auto old_codes = store->QuantizedCodes();
    const auto old_scales = store->QuantizedScales();
    const auto old_offsets = store->QuantizedOffsets();
    const auto old_sums = store->QuantizedSums();
    if (has_quantized) {
      qcodes.reserve(old_codes.size());
      qscales.reserve(old_scales.size());
      qoffsets.reserve(old_offsets.size());
      qsums.reserve(old_sums.size());
    }
    uint32_t next_row = 0;
    for (size_t t = 0; t < table.size(); ++t) {
      const uint32_t old_row = table[t];
      if (old_row == embedding::EmbeddingStore::kNoRow) continue;
      row_of[t] = next_row++;
      rows.insert(rows.end(), data.begin() + old_row * dim,
                  data.begin() + (old_row + 1) * dim);
      if (has_quantized) {
        qcodes.insert(qcodes.end(), old_codes.begin() + old_row * dim,
                      old_codes.begin() + (old_row + 1) * dim);
        qscales.push_back(old_scales[old_row]);
        qoffsets.push_back(old_offsets[old_row]);
        qsums.push_back(old_sums[old_row]);
      }
    }
  }

  std::vector<PendingSection> sections;
  const auto set_offsets = sets.RawOffsets();
  const auto set_tokens = sets.RawTokens();
  sections.push_back({kDictOffsets, dict_offsets.data(),
                      dict_offsets.size() * sizeof(uint64_t)});
  sections.push_back({kDictBytes, dict_bytes.data(), dict_bytes.size()});
  sections.push_back({kSetOffsets, set_offsets.data(),
                      set_offsets.size() * sizeof(uint64_t)});
  sections.push_back(
      {kSetTokens, set_tokens.data(), set_tokens.size() * sizeof(TokenId)});
  sections.push_back({kVocabulary, vocabulary.data(),
                      vocabulary.size() * sizeof(TokenId)});
  if (has_embeddings) {
    sections.push_back(
        {kEmbedRowOf, row_of.data(), row_of.size() * sizeof(uint32_t)});
    sections.push_back({kEmbedData, rows.data(), rows.size() * sizeof(float)});
  }
  if (has_quantized) {
    sections.push_back({kQuantCodes, qcodes.data(), qcodes.size()});
    sections.push_back(
        {kQuantScales, qscales.data(), qscales.size() * sizeof(float)});
    sections.push_back(
        {kQuantOffsets, qoffsets.data(), qoffsets.size() * sizeof(float)});
    sections.push_back(
        {kQuantSums, qsums.data(), qsums.size() * sizeof(int32_t)});
  }

  V4Header header;
  header.magic = kMagic;
  header.version = 4;
  header.dict_size = dict.size();
  header.set_count = sets.size();
  header.embed_dim = has_embeddings ? store->dim() : 0;
  header.embed_rows = has_embeddings ? store->covered() : 0;
  header.token_id_bound = sets.TokenIdBound();
  header.has_embeddings = has_embeddings ? 1 : 0;
  header.has_quantized = has_quantized ? 1 : 0;
  header.section_count = static_cast<uint32_t>(sections.size());

  std::vector<SectionEntry> table(sections.size());
  uint64_t cursor =
      AlignUp(sizeof(V4Header) + table.size() * sizeof(SectionEntry));
  for (size_t i = 0; i < sections.size(); ++i) {
    table[i].offset = cursor;
    table[i].length = sections[i].length;
    table[i].kind = sections[i].kind;
    table[i].crc = util::Crc32(sections[i].data, sections[i].length);
    cursor = i + 1 < sections.size() ? AlignUp(cursor + sections[i].length)
                                     : cursor + sections[i].length;
  }
  header.header_crc = HeaderCrc(header, table);

  const std::string tmp_path = path + ".tmp";
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      return util::Status::Internal("cannot open " + tmp_path + " for write");
    }
    if (KOIOS_FAULTPOINT("io.save.write")) {
      out.close();
      std::remove(tmp_path.c_str());
      return util::Status::Internal("injected fault: io.save.write on " +
                                    tmp_path);
    }
    out.write(reinterpret_cast<const char*>(&header), sizeof(header));
    out.write(reinterpret_cast<const char*>(table.data()),
              static_cast<std::streamsize>(table.size() * sizeof(SectionEntry)));
    uint64_t written = sizeof(V4Header) + table.size() * sizeof(SectionEntry);
    static constexpr char kZeros[kV4Alignment] = {0};
    for (size_t i = 0; i < sections.size(); ++i) {
      const uint64_t pad = table[i].offset - written;
      out.write(kZeros, static_cast<std::streamsize>(pad));
      out.write(static_cast<const char*>(sections[i].data),
                static_cast<std::streamsize>(sections[i].length));
      written = table[i].offset + sections[i].length;
    }
    out.flush();
    if (!out) {
      out.close();
      std::remove(tmp_path.c_str());
      return util::Status::Internal("write failed on " + tmp_path);
    }
  }
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    std::remove(tmp_path.c_str());
    return util::Status::Internal("rename " + tmp_path + " -> " + path +
                                  " failed");
  }
  return util::Status::OK();
}

// ---- reader -----------------------------------------------------------------

util::StatusOr<std::shared_ptr<MmapRepositoryView>> MmapRepositoryView::Open(
    const std::string& path, const MmapOptions& opts) {
  auto mapped = MmapFile::Open(path);
  if (!mapped.ok()) return mapped.status();
  // shared_ptr because the lazy-CRC atomics pin the object in place, and
  // serve::Snapshot needs shared keep-alive across snapshot handoffs.
  std::shared_ptr<MmapRepositoryView> view(new MmapRepositoryView());
  view->file_ = std::move(mapped).value();
  for (auto& flag : view->crc_ok_) flag.store(0, std::memory_order_relaxed);
  view->kind_index_.fill(-1);
  auto status = view->Validate();
  if (!status.ok()) return status;
  if (opts.verify) {
    status = view->VerifyAllSections();
    if (!status.ok()) return status;
  }
  return view;
}

util::Status MmapRepositoryView::Validate() {
  if (KOIOS_FAULTPOINT("io.v4.validate")) {
    return util::Status::Internal("injected fault: io.v4.validate");
  }
  const uint8_t* base = file_.data();
  const uint64_t size = file_.size();
  if (size < sizeof(V4Header)) {
    return util::Status::InvalidArgument(
        "v4 repository truncated: file shorter than the 64-byte header");
  }
  std::memcpy(&header_, base, sizeof(header_));
  if (header_.magic != kMagic) {
    return util::Status::InvalidArgument("bad v4 repository magic");
  }
  if (header_.version != 4) {
    return util::Status::InvalidArgument(
        "unsupported v4 repository version " + std::to_string(header_.version));
  }
  if (header_.has_quantized && !header_.has_embeddings) {
    return util::Status::InvalidArgument(
        "corrupt v4 header: quantized tier without embeddings");
  }
  const size_t expected_sections = 5 + (header_.has_embeddings ? 2 : 0) +
                                   (header_.has_quantized ? 4 : 0);
  if (header_.section_count != expected_sections) {
    return util::Status::InvalidArgument(
        "corrupt v4 header: section count " +
        std::to_string(header_.section_count) + ", expected " +
        std::to_string(expected_sections));
  }
  const uint64_t table_end =
      sizeof(V4Header) + header_.section_count * sizeof(SectionEntry);
  if (size < table_end) {
    return util::Status::InvalidArgument(
        "v4 repository truncated inside the section table");
  }
  table_.resize(header_.section_count);
  std::memcpy(table_.data(), base + sizeof(V4Header),
              header_.section_count * sizeof(SectionEntry));
  if (HeaderCrc(header_, table_) != header_.header_crc) {
    return util::Status::InvalidArgument(
        "v4 repository header checksum mismatch");
  }

  // The exact kind sequence the writer emits.
  std::vector<uint32_t> expected_kinds = {kDictOffsets, kDictBytes,
                                          kSetOffsets, kSetTokens,
                                          kVocabulary};
  if (header_.has_embeddings) {
    expected_kinds.push_back(kEmbedRowOf);
    expected_kinds.push_back(kEmbedData);
  }
  if (header_.has_quantized) {
    expected_kinds.push_back(kQuantCodes);
    expected_kinds.push_back(kQuantScales);
    expected_kinds.push_back(kQuantOffsets);
    expected_kinds.push_back(kQuantSums);
  }

  uint64_t prev_end = table_end;
  for (size_t i = 0; i < table_.size(); ++i) {
    const SectionEntry& e = table_[i];
    if (e.kind != expected_kinds[i]) {
      return util::Status::InvalidArgument(
          "corrupt v4 section table: unexpected kind " +
          std::to_string(e.kind) + " at index " + std::to_string(i));
    }
    if (e.offset % kV4Alignment != 0) {
      return util::Status::InvalidArgument(
          "corrupt v4 section table: misaligned section offset");
    }
    if (e.offset < prev_end || e.offset - prev_end >= kV4Alignment) {
      return util::Status::InvalidArgument(
          "corrupt v4 section table: section extents out of order");
    }
    if (e.length > size || e.offset > size - e.length) {
      return util::Status::InvalidArgument(
          "v4 repository truncated: section extends past end of file");
    }
    // Inter-section padding must be zero — a flipped bit in a gap is
    // corruption even though no section covers it.
    for (uint64_t p = prev_end; p < e.offset; ++p) {
      if (base[p] != 0) {
        return util::Status::InvalidArgument(
            "corrupt v4 repository: nonzero padding byte");
      }
    }
    kind_index_[e.kind] = static_cast<int>(i);
    prev_end = e.offset + e.length;
  }
  if (prev_end != size) {
    return util::Status::InvalidArgument(
        "corrupt v4 repository: trailing bytes after the last section");
  }

  // Per-kind length arithmetic against the header counts. Anything that
  // fails here can never be handed out as a span.
  auto length_of = [&](SectionKind kind) -> uint64_t {
    const int idx = kind_index_[kind];
    return idx < 0 ? 0 : table_[static_cast<size_t>(idx)].length;
  };
  if (length_of(kDictOffsets) != (header_.dict_size + 1) * sizeof(uint64_t)) {
    return util::Status::InvalidArgument(
        "corrupt v4 repository: dictionary offset table length mismatch");
  }
  if (length_of(kSetOffsets) != (header_.set_count + 1) * sizeof(uint64_t)) {
    return util::Status::InvalidArgument(
        "corrupt v4 repository: set offset table length mismatch");
  }
  if (length_of(kSetTokens) % sizeof(TokenId) != 0 ||
      length_of(kVocabulary) % sizeof(TokenId) != 0) {
    return util::Status::InvalidArgument(
        "corrupt v4 repository: token arena length not element-aligned");
  }
  if (header_.has_embeddings) {
    const uint64_t matrix_bytes =
        header_.embed_rows * header_.embed_dim * sizeof(float);
    if (header_.embed_dim == 0 && header_.embed_rows != 0) {
      return util::Status::InvalidArgument(
          "corrupt v4 header: embedding rows with dimension zero");
    }
    if (length_of(kEmbedRowOf) % sizeof(uint32_t) != 0) {
      return util::Status::InvalidArgument(
          "corrupt v4 repository: row table length not element-aligned");
    }
    if (length_of(kEmbedData) != matrix_bytes) {
      return util::Status::InvalidArgument(
          "corrupt v4 repository: embedding matrix length mismatch");
    }
    if (header_.has_quantized) {
      if (length_of(kQuantCodes) != header_.embed_rows * header_.embed_dim ||
          length_of(kQuantScales) != header_.embed_rows * sizeof(float) ||
          length_of(kQuantOffsets) != header_.embed_rows * sizeof(float) ||
          length_of(kQuantSums) != header_.embed_rows * sizeof(int32_t)) {
        return util::Status::InvalidArgument(
            "corrupt v4 repository: quantized tier length mismatch");
      }
    }
  }
  return util::Status::OK();
}

util::Status MmapRepositoryView::CheckSectionCrc(size_t index) const {
  const SectionEntry& e = table_[index];
  if (crc_ok_[e.kind].load(std::memory_order_acquire) == 1) {
    return util::Status::OK();
  }
  if (KOIOS_FAULTPOINT("io.v4.validate")) {
    return util::Status::Internal("injected fault: io.v4.validate");
  }
  const uint32_t crc = util::Crc32(file_.data() + e.offset, e.length);
  if (crc != e.crc) {
    return util::Status::InvalidArgument(
        "v4 repository section " + std::to_string(e.kind) +
        " checksum mismatch");
  }
  crc_ok_[e.kind].store(1, std::memory_order_release);
  return util::Status::OK();
}

util::StatusOr<std::span<const uint8_t>> MmapRepositoryView::Section(
    SectionKind kind) const {
  const int idx = kind_index_[kind];
  if (idx < 0) {
    return util::Status::Internal("v4 section " + std::to_string(kind) +
                                  " absent");
  }
  auto status = CheckSectionCrc(static_cast<size_t>(idx));
  if (!status.ok()) return status;
  const SectionEntry& e = table_[static_cast<size_t>(idx)];
  return std::span<const uint8_t>(file_.data() + e.offset, e.length);
}

namespace {

template <typename T>
std::span<const T> AsSpan(std::span<const uint8_t> bytes) {
  // Section offsets are 64-byte aligned, so the cast is always aligned.
  return {reinterpret_cast<const T*>(bytes.data()), bytes.size() / sizeof(T)};
}

}  // namespace

util::StatusOr<text::Dictionary> MmapRepositoryView::BorrowDictionary() const {
  auto offsets = Section(kDictOffsets);
  if (!offsets.ok()) return offsets.status();
  auto bytes = Section(kDictBytes);
  if (!bytes.ok()) return bytes.status();
  return text::Dictionary::FromBorrowed(
      AsSpan<uint64_t>(offsets.value()),
      std::span<const char>(
          reinterpret_cast<const char*>(bytes.value().data()),
          bytes.value().size()));
}

util::StatusOr<index::SetCollection> MmapRepositoryView::BorrowSets() const {
  auto offsets = Section(kSetOffsets);
  if (!offsets.ok()) return offsets.status();
  // Bulk arena: extent-validated at Open(); CRC only under eager verify.
  const int tok_idx = kind_index_[kSetTokens];
  const SectionEntry& tok = table_[static_cast<size_t>(tok_idx)];
  auto sets = index::SetCollection::FromBorrowed(
      AsSpan<uint64_t>(offsets.value()),
      std::span<const TokenId>(
          reinterpret_cast<const TokenId*>(file_.data() + tok.offset),
          tok.length / sizeof(TokenId)),
      header_.token_id_bound);
  if (!sets.ok()) {
    return util::Status::InvalidArgument("corrupt v4 set sections: " +
                                         sets.status().message());
  }
  if (sets.value().size() != header_.set_count) {
    return util::Status::InvalidArgument(
        "corrupt v4 repository: set count disagrees with header");
  }
  return sets;
}

util::StatusOr<embedding::EmbeddingStore> MmapRepositoryView::BorrowEmbeddings()
    const {
  if (!has_embeddings()) {
    return util::Status::FailedPrecondition(
        "v4 repository carries no embeddings");
  }
  auto row_of = Section(kEmbedRowOf);
  if (!row_of.ok()) return row_of.status();
  // Bulk arena, extent-validated at Open().
  const SectionEntry& data = table_[static_cast<size_t>(kind_index_[kEmbedData])];
  const std::span<const float> rows(
      reinterpret_cast<const float*>(file_.data() + data.offset),
      data.length / sizeof(float));
  std::span<const int8_t> qcodes;
  std::span<const float> qscales, qoffsets;
  std::span<const int32_t> qsums;
  if (has_quantized()) {
    const SectionEntry& codes =
        table_[static_cast<size_t>(kind_index_[kQuantCodes])];
    qcodes = {reinterpret_cast<const int8_t*>(file_.data() + codes.offset),
              codes.length};
    auto scales = Section(kQuantScales);
    if (!scales.ok()) return scales.status();
    auto offsets = Section(kQuantOffsets);
    if (!offsets.ok()) return offsets.status();
    auto sums = Section(kQuantSums);
    if (!sums.ok()) return sums.status();
    qscales = AsSpan<float>(scales.value());
    qoffsets = AsSpan<float>(offsets.value());
    qsums = AsSpan<int32_t>(sums.value());
  }
  auto store = embedding::EmbeddingStore::FromBorrowed(
      header_.embed_dim, header_.embed_rows, AsSpan<uint32_t>(row_of.value()),
      rows, qcodes, qscales, qoffsets, qsums);
  if (!store.ok()) {
    return util::Status::InvalidArgument("corrupt v4 embedding sections: " +
                                         store.status().message());
  }
  return store;
}

util::StatusOr<std::span<const TokenId>> MmapRepositoryView::Vocabulary()
    const {
  auto vocab = Section(kVocabulary);
  if (!vocab.ok()) return vocab.status();
  return AsSpan<TokenId>(vocab.value());
}

util::Status MmapRepositoryView::VerifyAllSections() const {
  for (size_t i = 0; i < table_.size(); ++i) {
    auto status = CheckSectionCrc(i);
    if (!status.ok()) return status;
  }
  // Content scans over the arenas the lazy path takes on trust: set
  // tokens in dictionary bounds and sorted strictly per set, vocabulary
  // sorted/deduped/in bounds. (Borrow-time FromBorrowed validation covers
  // the offset tables and the row-table bijection.)
  const SectionEntry& so = table_[static_cast<size_t>(kind_index_[kSetOffsets])];
  const SectionEntry& st = table_[static_cast<size_t>(kind_index_[kSetTokens])];
  const auto offsets = std::span<const uint64_t>(
      reinterpret_cast<const uint64_t*>(file_.data() + so.offset),
      so.length / sizeof(uint64_t));
  const auto tokens = std::span<const TokenId>(
      reinterpret_cast<const TokenId*>(file_.data() + st.offset),
      st.length / sizeof(TokenId));
  if (offsets.empty() || offsets.front() != 0 ||
      offsets.back() != tokens.size()) {
    return util::Status::InvalidArgument(
        "corrupt v4 repository: set offsets do not span the token arena");
  }
  for (size_t s = 0; s + 1 < offsets.size(); ++s) {
    if (offsets[s] > offsets[s + 1]) {
      return util::Status::InvalidArgument(
          "corrupt v4 repository: set offsets are not monotone");
    }
    for (uint64_t i = offsets[s]; i < offsets[s + 1]; ++i) {
      if (tokens[i] >= header_.dict_size) {
        return util::Status::InvalidArgument(
            "corrupt v4 repository: set token outside the dictionary");
      }
      if (i > offsets[s] && tokens[i - 1] >= tokens[i]) {
        return util::Status::InvalidArgument(
            "corrupt v4 repository: set tokens not sorted/deduplicated");
      }
    }
  }
  auto vocab = Vocabulary();
  if (!vocab.ok()) return vocab.status();
  const auto v = vocab.value();
  for (size_t i = 0; i < v.size(); ++i) {
    if (v[i] >= header_.dict_size || (i > 0 && v[i - 1] >= v[i])) {
      return util::Status::InvalidArgument(
          "corrupt v4 repository: vocabulary section not sorted/in bounds");
    }
  }
  // Dictionary token uniqueness: the lazy path no longer checks this at
  // borrow time (the hash build is deferred to the first string Lookup,
  // which resolves duplicates first-id-wins), so the eager pass does.
  {
    auto dict = BorrowDictionary();
    if (!dict.ok()) return dict.status();
    std::unordered_set<std::string_view> seen;
    seen.reserve(dict.value().size());
    for (TokenId t = 0; t < dict.value().size(); ++t) {
      if (!seen.insert(dict.value().TokenOf(t)).second) {
        return util::Status::InvalidArgument(
            "corrupt v4 repository: duplicate token in dictionary arena");
      }
    }
  }
  return util::Status::OK();
}

// ---- version sniffing -------------------------------------------------------

util::StatusOr<uint32_t> PeekRepositoryVersion(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return util::Status::NotFound("cannot open " + path);
  uint32_t magic = 0, version = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  if (!in) {
    return util::Status::InvalidArgument("repository truncated in header: " +
                                         path);
  }
  if (magic != kMagic) {
    return util::Status::InvalidArgument("bad repository magic in " + path);
  }
  return version;
}

}  // namespace koios::io
