#include "koios/io/mmap_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "koios/util/fault_injector.h"

namespace koios::io {

util::StatusOr<MmapFile> MmapFile::Open(const std::string& path) {
  if (KOIOS_FAULTPOINT("io.mmap")) {
    return util::Status::Internal("injected fault: io.mmap on " + path);
  }
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return util::Status::NotFound("cannot open " + path + ": " +
                                  std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    return util::Status::Internal("fstat failed on " + path + ": " +
                                  std::strerror(err));
  }
  if (!S_ISREG(st.st_mode)) {
    ::close(fd);
    return util::Status::InvalidArgument(path + " is not a regular file");
  }
  MmapFile file;
  file.size_ = static_cast<size_t>(st.st_size);
  if (file.size_ > 0) {
    void* addr = ::mmap(nullptr, file.size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (addr == MAP_FAILED) {
      const int err = errno;
      ::close(fd);
      return util::Status::Internal("mmap failed on " + path + ": " +
                                    std::strerror(err));
    }
    file.data_ = addr;
  }
  ::close(fd);
  return file;
}

void MmapFile::Reset() {
  if (data_ != nullptr) {
    ::munmap(data_, size_);
    data_ = nullptr;
  }
  size_ = 0;
}

}  // namespace koios::io
