#include "koios/io/shard_slice.h"

#include <cassert>
#include <span>

namespace koios::io {

namespace {

/// Clamp: at least one shard, never more shards than sets (an empty
/// collection still gets its one — empty — shard).
size_t ClampShards(size_t set_count, size_t num_shards) {
  if (num_shards < 1) return 1;
  if (set_count == 0) return 1;
  return num_shards > set_count ? set_count : num_shards;
}

/// Shard i of n over [0, count): [i*count/n, (i+1)*count/n). Balanced to
/// within one set and exhaustive by construction.
std::pair<size_t, size_t> ShardRange(size_t count, size_t n, size_t i) {
  return {count * i / n, count * (i + 1) / n};
}

}  // namespace

std::vector<ShardSlice> SliceCollection(const index::SetCollection& full,
                                        size_t num_shards) {
  const size_t count = full.size();
  const size_t n = ClampShards(count, num_shards);
  const std::span<const uint64_t> offsets = full.RawOffsets();
  const std::span<const TokenId> tokens = full.RawTokens();

  std::vector<ShardSlice> slices(n);
  for (size_t i = 0; i < n; ++i) {
    const auto [lo, hi] = ShardRange(count, n, i);
    ShardSlice& slice = slices[i];
    slice.base = static_cast<SetId>(lo);
    slice.offsets.reserve(hi - lo + 1);
    const uint64_t rebase = offsets[lo];
    for (size_t j = lo; j <= hi; ++j) {
      slice.offsets.push_back(offsets[j] - rebase);
    }
    // The vocabulary bound stays the FULL collection's: every shard probes
    // the same replicated neighbor index, whose dense vocabulary covers
    // tokens this shard's postings may not contain.
    auto sliced = index::SetCollection::FromBorrowed(
        slice.offsets,
        tokens.subspan(static_cast<size_t>(rebase),
                       static_cast<size_t>(offsets[hi] - rebase)),
        full.TokenIdBound());
    // The spans above are carved from a collection that already validated
    // them; failure here would be a programming error, not bad input.
    assert(sliced.ok());
    slice.sets = std::move(sliced).value();
  }
  return slices;
}

std::vector<ShardPlan> PlanShards(const index::SetCollection& full,
                                  size_t num_shards) {
  const size_t count = full.size();
  const size_t n = ClampShards(count, num_shards);
  const std::span<const uint64_t> offsets = full.RawOffsets();

  std::vector<ShardPlan> plans(n);
  for (size_t i = 0; i < n; ++i) {
    const auto [lo, hi] = ShardRange(count, n, i);
    ShardPlan& plan = plans[i];
    plan.first_set = static_cast<SetId>(lo);
    plan.set_count = hi - lo;
    plan.token_count = static_cast<size_t>(offsets[hi] - offsets[lo]);
    plan.postings_bytes = plan.token_count * sizeof(TokenId);
    plan.offsets_bytes = (plan.set_count + 1) * sizeof(uint64_t);
  }
  return plans;
}

}  // namespace koios::io
