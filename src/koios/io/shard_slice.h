// Sharded views over one set collection — the partitioned half of the
// replicate-vs-partition split (ROADMAP item 4, Socrates/Aurora frame):
// the dictionary, embeddings and neighbor index are REPLICATED (every
// shard reads the same instances — with the v4 mmap format those are
// shared read-only pages), while the sets and the postings derived from
// them are PARTITIONED into contiguous SetId ranges.
//
// Contiguous ranges keep the id mapping trivial and the merge
// deterministic: shard i owns global ids [base, base + sets.size()), so a
// shard-local result id rebases with one addition and the global
// (score desc, id asc) tie-break order is computable without any lookup
// table. Slicing is near-zero-copy: each slice borrows the parent token
// arena ([offsets[lo], offsets[hi]) — for an mmap-backed snapshot these
// are the mapped pages themselves) and owns only its REBASED offsets
// array (size()+1 uint64s, the price of SetCollection's "offsets start at
// 0" invariant).
//
// Lifetime: a slice's token span aliases the parent collection's arena;
// whoever holds slices must pin whatever pins the parent (the serve layer
// keeps them inside the ServingState next to the snapshot).
#ifndef KOIOS_IO_SHARD_SLICE_H_
#define KOIOS_IO_SHARD_SLICE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "koios/index/set_collection.h"
#include "koios/util/types.h"

namespace koios::io {

/// One shard's view of a set collection: the sets with global ids
/// [base, base + sets.size()), re-addressed as local ids [0, size).
struct ShardSlice {
  /// Global SetId of this shard's local id 0.
  SetId base = 0;
  /// Rebased CSR offsets (offsets[j] = parent_offsets[base + j] -
  /// parent_offsets[base]); owned here because `sets` borrows them.
  std::vector<uint64_t> offsets;
  /// Borrowed-mode collection over (offsets, parent token subspan).
  index::SetCollection sets;

  ShardSlice() = default;
  // `sets` holds spans into `offsets`; moving the vector keeps its heap
  // buffer (and therefore the spans) valid, so moves are safe — but the
  // serve layer still heap-allocates the owning ShardEngine so raw
  // `&slice.sets` pointers (held by searchers) never dangle.
  ShardSlice(ShardSlice&&) = default;
  ShardSlice& operator=(ShardSlice&&) = default;
};

/// Partitions `full` into `num_shards` contiguous, balanced slices
/// (shard i owns [i*n/N, (i+1)*n/N), so sizes differ by at most one and
/// every set appears in exactly one shard). `num_shards` is clamped to
/// [1, max(1, full.size())] — asking for more shards than sets yields one
/// shard per set. Works over both owned and borrowed (mmap) collections;
/// the returned slices alias `full`'s token arena (see file comment).
std::vector<ShardSlice> SliceCollection(const index::SetCollection& full,
                                        size_t num_shards);

/// Planner record for `koios_snapshot shard`: what one shard of an
/// N-way partitioned open would hold.
struct ShardPlan {
  SetId first_set = 0;
  size_t set_count = 0;
  size_t token_count = 0;       // Σ |C| over the shard's sets
  size_t postings_bytes = 0;    // token_count * sizeof(TokenId)
  size_t offsets_bytes = 0;     // rebased offsets copy (the per-shard cost)
};

/// Computes the per-shard partition plan without building the slices.
/// Same clamping and ranges as SliceCollection.
std::vector<ShardPlan> PlanShards(const index::SetCollection& full,
                                  size_t num_shards);

}  // namespace koios::io

#endif  // KOIOS_IO_SHARD_SLICE_H_
