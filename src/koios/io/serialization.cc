#include "koios/io/serialization.h"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <vector>

namespace koios::io {

namespace {

constexpr uint32_t kDictionaryMagic = 0x4B44494Bu;  // "KIDK"
constexpr uint32_t kSetsMagic = 0x4B534554u;        // "TESK"
constexpr uint32_t kEmbeddingMagic = 0x4B454D42u;   // "BMEK"
constexpr uint32_t kRepositoryMagic = 0x4B52504Fu;  // "OPRK"
constexpr uint32_t kVersion = 1;
// Embedding store v2 adds a quantized-tier flag after the row count, so a
// store that was Finalize()d before saving comes back quantized (the int8
// codes are a deterministic function of the float rows, so the loader
// re-finalizes instead of persisting 4 redundant arrays). v1 files load
// unchanged (never quantized).
constexpr uint32_t kEmbeddingVersion = 2;

template <typename T>
void WritePod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::istream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return static_cast<bool>(in);
}

util::Status WriteHeader(std::ostream& out, uint32_t magic,
                         uint32_t version = kVersion) {
  WritePod(out, magic);
  WritePod(out, version);
  if (!out) return util::Status::Internal("write failed");
  return util::Status::OK();
}

util::Status CheckHeader(std::istream& in, uint32_t magic, const char* what,
                         uint32_t min_version = kVersion,
                         uint32_t max_version = kVersion,
                         uint32_t* version_out = nullptr) {
  uint32_t got_magic = 0, got_version = 0;
  if (!ReadPod(in, &got_magic) || !ReadPod(in, &got_version)) {
    return util::Status::InvalidArgument(std::string("truncated ") + what +
                                         " header");
  }
  if (got_magic != magic) {
    return util::Status::InvalidArgument(std::string("bad magic for ") + what);
  }
  if (got_version < min_version || got_version > max_version) {
    return util::Status::InvalidArgument(std::string("unsupported version for ") +
                                         what);
  }
  if (version_out != nullptr) *version_out = got_version;
  return util::Status::OK();
}

}  // namespace

// ---- Dictionary -------------------------------------------------------------

util::Status SaveDictionary(const text::Dictionary& dict, std::ostream& out) {
  auto status = WriteHeader(out, kDictionaryMagic);
  if (!status.ok()) return status;
  WritePod<uint64_t>(out, dict.size());
  for (TokenId t = 0; t < dict.size(); ++t) {
    const std::string& token = dict.TokenOf(t);
    WritePod<uint32_t>(out, static_cast<uint32_t>(token.size()));
    out.write(token.data(), static_cast<std::streamsize>(token.size()));
  }
  if (!out) return util::Status::Internal("write failed");
  return util::Status::OK();
}

util::StatusOr<text::Dictionary> LoadDictionary(std::istream& in) {
  auto status = CheckHeader(in, kDictionaryMagic, "dictionary");
  if (!status.ok()) return status;
  uint64_t count = 0;
  if (!ReadPod(in, &count)) {
    return util::Status::InvalidArgument("truncated dictionary");
  }
  text::Dictionary dict;
  std::string token;
  for (uint64_t i = 0; i < count; ++i) {
    uint32_t length = 0;
    if (!ReadPod(in, &length)) {
      return util::Status::InvalidArgument("truncated dictionary entry");
    }
    token.resize(length);
    in.read(token.data(), length);
    if (!in) return util::Status::InvalidArgument("truncated dictionary entry");
    const TokenId id = dict.Intern(token);
    if (id != i) {
      return util::Status::InvalidArgument("duplicate token in dictionary file");
    }
  }
  return dict;
}

// ---- SetCollection ------------------------------------------------------------

util::Status SaveSetCollection(const index::SetCollection& sets,
                               std::ostream& out) {
  auto status = WriteHeader(out, kSetsMagic);
  if (!status.ok()) return status;
  WritePod<uint64_t>(out, sets.size());
  for (SetId id = 0; id < sets.size(); ++id) {
    const auto tokens = sets.Tokens(id);
    WritePod<uint32_t>(out, static_cast<uint32_t>(tokens.size()));
    out.write(reinterpret_cast<const char*>(tokens.data()),
              static_cast<std::streamsize>(tokens.size() * sizeof(TokenId)));
  }
  if (!out) return util::Status::Internal("write failed");
  return util::Status::OK();
}

util::StatusOr<index::SetCollection> LoadSetCollection(std::istream& in) {
  auto status = CheckHeader(in, kSetsMagic, "set collection");
  if (!status.ok()) return status;
  uint64_t count = 0;
  if (!ReadPod(in, &count)) {
    return util::Status::InvalidArgument("truncated set collection");
  }
  index::SetCollection sets;
  std::vector<TokenId> tokens;
  for (uint64_t i = 0; i < count; ++i) {
    uint32_t size = 0;
    if (!ReadPod(in, &size)) {
      return util::Status::InvalidArgument("truncated set header");
    }
    tokens.resize(size);
    in.read(reinterpret_cast<char*>(tokens.data()),
            static_cast<std::streamsize>(size * sizeof(TokenId)));
    if (!in) return util::Status::InvalidArgument("truncated set payload");
    sets.AddSet(tokens);
  }
  return sets;
}

// ---- EmbeddingStore ------------------------------------------------------------

util::Status SaveEmbeddingStore(const embedding::EmbeddingStore& store,
                                TokenId token_bound, std::ostream& out) {
  auto status = WriteHeader(out, kEmbeddingMagic, kEmbeddingVersion);
  if (!status.ok()) return status;
  WritePod<uint64_t>(out, store.dim());
  WritePod<uint64_t>(out, store.covered());
  // A finalized store round-trips with its int8 tier intact: the loader
  // re-runs Finalize() (deterministic given the rows) when this flag is
  // set, so the Precision::kInt8 paths work on a loaded repository exactly
  // as they did on the saved one.
  WritePod<uint8_t>(out, store.quantized() ? 1 : 0);
  for (TokenId t = 0; t < token_bound; ++t) {
    if (!store.Has(t)) continue;
    WritePod<TokenId>(out, t);
    const auto vec = store.VectorOf(t);
    out.write(reinterpret_cast<const char*>(vec.data()),
              static_cast<std::streamsize>(vec.size() * sizeof(float)));
  }
  if (!out) return util::Status::Internal("write failed");
  return util::Status::OK();
}

util::StatusOr<embedding::EmbeddingStore> LoadEmbeddingStore(std::istream& in) {
  uint32_t version = 0;
  auto status = CheckHeader(in, kEmbeddingMagic, "embedding store",
                            /*min_version=*/1, kEmbeddingVersion, &version);
  if (!status.ok()) return status;
  uint64_t dim = 0, rows = 0;
  if (!ReadPod(in, &dim) || !ReadPod(in, &rows) || dim == 0) {
    return util::Status::InvalidArgument("truncated embedding header");
  }
  uint8_t quantized = 0;  // v1 files predate the int8 tier
  if (version >= 2 && !ReadPod(in, &quantized)) {
    return util::Status::InvalidArgument("truncated embedding header");
  }
  embedding::EmbeddingStore store(dim);
  std::vector<float> vec(dim);
  for (uint64_t i = 0; i < rows; ++i) {
    TokenId token = kInvalidToken;
    if (!ReadPod(in, &token)) {
      return util::Status::InvalidArgument("truncated embedding row header");
    }
    in.read(reinterpret_cast<char*>(vec.data()),
            static_cast<std::streamsize>(dim * sizeof(float)));
    if (!in) return util::Status::InvalidArgument("truncated embedding row");
    store.Add(token, vec);
  }
  if (quantized != 0) store.Finalize();
  return store;
}

// ---- repository file ------------------------------------------------------------

util::Status SaveRepository(const text::Dictionary& dict,
                            const index::SetCollection& sets,
                            const embedding::EmbeddingStore* store,
                            const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return util::Status::NotFound("cannot create " + path);
  auto status = WriteHeader(out, kRepositoryMagic);
  if (!status.ok()) return status;
  WritePod<uint8_t>(out, store != nullptr ? 1 : 0);
  status = SaveDictionary(dict, out);
  if (!status.ok()) return status;
  status = SaveSetCollection(sets, out);
  if (!status.ok()) return status;
  if (store != nullptr) {
    status = SaveEmbeddingStore(*store, static_cast<TokenId>(dict.size()), out);
    if (!status.ok()) return status;
  }
  return util::Status::OK();
}

util::StatusOr<LoadedRepository> LoadRepository(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return util::Status::NotFound("cannot open " + path);
  auto status = CheckHeader(in, kRepositoryMagic, "repository");
  if (!status.ok()) return status;
  uint8_t has_embeddings = 0;
  if (!ReadPod(in, &has_embeddings)) {
    return util::Status::InvalidArgument("truncated repository header");
  }
  LoadedRepository repo;
  auto dict = LoadDictionary(in);
  if (!dict.ok()) return dict.status();
  repo.dict = std::move(dict).value();
  auto sets = LoadSetCollection(in);
  if (!sets.ok()) return sets.status();
  repo.sets = std::move(sets).value();
  if (has_embeddings != 0) {
    auto store = LoadEmbeddingStore(in);
    if (!store.ok()) return store.status();
    repo.store = std::move(store).value();
    repo.has_embeddings = true;
  }
  return repo;
}

}  // namespace koios::io
