#include "koios/io/serialization.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <vector>

#include "koios/io/repository_v4.h"
#include "koios/util/crc32.h"
#include "koios/util/fault_injector.h"

namespace koios::io {

namespace {

constexpr uint32_t kDictionaryMagic = 0x4B44494Bu;  // "KIDK"
constexpr uint32_t kSetsMagic = 0x4B534554u;        // "TESK"
constexpr uint32_t kEmbeddingMagic = 0x4B454D42u;   // "BMEK"
constexpr uint32_t kRepositoryMagic = 0x4B52504Fu;  // "OPRK"
constexpr uint32_t kVersion = 1;
// Embedding store v2 adds a quantized-tier flag after the row count, so a
// store that was Finalize()d before saving comes back quantized (the int8
// codes are a deterministic function of the float rows, so the loader
// re-finalizes instead of persisting 4 redundant arrays). v1 files load
// unchanged (never quantized).
constexpr uint32_t kEmbeddingVersion = 2;
// Repository container versions (see the header comment): v1 = unframed
// legacy, v3 = CRC-framed sections + cross-artifact validation. 2 was
// never written and is rejected.
constexpr uint32_t kRepositoryVersionLegacy = 1;
constexpr uint32_t kRepositoryVersion = 3;

template <typename T>
void WritePod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::istream& in, T* value) {
  // Chaos seam: an armed "io.read" schedule makes this read report
  // failure, which must surface as a clean truncation-style Status from
  // whichever section was being parsed — the fault-injection tests sweep
  // the failure over every read site of a load.
  if (KOIOS_FAULTPOINT("io.read")) return false;
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return static_cast<bool>(in);
}

/// Bytes between the stream's current position and its end (seekable
/// streams only; "unknown" — no bound — when the stream cannot seek).
/// Every variable-length count read from a file is validated against this
/// BEFORE allocating, so a corrupt or truncated count yields a clean
/// error instead of a multi-gigabyte allocation.
uint64_t RemainingBytes(std::istream& in) {
  const std::istream::pos_type pos = in.tellg();
  if (pos == std::istream::pos_type(-1)) {
    return std::numeric_limits<uint64_t>::max();
  }
  in.seekg(0, std::ios::end);
  const std::istream::pos_type end = in.tellg();
  in.seekg(pos);
  if (end == std::istream::pos_type(-1) || end < pos) {
    return std::numeric_limits<uint64_t>::max();
  }
  return static_cast<uint64_t>(end - pos);
}

util::Status WriteHeader(std::ostream& out, uint32_t magic,
                         uint32_t version = kVersion) {
  WritePod(out, magic);
  WritePod(out, version);
  if (!out) return util::Status::Internal("write failed");
  return util::Status::OK();
}

util::Status CheckHeader(std::istream& in, uint32_t magic, const char* what,
                         uint32_t min_version = kVersion,
                         uint32_t max_version = kVersion,
                         uint32_t* version_out = nullptr) {
  uint32_t got_magic = 0, got_version = 0;
  if (!ReadPod(in, &got_magic) || !ReadPod(in, &got_version)) {
    return util::Status::InvalidArgument(std::string("truncated ") + what +
                                         " header");
  }
  if (got_magic != magic) {
    return util::Status::InvalidArgument(std::string("bad magic for ") + what);
  }
  if (got_version < min_version || got_version > max_version) {
    return util::Status::InvalidArgument(std::string("unsupported version for ") +
                                         what);
  }
  if (version_out != nullptr) *version_out = got_version;
  return util::Status::OK();
}

// ---- v3 section framing ------------------------------------------------------

/// The frame checksum covers the length field AND the payload, so a bit
/// flip in either is a deterministic mismatch (a shortened length cannot
/// re-validate against a prefix of the payload).
uint32_t FrameChecksum(uint64_t length, const char* payload) {
  const uint32_t seed = util::Crc32(&length, sizeof(length));
  return util::Crc32(payload, static_cast<size_t>(length), seed);
}

util::Status WriteFrame(std::ostream& out, const std::string& payload) {
  const uint64_t length = payload.size();
  WritePod(out, length);
  WritePod(out, FrameChecksum(length, payload.data()));
  out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  if (!out) return util::Status::Internal("write failed");
  return util::Status::OK();
}

/// Reads one [length][crc][payload] frame, validating the length against
/// the bytes actually left in the file before allocating and the checksum
/// before the caller parses a single payload byte.
util::Status ReadFrame(std::istream& in, const char* what,
                       std::string* payload) {
  uint64_t length = 0;
  uint32_t crc = 0;
  if (!ReadPod(in, &length) || !ReadPod(in, &crc)) {
    return util::Status::InvalidArgument(std::string("truncated ") + what +
                                         " section frame");
  }
  if (length > RemainingBytes(in)) {
    return util::Status::InvalidArgument(std::string(what) +
                                         " section length exceeds file size");
  }
  payload->resize(static_cast<size_t>(length));
  in.read(payload->data(), static_cast<std::streamsize>(length));
  if (!in) {
    return util::Status::InvalidArgument(std::string("truncated ") + what +
                                         " section");
  }
  if (FrameChecksum(length, payload->data()) != crc) {
    return util::Status::InvalidArgument(std::string("checksum mismatch in ") +
                                         what + " section");
  }
  return util::Status::OK();
}

}  // namespace

// ---- Dictionary -------------------------------------------------------------

util::Status SaveDictionary(const text::Dictionary& dict, std::ostream& out) {
  auto status = WriteHeader(out, kDictionaryMagic);
  if (!status.ok()) return status;
  WritePod<uint64_t>(out, dict.size());
  for (TokenId t = 0; t < dict.size(); ++t) {
    const std::string_view token = dict.TokenOf(t);
    WritePod<uint32_t>(out, static_cast<uint32_t>(token.size()));
    out.write(token.data(), static_cast<std::streamsize>(token.size()));
  }
  if (!out) return util::Status::Internal("write failed");
  return util::Status::OK();
}

util::StatusOr<text::Dictionary> LoadDictionary(std::istream& in) {
  auto status = CheckHeader(in, kDictionaryMagic, "dictionary");
  if (!status.ok()) return status;
  uint64_t count = 0;
  if (!ReadPod(in, &count)) {
    return util::Status::InvalidArgument("truncated dictionary");
  }
  // Each entry is at least its 4-byte length field.
  if (count > RemainingBytes(in) / sizeof(uint32_t)) {
    return util::Status::InvalidArgument("dictionary count exceeds file size");
  }
  text::Dictionary dict;
  std::string token;
  for (uint64_t i = 0; i < count; ++i) {
    uint32_t length = 0;
    if (!ReadPod(in, &length)) {
      return util::Status::InvalidArgument("truncated dictionary entry");
    }
    if (length > RemainingBytes(in)) {
      return util::Status::InvalidArgument(
          "dictionary entry length exceeds file size");
    }
    token.resize(length);
    in.read(token.data(), length);
    if (!in) return util::Status::InvalidArgument("truncated dictionary entry");
    const TokenId id = dict.Intern(token);
    if (id != i) {
      return util::Status::InvalidArgument("duplicate token in dictionary file");
    }
  }
  return dict;
}

// ---- SetCollection ------------------------------------------------------------

util::Status SaveSetCollection(const index::SetCollection& sets,
                               std::ostream& out) {
  auto status = WriteHeader(out, kSetsMagic);
  if (!status.ok()) return status;
  WritePod<uint64_t>(out, sets.size());
  for (SetId id = 0; id < sets.size(); ++id) {
    const auto tokens = sets.Tokens(id);
    WritePod<uint32_t>(out, static_cast<uint32_t>(tokens.size()));
    out.write(reinterpret_cast<const char*>(tokens.data()),
              static_cast<std::streamsize>(tokens.size() * sizeof(TokenId)));
  }
  if (!out) return util::Status::Internal("write failed");
  return util::Status::OK();
}

util::StatusOr<index::SetCollection> LoadSetCollection(std::istream& in) {
  auto status = CheckHeader(in, kSetsMagic, "set collection");
  if (!status.ok()) return status;
  uint64_t count = 0;
  if (!ReadPod(in, &count)) {
    return util::Status::InvalidArgument("truncated set collection");
  }
  if (count > RemainingBytes(in) / sizeof(uint32_t)) {
    return util::Status::InvalidArgument(
        "set collection count exceeds file size");
  }
  index::SetCollection sets;
  std::vector<TokenId> tokens;
  for (uint64_t i = 0; i < count; ++i) {
    uint32_t size = 0;
    if (!ReadPod(in, &size)) {
      return util::Status::InvalidArgument("truncated set header");
    }
    if (size > RemainingBytes(in) / sizeof(TokenId)) {
      return util::Status::InvalidArgument("set size exceeds file size");
    }
    tokens.resize(size);
    in.read(reinterpret_cast<char*>(tokens.data()),
            static_cast<std::streamsize>(size * sizeof(TokenId)));
    if (!in) return util::Status::InvalidArgument("truncated set payload");
    sets.AddSet(tokens);
  }
  return sets;
}

// ---- EmbeddingStore ------------------------------------------------------------

util::Status SaveEmbeddingStore(const embedding::EmbeddingStore& store,
                                TokenId token_bound, std::ostream& out) {
  auto status = WriteHeader(out, kEmbeddingMagic, kEmbeddingVersion);
  if (!status.ok()) return status;
  WritePod<uint64_t>(out, store.dim());
  WritePod<uint64_t>(out, store.covered());
  // A finalized store round-trips with its int8 tier intact: the loader
  // re-runs Finalize() (deterministic given the rows) when this flag is
  // set, so the Precision::kInt8 paths work on a loaded repository exactly
  // as they did on the saved one.
  WritePod<uint8_t>(out, store.quantized() ? 1 : 0);
  for (TokenId t = 0; t < token_bound; ++t) {
    if (!store.Has(t)) continue;
    WritePod<TokenId>(out, t);
    const auto vec = store.VectorOf(t);
    out.write(reinterpret_cast<const char*>(vec.data()),
              static_cast<std::streamsize>(vec.size() * sizeof(float)));
  }
  if (!out) return util::Status::Internal("write failed");
  return util::Status::OK();
}

util::StatusOr<embedding::EmbeddingStore> LoadEmbeddingStore(
    std::istream& in, uint64_t token_id_bound) {
  uint32_t version = 0;
  auto status = CheckHeader(in, kEmbeddingMagic, "embedding store",
                            /*min_version=*/1, kEmbeddingVersion, &version);
  if (!status.ok()) return status;
  uint64_t dim = 0, rows = 0;
  if (!ReadPod(in, &dim) || !ReadPod(in, &rows) || dim == 0) {
    return util::Status::InvalidArgument("truncated embedding header");
  }
  const uint64_t remaining = RemainingBytes(in);
  if (dim > remaining / sizeof(float)) {
    return util::Status::InvalidArgument(
        "embedding dimension exceeds file size");
  }
  // Safe from overflow: dim is already bounded by the file size.
  if (rows > remaining / (sizeof(TokenId) + dim * sizeof(float))) {
    return util::Status::InvalidArgument(
        "embedding row count exceeds file size");
  }
  uint8_t quantized = 0;  // v1 files predate the int8 tier
  if (version >= 2 && !ReadPod(in, &quantized)) {
    return util::Status::InvalidArgument("truncated embedding header");
  }
  embedding::EmbeddingStore store(dim);
  std::vector<float> vec(dim);
  for (uint64_t i = 0; i < rows; ++i) {
    TokenId token = kInvalidToken;
    if (!ReadPod(in, &token)) {
      return util::Status::InvalidArgument("truncated embedding row header");
    }
    if (token >= token_id_bound) {
      return util::Status::InvalidArgument(
          "embedding row token id outside the dictionary");
    }
    if (store.Has(token)) {
      return util::Status::InvalidArgument("duplicate embedding row");
    }
    in.read(reinterpret_cast<char*>(vec.data()),
            static_cast<std::streamsize>(dim * sizeof(float)));
    if (!in) return util::Status::InvalidArgument("truncated embedding row");
    // Rows are stored normalized; inserting them verbatim keeps a loaded
    // store bit-identical to the one that was saved.
    store.AddNormalized(token, vec);
  }
  if (quantized != 0) store.Finalize();
  return store;
}

// ---- repository file ------------------------------------------------------------

namespace {

/// Serializes one artifact into an in-memory payload for framing.
template <typename SaveFn>
util::StatusOr<std::string> SectionPayload(SaveFn&& save) {
  std::ostringstream buffer(std::ios::binary);
  auto status = save(buffer);
  if (!status.ok()) return status;
  return std::move(buffer).str();
}

util::Status WriteRepositoryFile(const text::Dictionary& dict,
                                 const index::SetCollection& sets,
                                 const embedding::EmbeddingStore* store,
                                 const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return util::Status::NotFound("cannot create " + path);
  auto status = WriteHeader(out, kRepositoryMagic, kRepositoryVersion);
  if (!status.ok()) return status;
  WritePod<uint8_t>(out, store != nullptr ? 1 : 0);
  // Chaos seam: fires after the header hit the disk, so the atomic-save
  // contract is exercised against a half-written temp file.
  if (KOIOS_FAULTPOINT("io.save.write")) {
    return util::Status::Internal("injected write fault (io.save.write)");
  }

  auto dict_payload = SectionPayload(
      [&](std::ostream& o) { return SaveDictionary(dict, o); });
  if (!dict_payload.ok()) return dict_payload.status();
  status = WriteFrame(out, dict_payload.value());
  if (!status.ok()) return status;

  auto sets_payload = SectionPayload(
      [&](std::ostream& o) { return SaveSetCollection(sets, o); });
  if (!sets_payload.ok()) return sets_payload.status();
  status = WriteFrame(out, sets_payload.value());
  if (!status.ok()) return status;

  if (store != nullptr) {
    auto store_payload = SectionPayload([&](std::ostream& o) {
      return SaveEmbeddingStore(*store, static_cast<TokenId>(dict.size()), o);
    });
    if (!store_payload.ok()) return store_payload.status();
    status = WriteFrame(out, store_payload.value());
    if (!status.ok()) return status;
  }
  out.flush();
  if (!out) return util::Status::Internal("write failed");
  return util::Status::OK();
}

/// Every token id an artifact references must resolve inside the
/// dictionary that shipped in the same file — the cross-artifact
/// consistency gate that catches mixed-generation section splices even
/// when each section is individually well-formed.
util::Status ValidateRepository(const LoadedRepository& repo) {
  if (repo.sets.TokenIdBound() > repo.dict.size()) {
    return util::Status::InvalidArgument(
        "set collection references token ids beyond the dictionary");
  }
  // Embedding row ids are checked against the dictionary during the load
  // itself (token_id_bound); dimension consistency needs no check — any
  // dim is servable. Nothing further to cross-validate without embeddings.
  return util::Status::OK();
}

}  // namespace

util::Status SaveRepository(const text::Dictionary& dict,
                            const index::SetCollection& sets,
                            const embedding::EmbeddingStore* store,
                            const std::string& path) {
  // Atomic publication: a crash (or injected fault) anywhere before the
  // rename leaves `path` exactly as it was — either the previous valid
  // repository or absent — and cleans up the temp file on the failure
  // paths this process survives.
  const std::string tmp = path + ".tmp";
  auto status = WriteRepositoryFile(dict, sets, store, tmp);
  if (!status.ok()) {
    std::remove(tmp.c_str());
    return status;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return util::Status::Internal("cannot rename " + tmp + " to " + path);
  }
  return util::Status::OK();
}

util::Status SaveRepositoryLegacyV1(const text::Dictionary& dict,
                                    const index::SetCollection& sets,
                                    const embedding::EmbeddingStore* store,
                                    const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return util::Status::NotFound("cannot create " + path);
  auto status = WriteHeader(out, kRepositoryMagic, kRepositoryVersionLegacy);
  if (!status.ok()) return status;
  WritePod<uint8_t>(out, store != nullptr ? 1 : 0);
  status = SaveDictionary(dict, out);
  if (!status.ok()) return status;
  status = SaveSetCollection(sets, out);
  if (!status.ok()) return status;
  if (store != nullptr) {
    status = SaveEmbeddingStore(*store, static_cast<TokenId>(dict.size()), out);
    if (!status.ok()) return status;
  }
  return util::Status::OK();
}

namespace {

/// Materializes a v4 mmap repository into OWNED structures: the
/// compatibility path for callers that need the artifacts to outlive any
/// mapping (the zero-copy path is serve::Snapshot over MmapRepositoryView).
/// Eager verification: this path already pays O(corpus) to copy, so the
/// bulk-arena CRCs and content scans are not worth skipping.
util::StatusOr<LoadedRepository> MaterializeV4(const std::string& path) {
  auto view_or = MmapRepositoryView::Open(path, MmapOptions{.verify = true});
  if (!view_or.ok()) return view_or.status();
  const auto view = std::move(view_or).value();
  auto dict = view->BorrowDictionary();
  if (!dict.ok()) return dict.status();
  auto sets = view->BorrowSets();
  if (!sets.ok()) return sets.status();

  LoadedRepository repo;
  for (TokenId t = 0; t < dict.value().size(); ++t) {
    repo.dict.Intern(dict.value().TokenOf(t));
  }
  for (SetId s = 0; s < sets.value().size(); ++s) {
    repo.sets.AddSet(sets.value().Tokens(s));
  }
  if (view->has_embeddings()) {
    auto store = view->BorrowEmbeddings();
    if (!store.ok()) return store.status();
    const auto& borrowed = store.value();
    repo.store = embedding::EmbeddingStore(borrowed.dim());
    const auto table = borrowed.RowTable();
    for (TokenId t = 0; t < table.size(); ++t) {
      if (table[t] == embedding::EmbeddingStore::kNoRow) continue;
      if (t >= repo.dict.size()) {
        return util::Status::InvalidArgument(
            "embedding row token id outside the dictionary");
      }
      repo.store.AddNormalized(t, borrowed.VectorOf(t));
    }
    if (borrowed.quantized()) repo.store.Finalize();
    repo.has_embeddings = true;
  }
  return repo;
}

}  // namespace

util::StatusOr<LoadedRepository> LoadRepository(const std::string& path) {
  {
    auto version = PeekRepositoryVersion(path);
    if (version.ok() && version.value() == 4) return MaterializeV4(path);
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) return util::Status::NotFound("cannot open " + path);
  uint32_t version = 0;
  auto status =
      CheckHeader(in, kRepositoryMagic, "repository", kRepositoryVersionLegacy,
                  kRepositoryVersion, &version);
  if (!status.ok()) return status;
  if (version != kRepositoryVersionLegacy && version != kRepositoryVersion) {
    return util::Status::InvalidArgument("unsupported version for repository");
  }
  uint8_t has_embeddings = 0;
  if (!ReadPod(in, &has_embeddings)) {
    return util::Status::InvalidArgument("truncated repository header");
  }
  if (has_embeddings > 1) {
    return util::Status::InvalidArgument("corrupt repository header");
  }

  LoadedRepository repo;
  if (version == kRepositoryVersionLegacy) {
    // Unframed legacy layout: sections parsed straight off the stream
    // (allocation still bounded by RemainingBytes, but no checksums).
    auto dict = LoadDictionary(in);
    if (!dict.ok()) return dict.status();
    repo.dict = std::move(dict).value();
    auto sets = LoadSetCollection(in);
    if (!sets.ok()) return sets.status();
    repo.sets = std::move(sets).value();
    if (has_embeddings != 0) {
      auto store = LoadEmbeddingStore(in, repo.dict.size());
      if (!store.ok()) return store.status();
      repo.store = std::move(store).value();
      repo.has_embeddings = true;
    }
  } else {
    // v3: every section arrives length-checked and checksum-verified
    // before parsing, and the file must end exactly after the last
    // section (trailing bytes mean a corrupt header routed us past a
    // section that is still physically present).
    std::string payload;
    status = ReadFrame(in, "dictionary", &payload);
    if (!status.ok()) return status;
    {
      std::istringstream section(payload, std::ios::binary);
      auto dict = LoadDictionary(section);
      if (!dict.ok()) return dict.status();
      repo.dict = std::move(dict).value();
    }
    status = ReadFrame(in, "set collection", &payload);
    if (!status.ok()) return status;
    {
      std::istringstream section(payload, std::ios::binary);
      auto sets = LoadSetCollection(section);
      if (!sets.ok()) return sets.status();
      repo.sets = std::move(sets).value();
    }
    if (has_embeddings != 0) {
      status = ReadFrame(in, "embedding store", &payload);
      if (!status.ok()) return status;
      std::istringstream section(payload, std::ios::binary);
      auto store = LoadEmbeddingStore(section, repo.dict.size());
      if (!store.ok()) return store.status();
      repo.store = std::move(store).value();
      repo.has_embeddings = true;
    }
    if (in.peek() != std::char_traits<char>::eof()) {
      return util::Status::InvalidArgument(
          "trailing bytes after the last repository section");
    }
  }

  status = ValidateRepository(repo);
  if (!status.ok()) return status;
  return repo;
}

}  // namespace koios::io
