// Repository container format v4: the zero-copy mmap snapshot format.
//
// v1/v3 (serialization.h) are STREAM formats — loading parses and copies
// every artifact into heap structures, O(corpus bytes) of work before the
// first query. v4 is an ARENA format: the on-disk bytes ARE the serving
// layout, so a load is mmap + header/offset validation, and the serving
// structures (Dictionary / SetCollection / EmbeddingStore in borrowed
// mode) wrap the mapped arenas without copying a byte. The int8 quantized
// tier is stored FINALIZED — a v4 load performs zero quantization work.
//
// File layout (little-endian, same machine-family caveat as v1/v3):
//
//   [V4Header: 64 bytes]
//   [SectionEntry x section_count: 24 bytes each]
//   [zero padding to the next 64-byte boundary]
//   [section 0 bytes][zero padding to 64][section 1 bytes]...[section N-1]
//
// Every section offset is 64-byte aligned (so borrowed spans of u64/f32/
// i32 arenas are naturally aligned and cache-line friendly); inter-section
// gaps are zero-filled; the file ends EXACTLY at the last section's end.
// Sections appear in fixed kind order:
//
//   kind  content                              element   present
//   1     dictionary offsets (dict_size+1)     u64       always
//   2     dictionary string arena              char      always
//   3     set CSR offsets (set_count+1)        u64       always
//   4     set token arena (sorted per set)     u32       always
//   5     vocabulary: sorted distinct tokens   u32       always
//   6     embedding row table TokenId->row     u32       has_embeddings
//   7     embedding rows (rows x dim, L2-nrm)  f32       has_embeddings
//   8     int8 codes (rows x dim)              i8        has_quantized
//   9     quantizer scales (per row)           f32       has_quantized
//   10    quantizer offsets (per row)          f32       has_quantized
//   11    quantizer code sums (per row)        i32       has_quantized
//
// Integrity model (three tiers — see docs/ARCHITECTURE.md):
//  * STRUCTURAL, always at Open(): header CRC (over the header with its
//    crc field zeroed, continued over the section table), magic/version,
//    kind sequence, alignment, monotone non-overlapping extents, zeroed
//    padding, per-kind length arithmetic against the header counts, and
//    an EXACT file-size match. Every truncation and every bit flip in the
//    header, section table, or padding is rejected here — before any
//    section byte is dereferenced, so a short file can never SIGBUS.
//  * LAZY per-section CRC: metadata sections (1,2,3,5,6,9,10,11) are
//    CRC-verified on first borrow of the artifact that reads them.
//  * EAGER (MmapOptions::verify, the `koios_snapshot verify` tool, and
//    TrySwapFromRepository): CRC of EVERY section including the three
//    bulk arenas (4,7,8) plus content scans (set tokens in bounds and
//    sorted per set, vocabulary sorted/deduped/in bounds). Lazy mode
//    deliberately skips the bulk-arena CRCs: checksumming the full file
//    would put load time back on the same O(corpus) footing as a v3
//    parse, forfeiting the mmap advantage.
#ifndef KOIOS_IO_REPOSITORY_V4_H_
#define KOIOS_IO_REPOSITORY_V4_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "koios/embedding/embedding_store.h"
#include "koios/index/set_collection.h"
#include "koios/io/mmap_file.h"
#include "koios/text/dictionary.h"
#include "koios/util/status.h"
#include "koios/util/types.h"

namespace koios::io {

// ---- on-disk structures -----------------------------------------------------

/// Fixed 64-byte file header. `header_crc` is the CRC-32 of this struct
/// with the crc field zeroed, continued over the section table bytes.
struct V4Header {
  uint32_t magic = 0;           // kRepositoryMagic ("OPRK")
  uint32_t version = 0;         // 4
  uint64_t dict_size = 0;       // tokens in the dictionary
  uint64_t set_count = 0;       // sets in the collection
  uint64_t embed_dim = 0;       // 0 when !has_embeddings
  uint64_t embed_rows = 0;      // covered tokens
  uint64_t token_id_bound = 0;  // dense vocabulary bound of set token ids
  uint8_t has_embeddings = 0;
  uint8_t has_quantized = 0;    // implies has_embeddings
  uint8_t reserved_a[2] = {0, 0};
  uint32_t section_count = 0;
  uint32_t header_crc = 0;
  uint8_t reserved_b[4] = {0, 0, 0, 0};
};
static_assert(sizeof(V4Header) == 64, "v4 header must be exactly 64 bytes");

/// One section-table entry: the extent and checksum of a section.
struct SectionEntry {
  uint64_t offset = 0;  // absolute file offset, 64-byte aligned
  uint64_t length = 0;  // bytes, may be 0
  uint32_t crc = 0;     // CRC-32 of the section bytes
  uint32_t kind = 0;    // SectionKind
};
static_assert(sizeof(SectionEntry) == 24, "section entry must be 24 bytes");

enum SectionKind : uint32_t {
  kDictOffsets = 1,
  kDictBytes = 2,
  kSetOffsets = 3,
  kSetTokens = 4,
  kVocabulary = 5,
  kEmbedRowOf = 6,
  kEmbedData = 7,
  kQuantCodes = 8,
  kQuantScales = 9,
  kQuantOffsets = 10,
  kQuantSums = 11,
};

inline constexpr size_t kV4MaxSections = 11;
inline constexpr size_t kV4Alignment = 64;

// ---- writer -----------------------------------------------------------------

/// Writes the v4 container atomically ("<path>.tmp" + rename, like
/// SaveRepository). Embedding rows are canonicalized to token-ascending
/// order (the order a v3 load produces), so queries against a v4-borrowed
/// store are bit-identical to the v3-loaded equivalent. If `store` is
/// finalized, the int8 tier is written verbatim; loading it back performs
/// no quantization work. Hits the "io.save.write" failpoint.
util::Status SaveRepositoryV4(const text::Dictionary& dict,
                              const index::SetCollection& sets,
                              const embedding::EmbeddingStore* store,  // nullable
                              const std::string& path);

// ---- reader -----------------------------------------------------------------

struct MmapOptions {
  /// Eagerly CRC-check every section (including the bulk arenas) and run
  /// the content scans at Open(). Off = structural validation only, with
  /// metadata CRCs deferred to first borrow.
  bool verify = false;
};

/// A validated read-only mapping of a v4 repository. Borrow* accessors
/// hand out Dictionary / SetCollection / EmbeddingStore objects in
/// borrowed mode whose storage lives in the mapping — the view must
/// outlive every borrowed object (serve::Snapshot keeps a shared_ptr).
/// Thread-safe after Open(); lazy CRC state is atomic.
class MmapRepositoryView {
 public:
  /// Maps and structurally validates `path`. With opts.verify, also runs
  /// VerifyAllSections(). Hits "io.mmap" (establishment) and
  /// "io.v4.validate" (validation) failpoints.
  static util::StatusOr<std::shared_ptr<MmapRepositoryView>> Open(
      const std::string& path, const MmapOptions& opts = {});

  /// Borrowed dictionary over sections 1+2 (CRC-checked on first call).
  util::StatusOr<text::Dictionary> BorrowDictionary() const;
  /// Borrowed set collection over sections 3+4 (offsets CRC-checked on
  /// first call; the token arena is eager-verify only).
  util::StatusOr<index::SetCollection> BorrowSets() const;
  /// Borrowed embedding store over sections 6-11 (row table and per-row
  /// quantizer constants CRC-checked on first call; the float matrix and
  /// code arenas are eager-verify only). FailedPrecondition when the file
  /// carries no embeddings.
  util::StatusOr<embedding::EmbeddingStore> BorrowEmbeddings() const;
  /// The precomputed sorted distinct token ids of the set corpus
  /// (section 5, CRC-checked on first call). Lets a snapshot load skip
  /// the O(corpus) DistinctTokens scan.
  util::StatusOr<std::span<const TokenId>> Vocabulary() const;

  /// CRC-checks every section (bulk arenas included) and content-scans
  /// the set token and vocabulary arenas. Used by eager verify mode.
  util::Status VerifyAllSections() const;

  const V4Header& header() const { return header_; }
  bool has_embeddings() const { return header_.has_embeddings != 0; }
  bool has_quantized() const { return header_.has_quantized != 0; }
  size_t file_size() const { return file_.size(); }

 private:
  MmapRepositoryView() = default;

  util::Status Validate();  // structural pass at Open()
  /// Returns the section with `kind`, CRC-checking it first unless it was
  /// already checked (or `skip_crc`). nullptr data + OK is impossible; a
  /// missing kind is Internal (the structural pass pinned the sequence).
  util::StatusOr<std::span<const uint8_t>> Section(SectionKind kind) const;
  util::Status CheckSectionCrc(size_t index) const;

  MmapFile file_;
  V4Header header_;
  std::vector<SectionEntry> table_;
  // index into table_ per kind (or -1); filled by the structural pass.
  std::array<int, kV4MaxSections + 1> kind_index_;
  // 0 = unchecked, 1 = CRC verified. Failure is not cached (re-checks
  // refail identically); success is sticky so hot borrows are free.
  mutable std::array<std::atomic<uint8_t>, kV4MaxSections + 1> crc_ok_;
};

/// Reads just enough of `path` to report the container version (1, 3, or
/// 4); used by callers that route between the stream loader and the mmap
/// view. NotFound / InvalidArgument on unreadable or foreign files.
util::StatusOr<uint32_t> PeekRepositoryVersion(const std::string& path);

}  // namespace koios::io

#endif  // KOIOS_IO_REPOSITORY_V4_H_
