// Jaccard similarity on character q-gram sets of tokens — the syntactic
// element similarity used for the fuzzy-overlap comparison against SilkMoth
// (paper §VIII-B) and in Fig. 1's fuzzy example.
//
// Grams are interned into dense uint32 ids at construction, so similarity
// is a linear merge intersection over sorted id arrays (integer compares)
// instead of string compares. SimilarityBatch runs that merge kernel over
// a contiguous candidate batch with the query's gram ids hot in cache —
// the path MinHashIndex probes score through.
#ifndef KOIOS_SIM_JACCARD_QGRAM_SIMILARITY_H_
#define KOIOS_SIM_JACCARD_QGRAM_SIMILARITY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "koios/sim/similarity.h"
#include "koios/text/dictionary.h"

namespace koios::sim {

/// Precomputes sorted q-gram sets (strings and interned ids) for every
/// dictionary token; Similarity is a linear merge intersection over ids.
class JaccardQGramSimilarity : public SimilarityFunction {
 public:
  JaccardQGramSimilarity(const text::Dictionary* dict, size_t q = 3);

  Score Similarity(TokenId a, TokenId b) const override;

  /// Batched merge-intersection kernel: one virtual call scores the whole
  /// candidate batch against `q`'s id array (identical values to the
  /// pairwise overload — both divide the same integer counts).
  void SimilarityBatch(TokenId q, std::span<const TokenId> targets,
                       std::span<Score> out) const override;

  /// Multi-query kernel over a per-block gram-id inverted list: the block's
  /// target gram ids are transposed once into CSR postings
  /// (gram id → target positions), then each query walks its own sorted id
  /// array against the sorted posting keys — one merge per query instead of
  /// one merge per (query, target) pair, with cost proportional to the
  /// *matching* grams. This is the path MinHash prewarm blocks score
  /// through (identical values to the pairwise overload).
  void SimilarityBatchMulti(std::span<const TokenId> queries,
                            std::span<const TokenId> targets,
                            std::span<Score> out) const override;

  size_t q() const { return q_; }
  /// Sorted q-grams of a token (for SilkMoth's signature machinery and the
  /// MinHash signatures).
  const std::vector<std::string>& GramsOf(TokenId t) const;

  size_t MemoryUsageBytes() const override;

 private:
  /// Sorted interned gram ids of token `t` (contiguous flat storage — the
  /// batch kernel walks candidate id arrays back-to-back).
  std::span<const uint32_t> IdsOf(TokenId t) const {
    return {flat_ids_.data() + id_offsets_[t],
            id_offsets_[t + 1] - id_offsets_[t]};
  }

  const text::Dictionary* dict_;
  size_t q_;
  std::vector<std::vector<std::string>> grams_;  // by TokenId, sorted
  std::vector<uint32_t> flat_ids_;               // all tokens' sorted ids
  std::vector<size_t> id_offsets_;               // by TokenId, size + 1
};

}  // namespace koios::sim

#endif  // KOIOS_SIM_JACCARD_QGRAM_SIMILARITY_H_
