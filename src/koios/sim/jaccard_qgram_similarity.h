// Jaccard similarity on character q-gram sets of tokens — the syntactic
// element similarity used for the fuzzy-overlap comparison against SilkMoth
// (paper §VIII-B) and in Fig. 1's fuzzy example.
#ifndef KOIOS_SIM_JACCARD_QGRAM_SIMILARITY_H_
#define KOIOS_SIM_JACCARD_QGRAM_SIMILARITY_H_

#include <string>
#include <vector>

#include "koios/sim/similarity.h"
#include "koios/text/dictionary.h"

namespace koios::sim {

/// Precomputes sorted q-gram sets for every dictionary token; Similarity is
/// a linear merge intersection.
class JaccardQGramSimilarity : public SimilarityFunction {
 public:
  JaccardQGramSimilarity(const text::Dictionary* dict, size_t q = 3);

  Score Similarity(TokenId a, TokenId b) const override;

  size_t q() const { return q_; }
  /// Sorted q-grams of a token (for SilkMoth's signature machinery).
  const std::vector<std::string>& GramsOf(TokenId t) const;

  size_t MemoryUsageBytes() const override;

 private:
  const text::Dictionary* dict_;
  size_t q_;
  std::vector<std::vector<std::string>> grams_;  // by TokenId
};

}  // namespace koios::sim

#endif  // KOIOS_SIM_JACCARD_QGRAM_SIMILARITY_H_
