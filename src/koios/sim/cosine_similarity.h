// Cosine similarity of token embeddings — the similarity function used in
// the paper's experiments (FastText vectors; here the synthetic store).
#ifndef KOIOS_SIM_COSINE_SIMILARITY_H_
#define KOIOS_SIM_COSINE_SIMILARITY_H_

#include "koios/embedding/embedding_store.h"
#include "koios/sim/similarity.h"

namespace koios::sim {

/// sim(a, b) = max(0, cosine(emb(a), emb(b))); identical tokens score 1
/// even when out-of-vocabulary (Def. 1 requires sim(x, x) = 1, and the
/// paper's OOV handling depends on it).
///
/// `precision` selects the EmbeddingStore tier every entry point reads —
/// kFloat64 (default, exact) or kInt8 (fused dequant-dot over the
/// quantized tier; requires store->Finalize(), silently falls back to
/// float rows otherwise). Pairwise and batched calls read the same tier,
/// so a kInt8 similarity stays self-consistent across the index paths.
class CosineEmbeddingSimilarity : public SimilarityFunction {
 public:
  explicit CosineEmbeddingSimilarity(
      const embedding::EmbeddingStore* store,
      embedding::Precision precision = embedding::Precision::kFloat64)
      : store_(store), precision_(precision) {}

  Score Similarity(TokenId a, TokenId b) const override {
    if (a == b) return 1.0;
    const double c =
        (precision_ == embedding::Precision::kInt8 && store_->quantized())
            ? store_->CosineQuantized(a, b)
            : store_->Cosine(a, b);
    if (c <= 0.0) return 0.0;
    return c > 1.0 ? 1.0 : c;
  }

  /// Batched path: one dense CosineBatch kernel call over the embedding
  /// matrix, then the same clamping as the pairwise overload. ~|targets|
  /// fewer virtual dispatches and row lookups per query token.
  void SimilarityBatch(TokenId q, std::span<const TokenId> targets,
                       std::span<Score> out) const override;

  /// Blocked multi-query path via CosineMultiBatch: each target row is
  /// read once per 4-query block, the main lever behind the batched
  /// cursor-construction speedup.
  void SimilarityBatchMulti(std::span<const TokenId> queries,
                            std::span<const TokenId> targets,
                            std::span<Score> out) const override;

  const embedding::EmbeddingStore& store() const { return *store_; }
  embedding::Precision precision() const { return precision_; }

 private:
  const embedding::EmbeddingStore* store_;
  embedding::Precision precision_;
};

}  // namespace koios::sim

#endif  // KOIOS_SIM_COSINE_SIMILARITY_H_
