#include "koios/sim/lsh_index.h"

#include <algorithm>
#include <cassert>

#include "koios/util/rng.h"

namespace koios::sim {

CosineLshIndex::CosineLshIndex(std::vector<TokenId> vocabulary,
                               const embedding::EmbeddingStore* store,
                               const SimilarityFunction* sim,
                               const LshIndexSpec& spec,
                               util::ThreadPool* pool)
    : BatchedNeighborIndex(sim, pool),
      vocabulary_(std::move(vocabulary)),
      store_(store),
      spec_(spec) {
  assert(spec_.bits_per_table <= 64);
  SortUniqueVocabulary(&vocabulary_);  // bucket lists must come out ascending
  util::Rng rng(spec_.seed);
  const size_t dim = store_->dim();
  hyperplanes_.resize(spec_.num_tables * spec_.bits_per_table);
  for (auto& h : hyperplanes_) {
    h.resize(dim);
    for (auto& x : h) x = static_cast<float>(rng.NextGaussian());
  }
  tables_.resize(spec_.num_tables);
  for (TokenId t : vocabulary_) {
    if (!store_->Has(t)) continue;  // OOV tokens only match identically
    const auto vec = store_->VectorOf(t);
    for (size_t table = 0; table < spec_.num_tables; ++table) {
      tables_[table][SignatureOf(vec, table)].push_back(t);
    }
  }
}

uint64_t CosineLshIndex::SignatureOf(std::span<const float> vec,
                                     size_t table) const {
  uint64_t sig = 0;
  const size_t base = table * spec_.bits_per_table;
  for (size_t bit = 0; bit < spec_.bits_per_table; ++bit) {
    // The vectorized kernel, not a scalar loop: the compiler cannot
    // reorder a scalar double reduction on its own, and signature bits
    // only consume the dot's sign, so kernel-vs-scalar differences
    // (~1e-16 relative) are immaterial.
    const double dot =
        embedding::EmbeddingStore::Dot(hyperplanes_[base + bit], vec);
    sig = (sig << 1) | (dot >= 0.0 ? 1u : 0u);
  }
  return sig;
}

void CosineLshIndex::CollectCandidates(TokenId q,
                                       std::vector<TokenId>* out) const {
  if (!store_->Has(q)) return;  // OOV query token: no neighbors
  const auto vec = store_->VectorOf(q);
  std::vector<const std::vector<TokenId>*> hits;
  hits.reserve(spec_.num_tables);
  for (size_t table = 0; table < spec_.num_tables; ++table) {
    auto it = tables_[table].find(SignatureOf(vec, table));
    if (it != tables_[table].end()) hits.push_back(&it->second);
  }
  UnionBuckets(hits, out);
}

size_t CosineLshIndex::MemoryUsageBytes() const {
  size_t bytes = vocabulary_.capacity() * sizeof(TokenId);
  for (const auto& h : hyperplanes_) bytes += h.capacity() * sizeof(float);
  for (const auto& table : tables_) {
    for (const auto& [_, bucket] : table) {
      bytes += sizeof(uint64_t) + bucket.capacity() * sizeof(TokenId);
    }
  }
  return bytes + BatchedNeighborIndex::MemoryUsageBytes();
}

}  // namespace koios::sim
