#include "koios/sim/lsh_index.h"

#include <algorithm>
#include <cassert>
#include <unordered_set>

#include "koios/util/rng.h"

namespace koios::sim {

CosineLshIndex::CosineLshIndex(std::vector<TokenId> vocabulary,
                               const embedding::EmbeddingStore* store,
                               const SimilarityFunction* sim,
                               const LshIndexSpec& spec)
    : vocabulary_(std::move(vocabulary)), store_(store), sim_(sim), spec_(spec) {
  assert(spec_.bits_per_table <= 64);
  util::Rng rng(spec_.seed);
  const size_t dim = store_->dim();
  hyperplanes_.resize(spec_.num_tables * spec_.bits_per_table);
  for (auto& h : hyperplanes_) {
    h.resize(dim);
    for (auto& x : h) x = static_cast<float>(rng.NextGaussian());
  }
  tables_.resize(spec_.num_tables);
  for (TokenId t : vocabulary_) {
    if (!store_->Has(t)) continue;  // OOV tokens only match identically
    const auto vec = store_->VectorOf(t);
    for (size_t table = 0; table < spec_.num_tables; ++table) {
      tables_[table][SignatureOf(vec, table)].push_back(t);
    }
  }
}

uint64_t CosineLshIndex::SignatureOf(std::span<const float> vec,
                                     size_t table) const {
  uint64_t sig = 0;
  const size_t base = table * spec_.bits_per_table;
  for (size_t bit = 0; bit < spec_.bits_per_table; ++bit) {
    const auto& h = hyperplanes_[base + bit];
    double dot = 0.0;
    for (size_t d = 0; d < vec.size(); ++d) dot += static_cast<double>(h[d]) * vec[d];
    sig = (sig << 1) | (dot >= 0.0 ? 1u : 0u);
  }
  return sig;
}

CosineLshIndex::Cursor CosineLshIndex::BuildCursor(TokenId q, Score alpha) const {
  Cursor cursor;
  cursor.alpha = alpha;
  if (!store_->Has(q)) return cursor;  // OOV query token: no neighbors
  const auto vec = store_->VectorOf(q);
  std::unordered_set<TokenId> candidates;
  for (size_t table = 0; table < spec_.num_tables; ++table) {
    auto it = tables_[table].find(SignatureOf(vec, table));
    if (it == tables_[table].end()) continue;
    candidates.insert(it->second.begin(), it->second.end());
  }
  for (TokenId t : candidates) {
    if (t == q) continue;
    const Score s = sim_->Similarity(q, t);
    if (s >= alpha) cursor.neighbors.push_back({t, s});
  }
  std::sort(cursor.neighbors.begin(), cursor.neighbors.end(),
            [](const Neighbor& a, const Neighbor& b) {
              if (a.sim != b.sim) return a.sim > b.sim;
              return a.token < b.token;
            });
  return cursor;
}

std::optional<Neighbor> CosineLshIndex::NextNeighbor(TokenId q, Score alpha) {
  auto it = cursors_.find(q);
  if (it == cursors_.end() || it->second.alpha != alpha) {
    // Rebuild on α mismatch: a stale cursor would serve neighbors filtered
    // at the old threshold.
    it = cursors_.insert_or_assign(q, BuildCursor(q, alpha)).first;
  }
  Cursor& cursor = it->second;
  if (cursor.next >= cursor.neighbors.size()) return std::nullopt;
  return cursor.neighbors[cursor.next++];
}

void CosineLshIndex::ResetCursors() { cursors_.clear(); }

size_t CosineLshIndex::MemoryUsageBytes() const {
  size_t bytes = vocabulary_.capacity() * sizeof(TokenId);
  for (const auto& h : hyperplanes_) bytes += h.capacity() * sizeof(float);
  for (const auto& table : tables_) {
    for (const auto& [_, bucket] : table) {
      bytes += sizeof(uint64_t) + bucket.capacity() * sizeof(TokenId);
    }
  }
  for (const auto& [_, c] : cursors_) {
    bytes += sizeof(Cursor) + c.neighbors.capacity() * sizeof(Neighbor);
  }
  return bytes;
}

}  // namespace koios::sim
