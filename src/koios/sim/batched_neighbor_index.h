// Shared batched-probe machinery for SimilarityIndex backends. Every
// backend in this repo (exact scan, SimHash LSH, MinHash LSH) reduces to
// the same shape: given a query token, produce a *candidate id batch*
// (the whole vocabulary, or the union of the query's hash buckets), score
// it with ONE SimilarityFunction::SimilarityBatch kernel call, α-filter
// the flat score array, and stream the survivors lazily in non-increasing
// order. This base class owns everything after candidate collection, so
// all three indexes share one cursor implementation and automatically
// honor the batch-API contract (SimilarityBatch[Multi] + Prewarm) that
// PR 1 established for the exact path:
//
//  * One kernel call per query token instead of one virtual call per
//    candidate — dense similarities (cosine over an embedding matrix,
//    optionally int8-quantized) vectorize, everything else falls back to
//    the pairwise loop inside the batch call.
//  * Survivors are ordered LAZILY: the cursor partial-sorts the next chunk
//    (std::nth_element + chunk sort, starting at kSortChunk and doubling)
//    only when consumption reaches it. Short-prefix consumers (the θ-bound
//    usually stops the stream early) pay O(chunk); full drains stay
//    O(m log m) like an eager sort.
//  * Prewarm() builds the cursors of a whole query up front in blocks of
//    kPrewarmBlock through SimilarityBatchMulti (each target row is read
//    once per multi-query block) and fans independent blocks across an
//    optional util::ThreadPool.
//
// CONCURRENCY (the serve subsystem's reentrancy contract): built cursors
// live in a sharded, mutex-protected cache keyed by (token, α) and are
// SHARED across consumers — concurrent queries over the same vocabulary
// reuse each other's cursor builds, with hit/miss counters to prove it.
// A shared cursor's neighbor array is append-frozen at build time; the
// only post-build mutation is the lazy chunk ordering, which extends a
// monotone ordered prefix under a per-cursor mutex and publishes it with
// an atomic, so readers of the ordered prefix never take a lock. What
// CANNOT be shared is consumption position: each consumer advances its
// own per-token position over the shared payload. NewSession() returns a
// per-query view holding exactly that state; the index's own
// NextNeighbor/ResetCursors remain the single-consumer convenience
// interface backed by one internal legacy position table. ResetCursors
// resets POSITIONS only — the shared cursor payloads persist across
// queries (they are deterministic pure functions of (token, α), so
// replaying against a warm cache is bit-identical to a cold one).
//
// MEMORY GOVERNANCE (the long-running-engine contract): the cache grows
// with the distinct (token, α) traffic, which is unbounded over an
// engine's lifetime, so it carries an optional byte budget
// (SetCursorCacheCapacity) accounted through a util::ByteBudget — every
// published payload adds its exact footprint, every evicted/cleared one
// subtracts it. Over-budget shards evict with the CLOCK policy: each
// cache HIT sets the entry's reference bit, the per-shard clock hand
// clears bits on its way round and drops the first unreferenced entry, so
// hot Zipf-head tokens survive and cold tail builds recycle. Eviction
// drops only the CACHE's shared_ptr reference — a session (or the legacy
// position table) holding the payload keeps it alive and keeps streaming
// from it untouched; results therefore stay bit-identical under any
// eviction schedule, bounded-cache probing just pays extra rebuilds
// (counted in `evictions`/`misses`).
#ifndef KOIOS_SIM_BATCHED_NEIGHBOR_INDEX_H_
#define KOIOS_SIM_BATCHED_NEIGHBOR_INDEX_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "koios/sim/similarity.h"
#include "koios/util/memory_tracker.h"

namespace koios::util {
class ThreadPool;
}  // namespace koios::util

namespace koios::sim {

/// Counters of the shared cursor cache (monotone; snapshot accessor).
/// hits/misses count cursor resolutions by ANY consumer (sessions, the
/// legacy single-consumer interface, Prewarm); a hit means a previously
/// built cursor — possibly built by a DIFFERENT query — was reused.
struct CursorCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  /// Concurrent builders raced on the same (token, α): the loser's build
  /// is discarded (the first insert wins so its ordering progress is
  /// kept). Wasted work, bounded by the race window, never a correctness
  /// issue — builds are deterministic.
  uint64_t duplicate_builds = 0;
  /// Payloads the byte budget's CLOCK policy dropped from the cache (the
  /// payloads themselves survive as long as any session still holds them).
  uint64_t evictions = 0;
  /// Currently cached cursors across all shards.
  uint64_t cursors = 0;
  /// Exact bytes of the currently cached payloads (what the budget caps).
  uint64_t bytes = 0;
  /// The configured budget (0 = unbounded).
  uint64_t capacity_bytes = 0;
};

class BatchedNeighborIndex : public SimilarityIndex {
 public:
  std::optional<Neighbor> NextNeighbor(TokenId q, Score alpha) override;

  /// Stop-threshold fast path: when every remaining neighbor of the cursor
  /// is provably below `stop_sim` (bounded by the last consumed neighbor's
  /// similarity, or by the cursor's build-time max before anything was
  /// consumed), the probe reports kWithheld WITHOUT ordering another
  /// chunk — tuples the refinement θlb has ruled out are never
  /// nth_element'd or sorted. The reported bound depends only on this
  /// consumer's own consumption, never on other sessions' ordering
  /// progress, so concurrent queries stay bit-reproducible.
  ProbeOutcome NextNeighborBounded(TokenId q, Score alpha, Score stop_sim,
                                   Neighbor* out) override;

  const SimilarityFunction* similarity() const override { return sim_; }

  /// Resets the single-consumer probe POSITIONS. Shared cursor payloads
  /// stay cached across queries (see the class comment); use
  /// ClearCursorCache() to actually drop them.
  void ResetCursors() override;

  /// Eagerly builds (in parallel when a pool is set) the cursors for every
  /// token in `tokens` that is not already cached at this α. Cursors land
  /// in the shared cache, so one query's (or one SearchMany batch's)
  /// prewarm is every concurrent query's warm start.
  void Prewarm(std::span<const TokenId> tokens, Score alpha) override;

  /// Per-query probe session over the shared cursor cache (see
  /// SimilarityIndex::NewSession). Sessions are cheap (an empty position
  /// table); any number may run concurrently with each other, with
  /// Prewarm, and with the owning index's legacy interface.
  std::unique_ptr<SimilarityIndex> NewSession() override;

  /// Swap the worker pool used by Prewarm (nullptr = serial). The searcher
  /// attaches its per-query pool around TokenStream construction so cursor
  /// builds fan out without the index owning threads. Sessions carry their
  /// own pool pointer, so this setting is only for the legacy interface.
  void set_thread_pool(util::ThreadPool* pool) override { pool_ = pool; }

  util::ThreadPool* thread_pool() const override { return pool_; }

  CursorCacheStats cursor_cache_stats() const;

  /// Caps the shared cursor cache at `bytes` of payload (0 = unbounded,
  /// the default). When a publish pushes the cache over, the CLOCK policy
  /// evicts unreferenced entries (see the class comment) until the budget
  /// holds again — synchronously, so the cache is back under the cap by
  /// the time any PublishCursor returns (concurrent publishers can
  /// transiently overshoot by at most their in-flight payloads). Safe to
  /// call on a live index; a shrink evicts down to the new cap before
  /// returning.
  void SetCursorCacheCapacity(size_t bytes);

  /// Evicts until the cache is within its capacity (no-op when unbounded
  /// or already within). Called automatically after every publish;
  /// exposed for capacity shrinks and tests.
  void EvictToCapacity() const;

  /// Drops every cached cursor (memory pressure / tests). Sessions holding
  /// a cursor keep it alive until they release it; in-flight probes are
  /// unaffected.
  void ClearCursorCache();

  size_t MemoryUsageBytes() const override;

 protected:
  /// `sim`: any symmetric similarity; its batch entry points are the only
  /// way this class scores candidates.
  /// `pool`: optional worker pool used by Prewarm() (nullptr = serial).
  explicit BatchedNeighborIndex(const SimilarityFunction* sim,
                                util::ThreadPool* pool = nullptr);

  /// Append the candidate vocabulary tokens for query `q` to `out`
  /// (`out` arrives empty) as a SORTED, DUPLICATE-FREE list — bucket
  /// backends union their (naturally sorted) bucket lists with
  /// UnionBuckets. `q` itself may be included (the α filter skips it; the
  /// token stream injects self-matches). Called concurrently from pool
  /// workers during Prewarm AND from concurrent sessions' cache misses, so
  /// implementations must be const-thread-safe. Backends with
  /// SharedCandidates() never receive this call; the default asserts that.
  virtual void CollectCandidates(TokenId q, std::vector<TokenId>* out) const;

  /// Sorts + dedupes a vocabulary in place. Bucket backends run this
  /// before building their tables so that bucket lists (filled in
  /// vocabulary iteration order) come out ascending — the invariant
  /// UnionBuckets relies on.
  static void SortUniqueVocabulary(std::vector<TokenId>* vocabulary);

  /// Appends the (ascending) `buckets` to `out` and unions them in place:
  /// pairwise std::inplace_merge rounds, then a dedupe pass — linear-ish,
  /// versus the O(n log n) branchy sort a concatenation would need.
  static void UnionBuckets(
      std::span<const std::vector<TokenId>* const> buckets,
      std::vector<TokenId>* out);

  /// Backends whose candidate list is one fixed set shared by every query
  /// (the exact index scans the whole vocabulary) return it here; the
  /// prewarm block path then feeds it straight to SimilarityBatchMulti
  /// instead of unioning per-query collections. Return nullptr (default)
  /// when candidates are per-query (bucket probes).
  virtual const std::vector<TokenId>* SharedCandidates() const {
    return nullptr;
  }

  const SimilarityFunction* sim() const { return sim_; }

 private:
  class Session;

  // Neighbors ordered in chunks of this size; the common case consumes one
  // chunk or less before the θ-bound stops the stream.
  static constexpr size_t kSortChunk = 64;

  // Query tokens scored per multi-query kernel call during Prewarm. Also
  // the granularity of the thread-pool fan-out.
  static constexpr size_t kPrewarmBlock = 8;

  // Shards of the cursor cache. Sixteen keeps the mutex word count trivial
  // while making same-instant collisions of concurrent queries unlikely.
  static constexpr size_t kCacheShards = 16;

  /// One built cursor, shared by every consumer probing its (token, α).
  /// `neighbors` is append-frozen at build time; the lazy chunk ordering
  /// permutes only [ordered_prefix, end) under `order_mutex` and then
  /// publishes the new prefix length, so [0, ordered_prefix) — the only
  /// part consumers read without the lock — is immutable once observed
  /// through the acquire load.
  struct SharedCursor {
    Score alpha = -1.0;               // threshold the α filter ran at
    std::vector<Neighbor> neighbors;  // >= alpha; [0, ordered_prefix) sorted
    // Largest survivor similarity, set at build time: bounds the whole
    // cursor before anything is consumed (the stop-threshold fast path).
    Score max_sim = 0.0;
    // Exact payload footprint, fixed when the cursor is published (the
    // neighbor array is shrunk to fit at build time, so capacity == size
    // and the accounting matches the allocation).
    size_t bytes = 0;
    // CLOCK reference bit: set by every cache hit, cleared by the passing
    // eviction hand; an entry is only evicted with the bit clear.
    std::atomic<bool> referenced{false};
    std::atomic<size_t> ordered_prefix{0};
    std::mutex order_mutex;
  };
  using CursorPtr = std::shared_ptr<SharedCursor>;

  /// Per-consumer consumption state over a shared cursor.
  struct ProbePos {
    CursorPtr cursor;  // resolved payload (null until first probe)
    size_t next = 0;   // neighbors consumed by THIS consumer
  };
  using PositionMap = std::unordered_map<TokenId, ProbePos>;

  struct CacheKey {
    TokenId token;
    Score alpha;
    bool operator==(const CacheKey& o) const {
      return token == o.token && alpha == o.alpha;
    }
  };
  struct CacheKeyHash {
    size_t operator()(const CacheKey& k) const;
  };
  struct CacheShard {
    mutable std::mutex mutex;
    std::unordered_map<CacheKey, CursorPtr, CacheKeyHash> map;
    // CLOCK ring over this shard's keys in publish order. Evicted (and
    // insert-raced) keys linger until the hand sweeps them out lazily, so
    // publishes stay O(1); `hand` is the next ring slot the policy looks
    // at. Both are guarded by `mutex`.
    std::vector<CacheKey> ring;
    size_t hand = 0;
  };

  /// In-place union of the ascending runs of `ids` delimited by `bounds`.
  static void MergeSortedRuns(std::vector<TokenId>* ids,
                              std::vector<size_t>* bounds);

  /// Extends the shared ordered prefix until it covers `count` neighbors
  /// (or all of them): nth_element partitions the next chunk's members to
  /// the front, then the chunk is sorted with the deterministic tie-break,
  /// so full consumption reproduces the eager full sort exactly. Lock-free
  /// fast path when the prefix already covers `count`.
  static void EnsureOrdered(SharedCursor& cursor, size_t count);

  CacheShard& ShardFor(const CacheKey& key) const;

  /// One CLOCK step over `shard`: sweeps dead ring slots, clears reference
  /// bits, evicts the first unreferenced entry. Returns the bytes freed
  /// (0 when the shard has nothing evictable this pass). Caller holds no
  /// shard lock; the shard's own mutex is taken inside.
  size_t ClockEvictOne(CacheShard& shard) const;

  /// Cache lookup; counts a hit when found. Null on miss (no counter —
  /// callers that go on to build count the miss).
  CursorPtr FindCursor(TokenId q, Score alpha) const;

  /// Publishes a built cursor; on an insert race the FIRST insert wins
  /// (its lazy-ordering progress is kept) and the loser is counted in
  /// duplicate_builds. Returns the cached winner.
  CursorPtr PublishCursor(TokenId q, Score alpha, CursorPtr built) const;

  /// Cache lookup, building (one batched kernel scan + α filter) on a
  /// miss. Safe from any thread.
  CursorPtr CursorFor(TokenId q, Score alpha) const;

  CursorPtr BuildCursor(TokenId q, Score alpha) const;

  /// Batched build of one prewarm block: the block's candidate union is
  /// scored with one SimilarityBatchMulti call, then each query's α filter
  /// runs over its own candidates' rows (a merge walk of two sorted lists,
  /// so no per-candidate lookups).
  std::vector<CursorPtr> BuildCursorBlock(std::span<const TokenId> qs,
                                          Score alpha) const;

  /// Prewarm body shared by the legacy interface and sessions: builds the
  /// (token, α) pairs missing from the shared cache, fanning blocks across
  /// `pool` when given.
  void PrewarmShared(std::span<const TokenId> tokens, Score alpha,
                     util::ThreadPool* pool) const;

  /// Probe bodies shared by the legacy interface and sessions; `positions`
  /// is the calling consumer's private state.
  std::optional<Neighbor> ProbeNext(PositionMap& positions, TokenId q,
                                    Score alpha) const;
  ProbeOutcome ProbeNextBounded(PositionMap& positions, TokenId q, Score alpha,
                                Score stop_sim, Neighbor* out) const;

  const SimilarityFunction* sim_;
  util::ThreadPool* pool_;

  // Shared cursor cache + stats. Mutable: caching is not observable
  // through the probe results (builds are deterministic), and sessions
  // must be able to populate it through a const parent.
  mutable std::array<CacheShard, kCacheShards> shards_;
  mutable std::atomic<uint64_t> hits_{0};
  mutable std::atomic<uint64_t> misses_{0};
  mutable std::atomic<uint64_t> duplicate_builds_{0};

  // Byte budget of the cached payloads (exact: credited at publish,
  // debited at evict/clear) and the CLOCK eviction state. evict_shard_
  // round-robins the shard the next eviction step works on, so pressure
  // spreads instead of draining one shard.
  mutable util::ByteBudget cache_bytes_;
  mutable std::atomic<uint64_t> evictions_{0};
  mutable std::atomic<size_t> evict_shard_{0};

  // Consumption state of the legacy single-consumer interface.
  PositionMap legacy_positions_;
};

}  // namespace koios::sim

#endif  // KOIOS_SIM_BATCHED_NEIGHBOR_INDEX_H_
