// Shared batched-probe machinery for SimilarityIndex backends. Every
// backend in this repo (exact scan, SimHash LSH, MinHash LSH) reduces to
// the same shape: given a query token, produce a *candidate id batch*
// (the whole vocabulary, or the union of the query's hash buckets), score
// it with ONE SimilarityFunction::SimilarityBatch kernel call, α-filter
// the flat score array, and stream the survivors lazily in non-increasing
// order. This base class owns everything after candidate collection, so
// all three indexes share one cursor implementation and automatically
// honor the batch-API contract (SimilarityBatch[Multi] + Prewarm) that
// PR 1 established for the exact path:
//
//  * One kernel call per query token instead of one virtual call per
//    candidate — dense similarities (cosine over an embedding matrix,
//    optionally int8-quantized) vectorize, everything else falls back to
//    the pairwise loop inside the batch call.
//  * Survivors are ordered LAZILY: the cursor partial-sorts the next chunk
//    (std::nth_element + chunk sort, starting at kSortChunk and doubling)
//    only when consumption reaches it. Short-prefix consumers (the θ-bound
//    usually stops the stream early) pay O(chunk); full drains stay
//    O(m log m) like an eager sort.
//  * Prewarm() builds the cursors of a whole query up front in blocks of
//    kPrewarmBlock through SimilarityBatchMulti (each target row is read
//    once per multi-query block) and fans independent blocks across an
//    optional util::ThreadPool.
//
// Thread-safety: Prewarm() may build cursors on pool workers internally,
// but the public interface is single-consumer — NextNeighbor/ResetCursors/
// Prewarm must not be called concurrently with each other.
#ifndef KOIOS_SIM_BATCHED_NEIGHBOR_INDEX_H_
#define KOIOS_SIM_BATCHED_NEIGHBOR_INDEX_H_

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "koios/sim/similarity.h"

namespace koios::util {
class ThreadPool;
}  // namespace koios::util

namespace koios::sim {

class BatchedNeighborIndex : public SimilarityIndex {
 public:
  std::optional<Neighbor> NextNeighbor(TokenId q, Score alpha) override;

  /// Stop-threshold fast path: when every remaining neighbor of the cursor
  /// is provably below `stop_sim` (the unsorted tail is bounded by the last
  /// ordered chunk's minimum, or by the cursor's max for a fresh cursor),
  /// the probe reports kWithheld WITHOUT ordering another chunk — tuples
  /// the refinement θlb has ruled out are never nth_element'd or sorted.
  ProbeOutcome NextNeighborBounded(TokenId q, Score alpha, Score stop_sim,
                                   Neighbor* out) override;

  const SimilarityFunction* similarity() const override { return sim_; }

  void ResetCursors() override;

  /// Eagerly builds (in parallel when a pool is set) the cursors for every
  /// token in `tokens` that is not already cached at this α.
  void Prewarm(std::span<const TokenId> tokens, Score alpha) override;

  /// Swap the worker pool used by Prewarm (nullptr = serial). The searcher
  /// attaches its per-query pool around TokenStream construction so cursor
  /// builds fan out without the index owning threads.
  void set_thread_pool(util::ThreadPool* pool) override { pool_ = pool; }

  util::ThreadPool* thread_pool() const override { return pool_; }

  size_t MemoryUsageBytes() const override;

 protected:
  /// `sim`: any symmetric similarity; its batch entry points are the only
  /// way this class scores candidates.
  /// `pool`: optional worker pool used by Prewarm() (nullptr = serial).
  explicit BatchedNeighborIndex(const SimilarityFunction* sim,
                                util::ThreadPool* pool = nullptr);

  /// Append the candidate vocabulary tokens for query `q` to `out`
  /// (`out` arrives empty) as a SORTED, DUPLICATE-FREE list — bucket
  /// backends union their (naturally sorted) bucket lists with
  /// UnionBuckets. `q` itself may be included (the α filter skips it; the
  /// token stream injects self-matches). Called concurrently from pool
  /// workers during Prewarm, so implementations must be const-thread-safe.
  /// Backends with SharedCandidates() never receive this call; the
  /// default asserts that.
  virtual void CollectCandidates(TokenId q, std::vector<TokenId>* out) const;

  /// Sorts + dedupes a vocabulary in place. Bucket backends run this
  /// before building their tables so that bucket lists (filled in
  /// vocabulary iteration order) come out ascending — the invariant
  /// UnionBuckets relies on.
  static void SortUniqueVocabulary(std::vector<TokenId>* vocabulary);

  /// Appends the (ascending) `buckets` to `out` and unions them in place:
  /// pairwise std::inplace_merge rounds, then a dedupe pass — linear-ish,
  /// versus the O(n log n) branchy sort a concatenation would need.
  static void UnionBuckets(
      std::span<const std::vector<TokenId>* const> buckets,
      std::vector<TokenId>* out);

  /// Backends whose candidate list is one fixed set shared by every query
  /// (the exact index scans the whole vocabulary) return it here; the
  /// prewarm block path then feeds it straight to SimilarityBatchMulti
  /// instead of unioning per-query collections. Return nullptr (default)
  /// when candidates are per-query (bucket probes).
  virtual const std::vector<TokenId>* SharedCandidates() const {
    return nullptr;
  }

  const SimilarityFunction* sim() const { return sim_; }

 private:
  // Neighbors ordered in chunks of this size; the common case consumes one
  // chunk or less before the θ-bound stops the stream.
  static constexpr size_t kSortChunk = 64;

  // Query tokens scored per multi-query kernel call during Prewarm. Also
  // the granularity of the thread-pool fan-out.
  static constexpr size_t kPrewarmBlock = 8;

  struct Cursor {
    Score alpha = -1.0;               // threshold the α filter ran at
    std::vector<Neighbor> neighbors;  // >= alpha; [0, sorted_prefix) ordered
    size_t next = 0;
    size_t sorted_prefix = 0;
    // Largest survivor similarity, set at build time: bounds the whole
    // cursor before any chunk is ordered (the stop-threshold fast path).
    Score max_sim = 0.0;
  };

  /// In-place union of the ascending runs of `ids` delimited by `bounds`.
  static void MergeSortedRuns(std::vector<TokenId>* ids,
                              std::vector<size_t>* bounds);

  /// Records the cursor's max survivor similarity (one linear pass).
  static void FinalizeCursor(Cursor* cursor);

  /// Returns the cursor for `q` at `alpha`, building it on a cache miss or
  /// an α mismatch.
  Cursor& CursorFor(TokenId q, Score alpha);

  Cursor BuildCursor(TokenId q, Score alpha) const;

  /// Batched build of one prewarm block: the block's candidate union is
  /// scored with one SimilarityBatchMulti call, then each query's α filter
  /// runs over its own candidates' rows (a merge walk of two sorted lists,
  /// so no per-candidate lookups).
  std::vector<Cursor> BuildCursorBlock(std::span<const TokenId> qs,
                                       Score alpha) const;

  /// Extends the ordered prefix until it covers `count` neighbors (or all
  /// of them): nth_element partitions the next chunk's members to the
  /// front, then the chunk is sorted with the deterministic tie-break, so
  /// full consumption reproduces the eager full sort exactly.
  static void EnsureOrdered(Cursor& cursor, size_t count);

  const SimilarityFunction* sim_;
  util::ThreadPool* pool_;
  std::unordered_map<TokenId, Cursor> cursors_;
};

}  // namespace koios::sim

#endif  // KOIOS_SIM_BATCHED_NEIGHBOR_INDEX_H_
