// Exact streaming nearest-neighbor index over the repository vocabulary.
// Plays the role of the Faiss index in the paper (§VIII-A3): given a query
// token, it yields vocabulary tokens in non-increasing similarity order,
// stopping below α. Being exact, it preserves Koios' exactness guarantee
// ("Koios returns an exact solution as long as the index returns exact
// results", §VIII-E).
//
// Neighbor generation is a batched kernel, not a pairwise loop:
//  * One SimilarityBatch call scans the whole vocabulary per query token
//    (vectorized dense cosine for embeddings, pairwise fallback otherwise),
//    then the α filter runs over the flat score array.
//  * Surviving neighbors are ordered LAZILY: the cursor partial-sorts the
//    next chunk (std::nth_element + chunk sort, starting at kSortChunk and
//    doubling) only when consumption reaches it, instead of eagerly
//    sorting everything ≥ α. Short-prefix consumers pay O(chunk); full
//    drains stay O(m log m) like the eager sort.
//  * Cursor construction for independent tokens fans out across an
//    optional util::ThreadPool via Prewarm(), which the token stream calls
//    at construction so probes never block on a cold cursor.
#ifndef KOIOS_SIM_EXACT_KNN_INDEX_H_
#define KOIOS_SIM_EXACT_KNN_INDEX_H_

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "koios/sim/similarity.h"

namespace koios::util {
class ThreadPool;
}  // namespace koios::util

namespace koios::sim {

class ExactKnnIndex : public SimilarityIndex {
 public:
  /// `vocabulary`: the distinct tokens of the repository `D`.
  /// `sim`: any symmetric similarity function (cosine, q-gram Jaccard, ...).
  /// `pool`: optional worker pool used by Prewarm() to build cursors for
  ///         distinct query tokens concurrently; nullptr builds serially.
  ExactKnnIndex(std::vector<TokenId> vocabulary, const SimilarityFunction* sim,
                util::ThreadPool* pool = nullptr);

  std::optional<Neighbor> NextNeighbor(TokenId q, Score alpha) override;

  void ResetCursors() override;

  /// Eagerly builds (in parallel when a pool is set) the cursors for every
  /// token in `tokens` that is not already cached at this α.
  void Prewarm(std::span<const TokenId> tokens, Score alpha) override;

  /// Swap the worker pool used by Prewarm (nullptr = serial).
  void set_thread_pool(util::ThreadPool* pool) { pool_ = pool; }

  size_t vocabulary_size() const { return vocabulary_.size(); }

  size_t MemoryUsageBytes() const override;

 private:
  // Neighbors ordered in chunks of this size; the common case consumes one
  // chunk or less before the θ-bound stops the stream.
  static constexpr size_t kSortChunk = 64;

  // Query tokens scored per multi-query kernel call during Prewarm. Also
  // the granularity of the thread-pool fan-out.
  static constexpr size_t kPrewarmBlock = 8;

  struct Cursor {
    Score alpha = -1.0;               // threshold the α filter ran at
    std::vector<Neighbor> neighbors;  // >= alpha; [0, sorted_prefix) ordered
    size_t next = 0;
    size_t sorted_prefix = 0;
  };

  Cursor BuildCursor(TokenId q, Score alpha) const;

  /// Batched build of one prewarm block via SimilarityBatchMulti.
  std::vector<Cursor> BuildCursorBlock(std::span<const TokenId> qs,
                                       Score alpha) const;

  /// Extends the ordered prefix until it covers `count` neighbors (or all
  /// of them): nth_element partitions the next chunk's members to the
  /// front, then the chunk is sorted with the deterministic tie-break, so
  /// full consumption reproduces the eager full sort exactly.
  static void EnsureOrdered(Cursor& cursor, size_t count);

  std::vector<TokenId> vocabulary_;
  const SimilarityFunction* sim_;
  util::ThreadPool* pool_;
  std::unordered_map<TokenId, Cursor> cursors_;
};

}  // namespace koios::sim

#endif  // KOIOS_SIM_EXACT_KNN_INDEX_H_
