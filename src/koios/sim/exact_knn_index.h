// Exact streaming nearest-neighbor index over the repository vocabulary.
// Plays the role of the Faiss index in the paper (§VIII-A3): given a query
// token, it yields vocabulary tokens in non-increasing similarity order,
// stopping below α. Being exact, it preserves Koios' exactness guarantee
// ("Koios returns an exact solution as long as the index returns exact
// results", §VIII-E).
//
// All probing machinery (batched kernel scan, α filter, lazy chunked
// ordering, α-keyed cursor cache, pooled Prewarm) lives in
// BatchedNeighborIndex; this class only defines the candidate set, which
// for the exact index is the ENTIRE vocabulary — shared by every query, so
// the prewarm block path feeds it straight to SimilarityBatchMulti.
//
// Thread-safety: single consumer (see SimilarityIndex); Prewarm fans
// cursor builds across the attached util::ThreadPool internally.
#ifndef KOIOS_SIM_EXACT_KNN_INDEX_H_
#define KOIOS_SIM_EXACT_KNN_INDEX_H_

#include <cstddef>
#include <vector>

#include "koios/sim/batched_neighbor_index.h"

namespace koios::sim {

class ExactKnnIndex : public BatchedNeighborIndex {
 public:
  /// `vocabulary`: the distinct tokens of the repository `D`.
  /// `sim`: any symmetric similarity function (cosine, q-gram Jaccard, ...).
  /// `pool`: optional worker pool used by Prewarm() to build cursors for
  ///         distinct query tokens concurrently; nullptr builds serially.
  ExactKnnIndex(std::vector<TokenId> vocabulary, const SimilarityFunction* sim,
                util::ThreadPool* pool = nullptr);

  size_t vocabulary_size() const { return vocabulary_.size(); }

  /// Exact full-vocabulary scan: safe for the stream-feedback loop's
  /// on-demand matrix completion (see SimilarityIndex::exact_neighbors).
  bool exact_neighbors() const override { return true; }

  size_t MemoryUsageBytes() const override;

 protected:
  /// Every query scans the same full vocabulary (so the base never calls
  /// CollectCandidates).
  const std::vector<TokenId>* SharedCandidates() const override {
    return &vocabulary_;
  }

 private:
  std::vector<TokenId> vocabulary_;
};

}  // namespace koios::sim

#endif  // KOIOS_SIM_EXACT_KNN_INDEX_H_
