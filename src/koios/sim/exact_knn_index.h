// Exact streaming nearest-neighbor index over the repository vocabulary.
// Plays the role of the Faiss index in the paper (§VIII-A3): given a query
// token, it yields vocabulary tokens in non-increasing similarity order,
// stopping below α. Being exact, it preserves Koios' exactness guarantee
// ("Koios returns an exact solution as long as the index returns exact
// results", §VIII-E).
//
// Neighbor lists are materialized lazily per query token on first probe
// (one brute-force pass over the vocabulary, like a batched Faiss query)
// and then served incrementally.
#ifndef KOIOS_SIM_EXACT_KNN_INDEX_H_
#define KOIOS_SIM_EXACT_KNN_INDEX_H_

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "koios/sim/similarity.h"

namespace koios::sim {

class ExactKnnIndex : public SimilarityIndex {
 public:
  /// `vocabulary`: the distinct tokens of the repository `D`.
  /// `sim`: any symmetric similarity function (cosine, q-gram Jaccard, ...).
  ExactKnnIndex(std::vector<TokenId> vocabulary, const SimilarityFunction* sim);

  std::optional<Neighbor> NextNeighbor(TokenId q, Score alpha) override;

  void ResetCursors() override;

  size_t vocabulary_size() const { return vocabulary_.size(); }

  size_t MemoryUsageBytes() const override;

 private:
  struct Cursor {
    std::vector<Neighbor> neighbors;  // descending similarity, >= alpha
    size_t next = 0;
  };

  Cursor BuildCursor(TokenId q, Score alpha) const;

  std::vector<TokenId> vocabulary_;
  const SimilarityFunction* sim_;
  std::unordered_map<TokenId, Cursor> cursors_;
};

}  // namespace koios::sim

#endif  // KOIOS_SIM_EXACT_KNN_INDEX_H_
