#include "koios/sim/similarity.h"

// Interface-only translation unit.
