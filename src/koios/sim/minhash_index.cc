#include "koios/sim/minhash_index.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "koios/util/rng.h"

namespace koios::sim {

namespace {

// FNV-1a 64-bit, mixed with a per-row seed — a cheap keyed hash standing in
// for a random permutation of the gram universe.
uint64_t HashGram(const std::string& gram, uint64_t seed) {
  uint64_t h = 14695981039346656037ull ^ seed;
  for (unsigned char c : gram) {
    h ^= c;
    h *= 1099511628211ull;
  }
  h ^= h >> 33;
  h *= 0xFF51AFD7ED558CCDull;
  h ^= h >> 33;
  return h;
}

}  // namespace

MinHashIndex::MinHashIndex(std::vector<TokenId> vocabulary,
                           const JaccardQGramSimilarity* sim,
                           const MinHashIndexSpec& spec,
                           util::ThreadPool* pool)
    : BatchedNeighborIndex(sim, pool),
      vocabulary_(std::move(vocabulary)),
      jaccard_(sim),
      spec_(spec) {
  SortUniqueVocabulary(&vocabulary_);  // bucket lists must come out ascending
  util::Rng rng(spec_.seed);
  const size_t rows = spec_.num_bands * spec_.rows_per_band;
  hash_seeds_.resize(rows);
  for (auto& s : hash_seeds_) s = rng.NextUint64();

  bands_.resize(spec_.num_bands);
  for (TokenId t : vocabulary_) {
    const auto signature = SignatureOf(jaccard_->GramsOf(t));
    for (size_t band = 0; band < spec_.num_bands; ++band) {
      bands_[band][BandKey(signature, band)].push_back(t);
    }
  }
}

std::vector<uint64_t> MinHashIndex::SignatureOf(
    const std::vector<std::string>& grams) const {
  std::vector<uint64_t> signature(hash_seeds_.size(),
                                  std::numeric_limits<uint64_t>::max());
  for (const auto& gram : grams) {
    for (size_t row = 0; row < hash_seeds_.size(); ++row) {
      signature[row] = std::min(signature[row], HashGram(gram, hash_seeds_[row]));
    }
  }
  return signature;
}

uint64_t MinHashIndex::BandKey(const std::vector<uint64_t>& signature,
                               size_t band) const {
  uint64_t key = 0xCBF29CE484222325ull + band;
  for (size_t r = 0; r < spec_.rows_per_band; ++r) {
    key ^= signature[band * spec_.rows_per_band + r] + 0x9E3779B97F4A7C15ull +
           (key << 6) + (key >> 2);
  }
  return key;
}

void MinHashIndex::CollectCandidates(TokenId q,
                                     std::vector<TokenId>* out) const {
  const auto signature = SignatureOf(jaccard_->GramsOf(q));
  std::vector<const std::vector<TokenId>*> hits;
  hits.reserve(spec_.num_bands);
  for (size_t band = 0; band < spec_.num_bands; ++band) {
    auto it = bands_[band].find(BandKey(signature, band));
    if (it != bands_[band].end()) hits.push_back(&it->second);
  }
  UnionBuckets(hits, out);
}

double MinHashIndex::CollisionProbability(double j) const {
  return 1.0 - std::pow(1.0 - std::pow(j, static_cast<double>(spec_.rows_per_band)),
                        static_cast<double>(spec_.num_bands));
}

size_t MinHashIndex::MemoryUsageBytes() const {
  size_t bytes = vocabulary_.capacity() * sizeof(TokenId) +
                 hash_seeds_.capacity() * sizeof(uint64_t);
  for (const auto& band : bands_) {
    for (const auto& [_, bucket] : band) {
      bytes += sizeof(uint64_t) + bucket.capacity() * sizeof(TokenId);
    }
  }
  return bytes + BatchedNeighborIndex::MemoryUsageBytes();
}

}  // namespace koios::sim
