#include "koios/sim/token_stream.h"

#include <cassert>
#include <utility>

namespace koios::sim {

TokenStream::TokenStream(std::vector<TokenId> query, SimilarityIndex* index,
                         Score alpha,
                         std::function<bool(TokenId)> in_vocabulary)
    : query_(std::move(query)), index_(index), alpha_(alpha) {
  assert(alpha_ > 0.0);
  index_->ResetCursors();
  // Build every query element's cursor up front (indexes with a thread
  // pool fan the builds out — cursors are independent) so the heap refills
  // below never block on a cold cursor.
  index_->Prewarm(query_, alpha_);
  // Initial fill: each query element contributes its best tuple. The
  // self-match (sim 1.0) always sorts first for its element, so it is the
  // element's initial heap entry whenever the token occurs in D; otherwise
  // the first index neighbor is used.
  for (uint32_t pos = 0; pos < query_.size(); ++pos) {
    if (in_vocabulary && in_vocabulary(query_[pos])) {
      heap_.push(Entry{1.0, pos, query_[pos]});
    } else {
      Refill(pos);
    }
  }
}

void TokenStream::Refill(uint32_t pos, Score stop_sim) {
  sim::Neighbor neighbor;
  switch (index_->NextNeighborBounded(query_[pos], alpha_, stop_sim,
                                      &neighbor)) {
    case ProbeOutcome::kNeighbor:
      heap_.push(Entry{neighbor.sim, pos, neighbor.token});
      break;
    case ProbeOutcome::kWithheld:
      // The element's remaining neighbors are all <= neighbor.sim < stop;
      // they are never produced, so the bound feeds the stream's slack.
      stopped_ = true;
      stop_sim_ = std::max(stop_sim_, neighbor.sim);
      break;
    case ProbeOutcome::kExhausted:
      break;
  }
}

std::optional<StreamTuple> TokenStream::Next(Score stop_sim) {
  if (heap_.empty()) return std::nullopt;
  const Entry top = heap_.top();
  if (stop_sim > 0.0 && top.sim < stop_sim) {
    // Every buffered entry and every cursor tail is <= top.sim: stopping
    // here leaves no unseen pair above top.sim, which becomes the slack
    // consumers carry in their final upper bounds.
    stopped_ = true;
    stop_sim_ = std::max(stop_sim_, top.sim);
    return std::nullopt;
  }
  heap_.pop();
  // Only the popped element's stream advanced; all other elements' best
  // unseen neighbors are still buffered (paper §IV).
  Refill(top.query_pos, stop_sim);
  ++emitted_;
  return StreamTuple{top.query_pos, query_[top.query_pos], top.token, top.sim};
}

size_t TokenStream::MemoryUsageBytes() const {
  return query_.capacity() * sizeof(TokenId) + heap_.size() * sizeof(Entry);
}

}  // namespace koios::sim
