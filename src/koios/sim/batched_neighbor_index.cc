#include "koios/sim/batched_neighbor_index.h"

#include <algorithm>
#include <cassert>
#include <future>
#include <utility>

#include "koios/util/thread_pool.h"

namespace koios::sim {

namespace {

// Descending similarity, token id as the deterministic tie-break. The lazy
// chunked ordering and an eager full sort agree because this comparator is
// a strict total order.
inline bool NeighborBefore(const Neighbor& a, const Neighbor& b) {
  if (a.sim != b.sim) return a.sim > b.sim;
  return a.token < b.token;
}

}  // namespace

void BatchedNeighborIndex::CollectCandidates(TokenId q,
                                             std::vector<TokenId>* out) const {
  (void)q;
  (void)out;
  // Only reachable for backends without a shared candidate list; those
  // must override this.
  assert(SharedCandidates() == nullptr &&
         "shared-candidate backends never collect per query");
  assert(false && "CollectCandidates not implemented");
}

void BatchedNeighborIndex::SortUniqueVocabulary(
    std::vector<TokenId>* vocabulary) {
  std::sort(vocabulary->begin(), vocabulary->end());
  vocabulary->erase(std::unique(vocabulary->begin(), vocabulary->end()),
                    vocabulary->end());
}

void BatchedNeighborIndex::UnionBuckets(
    std::span<const std::vector<TokenId>* const> buckets,
    std::vector<TokenId>* out) {
  std::vector<size_t> bounds{out->size()};
  for (const std::vector<TokenId>* bucket : buckets) {
    out->insert(out->end(), bucket->begin(), bucket->end());
    bounds.push_back(out->size());
  }
  MergeSortedRuns(out, &bounds);
}

void BatchedNeighborIndex::MergeSortedRuns(std::vector<TokenId>* ids,
                                           std::vector<size_t>* bounds) {
  std::vector<size_t>& b = *bounds;
  while (b.size() > 2) {
    size_t w = 1;
    size_t i = 0;
    for (; i + 2 < b.size(); i += 2) {
      std::inplace_merge(ids->begin() + static_cast<ptrdiff_t>(b[i]),
                         ids->begin() + static_cast<ptrdiff_t>(b[i + 1]),
                         ids->begin() + static_cast<ptrdiff_t>(b[i + 2]));
      b[w++] = b[i + 2];
    }
    if (i + 1 < b.size()) b[w++] = b[i + 1];  // odd run carries over
    b.resize(w);
  }
  ids->erase(std::unique(ids->begin(), ids->end()), ids->end());
}

BatchedNeighborIndex::BatchedNeighborIndex(const SimilarityFunction* sim,
                                           util::ThreadPool* pool)
    : sim_(sim), pool_(pool) {}

void BatchedNeighborIndex::FinalizeCursor(Cursor* cursor) {
  Score max_sim = 0.0;
  for (const Neighbor& n : cursor->neighbors) max_sim = std::max(max_sim, n.sim);
  cursor->max_sim = max_sim;
}

BatchedNeighborIndex::Cursor BatchedNeighborIndex::BuildCursor(
    TokenId q, Score alpha) const {
  Cursor cursor;
  cursor.alpha = alpha;
  // thread_local scratch: Prewarm runs builds concurrently on pool workers.
  thread_local std::vector<TokenId> collected;
  const std::vector<TokenId>* candidates = SharedCandidates();
  if (candidates == nullptr) {
    collected.clear();
    CollectCandidates(q, &collected);
    assert(std::is_sorted(collected.begin(), collected.end()));
    candidates = &collected;
  }
  if (candidates->empty()) return cursor;
  // One batched scan of the candidates, then the α filter over the flat
  // score array.
  thread_local std::vector<Score> scores;
  scores.resize(candidates->size());
  sim_->SimilarityBatch(q, *candidates, scores);
  for (size_t i = 0; i < candidates->size(); ++i) {
    const TokenId t = (*candidates)[i];
    if (t == q) continue;  // self-matches are injected by the token stream
    if (scores[i] >= alpha) cursor.neighbors.push_back({t, scores[i]});
  }
  FinalizeCursor(&cursor);
  return cursor;
}

std::vector<BatchedNeighborIndex::Cursor> BatchedNeighborIndex::BuildCursorBlock(
    std::span<const TokenId> qs, Score alpha) const {
  std::vector<Cursor> cursors(qs.size());
  for (Cursor& c : cursors) c.alpha = alpha;

  // Resolve the block's target list: the shared candidate set when the
  // backend has one, otherwise the sorted union of each query's candidates
  // (bucket probes of SIMILAR query tokens overlap heavily, so the union
  // amortizes the multi-query kernel's row reads across the block).
  const std::vector<TokenId>* shared = SharedCandidates();
  std::vector<std::vector<TokenId>> per_query;
  std::vector<TokenId> target_union;
  const std::vector<TokenId>* targets = shared;
  if (shared == nullptr) {
    per_query.resize(qs.size());
    size_t total = 0;
    std::vector<size_t> bounds{0};
    for (size_t qi = 0; qi < qs.size(); ++qi) {
      CollectCandidates(qs[qi], &per_query[qi]);
      total += per_query[qi].size();
      target_union.insert(target_union.end(), per_query[qi].begin(),
                          per_query[qi].end());
      bounds.push_back(target_union.size());
    }
    MergeSortedRuns(&target_union, &bounds);
    // When the block's buckets barely overlap (unrelated query tokens),
    // the union kernel would score |union| rows for every query — mostly
    // rows outside that query's buckets. Scoring each query's own batch is
    // then strictly less work; the multi-query union only wins when the
    // row reads it amortizes actually repeat across queries.
    if (target_union.size() * qs.size() > 2 * total) {
      thread_local std::vector<Score> scores;
      for (size_t qi = 0; qi < qs.size(); ++qi) {
        const std::vector<TokenId>& cand = per_query[qi];
        if (cand.empty()) continue;
        scores.resize(cand.size());
        sim_->SimilarityBatch(qs[qi], cand, scores);
        Cursor& cursor = cursors[qi];
        for (size_t i = 0; i < cand.size(); ++i) {
          if (cand[i] == qs[qi]) continue;
          if (scores[i] >= alpha) cursor.neighbors.push_back({cand[i], scores[i]});
        }
        FinalizeCursor(&cursor);
      }
      return cursors;
    }
    targets = &target_union;
  }
  if (targets->empty()) return cursors;

  // One multi-query kernel call scores the whole block against the targets
  // (each target row read once per multi-query sub-block).
  thread_local std::vector<Score> scores;
  scores.resize(qs.size() * targets->size());
  sim_->SimilarityBatchMulti(qs, *targets, scores);

  for (size_t qi = 0; qi < qs.size(); ++qi) {
    Cursor& cursor = cursors[qi];
    const Score* row = scores.data() + qi * targets->size();
    if (shared != nullptr) {
      for (size_t i = 0; i < targets->size(); ++i) {
        const TokenId t = (*targets)[i];
        if (t == qs[qi]) continue;  // self-matches come from the token stream
        if (row[i] >= alpha) cursor.neighbors.push_back({t, row[i]});
      }
    } else {
      // Merge walk: both lists are sorted and per_query[qi] ⊆ targets, so
      // each candidate's score index is found by advancing one pointer.
      size_t ti = 0;
      for (const TokenId t : per_query[qi]) {
        while ((*targets)[ti] < t) ++ti;
        if (t == qs[qi]) continue;
        if (row[ti] >= alpha) cursor.neighbors.push_back({t, row[ti]});
      }
    }
    FinalizeCursor(&cursor);
  }
  return cursors;
}

void BatchedNeighborIndex::EnsureOrdered(Cursor& cursor, size_t count) {
  const size_t wanted = std::min(count, cursor.neighbors.size());
  while (cursor.sorted_prefix < wanted) {
    // Chunks double as consumption deepens: nth_element costs O(remaining)
    // per round, so a flat chunk would make a full drain (the EdgeCache
    // materializes the whole stream today) quadratic. Doubling keeps short
    // prefixes cheap and bounds full consumption at O(m log m), matching
    // the eager sort this replaced.
    const size_t chunk = std::max(kSortChunk, cursor.sorted_prefix);
    const size_t chunk_end =
        std::min(cursor.sorted_prefix + chunk, cursor.neighbors.size());
    const auto first = cursor.neighbors.begin() +
                       static_cast<ptrdiff_t>(cursor.sorted_prefix);
    const auto nth =
        cursor.neighbors.begin() + static_cast<ptrdiff_t>(chunk_end - 1);
    // Partition the next chunk's members in front of everything ranked
    // after them, then order the chunk itself.
    std::nth_element(first, nth, cursor.neighbors.end(), NeighborBefore);
    std::sort(first, nth + 1, NeighborBefore);
    cursor.sorted_prefix = chunk_end;
  }
}

BatchedNeighborIndex::Cursor& BatchedNeighborIndex::CursorFor(TokenId q,
                                                              Score alpha) {
  auto it = cursors_.find(q);
  if (it == cursors_.end() || it->second.alpha != alpha) {
    // Cache miss, or a cursor filtered at a different α (a stale cursor
    // would silently serve neighbors pruned at the old threshold).
    it = cursors_.insert_or_assign(q, BuildCursor(q, alpha)).first;
  }
  return it->second;
}

std::optional<Neighbor> BatchedNeighborIndex::NextNeighbor(TokenId q,
                                                           Score alpha) {
  Cursor& cursor = CursorFor(q, alpha);
  if (cursor.next >= cursor.neighbors.size()) return std::nullopt;
  EnsureOrdered(cursor, cursor.next + 1);
  return cursor.neighbors[cursor.next++];
}

ProbeOutcome BatchedNeighborIndex::NextNeighborBounded(TokenId q, Score alpha,
                                                       Score stop_sim,
                                                       Neighbor* out) {
  Cursor& cursor = CursorFor(q, alpha);
  if (cursor.next >= cursor.neighbors.size()) return ProbeOutcome::kExhausted;
  if (stop_sim > 0.0) {
    // Upper bound on the next (and thus every remaining) neighbor without
    // ordering anything: the exact value when it is already ordered; the
    // last ordered chunk's minimum (nth_element left the tail ranked after
    // it); the build-time max for a cursor no chunk of which was ordered.
    const Score bound =
        cursor.next < cursor.sorted_prefix ? cursor.neighbors[cursor.next].sim
        : cursor.sorted_prefix > 0 ? cursor.neighbors[cursor.sorted_prefix - 1].sim
                                   : cursor.max_sim;
    if (bound < stop_sim) {
      *out = {kInvalidToken, bound};
      return ProbeOutcome::kWithheld;
    }
  }
  EnsureOrdered(cursor, cursor.next + 1);
  const Neighbor& next = cursor.neighbors[cursor.next];
  if (next.sim < stop_sim) {
    // Ordered but below the threshold; leave it unconsumed (callers only
    // ever raise stop_sim, so it will never be requested again).
    *out = {kInvalidToken, next.sim};
    return ProbeOutcome::kWithheld;
  }
  *out = next;
  ++cursor.next;
  return ProbeOutcome::kNeighbor;
}

void BatchedNeighborIndex::Prewarm(std::span<const TokenId> tokens,
                                   Score alpha) {
  std::vector<TokenId> missing;
  missing.reserve(tokens.size());
  for (TokenId t : tokens) {
    auto it = cursors_.find(t);
    if (it == cursors_.end() || it->second.alpha != alpha) missing.push_back(t);
  }
  std::sort(missing.begin(), missing.end());
  missing.erase(std::unique(missing.begin(), missing.end()), missing.end());
  if (missing.empty()) return;

  const std::span<const TokenId> all(missing);
  if (pool_ != nullptr && missing.size() > kPrewarmBlock) {
    // Fan blocks out across the pool; cursors are independent, so the only
    // serial part is inserting the finished blocks into the map.
    std::vector<std::future<std::vector<Cursor>>> futures;
    for (size_t b = 0; b < missing.size(); b += kPrewarmBlock) {
      const auto block = all.subspan(b, std::min(kPrewarmBlock,
                                                 missing.size() - b));
      futures.push_back(pool_->Submit(
          [this, block, alpha] { return BuildCursorBlock(block, alpha); }));
    }
    size_t b = 0;
    for (auto& f : futures) {
      for (Cursor& c : f.get()) {
        cursors_.insert_or_assign(missing[b++], std::move(c));
      }
    }
  } else {
    for (size_t b = 0; b < missing.size(); b += kPrewarmBlock) {
      const auto block = all.subspan(b, std::min(kPrewarmBlock,
                                                 missing.size() - b));
      std::vector<Cursor> built = BuildCursorBlock(block, alpha);
      for (size_t i = 0; i < block.size(); ++i) {
        cursors_.insert_or_assign(block[i], std::move(built[i]));
      }
    }
  }
}

void BatchedNeighborIndex::ResetCursors() { cursors_.clear(); }

size_t BatchedNeighborIndex::MemoryUsageBytes() const {
  size_t bytes = 0;
  for (const auto& [_, c] : cursors_) {
    bytes += sizeof(Cursor) + c.neighbors.capacity() * sizeof(Neighbor);
  }
  return bytes;
}

}  // namespace koios::sim
