#include "koios/sim/batched_neighbor_index.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <future>
#include <utility>

#include "koios/util/fault_injector.h"
#include "koios/util/thread_pool.h"

namespace koios::sim {

namespace {

// Descending similarity, token id as the deterministic tie-break. The lazy
// chunked ordering and an eager full sort agree because this comparator is
// a strict total order — which is also why the sorted prefix of a SHARED
// cursor is one unique sequence no matter which consumer extended it.
inline bool NeighborBefore(const Neighbor& a, const Neighbor& b) {
  if (a.sim != b.sim) return a.sim > b.sim;
  return a.token < b.token;
}

}  // namespace

// ---- per-query probe session ------------------------------------------------

// A per-query SimilarityIndex view: private consumption positions over the
// parent's shared cursor cache. Everything stateful that a query touches
// through the SimilarityIndex interface lives here, which is what makes
// KoiosSearcher::Search reentrant when each concurrent query probes its
// own session.
class BatchedNeighborIndex::Session final : public SimilarityIndex {
 public:
  explicit Session(const BatchedNeighborIndex* parent) : parent_(parent) {}

  std::optional<Neighbor> NextNeighbor(TokenId q, Score alpha) override {
    return parent_->ProbeNext(positions_, q, alpha);
  }

  ProbeOutcome NextNeighborBounded(TokenId q, Score alpha, Score stop_sim,
                                   Neighbor* out) override {
    return parent_->ProbeNextBounded(positions_, q, alpha, stop_sim, out);
  }

  const SimilarityFunction* similarity() const override {
    return parent_->similarity();
  }

  bool exact_neighbors() const override { return parent_->exact_neighbors(); }

  void ResetCursors() override { positions_.clear(); }

  void Prewarm(std::span<const TokenId> tokens, Score alpha) override {
    parent_->PrewarmShared(tokens, alpha, pool_);
  }

  /// Sessions carry their own pool so a per-query pool attachment never
  /// races another query's (the parent's pool_ is not touched).
  void set_thread_pool(util::ThreadPool* pool) override { pool_ = pool; }
  util::ThreadPool* thread_pool() const override { return pool_; }

  std::unique_ptr<SimilarityIndex> NewSession() override {
    return std::make_unique<Session>(parent_);
  }

  size_t MemoryUsageBytes() const override {
    return parent_->MemoryUsageBytes();
  }

 private:
  const BatchedNeighborIndex* parent_;
  util::ThreadPool* pool_ = nullptr;
  PositionMap positions_;
};

std::unique_ptr<SimilarityIndex> BatchedNeighborIndex::NewSession() {
  return std::make_unique<Session>(this);
}

// ---- candidate collection helpers ------------------------------------------

void BatchedNeighborIndex::CollectCandidates(TokenId q,
                                             std::vector<TokenId>* out) const {
  (void)q;
  (void)out;
  // Only reachable for backends without a shared candidate list; those
  // must override this.
  assert(SharedCandidates() == nullptr &&
         "shared-candidate backends never collect per query");
  assert(false && "CollectCandidates not implemented");
}

void BatchedNeighborIndex::SortUniqueVocabulary(
    std::vector<TokenId>* vocabulary) {
  std::sort(vocabulary->begin(), vocabulary->end());
  vocabulary->erase(std::unique(vocabulary->begin(), vocabulary->end()),
                    vocabulary->end());
}

void BatchedNeighborIndex::UnionBuckets(
    std::span<const std::vector<TokenId>* const> buckets,
    std::vector<TokenId>* out) {
  std::vector<size_t> bounds{out->size()};
  for (const std::vector<TokenId>* bucket : buckets) {
    out->insert(out->end(), bucket->begin(), bucket->end());
    bounds.push_back(out->size());
  }
  MergeSortedRuns(out, &bounds);
}

void BatchedNeighborIndex::MergeSortedRuns(std::vector<TokenId>* ids,
                                           std::vector<size_t>* bounds) {
  std::vector<size_t>& b = *bounds;
  while (b.size() > 2) {
    size_t w = 1;
    size_t i = 0;
    for (; i + 2 < b.size(); i += 2) {
      std::inplace_merge(ids->begin() + static_cast<ptrdiff_t>(b[i]),
                         ids->begin() + static_cast<ptrdiff_t>(b[i + 1]),
                         ids->begin() + static_cast<ptrdiff_t>(b[i + 2]));
      b[w++] = b[i + 2];
    }
    if (i + 1 < b.size()) b[w++] = b[i + 1];  // odd run carries over
    b.resize(w);
  }
  ids->erase(std::unique(ids->begin(), ids->end()), ids->end());
}

BatchedNeighborIndex::BatchedNeighborIndex(const SimilarityFunction* sim,
                                           util::ThreadPool* pool)
    : sim_(sim), pool_(pool) {}

// ---- shared cursor cache ----------------------------------------------------

size_t BatchedNeighborIndex::CacheKeyHash::operator()(
    const CacheKey& k) const {
  uint64_t bits;
  static_assert(sizeof(Score) == sizeof(uint64_t));
  std::memcpy(&bits, &k.alpha, sizeof(bits));
  // Mix the token into the α bits, then avalanche: shard selection masks
  // the LOW bits of this value (ShardFor), so they must depend on every
  // input bit or same-α traffic would pile onto a few shards.
  uint64_t h = (static_cast<uint64_t>(k.token) + 0x9E3779B97F4A7C15ull) ^
               (bits * 0xC2B2AE3D27D4EB4Full);
  h ^= h >> 29;
  h *= 0xBF58476D1CE4E5B9ull;
  h ^= h >> 32;
  return static_cast<size_t>(h);
}

BatchedNeighborIndex::CacheShard& BatchedNeighborIndex::ShardFor(
    const CacheKey& key) const {
  static_assert((kCacheShards & (kCacheShards - 1)) == 0);
  return shards_[CacheKeyHash{}(key) & (kCacheShards - 1)];
}

BatchedNeighborIndex::CursorPtr BatchedNeighborIndex::FindCursor(
    TokenId q, Score alpha) const {
  const CacheKey key{q, alpha};
  CacheShard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) return nullptr;
  hits_.fetch_add(1, std::memory_order_relaxed);
  // Every hit arms the CLOCK reference bit: the eviction hand must go all
  // the way round without another hit before this entry may be dropped.
  it->second->referenced.store(true, std::memory_order_relaxed);
  return it->second;
}

BatchedNeighborIndex::CursorPtr BatchedNeighborIndex::PublishCursor(
    TokenId q, Score alpha, CursorPtr built) const {
  // Chaos seam: dropping a publish is correctness-neutral by design — the
  // builder keeps its private cursor (bit-identical results), only the
  // cross-query cache entry is lost, exactly as if CLOCK evicted it
  // immediately. Fault tests lean on this to hammer the publish path.
  if (KOIOS_FAULTPOINT("cursor.publish")) return built;
  const CacheKey key{q, alpha};
  CacheShard& shard = ShardFor(key);
  CursorPtr winner;
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto [it, inserted] = shard.map.try_emplace(key, std::move(built));
    if (!inserted) {
      duplicate_builds_.fetch_add(1, std::memory_order_relaxed);
      // The losing builder still RESOLVED this entry — two concurrent
      // queries wanted it, so it is hot: arm the bit like a hit would.
      it->second->referenced.store(true, std::memory_order_relaxed);
      return it->second;
    }
    // Fresh entry: fix its exact footprint (the neighbor array is frozen
    // from here on), credit the budget, and hand it to the CLOCK ring
    // with the reference bit armed (standard CLOCK: a new entry survives
    // at least one full hand lap, so a hot cursor rebuilt after an
    // unlucky eviction is not immediately evicted again).
    SharedCursor& cursor = *it->second;
    cursor.bytes =
        sizeof(SharedCursor) + cursor.neighbors.capacity() * sizeof(Neighbor);
    cursor.referenced.store(true, std::memory_order_relaxed);
    cache_bytes_.Add(cursor.bytes);
    shard.ring.push_back(key);
    winner = it->second;
  }
  // Pay for the insert immediately (outside the shard lock — the eviction
  // hand may land on any shard): by the time this publish returns the
  // cache is back under its budget.
  EvictToCapacity();
  return winner;
}

void BatchedNeighborIndex::SetCursorCacheCapacity(size_t bytes) {
  cache_bytes_.set_capacity(bytes);
  EvictToCapacity();
}

void BatchedNeighborIndex::EvictToCapacity() const {
  // Round-robin laps over the shards until within budget. Termination is
  // guaranteed: ClockEvictOne's forced final step evicts from any
  // non-empty shard, and every shard empty means zero accounted bytes,
  // i.e. OverBy() == 0.
  while (cache_bytes_.OverBy() > 0) {
    for (size_t i = 0; i < kCacheShards && cache_bytes_.OverBy() > 0; ++i) {
      const size_t s =
          evict_shard_.fetch_add(1, std::memory_order_relaxed) % kCacheShards;
      ClockEvictOne(shards_[s]);
    }
  }
}

size_t BatchedNeighborIndex::ClockEvictOne(CacheShard& shard) const {
  std::lock_guard<std::mutex> lock(shard.mutex);
  if (shard.map.empty()) {
    shard.ring.clear();
    shard.hand = 0;
    return 0;
  }
  // Up to two passes over the ring: the first may only clear reference
  // bits, the second then finds a clear one. The final forced step keeps
  // eviction from livelocking against a hit storm that re-arms bits as
  // fast as the hand clears them.
  const size_t limit = 2 * shard.ring.size();
  for (size_t step = 0; step <= limit && !shard.ring.empty(); ++step) {
    if (shard.hand >= shard.ring.size()) shard.hand = 0;
    auto it = shard.map.find(shard.ring[shard.hand]);
    if (it == shard.map.end()) {
      // Dead slot (evicted earlier, or the key lost an insert race):
      // swap-remove keeps the sweep O(1) per slot; strict ring order is
      // not needed, only that the hand keeps visiting every live entry.
      shard.ring[shard.hand] = shard.ring.back();
      shard.ring.pop_back();
      continue;
    }
    SharedCursor& cursor = *it->second;
    if (step < limit &&
        cursor.referenced.exchange(false, std::memory_order_relaxed)) {
      ++shard.hand;
      continue;
    }
    // Drop the cache's reference ONLY. Sessions still holding the payload
    // keep consuming it untouched (shared_ptr lifetime); the next cache
    // resolution of this (token, α) rebuilds deterministically.
    const size_t freed = cursor.bytes;
    shard.map.erase(it);
    shard.ring[shard.hand] = shard.ring.back();
    shard.ring.pop_back();
    cache_bytes_.Sub(freed);
    evictions_.fetch_add(1, std::memory_order_relaxed);
    return freed;
  }
  return 0;
}

BatchedNeighborIndex::CursorPtr BatchedNeighborIndex::CursorFor(
    TokenId q, Score alpha) const {
  if (CursorPtr cached = FindCursor(q, alpha)) return cached;
  misses_.fetch_add(1, std::memory_order_relaxed);
  return PublishCursor(q, alpha, BuildCursor(q, alpha));
}

BatchedNeighborIndex::CursorPtr BatchedNeighborIndex::BuildCursor(
    TokenId q, Score alpha) const {
  auto cursor = std::make_shared<SharedCursor>();
  cursor->alpha = alpha;
  // thread_local scratch: builds run concurrently on pool workers and on
  // concurrent sessions' cache misses.
  thread_local std::vector<TokenId> collected;
  const std::vector<TokenId>* candidates = SharedCandidates();
  if (candidates == nullptr) {
    collected.clear();
    CollectCandidates(q, &collected);
    assert(std::is_sorted(collected.begin(), collected.end()));
    candidates = &collected;
  }
  if (candidates->empty()) return cursor;
  // One batched scan of the candidates, then the α filter over the flat
  // score array.
  thread_local std::vector<Score> scores;
  scores.resize(candidates->size());
  sim_->SimilarityBatch(q, *candidates, scores);
  Score max_sim = 0.0;
  for (size_t i = 0; i < candidates->size(); ++i) {
    const TokenId t = (*candidates)[i];
    if (t == q) continue;  // self-matches are injected by the token stream
    if (scores[i] >= alpha) {
      cursor->neighbors.push_back({t, scores[i]});
      max_sim = std::max(max_sim, scores[i]);
    }
  }
  cursor->max_sim = max_sim;
  // Long-lived cached payload: drop the push_back growth slack so the
  // budget accounting (capacity-based) matches what is actually resident.
  cursor->neighbors.shrink_to_fit();
  return cursor;
}

std::vector<BatchedNeighborIndex::CursorPtr>
BatchedNeighborIndex::BuildCursorBlock(std::span<const TokenId> qs,
                                       Score alpha) const {
  std::vector<CursorPtr> cursors(qs.size());
  for (CursorPtr& c : cursors) {
    c = std::make_shared<SharedCursor>();
    c->alpha = alpha;
  }
  auto finalize = [](SharedCursor& c) {
    Score max_sim = 0.0;
    for (const Neighbor& n : c.neighbors) max_sim = std::max(max_sim, n.sim);
    c.max_sim = max_sim;
    c.neighbors.shrink_to_fit();  // see BuildCursor
  };

  // Resolve the block's target list: the shared candidate set when the
  // backend has one, otherwise the sorted union of each query's candidates
  // (bucket probes of SIMILAR query tokens overlap heavily, so the union
  // amortizes the multi-query kernel's row reads across the block).
  const std::vector<TokenId>* shared = SharedCandidates();
  std::vector<std::vector<TokenId>> per_query;
  std::vector<TokenId> target_union;
  const std::vector<TokenId>* targets = shared;
  if (shared == nullptr) {
    per_query.resize(qs.size());
    size_t total = 0;
    std::vector<size_t> bounds{0};
    for (size_t qi = 0; qi < qs.size(); ++qi) {
      CollectCandidates(qs[qi], &per_query[qi]);
      total += per_query[qi].size();
      target_union.insert(target_union.end(), per_query[qi].begin(),
                          per_query[qi].end());
      bounds.push_back(target_union.size());
    }
    MergeSortedRuns(&target_union, &bounds);
    // When the block's buckets barely overlap (unrelated query tokens),
    // the union kernel would score |union| rows for every query — mostly
    // rows outside that query's buckets. Scoring each query's own batch is
    // then strictly less work; the multi-query union only wins when the
    // row reads it amortizes actually repeat across queries.
    if (target_union.size() * qs.size() > 2 * total) {
      thread_local std::vector<Score> scores;
      for (size_t qi = 0; qi < qs.size(); ++qi) {
        const std::vector<TokenId>& cand = per_query[qi];
        if (cand.empty()) continue;
        scores.resize(cand.size());
        sim_->SimilarityBatch(qs[qi], cand, scores);
        SharedCursor& cursor = *cursors[qi];
        for (size_t i = 0; i < cand.size(); ++i) {
          if (cand[i] == qs[qi]) continue;
          if (scores[i] >= alpha) cursor.neighbors.push_back({cand[i], scores[i]});
        }
        finalize(cursor);
      }
      return cursors;
    }
    targets = &target_union;
  }
  if (targets->empty()) return cursors;

  // One multi-query kernel call scores the whole block against the targets
  // (each target row read once per multi-query sub-block).
  thread_local std::vector<Score> scores;
  scores.resize(qs.size() * targets->size());
  sim_->SimilarityBatchMulti(qs, *targets, scores);

  for (size_t qi = 0; qi < qs.size(); ++qi) {
    SharedCursor& cursor = *cursors[qi];
    const Score* row = scores.data() + qi * targets->size();
    if (shared != nullptr) {
      for (size_t i = 0; i < targets->size(); ++i) {
        const TokenId t = (*targets)[i];
        if (t == qs[qi]) continue;  // self-matches come from the token stream
        if (row[i] >= alpha) cursor.neighbors.push_back({t, row[i]});
      }
    } else {
      // Merge walk: both lists are sorted and per_query[qi] ⊆ targets, so
      // each candidate's score index is found by advancing one pointer.
      size_t ti = 0;
      for (const TokenId t : per_query[qi]) {
        while ((*targets)[ti] < t) ++ti;
        if (t == qs[qi]) continue;
        if (row[ti] >= alpha) cursor.neighbors.push_back({t, row[ti]});
      }
    }
    finalize(cursor);
  }
  return cursors;
}

void BatchedNeighborIndex::EnsureOrdered(SharedCursor& cursor, size_t count) {
  const size_t wanted = std::min(count, cursor.neighbors.size());
  // Lock-free fast path: the acquire pairs with the release below, so a
  // consumer that sees the prefix covering `wanted` also sees the ordered
  // elements themselves.
  if (cursor.ordered_prefix.load(std::memory_order_acquire) >= wanted) return;
  std::lock_guard<std::mutex> lock(cursor.order_mutex);
  size_t prefix = cursor.ordered_prefix.load(std::memory_order_relaxed);
  while (prefix < wanted) {
    // Chunks double as consumption deepens: nth_element costs O(remaining)
    // per round, so a flat chunk would make a full drain (the EdgeCache
    // materializes the whole stream today) quadratic. Doubling keeps short
    // prefixes cheap and bounds full consumption at O(m log m), matching
    // the eager sort this replaced.
    const size_t chunk = std::max(kSortChunk, prefix);
    const size_t chunk_end = std::min(prefix + chunk, cursor.neighbors.size());
    const auto first =
        cursor.neighbors.begin() + static_cast<ptrdiff_t>(prefix);
    const auto nth =
        cursor.neighbors.begin() + static_cast<ptrdiff_t>(chunk_end - 1);
    // Partition the next chunk's members in front of everything ranked
    // after them, then order the chunk itself. Only [prefix, end) moves:
    // the published prefix stays immutable under concurrent readers.
    std::nth_element(first, nth, cursor.neighbors.end(), NeighborBefore);
    std::sort(first, nth + 1, NeighborBefore);
    prefix = chunk_end;
  }
  cursor.ordered_prefix.store(prefix, std::memory_order_release);
}

// ---- probe bodies -----------------------------------------------------------

std::optional<Neighbor> BatchedNeighborIndex::ProbeNext(PositionMap& positions,
                                                        TokenId q,
                                                        Score alpha) const {
  ProbePos& pos = positions[q];
  if (pos.cursor == nullptr || pos.cursor->alpha != alpha) {
    // First probe, or a cursor filtered at a different α (a stale cursor
    // would silently serve neighbors pruned at the old threshold).
    pos.cursor = CursorFor(q, alpha);
    pos.next = 0;
  }
  SharedCursor& cursor = *pos.cursor;
  if (pos.next >= cursor.neighbors.size()) return std::nullopt;
  EnsureOrdered(cursor, pos.next + 1);
  return cursor.neighbors[pos.next++];
}

ProbeOutcome BatchedNeighborIndex::ProbeNextBounded(PositionMap& positions,
                                                    TokenId q, Score alpha,
                                                    Score stop_sim,
                                                    Neighbor* out) const {
  ProbePos& pos = positions[q];
  if (pos.cursor == nullptr || pos.cursor->alpha != alpha) {
    pos.cursor = CursorFor(q, alpha);
    pos.next = 0;
  }
  SharedCursor& cursor = *pos.cursor;
  if (pos.next >= cursor.neighbors.size()) return ProbeOutcome::kExhausted;
  if (stop_sim > 0.0) {
    // Upper bound on every remaining neighbor without ordering anything:
    // consumption is in non-increasing order, so the LAST CONSUMED
    // neighbor bounds the tail; before anything was consumed the
    // build-time max does. Deliberately independent of how far OTHER
    // consumers ordered this shared cursor — a shared-progress bound
    // would be tighter but would make the withheld slack (and thus the
    // producer's stop point) depend on concurrent queries, breaking
    // bit-reproducibility of concurrent vs serial execution.
    const Score bound =
        pos.next > 0 ? cursor.neighbors[pos.next - 1].sim : cursor.max_sim;
    if (bound < stop_sim) {
      *out = {kInvalidToken, bound};
      return ProbeOutcome::kWithheld;
    }
  }
  EnsureOrdered(cursor, pos.next + 1);
  const Neighbor& next = cursor.neighbors[pos.next];
  if (next.sim < stop_sim) {
    // Ordered but below the threshold; leave it unconsumed (callers only
    // ever raise stop_sim, so it will never be requested again).
    *out = {kInvalidToken, next.sim};
    return ProbeOutcome::kWithheld;
  }
  *out = next;
  ++pos.next;
  return ProbeOutcome::kNeighbor;
}

std::optional<Neighbor> BatchedNeighborIndex::NextNeighbor(TokenId q,
                                                           Score alpha) {
  return ProbeNext(legacy_positions_, q, alpha);
}

ProbeOutcome BatchedNeighborIndex::NextNeighborBounded(TokenId q, Score alpha,
                                                       Score stop_sim,
                                                       Neighbor* out) {
  return ProbeNextBounded(legacy_positions_, q, alpha, stop_sim, out);
}

// ---- prewarm ----------------------------------------------------------------

void BatchedNeighborIndex::PrewarmShared(std::span<const TokenId> tokens,
                                         Score alpha,
                                         util::ThreadPool* pool) const {
  std::vector<TokenId> missing;
  missing.reserve(tokens.size());
  for (TokenId t : tokens) missing.push_back(t);
  std::sort(missing.begin(), missing.end());
  missing.erase(std::unique(missing.begin(), missing.end()), missing.end());
  // Drop tokens already cached at this α (each counts as a prewarm hit —
  // possibly warmed by a concurrent query or an earlier SearchMany batch).
  std::erase_if(missing,
                [&](TokenId t) { return FindCursor(t, alpha) != nullptr; });
  if (missing.empty()) return;
  misses_.fetch_add(missing.size(), std::memory_order_relaxed);

  const std::span<const TokenId> all(missing);
  if (pool != nullptr && missing.size() > kPrewarmBlock) {
    // Fan blocks out across the pool; cursors are independent, so the only
    // serial part is publishing the finished blocks into the shard maps.
    std::vector<std::future<std::vector<CursorPtr>>> futures;
    for (size_t b = 0; b < missing.size(); b += kPrewarmBlock) {
      const auto block =
          all.subspan(b, std::min(kPrewarmBlock, missing.size() - b));
      futures.push_back(pool->Submit(
          [this, block, alpha] { return BuildCursorBlock(block, alpha); }));
    }
    size_t b = 0;
    for (auto& f : futures) {
      for (CursorPtr& c : f.get()) {
        PublishCursor(missing[b++], alpha, std::move(c));
      }
    }
  } else {
    for (size_t b = 0; b < missing.size(); b += kPrewarmBlock) {
      const auto block =
          all.subspan(b, std::min(kPrewarmBlock, missing.size() - b));
      std::vector<CursorPtr> built = BuildCursorBlock(block, alpha);
      for (size_t i = 0; i < block.size(); ++i) {
        PublishCursor(block[i], alpha, std::move(built[i]));
      }
    }
  }
}

void BatchedNeighborIndex::Prewarm(std::span<const TokenId> tokens,
                                   Score alpha) {
  PrewarmShared(tokens, alpha, pool_);
}

// ---- maintenance ------------------------------------------------------------

void BatchedNeighborIndex::ResetCursors() { legacy_positions_.clear(); }

void BatchedNeighborIndex::ClearCursorCache() {
  for (CacheShard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    // Debit exactly what each dropped entry credited at publish; sessions
    // mid-stream keep their payloads alive through their own shared_ptr.
    for (const auto& [_, c] : shard.map) cache_bytes_.Sub(c->bytes);
    shard.map.clear();
    shard.ring.clear();
    shard.hand = 0;
  }
  legacy_positions_.clear();
}

CursorCacheStats BatchedNeighborIndex::cursor_cache_stats() const {
  CursorCacheStats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.duplicate_builds = duplicate_builds_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  stats.bytes = cache_bytes_.used();
  stats.capacity_bytes = cache_bytes_.capacity();
  for (const CacheShard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    stats.cursors += shard.map.size();
  }
  return stats;
}

size_t BatchedNeighborIndex::MemoryUsageBytes() const {
  // The budget gauge is exact (credit at publish, debit at evict/clear),
  // so no shard walk is needed.
  return cache_bytes_.used();
}

}  // namespace koios::sim
