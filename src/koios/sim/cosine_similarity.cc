#include "koios/sim/cosine_similarity.h"

// Header-only; kept as a translation unit for the build graph.
