#include "koios/sim/cosine_similarity.h"

#include <cassert>

namespace koios::sim {

void CosineEmbeddingSimilarity::SimilarityBatch(TokenId q,
                                                std::span<const TokenId> targets,
                                                std::span<Score> out) const {
  assert(out.size() == targets.size());
  store_->CosineBatch(q, targets, out, precision_);
  for (size_t i = 0; i < targets.size(); ++i) {
    if (targets[i] == q) {
      out[i] = 1.0;  // Def. 1: sim(x, x) = 1 even when out-of-vocabulary.
    } else if (out[i] <= 0.0) {
      out[i] = 0.0;
    } else if (out[i] > 1.0) {
      out[i] = 1.0;
    }
  }
}

void CosineEmbeddingSimilarity::SimilarityBatchMulti(
    std::span<const TokenId> queries, std::span<const TokenId> targets,
    std::span<Score> out) const {
  assert(out.size() == queries.size() * targets.size());
  store_->CosineMultiBatch(queries, targets, out, precision_);
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    Score* row = out.data() + qi * targets.size();
    for (size_t ti = 0; ti < targets.size(); ++ti) {
      if (targets[ti] == queries[qi]) {
        row[ti] = 1.0;  // Def. 1: sim(x, x) = 1 even when out-of-vocabulary.
      } else if (row[ti] <= 0.0) {
        row[ti] = 0.0;
      } else if (row[ti] > 1.0) {
        row[ti] = 1.0;
      }
    }
  }
}

}  // namespace koios::sim
