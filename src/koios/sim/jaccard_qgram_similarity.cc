#include "koios/sim/jaccard_qgram_similarity.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>
#include <utility>

#include "koios/text/qgram.h"

namespace koios::sim {

namespace {

// |a ∩ b| of two sorted id arrays by linear merge. Branchless advance:
// which side steps forward is data-dependent and essentially random, so a
// branchy three-way merge mispredicts on most iterations — at ~15 cycles a
// miss that dwarfs the comparison itself for the tiny gram sets (3–10 ids)
// this runs on.
inline size_t IntersectSorted(std::span<const uint32_t> a,
                              std::span<const uint32_t> b) {
  size_t i = 0, j = 0, common = 0;
  while (i < a.size() && j < b.size()) {
    const uint32_t x = a[i], y = b[j];
    common += static_cast<size_t>(x == y);
    i += static_cast<size_t>(x <= y);
    j += static_cast<size_t>(y <= x);
  }
  return common;
}

inline Score JaccardOfIds(std::span<const uint32_t> a,
                          std::span<const uint32_t> b) {
  const size_t common = IntersectSorted(a, b);
  const size_t unions = a.size() + b.size() - common;
  return unions == 0 ? 0.0
                     : static_cast<double>(common) /
                           static_cast<double>(unions);
}

}  // namespace

JaccardQGramSimilarity::JaccardQGramSimilarity(const text::Dictionary* dict,
                                               size_t q)
    : dict_(dict), q_(q) {
  grams_.reserve(dict_->size());
  id_offsets_.reserve(dict_->size() + 1);
  id_offsets_.push_back(0);
  // Intern every distinct gram string into a dense id; the per-token gram
  // id arrays re-sorted by id stay valid for merge intersection (Jaccard
  // only needs set semantics, not gram order).
  std::unordered_map<std::string, uint32_t> intern;
  std::vector<uint32_t> ids;
  for (TokenId t = 0; t < dict_->size(); ++t) {
    grams_.push_back(text::QGrams(dict_->TokenOf(t), q_));
    ids.clear();
    ids.reserve(grams_.back().size());
    for (const auto& gram : grams_.back()) {
      const auto [it, _] =
          intern.emplace(gram, static_cast<uint32_t>(intern.size()));
      ids.push_back(it->second);
    }
    std::sort(ids.begin(), ids.end());
    flat_ids_.insert(flat_ids_.end(), ids.begin(), ids.end());
    id_offsets_.push_back(flat_ids_.size());
  }
}

Score JaccardQGramSimilarity::Similarity(TokenId a, TokenId b) const {
  if (a == b) return 1.0;
  assert(a < grams_.size() && b < grams_.size());
  return JaccardOfIds(IdsOf(a), IdsOf(b));
}

void JaccardQGramSimilarity::SimilarityBatch(TokenId q,
                                             std::span<const TokenId> targets,
                                             std::span<Score> out) const {
  assert(out.size() == targets.size());
  assert(q < grams_.size());
  const auto gq = IdsOf(q);
  for (size_t i = 0; i < targets.size(); ++i) {
    const TokenId t = targets[i];
    assert(t < grams_.size());
    out[i] = t == q ? 1.0 : JaccardOfIds(gq, IdsOf(t));
  }
}

void JaccardQGramSimilarity::SimilarityBatchMulti(
    std::span<const TokenId> queries, std::span<const TokenId> targets,
    std::span<Score> out) const {
  assert(out.size() == queries.size() * targets.size());
  if (queries.empty() || targets.empty()) return;

  // Transpose the block once: (gram id, target position) pairs sorted by
  // gram id become CSR postings whose keys are scanned in lockstep with
  // each query's sorted id array. thread_local scratch: prewarm blocks run
  // on pool workers.
  thread_local std::vector<std::pair<uint32_t, uint32_t>> pairs;
  pairs.clear();
  for (uint32_t ti = 0; ti < targets.size(); ++ti) {
    assert(targets[ti] < grams_.size());
    for (const uint32_t g : IdsOf(targets[ti])) pairs.push_back({g, ti});
  }
  std::sort(pairs.begin(), pairs.end());
  thread_local std::vector<uint32_t> keys;        // distinct gram ids, asc
  thread_local std::vector<uint32_t> offsets;     // CSR bounds into pairs
  keys.clear();
  offsets.clear();
  for (size_t i = 0; i < pairs.size(); ++i) {
    if (i == 0 || pairs[i].first != pairs[i - 1].first) {
      keys.push_back(pairs[i].first);
      offsets.push_back(static_cast<uint32_t>(i));
    }
  }
  offsets.push_back(static_cast<uint32_t>(pairs.size()));

  thread_local std::vector<uint32_t> common;  // |gq ∩ gt| per target
  common.assign(targets.size(), 0);
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    const TokenId q = queries[qi];
    assert(q < grams_.size());
    const auto gq = IdsOf(q);
    // Merge walk of the query's sorted ids against the sorted posting
    // keys; each hit fans its postings into the per-target counters.
    size_t i = 0, j = 0;
    while (i < gq.size() && j < keys.size()) {
      if (gq[i] < keys[j]) {
        ++i;
      } else if (keys[j] < gq[i]) {
        ++j;
      } else {
        for (uint32_t p = offsets[j]; p < offsets[j + 1]; ++p) {
          ++common[pairs[p].second];
        }
        ++i;
        ++j;
      }
    }
    Score* row = out.data() + qi * targets.size();
    for (size_t ti = 0; ti < targets.size(); ++ti) {
      const TokenId t = targets[ti];
      if (t == q) {
        row[ti] = 1.0;
      } else {
        const size_t c = common[ti];
        const size_t unions = gq.size() + IdsOf(t).size() - c;
        row[ti] = unions == 0 ? 0.0
                              : static_cast<double>(c) /
                                    static_cast<double>(unions);
      }
      common[ti] = 0;  // reset while the line is hot for the next query
    }
  }
}

const std::vector<std::string>& JaccardQGramSimilarity::GramsOf(TokenId t) const {
  assert(t < grams_.size());
  return grams_[t];
}

size_t JaccardQGramSimilarity::MemoryUsageBytes() const {
  size_t bytes = grams_.capacity() * sizeof(grams_[0]) +
                 flat_ids_.capacity() * sizeof(uint32_t) +
                 id_offsets_.capacity() * sizeof(size_t);
  for (const auto& g : grams_) {
    bytes += g.capacity() * sizeof(std::string);
    for (const auto& s : g) bytes += s.capacity();
  }
  return bytes;
}

}  // namespace koios::sim
