#include "koios/sim/jaccard_qgram_similarity.h"

#include <cassert>

#include "koios/text/qgram.h"

namespace koios::sim {

JaccardQGramSimilarity::JaccardQGramSimilarity(const text::Dictionary* dict,
                                               size_t q)
    : dict_(dict), q_(q) {
  grams_.reserve(dict_->size());
  for (TokenId t = 0; t < dict_->size(); ++t) {
    grams_.push_back(text::QGrams(dict_->TokenOf(t), q_));
  }
}

Score JaccardQGramSimilarity::Similarity(TokenId a, TokenId b) const {
  if (a == b) return 1.0;
  assert(a < grams_.size() && b < grams_.size());
  return text::JaccardSorted(grams_[a], grams_[b]);
}

const std::vector<std::string>& JaccardQGramSimilarity::GramsOf(TokenId t) const {
  assert(t < grams_.size());
  return grams_[t];
}

size_t JaccardQGramSimilarity::MemoryUsageBytes() const {
  size_t bytes = grams_.capacity() * sizeof(grams_[0]);
  for (const auto& g : grams_) {
    bytes += g.capacity() * sizeof(std::string);
    for (const auto& s : g) bytes += s.capacity();
  }
  return bytes;
}

}  // namespace koios::sim
