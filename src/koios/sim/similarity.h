// Element-similarity abstractions. Koios is exact for *any* user-defined
// symmetric similarity with sim(x, x) = 1 (paper Def. 1); the algorithm
// touches similarities only through these two interfaces:
//
//  * SimilarityFunction — pairwise sim(a, b) used to build bipartite graphs
//    during verification and by the oracle baselines.
//  * SimilarityIndex — streaming "next most similar vocabulary token" used
//    by the token stream Ie (paper §IV). The paper plugs in a Faiss top-k
//    index for cosine and a set-similarity join for Jaccard; this repo
//    provides an exact brute-force index and LSH / MinHash approximations,
//    all built on the shared BatchedNeighborIndex cursor machinery.
//
// THE BATCH CONTRACT (established in PR 1, honored by every backend): hot
// consumers never score candidates pairwise through the virtual call. They
// collect candidate ids into a contiguous batch and make one
// SimilarityBatch (or, across several query tokens, one
// SimilarityBatchMulti) call, and they announce upcoming probes through
// Prewarm so cursor construction can be batched and parallelized. Any
// SimilarityFunction that can score a batch faster than |batch| virtual
// calls overrides the batch entry points; the defaults keep every
// similarity correct unchanged. See docs/ARCHITECTURE.md.
#ifndef KOIOS_SIM_SIMILARITY_H_
#define KOIOS_SIM_SIMILARITY_H_

#include <cstddef>
#include <memory>
#include <optional>
#include <span>

#include "koios/util/types.h"

namespace koios::util {
class ThreadPool;
}  // namespace koios::util

namespace koios::sim {

/// Symmetric element similarity in [0, 1]; 1 for identical elements.
class SimilarityFunction {
 public:
  virtual ~SimilarityFunction() = default;

  /// Raw similarity (no α clamping; clamped to [0, 1]).
  virtual Score Similarity(TokenId a, TokenId b) const = 0;

  /// Batched similarity: out[i] = Similarity(q, targets[i]) for every i
  /// (`out.size()` must equal `targets.size()`). The default loops over the
  /// pairwise virtual call so every similarity keeps working unchanged;
  /// backends with a dense representation (cosine over an embedding matrix)
  /// override it with a vectorized kernel. Batch callers make ONE virtual
  /// call per query token instead of |D|, which is what lets the hot
  /// neighbor-generation scan vectorize.
  virtual void SimilarityBatch(TokenId q, std::span<const TokenId> targets,
                               std::span<Score> out) const {
    for (size_t i = 0; i < targets.size(); ++i) {
      out[i] = Similarity(q, targets[i]);
    }
  }

  /// Multi-query batch: out[qi * targets.size() + ti] =
  /// Similarity(queries[qi], targets[ti]), row-major by query. The default
  /// loops SimilarityBatch; dense backends override it with a blocked
  /// kernel that amortizes each target row across several queries (the
  /// cursor-prewarm path builds all of a query's cursors through this).
  virtual void SimilarityBatchMulti(std::span<const TokenId> queries,
                                    std::span<const TokenId> targets,
                                    std::span<Score> out) const {
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      SimilarityBatch(queries[qi], targets,
                      out.subspan(qi * targets.size(), targets.size()));
    }
  }

  /// simα of Def. 1: the similarity if >= alpha, else 0.
  Score SimilarityAlpha(TokenId a, TokenId b, Score alpha) const {
    const Score s = Similarity(a, b);
    return s >= alpha ? s : 0.0;
  }

  virtual size_t MemoryUsageBytes() const { return 0; }
};

/// One neighbor produced by a SimilarityIndex probe.
struct Neighbor {
  TokenId token = kInvalidToken;
  Score sim = 0.0;
};

/// Result of a stop-bounded probe (NextNeighborBounded).
enum class ProbeOutcome : uint8_t {
  kNeighbor,   // a neighbor >= stop_sim was produced
  kExhausted,  // the cursor has no neighbors >= alpha left
  kWithheld,   // neighbors remain, but all are below stop_sim
};

/// Streaming per-query-token neighbor index over the vocabulary `D`.
///
/// `NextNeighbor(q, alpha)` returns the most similar *not yet returned*
/// vocabulary token for query token `q` with similarity >= alpha, in
/// non-increasing similarity order (ties broken by ascending token id), or
/// nullopt when exhausted. The α filter is a hard cutoff applied when the
/// query token's cursor is built: a cursor built at one α must never serve
/// a probe at a different α (implementations rebuild on mismatch). The
/// query token itself is never returned (the token stream injects
/// self-matches, which is how Def. 1's sim(x, x) = 1 reaches OOV tokens).
///
/// Thread-safety: single consumer. NextNeighbor / ResetCursors / Prewarm
/// must not be called concurrently with each other; Prewarm may use worker
/// threads internally (cursors for distinct tokens are independent).
class SimilarityIndex {
 public:
  virtual ~SimilarityIndex() = default;

  virtual std::optional<Neighbor> NextNeighbor(TokenId q, Score alpha) = 0;

  /// Stop-bounded probe (the θlb→producer feedback loop, paper §IV–VI): like
  /// NextNeighbor, but the caller declares it has no use for neighbors with
  /// similarity below `stop_sim` (a running lower bound derived from θlb;
  /// callers only ever raise it for a given cursor). On kNeighbor, `*out` is
  /// the neighbor and the cursor advanced. On kWithheld, `out->sim` is an
  /// upper bound on every remaining neighbor's similarity (all < stop_sim)
  /// and `out->token` is kInvalidToken; implementations should avoid doing
  /// ordering work for the withheld tail — withheld neighbors are never
  /// requested again. The default adapts NextNeighbor: a below-stop
  /// neighbor is consumed and reported withheld, which is sound because
  /// stop thresholds are monotone.
  virtual ProbeOutcome NextNeighborBounded(TokenId q, Score alpha,
                                           Score stop_sim, Neighbor* out) {
    auto n = NextNeighbor(q, alpha);
    if (!n.has_value()) return ProbeOutcome::kExhausted;
    if (n->sim < stop_sim) {
      *out = {kInvalidToken, n->sim};
      return ProbeOutcome::kWithheld;
    }
    *out = *n;
    return ProbeOutcome::kNeighbor;
  }

  /// The SimilarityFunction this index scores candidates with, when it has
  /// one (nullptr otherwise). Consumers use it to complete similarity
  /// matrices for pairs the feedback-terminated stream never produced; a
  /// searcher only enables stream feedback when this is non-null.
  virtual const SimilarityFunction* similarity() const { return nullptr; }

  /// True iff NextNeighbor streams EVERY vocabulary token with sim >= α
  /// (no recall loss). Approximate backends (LSH, MinHash) must return
  /// false: results there are exact *with respect to the neighbors the
  /// probe returns*, and the feedback loop's matrix completion would score
  /// pairs the probe never surfaced — silently changing results between
  /// the feedback and drain modes. The searcher therefore only enables
  /// stream feedback when this is true.
  virtual bool exact_neighbors() const { return false; }

  /// Forget all cursors so a new query can reuse the index.
  virtual void ResetCursors() = 0;

  /// A per-query *probe session*: an independent SimilarityIndex view over
  /// the same vocabulary whose cursor consumption state is private to the
  /// caller, so any number of sessions may probe CONCURRENTLY (the serve
  /// subsystem hands one to every in-flight query). Implementations share
  /// the expensive cursor payloads across sessions behind internal
  /// synchronization — concurrent queries over the same vocabulary reuse
  /// each other's cursors — while NextNeighbor positions stay per-session.
  /// The session borrows the index (it must outlive the session) and
  /// forwards similarity()/exact_neighbors(). Returns nullptr when the
  /// backend has no concurrent probe support (callers must then serialize
  /// whole searches themselves).
  virtual std::unique_ptr<SimilarityIndex> NewSession() { return nullptr; }

  /// Hint that `NextNeighbor(t, alpha)` is about to be called for every
  /// token in `tokens`. Implementations may build the cursors eagerly (and
  /// in parallel — cursors for distinct tokens are independent) so the
  /// first probe never blocks on a cold cursor. Default: do nothing.
  virtual void Prewarm(std::span<const TokenId> tokens, Score alpha) {
    (void)tokens;
    (void)alpha;
  }

  /// Lend the index a worker pool for Prewarm's fan-out (nullptr detaches).
  /// The searcher attaches its per-query pool around stream construction
  /// and restores the previous pool afterwards; indexes without internal
  /// parallelism ignore it. The pool must outlive every Prewarm call made
  /// while attached.
  virtual void set_thread_pool(util::ThreadPool* pool) { (void)pool; }

  /// The currently attached pool (nullptr when none / unsupported).
  virtual util::ThreadPool* thread_pool() const { return nullptr; }

  virtual size_t MemoryUsageBytes() const { return 0; }
};

}  // namespace koios::sim

#endif  // KOIOS_SIM_SIMILARITY_H_
