// MinHash-LSH streaming index for Jaccard element similarity — the second
// plug-in index the paper names for the token stream ("the Faiss Index or
// minhash LSH can be plugged into the algorithm", §IV). Approximate: with
// b bands of r rows, a pair with Jaccard j collides in some band with
// probability 1 - (1 - j^r)^b; recall at the α of interest is tuned via
// (b, r).
//
// Probing is batched through BatchedNeighborIndex: a query's candidate set
// is the union of its bucket in every band, collected into one contiguous
// id batch and scored with a single SimilarityFunction::SimilarityBatch
// call (JaccardQGramSimilarity overrides it with an interned-gram-id merge
// kernel), then α-filtered and streamed with the shared lazy-ordering
// cursor. Scores stay exact Jaccard values — only candidate generation is
// approximate.
//
// Thread-safety: single consumer (see SimilarityIndex); the band tables
// are immutable after construction, so CollectCandidates is safe from
// Prewarm's pool workers.
#ifndef KOIOS_SIM_MINHASH_INDEX_H_
#define KOIOS_SIM_MINHASH_INDEX_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "koios/sim/batched_neighbor_index.h"
#include "koios/sim/jaccard_qgram_similarity.h"

namespace koios::sim {

struct MinHashIndexSpec {
  size_t num_bands = 16;     // b — more bands => higher recall
  size_t rows_per_band = 4;  // r — more rows  => higher precision
  uint64_t seed = 17;
};

class MinHashIndex : public BatchedNeighborIndex {
 public:
  /// Indexes `vocabulary` by the MinHash of each token's q-gram set (the
  /// feature sets come from `sim`, which also scores each probe's candidate
  /// batch so results are exact Jaccard values).
  /// `pool`: optional worker pool for Prewarm's fan-out.
  MinHashIndex(std::vector<TokenId> vocabulary,
               const JaccardQGramSimilarity* sim, const MinHashIndexSpec& spec,
               util::ThreadPool* pool = nullptr);

  /// Theoretical collision probability of a pair with Jaccard `j`.
  double CollisionProbability(double j) const;

  size_t MemoryUsageBytes() const override;

 protected:
  /// The union of the query's bucket in every band.
  void CollectCandidates(TokenId q, std::vector<TokenId>* out) const override;

 private:
  /// MinHash signature of a gram set: num_bands * rows_per_band minima.
  std::vector<uint64_t> SignatureOf(const std::vector<std::string>& grams) const;
  /// Bucket key of one band of a signature.
  uint64_t BandKey(const std::vector<uint64_t>& signature, size_t band) const;

  std::vector<TokenId> vocabulary_;
  const JaccardQGramSimilarity* jaccard_;
  MinHashIndexSpec spec_;
  std::vector<uint64_t> hash_seeds_;  // one per signature row
  std::vector<std::unordered_map<uint64_t, std::vector<TokenId>>> bands_;
};

}  // namespace koios::sim

#endif  // KOIOS_SIM_MINHASH_INDEX_H_
