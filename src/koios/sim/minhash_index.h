// MinHash-LSH streaming index for Jaccard element similarity — the second
// plug-in index the paper names for the token stream ("the Faiss Index or
// minhash LSH can be plugged into the algorithm", §IV). Approximate: with
// b bands of r rows, a pair with Jaccard j collides in some band with
// probability 1 - (1 - j^r)^b; recall at the α of interest is tuned via
// (b, r).
#ifndef KOIOS_SIM_MINHASH_INDEX_H_
#define KOIOS_SIM_MINHASH_INDEX_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "koios/sim/jaccard_qgram_similarity.h"
#include "koios/sim/similarity.h"

namespace koios::sim {

struct MinHashIndexSpec {
  size_t num_bands = 16;     // b — more bands => higher recall
  size_t rows_per_band = 4;  // r — more rows  => higher precision
  uint64_t seed = 17;
};

class MinHashIndex : public SimilarityIndex {
 public:
  /// Indexes `vocabulary` by the MinHash of each token's q-gram set (the
  /// feature sets come from `sim`, which also scores and orders candidates
  /// so results are exact Jaccard values).
  MinHashIndex(std::vector<TokenId> vocabulary,
               const JaccardQGramSimilarity* sim, const MinHashIndexSpec& spec);

  std::optional<Neighbor> NextNeighbor(TokenId q, Score alpha) override;

  void ResetCursors() override;

  /// Theoretical collision probability of a pair with Jaccard `j`.
  double CollisionProbability(double j) const;

  size_t MemoryUsageBytes() const override;

 private:
  struct Cursor {
    Score alpha = -1.0;  // threshold the α filter ran at
    std::vector<Neighbor> neighbors;
    size_t next = 0;
  };

  /// MinHash signature of a gram set: num_bands * rows_per_band minima.
  std::vector<uint64_t> SignatureOf(const std::vector<std::string>& grams) const;
  /// Bucket key of one band of a signature.
  uint64_t BandKey(const std::vector<uint64_t>& signature, size_t band) const;
  Cursor BuildCursor(TokenId q, Score alpha) const;

  std::vector<TokenId> vocabulary_;
  const JaccardQGramSimilarity* sim_;
  MinHashIndexSpec spec_;
  std::vector<uint64_t> hash_seeds_;  // one per signature row
  std::vector<std::unordered_map<uint64_t, std::vector<TokenId>>> bands_;
  std::unordered_map<TokenId, Cursor> cursors_;
};

}  // namespace koios::sim

#endif  // KOIOS_SIM_MINHASH_INDEX_H_
