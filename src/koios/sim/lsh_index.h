// Random-hyperplane (SimHash) LSH index over token embeddings — the
// approximate alternative to the exact index that the paper notes can be
// plugged into the token stream ("the Faiss Index or minhash LSH can be
// plugged into the algorithm", §IV). With an approximate index Koios'
// results are exact *with respect to the neighbors the index returns*;
// recall is tunable via the number of tables.
//
// Probing is batched through BatchedNeighborIndex: a query's candidate set
// is the union of its bucket in every table, collected into one contiguous
// id batch and scored with a single SimilarityFunction::SimilarityBatch
// kernel call (one virtual dispatch per query instead of one per
// candidate), then α-filtered and streamed with the shared lazy-ordering
// cursor. Prewarm builds a whole query's cursors in multi-query blocks
// over the block's candidate union — bucket probes of similar query
// tokens overlap heavily, so the union amortizes target-row reads.
//
// Thread-safety: single consumer (see SimilarityIndex); the hash tables
// are immutable after construction, so CollectCandidates is safe from
// Prewarm's pool workers.
#ifndef KOIOS_SIM_LSH_INDEX_H_
#define KOIOS_SIM_LSH_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "koios/embedding/embedding_store.h"
#include "koios/sim/batched_neighbor_index.h"

namespace koios::sim {

struct LshIndexSpec {
  size_t num_tables = 8;        // more tables => higher recall
  size_t bits_per_table = 12;   // longer keys => higher precision
  uint64_t seed = 7;
};

class CosineLshIndex : public BatchedNeighborIndex {
 public:
  /// Indexes the covered subset of `vocabulary`; `sim` scores each probe's
  /// candidate batch (so any downstream clamping matches the exact path).
  /// `pool`: optional worker pool for Prewarm's fan-out.
  CosineLshIndex(std::vector<TokenId> vocabulary,
                 const embedding::EmbeddingStore* store,
                 const SimilarityFunction* sim, const LshIndexSpec& spec,
                 util::ThreadPool* pool = nullptr);

  size_t MemoryUsageBytes() const override;

 protected:
  /// The union of the query's bucket in every table (empty for OOV query
  /// tokens, which only match identically via the stream's self-match).
  void CollectCandidates(TokenId q, std::vector<TokenId>* out) const override;

 private:
  uint64_t SignatureOf(std::span<const float> vec, size_t table) const;

  std::vector<TokenId> vocabulary_;
  const embedding::EmbeddingStore* store_;
  LshIndexSpec spec_;
  // hyperplanes_[table * bits + bit] is a dim-sized normal vector.
  std::vector<std::vector<float>> hyperplanes_;
  // One bucket map per table: signature -> token list.
  std::vector<std::unordered_map<uint64_t, std::vector<TokenId>>> tables_;
};

}  // namespace koios::sim

#endif  // KOIOS_SIM_LSH_INDEX_H_
